// Adaptive: the paper's Discussion section argues that counted remote
// writes need predictable communication, and that applications with
// evolving data structures (graph traversal, adaptive mesh refinement)
// can still route their *predictable* majority through counted remote
// writes while falling back to the message FIFO — fenced by in-order
// synchronization writes, exactly like Anton's atom migration — for the
// unpredictable remainder.
//
// This example runs both mechanisms on a 64-node machine:
//
//  1. a fixed 6-neighbour stencil exchange as counted remote writes
//     (every receiver knows its packet count in advance), and
//  2. a randomized, data-dependent exchange (receiver counts unknown)
//     through the per-slice message FIFO, terminated by an in-order
//     multicast synchronization write to the 26-neighbour cube.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"math/rand"

	"anton/internal/machine"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

func main() {
	s := sim.New()
	m := machine.New(s, topo.NewTorus(4, 4, 4), noc.DefaultModel())

	// --- Mechanism 1: predictable stencil through counted remote writes.
	fmt.Println("predictable 6-neighbour stencil exchange (counted remote writes):")
	start := s.Now()
	var last sim.Time
	m.Torus.ForEach(func(c topo.Coord) {
		n := m.Torus.ID(c)
		// Every node expects exactly 6 packets: one per face neighbour.
		m.Client(packet.Client{Node: n, Kind: packet.Slice0}).Wait(0, 6, func() {
			if now := s.Now(); now > last {
				last = now
			}
		})
	})
	m.Torus.ForEach(func(c topo.Coord) {
		src := m.Client(packet.Client{Node: m.Torus.ID(c), Kind: packet.Slice0})
		for i, port := range topo.Ports {
			dst := m.Torus.ID(m.Torus.Neighbor(c, port))
			src.Write(packet.Client{Node: dst, Kind: packet.Slice0}, 0, i*8, 64)
		}
	})
	s.Run()
	fmt.Printf("  complete on all nodes after %.2f us; zero synchronization messages\n\n",
		last.Sub(start).Us())

	// --- Mechanism 2: unpredictable exchange through the message FIFO.
	fmt.Println("unpredictable exchange (message FIFO + in-order sync writes):")
	installCubeSync(m)
	rng := rand.New(rand.NewSource(7))
	start = s.Now()
	last = 0
	totalMsgs := 0
	// Random, data-dependent message counts: nobody can precompute them.
	counts := make([]int, m.Torus.Nodes())
	for n := range counts {
		counts[n] = rng.Intn(9)
	}
	drained := 0
	m.Torus.ForEach(func(c topo.Coord) {
		n := m.Torus.ID(c)
		cl := m.Client(packet.Client{Node: n, Kind: packet.Slice0})
		neighbors := m.Torus.Neighbors26(c)
		for i := 0; i < counts[n]; i++ {
			dst := neighbors[rng.Intn(len(neighbors))]
			cl.Send(&packet.Packet{
				Kind: packet.Message, Dst: packet.Client{Node: m.Torus.ID(dst), Kind: packet.Slice0},
				Multicast: packet.NoMulticast, Counter: packet.NoCounter,
				Bytes: 64, InOrder: true, Tag: "frontier",
			})
			totalMsgs++
		}
		// The in-order sync write cannot overtake the messages above, so
		// its arrival proves this node's stream is complete.
		cl.Send(&packet.Packet{
			Kind: packet.Write, Multicast: packet.MulticastID(cubeID(c)),
			Counter: 1, Bytes: 8, InOrder: true, Tag: "sync",
		})
	})
	m.Torus.ForEach(func(c topo.Coord) {
		n := m.Torus.ID(c)
		cl := m.Client(packet.Client{Node: n, Kind: packet.Slice0})
		expected := uint64(len(m.Torus.Neighbors26(c)))
		cl.Wait(1, expected, func() {
			// All neighbour streams complete: drain whatever arrived.
			var pump func()
			pump = func() {
				f := cl.FIFO()
				if f.Len() == 0 {
					drained++
					if now := s.Now(); now > last {
						last = now
					}
					return
				}
				f.Pop(func(*packet.Packet) { pump() })
			}
			pump()
		})
	})
	s.Run()
	fmt.Printf("  %d data-dependent messages delivered and drained on %d nodes in %.2f us\n",
		totalMsgs, drained, last.Sub(start).Us())
	fmt.Println("\nthe predictable path needs no synchronization at all; the unpredictable")
	fmt.Println("path pays one in-order multicast write per node — the same mechanism")
	fmt.Println("Anton uses for atom migration (Section IV.B.5)")
}

// installCubeSync installs 26-neighbour multicast sync patterns (one per
// 2x2x2 coordinate parity class, which is collision-free on a 4^3 torus).
func installCubeSync(m *machine.Machine) {
	m.Torus.ForEach(func(c topo.Coord) {
		id := packet.MulticastID(cubeID(c))
		entries := map[topo.NodeID]*packet.McEntry{}
		get := func(n topo.NodeID) *packet.McEntry {
			e, ok := entries[n]
			if !ok {
				e = &packet.McEntry{}
				entries[n] = e
			}
			return e
		}
		for _, nc := range m.Torus.Neighbors26(c) {
			route := m.Torus.Route(c, nc)
			for _, step := range route {
				e := get(m.Torus.ID(step.From))
				found := false
				for _, p := range e.Out {
					if p == step.Port {
						found = true
					}
				}
				if !found {
					e.Out = append(e.Out, step.Port)
				}
			}
			dst := get(m.Torus.ID(nc))
			if len(dst.Local) == 0 {
				dst.Local = []packet.ClientKind{packet.Slice0}
			}
		}
		get(m.Torus.ID(c)) // source always has an entry
		for n, e := range entries {
			m.SetMulticast(n, id, *e)
		}
	})
}

func cubeID(c topo.Coord) int {
	return 100 + (c.X%4)*16 + (c.Y%4)*4 + c.Z%4
}
