// Allreduce: the paper's dimension-ordered global all-reduce (Table 2),
// compared against a radix-2 butterfly and an InfiniBand cluster.
//
// Run with: go run ./examples/allreduce
package main

import (
	"fmt"

	"anton/internal/cluster"
	"anton/internal/collective"
	"anton/internal/machine"
	"anton/internal/noc"
	"anton/internal/sim"
	"anton/internal/topo"
)

func main() {
	fmt.Println("32-byte global all-reduce across machine sizes (Table 2):")
	fmt.Printf("%-16s %22s %20s\n", "torus", "dimension-ordered (us)", "butterfly (us)")
	for _, tor := range []topo.Torus{
		topo.NewTorus(4, 4, 4),
		topo.NewTorus(8, 8, 4),
		topo.NewTorus(8, 8, 8),
		topo.NewTorus(8, 8, 16),
	} {
		dim := runDim(tor)
		fly := runButterfly(tor)
		fmt.Printf("%-16v %22.2f %20.2f\n", tor, dim.Us(), fly.Us())
	}

	// Verify the reduction actually reduces: every node contributes its
	// node id and every node must end up with the global sum.
	s := sim.New()
	m := machine.New(s, topo.NewTorus(4, 4, 4), noc.DefaultModel())
	ar := collective.NewAllReduce(m, collective.DefaultConfig(32))
	ar.Run(func(n topo.NodeID) []float64 {
		v := make([]float64, 8)
		v[0] = float64(n)
		return v
	}, nil)
	s.Run()
	want := float64(63 * 64 / 2)
	fmt.Printf("\ncorrectness: every node holds sum(0..63) = %v (want %v)\n", ar.Result(17)[0], want)

	// The comparison the paper highlights: 20x over InfiniBand.
	s2 := sim.New()
	ib := cluster.New(s2, 512, cluster.DDR2InfiniBand())
	var ibAt sim.Time
	ib.AllReduce(32, func(at sim.Time) { ibAt = at })
	s2.Run()
	anton := runDim(topo.NewTorus(8, 8, 8))
	fmt.Printf("\n512 nodes, 32 bytes: Anton %.2f us vs InfiniBand cluster %.1f us (%.0fx)\n",
		anton.Us(), sim.Dur(ibAt).Us(), float64(ibAt)/float64(anton))
}

func runDim(tor topo.Torus) sim.Dur {
	s := sim.New()
	m := machine.New(s, tor, noc.DefaultModel())
	ar := collective.NewAllReduce(m, collective.DefaultConfig(32))
	var done sim.Time
	ar.Run(nil, func(at sim.Time) { done = at })
	s.Run()
	return sim.Dur(done)
}

func runButterfly(tor topo.Torus) sim.Dur {
	s := sim.New()
	m := machine.New(s, tor, noc.DefaultModel())
	ar := collective.NewButterflyAllReduce(m, collective.DefaultConfig(32))
	var done sim.Time
	ar.Run(nil, func(at sim.Time) { done = at })
	s.Run()
	return sim.Dur(done)
}
