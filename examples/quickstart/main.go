// Quickstart: build a simulated Anton machine, perform counted remote
// writes, and observe the 162-nanosecond end-to-end latency.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"anton/internal/core"
	"anton/internal/machine"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

func main() {
	// A 512-node (8x8x8) machine with the paper-calibrated timing model.
	s := sim.New()
	m := machine.Default512(s)

	// 1. The headline: a zero-byte counted remote write between
	//    neighbouring nodes along X.
	src := packet.Client{Node: m.Torus.ID(topo.C(0, 0, 0)), Kind: packet.Slice0}
	dst := packet.Client{Node: m.Torus.ID(topo.C(1, 0, 0)), Kind: packet.Slice0}
	var avail sim.Time
	m.Client(dst).Wait(0, 1, func() { avail = s.Now() })
	m.Client(src).Write(dst, 0, 0, 0)
	s.Run()
	fmt.Printf("one X hop, zero-byte counted remote write: %.0f ns end to end\n\n", avail.Ns())

	// 2. The paradigm: several senders push data into one receiver's
	//    preallocated buffers; the receiver polls a single synchronization
	//    counter and computes when everything has arrived — no
	//    handshakes, no reverse traffic.
	p := core.NewPattern(m, "gather", 1, 0)
	target := packet.Client{Node: m.Torus.ID(topo.C(4, 4, 4)), Kind: packet.Slice0}
	var flows []*core.Flow
	for _, c := range []topo.Coord{{X: 3, Y: 4, Z: 4}, {X: 5, Y: 4, Z: 4}, {X: 4, Y: 3, Z: 4}, {X: 0, Y: 0, Z: 0}} {
		from := packet.Client{Node: m.Torus.ID(c), Kind: packet.Slice0}
		flows = append(flows, p.AddFlow(from, target, 2, 16, 2))
	}
	p.Freeze()
	fmt.Printf("pattern %q: target expects %d packets per round\n", "gather", p.Expected(target))

	start := s.Now()
	p.OnComplete(target, func() {
		sum := 0.0
		for _, w := range m.Client(target).Mem(0, 16) {
			sum += w
		}
		fmt.Printf("all data arrived after %.0f ns; sum of received words = %v\n",
			s.Now().Sub(start).Ns(), sum)
	})
	for i, f := range flows {
		f.Push(float64(i), 1)
		f.Push(float64(i), 1)
	}
	s.Run()

	st := m.Stats()
	fmt.Printf("\ntraffic: %d packets sent, %d delivered, %d bytes on the wire\n",
		st.Sent, st.Received, st.SentBytes)
	fmt.Println("note that the receiving node sent zero packets: counted remote writes")
	fmt.Println("embed synchronization in the communication itself")
}
