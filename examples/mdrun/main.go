// Mdrun: a complete molecular dynamics workflow. First the sequential MD
// engine integrates a small system (real physics: bonded terms,
// range-limited Lennard-Jones + Ewald real space, grid-based long-range
// electrostatics through the from-scratch FFT). Then the same dataflow is
// mapped onto a simulated 64-node Anton machine and the per-step
// communication structure is reported.
//
// Run with: go run ./examples/mdrun
package main

import (
	"fmt"

	"anton/internal/machine"
	"anton/internal/md"
	"anton/internal/mdmap"
	"anton/internal/noc"
	"anton/internal/sim"
	"anton/internal/topo"
)

func main() {
	// --- Part 1: real physics at laptop scale. ---
	sys := md.Build(md.Config{Molecules: 48, Temperature: 0.8, Seed: 42})
	fmt.Printf("built %d atoms in a %.2f^3 box: %d bonds, %d angles, %d range-limited pairs\n",
		sys.N(), sys.Box, len(sys.Bonds), len(sys.Angles), sys.PairCountWithinCutoff())

	in := md.NewIntegrator(sys, 0.002)
	in.LongRangeInterval = 2 // Anton evaluates long-range forces every other step
	e := in.ComputeForces()
	fmt.Printf("energies: bond %.3f, angle %.3f, range-limited %.3f, long-range %.3f, self %.3f\n",
		e.Bond, e.Angle, e.RangeLimited, e.LongRange, e.Self)

	e0 := in.TotalEnergy()
	in.Run(100)
	fmt.Printf("after 100 NVE steps: total energy %.4f -> %.4f (drift %.4f%%), temperature %.3f\n\n",
		e0, in.TotalEnergy(), 100*(in.TotalEnergy()-e0)/e0, sys.Temperature())

	// --- Part 2: the same dataflow on a simulated Anton machine. ---
	s := sim.New()
	m := machine.New(s, topo.NewTorus(4, 4, 4), noc.DefaultModel())
	cfg := mdmap.DefaultConfig()
	cfg.Atoms = 6000
	cfg.GridN = 16
	mp := mdmap.New(s, m, cfg)
	fmt.Printf("mapped a %d-atom system onto %d nodes: %d position packets/node,\n",
		mp.Sys.N(), m.Torus.Nodes(), mp.PosPackets())
	fmt.Printf("%d bond-term deliveries/step, import region of %d HTIS units\n\n",
		mp.BondInstances(), len(mp.ImportSet(0)))

	for i := 0; i < 4; i++ {
		st := mp.RunStep()
		fmt.Printf("step %d (%-13v): total %6.2f us, critical-path comm %6.2f us, "+
			"%3.0f msgs sent / %4.0f received per node\n",
			i+1, st.Kind, st.Total.Us(), st.Comm.Us(), st.SentPerNode, st.RecvPerNode)
	}
	fmt.Println("\nthe long-range steps include the distributed FFT convolution and the")
	fmt.Println("dimension-ordered all-reduce for the thermostat; every phase synchronizes")
	fmt.Println("through counted remote writes only")
}
