package anton

import (
	"fmt"
	"testing"

	"anton/internal/cluster"
	"anton/internal/collective"
	"anton/internal/fft"
	"anton/internal/harness"
	"anton/internal/machine"
	"anton/internal/md"
	"anton/internal/mdmap"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// The benchmarks below regenerate the paper's tables and figures, one
// benchmark per published artifact. Wall-clock ns/op measures the host's
// simulation speed; the simulated quantities the paper reports are
// attached as custom metrics (sim-us, sim-ns).

// BenchmarkFig5LatencyVsHops measures the Figure 5 curve's anchor points:
// 1 and 12 network hops, zero-byte counted remote writes.
func BenchmarkFig5LatencyVsHops(b *testing.B) {
	var one, twelve sim.Dur
	for i := 0; i < b.N; i++ {
		one = harness.OneWayLatency(topo.C(1, 0, 0), 0)
		twelve = harness.OneWayLatency(topo.C(4, 4, 4), 0)
	}
	b.ReportMetric(one.Ns(), "sim-ns/1hop")
	b.ReportMetric(twelve.Ns(), "sim-ns/12hop")
}

// BenchmarkFig6Breakdown measures the single-hop headline end to end.
func BenchmarkFig6Breakdown(b *testing.B) {
	var lat sim.Dur
	for i := 0; i < b.N; i++ {
		lat = harness.OneWayLatency(topo.C(1, 0, 0), 0)
	}
	b.ReportMetric(lat.Ns(), "sim-ns")
}

// BenchmarkTable1Survey measures the Anton entry of the latency survey.
func BenchmarkTable1Survey(b *testing.B) {
	var lat sim.Dur
	for i := 0; i < b.N; i++ {
		lat = harness.OneWayLatency(topo.C(1, 0, 0), 0)
	}
	b.ReportMetric(lat.Us(), "sim-us")
}

// BenchmarkFig7FineGrained runs the 2 KB / 64-message transfer on the
// simulated machine (Anton side of Figure 7).
func BenchmarkFig7FineGrained(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		e, _ := harness.Lookup("fig7")
		out = e.Run(true)
	}
	_ = out
}

// BenchmarkHalfBandwidth evaluates the message-size sweep of III.D.
func BenchmarkHalfBandwidth(b *testing.B) {
	e, _ := harness.Lookup("halfbw")
	for i := 0; i < b.N; i++ {
		_ = e.Run(true)
	}
}

// BenchmarkTable2AllReduce512 runs the 512-node 32-byte dimension-ordered
// all-reduce of Table 2.
func BenchmarkTable2AllReduce512(b *testing.B) {
	var done sim.Time
	for i := 0; i < b.N; i++ {
		s := sim.New()
		m := machine.Default512(s)
		ar := collective.NewAllReduce(m, collective.DefaultConfig(32))
		ar.Run(nil, func(at sim.Time) { done = at })
		s.Run()
	}
	b.ReportMetric(done.Us(), "sim-us")
}

// BenchmarkTable2Barrier runs the 0-byte reduction (fast global barrier).
func BenchmarkTable2Barrier(b *testing.B) {
	var done sim.Time
	for i := 0; i < b.N; i++ {
		s := sim.New()
		m := machine.Default512(s)
		collective.Barrier(m, collective.DefaultConfig(0), func(at sim.Time) { done = at })
		s.Run()
	}
	b.ReportMetric(done.Us(), "sim-us")
}

// BenchmarkTable3AntonStep runs one range-limited plus one long-range DHFR
// step on the 512-node machine — the Anton column of Table 3.
func BenchmarkTable3AntonStep(b *testing.B) {
	var rl, lr mdmap.StepTiming
	for i := 0; i < b.N; i++ {
		s := sim.New()
		m := machine.Default512(s)
		cfg := mdmap.DefaultConfig()
		cfg.MigrationInterval = 0
		mp := mdmap.New(s, m, cfg)
		rl = mp.RunStep()
		lr = mp.RunStep()
	}
	b.ReportMetric(rl.Total.Us(), "sim-us/range-limited")
	b.ReportMetric(lr.Total.Us(), "sim-us/long-range")
	b.ReportMetric((rl.Comm+lr.Comm).Us()/2, "sim-us/avg-comm")
}

// BenchmarkTable3Sweep runs the Table 3 measurement across four system
// sizes, once sequentially and once on four workers. Each sweep point
// owns an independent machine, so the per-size simulated timings are
// identical between the sub-benchmarks — only the host wall clock
// changes. Compare ns/op of the two sub-benchmarks for the speedup.
func BenchmarkTable3Sweep(b *testing.B) {
	sizes := []int{5000, 11000, 17758, 23558}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			prev := harness.Workers()
			harness.SetWorkers(workers)
			defer harness.SetWorkers(prev)
			var totals []sim.Dur
			for i := 0; i < b.N; i++ {
				totals = harness.Table3Sweep(sizes)
			}
			b.ReportMetric(totals[len(totals)-1].Us(), "sim-us/dhfr-avg-step")
		})
	}
}

// BenchmarkTable3DesmondStep measures the Desmond baseline's communication
// phases — the comparison column of Table 3.
func BenchmarkTable3DesmondStep(b *testing.B) {
	var pt cluster.PhaseTimes
	for i := 0; i < b.N; i++ {
		pt = cluster.Measure(512, cluster.DDR2InfiniBand())
	}
	b.ReportMetric(pt.RangeLimitedComm.Us(), "sim-us/range-limited-comm")
	b.ReportMetric(pt.LongRangeComm.Us(), "sim-us/long-range-comm")
}

// BenchmarkFig11BondAging compares a fresh bond program against one aged
// by eight million steps (the two curves of Figure 11).
func BenchmarkFig11BondAging(b *testing.B) {
	var fresh, aged sim.Dur
	for i := 0; i < b.N; i++ {
		s := sim.New()
		m := machine.Default512(s)
		cfg := mdmap.DefaultConfig()
		cfg.MigrationInterval = 0
		mp := mdmap.New(s, m, cfg)
		fresh = mp.RunStep().Total
		mp.RunStep()
		mp.SetBondAge(8_000_000)
		aged = mp.RunStep().Total
	}
	b.ReportMetric(fresh.Us(), "sim-us/fresh")
	b.ReportMetric(aged.Us(), "sim-us/aged-8M")
}

// BenchmarkFig12Migration compares migrating every step against every
// eighth step (the end points of Figure 12).
func BenchmarkFig12Migration(b *testing.B) {
	avg := func(interval int) sim.Dur {
		s := sim.New()
		m := machine.Default512(s)
		cfg := mdmap.DefaultConfig()
		cfg.Atoms = 17758
		cfg.MigrationInterval = interval
		mp := mdmap.New(s, m, cfg)
		var total sim.Dur
		steps := 2 * interval
		if steps < 4 {
			steps = 4
		}
		for i := 0; i < steps; i++ {
			total += mp.RunStep().Total
		}
		return total / sim.Dur(steps)
	}
	var every, rare sim.Dur
	for i := 0; i < b.N; i++ {
		every = avg(1)
		rare = avg(8)
	}
	b.ReportMetric(every.Us(), "sim-us/interval-1")
	b.ReportMetric(rare.Us(), "sim-us/interval-8")
}

// BenchmarkFig13Trace runs the two traced time steps behind the activity
// timeline.
func BenchmarkFig13Trace(b *testing.B) {
	e, _ := harness.Lookup("fig13")
	for i := 0; i < b.N; i++ {
		_ = e.Run(true)
	}
}

// BenchmarkMigrationSync measures the 26-neighbour in-order multicast
// synchronization write of Section IV.B.5.
func BenchmarkMigrationSync(b *testing.B) {
	var d sim.Dur
	for i := 0; i < b.N; i++ {
		s := sim.New()
		m := machine.Default512(s)
		d = mdmap.MeasureMigrationSync(m)
	}
	b.ReportMetric(d.Us(), "sim-us")
}

// BenchmarkFFTConvolution32 runs the 32x32x32 distributed FFT convolution
// on 512 nodes (the FFT row of Table 3, and the companion paper's
// four-microsecond FFT).
func BenchmarkFFTConvolution32(b *testing.B) {
	var at sim.Time
	for i := 0; i < b.N; i++ {
		s := sim.New()
		m := machine.Default512(s)
		d := fft.NewDist(m, 32, 0)
		d.Convolve(fft.NewGrid(32), fft.NewGrid(32), func(_ *fft.Grid, t sim.Time) { at = t })
		s.Run()
	}
	b.ReportMetric(at.Us(), "sim-us")
}

// BenchmarkAblationAllReduce compares the three all-reduce designs of the
// IV.B.4 ablation.
func BenchmarkAblationAllReduce(b *testing.B) {
	run := func(mk func(m *machine.Machine, cfg collective.Config) interface {
		Run(func(topo.NodeID) []float64, func(sim.Time))
	}) sim.Dur {
		s := sim.New()
		m := machine.Default512(s)
		var done sim.Time
		mk(m, collective.DefaultConfig(32)).Run(nil, func(at sim.Time) { done = at })
		s.Run()
		return sim.Dur(done)
	}
	var dim, fly sim.Dur
	for i := 0; i < b.N; i++ {
		dim = run(func(m *machine.Machine, cfg collective.Config) interface {
			Run(func(topo.NodeID) []float64, func(sim.Time))
		} {
			return collective.NewAllReduce(m, cfg)
		})
		fly = run(func(m *machine.Machine, cfg collective.Config) interface {
			Run(func(topo.NodeID) []float64, func(sim.Time))
		} {
			return collective.NewButterflyAllReduce(m, cfg)
		})
	}
	b.ReportMetric(dim.Us(), "sim-us/dim-ordered")
	b.ReportMetric(fly.Us(), "sim-us/butterfly")
}

// BenchmarkMDEngineStep measures the sequential MD engine's force
// evaluation (the physical substrate).
func BenchmarkMDEngineStep(b *testing.B) {
	sys := md.Build(md.Config{Molecules: 64, Temperature: 1, Seed: 1})
	in := md.NewIntegrator(sys, 0.002)
	in.ComputeForces()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Step()
	}
}

// BenchmarkMachineThroughput measures raw simulator performance: packets
// delivered per second of host time.
func BenchmarkMachineThroughput(b *testing.B) {
	s := sim.New()
	m := machine.New(s, topo.NewTorus(4, 4, 4), noc.DefaultModel())
	slice := func(n topo.NodeID) packet.Client {
		return packet.Client{Node: n, Kind: packet.Slice0}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := topo.NodeID(i % 64)
		dst := topo.NodeID((i * 31) % 64)
		m.Client(slice(src)).Write(slice(dst), 0, 0, 32)
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}
