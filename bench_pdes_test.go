package anton

import (
	"fmt"
	"testing"

	"anton/internal/harness"
)

// BenchmarkPDES times the parallel event kernel on the perf-gate
// workloads at the worker counts the committed BENCH_pdes.json baseline
// tracks. The simulated event count is attached as a custom metric; it
// is identical at every worker setting — only the host wall clock
// changes. cmd/benchgate runs the same workloads (via
// harness.PDESBenchmarks) and gates CI on the wall-time trajectory.
func BenchmarkPDES(b *testing.B) {
	for _, bm := range harness.PDESBenchmarks() {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", bm.Name, workers), func(b *testing.B) {
				var events uint64
				for i := 0; i < b.N; i++ {
					events = bm.Run(workers)
				}
				b.ReportMetric(float64(events), "sim-events")
			})
		}
	}
}
