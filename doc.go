// Package anton is a reproduction, in Go, of "Exploiting 162-Nanosecond
// End-to-End Communication Latency on Anton" (Dror et al., SC10). The
// repository contains a deterministic event-driven model of Anton's
// communication architecture, a molecular dynamics engine and its mapping
// onto the machine, a commodity-cluster baseline, and a harness that
// regenerates every table and figure of the paper's evaluation; see the
// README and DESIGN.md. The top-level benchmarks in bench_test.go run one
// reproduction per published table and figure.
package anton
