module anton

go 1.22
