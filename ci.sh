#!/bin/sh
# CI gate: static checks plus the race-detector run of the short test
# suite. The goroutine-parallel compute layer (internal/par and its
# users) must stay clean under the race detector; the -short suite keeps
# the gate fast while still covering every package, including the
# par stress test and the bit-determinism equivalence tests.
#
# Usage: ./ci.sh
set -eu

echo "== go vet =="
go vet ./...

echo "== go vet (fault layer) =="
go vet ./internal/fault

echo "== go build =="
go build ./...

echo "== go test -race -short =="
go test -race -short ./...

echo "== fault suite (-race -short) =="
# The fault-injection subsystem and its consumers: the injector unit
# tests, the scenario goldens, the collective losslessness test, and the
# zero-rate golden-identity gate. Redundant with the full sweep above,
# but kept explicit so a fault regression is named in CI output.
go test -race -short ./internal/fault ./internal/collective ./cmd/antonbench

echo "== fuzz corpus (FuzzFaultPlanParse seeds) =="
# Runs the checked-in seed corpus as regular tests (no fuzzing time).
go test -run FuzzFaultPlanParse ./internal/fault

echo "CI checks passed."
