#!/bin/sh
# CI gate: lint and static checks, the race-detector run of the short
# test suite, the named subsystem batteries (fault injection, metrics,
# hard-failure recovery, checkpoint/restart, the analytic fast-path
# tier, the HTTP serving tier with its cache-equivalence and stress
# batteries), the PDES golden-identity gate (every report byte-identical
# at any -workers setting), the PDES perf-trajectory gate against the
# committed BENCH_pdes.json, the analytic fast-path gate against
# BENCH_analytic.json (exact answer checksums plus the >=1000x per-query
# speedup floor), and the serving-tier load gate against BENCH_serve.json
# (exact response checksum, latency within SERVE_TOLERANCE).
#
# Usage: ./ci.sh
#
# Environment:
#   BENCH_TOLERANCE  relative wall-time regression that fails the perf
#                    gate (default 0.15; CI runners with noisy
#                    neighbours set it looser). After a deliberate perf
#                    or model change, re-baseline with:
#                    go run ./cmd/benchgate -update
#   SERVE_TOLERANCE  relative latency/throughput regression that fails
#                    the serving-tier load gate (default 0.50; the
#                    checksum and cache accounting are always exact).
set -eu

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# stage NAME closes the previous stage with its wall time and opens the
# next, so the CI log shows where the minutes go.
ci_start=$(date +%s)
stage_start=$ci_start
stage_name=""
stage() {
	now=$(date +%s)
	if [ -n "$stage_name" ]; then
		echo "-- $stage_name: $((now - stage_start))s"
	fi
	stage_name=$1
	stage_start=$now
	echo "== $1 =="
}

stage "lint"
# gofmt must be clean repo-wide; shellcheck guards this script when the
# host has it (graceful skip otherwise — CI images vary).
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi
if command -v shellcheck >/dev/null 2>&1; then
	shellcheck ci.sh
else
	echo "shellcheck not installed; skipping"
fi

stage "go vet"
go vet ./...

stage "go build"
# Compile everything once, and install the CLIs the later stages loop
# over into $tmpdir/bin so each `go run` below becomes a plain binary
# invocation instead of a rebuild.
go build ./...
mkdir -p "$tmpdir/bin"
go build -o "$tmpdir/bin/antonbench" ./cmd/antonbench
go build -o "$tmpdir/bin/mdsim" ./cmd/mdsim
go build -o "$tmpdir/bin/benchgate" ./cmd/benchgate
go build -o "$tmpdir/bin/antonserve" ./cmd/antonserve
go build -o "$tmpdir/bin/loadgen" ./cmd/loadgen

stage "go test -race -short"
go test -race -short ./...

stage "fault suite (-race -short)"
# The fault-injection subsystem and its consumers: the injector unit
# tests, the scenario goldens, the collective losslessness test, and the
# zero-rate golden-identity gate. Redundant with the full sweep above,
# but kept explicit so a fault regression is named in CI output.
go test -race -short ./internal/fault ./internal/collective ./cmd/antonbench

stage "fuzz corpus (FuzzFaultPlanParse seeds)"
# Runs the checked-in seed corpus as regular tests (no fuzzing time).
go test -run FuzzFaultPlanParse ./internal/fault

stage "fuzz corpus (FuzzPDESDifferential seeds, -race)"
# The differential determinism fuzzer's seed corpus — random machine
# workloads compared sequential vs PDES across a workers×grain grid —
# replayed as regular tests under the race detector.
go test -race -run FuzzPDESDifferential ./internal/sim

stage "analytic suite"
# The closed-form fast-path tier's validation battery: the exact
# differential tests (point-to-point writes, packet trains, collectives,
# the InfiniBand cluster), the property tests (monotonicity in hops and
# payload, src/dst symmetry, serialization additivity, the 11 pinned
# Figure 6 routes, the torus-diameter worst case), the calibrated step
# model's error-bound and refusal tests, the fastpath report goldens in
# both fidelities, and the -fidelity error paths of all three CLIs.
go test ./internal/analytic
go test -run 'Fastpath|FidelityGate' ./cmd/antonbench ./cmd/latency ./cmd/mdsim

stage "fuzz corpus (FuzzAnalyticVsDES seeds, -race)"
# The analytic-vs-DES differential fuzzer's checked-in corpus — random
# topologies, routes, payload trains, collective shapes, and cluster
# transfers, the closed form compared exactly against the event
# simulator — replayed as regular tests under the race detector.
go test -race -run FuzzAnalyticVsDES ./internal/analytic

stage "metrics suite"
# The measured-latency observability layer: unit and property tests
# (histogram merge associativity/commutativity, count conservation),
# the Figure 6 measured-vs-calibrated cross-validation, the golden
# report/JSON/trace artifacts, and — under the race detector — the
# parallel shard-merge test plus the metrics-on golden-identity gate
# (recording must not change a byte of any simulation result).
go test ./internal/metrics
go test -race -run 'ParallelShardMerge|MetricsArtifactsWorkerIndependent|MetricsZeroOverheadIdentity' \
	./internal/metrics ./internal/harness ./cmd/antonbench

stage "metrics worker-independence (BENCH_metrics.json)"
# The machine-readable artifact must be byte-identical at any -workers
# setting; exercised through the real CLI.
for w in 1 4 8; do
	"$tmpdir/bin/antonbench" -quick -workers "$w" \
		-bench-out "$tmpdir/bench-$w.json" -trace-out "$tmpdir/trace-$w.json" metrics >/dev/null
done
cmp "$tmpdir/bench-1.json" "$tmpdir/bench-4.json"
cmp "$tmpdir/bench-1.json" "$tmpdir/bench-8.json"
cmp "$tmpdir/trace-1.json" "$tmpdir/trace-4.json"
cmp "$tmpdir/trace-1.json" "$tmpdir/trace-8.json"

stage "fuzz corpus (FuzzRequestDigest seeds)"
# The serving tier's cache-key fuzzer: accepted request bodies must
# digest identically under JSON reorder/whitespace re-encoding and
# workers/metrics mutation, and differently when quick flips. Replays
# the seed corpus as regular tests.
go test -run FuzzRequestDigest ./internal/serve

stage "serve suite (-race -short)"
# The simulation-as-a-service tier: request normalization and digest
# unit tests, the single-flight cache, the cheap tier of the
# cache-equivalence battery (miss/hit/evict/recompute byte-identity),
# and the golden HTTP API transcript — all under the race detector.
go test -race -short ./internal/serve

stage "serve stress (-race, 120 mixed clients)"
# 120 concurrent clients: sync runs at both fidelities, faulted
# variants, async jobs with mid-run cancellations, malformed requests —
# every interleaving must serve byte-identical bodies per digest.
go test -race -run ServeStressMixedClients ./internal/serve

stage "serve dedup + checkpoint restore"
# Single-flight dedup (N identical concurrent requests, exactly one
# simulation) and the restart path (a restored cache answers
# byte-identically without recomputing, artifacts included).
go test -run 'TestSingleFlightDedup|TestCheckpointRestore|TestLoadChecksumDeterministic' ./internal/serve

stage "chaos suite (drain, kill -9, restart byte-identity)"
# The serving tier's crash battery against a real antonserve process:
# (1) drive retried load at a live server and snapshot every mix
# digest's bytes, (2) SIGTERM must drain gracefully — readiness flips,
# in-flight work finishes or aborts within the budget, the checkpoint
# persists exactly once, exit code 0, (3) a fresh server is kill -9'd
# under load (checkpoint writes included), and (4) the restarted server
# must restore an uncorrupted checkpoint and serve every previously
# fetched digest byte-identically.
chaos_addr="127.0.0.1:18321"
chaos_url="http://$chaos_addr"
"$tmpdir/bin/antonserve" -addr "$chaos_addr" -checkpoint "$tmpdir/chaos.ckpt" \
	-drain 10s >"$tmpdir/chaos-1.log" 2>&1 &
chaos_pid=$!
"$tmpdir/bin/loadgen" -addr "$chaos_url" -wait-ready 15s -n 60 -clients 6 -retries 4 -seed 1
"$tmpdir/bin/loadgen" -addr "$chaos_url" -fetch "$tmpdir/chaos-before"
kill -TERM "$chaos_pid"
wait "$chaos_pid" # set -e: a non-zero drain exit fails the stage
# Crash: restart from the drained checkpoint, put fresh uncached DES
# work in flight (each completion rewrites the checkpoint, so the kill
# can land mid-persist — the atomic write-then-rename must keep the
# file whole), and SIGKILL the process.
"$tmpdir/bin/antonserve" -addr "$chaos_addr" -checkpoint "$tmpdir/chaos.ckpt" \
	-drain 10s >"$tmpdir/chaos-2.log" 2>&1 &
chaos_pid=$!
"$tmpdir/bin/loadgen" -addr "$chaos_url" -wait-ready 15s -n 20 -clients 4 -retries 4 -seed 2
"$tmpdir/bin/loadgen" -addr "$chaos_url" -n 2000 -clients 16 -extra-faults 64 \
	-retries 0 -seed 3 >/dev/null 2>&1 &
chaos_load=$!
sleep 1
kill -9 "$chaos_pid"
wait "$chaos_pid" 2>/dev/null || true
wait "$chaos_load" 2>/dev/null || true
# Restart: the checkpoint must restore (a corrupt one exits 1 and
# -wait-ready fails the stage) and serve the pre-crash bytes.
"$tmpdir/bin/antonserve" -addr "$chaos_addr" -checkpoint "$tmpdir/chaos.ckpt" \
	-drain 10s >"$tmpdir/chaos-3.log" 2>&1 &
chaos_pid=$!
"$tmpdir/bin/loadgen" -addr "$chaos_url" -wait-ready 15s -fetch "$tmpdir/chaos-after"
for f in "$tmpdir/chaos-before"/*.json; do
	cmp "$f" "$tmpdir/chaos-after/$(basename "$f")"
done
kill -TERM "$chaos_pid"
wait "$chaos_pid"

stage "recovery suite"
# Hard-failure survival: the machine and cluster recovery batteries
# (fault-aware rerouting, watchdog reissue/degraded waits, uplink
# failover), the detour-route property tests, the killed-link and
# dead-node scenario goldens, the recovery-event observability tests,
# the checkpoint format validation tests, and the killsweep golden.
go test -race -run 'KilledLink|DeadNode|Watchdog|Reissue|InOrderTickets|RecoveryDeterministic|KillFree|ClusterUplink|ClusterAllReduceDead|ClusterDesmondDead|ClusterRecovery|ClusterKillFree|RouteTable|Detour|Scenario|Recovery' \
	./internal/machine ./internal/cluster ./internal/topo ./internal/fault ./internal/metrics
go test ./internal/checkpoint
go test -run Killsweep ./cmd/antonbench

stage "checkpoint/restart bit-identity"
# Kill a faulted mdsim run at step N/2, restore, and continue: the
# restored output must be byte-identical to a run that was never killed,
# at any -workers setting and across worker counts.
mdflags="-faults seed=9,killlink=0:X+@2us,wdog=15us -engine-molecules 16 -atoms 4000 -torus 2x2x2"
# shellcheck disable=SC2086  # mdflags is a deliberately word-split flag list
"$tmpdir/bin/mdsim" $mdflags -steps 12 -workers 1 >"$tmpdir/md-full.out"
for w in 1 4 8; do
	# shellcheck disable=SC2086
	"$tmpdir/bin/mdsim" $mdflags -steps 6 -workers "$w" -checkpoint-out "$tmpdir/md-$w.ckpt" >/dev/null
	"$tmpdir/bin/mdsim" -restore "$tmpdir/md-$w.ckpt" -steps 12 -workers "$w" >"$tmpdir/md-$w.out"
	cmp "$tmpdir/md-full.out" "$tmpdir/md-$w.out"
done
# Cross-worker: a snapshot taken at one worker count restores bit-
# identically at another.
"$tmpdir/bin/mdsim" -restore "$tmpdir/md-4.ckpt" -steps 12 -workers 8 >"$tmpdir/md-cross.out"
cmp "$tmpdir/md-full.out" "$tmpdir/md-cross.out"

stage "PDES golden identity (workers 1 vs 8)"
# The parallel event kernel must not change a byte of any experiment
# report or trace. Run the headline latency experiment, the metrics
# observability experiment (capturing its chrome-trace export), both
# fault sweeps, and the analytic fast-path differential report through
# the real CLI sequentially and fully parallel, strip the wall-clock
# footers ("[id completed in N.Ns]") and the trace-path status line
# ("wrote ...") — the only lines that differ by construction — and
# require identical bytes.
for w in 1 8; do
	"$tmpdir/bin/antonbench" -quick -workers "$w" \
		-trace-out "$tmpdir/pdes-trace-$w.json" fig6 metrics faultsweep killsweep fastpath |
		sed -e '/^\[.* completed in /d' -e '/^wrote /d' >"$tmpdir/pdes-$w.out"
done
cmp "$tmpdir/pdes-1.out" "$tmpdir/pdes-8.out"
cmp "$tmpdir/pdes-trace-1.json" "$tmpdir/pdes-trace-8.json"

stage "perf gates (BENCH_pdes.json, BENCH_analytic.json, BENCH_serve.json)"
# Time the PDES kernel on the gate workloads at workers 1/4/8 and
# compare wall time against the committed baseline (exact event counts
# are part of the contract), then gate the analytic fast-path tier:
# exact answer checksums (the fit fingerprint) and the >=1000x
# per-query speedup floor over one equivalent DES run. Finally replay
# the committed serving-tier load mix against an in-process antonserve:
# the response checksum and cache accounting are pinned exactly, the
# client-observed p50/p99/throughput within SERVE_TOLERANCE (default
# 0.50). Regenerates all three artifacts into $tmpdir for inspection.
"$tmpdir/bin/benchgate" -baseline BENCH_pdes.json -out "$tmpdir/BENCH_pdes.json" \
	-analytic-baseline BENCH_analytic.json -analytic-out "$tmpdir/BENCH_analytic.json" \
	-serve-baseline BENCH_serve.json -serve-out "$tmpdir/BENCH_serve.json"

stage "done"
echo "CI checks passed in $((stage_start - ci_start))s."
