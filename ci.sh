#!/bin/sh
# CI gate: static checks plus the race-detector run of the short test
# suite. The goroutine-parallel compute layer (internal/par and its
# users) must stay clean under the race detector; the -short suite keeps
# the gate fast while still covering every package, including the
# par stress test and the bit-determinism equivalence tests.
#
# Usage: ./ci.sh
set -eu

echo "== go vet =="
go vet ./...

echo "== go vet (fault layer) =="
go vet ./internal/fault

echo "== go build =="
go build ./...

echo "== go test -race -short =="
go test -race -short ./...

echo "== fault suite (-race -short) =="
# The fault-injection subsystem and its consumers: the injector unit
# tests, the scenario goldens, the collective losslessness test, and the
# zero-rate golden-identity gate. Redundant with the full sweep above,
# but kept explicit so a fault regression is named in CI output.
go test -race -short ./internal/fault ./internal/collective ./cmd/antonbench

echo "== fuzz corpus (FuzzFaultPlanParse seeds) =="
# Runs the checked-in seed corpus as regular tests (no fuzzing time).
go test -run FuzzFaultPlanParse ./internal/fault

echo "== metrics-suite =="
# The measured-latency observability layer: unit and property tests
# (histogram merge associativity/commutativity, count conservation),
# the Figure 6 measured-vs-calibrated cross-validation, the golden
# report/JSON/trace artifacts, and — under the race detector — the
# parallel shard-merge test plus the metrics-on golden-identity gate
# (recording must not change a byte of any simulation result).
go test ./internal/metrics
go test -race -run 'ParallelShardMerge|MetricsArtifactsWorkerIndependent|MetricsZeroOverheadIdentity' \
	./internal/metrics ./internal/harness ./cmd/antonbench

echo "== metrics worker-independence (BENCH_metrics.json) =="
# The machine-readable artifact must be byte-identical at any -workers
# setting; exercised through the real CLI.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
for w in 1 4 8; do
	go run ./cmd/antonbench -quick -workers "$w" \
		-bench-out "$tmpdir/bench-$w.json" -trace-out "$tmpdir/trace-$w.json" metrics >/dev/null
done
cmp "$tmpdir/bench-1.json" "$tmpdir/bench-4.json"
cmp "$tmpdir/bench-1.json" "$tmpdir/bench-8.json"
cmp "$tmpdir/trace-1.json" "$tmpdir/trace-4.json"
cmp "$tmpdir/trace-1.json" "$tmpdir/trace-8.json"

echo "== recovery-suite =="
# Hard-failure survival: the machine and cluster recovery batteries
# (fault-aware rerouting, watchdog reissue/degraded waits, uplink
# failover), the detour-route property tests, the killed-link and
# dead-node scenario goldens, the recovery-event observability tests,
# the checkpoint format validation tests, and the killsweep golden.
go test -race -run 'KilledLink|DeadNode|Watchdog|Reissue|InOrderTickets|RecoveryDeterministic|KillFree|ClusterUplink|ClusterAllReduceDead|ClusterDesmondDead|ClusterRecovery|ClusterKillFree|RouteTable|Detour|Scenario|Recovery' \
	./internal/machine ./internal/cluster ./internal/topo ./internal/fault ./internal/metrics
go test ./internal/checkpoint
go test -run Killsweep ./cmd/antonbench

echo "== checkpoint/restart bit-identity =="
# Kill a faulted mdsim run at step N/2, restore, and continue: the
# restored output must be byte-identical to a run that was never killed,
# at any -workers setting and across worker counts.
mdflags="-faults seed=9,killlink=0:X+@2us,wdog=15us -engine-molecules 16 -atoms 4000 -torus 2x2x2"
go run ./cmd/mdsim $mdflags -steps 12 -workers 1 >"$tmpdir/md-full.out"
for w in 1 4 8; do
	go run ./cmd/mdsim $mdflags -steps 6 -workers "$w" -checkpoint-out "$tmpdir/md-$w.ckpt" >/dev/null
	go run ./cmd/mdsim -restore "$tmpdir/md-$w.ckpt" -steps 12 -workers "$w" >"$tmpdir/md-$w.out"
	cmp "$tmpdir/md-full.out" "$tmpdir/md-$w.out"
done
# Cross-worker: a snapshot taken at one worker count restores bit-
# identically at another.
go run ./cmd/mdsim -restore "$tmpdir/md-4.ckpt" -steps 12 -workers 8 >"$tmpdir/md-cross.out"
cmp "$tmpdir/md-full.out" "$tmpdir/md-cross.out"

echo "CI checks passed."
