#!/bin/sh
# CI gate: static checks plus the race-detector run of the short test
# suite. The goroutine-parallel compute layer (internal/par and its
# users) must stay clean under the race detector; the -short suite keeps
# the gate fast while still covering every package, including the
# par stress test and the bit-determinism equivalence tests.
#
# Usage: ./ci.sh
set -eu

echo "== go vet =="
go vet ./...

echo "== go vet (fault layer) =="
go vet ./internal/fault

echo "== go build =="
go build ./...

echo "== go test -race -short =="
go test -race -short ./...

echo "== fault suite (-race -short) =="
# The fault-injection subsystem and its consumers: the injector unit
# tests, the scenario goldens, the collective losslessness test, and the
# zero-rate golden-identity gate. Redundant with the full sweep above,
# but kept explicit so a fault regression is named in CI output.
go test -race -short ./internal/fault ./internal/collective ./cmd/antonbench

echo "== fuzz corpus (FuzzFaultPlanParse seeds) =="
# Runs the checked-in seed corpus as regular tests (no fuzzing time).
go test -run FuzzFaultPlanParse ./internal/fault

echo "== metrics-suite =="
# The measured-latency observability layer: unit and property tests
# (histogram merge associativity/commutativity, count conservation),
# the Figure 6 measured-vs-calibrated cross-validation, the golden
# report/JSON/trace artifacts, and — under the race detector — the
# parallel shard-merge test plus the metrics-on golden-identity gate
# (recording must not change a byte of any simulation result).
go test ./internal/metrics
go test -race -run 'ParallelShardMerge|MetricsArtifactsWorkerIndependent|MetricsZeroOverheadIdentity' \
	./internal/metrics ./internal/harness ./cmd/antonbench

echo "== metrics worker-independence (BENCH_metrics.json) =="
# The machine-readable artifact must be byte-identical at any -workers
# setting; exercised through the real CLI.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
for w in 1 4 8; do
	go run ./cmd/antonbench -quick -workers "$w" \
		-bench-out "$tmpdir/bench-$w.json" -trace-out "$tmpdir/trace-$w.json" metrics >/dev/null
done
cmp "$tmpdir/bench-1.json" "$tmpdir/bench-4.json"
cmp "$tmpdir/bench-1.json" "$tmpdir/bench-8.json"
cmp "$tmpdir/trace-1.json" "$tmpdir/trace-4.json"
cmp "$tmpdir/trace-1.json" "$tmpdir/trace-8.json"

echo "CI checks passed."
