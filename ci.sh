#!/bin/sh
# CI gate: static checks plus the race-detector run of the short test
# suite. The goroutine-parallel compute layer (internal/par and its
# users) must stay clean under the race detector; the -short suite keeps
# the gate fast while still covering every package, including the
# par stress test and the bit-determinism equivalence tests.
#
# Usage: ./ci.sh
set -eu

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race -short =="
go test -race -short ./...

echo "CI checks passed."
