package md

import "math"

// Virial support: the paper's Figure 2 shows the global all-reduce
// computing "kinetic energy / virial" — the virial feeds the barostat
// (pressure control) exactly as the kinetic energy feeds the thermostat.
// The force routines accumulate the virial trace W = sum(r_ij . F_ij)
// alongside the forces; Pressure combines it with the kinetic energy.

// Pressure returns the instantaneous pressure from the most recent force
// evaluation's virial: P = (2*KE + W) / (3V).
func (s *System) Pressure() float64 {
	v := s.Box * s.Box * s.Box
	return (2*s.KineticEnergy() + s.Virial) / (3 * v)
}

// Barostat is a Berendsen pressure coupler: it rescales the box and all
// positions toward a target pressure. On Anton, the virial it consumes
// arrives through the same dimension-ordered all-reduce as the
// thermostat's kinetic energy.
type Barostat struct {
	TargetP float64
	// TauInv is dt/tau_p combined with the compressibility: the fraction
	// of the pressure error corrected per step.
	TauInv float64
}

// Apply rescales s toward the target pressure and returns the linear
// scale factor used.
func (b Barostat) Apply(s *System) float64 {
	p := s.Pressure()
	mu := 1 + b.TauInv*(p-b.TargetP)
	// Clamp to gentle rescalings for stability.
	if mu < 0.98 {
		mu = 0.98
	}
	if mu > 1.02 {
		mu = 1.02
	}
	scale := math.Cbrt(mu)
	s.Box *= scale
	for i := range s.Pos {
		s.Pos[i] = s.Pos[i].Scale(scale)
	}
	return scale
}
