package md

import "math"

// Dihedral is a periodic torsion over atoms I-J-K-L:
// V = K*(1 + cos(n*phi - phi0)), with phi the angle between the IJK and
// JKL planes. Torsions appear in the protein-like chain molecules the
// builder can embed in the solvent (the paper's DHFR system is a protein
// surrounded by water).
type Dihedral struct {
	I, J, K, L int
	K_         float64 // force constant
	N          int     // periodicity
	Phi0       float64 // phase
}

// DihedralForces accumulates torsion forces into s.Frc and returns the
// torsion energy. The gradient follows the standard formulation via the
// plane normals.
func (s *System) DihedralForces() float64 {
	var e float64
	for _, d := range s.Dihedrals {
		b1 := s.MinImage(s.Pos[d.J], s.Pos[d.I])
		b2 := s.MinImage(s.Pos[d.K], s.Pos[d.J])
		b3 := s.MinImage(s.Pos[d.L], s.Pos[d.K])

		n1 := b1.Cross(b2) // normal of plane IJK
		n2 := b2.Cross(b3) // normal of plane JKL
		n1sq, n2sq := n1.Norm2(), n2.Norm2()
		b2len := b2.Norm()
		if n1sq < 1e-12 || n2sq < 1e-12 || b2len < 1e-12 {
			continue // collinear: torsion undefined
		}
		// Signed dihedral angle.
		cosPhi := clamp(n1.Dot(n2)/math.Sqrt(n1sq*n2sq), -1, 1)
		sinPhi := n1.Cross(n2).Dot(b2) / (math.Sqrt(n1sq*n2sq) * b2len)
		phi := math.Atan2(sinPhi, cosPhi)

		e += d.K_ * (1 + math.Cos(float64(d.N)*phi-d.Phi0))
		// dV/dphi
		dV := -d.K_ * float64(d.N) * math.Sin(float64(d.N)*phi-d.Phi0)

		// Standard analytic gradient (see e.g. Allen & Tildesley):
		// dphi/dr_I = -|b2|/|n1|^2 * n1 ; dphi/dr_L = +|b2|/|n2|^2 * n2;
		// the inner atoms take the remainder, split so that both total
		// force and torque vanish.
		g1 := n1.Scale(-b2len / n1sq)
		g4 := n2.Scale(b2len / n2sq)
		s1 := b1.Dot(b2) / b2.Norm2()
		s2 := b3.Dot(b2) / b2.Norm2()
		g2 := g1.Scale(-(1 + s1)).Add(g4.Scale(s2))
		g3 := g1.Scale(s1).Sub(g4.Scale(1 + s2))

		fI, fK, fL := g1.Scale(-dV), g3.Scale(-dV), g4.Scale(-dV)
		s.Frc[d.I] = s.Frc[d.I].Add(fI)
		s.Frc[d.J] = s.Frc[d.J].Add(g2.Scale(-dV))
		s.Frc[d.K] = s.Frc[d.K].Add(fK)
		s.Frc[d.L] = s.Frc[d.L].Add(fL)
		// Positions relative to atom J (forces sum to zero).
		s.Virial += fI.Dot(b1.Scale(-1)) + fK.Dot(b2) + fL.Dot(b2.Add(b3))
	}
	return e
}
