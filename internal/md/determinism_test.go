package md

import (
	"runtime"
	"testing"
)

// The parallel force kernels promise more than reproducibility: for any
// worker count they reproduce the sequential execution bit for bit,
// because contributions are recorded per fixed shard and replayed in the
// canonical order. The tests below check that promise on every layer —
// individual kernels, the k-space grids, and whole trajectories — across
// several seeds.

var workerCounts = []int{4, runtime.GOMAXPROCS(0), 0}

func TestRangeLimitedForcesBitDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 11, 29} {
		ref := Build(Config{Molecules: 40, Temperature: 1, Seed: seed, Workers: 1})
		eRef := ref.RangeLimitedForces()
		for _, w := range workerCounts {
			s := Build(Config{Molecules: 40, Temperature: 1, Seed: seed, Workers: w})
			e := s.RangeLimitedForces()
			if e != eRef {
				t.Fatalf("seed %d workers %d: energy %x, want %x", seed, w, e, eRef)
			}
			if s.Virial != ref.Virial {
				t.Fatalf("seed %d workers %d: virial %x, want %x", seed, w, s.Virial, ref.Virial)
			}
			for i := range s.Frc {
				if s.Frc[i] != ref.Frc[i] {
					t.Fatalf("seed %d workers %d: force[%d] = %v, want %v", seed, w, i, s.Frc[i], ref.Frc[i])
				}
			}
		}
	}
}

func TestLongRangeBitDeterminism(t *testing.T) {
	for _, seed := range []int64{5, 17} {
		ref := Build(Config{Molecules: 24, Temperature: 1, Seed: seed, GridN: 16, Workers: 1})
		gRef := NewGSE(ref)
		rhoRef := gRef.Spread()
		phiRef := gRef.Convolve(rhoRef.Clone())
		eRef := gRef.EnergyAndForces(phiRef)
		for _, w := range workerCounts {
			s := Build(Config{Molecules: 24, Temperature: 1, Seed: seed, GridN: 16, Workers: w})
			g := NewGSE(s)
			rho := g.Spread()
			for i := range rho.Data {
				if rho.Data[i] != rhoRef.Data[i] {
					t.Fatalf("seed %d workers %d: charge grid[%d] = %v, want %v", seed, w, i, rho.Data[i], rhoRef.Data[i])
				}
			}
			phi := g.Convolve(rho.Clone())
			for i := range phi.Data {
				if phi.Data[i] != phiRef.Data[i] {
					t.Fatalf("seed %d workers %d: potential grid[%d] differs", seed, w, i)
				}
			}
			if e := g.EnergyAndForces(phi); e != eRef {
				t.Fatalf("seed %d workers %d: k-space energy %x, want %x", seed, w, e, eRef)
			}
			if g.Virial() != gRef.Virial() {
				t.Fatalf("seed %d workers %d: k-space virial differs", seed, w)
			}
			for i := range s.Frc {
				if s.Frc[i] != ref.Frc[i] {
					t.Fatalf("seed %d workers %d: k-space force[%d] differs", seed, w, i)
				}
			}
		}
	}
}

// Whole-trajectory check: every position, velocity, and energy bit after
// a thermostatted multi-step run must match the sequential run, since the
// per-step forces do.
func TestTrajectoryBitDeterminism(t *testing.T) {
	run := func(seed int64, w int) (*System, float64) {
		s := Build(Config{Molecules: 16, Temperature: 1, Seed: seed, Workers: w})
		in := NewIntegrator(s, 0.002)
		in.Thermostat = true
		in.TargetT = 0.9
		in.LongRangeInterval = 2
		in.Run(12)
		return s, in.TotalEnergy()
	}
	for _, seed := range []int64{7, 43} {
		ref, eRef := run(seed, 1)
		for _, w := range workerCounts {
			s, e := run(seed, w)
			if e != eRef {
				t.Fatalf("seed %d workers %d: total energy %x, want %x", seed, w, e, eRef)
			}
			for i := range s.Pos {
				if s.Pos[i] != ref.Pos[i] || s.Vel[i] != ref.Vel[i] {
					t.Fatalf("seed %d workers %d: trajectory diverged at atom %d", seed, w, i)
				}
			}
		}
	}
}

func TestPairCountWorkerIndependence(t *testing.T) {
	ref := Build(Config{Molecules: 40, Seed: 13, Workers: 1})
	want := ref.PairCountWithinCutoff()
	for _, w := range workerCounts {
		s := Build(Config{Molecules: 40, Seed: 13, Workers: w})
		if got := s.PairCountWithinCutoff(); got != want {
			t.Fatalf("workers %d: pair count %d, want %d", w, got, want)
		}
	}
}
