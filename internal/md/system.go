// Package md is a self-contained classical molecular dynamics engine. It
// supplies the physical workload whose dataflow the paper maps onto Anton:
// bonded forces, range-limited nonbonded forces (Lennard-Jones plus the
// real-space part of Ewald electrostatics), long-range electrostatics via
// Gaussian charge spreading, FFT-based convolution, and force
// interpolation (the Gaussian split Ewald method of Shan et al., the
// paper's reference [39]), and velocity-Verlet integration with an
// optional thermostat.
//
// The engine uses reduced units (unit Coulomb constant, unit mass scale);
// the communication experiments depend only on the dataflow's structure,
// not on a particular unit system.
package md

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec3 is a 3-vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{v.Y*w.Z - v.Z*w.Y, v.Z*w.X - v.X*w.Z, v.X*w.Y - v.Y*w.X}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns |v|^2.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Bond is a harmonic bond between atoms I and J: V = K*(r - R0)^2.
type Bond struct {
	I, J  int
	K, R0 float64
}

// Angle is a harmonic angle I-J-K (J is the vertex):
// V = KTheta*(theta - Theta0)^2.
type Angle struct {
	I, J, K        int
	KTheta, Theta0 float64
}

// System is the complete state of a simulated chemical system in a cubic
// periodic box.
type System struct {
	Box float64 // box side length; the box is [0, Box)^3, periodic

	Pos    []Vec3
	Vel    []Vec3
	Frc    []Vec3
	Mass   []float64
	Charge []float64
	// Lennard-Jones per-atom parameters, combined with Lorentz-Berthelot
	// rules.
	Eps, Sig []float64

	Bonds     []Bond
	Angles    []Angle
	Dihedrals []Dihedral

	// Cutoff is the range-limited interaction cutoff radius.
	Cutoff float64
	// Sigma is the Ewald split width: larger values push more of the
	// interaction into the long-range (grid) part.
	Sigma float64
	// GridN is the side of the charge/potential grid (power of two).
	GridN int

	// Virial accumulates the virial trace sum(r_ij . F_ij) alongside the
	// forces; Integrator.ComputeForces zeroes it with the force arrays.
	Virial float64

	// Workers is the goroutine-parallelism of the compute kernels
	// (range-limited forces, charge spreading, force interpolation, FFTs):
	// 0 means runtime.GOMAXPROCS(0), 1 runs fully sequential on the calling
	// goroutine. Every kernel combines partial results in a fixed canonical
	// order, so all settings produce bit-identical physics.
	Workers int

	// excl[i] lists atom indices j > i excluded from nonbonded
	// interactions because of a 1-2 or 1-3 bonded relationship.
	excl [][]int
}

// N returns the number of atoms.
func (s *System) N() int { return len(s.Pos) }

// Alpha returns the Ewald splitting parameter 1/(sqrt(2)*Sigma).
func (s *System) Alpha() float64 { return 1 / (math.Sqrt2 * s.Sigma) }

// MinImage returns the minimum-image displacement from b to a.
func (s *System) MinImage(a, b Vec3) Vec3 {
	d := a.Sub(b)
	d.X -= s.Box * math.Round(d.X/s.Box)
	d.Y -= s.Box * math.Round(d.Y/s.Box)
	d.Z -= s.Box * math.Round(d.Z/s.Box)
	return d
}

// WrapPositions maps all positions back into the primary box.
func (s *System) WrapPositions() {
	for i := range s.Pos {
		s.Pos[i].X = wrap(s.Pos[i].X, s.Box)
		s.Pos[i].Y = wrap(s.Pos[i].Y, s.Box)
		s.Pos[i].Z = wrap(s.Pos[i].Z, s.Box)
	}
}

func wrap(x, l float64) float64 {
	x = math.Mod(x, l)
	if x < 0 {
		x += l
	}
	return x
}

// BuildExclusions derives the nonbonded exclusion lists from the bonds
// (1-2 pairs) and angles (1-3 pairs). Call after topology changes.
func (s *System) BuildExclusions() {
	set := make(map[[2]int]bool)
	addPair := func(i, j int) {
		if i == j {
			return
		}
		if i > j {
			i, j = j, i
		}
		set[[2]int{i, j}] = true
	}
	for _, b := range s.Bonds {
		addPair(b.I, b.J)
	}
	for _, a := range s.Angles {
		addPair(a.I, a.J)
		addPair(a.J, a.K)
		addPair(a.I, a.K)
	}
	// Dihedrals exclude all pairs along the four-atom chain (1-2, 1-3 and
	// 1-4; we treat 1-4 as fully excluded rather than scaled).
	for _, d := range s.Dihedrals {
		addPair(d.I, d.J)
		addPair(d.J, d.K)
		addPair(d.K, d.L)
		addPair(d.I, d.K)
		addPair(d.J, d.L)
		addPair(d.I, d.L)
	}
	s.excl = make([][]int, s.N())
	for p := range set {
		s.excl[p[0]] = append(s.excl[p[0]], p[1])
	}
	for i := range s.excl {
		sortInts(s.excl[i])
	}
}

// Excluded reports whether the nonbonded interaction between i and j is
// excluded.
func (s *System) Excluded(i, j int) bool {
	if i > j {
		i, j = j, i
	}
	if i >= len(s.excl) {
		return false
	}
	for _, v := range s.excl[i] {
		if v == j {
			return true
		}
		if v > j {
			return false
		}
	}
	return false
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Config parameterizes the synthetic system builder.
type Config struct {
	// Molecules is the number of three-atom (water-like) solvent
	// molecules.
	Molecules int
	// Chains and ChainLength optionally embed protein-like linear chains
	// (with bonds, angles, and dihedral torsions) in the solvent,
	// mirroring the paper's protein-in-water benchmark systems.
	Chains      int
	ChainLength int
	// Box is the box side length; if zero, it is sized for a standard
	// liquid-like density.
	Box float64
	// Temperature initializes velocities from a Maxwell-Boltzmann
	// distribution.
	Temperature float64
	// Seed makes the build deterministic.
	Seed int64
	// Cutoff, Sigma, GridN override the defaults (4.0, 1.0, 16).
	Cutoff float64
	Sigma  float64
	GridN  int
	// Workers sets System.Workers: compute-kernel goroutine parallelism
	// (0 = GOMAXPROCS, 1 = sequential; results are bit-identical either way).
	Workers int
}

// Build creates a synthetic periodic molecular system: Molecules bent
// three-atom molecules (a heavy charged center with two light positively
// charged satellites, net neutral) placed on a jittered lattice. It is the
// stand-in for the paper's DHFR benchmark system — the real simulation
// input is proprietary, but the communication pattern depends only on
// atom count, density, and connectivity.
func Build(cfg Config) *System {
	if cfg.Molecules <= 0 {
		panic("md: Molecules must be positive")
	}
	if cfg.Cutoff == 0 {
		cfg.Cutoff = 4.0
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = 1.0
	}
	if cfg.GridN == 0 {
		cfg.GridN = 16
	}
	if cfg.Box == 0 {
		// Three atoms per molecule at a liquid-like reduced density ~0.45
		// atoms per unit volume, but never smaller than twice the cutoff,
		// which the minimum-image convention requires.
		cfg.Box = math.Cbrt(float64(3*cfg.Molecules) / 0.45)
		if min := 2.05 * cfg.Cutoff; cfg.Box < min {
			cfg.Box = min
		}
	}
	if cfg.Cutoff > cfg.Box/2 {
		panic(fmt.Sprintf("md: cutoff %v exceeds half the box %v", cfg.Cutoff, cfg.Box))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &System{
		Box:     cfg.Box,
		Cutoff:  cfg.Cutoff,
		Sigma:   cfg.Sigma,
		GridN:   cfg.GridN,
		Workers: cfg.Workers,
	}
	for c := 0; c < cfg.Chains; c++ {
		s.addChain(cfg.ChainLength, rng)
	}
	// Lattice with one molecule per cell.
	cells := int(math.Ceil(math.Cbrt(float64(cfg.Molecules))))
	pitch := cfg.Box / float64(cells)
	placed := 0
	for cx := 0; cx < cells && placed < cfg.Molecules; cx++ {
		for cy := 0; cy < cells && placed < cfg.Molecules; cy++ {
			for cz := 0; cz < cells && placed < cfg.Molecules; cz++ {
				center := Vec3{
					(float64(cx) + 0.5 + 0.2*(rng.Float64()-0.5)) * pitch,
					(float64(cy) + 0.5 + 0.2*(rng.Float64()-0.5)) * pitch,
					(float64(cz) + 0.5 + 0.2*(rng.Float64()-0.5)) * pitch,
				}
				s.addMolecule(center, rng)
				placed++
			}
		}
	}
	s.WrapPositions()
	s.BuildExclusions()
	s.InitVelocities(cfg.Temperature, rng)
	s.Frc = make([]Vec3, s.N())
	return s
}

// Molecule geometry: bond length 0.8, angle 104.5 degrees.
const (
	bondLen    = 0.8
	bondK      = 80.0
	angleTheta = 104.5 * math.Pi / 180
	angleK     = 20.0
	centerQ    = -0.8
	satQ       = 0.4
)

func (s *System) addMolecule(center Vec3, rng *rand.Rand) {
	base := s.N()
	// Random orientation for the two satellites.
	u := randUnit(rng)
	// A perpendicular direction.
	ref := Vec3{1, 0, 0}
	if math.Abs(u.X) > 0.9 {
		ref = Vec3{0, 1, 0}
	}
	v := u.Cross(ref)
	v = v.Scale(1 / v.Norm())
	half := angleTheta / 2
	d1 := u.Scale(math.Cos(half)).Add(v.Scale(math.Sin(half))).Scale(bondLen)
	d2 := u.Scale(math.Cos(half)).Sub(v.Scale(math.Sin(half))).Scale(bondLen)

	add := func(p Vec3, mass, q, eps, sig float64) {
		s.Pos = append(s.Pos, p)
		s.Vel = append(s.Vel, Vec3{})
		s.Mass = append(s.Mass, mass)
		s.Charge = append(s.Charge, q)
		s.Eps = append(s.Eps, eps)
		s.Sig = append(s.Sig, sig)
	}
	add(center, 16, centerQ, 0.65, 1.0)     // heavy center
	add(center.Add(d1), 1, satQ, 0.05, 0.6) // satellite 1
	add(center.Add(d2), 1, satQ, 0.05, 0.6) // satellite 2
	s.Bonds = append(s.Bonds,
		Bond{I: base, J: base + 1, K: bondK, R0: bondLen},
		Bond{I: base, J: base + 2, K: bondK, R0: bondLen},
	)
	s.Angles = append(s.Angles,
		Angle{I: base + 1, J: base, K: base + 2, KTheta: angleK, Theta0: angleTheta},
	)
}

// Chain parameters: backbone bond length and a gentle torsion term.
const (
	chainBondLen = 0.9
	chainBondK   = 60.0
	chainAngleK  = 15.0
	chainDihK    = 1.5
)

// addChain embeds one protein-like linear chain of n heavy atoms built as
// a self-avoiding-ish random walk from a random start.
func (s *System) addChain(n int, rng *rand.Rand) {
	if n < 2 {
		panic("md: chain length must be at least 2")
	}
	base := s.N()
	pos := Vec3{rng.Float64() * s.Box, rng.Float64() * s.Box, rng.Float64() * s.Box}
	dir := randUnit(rng)
	for i := 0; i < n; i++ {
		q := 0.25
		if i%2 == 1 {
			q = -0.25
		}
		if n%2 == 1 && i == n-1 {
			q = 0 // keep the chain neutral for odd lengths
		}
		s.Pos = append(s.Pos, pos)
		s.Vel = append(s.Vel, Vec3{})
		s.Mass = append(s.Mass, 12)
		s.Charge = append(s.Charge, q)
		s.Eps = append(s.Eps, 0.4)
		s.Sig = append(s.Sig, 1.1)
		// Next backbone position: mostly straight with a random kink.
		kink := randUnit(rng).Scale(0.5)
		dir = dir.Add(kink)
		dir = dir.Scale(1 / dir.Norm())
		pos = pos.Add(dir.Scale(chainBondLen))
	}
	for i := 0; i < n-1; i++ {
		s.Bonds = append(s.Bonds, Bond{I: base + i, J: base + i + 1, K: chainBondK, R0: chainBondLen})
	}
	for i := 0; i < n-2; i++ {
		s.Angles = append(s.Angles, Angle{
			I: base + i, J: base + i + 1, K: base + i + 2,
			KTheta: chainAngleK, Theta0: 2.0,
		})
	}
	for i := 0; i < n-3; i++ {
		s.Dihedrals = append(s.Dihedrals, Dihedral{
			I: base + i, J: base + i + 1, K: base + i + 2, L: base + i + 3,
			K_: chainDihK, N: 3, Phi0: 0,
		})
	}
}

func randUnit(rng *rand.Rand) Vec3 {
	for {
		v := Vec3{2*rng.Float64() - 1, 2*rng.Float64() - 1, 2*rng.Float64() - 1}
		n2 := v.Norm2()
		if n2 > 1e-4 && n2 <= 1 {
			return v.Scale(1 / math.Sqrt(n2))
		}
	}
}

// InitVelocities draws velocities from a Maxwell-Boltzmann distribution at
// temperature T (kB = 1) and removes the net momentum.
func (s *System) InitVelocities(T float64, rng *rand.Rand) {
	if T <= 0 {
		for i := range s.Vel {
			s.Vel[i] = Vec3{}
		}
		return
	}
	var p Vec3
	var totalMass float64
	for i := range s.Vel {
		sd := math.Sqrt(T / s.Mass[i])
		s.Vel[i] = Vec3{rng.NormFloat64() * sd, rng.NormFloat64() * sd, rng.NormFloat64() * sd}
		p = p.Add(s.Vel[i].Scale(s.Mass[i]))
		totalMass += s.Mass[i]
	}
	drift := p.Scale(1 / totalMass)
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Sub(drift)
	}
}

// KineticEnergy returns the total kinetic energy.
func (s *System) KineticEnergy() float64 {
	var ke float64
	for i := range s.Vel {
		ke += 0.5 * s.Mass[i] * s.Vel[i].Norm2()
	}
	return ke
}

// Temperature returns the instantaneous temperature (kB = 1).
func (s *System) Temperature() float64 {
	dof := 3 * s.N()
	if dof == 0 {
		return 0
	}
	return 2 * s.KineticEnergy() / float64(dof)
}

// Momentum returns the total momentum vector.
func (s *System) Momentum() Vec3 {
	var p Vec3
	for i := range s.Vel {
		p = p.Add(s.Vel[i].Scale(s.Mass[i]))
	}
	return p
}

// Validate checks structural invariants.
func (s *System) Validate() error {
	n := s.N()
	if len(s.Vel) != n || len(s.Mass) != n || len(s.Charge) != n || len(s.Eps) != n || len(s.Sig) != n {
		return fmt.Errorf("md: inconsistent array lengths")
	}
	if s.Box <= 0 {
		return fmt.Errorf("md: non-positive box")
	}
	if s.Cutoff <= 0 || s.Cutoff > s.Box/2 {
		return fmt.Errorf("md: cutoff %v outside (0, box/2=%v]", s.Cutoff, s.Box/2)
	}
	for _, b := range s.Bonds {
		if b.I < 0 || b.I >= n || b.J < 0 || b.J >= n || b.I == b.J {
			return fmt.Errorf("md: invalid bond %+v", b)
		}
	}
	for _, a := range s.Angles {
		if a.I < 0 || a.I >= n || a.J < 0 || a.J >= n || a.K < 0 || a.K >= n {
			return fmt.Errorf("md: invalid angle %+v", a)
		}
	}
	for _, d := range s.Dihedrals {
		for _, idx := range []int{d.I, d.J, d.K, d.L} {
			if idx < 0 || idx >= n {
				return fmt.Errorf("md: invalid dihedral %+v", d)
			}
		}
	}
	return nil
}
