package md

import "math"

// Energies is the decomposition of the potential energy after a force
// evaluation, mirroring the force components of the paper's Figure 2.
type Energies struct {
	Bond, Angle, Dihedral float64
	RangeLimited          float64
	LongRange             float64
	Self                  float64
}

// Potential returns the total potential energy.
func (e Energies) Potential() float64 {
	return e.Bond + e.Angle + e.Dihedral + e.RangeLimited + e.LongRange + e.Self
}

// Integrator advances a System with velocity-Verlet time stepping and an
// optional Berendsen thermostat driven by the globally reduced kinetic
// energy — the quantity Anton computes with its all-reduce.
type Integrator struct {
	S  *System
	Dt float64

	// Thermostat enables Berendsen velocity rescaling toward TargetT with
	// coupling time Tau.
	Thermostat bool
	TargetT    float64
	Tau        float64

	// LongRangeInterval applies the k-space force every k steps (Anton
	// evaluates long-range interactions every other time step); the forces
	// are reused in between.
	LongRangeInterval int

	// BarostatOn enables Berendsen pressure coupling via Baro.
	BarostatOn bool
	Baro       Barostat

	gse         *GSE
	E           Energies
	step        int
	lastLong    []Vec3 // cached long-range forces
	lastLongVir float64
	haveForce   bool
}

// NewIntegrator builds an integrator with sensible defaults.
func NewIntegrator(s *System, dt float64) *Integrator {
	return &Integrator{
		S: s, Dt: dt,
		TargetT: 1.0, Tau: 50 * dt,
		LongRangeInterval: 1,
		gse:               NewGSE(s),
	}
}

// GSE exposes the long-range machinery (for the parallel mapping).
func (in *Integrator) GSE() *GSE { return in.gse }

// ComputeForces evaluates all force components into S.Frc and records the
// energy decomposition. The long-range component is recomputed only every
// LongRangeInterval steps and cached otherwise.
func (in *Integrator) ComputeForces() Energies {
	s := in.S
	for i := range s.Frc {
		s.Frc[i] = Vec3{}
	}
	s.Virial = 0
	in.E.Bond = s.BondForces()
	in.E.Angle = s.AngleForces()
	in.E.Dihedral = s.DihedralForces()
	in.E.RangeLimited = s.RangeLimitedForces()
	interval := in.LongRangeInterval
	if interval < 1 {
		interval = 1
	}
	if in.step%interval == 0 || in.lastLong == nil {
		before := append([]Vec3(nil), s.Frc...)
		in.E.LongRange = in.gse.LongRangeForces()
		in.lastLongVir = in.gse.Virial()
		in.lastLong = make([]Vec3, s.N())
		for i := range s.Frc {
			in.lastLong[i] = s.Frc[i].Sub(before[i])
		}
	} else {
		for i := range s.Frc {
			s.Frc[i] = s.Frc[i].Add(in.lastLong[i])
		}
		s.Virial += in.lastLongVir
	}
	in.E.Self = s.SelfEnergy()
	in.haveForce = true
	return in.E
}

// Step advances the system by one velocity-Verlet step.
func (in *Integrator) Step() {
	s := in.S
	if !in.haveForce {
		in.ComputeForces()
	}
	half := 0.5 * in.Dt
	for i := range s.Pos {
		s.Vel[i] = s.Vel[i].Add(s.Frc[i].Scale(half / s.Mass[i]))
		s.Pos[i] = s.Pos[i].Add(s.Vel[i].Scale(in.Dt))
	}
	s.WrapPositions()
	in.step++
	in.ComputeForces()
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Add(s.Frc[i].Scale(half / s.Mass[i]))
	}
	if in.Thermostat {
		in.applyThermostat()
	}
	if in.BarostatOn {
		if scale := in.Baro.Apply(s); scale != 1 {
			// The box changed: the grid spacing and Green's function must
			// follow, and cached long-range forces are stale.
			in.gse = NewGSE(s)
			in.lastLong = nil
		}
	}
}

// applyThermostat rescales velocities toward the target temperature. The
// instantaneous temperature comes from the total kinetic energy, which on
// Anton requires the global all-reduce of Table 2.
func (in *Integrator) applyThermostat() {
	s := in.S
	T := s.Temperature()
	if T <= 0 {
		return
	}
	lambda := math.Sqrt(1 + in.Dt/in.Tau*(in.TargetT/T-1))
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Scale(lambda)
	}
}

// Run advances n steps.
func (in *Integrator) Run(n int) {
	for i := 0; i < n; i++ {
		in.Step()
	}
}

// TotalEnergy returns kinetic plus potential energy of the last force
// evaluation.
func (in *Integrator) TotalEnergy() float64 {
	return in.S.KineticEnergy() + in.E.Potential()
}

// StepCount returns the number of completed steps.
func (in *Integrator) StepCount() int { return in.step }
