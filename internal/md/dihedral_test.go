package md

import (
	"math"
	"testing"
)

func chainSystem() *System {
	s := &System{
		Box: 20,
		Pos: []Vec3{
			{5, 5, 5}, {5.9, 5.1, 5.0}, {6.3, 5.9, 5.4}, {7.1, 6.0, 6.1},
		},
		Mass:   []float64{1, 1, 1, 1},
		Charge: []float64{0, 0, 0, 0},
		Eps:    []float64{0, 0, 0, 0},
		Sig:    []float64{1, 1, 1, 1},
		Dihedrals: []Dihedral{
			{I: 0, J: 1, K: 2, L: 3, K_: 2.5, N: 3, Phi0: 0.4},
		},
		Cutoff: 3, Sigma: 1, GridN: 8,
	}
	s.Vel = make([]Vec3, 4)
	s.Frc = make([]Vec3, 4)
	return s
}

func TestDihedralForceMatchesFiniteDifference(t *testing.T) {
	s := chainSystem()
	checkFiniteDifference(t, s, func() float64 {
		for i := range s.Frc {
			s.Frc[i] = Vec3{}
		}
		return s.DihedralForces()
	}, 1e-6, 1e-4)
}

func TestDihedralForceNewtonThirdLaw(t *testing.T) {
	s := chainSystem()
	s.DihedralForces()
	var total Vec3
	for _, f := range s.Frc {
		total = total.Add(f)
	}
	if total.Norm() > 1e-10 {
		t.Fatalf("net dihedral force %v", total)
	}
	// Torque about the origin must also vanish.
	var torque Vec3
	for i, f := range s.Frc {
		torque = torque.Add(s.Pos[i].Cross(f))
	}
	if torque.Norm() > 1e-9 {
		t.Fatalf("net dihedral torque %v", torque)
	}
}

func TestDihedralEnergyBounds(t *testing.T) {
	// V = K*(1 + cos(...)) lies in [0, 2K].
	s := chainSystem()
	e := s.DihedralForces()
	if e < 0 || e > 5 {
		t.Fatalf("dihedral energy %v outside [0, 2K=5]", e)
	}
}

func TestDihedralCollinearSkipped(t *testing.T) {
	s := chainSystem()
	// Make the four atoms collinear: the torsion is undefined and must be
	// skipped without NaNs.
	for i := range s.Pos {
		s.Pos[i] = Vec3{5 + float64(i), 5, 5}
	}
	for i := range s.Frc {
		s.Frc[i] = Vec3{}
	}
	s.DihedralForces()
	for i, f := range s.Frc {
		if math.IsNaN(f.X) || math.IsNaN(f.Y) || math.IsNaN(f.Z) {
			t.Fatalf("NaN force on atom %d", i)
		}
	}
}

func TestBuildWithChains(t *testing.T) {
	s := Build(Config{Molecules: 10, Chains: 2, ChainLength: 8, Temperature: 0.5, Seed: 3})
	if s.N() != 2*8+10*3 {
		t.Fatalf("atoms = %d, want 46", s.N())
	}
	if len(s.Dihedrals) != 2*5 {
		t.Fatalf("dihedrals = %d, want 10", len(s.Dihedrals))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	var q float64
	for _, c := range s.Charge {
		q += c
	}
	if math.Abs(q) > 1e-12 {
		t.Fatalf("net charge %v", q)
	}
	// Chain 1-4 pairs are excluded.
	if !s.Excluded(0, 3) {
		t.Fatal("1-4 chain pair not excluded")
	}
	if s.Excluded(0, 5) {
		t.Fatal("1-6 chain pair wrongly excluded")
	}
}

func TestChainSystemEnergyConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("long chain-system run; exercised without -short")
	}
	s := Build(Config{Molecules: 10, Chains: 1, ChainLength: 6, Temperature: 0.5, Seed: 7})
	in := NewIntegrator(s, 0.001)
	in.ComputeForces()
	if in.E.Dihedral == 0 {
		t.Fatal("chain system has zero dihedral energy")
	}
	e0 := in.TotalEnergy()
	in.Run(200)
	drift := math.Abs(in.TotalEnergy()-e0) / math.Max(1, math.Abs(e0))
	if drift > 5e-3 {
		t.Fatalf("chain NVE drift %.4f%% (E %v -> %v)", 100*drift, e0, in.TotalEnergy())
	}
}

func TestChainTooShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 1-atom chain")
		}
	}()
	Build(Config{Molecules: 1, Chains: 1, ChainLength: 1, Seed: 1})
}

func TestInvalidDihedralRejected(t *testing.T) {
	s := Build(Config{Molecules: 2, Seed: 1})
	s.Dihedrals = append(s.Dihedrals, Dihedral{I: 0, J: 1, K: 2, L: 99})
	if s.Validate() == nil {
		t.Fatal("invalid dihedral accepted")
	}
}
