package md

import "math"

// ReferenceRecipEnergy computes the Ewald reciprocal-space energy by
// direct summation over wave vectors (structure factors). O(N * mmax^3);
// used only to validate the grid-based GSE implementation in tests.
func (s *System) ReferenceRecipEnergy(mmax int) float64 {
	L := s.Box
	V := L * L * L
	sigma2 := s.Sigma * s.Sigma
	var energy float64
	for mx := -mmax; mx <= mmax; mx++ {
		for my := -mmax; my <= mmax; my++ {
			for mz := -mmax; mz <= mmax; mz++ {
				if mx == 0 && my == 0 && mz == 0 {
					continue
				}
				kx := 2 * math.Pi * float64(mx) / L
				ky := 2 * math.Pi * float64(my) / L
				kz := 2 * math.Pi * float64(mz) / L
				k2 := kx*kx + ky*ky + kz*kz
				var sre, sim float64
				for i, p := range s.Pos {
					phase := kx*p.X + ky*p.Y + kz*p.Z
					sre += s.Charge[i] * math.Cos(phase)
					sim += s.Charge[i] * math.Sin(phase)
				}
				energy += 4 * math.Pi / k2 * math.Exp(-k2*sigma2/2) * (sre*sre + sim*sim)
			}
		}
	}
	return energy / (2 * V)
}

// ReferenceCoulombEnergy computes the full Ewald Coulomb energy (real +
// reciprocal + self + exclusion corrections) with direct sums. Used as the
// test ground truth for the production pipeline.
func (s *System) ReferenceCoulombEnergy(mmax int) float64 {
	alpha := s.Alpha()
	rc2 := s.Cutoff * s.Cutoff
	var real float64
	n := s.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := s.MinImage(s.Pos[i], s.Pos[j])
			r2 := d.Norm2()
			if r2 >= rc2 {
				continue
			}
			r := math.Sqrt(r2)
			qq := s.Charge[i] * s.Charge[j]
			if s.Excluded(i, j) {
				real -= qq * math.Erf(alpha*r) / r
			} else {
				real += qq * math.Erfc(alpha*r) / r
			}
		}
	}
	return real + s.ReferenceRecipEnergy(mmax) + s.SelfEnergy()
}

// DirectCoulombEnergy computes the bare (non-periodic) Coulomb energy of
// all pairs, a sanity reference for widely separated charges in a large
// box.
func (s *System) DirectCoulombEnergy() float64 {
	var e float64
	n := s.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r := s.MinImage(s.Pos[i], s.Pos[j]).Norm()
			e += s.Charge[i] * s.Charge[j] / r
		}
	}
	return e
}
