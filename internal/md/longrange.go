package md

import (
	"math"

	"anton/internal/fft"
	"anton/internal/par"
)

// GSE implements the k-space part of Gaussian split Ewald (Shan et al.,
// the paper's reference [39]), the long-range electrostatics method Anton
// uses: charges are spread onto a regular grid with a Gaussian (charge
// spreading, performed by the HTIS), the grid is convolved with the
// Coulomb Green's function via forward and inverse FFTs (the flexible
// subsystem), and forces are interpolated back from the potential grid
// with the same Gaussian (force interpolation, again the HTIS).
//
// With the spreading and interpolation Gaussians each of width
// sigma/sqrt(2), their combined smearing equals the Ewald k-space damping
// exp(-k^2 sigma^2/2), so the grid convolution uses the bare Coulomb
// kernel 4*pi/k^2.
type GSE struct {
	s       *System
	n       int     // grid side
	h       float64 // grid spacing
	sigmaG  float64 // spreading Gaussian width = Sigma/sqrt(2)
	support int     // spreading support radius in cells
	green   *fft.Grid
	phi     *fft.Grid // potential grid from the last Convolve
	// lastEnergy and lastVirial hold the spectral energy and virial trace
	// of the most recent Convolve (the reciprocal-space virial feeds the
	// barostat through the same all-reduce as the kinetic energy).
	lastEnergy, lastVirial float64
}

// NewGSE builds the grid machinery for s.
func NewGSE(s *System) *GSE {
	n := s.GridN
	if n&(n-1) != 0 || n <= 0 {
		panic("md: GridN must be a power of two")
	}
	g := &GSE{
		s:      s,
		n:      n,
		h:      s.Box / float64(n),
		sigmaG: s.Sigma / math.Sqrt2,
	}
	g.support = int(math.Ceil(4*g.sigmaG/g.h)) + 1
	g.green = g.GreenGrid()
	return g
}

// GreenGrid returns the convolution kernel in wave-number space: 4*pi/k^2
// with the k=0 mode zeroed (tinfoil boundary conditions). The distributed
// FFT uses the same grid. Each x plane is independent (every grid point is
// written exactly once from its own wave number), so the planes fill in
// parallel with bit-identical results for any worker count.
func (g *GSE) GreenGrid() *fft.Grid {
	grid := fft.NewGrid(g.n)
	grid.Workers = g.s.Workers
	L := g.s.Box
	par.ParFor(par.Workers(g.s.Workers), g.n, func(mx int) {
		for my := 0; my < g.n; my++ {
			for mz := 0; mz < g.n; mz++ {
				kx := waveNumber(mx, g.n, L)
				ky := waveNumber(my, g.n, L)
				kz := waveNumber(mz, g.n, L)
				k2 := kx*kx + ky*ky + kz*kz
				if k2 == 0 {
					continue
				}
				grid.Set(mx, my, mz, complex(4*math.Pi/k2, 0))
			}
		}
	})
	return grid
}

func waveNumber(m, n int, L float64) float64 {
	if m > n/2 {
		m -= n
	}
	return 2 * math.Pi * float64(m) / L
}

// gridContrib is one recorded charge deposit: grid index and weight.
type gridContrib struct {
	idx int
	v   float64
}

// atomShards partitions the atom indices into at most maxShards contiguous
// ranges — the fixed decomposition behind the parallel spreading and
// interpolation kernels.
func (g *GSE) atomShards() (shards int, bounds func(shard int) (lo, hi int)) {
	n := g.s.N()
	shards = n
	if shards > maxShards {
		shards = maxShards
	}
	return shards, func(s int) (int, int) { return s * n / shards, (s + 1) * n / shards }
}

// Spread builds the charge-density grid from the current positions.
//
// The Gaussian evaluations — one exp per support cell per atom, the HTIS's
// charge-spreading workload — shard by atom range. Workers record their
// deposits in atom order and the caller replays them in shard order, so the
// grid accumulation order is exactly the sequential one and the result is
// bit-identical for any worker count.
func (g *GSE) Spread() *fft.Grid {
	rho := fft.NewGrid(g.n)
	rho.Workers = g.s.Workers
	norm := math.Pow(2*math.Pi*g.sigmaG*g.sigmaG, -1.5)
	spreadAtom := func(i int, deposit func(idx int, v float64)) {
		q := g.s.Charge[i]
		if q == 0 {
			return
		}
		g.forEachSupportCell(g.s.Pos[i], func(gx, gy, gz int, d Vec3) {
			w := norm * math.Exp(-d.Norm2()/(2*g.sigmaG*g.sigmaG))
			deposit(rho.Idx(gx, gy, gz), q*w)
		})
	}
	workers := par.Workers(g.s.Workers)
	if workers == 1 {
		for i := range g.s.Pos {
			spreadAtom(i, func(idx int, v float64) { rho.Data[idx] += complex(v, 0) })
		}
		return rho
	}
	shards, bounds := g.atomShards()
	par.MapReduce(workers, shards, func(shard int) []gridContrib {
		lo, hi := bounds(shard)
		var out []gridContrib
		for i := lo; i < hi; i++ {
			spreadAtom(i, func(idx int, v float64) { out = append(out, gridContrib{idx, v}) })
		}
		return out
	}, func(_ int, contribs []gridContrib) {
		for _, c := range contribs {
			rho.Data[c.idx] += complex(c.v, 0)
		}
	})
	return rho
}

// forEachSupportCell visits the grid cells within the spreading support of
// position p, passing wrapped cell indices and the minimum-image
// displacement from the cell centre to p.
func (g *GSE) forEachSupportCell(p Vec3, fn func(gx, gy, gz int, d Vec3)) {
	cx := int(math.Floor(p.X / g.h))
	cy := int(math.Floor(p.Y / g.h))
	cz := int(math.Floor(p.Z / g.h))
	for dx := -g.support; dx <= g.support; dx++ {
		for dy := -g.support; dy <= g.support; dy++ {
			for dz := -g.support; dz <= g.support; dz++ {
				gx, gy, gz := mod(cx+dx, g.n), mod(cy+dy, g.n), mod(cz+dz, g.n)
				cell := Vec3{float64(cx+dx) * g.h, float64(cy+dy) * g.h, float64(cz+dz) * g.h}
				d := g.s.MinImage(p, cell)
				fn(gx, gy, gz, d)
			}
		}
	}
}

// Convolve computes the potential grid from a charge grid. Along the way
// it evaluates the reciprocal-space energy and virial spectrally: with
// rhoHat the transform of the sigma/sqrt(2)-smeared density,
//
//	E = (1/2V) sum_k |rhoHat|^2 4*pi/k^2
//	W = E - (2*pi*sigma^2/V) sum_k |rhoHat|^2
//
// (the second term is the volume derivative of the Gaussian screens).
func (g *GSE) Convolve(rho *fft.Grid) *fft.Grid {
	phi := rho.Clone()
	phi.Forward()
	v := g.s.Box * g.s.Box * g.s.Box
	h3 := g.h * g.h * g.h
	sigma2 := g.s.Sigma * g.s.Sigma
	var espec, wcorr float64
	for i := range phi.Data {
		gr := real(g.green.Data[i])
		if gr != 0 {
			c := phi.Data[i]
			a2 := (real(c)*real(c) + imag(c)*imag(c)) * h3 * h3
			espec += a2 * gr / (2 * v)
			wcorr += a2 * 2 * math.Pi * sigma2 / v
		}
		phi.Data[i] *= g.green.Data[i]
	}
	g.lastEnergy = espec
	g.lastVirial = espec - wcorr
	phi.Inverse()
	g.phi = phi
	return phi
}

// SpectralEnergy returns the reciprocal-space energy of the last Convolve,
// computed in k space (it agrees with the interpolated energy).
func (g *GSE) SpectralEnergy() float64 { return g.lastEnergy }

// Virial returns the reciprocal-space virial trace of the last Convolve.
func (g *GSE) Virial() float64 { return g.lastVirial }

// Phi returns the potential grid from the most recent Convolve.
func (g *GSE) Phi() *fft.Grid { return g.phi }

// EnergyAndForces interpolates the potential grid back at the atom
// positions: it accumulates the k-space forces into s.Frc and returns the
// k-space energy (excluding the constant self-energy term).
// The interpolation kernel shards by atom range. Forces are per-atom
// (each shard owns its atoms' Frc entries, so parallel writes are
// disjoint); the scalar energy is recorded per atom and folded in atom
// order by the caller, reproducing the sequential accumulation bit for
// bit at any worker count.
func (g *GSE) EnergyAndForces(phi *fft.Grid) float64 {
	s := g.s
	h3 := g.h * g.h * g.h
	norm := math.Pow(2*math.Pi*g.sigmaG*g.sigmaG, -1.5)
	inv2s := 1 / (2 * g.sigmaG * g.sigmaG)
	invS2 := 1 / (g.sigmaG * g.sigmaG)
	// interpAtom evaluates atom i, adds its force into s.Frc[i], and
	// returns its energy contribution (false for chargeless atoms).
	interpAtom := func(i int) (float64, bool) {
		q := s.Charge[i]
		if q == 0 {
			return 0, false
		}
		var pot float64
		var force Vec3
		g.forEachSupportCell(s.Pos[i], func(gx, gy, gz int, d Vec3) {
			w := norm * math.Exp(-d.Norm2()*inv2s)
			ph := real(phi.At(gx, gy, gz))
			pot += w * ph
			// F = q * h^3 * sum_g (d/sigmaG^2) * w * phi_g
			force = force.Add(d.Scale(w * ph * invS2))
		})
		s.Frc[i] = s.Frc[i].Add(force.Scale(q * h3))
		return 0.5 * q * pot * h3, true
	}
	var energy float64
	workers := par.Workers(s.Workers)
	if workers == 1 {
		for i := range s.Pos {
			if e, ok := interpAtom(i); ok {
				energy += e
			}
		}
		return energy
	}
	shards, bounds := g.atomShards()
	par.MapReduce(workers, shards, func(shard int) []gridContrib {
		lo, hi := bounds(shard)
		var out []gridContrib
		for i := lo; i < hi; i++ {
			if e, ok := interpAtom(i); ok {
				out = append(out, gridContrib{i, e})
			}
		}
		return out
	}, func(_ int, contribs []gridContrib) {
		for _, c := range contribs {
			energy += c.v
		}
	})
	return energy
}

// LongRangeForces runs the full sequential k-space pipeline — spread,
// convolve, interpolate — accumulating forces and the reciprocal-space
// virial, and returning the k-space energy.
func (g *GSE) LongRangeForces() float64 {
	e := g.EnergyAndForces(g.Convolve(g.Spread()))
	g.s.Virial += g.lastVirial
	return e
}
