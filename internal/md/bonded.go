package md

import "math"

// BondedForces accumulates harmonic bond and angle forces into s.Frc and
// returns the bonded potential energy.
func (s *System) BondedForces() float64 {
	return s.BondForces() + s.AngleForces()
}

// BondForces accumulates harmonic bond forces and returns their energy.
func (s *System) BondForces() float64 {
	var e float64
	for _, b := range s.Bonds {
		d := s.MinImage(s.Pos[b.I], s.Pos[b.J])
		r := d.Norm()
		dr := r - b.R0
		e += b.K * dr * dr
		// F_I = -dV/dr_I = -2K(r-R0) * d/r
		f := d.Scale(-2 * b.K * dr / r)
		s.Frc[b.I] = s.Frc[b.I].Add(f)
		s.Frc[b.J] = s.Frc[b.J].Sub(f)
		s.Virial += f.Dot(d)
	}
	return e
}

// AngleForces accumulates harmonic angle forces and returns their energy.
func (s *System) AngleForces() float64 {
	var e float64
	for _, a := range s.Angles {
		// J is the vertex.
		rij := s.MinImage(s.Pos[a.I], s.Pos[a.J])
		rkj := s.MinImage(s.Pos[a.K], s.Pos[a.J])
		ri, rk := rij.Norm(), rkj.Norm()
		cosT := rij.Dot(rkj) / (ri * rk)
		cosT = clamp(cosT, -1, 1)
		theta := math.Acos(cosT)
		dTheta := theta - a.Theta0
		e += a.KTheta * dTheta * dTheta

		sinT := math.Sqrt(1 - cosT*cosT)
		if sinT < 1e-8 {
			continue // collinear: force direction undefined, energy extremal
		}
		// dV/dtheta = 2*K*dTheta; convert to Cartesian forces.
		c := 2 * a.KTheta * dTheta / sinT
		fi := rkj.Scale(1 / (ri * rk)).Sub(rij.Scale(cosT / (ri * ri))).Scale(c)
		fk := rij.Scale(1 / (ri * rk)).Sub(rkj.Scale(cosT / (rk * rk))).Scale(c)
		s.Frc[a.I] = s.Frc[a.I].Add(fi)
		s.Frc[a.K] = s.Frc[a.K].Add(fk)
		s.Frc[a.J] = s.Frc[a.J].Sub(fi.Add(fk))
		// The term's forces sum to zero, so positions relative to the
		// vertex give a translation-invariant virial contribution.
		s.Virial += fi.Dot(rij) + fk.Dot(rkj)
	}
	return e
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
