package md

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildDeterministic(t *testing.T) {
	a := Build(Config{Molecules: 20, Temperature: 1, Seed: 7})
	b := Build(Config{Molecules: 20, Temperature: 1, Seed: 7})
	if a.N() != 60 || b.N() != 60 {
		t.Fatalf("atom counts %d %d, want 60", a.N(), b.N())
	}
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] {
			t.Fatal("same seed produced different systems")
		}
	}
	c := Build(Config{Molecules: 20, Temperature: 1, Seed: 8})
	same := true
	for i := range a.Pos {
		if a.Pos[i] != c.Pos[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical systems")
	}
}

func TestBuildInvariants(t *testing.T) {
	s := Build(Config{Molecules: 50, Temperature: 1.2, Seed: 1})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Charge neutral.
	var q float64
	for _, c := range s.Charge {
		q += c
	}
	if math.Abs(q) > 1e-12 {
		t.Fatalf("net charge %v", q)
	}
	// Zero net momentum.
	if p := s.Momentum(); p.Norm() > 1e-10 {
		t.Fatalf("net momentum %v", p)
	}
	// Temperature near requested.
	if T := s.Temperature(); math.Abs(T-1.2) > 0.4 {
		t.Fatalf("initial temperature %v, want ~1.2", T)
	}
	// Bonds and angles per molecule.
	if len(s.Bonds) != 100 || len(s.Angles) != 50 {
		t.Fatalf("topology: %d bonds %d angles", len(s.Bonds), len(s.Angles))
	}
	// All positions inside the box.
	for _, p := range s.Pos {
		if p.X < 0 || p.X >= s.Box || p.Y < 0 || p.Y >= s.Box || p.Z < 0 || p.Z >= s.Box {
			t.Fatalf("position %v outside box %v", p, s.Box)
		}
	}
}

func TestExclusions(t *testing.T) {
	s := Build(Config{Molecules: 2, Seed: 3})
	// Within a molecule (atoms 0,1,2): all pairs excluded (1-2 and 1-3).
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		if !s.Excluded(pair[0], pair[1]) {
			t.Fatalf("pair %v should be excluded", pair)
		}
		if !s.Excluded(pair[1], pair[0]) {
			t.Fatal("exclusion not symmetric")
		}
	}
	// Across molecules: not excluded.
	if s.Excluded(0, 3) || s.Excluded(2, 5) {
		t.Fatal("intermolecular pair excluded")
	}
}

func TestMinImage(t *testing.T) {
	s := &System{Box: 10}
	d := s.MinImage(Vec3{9.5, 0, 0}, Vec3{0.5, 0, 0})
	if math.Abs(d.X+1) > 1e-12 || d.Y != 0 {
		t.Fatalf("min image = %v, want (-1,0,0)", d)
	}
	d = s.MinImage(Vec3{3, 3, 3}, Vec3{1, 1, 1})
	if d != (Vec3{2, 2, 2}) {
		t.Fatalf("min image = %v", d)
	}
}

func TestVec3Ops(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) || b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Fatal("add/sub wrong")
	}
	if a.Dot(b) != 32 {
		t.Fatal("dot wrong")
	}
	if a.Cross(b) != (Vec3{-3, 6, -3}) {
		t.Fatal("cross wrong")
	}
	if math.Abs(Vec3{3, 4, 0}.Norm()-5) > 1e-15 {
		t.Fatal("norm wrong")
	}
}

// cellPairsEqualBruteForce: the cell list must visit every pair within the
// cutoff exactly once.
func TestCellListCompleteAndUnique(t *testing.T) {
	for _, mol := range []int{4, 30} {
		s := Build(Config{Molecules: mol, Seed: 11})
		cl := NewCellList(s)
		seen := map[[2]int]int{}
		cl.ForEachPair(func(i, j int) {
			if i >= j {
				t.Fatalf("pair (%d,%d) not ordered", i, j)
			}
			seen[[2]int{i, j}]++
		})
		for pair, n := range seen {
			if n != 1 {
				t.Fatalf("pair %v visited %d times", pair, n)
			}
		}
		// Every within-cutoff pair must appear.
		rc2 := s.Cutoff * s.Cutoff
		for i := 0; i < s.N(); i++ {
			for j := i + 1; j < s.N(); j++ {
				if s.MinImage(s.Pos[i], s.Pos[j]).Norm2() < rc2 {
					if seen[[2]int{i, j}] == 0 {
						t.Fatalf("within-cutoff pair (%d,%d) missed", i, j)
					}
				}
			}
		}
	}
}

func TestBondForceMatchesFiniteDifference(t *testing.T) {
	s := &System{
		Box:    20,
		Pos:    []Vec3{{5, 5, 5}, {5.9, 5.1, 4.8}},
		Mass:   []float64{1, 1},
		Charge: []float64{0, 0},
		Eps:    []float64{0, 0},
		Sig:    []float64{1, 1},
		Bonds:  []Bond{{I: 0, J: 1, K: 10, R0: 0.8}},
		Cutoff: 3, Sigma: 1, GridN: 8,
	}
	s.Vel = make([]Vec3, 2)
	s.Frc = make([]Vec3, 2)
	checkFiniteDifference(t, s, func() float64 {
		for i := range s.Frc {
			s.Frc[i] = Vec3{}
		}
		return s.BondForces()
	}, 1e-5, 1e-4)
}

func TestAngleForceMatchesFiniteDifference(t *testing.T) {
	s := &System{
		Box:    20,
		Pos:    []Vec3{{5.8, 5, 5}, {5, 5, 5}, {5.2, 5.7, 5.1}},
		Mass:   []float64{1, 1, 1},
		Charge: []float64{0, 0, 0},
		Eps:    []float64{0, 0, 0},
		Sig:    []float64{1, 1, 1},
		Angles: []Angle{{I: 0, J: 1, K: 2, KTheta: 5, Theta0: 1.9}},
		Cutoff: 3, Sigma: 1, GridN: 8,
	}
	s.Vel = make([]Vec3, 3)
	s.Frc = make([]Vec3, 3)
	checkFiniteDifference(t, s, func() float64 {
		for i := range s.Frc {
			s.Frc[i] = Vec3{}
		}
		return s.AngleForces()
	}, 1e-5, 1e-4)
}

func TestRangeLimitedForceMatchesFiniteDifference(t *testing.T) {
	s := Build(Config{Molecules: 8, Seed: 5})
	checkFiniteDifference(t, s, func() float64 {
		for i := range s.Frc {
			s.Frc[i] = Vec3{}
		}
		return s.RangeLimitedForces()
	}, 1e-6, 2e-3)
}

func TestLongRangeForceMatchesFiniteDifference(t *testing.T) {
	s := Build(Config{Molecules: 8, Seed: 6, GridN: 16})
	g := NewGSE(s)
	checkFiniteDifference(t, s, func() float64 {
		for i := range s.Frc {
			s.Frc[i] = Vec3{}
		}
		return g.LongRangeForces()
	}, 1e-5, 2e-3)
}

// checkFiniteDifference verifies that the force on a few random atoms
// equals the negative gradient of the energy function.
func checkFiniteDifference(t *testing.T, s *System, energy func() float64, h, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	energy() // fill forces
	forces := append([]Vec3(nil), s.Frc...)
	for trial := 0; trial < 4; trial++ {
		i := rng.Intn(s.N())
		for axis := 0; axis < 3; axis++ {
			orig := s.Pos[i]
			bump := Vec3{}
			switch axis {
			case 0:
				bump.X = h
			case 1:
				bump.Y = h
			case 2:
				bump.Z = h
			}
			s.Pos[i] = orig.Add(bump)
			ePlus := energy()
			s.Pos[i] = orig.Sub(bump)
			eMinus := energy()
			s.Pos[i] = orig
			grad := (ePlus - eMinus) / (2 * h)
			var f float64
			switch axis {
			case 0:
				f = forces[i].X
			case 1:
				f = forces[i].Y
			case 2:
				f = forces[i].Z
			}
			if math.Abs(f+grad) > tol*math.Max(1, math.Abs(f)) {
				t.Fatalf("atom %d axis %d: force %v, -dE/dx %v", i, axis, f, -grad)
			}
		}
	}
	energy() // restore force state
}

func TestGSEMatchesReferenceEwald(t *testing.T) {
	// The grid-based k-space energy must match the direct structure-factor
	// Ewald sum.
	s := Build(Config{Molecules: 12, Seed: 13, GridN: 16})
	g := NewGSE(s)
	for i := range s.Frc {
		s.Frc[i] = Vec3{}
	}
	grid := g.LongRangeForces()
	ref := s.ReferenceRecipEnergy(8)
	if math.Abs(grid-ref) > 2e-2*math.Abs(ref) {
		t.Fatalf("GSE k-space energy %v, reference Ewald %v", grid, ref)
	}
}

func TestCoulombTwoChargesSanity(t *testing.T) {
	// Two opposite charges 2 apart in a large box: the total Ewald energy
	// (real + recip + self + exclusion handling) approximates the direct
	// -q^2/r interaction.
	s := &System{
		Box:    24,
		Pos:    []Vec3{{12, 12, 12}, {14, 12, 12}},
		Vel:    make([]Vec3, 2),
		Mass:   []float64{1, 1},
		Charge: []float64{1, -1},
		Eps:    []float64{0, 0},
		Sig:    []float64{1, 1},
		Cutoff: 6, Sigma: 1, GridN: 32,
	}
	s.Frc = make([]Vec3, 2)
	s.BuildExclusions()
	g := NewGSE(s)
	eReal := s.RangeLimitedForces()
	eK := g.LongRangeForces()
	total := eReal + eK + s.SelfEnergy()
	direct := s.DirectCoulombEnergy()
	if math.Abs(total-direct) > 0.02 {
		t.Fatalf("Ewald total %v, direct %v", total, direct)
	}
}

func TestReferenceCoulombMatchesPipeline(t *testing.T) {
	s := Build(Config{Molecules: 10, Seed: 17, GridN: 16})
	// Zero LJ so only Coulomb remains in the range-limited part.
	for i := range s.Eps {
		s.Eps[i] = 0
	}
	for i := range s.Frc {
		s.Frc[i] = Vec3{}
	}
	g := NewGSE(s)
	pipeline := s.RangeLimitedForces() + g.LongRangeForces() + s.SelfEnergy()
	ref := s.ReferenceCoulombEnergy(8)
	if math.Abs(pipeline-ref) > 2e-2*math.Max(1, math.Abs(ref)) {
		t.Fatalf("pipeline Coulomb %v, reference %v", pipeline, ref)
	}
}

func TestForcesSumToZero(t *testing.T) {
	s := Build(Config{Molecules: 25, Seed: 19})
	in := NewIntegrator(s, 0.002)
	in.ComputeForces()
	var total Vec3
	for _, f := range s.Frc {
		total = total.Add(f)
	}
	if total.Norm() > 1e-6 {
		t.Fatalf("net force %v, want ~0 (Newton's third law)", total)
	}
}

func TestNVEEnergyConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("200-step NVE run; exercised without -short")
	}
	s := Build(Config{Molecules: 16, Temperature: 0.8, Seed: 23})
	in := NewIntegrator(s, 0.001)
	in.ComputeForces()
	e0 := in.TotalEnergy()
	in.Run(200)
	e1 := in.TotalEnergy()
	drift := math.Abs(e1-e0) / math.Max(1, math.Abs(e0))
	if drift > 5e-3 {
		t.Fatalf("NVE energy drift %.4f%% over 200 steps (E %v -> %v)", 100*drift, e0, e1)
	}
}

func TestMomentumConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("100-step integration; exercised without -short")
	}
	s := Build(Config{Molecules: 16, Temperature: 0.8, Seed: 29})
	in := NewIntegrator(s, 0.001)
	in.Run(100)
	// Grid-based electrostatics leaves a tiny discretization residue, as
	// in any PME-style method; the drift must stay negligible.
	if p := s.Momentum(); p.Norm() > 1e-6 {
		t.Fatalf("momentum drifted to %v", p)
	}
}

func TestThermostatDrivesTemperature(t *testing.T) {
	if testing.Short() {
		t.Skip("300-step thermostatted run; exercised without -short")
	}
	s := Build(Config{Molecules: 24, Temperature: 2.0, Seed: 31})
	in := NewIntegrator(s, 0.002)
	in.Thermostat = true
	in.TargetT = 0.8
	in.Tau = 0.02
	in.Run(300)
	if T := s.Temperature(); math.Abs(T-0.8) > 0.25 {
		t.Fatalf("temperature %v after thermostatting toward 0.8", T)
	}
}

func TestLongRangeIntervalCaching(t *testing.T) {
	// Evaluating long-range forces every other step (Anton's schedule)
	// must stay close to the every-step trajectory over a short run.
	a := Build(Config{Molecules: 12, Temperature: 0.5, Seed: 37})
	b := Build(Config{Molecules: 12, Temperature: 0.5, Seed: 37})
	ia := NewIntegrator(a, 0.001)
	ib := NewIntegrator(b, 0.001)
	ib.LongRangeInterval = 2
	ia.Run(50)
	ib.Run(50)
	var maxDev float64
	for i := range a.Pos {
		if d := a.MinImage(a.Pos[i], b.Pos[i]).Norm(); d > maxDev {
			maxDev = d
		}
	}
	if maxDev > 0.05 {
		t.Fatalf("interval-2 trajectory deviates by %v", maxDev)
	}
	// And it must still roughly conserve energy.
	e0 := ib.TotalEnergy()
	ib.Run(100)
	drift := math.Abs(ib.TotalEnergy()-e0) / math.Max(1, math.Abs(e0))
	if drift > 1e-2 {
		t.Fatalf("interval-2 energy drift %.4f%%", 100*drift)
	}
}

func TestPairCountGrowsWithDensity(t *testing.T) {
	sparse := Build(Config{Molecules: 20, Box: 40, Seed: 41})
	dense := Build(Config{Molecules: 20, Box: 12, Seed: 41})
	if sparse.PairCountWithinCutoff() >= dense.PairCountWithinCutoff() {
		t.Fatal("denser system should have more range-limited pairs")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	s := Build(Config{Molecules: 2, Seed: 1})
	s.Bonds = append(s.Bonds, Bond{I: 0, J: 99})
	if s.Validate() == nil {
		t.Fatal("invalid bond accepted")
	}
	s = Build(Config{Molecules: 2, Seed: 1})
	s.Cutoff = s.Box
	if s.Validate() == nil {
		t.Fatal("oversized cutoff accepted")
	}
}

func BenchmarkForces100Molecules(b *testing.B) {
	s := Build(Config{Molecules: 100, Temperature: 1, Seed: 1})
	in := NewIntegrator(s, 0.002)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.ComputeForces()
	}
}

// Properties of the Vec3 algebra, checked with testing/quick.
func TestVec3Properties(t *testing.T) {
	toVec := func(a, b, c int16) Vec3 {
		return Vec3{float64(a) / 64, float64(b) / 64, float64(c) / 64}
	}
	// The cross product is orthogonal to both operands.
	orth := func(a1, a2, a3, b1, b2, b3 int16) bool {
		a, b := toVec(a1, a2, a3), toVec(b1, b2, b3)
		c := a.Cross(b)
		return math.Abs(c.Dot(a)) < 1e-6 && math.Abs(c.Dot(b)) < 1e-6
	}
	if err := quick.Check(orth, nil); err != nil {
		t.Error(err)
	}
	// |a x b|^2 + (a.b)^2 = |a|^2 |b|^2 (Lagrange identity).
	lagrange := func(a1, a2, a3, b1, b2, b3 int16) bool {
		a, b := toVec(a1, a2, a3), toVec(b1, b2, b3)
		lhs := a.Cross(b).Norm2() + a.Dot(b)*a.Dot(b)
		rhs := a.Norm2() * b.Norm2()
		return math.Abs(lhs-rhs) < 1e-4*(1+rhs)
	}
	if err := quick.Check(lagrange, nil); err != nil {
		t.Error(err)
	}
	// Scaling is linear in the norm.
	scale := func(a1, a2, a3, s int16) bool {
		a := toVec(a1, a2, a3)
		k := float64(s) / 64
		return math.Abs(a.Scale(k).Norm()-math.Abs(k)*a.Norm()) < 1e-6
	}
	if err := quick.Check(scale, nil); err != nil {
		t.Error(err)
	}
}

// Property: the minimum image displacement never exceeds half the box
// diagonal and is antisymmetric.
func TestMinImageProperties(t *testing.T) {
	s := &System{Box: 10}
	f := func(ax, ay, az, bx, by, bz uint16) bool {
		a := Vec3{float64(ax%1000) / 50, float64(ay%1000) / 50, float64(az%1000) / 50}
		b := Vec3{float64(bx%1000) / 50, float64(by%1000) / 50, float64(bz%1000) / 50}
		d := s.MinImage(a, b)
		if math.Abs(d.X) > 5+1e-9 || math.Abs(d.Y) > 5+1e-9 || math.Abs(d.Z) > 5+1e-9 {
			return false
		}
		r := s.MinImage(b, a)
		return math.Abs(d.X+r.X) < 1e-9 || math.Abs(math.Abs(d.X+r.X)-10) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
