package md

import (
	"math"

	"anton/internal/par"
)

// CellList is a spatial binning of atoms used to enumerate range-limited
// pairs in O(N). It is the sequential counterpart of Anton's spatial
// decomposition: each cell corresponds to a home-box-like region.
type CellList struct {
	n     int     // cells per dimension
	size  float64 // cell side
	box   float64
	cells [][]int
}

// NewCellList bins the atoms of s into cells of side >= cutoff.
func NewCellList(s *System) *CellList {
	n := int(s.Box / s.Cutoff)
	if n < 1 {
		n = 1
	}
	cl := &CellList{n: n, size: s.Box / float64(n), box: s.Box, cells: make([][]int, n*n*n)}
	for i, p := range s.Pos {
		cl.cells[cl.index(p)] = append(cl.cells[cl.index(p)], i)
	}
	return cl
}

func (cl *CellList) index(p Vec3) int {
	cx := cellCoord(p.X, cl.size, cl.n)
	cy := cellCoord(p.Y, cl.size, cl.n)
	cz := cellCoord(p.Z, cl.size, cl.n)
	return (cx*cl.n+cy)*cl.n + cz
}

func cellCoord(x, size float64, n int) int {
	c := int(math.Floor(x / size))
	c %= n
	if c < 0 {
		c += n
	}
	return c
}

// ForEachPair calls fn once for every unordered atom pair (i < j) whose
// cells are within one cell of each other — a superset of all pairs within
// the cutoff. On small grids where neighbour offsets alias, each pair is
// still visited exactly once.
func (cl *CellList) ForEachPair(fn func(i, j int)) {
	for home := 0; home < len(cl.cells); home++ {
		cl.pairsOfCell(home, fn)
	}
}

// pairsOfCell enumerates the pairs canonically owned by the given home
// cell: all pairs within it, plus its pairs with the neighbouring cells of
// higher index. Visiting every home cell in ascending index order
// reproduces ForEachPair's enumeration exactly, which is what lets the
// parallel force kernel shard by cell while keeping the canonical pair
// order within each shard.
func (cl *CellList) pairsOfCell(home int, fn func(i, j int)) {
	n := cl.n
	cz := home % n
	cy := (home / n) % n
	cx := home / (n * n)
	atoms := cl.cells[home]
	// Pairs within the home cell.
	for a := 0; a < len(atoms); a++ {
		for b := a + 1; b < len(atoms); b++ {
			fn(atoms[a], atoms[b])
		}
	}
	// Pairs with half of the neighbouring cells (avoiding double visits by
	// ordering cells). On small grids the offsets alias: dedupe explicitly.
	var visited map[[2]int]bool
	if n < 3 {
		visited = make(map[[2]int]bool)
	}
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				other := ((mod(cx+dx, n))*n+mod(cy+dy, n))*n + mod(cz+dz, n)
				if other <= home {
					continue
				}
				if visited != nil {
					key := [2]int{home, other}
					if visited[key] {
						continue
					}
					visited[key] = true
				}
				for _, i := range atoms {
					for _, j := range cl.cells[other] {
						a, b := i, j
						if a > b {
							a, b = b, a
						}
						fn(a, b)
					}
				}
			}
		}
	}
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// maxShards caps the number of work shards handed to the parallel layer.
// It is a fixed constant — never derived from the worker count — because
// the shard decomposition defines the canonical combine order that makes
// parallel results bit-identical across worker counts.
const maxShards = 256

// cellShards partitions the home cells into at most maxShards contiguous
// index ranges.
func (cl *CellList) cellShards() (shards int, bounds func(shard int) (lo, hi int)) {
	cells := len(cl.cells)
	shards = cells
	if shards > maxShards {
		shards = maxShards
	}
	return shards, func(s int) (int, int) { return s * cells / shards, (s + 1) * cells / shards }
}

// pairContrib is one pair's recorded interaction: the force on atom i (the
// reaction on j is its negation), the energy terms, and the virial term.
// The sequential kernel performs up to two separate energy additions per
// pair (Lennard-Jones, then real-space Coulomb); e2Valid distinguishes that
// case from the single-addition excluded-pair correction so the replay
// reproduces the identical float-operation sequence.
type pairContrib struct {
	i, j    int
	f       Vec3
	e1, e2  float64
	w       float64
	e2Valid bool
}

// pairInteraction evaluates the range-limited interaction of one pair,
// returning false when the pair is outside the cutoff. It is the single
// source of truth for the pair physics, shared by the sequential and
// parallel paths.
func (s *System) pairInteraction(i, j int, alpha, rc2 float64) (pairContrib, bool) {
	d := s.MinImage(s.Pos[i], s.Pos[j])
	r2 := d.Norm2()
	if r2 >= rc2 || r2 == 0 {
		return pairContrib{}, false
	}
	r := math.Sqrt(r2)
	c := pairContrib{i: i, j: j}
	var fScalar float64 // dV/dr * (-1/r), multiplying d gives force on i
	qq := s.Charge[i] * s.Charge[j]
	if s.Excluded(i, j) {
		// Excluded pairs skip LJ and real-space Coulomb entirely, but the
		// k-space sum includes them, so subtract the smeared interaction:
		// V = -qq*erf(alpha r)/r.
		erfTerm := math.Erf(alpha * r)
		c.e1 = -(qq * erfTerm / r)
		dV := qq * (erfTerm/r2 - 2*alpha/math.SqrtPi*math.Exp(-alpha*alpha*r2)/r)
		fScalar = -dV / r
	} else {
		// Lennard-Jones with Lorentz-Berthelot combination.
		eps := math.Sqrt(s.Eps[i] * s.Eps[j])
		sig := 0.5 * (s.Sig[i] + s.Sig[j])
		sr2 := sig * sig / r2
		sr6 := sr2 * sr2 * sr2
		sr12 := sr6 * sr6
		c.e1 = 4 * eps * (sr12 - sr6)
		ljF := 24 * eps * (2*sr12 - sr6) / r2 // multiplies d
		// Real-space Ewald.
		erfcTerm := math.Erfc(alpha * r)
		c.e2 = qq * erfcTerm / r
		c.e2Valid = true
		fScalar = ljF + qq*(erfcTerm/(r2*r)+2*alpha/math.SqrtPi*math.Exp(-alpha*alpha*r2)/r2)
	}
	c.f = d.Scale(fScalar)
	c.w = c.f.Dot(d)
	return c, true
}

// apply replays one recorded contribution onto the system state, mirroring
// the sequential kernel's accumulation statements operation for operation.
func (c *pairContrib) apply(s *System, e *float64) {
	*e += c.e1
	if c.e2Valid {
		*e += c.e2
	}
	s.Frc[c.i] = s.Frc[c.i].Add(c.f)
	s.Frc[c.j] = s.Frc[c.j].Sub(c.f)
	s.Virial += c.w
}

// RangeLimitedForces computes the range-limited nonbonded interactions:
// Lennard-Jones plus the real-space (erfc-damped) part of Ewald
// electrostatics for all pairs within the cutoff, with exclusion and
// Ewald-exclusion corrections. Forces accumulate into s.Frc; the energy is
// returned. This is the computation Anton's HTIS performs.
//
// With s.Workers != 1 the pair evaluations — the expensive part: sqrt,
// erfc, exp per pair — run on a goroutine pool, sharded by home cell. Each
// shard records its contributions in the canonical cell-order enumeration
// and the caller replays them shard by shard, so the float accumulation
// order (and therefore every bit of the forces, energy, and virial) is
// identical to the sequential execution for any worker count.
func (s *System) RangeLimitedForces() float64 {
	cl := NewCellList(s)
	alpha := s.Alpha()
	rc2 := s.Cutoff * s.Cutoff
	var e float64
	workers := par.Workers(s.Workers)
	if workers == 1 {
		// Sequential fast path: evaluate and accumulate pair by pair.
		cl.ForEachPair(func(i, j int) {
			if c, ok := s.pairInteraction(i, j, alpha, rc2); ok {
				c.apply(s, &e)
			}
		})
		return e
	}
	shards, bounds := cl.cellShards()
	par.MapReduce(workers, shards, func(shard int) []pairContrib {
		lo, hi := bounds(shard)
		var out []pairContrib
		for home := lo; home < hi; home++ {
			cl.pairsOfCell(home, func(i, j int) {
				if c, ok := s.pairInteraction(i, j, alpha, rc2); ok {
					out = append(out, c)
				}
			})
		}
		return out
	}, func(_ int, contribs []pairContrib) {
		for k := range contribs {
			contribs[k].apply(s, &e)
		}
	})
	return e
}

// PairCountWithinCutoff returns the number of non-excluded pairs inside
// the cutoff — the HTIS workload size. The count shards by home cell like
// the force kernel; integer addition is associative, so any worker count
// gives the exact same total.
func (s *System) PairCountWithinCutoff() int {
	cl := NewCellList(s)
	rc2 := s.Cutoff * s.Cutoff
	count := 0
	shards, bounds := cl.cellShards()
	par.MapReduce(par.Workers(s.Workers), shards, func(shard int) int {
		lo, hi := bounds(shard)
		sub := 0
		for home := lo; home < hi; home++ {
			cl.pairsOfCell(home, func(i, j int) {
				if s.Excluded(i, j) {
					return
				}
				if s.MinImage(s.Pos[i], s.Pos[j]).Norm2() < rc2 {
					sub++
				}
			})
		}
		return sub
	}, func(_ int, sub int) { count += sub })
	return count
}

// SelfEnergy returns the constant Ewald self-energy correction.
func (s *System) SelfEnergy() float64 {
	var q2 float64
	for _, q := range s.Charge {
		q2 += q * q
	}
	return -s.Alpha() / math.SqrtPi * q2
}
