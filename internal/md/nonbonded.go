package md

import "math"

// CellList is a spatial binning of atoms used to enumerate range-limited
// pairs in O(N). It is the sequential counterpart of Anton's spatial
// decomposition: each cell corresponds to a home-box-like region.
type CellList struct {
	n     int     // cells per dimension
	size  float64 // cell side
	box   float64
	cells [][]int
}

// NewCellList bins the atoms of s into cells of side >= cutoff.
func NewCellList(s *System) *CellList {
	n := int(s.Box / s.Cutoff)
	if n < 1 {
		n = 1
	}
	cl := &CellList{n: n, size: s.Box / float64(n), box: s.Box, cells: make([][]int, n*n*n)}
	for i, p := range s.Pos {
		cl.cells[cl.index(p)] = append(cl.cells[cl.index(p)], i)
	}
	return cl
}

func (cl *CellList) index(p Vec3) int {
	cx := cellCoord(p.X, cl.size, cl.n)
	cy := cellCoord(p.Y, cl.size, cl.n)
	cz := cellCoord(p.Z, cl.size, cl.n)
	return (cx*cl.n+cy)*cl.n + cz
}

func cellCoord(x, size float64, n int) int {
	c := int(math.Floor(x / size))
	c %= n
	if c < 0 {
		c += n
	}
	return c
}

// ForEachPair calls fn once for every unordered atom pair (i < j) whose
// cells are within one cell of each other — a superset of all pairs within
// the cutoff. On small grids where neighbour offsets alias, each pair is
// still visited exactly once.
func (cl *CellList) ForEachPair(fn func(i, j int)) {
	n := cl.n
	visited := make(map[[2]int]bool)
	smallGrid := n < 3 // offsets alias: dedupe explicitly
	for cx := 0; cx < n; cx++ {
		for cy := 0; cy < n; cy++ {
			for cz := 0; cz < n; cz++ {
				home := (cx*n+cy)*n + cz
				atoms := cl.cells[home]
				// Pairs within the home cell.
				for a := 0; a < len(atoms); a++ {
					for b := a + 1; b < len(atoms); b++ {
						fn(atoms[a], atoms[b])
					}
				}
				// Pairs with half of the neighbouring cells (avoiding
				// double visits by ordering cells).
				for dx := -1; dx <= 1; dx++ {
					for dy := -1; dy <= 1; dy++ {
						for dz := -1; dz <= 1; dz++ {
							if dx == 0 && dy == 0 && dz == 0 {
								continue
							}
							other := ((mod(cx+dx, n))*n+mod(cy+dy, n))*n + mod(cz+dz, n)
							if other <= home {
								continue
							}
							if smallGrid {
								key := [2]int{home, other}
								if visited[key] {
									continue
								}
								visited[key] = true
							}
							for _, i := range atoms {
								for _, j := range cl.cells[other] {
									a, b := i, j
									if a > b {
										a, b = b, a
									}
									fn(a, b)
								}
							}
						}
					}
				}
			}
		}
	}
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// RangeLimitedForces computes the range-limited nonbonded interactions:
// Lennard-Jones plus the real-space (erfc-damped) part of Ewald
// electrostatics for all pairs within the cutoff, with exclusion and
// Ewald-exclusion corrections. Forces accumulate into s.Frc; the energy is
// returned. This is the computation Anton's HTIS performs.
func (s *System) RangeLimitedForces() float64 {
	cl := NewCellList(s)
	alpha := s.Alpha()
	rc2 := s.Cutoff * s.Cutoff
	var e float64
	cl.ForEachPair(func(i, j int) {
		d := s.MinImage(s.Pos[i], s.Pos[j])
		r2 := d.Norm2()
		if r2 >= rc2 || r2 == 0 {
			return
		}
		r := math.Sqrt(r2)
		var fScalar float64 // dV/dr * (-1/r), multiplying d gives force on i
		qq := s.Charge[i] * s.Charge[j]
		if s.Excluded(i, j) {
			// Excluded pairs skip LJ and real-space Coulomb entirely, but
			// the k-space sum includes them, so subtract the smeared
			// interaction: V = -qq*erf(alpha r)/r.
			erfTerm := math.Erf(alpha * r)
			e -= qq * erfTerm / r
			dV := qq * (erfTerm/r2 - 2*alpha/math.SqrtPi*math.Exp(-alpha*alpha*r2)/r)
			fScalar = -dV / r
		} else {
			// Lennard-Jones with Lorentz-Berthelot combination.
			eps := math.Sqrt(s.Eps[i] * s.Eps[j])
			sig := 0.5 * (s.Sig[i] + s.Sig[j])
			sr2 := sig * sig / r2
			sr6 := sr2 * sr2 * sr2
			sr12 := sr6 * sr6
			e += 4 * eps * (sr12 - sr6)
			ljF := 24 * eps * (2*sr12 - sr6) / r2 // multiplies d
			// Real-space Ewald.
			erfcTerm := math.Erfc(alpha * r)
			e += qq * erfcTerm / r
			fScalar = ljF + qq*(erfcTerm/(r2*r)+2*alpha/math.SqrtPi*math.Exp(-alpha*alpha*r2)/r2)
		}
		f := d.Scale(fScalar)
		s.Frc[i] = s.Frc[i].Add(f)
		s.Frc[j] = s.Frc[j].Sub(f)
		s.Virial += f.Dot(d)
	})
	return e
}

// PairCountWithinCutoff returns the number of non-excluded pairs inside
// the cutoff — the HTIS workload size.
func (s *System) PairCountWithinCutoff() int {
	cl := NewCellList(s)
	rc2 := s.Cutoff * s.Cutoff
	count := 0
	cl.ForEachPair(func(i, j int) {
		if s.Excluded(i, j) {
			return
		}
		if s.MinImage(s.Pos[i], s.Pos[j]).Norm2() < rc2 {
			count++
		}
	})
	return count
}

// SelfEnergy returns the constant Ewald self-energy correction.
func (s *System) SelfEnergy() float64 {
	var q2 float64
	for _, q := range s.Charge {
		q2 += q * q
	}
	return -s.Alpha() / math.SqrtPi * q2
}
