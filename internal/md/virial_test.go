package md

import (
	"math"
	"testing"
)

// totalEnergyAndVirial evaluates every component at the current geometry.
func totalEnergyAndVirial(s *System) (float64, float64) {
	for i := range s.Frc {
		s.Frc[i] = Vec3{}
	}
	s.Virial = 0
	e := s.BondForces() + s.AngleForces() + s.DihedralForces() + s.RangeLimitedForces()
	g := NewGSE(s)
	e += g.LongRangeForces()
	return e, s.Virial
}

// scaleSystem uniformly rescales box and positions by factor f.
func scaleSystem(s *System, f float64) {
	s.Box *= f
	for i := range s.Pos {
		s.Pos[i] = s.Pos[i].Scale(f)
	}
}

func TestVirialMatchesVolumeDerivative(t *testing.T) {
	// The virial trace is the logarithmic volume derivative of the energy:
	// W = -dE/d(ln s) under uniform scaling of box and positions. This
	// validates every component's virial jointly, including the spectral
	// reciprocal-space term.
	s := Build(Config{Molecules: 10, Chains: 1, ChainLength: 5, Temperature: 0, Seed: 21})
	_, w := totalEnergyAndVirial(s)
	const h = 1e-5
	scaleSystem(s, 1+h)
	ePlus, _ := totalEnergyAndVirial(s)
	scaleSystem(s, (1-h)/(1+h))
	eMinus, _ := totalEnergyAndVirial(s)
	scaleSystem(s, 1/(1-h))
	grad := (ePlus - eMinus) / (2 * h) // dE/ds at s=1
	want := -grad
	if math.Abs(w-want) > 2e-2*math.Max(1, math.Abs(want)) {
		t.Fatalf("virial = %v, -dE/ds = %v", w, want)
	}
}

func TestSpectralEnergyMatchesInterpolated(t *testing.T) {
	s := Build(Config{Molecules: 12, Seed: 22})
	g := NewGSE(s)
	for i := range s.Frc {
		s.Frc[i] = Vec3{}
	}
	interp := g.LongRangeForces()
	spec := g.SpectralEnergy()
	if math.Abs(spec-interp) > 2e-2*math.Max(0.1, math.Abs(interp)) {
		t.Fatalf("spectral energy %v, interpolated %v", spec, interp)
	}
}

func TestVirialZeroWithoutInteractions(t *testing.T) {
	s := Build(Config{Molecules: 6, Seed: 23})
	for i := range s.Charge {
		s.Charge[i] = 0
		s.Eps[i] = 0
	}
	s.Bonds = nil
	s.Angles = nil
	s.Dihedrals = nil
	s.BuildExclusions()
	_, w := totalEnergyAndVirial(s)
	if math.Abs(w) > 1e-10 {
		t.Fatalf("ideal-gas virial = %v", w)
	}
}

func TestPressureFiniteAndReported(t *testing.T) {
	s := Build(Config{Molecules: 16, Temperature: 1, Seed: 24})
	in := NewIntegrator(s, 0.002)
	in.ComputeForces()
	p := s.Pressure()
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("pressure = %v", p)
	}
}

func TestBarostatMovesPressureTowardTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("long barostat relaxation; exercised without -short")
	}
	// Start from a compressed (high-pressure) configuration and couple to
	// a lower target: the box must expand and the pressure drop.
	s := Build(Config{Molecules: 16, Temperature: 1, Seed: 25, Box: 9})
	in := NewIntegrator(s, 0.001)
	in.Thermostat = true
	in.TargetT = 1
	in.Tau = 0.05
	in.ComputeForces()
	p0 := s.Pressure()
	box0 := s.Box
	in.BarostatOn = true
	in.Baro = Barostat{TargetP: p0 / 4, TauInv: 0.02}
	in.Run(150)
	if s.Box <= box0 {
		t.Fatalf("box did not expand: %v -> %v", box0, s.Box)
	}
	p1 := s.Pressure()
	if math.Abs(p1-in.Baro.TargetP) >= math.Abs(p0-in.Baro.TargetP) {
		t.Fatalf("pressure did not approach target: %v -> %v (target %v)", p0, p1, in.Baro.TargetP)
	}
}

func TestBarostatClampsRescaling(t *testing.T) {
	s := Build(Config{Molecules: 4, Temperature: 1, Seed: 26})
	in := NewIntegrator(s, 0.001)
	in.ComputeForces()
	// An absurd target must still produce a gentle per-step rescale.
	b := Barostat{TargetP: -1e9, TauInv: 1}
	scale := b.Apply(s)
	if scale < math.Cbrt(0.98)-1e-12 || scale > math.Cbrt(1.02)+1e-12 {
		t.Fatalf("rescale factor %v outside the clamp", scale)
	}
}
