// Package core implements the paper's central communication paradigm:
// counted remote writes over fixed communication patterns.
//
// A Pattern captures the three requirements the paper identifies for
// formulating communication as counted remote writes:
//
//  1. The communication pattern is fixed, so a sender can push data
//     directly to a preallocated address in its destination's local memory
//     (receive-side storage buffers are allocated before a simulation
//     begins and kept stable).
//  2. The total number of packets sent to each receiver is fixed and known
//     in advance, so the receiver can poll a single synchronization counter
//     to learn that all data required for a computation has arrived —
//     synchronization is embedded within communication.
//  3. Buffer availability is inferred from dataflow dependencies (rounds):
//     a sender may reuse a destination buffer in round r+1 only because
//     the receiver's round-r computation has completed, which the
//     application proves by advancing the round.
//
// The type system enforces these invariants: flows declare their packet
// count up front, Freeze locks the pattern, sending more packets than
// declared panics, and completion targets are derived from the frozen
// expected counts rather than from what was actually sent.
package core

import (
	"fmt"

	"anton/internal/machine"
	"anton/internal/packet"
)

// Flow is one fixed sender-to-receiver lane within a Pattern: a known
// number of packets of a known size, landing in a preallocated buffer.
type Flow struct {
	Src   packet.Client
	Dst   packet.Client
	Count int // packets per round, fixed at declaration
	Bytes int // wire payload bytes per packet
	Words int // payload words reserved per packet at the destination
	Addr  int // preallocated base address in Dst's local memory
	// Accumulate marks flows whose packets add into the destination
	// (which must be an accumulation memory) instead of overwriting.
	Accumulate bool

	p    *Pattern
	sent int // packets sent in the current round
}

// Pattern is a frozen set of flows sharing one synchronization counter
// label. All packets of all flows in a round must arrive before any
// receiver's completion callback fires.
type Pattern struct {
	Name string

	m       *machine.Machine
	ctr     packet.CounterID
	flows   []*Flow
	mcFlows []*McFlow
	frozen  bool
	round   int
	// expected is the per-destination packet count per round, the quantity
	// the paper's receivers precompute.
	expected  map[packet.Client]uint64
	nextAddr  map[packet.Client]int
	accumBase map[packet.Client]int
}

func okNext(p *Pattern, dst packet.Client) bool {
	_, ok := p.nextAddr[dst]
	return ok
}

// NewPattern creates an empty pattern on m using synchronization counter
// label ctr at every destination. Destination buffer addresses are
// allocated starting at base (use distinct base ranges for patterns that
// share a destination client).
func NewPattern(m *machine.Machine, name string, ctr packet.CounterID, base int) *Pattern {
	return &Pattern{
		Name:      name,
		m:         m,
		ctr:       ctr,
		expected:  make(map[packet.Client]uint64),
		nextAddr:  makeBase(base),
		accumBase: make(map[packet.Client]int),
	}
}

func makeBase(base int) map[packet.Client]int {
	m := make(map[packet.Client]int)
	// The base is applied lazily per destination on first allocation.
	m[packet.Client{Node: -1}] = base
	return m
}

func (p *Pattern) base() int { return p.nextAddr[packet.Client{Node: -1}] }

// AddFlow declares a flow of count packets of bytesPer wire-payload bytes
// each from src to dst, reserving wordsPer payload words per packet in
// dst's local memory. It returns the flow for use with Push.
func (p *Pattern) AddFlow(src, dst packet.Client, count, bytesPer, wordsPer int) *Flow {
	return p.addFlow(src, dst, count, bytesPer, wordsPer, false)
}

// AddAccumFlow declares an accumulating flow into an accumulation memory.
func (p *Pattern) AddAccumFlow(src, dst packet.Client, count, bytesPer, wordsPer int) *Flow {
	if !dst.Kind.IsAccum() {
		panic(fmt.Sprintf("core: accumulation flow into %v", dst))
	}
	return p.addFlow(src, dst, count, bytesPer, wordsPer, true)
}

func (p *Pattern) addFlow(src, dst packet.Client, count, bytesPer, wordsPer int, accum bool) *Flow {
	if p.frozen {
		panic("core: AddFlow on frozen pattern")
	}
	if count <= 0 {
		panic("core: flow count must be positive")
	}
	addr, ok := p.nextAddr[dst]
	if !ok {
		addr = p.base()
	}
	f := &Flow{
		Src: src, Dst: dst, Count: count, Bytes: bytesPer, Words: wordsPer,
		Addr: addr, Accumulate: accum, p: p,
	}
	if accum {
		// Accumulating flows into the same destination deliberately alias
		// one address range so contributions from many sources sum in
		// place; reserve the widest range seen.
		base, ok := p.accumBase[dst]
		if !ok {
			base = addr
			p.accumBase[dst] = base
		}
		f.Addr = base
		if end := base + count*wordsPer; end > p.nextAddr[dst] || !okNext(p, dst) {
			p.nextAddr[dst] = end
		}
	} else {
		p.nextAddr[dst] = addr + count*wordsPer
	}
	p.flows = append(p.flows, f)
	p.expected[dst] += uint64(count)
	return f
}

// Freeze locks the pattern. After Freeze the expected packet counts are
// immutable and flows may begin sending.
func (p *Pattern) Freeze() {
	if p.frozen {
		panic("core: pattern already frozen")
	}
	p.frozen = true
	p.round = 1
}

// Expected returns the number of packets dst receives per round — the
// receiver's precomputed target.
func (p *Pattern) Expected(dst packet.Client) uint64 { return p.expected[dst] }

// Round returns the current round number (1-based; 0 before Freeze).
func (p *Pattern) Round() int { return p.round }

// Flows returns the declared flows in declaration order.
func (p *Pattern) Flows() []*Flow { return p.flows }

// Push sends the flow's next packet of the round carrying payload. The
// destination address is the packet's preallocated slot. Sending more than
// the declared Count panics: the entire paradigm rests on the receiver's
// packet count being exact.
func (f *Flow) Push(payload ...float64) {
	p := f.p
	if !p.frozen {
		panic("core: Push before Freeze")
	}
	if f.sent >= f.Count {
		panic(fmt.Sprintf("core: flow %v->%v exceeded its fixed count %d", f.Src, f.Dst, f.Count))
	}
	addr := f.Addr
	if !f.Accumulate {
		addr += f.sent * f.Words
	}
	f.sent++
	kind := packet.Write
	if f.Accumulate {
		kind = packet.Accumulate
	}
	p.m.Client(f.Src).Send(&packet.Packet{
		Kind: kind, Dst: f.Dst, Multicast: packet.NoMulticast,
		Counter: p.ctr, Addr: addr, Bytes: f.Bytes, Payload: payload,
		Tag: p.Name,
	})
}

// PushAll sends all of the flow's packets for this round back to back,
// without payload data (timing-only use).
func (f *Flow) PushAll() {
	for f.sent < f.Count {
		f.Push()
	}
}

// Sent returns how many packets the flow has pushed this round.
func (f *Flow) Sent() int { return f.sent }

// OnComplete schedules fn at the simulated instant dst has received every
// packet of the current round — i.e. when dst's synchronization counter
// reaches round * expected. This is the "successful poll" of Figure 4.
func (p *Pattern) OnComplete(dst packet.Client, fn func()) {
	if !p.frozen {
		panic("core: OnComplete before Freeze")
	}
	exp := p.expected[dst]
	if exp == 0 {
		panic(fmt.Sprintf("core: %v is not a destination of pattern %q", dst, p.Name))
	}
	target := uint64(p.round) * exp
	cl := p.m.Client(dst)
	if dst.Kind.IsAccum() {
		// Accumulation-memory counters are polled by slices across the
		// on-chip network and incur the larger polling latency.
		cl.WaitRemote(p.ctr, target, fn)
		return
	}
	cl.Wait(p.ctr, target, fn)
}

// NextRound advances the pattern to the next round. Callers invoke it only
// after the dataflow dependencies prove every destination buffer is free —
// exactly the paper's "rely on dataflow dependencies to determine when
// destination buffers are available". Flows that have not sent their full
// count panic, since the receivers' counters would desynchronize.
func (p *Pattern) NextRound() {
	if !p.frozen {
		panic("core: NextRound before Freeze")
	}
	for _, f := range p.flows {
		if f.sent != f.Count {
			panic(fmt.Sprintf("core: flow %v->%v sent %d of %d packets this round",
				f.Src, f.Dst, f.sent, f.Count))
		}
		f.sent = 0
	}
	for _, f := range p.mcFlows {
		if f.sent != f.Count {
			panic(fmt.Sprintf("core: multicast flow from %v sent %d of %d packets this round",
				f.Src, f.sent, f.Count))
		}
		f.sent = 0
	}
	p.round++
}

// Machine returns the machine the pattern runs on.
func (p *Pattern) Machine() *machine.Machine { return p.m }

// McFlow is a fixed multicast lane within a Pattern: count packets per
// round injected through a pre-installed multicast pattern, delivering to
// a declared set of destination clients. The MD position broadcast to up
// to 17 HTIS units is this shape.
type McFlow struct {
	Src   packet.Client
	ID    packet.MulticastID
	Dests []packet.Client
	Count int
	Bytes int
	Words int // payload words reserved per packet at each destination
	Addr  int

	p    *Pattern
	sent int
}

// AddMcFlow declares a multicast flow: the caller must have installed
// multicast pattern id whose delivery set is exactly dests. Each
// destination's expected per-round count increases by count.
func (p *Pattern) AddMcFlow(src packet.Client, id packet.MulticastID, dests []packet.Client, count, bytesPer, wordsPer int) *McFlow {
	if p.frozen {
		panic("core: AddMcFlow on frozen pattern")
	}
	if count <= 0 {
		panic("core: flow count must be positive")
	}
	if len(dests) == 0 {
		panic("core: multicast flow needs destinations")
	}
	// All destinations share one preallocated buffer region (a multicast
	// write lands at the same address everywhere); reserve it at the
	// maximum of the destinations' current allocation points.
	addr := 0
	for _, d := range dests {
		a, ok := p.nextAddr[d]
		if !ok {
			a = p.base()
		}
		if a > addr {
			addr = a
		}
	}
	f := &McFlow{Src: src, ID: id, Dests: append([]packet.Client(nil), dests...),
		Count: count, Bytes: bytesPer, Words: wordsPer, Addr: addr, p: p}
	for _, d := range dests {
		p.nextAddr[d] = addr + count*wordsPer
		p.expected[d] += uint64(count)
	}
	p.mcFlows = append(p.mcFlows, f)
	return f
}

// Push injects the flow's next multicast packet of the round.
func (f *McFlow) Push(payload ...float64) {
	p := f.p
	if !p.frozen {
		panic("core: Push before Freeze")
	}
	if f.sent >= f.Count {
		panic(fmt.Sprintf("core: multicast flow from %v exceeded its fixed count %d", f.Src, f.Count))
	}
	addr := f.Addr + f.sent*f.Words
	f.sent++
	p.m.Client(f.Src).Send(&packet.Packet{
		Kind: packet.Write, Multicast: f.ID,
		Counter: p.ctr, Addr: addr, Bytes: f.Bytes, Payload: payload,
		Tag: p.Name,
	})
}

// PushAll sends the remaining packets of the round without payloads.
func (f *McFlow) PushAll() {
	for f.sent < f.Count {
		f.Push()
	}
}

// Sent returns how many packets the flow has pushed this round.
func (f *McFlow) Sent() int { return f.sent }
