package core

import (
	"testing"

	"anton/internal/machine"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

func newMachine() (*sim.Sim, *machine.Machine) {
	s := sim.New()
	return s, machine.Default512(s)
}

func client(n topo.NodeID, k packet.ClientKind) packet.Client {
	return packet.Client{Node: n, Kind: k}
}

func TestPatternBasicCompletion(t *testing.T) {
	s, m := newMachine()
	p := NewPattern(m, "positions", 0, 0)
	dst := client(10, packet.Slice0)
	fa := p.AddFlow(client(1, packet.Slice0), dst, 3, 32, 4)
	fb := p.AddFlow(client(2, packet.Slice1), dst, 2, 32, 4)
	p.Freeze()
	if p.Expected(dst) != 5 {
		t.Fatalf("expected = %d, want 5", p.Expected(dst))
	}
	var done sim.Time = -1
	p.OnComplete(dst, func() { done = s.Now() })
	for i := 0; i < 3; i++ {
		fa.Push(float64(i))
	}
	fb.Push(100)
	fb.Push(101)
	s.Run()
	if done < 0 {
		t.Fatal("pattern never completed")
	}
	// Buffers are disjoint and per-slot: flow A at 0..11, flow B at 12..19.
	mem := m.Client(dst).Mem(0, 20)
	if mem[0] != 0 || mem[4] != 1 || mem[8] != 2 {
		t.Fatalf("flow A slots wrong: %v", mem[:12])
	}
	if mem[12] != 100 || mem[16] != 101 {
		t.Fatalf("flow B slots wrong: %v", mem[12:20])
	}
}

func TestPatternRounds(t *testing.T) {
	s, m := newMachine()
	p := NewPattern(m, "step", 1, 0)
	dst := client(5, packet.Slice2)
	f := p.AddFlow(client(4, packet.Slice0), dst, 2, 16, 2)
	p.Freeze()
	for round := 1; round <= 3; round++ {
		var done bool
		p.OnComplete(dst, func() { done = true })
		f.Push(float64(round))
		f.Push(float64(round * 10))
		s.Run()
		if !done {
			t.Fatalf("round %d never completed", round)
		}
		if p.Round() != round {
			t.Fatalf("Round() = %d, want %d", p.Round(), round)
		}
		p.NextRound()
	}
	// Counter accumulated across rounds: 3 rounds x 2 packets.
	if got := m.Client(dst).Counter(1).Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
}

func TestOverSendPanics(t *testing.T) {
	_, m := newMachine()
	p := NewPattern(m, "x", 0, 0)
	f := p.AddFlow(client(0, packet.Slice0), client(1, packet.Slice0), 1, 8, 1)
	p.Freeze()
	f.Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when exceeding fixed packet count")
		}
	}()
	f.Push(2)
}

func TestNextRoundRequiresFullSend(t *testing.T) {
	_, m := newMachine()
	p := NewPattern(m, "x", 0, 0)
	p.AddFlow(client(0, packet.Slice0), client(1, packet.Slice0), 2, 8, 1)
	p.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic advancing round with packets unsent")
		}
	}()
	p.NextRound()
}

func TestFreezeDiscipline(t *testing.T) {
	_, m := newMachine()
	p := NewPattern(m, "x", 0, 0)
	f := p.AddFlow(client(0, packet.Slice0), client(1, packet.Slice0), 1, 8, 1)
	mustPanic(t, "Push before Freeze", func() { f.Push(1) })
	mustPanic(t, "OnComplete before Freeze", func() { p.OnComplete(client(1, packet.Slice0), func() {}) })
	mustPanic(t, "NextRound before Freeze", func() { p.NextRound() })
	p.Freeze()
	mustPanic(t, "AddFlow after Freeze", func() {
		p.AddFlow(client(0, packet.Slice0), client(2, packet.Slice0), 1, 8, 1)
	})
	mustPanic(t, "double Freeze", func() { p.Freeze() })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic: %s", what)
		}
	}()
	fn()
}

func TestAccumFlowsAlias(t *testing.T) {
	s, m := newMachine()
	p := NewPattern(m, "forces", 2, 100)
	acc := client(7, packet.Accum0)
	// Three sources each contribute one packet of 2 words into the same
	// accumulation range — force accumulation in miniature.
	var flows []*Flow
	for i := 0; i < 3; i++ {
		flows = append(flows, p.AddAccumFlow(client(topo.NodeID(20+i), packet.Slice0), acc, 1, 16, 2))
	}
	p.Freeze()
	var done sim.Time = -1
	p.OnComplete(acc, func() { done = s.Now() })
	for i, f := range flows {
		f.Push(float64(i+1), float64(10*(i+1)))
	}
	s.Run()
	if done < 0 {
		t.Fatal("accumulation never completed")
	}
	got := m.Client(acc).Mem(100, 2)
	if got[0] != 6 || got[1] != 60 {
		t.Fatalf("accumulated = %v, want [6 60]", got)
	}
}

func TestAccumCompletionUsesRemotePoll(t *testing.T) {
	// Completion on an accumulation memory must charge the cross-ring
	// polling penalty; completion on a slice must not.
	s, m := newMachine()
	pa := NewPattern(m, "a", 0, 0)
	acc := client(3, packet.Accum1)
	fa := pa.AddAccumFlow(client(2, packet.Slice0), acc, 1, 8, 1)
	pa.Freeze()
	var accDone sim.Time = -1
	pa.OnComplete(acc, func() { accDone = s.Now() })
	fa.Push(1)
	s.Run()

	s2 := sim.New()
	m2 := machine.Default512(s2)
	pb := NewPattern(m2, "b", 0, 0)
	dst := client(3, packet.Slice0)
	fb := pb.AddFlow(client(2, packet.Slice0), dst, 1, 8, 1)
	pb.Freeze()
	var sliceDone sim.Time = -1
	pb.OnComplete(dst, func() { sliceDone = s2.Now() })
	fb.Push(1)
	s2.Run()

	diff := accDone.Sub(sliceDone)
	model := m.Model
	wantDiff := model.AccumPoll + (model.AccumDeliver - model.Deliver)
	if diff != wantDiff {
		t.Fatalf("accum completion penalty = %v, want %v", diff, wantDiff)
	}
}

func TestAccumFlowIntoSlicePanics(t *testing.T) {
	_, m := newMachine()
	p := NewPattern(m, "x", 0, 0)
	mustPanic(t, "accum flow into slice", func() {
		p.AddAccumFlow(client(0, packet.Slice0), client(1, packet.Slice0), 1, 8, 1)
	})
}

func TestOnCompleteUnknownDestinationPanics(t *testing.T) {
	_, m := newMachine()
	p := NewPattern(m, "x", 0, 0)
	p.AddFlow(client(0, packet.Slice0), client(1, packet.Slice0), 1, 8, 1)
	p.Freeze()
	mustPanic(t, "unknown destination", func() {
		p.OnComplete(client(2, packet.Slice0), func() {})
	})
}

func TestZeroCountFlowPanics(t *testing.T) {
	_, m := newMachine()
	p := NewPattern(m, "x", 0, 0)
	mustPanic(t, "zero-count flow", func() {
		p.AddFlow(client(0, packet.Slice0), client(1, packet.Slice0), 0, 8, 1)
	})
}

func TestPushAllTimingOnly(t *testing.T) {
	s, m := newMachine()
	p := NewPattern(m, "x", 0, 0)
	dst := client(30, packet.HTIS)
	f := p.AddFlow(client(0, packet.Slice0), dst, 17, 32, 4)
	p.Freeze()
	var done bool
	p.OnComplete(dst, func() { done = true })
	f.PushAll()
	s.Run()
	if !done || f.Sent() != 17 {
		t.Fatalf("PushAll: done=%v sent=%d", done, f.Sent())
	}
}

// The paradigm is logically equivalent to a gather (a set of remote reads)
// but completes without the receiver ever messaging the senders: verify no
// packets flow from the receiver's node.
func TestNoReceiverToSenderTraffic(t *testing.T) {
	s, m := newMachine()
	p := NewPattern(m, "gather", 0, 0)
	dst := client(40, packet.Slice0)
	var flows []*Flow
	for i := 0; i < 4; i++ {
		flows = append(flows, p.AddFlow(client(topo.NodeID(50+i), packet.Slice0), dst, 2, 64, 8))
	}
	p.Freeze()
	p.OnComplete(dst, func() {})
	for _, f := range flows {
		f.PushAll()
	}
	s.Run()
	if m.Stats().NodeSent(40) != 0 {
		t.Fatal("receiver node sent packets; counted remote writes need no reverse traffic")
	}
	if m.Stats().NodeReceived(40) != 8 {
		t.Fatalf("receiver got %d packets, want 8", m.Stats().NodeReceived(40))
	}
}
