package core

import (
	"testing"

	"anton/internal/collective"
	"anton/internal/machine"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// ringDests returns the slice-k clients of every other node in node 0's X
// ring on an 8x8x8 machine.
func ringDests(m *machine.Machine, kind packet.ClientKind) []packet.Client {
	var out []packet.Client
	for x := 1; x < 8; x++ {
		out = append(out, packet.Client{Node: m.Torus.ID(topo.C(x, 0, 0)), Kind: kind})
	}
	return out
}

func TestMcFlowCompletion(t *testing.T) {
	s := sim.New()
	m := machine.Default512(s)
	collective.InstallRingBroadcast(m, topo.X, packet.Slice1, 0)
	p := NewPattern(m, "positions", 3, 0)
	src := packet.Client{Node: 0, Kind: packet.Slice0}
	dests := ringDests(m, packet.Slice1)
	f := p.AddMcFlow(src, 0, dests, 5, 32, 4)
	p.Freeze()
	for _, d := range dests {
		if p.Expected(d) != 5 {
			t.Fatalf("expected at %v = %d, want 5", d, p.Expected(d))
		}
	}
	completions := 0
	for _, d := range dests {
		p.OnComplete(d, func() { completions++ })
	}
	for i := 0; i < 5; i++ {
		f.Push(float64(i), 0, 0, 0)
	}
	s.Run()
	if completions != 7 {
		t.Fatalf("completions = %d, want 7", completions)
	}
	// Each destination's preallocated slots hold the per-packet payloads.
	for _, d := range dests {
		for i := 0; i < 5; i++ {
			if got := m.Client(d).Mem(f.Addr+i*4, 1)[0]; got != float64(i) {
				t.Fatalf("%v slot %d = %v", d, i, got)
			}
		}
	}
	// One injection per packet, seven deliveries each.
	if st := m.Stats(); st.Sent != 5 || st.Received != 35 {
		t.Fatalf("sent=%d received=%d, want 5/35", st.Sent, st.Received)
	}
}

func TestMcFlowRounds(t *testing.T) {
	s := sim.New()
	m := machine.Default512(s)
	collective.InstallRingBroadcast(m, topo.X, packet.Slice1, 0)
	p := NewPattern(m, "rounds", 3, 0)
	src := packet.Client{Node: 0, Kind: packet.Slice0}
	dests := ringDests(m, packet.Slice1)
	f := p.AddMcFlow(src, 0, dests, 2, 16, 2)
	p.Freeze()
	for round := 1; round <= 3; round++ {
		done := 0
		for _, d := range dests {
			p.OnComplete(d, func() { done++ })
		}
		f.PushAll()
		s.Run()
		if done != 7 {
			t.Fatalf("round %d completions = %d", round, done)
		}
		p.NextRound()
	}
}

func TestMcFlowOverSendPanics(t *testing.T) {
	s := sim.New()
	m := machine.Default512(s)
	collective.InstallRingBroadcast(m, topo.X, packet.Slice1, 0)
	p := NewPattern(m, "x", 3, 0)
	f := p.AddMcFlow(packet.Client{Node: 0, Kind: packet.Slice0}, 0, ringDests(m, packet.Slice1), 1, 8, 1)
	p.Freeze()
	f.Push()
	mustPanic(t, "multicast over-send", func() { f.Push() })
}

func TestMcFlowValidation(t *testing.T) {
	s := sim.New()
	m := machine.Default512(s)
	p := NewPattern(m, "x", 3, 0)
	src := packet.Client{Node: 0, Kind: packet.Slice0}
	mustPanic(t, "zero count", func() {
		p.AddMcFlow(src, 0, ringDests(m, packet.Slice1), 0, 8, 1)
	})
	mustPanic(t, "no destinations", func() {
		p.AddMcFlow(src, 0, nil, 1, 8, 1)
	})
	p.Freeze()
	mustPanic(t, "add after freeze", func() {
		p.AddMcFlow(src, 0, ringDests(m, packet.Slice1), 1, 8, 1)
	})
}

func TestMcFlowIncompleteRoundPanics(t *testing.T) {
	s := sim.New()
	m := machine.Default512(s)
	collective.InstallRingBroadcast(m, topo.X, packet.Slice1, 0)
	p := NewPattern(m, "x", 3, 0)
	f := p.AddMcFlow(packet.Client{Node: 0, Kind: packet.Slice0}, 0, ringDests(m, packet.Slice1), 2, 8, 1)
	p.Freeze()
	f.Push()
	mustPanic(t, "incomplete multicast round", func() { p.NextRound() })
}
