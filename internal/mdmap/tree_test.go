package mdmap

import (
	"math/rand"
	"testing"

	"anton/internal/machine"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// Property: for random destination sets, the merged multicast tree built
// from dimension-ordered routes delivers exactly once to every
// destination and never delivers anywhere else.
func TestBuildTreeDeliversExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tor := topo.NewTorus(8, 8, 8)
	for trial := 0; trial < 25; trial++ {
		src := topo.C(rng.Intn(8), rng.Intn(8), rng.Intn(8))
		srcID := tor.ID(src)
		destSet := map[topo.NodeID]bool{}
		var dests []topo.NodeID
		n := 1 + rng.Intn(12)
		for len(dests) < n {
			d := topo.NodeID(rng.Intn(512))
			if !destSet[d] {
				destSet[d] = true
				dests = append(dests, d)
			}
		}
		tree := buildTree(tor, src, dests, packet.Slice2)

		s := sim.New()
		m := machine.New(s, tor, noc.DefaultModel())
		const id = 7
		for node, e := range tree {
			m.SetMulticast(node, id, e)
		}
		delivered := map[topo.NodeID]int{}
		m.OnDeliver = func(p *packet.Packet, dst packet.Client, at sim.Time) {
			if dst.Kind != packet.Slice2 {
				t.Fatalf("delivery to wrong client kind %v", dst)
			}
			delivered[dst.Node]++
		}
		m.Client(packet.Client{Node: srcID, Kind: packet.Slice0}).Send(&packet.Packet{
			Kind: packet.Write, Multicast: id, Counter: 0, Bytes: 8,
		})
		s.Run()
		for _, d := range dests {
			want := 1
			if delivered[d] != want {
				t.Fatalf("trial %d: dest %d delivered %d times", trial, d, delivered[d])
			}
		}
		for node, count := range delivered {
			if !destSet[node] {
				t.Fatalf("trial %d: stray delivery to %d (x%d)", trial, node, count)
			}
		}
	}
}

// Property: the tree includes the source among its destinations when the
// source is in the set (self-delivery through the local ring).
func TestBuildTreeSelfDelivery(t *testing.T) {
	tor := topo.NewTorus(4, 4, 4)
	src := topo.C(1, 1, 1)
	srcID := tor.ID(src)
	tree := buildTree(tor, src, []topo.NodeID{srcID}, packet.HTIS)
	e, ok := tree[srcID]
	if !ok || len(e.Local) != 1 || e.Local[0] != packet.HTIS {
		t.Fatalf("self-delivery entry = %+v, %v", e, ok)
	}
	if len(e.Out) != 0 {
		t.Fatalf("self-only tree forwards: %+v", e)
	}
}

// Property: pattern ids of nearby roots never collide within each other's
// forwarding trees (the stride-4 residue guarantee the installer relies
// on).
func TestPatternIDsCollisionFree(t *testing.T) {
	tor := topo.NewTorus(8, 8, 8)
	// Collect, for every pattern id, the set of nodes that carry an entry
	// for some root with that id; two roots sharing an id must have
	// disjoint tree node sets.
	owner := map[packet.MulticastID]map[topo.NodeID]topo.Coord{}
	tor.ForEach(func(root topo.Coord) {
		id := patternID(mcPosBase, tor, root)
		var dests []topo.NodeID
		for _, nc := range tor.Neighbors26(root) {
			dests = append(dests, tor.ID(nc))
		}
		dests = append(dests, tor.ID(root))
		tree := buildTree(tor, root, dests, packet.HTIS)
		if owner[id] == nil {
			owner[id] = map[topo.NodeID]topo.Coord{}
		}
		for node := range tree {
			if prev, clash := owner[id][node]; clash && prev != root {
				t.Fatalf("pattern id %d: node %d used by roots %v and %v", id, node, prev, root)
			}
			owner[id][node] = root
		}
	})
}
