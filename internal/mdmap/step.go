package mdmap

import (
	"math"

	"anton/internal/fft"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
	"anton/internal/trace"
)

// StepKind distinguishes the two alternating time-step types of Table 3.
type StepKind int

const (
	// RangeLimited steps compute bonded and range-limited forces only.
	RangeLimited StepKind = iota
	// LongRange steps additionally run charge spreading, the FFT-based
	// convolution, force interpolation, and (if enabled) the thermostat.
	LongRange
)

func (k StepKind) String() string {
	if k == LongRange {
		return "long-range"
	}
	return "range-limited"
}

// StepTiming reports one simulated time step.
type StepTiming struct {
	Kind    StepKind
	Total   sim.Dur
	Compute sim.Dur // critical-path arithmetic (max per-node compute)
	Comm    sim.Dur // Total - Compute: the paper's communication metric
	FFT     sim.Dur // FFT-based convolution extent (long-range steps)
	Thermo  sim.Dur // thermostat all-reduce + adjustment extent
	Migr    sim.Dur // migration phase extent
	// Average per-node packet counts for the step.
	SentPerNode, RecvPerNode float64
}

// NextKind returns the kind the next RunStep will execute.
func (mp *Mapping) NextKind() StepKind {
	if mp.Cfg.LongRangeInterval > 0 && (mp.stepIndex+1)%mp.Cfg.LongRangeInterval == 0 {
		return LongRange
	}
	return RangeLimited
}

// StepIndex returns the number of completed steps.
func (mp *Mapping) StepIndex() int { return mp.stepIndex }

// RunStep executes one MD time step on the machine's event simulator and
// returns its timing. The simulator is run to completion, so RunStep must
// not be interleaved with other uses of the same sim.
func (mp *Mapping) RunStep() StepTiming {
	m := mp.M
	s := m.Sim
	kind := mp.NextKind()
	mp.stepIndex++
	migrate := mp.Cfg.MigrationInterval > 0 && mp.stepIndex%mp.Cfg.MigrationInterval == 0
	thermo := kind == LongRange && mp.Cfg.ThermostatOn

	for i := range mp.nodeCompute {
		mp.nodeCompute[i] = 0
		mp.critCompute[i] = 0
	}
	statsBefore := m.Stats()
	t0 := s.Now()
	var fftStart, fftEnd, thermoStart, thermoEnd, migStart, migEnd sim.Time

	nodes := mp.tor.Nodes()
	// Per-node completion accounting for the end of the step.
	remainingIntegrate := nodes
	remainingMigrate := nodes
	var afterIntegrate func()
	var afterMigration func()
	var stepEnd sim.Time

	finishStep := func() { stepEnd = s.Now() }

	// ---- Phase: thermostat (after all nodes have integrated). ----
	// The per-phase completion latches (keReady, remainingAdjust, and the
	// remaining* counters below) are cross-node state: each node's handler
	// decrements them through Defer, so the updates — and the fan-out that
	// starts the next phase — run serially on the coordinator in canonical
	// event order, identical at any worker count.
	runThermostat := func(next func()) {
		thermoStart = s.Now()
		// Each node first computes its local kinetic-energy contribution,
		// then the global all-reduce runs, then every node adjusts
		// velocities and positions with the reduced value.
		keReady := nodes
		for n := 0; n < nodes; n++ {
			n := topo.NodeID(n)
			mp.computeCrit(n, trace.GC, "kinetic energy", sim.Dur(mp.atomsAt[n])*mp.Cfg.KEPerAtom, func() {
				mp.M.Defer(n, func() {
					keReady--
					if keReady > 0 {
						return
					}
					mp.allred.Run(nil, func(at sim.Time) {
						remainingAdjust := nodes
						for a := 0; a < nodes; a++ {
							a := topo.NodeID(a)
							mp.computeCrit(a, trace.TS, "adjust temperature", mp.Cfg.ThermoAdjust, func() {
								mp.M.Defer(a, func() {
									remainingAdjust--
									if remainingAdjust == 0 {
										thermoEnd = s.Now()
										next()
									}
								})
							})
						}
					})
				})
			})
		}
	}

	// ---- Phase: migration. ----
	runMigration := func() {
		migStart = s.Now()
		counts := mp.migrationCounts()
		mp.tor.ForEach(func(c topo.Coord) {
			n := mp.tor.ID(c)
			src := m.Client(packet.Client{Node: n, Kind: packet.Slice0})
			neighbors := mp.tor.Neighbors26(c)
			// Send this node's migrating atoms to deterministic neighbours
			// through the message FIFO (stochastic communication the
			// counted-remote-write paradigm cannot cover).
			for i := 0; i < counts[n]; i++ {
				dst := neighbors[i%len(neighbors)]
				src.Send(&packet.Packet{
					Kind: packet.Message, Dst: packet.Client{Node: mp.tor.ID(dst), Kind: packet.Slice0},
					Multicast: packet.NoMulticast, Counter: packet.NoCounter,
					Bytes: 64, InOrder: true, Tag: "migration",
				})
			}
			// Then the in-order multicast synchronization write to all 26
			// nearest neighbours: it cannot overtake the migration
			// messages, so its arrival proves the neighbour's stream is
			// complete.
			src.Send(&packet.Packet{
				Kind: packet.Write, Multicast: patternID(mcMigBase, mp.tor, c),
				Counter: ctrMigSync, Bytes: 8, InOrder: true, Tag: "migration-sync",
			})
		})
		mp.tor.ForEach(func(c topo.Coord) {
			n := mp.tor.ID(c)
			slice := packet.Client{Node: n, Kind: packet.Slice0}
			expected := uint64(len(mp.tor.Neighbors26(c)))
			mp.waitCum(slice, ctrMigSync, expected, false, func() {
				// All neighbours' streams are complete: drain the FIFO.
				mp.drainFIFO(n, func() {
					mp.compute(n, trace.TS, "migration bookkeeping", mp.Cfg.MigFixed, func() {
						mp.M.Defer(n, func() {
							remainingMigrate--
							if remainingMigrate == 0 {
								migEnd = s.Now()
								finishStep()
							}
						})
					})
				})
			})
		})
	}

	afterMigration = func() {
		if migrate {
			runMigration()
		} else {
			finishStep()
		}
	}
	afterIntegrate = func() {
		if thermo {
			runThermostat(afterMigration)
		} else {
			afterMigration()
		}
	}

	// ---- Phase: position multicast (slice 0) and bond positions
	// (slice 1), both at step start. ----
	mp.tor.ForEach(func(c topo.Coord) {
		n := mp.tor.ID(c)
		slice0 := m.Client(packet.Client{Node: n, Kind: packet.Slice0})
		mcid := patternID(mcPosBase, mp.tor, c)
		for i := 0; i < mp.posN; i++ {
			slice0.Send(&packet.Packet{
				Kind: packet.Write, Multicast: mcid, Counter: ctrPos,
				Addr: i * 4, Bytes: mp.Cfg.PosBytes, Tag: "positions",
			})
		}
		if mp.Tracer != nil {
			mp.Tracer.Add(trace.TS, t0, t0.Add(sim.Dur(mp.posN)*m.Model.SliceSendGap), "position send", false)
		}
		slice1 := m.Client(packet.Client{Node: n, Kind: packet.Slice1})
		for i, bi := range mp.bondBySrc[n] {
			b := mp.bonds[bi]
			slice1.Send(&packet.Packet{
				Kind: packet.Write, Dst: packet.Client{Node: b.term, Kind: packet.Slice1},
				Multicast: packet.NoMulticast, Counter: ctrBondPos,
				Addr: 4096 + i*4, Bytes: 32, Tag: "bond-positions",
			})
		}
	})

	// ---- Phase: HTIS range-limited interactions (+ charge spreading on
	// long-range steps). ----
	gridPerNode := mp.Cfg.GridN * mp.Cfg.GridN * mp.Cfg.GridN / nodes
	mp.tor.ForEach(func(c topo.Coord) {
		n := mp.tor.ID(c)
		htis := packet.Client{Node: n, Kind: packet.HTIS}
		expected := uint64(mp.srcCount[n] * mp.posN)
		waitStart := s.Now()
		mp.waitCum(htis, ctrPos, expected, false, func() {
			if mp.Tracer != nil {
				ctx := m.Ctx(n)
				end := ctx.Now()
				ctx.Defer(func() { mp.Tracer.Add(trace.HTI, waitStart, end, "wait for positions", true) })
			}
			rangeLimited := func() {
				// Transmission of force results begins as soon as the
				// first ones are available: the computation is split into
				// forceN chunks and one force packet per import source is
				// injected after each chunk, overlapping the remainder of
				// the pair computation with communication.
				cost := sim.Dur(mp.pairsPerNode) * mp.Cfg.HTISPairPs
				chunk := cost / sim.Dur(mp.forceN)
				var doChunk func(i int)
				doChunk = func(i int) {
					if i >= mp.forceN {
						return
					}
					mp.computeCrit(n, trace.HTI, "range-limited interactions", chunk, func() {
						mp.sendForceChunk(n, i, "rl-forces")
						doChunk(i + 1)
					})
				}
				doChunk(0)
			}
			if kind == LongRange {
				// Charge spreading runs first so the FFT can overlap with
				// the range-limited pair computation (Figure 13 shows the
				// charge-spreading band ahead of the range-limited band).
				cost := sim.Dur(gridPerNode) * mp.Cfg.SpreadPerPoint
				mp.computeCrit(n, trace.HTI, "charge spreading", cost, func() {
					h := m.Client(htis)
					for _, dst := range mp.chargeDests[n] {
						for i := 0; i < mp.Cfg.ChargePackets; i++ {
							h.Send(&packet.Packet{
								Kind: packet.Accumulate, Dst: packet.Client{Node: dst, Kind: packet.Accum1},
								Multicast: packet.NoMulticast, Counter: ctrCharge,
								Addr: i * 24, Bytes: 192, Tag: "charges",
							})
						}
					}
					rangeLimited()
				})
			} else {
				rangeLimited()
			}
		})
	})

	// ---- Phase: bond term computation. ----
	mp.tor.ForEach(func(c topo.Coord) {
		n := mp.tor.ID(c)
		slice1 := packet.Client{Node: n, Kind: packet.Slice1}
		expected := uint64(mp.bondCounts.posAt[n])
		mp.waitCum(slice1, ctrBondPos, expected, false, func() {
			cost := sim.Dur(mp.bondCounts.posAt[n]) * mp.Cfg.BondTermPs
			mp.compute(n, trace.GC, "bonded interactions", cost, func() {
				cl := m.Client(slice1)
				for _, bi := range mp.bondByTerm[n] {
					b := mp.bonds[bi]
					cl.Send(&packet.Packet{
						Kind: packet.Accumulate, Dst: packet.Client{Node: b.src, Kind: packet.Accum0},
						Multicast: packet.NoMulticast, Counter: ctrForce,
						Addr: 8192, Bytes: 24, Tag: "bond-forces",
					})
				}
			})
		})
	})

	// ---- Phase (long-range): FFT convolution, then potentials back to
	// the HTIS units for force interpolation. ----
	if kind == LongRange {
		fftReady := nodes
		mp.tor.ForEach(func(c topo.Coord) {
			n := mp.tor.ID(c)
			acc := packet.Client{Node: n, Kind: packet.Accum1}
			expected := uint64(mp.chargeSrcCount[n] * mp.Cfg.ChargePackets)
			mp.waitCum(acc, ctrCharge, expected, true, func() {
				mp.M.Defer(n, func() {
					fftReady--
					if fftReady > 0 {
						return
					}
					fftStart = s.Now()
					mp.dist.Convolve(mp.zeroIn, mp.green, func(_ *fft.Grid, at sim.Time) {
						fftEnd = at
						// The distributed FFT's arithmetic counts toward
						// each node's critical-path compute.
						for a := range mp.nodeCompute {
							mp.nodeCompute[a] += mp.dist.ComputePerNode()
							mp.critCompute[a] += mp.dist.ComputePerNode()
						}
						// Potentials multicast to the HTIS units through
						// the same import patterns as positions.
						mp.tor.ForEach(func(cc topo.Coord) {
							nn := mp.tor.ID(cc)
							sl := m.Client(packet.Client{Node: nn, Kind: packet.Slice0})
							for i := 0; i < mp.Cfg.PotPackets; i++ {
								sl.Send(&packet.Packet{
									Kind: packet.Write, Multicast: patternID(mcPosBase, mp.tor, cc),
									Counter: ctrPot, Addr: 16384 + i*24, Bytes: 192, Tag: "potentials",
								})
							}
						})
					})
				})
			})
		})
		// HTIS force interpolation once the potentials are in.
		mp.tor.ForEach(func(c topo.Coord) {
			n := mp.tor.ID(c)
			htis := packet.Client{Node: n, Kind: packet.HTIS}
			expected := uint64(mp.srcCount[n] * mp.Cfg.PotPackets)
			mp.waitCum(htis, ctrPot, expected, false, func() {
				cost := sim.Dur(gridPerNode) * mp.Cfg.InterpPerPoint
				mp.computeCrit(n, trace.HTI, "force interpolation", cost, func() {
					mp.sendForceGroup(n, "lr-forces")
				})
			})
		})
	}

	// ---- Phase: integration (slice 2 waits for all forces, split across
	// the two accumulation memories). ----
	groups := 1
	if kind == LongRange {
		groups = 2 // range-limited plus interpolation force groups
	}
	evenN, oddN := (mp.forceN+1)/2, mp.forceN/2
	mp.tor.ForEach(func(c topo.Coord) {
		n := mp.tor.ID(c)
		acc0 := packet.Client{Node: n, Kind: packet.Accum0}
		acc1 := packet.Client{Node: n, Kind: packet.Accum1}
		exp0 := uint64(groups*mp.impCount[n]*evenN + mp.bondCounts.forceAt[n])
		exp1 := uint64(groups * mp.impCount[n] * oddN)
		waitStart := s.Now()
		mp.waitCum(acc0, ctrForce, exp0, true, func() {
			mp.waitCum(acc1, ctrForce, exp1, true, func() {
				if mp.Tracer != nil {
					ctx := m.Ctx(n)
					end := ctx.Now()
					ctx.Defer(func() { mp.Tracer.Add(trace.TS, waitStart, end, "wait for forces", true) })
				}
				cost := sim.Dur(mp.atomsAt[n])*mp.Cfg.IntegratePerAtom + mp.Cfg.StepSoftware
				mp.computeCrit(n, trace.GC, "update positions and velocities", cost, func() {
					mp.M.Defer(n, func() {
						remainingIntegrate--
						if remainingIntegrate == 0 {
							afterIntegrate()
						}
					})
				})
			})
		})
	})

	s.Run()
	if stepEnd == 0 {
		panic("mdmap: step never completed (counter expectation mismatch)")
	}

	var maxCompute sim.Dur
	for _, d := range mp.critCompute {
		if d > maxCompute {
			maxCompute = d
		}
	}
	statsAfter := m.Stats()
	total := stepEnd.Sub(t0)
	st := StepTiming{
		Kind:        kind,
		Total:       total,
		Compute:     maxCompute,
		Comm:        total - maxCompute,
		SentPerNode: float64(statsAfter.Sent-statsBefore.Sent) / float64(nodes),
		RecvPerNode: float64(statsAfter.Received-statsBefore.Received) / float64(nodes),
	}
	if fftEnd.Sub(fftStart) > 0 {
		st.FFT = fftEnd.Sub(fftStart)
	}
	if thermoEnd.Sub(thermoStart) > 0 {
		st.Thermo = thermoEnd.Sub(thermoStart)
	}
	if migEnd.Sub(migStart) > 0 {
		st.Migr = migEnd.Sub(migStart)
	}
	return st
}

// sendForceGroup emits one force-return group from node n's HTIS: forceN
// aggregated accumulation packets to every import source, alternating
// between the two accumulation memories to double the drain bandwidth.
func (mp *Mapping) sendForceGroup(n topo.NodeID, tag string) {
	h := mp.M.Client(packet.Client{Node: n, Kind: packet.HTIS})
	bytes := mp.forceBytes()
	for _, src := range mp.importOf[n] {
		for i := 0; i < mp.forceN; i++ {
			kind := packet.Accum0
			if i%2 == 1 {
				kind = packet.Accum1
			}
			h.Send(&packet.Packet{
				Kind: packet.Accumulate, Dst: packet.Client{Node: src, Kind: kind},
				Multicast: packet.NoMulticast, Counter: ctrForce,
				Addr: i * 32, Bytes: bytes, Tag: tag,
			})
		}
	}
}

// sendForceChunk emits the i-th force packet to every import source.
func (mp *Mapping) sendForceChunk(n topo.NodeID, i int, tag string) {
	h := mp.M.Client(packet.Client{Node: n, Kind: packet.HTIS})
	kind := packet.Accum0
	if i%2 == 1 {
		kind = packet.Accum1
	}
	bytes := mp.forceBytes()
	for _, src := range mp.importOf[n] {
		h.Send(&packet.Packet{
			Kind: packet.Accumulate, Dst: packet.Client{Node: src, Kind: kind},
			Multicast: packet.NoMulticast, Counter: ctrForce,
			Addr: i * 32, Bytes: bytes, Tag: tag,
		})
	}
}

// forceBytes is the wire payload of one aggregated force packet: 12 bytes
// (three 4-byte fixed-point quantities) per force record.
func (mp *Mapping) forceBytes() int {
	bytes := mp.Cfg.ForcesPerPacket * 12
	if bytes > packet.MaxPayloadBytes {
		bytes = packet.MaxPayloadBytes
	}
	return bytes
}

// compute charges d of off-critical-path arithmetic to node n and
// schedules fn afterwards, recording a trace span.
func (mp *Mapping) compute(n topo.NodeID, unit trace.Unit, label string, d sim.Dur, fn func()) {
	// compute may only be invoked from node n's own handlers or from the
	// serial coordinator, so the nodeCompute slot and the scheduling
	// context both stay domain-confined.
	mp.nodeCompute[n] += d
	ctx := mp.M.Ctx(n)
	start := ctx.Now()
	ctx.After(d, func() {
		if mp.Tracer != nil {
			end := ctx.Now()
			ctx.Defer(func() { mp.Tracer.Add(unit, start, end, label, false) })
		}
		fn()
	})
}

// computeCrit is compute for arithmetic on the canonical critical path
// (position import -> HTIS -> force return -> integration -> thermostat):
// the quantity subtracted from the step total to obtain the paper's
// critical-path communication time.
func (mp *Mapping) computeCrit(n topo.NodeID, unit trace.Unit, label string, d sim.Dur, fn func()) {
	mp.critCompute[n] += d
	mp.compute(n, unit, label, d, fn)
}

// waitCum registers a wait on client c's counter ctr for this step's
// additional expected packets on top of the cumulative target.
func (mp *Mapping) waitCum(c packet.Client, ctr packet.CounterID, add uint64, remote bool, fn func()) {
	k := cumKey{c, ctr}
	shard := mp.cum[c.Node]
	shard[k] += add
	target := shard[k]
	cl := mp.M.Client(c)
	if remote {
		cl.WaitRemote(ctr, target, fn)
	} else {
		cl.Wait(ctr, target, fn)
	}
}

// drainFIFO pops and processes every queued migration message.
func (mp *Mapping) drainFIFO(n topo.NodeID, done func()) {
	f := mp.M.Client(packet.Client{Node: n, Kind: packet.Slice0}).FIFO()
	var pump func()
	pump = func() {
		if f.Len() == 0 {
			done()
			return
		}
		f.Pop(func(*packet.Packet) {
			mp.compute(n, trace.TS, "process migration", mp.Cfg.MigPerAtom, pump)
		})
	}
	pump()
}

// migrationCounts returns the number of atoms each node migrates this
// phase, from the diffusion model: the per-axis rms displacement over the
// migration interval times the box surface flux.
func (mp *Mapping) migrationCounts() []int {
	interval := mp.Cfg.MigrationInterval
	rms := math.Sqrt(2*mp.Cfg.DiffusionPerStep*float64(interval)) * float64(mp.tor.DimX)
	out := make([]int, mp.tor.Nodes())
	for n, atoms := range mp.atomsAt {
		c := int(float64(atoms) * 3 * rms)
		if c < 1 {
			c = 1 // a handful of atoms always straddles the margins
		}
		if c > atoms {
			c = atoms
		}
		out[n] = c
	}
	return out
}
