// Package mdmap maps the dataflow of a molecular dynamics simulation onto
// the simulated Anton machine, implementing the software organization of
// Section IV of the paper:
//
//   - atom positions are multicast to the HTIS units of the import region
//     with a fixed packet count sized for worst-case density fluctuations;
//   - range-limited and interpolation forces return to the home nodes'
//     accumulation memories as counted accumulation packets;
//   - bond terms are statically assigned to nodes (the bond program), with
//     one-atom-per-packet counted remote writes carrying positions to them
//     and accumulation packets carrying forces back;
//   - grid charges flow to accumulation memories, through the distributed
//     dimension-ordered FFT convolution, and back to the HTIS units as
//     potentials;
//   - the thermostat runs on the dimension-ordered global all-reduce;
//   - migration uses the message FIFO plus an in-order multicast
//     synchronization write to all 26 neighbours — the one communication
//     that cannot be a counted remote write.
//
// All packet counts are fixed and precomputed per communication epoch
// (between migrations / bond-program installs), so every receiver
// synchronizes by polling a single counter.
package mdmap

import (
	"fmt"
	"math"
	"math/rand"

	"anton/internal/collective"
	"anton/internal/fft"
	"anton/internal/machine"
	"anton/internal/md"
	"anton/internal/packet"
	"anton/internal/par"
	"anton/internal/sim"
	"anton/internal/topo"
	"anton/internal/trace"
)

// Counter labels used by the mapping.
const (
	ctrPos     packet.CounterID = 0 // positions at HTIS
	ctrBondPos packet.CounterID = 1 // bond positions at slice1
	ctrForce   packet.CounterID = 2 // forces at accum0
	ctrCharge  packet.CounterID = 3 // grid charges at accum1
	ctrPot     packet.CounterID = 4 // potentials at HTIS
	ctrMigSync packet.CounterID = 5 // migration sync writes at slice0
	ctrFFTBase packet.CounterID = 8 // six counters for the distributed FFT
)

// Multicast pattern id bases.
const (
	mcPosBase packet.MulticastID = 0   // position/potential import multicast
	mcMigBase packet.MulticastID = 64  // 26-neighbour migration sync
	mcARBase  packet.MulticastID = 128 // all-reduce ring broadcasts
)

// Config parameterizes the mapping. The zero value is completed by
// DefaultConfig.
type Config struct {
	Atoms             int // target atom count (DHFR: 23,558)
	Seed              int64
	GridN             int // FFT grid side (32 for the production config)
	LongRangeInterval int // long-range forces every k-th step (paper: 2)
	ThermostatOn      bool
	MigrationInterval int // migrate every k-th step; 0 disables migration

	// Workers: goroutines used by the host-side precomputations (the
	// chemical-system pair count, bond aging) and threaded into the
	// underlying md.System. 1 is fully sequential, 0 resolves to
	// GOMAXPROCS; all settings produce bit-identical mappings.
	Workers int

	// ForcesPerPacket: force contributions aggregated per accumulation
	// packet. A force record is three 4-byte fixed-point quantities (the
	// accumulation memories add 4-byte quantities), so up to 21 fit under
	// the 256 B payload cap.
	ForcesPerPacket int
	// PosBytes: wire payload of one atom-position packet (compressed
	// fixed-point coordinates on real Anton).
	PosBytes int
	// PosSlack: the worst-case density-fluctuation margin applied to the
	// fixed position packet count.
	PosSlack float64
	// ChargePackets / PotPackets: fixed grid-data packet counts per
	// destination.
	ChargePackets, PotPackets int

	// Calibrated compute-throughput constants.
	HTISPairPs       sim.Dur // HTIS time per range-limited pair
	BondTermPs       sim.Dur // geometry-core time per bond-term instance
	IntegratePerAtom sim.Dur
	SpreadPerPoint   sim.Dur
	InterpPerPoint   sim.Dur
	KEPerAtom        sim.Dur // kinetic-energy computation per atom
	ThermoAdjust     sim.Dur
	MigFixed         sim.Dur // per-migration bookkeeping
	MigPerAtom       sim.Dur
	StepSoftware     sim.Dur // per-step fixed software overhead

	// Diffusion coefficient in box-edge^2 per step units: drives bond
	// program aging and migration volume.
	DiffusionPerStep float64
}

// DefaultConfig returns the paper's production configuration: the DHFR
// benchmark (23,558 atoms) with long-range interactions and temperature
// control every other step.
func DefaultConfig() Config {
	return Config{
		Atoms:             23558,
		Seed:              1,
		GridN:             32,
		LongRangeInterval: 2,
		ThermostatOn:      true,
		MigrationInterval: 8,
		ForcesPerPacket:   20,
		PosBytes:          16,
		PosSlack:          1.03,
		ChargePackets:     2,
		PotPackets:        2,
		HTISPairPs:        800 * sim.Ps,
		BondTermPs:        50 * sim.Ns,
		IntegratePerAtom:  26 * sim.Ns,
		SpreadPerPoint:    8 * sim.Ns,
		InterpPerPoint:    8 * sim.Ns,
		KEPerAtom:         8 * sim.Ns,
		ThermoAdjust:      400 * sim.Ns,
		MigFixed:          3000 * sim.Ns,
		MigPerAtom:        70 * sim.Ns,
		StepSoftware:      500 * sim.Ns,
		DiffusionPerStep:  9.0e-9,
	}
}

// bondInstance is one (atom, term-node) position delivery: the atom's
// position must reach the term node each step, and a force returns.
type bondInstance struct {
	atom int
	term topo.NodeID // assigned bond-program node
	src  topo.NodeID // atom's current home node (updated by aging/migration)
}

// Mapping is an MD simulation mapped onto a machine.
type Mapping struct {
	M   *machine.Machine
	Cfg Config
	Sys *md.System

	tor          topo.Torus
	boxEdge      float64 // home box edge in system units
	atomHome     []topo.NodeID
	atomsAt      []int // atoms per node
	posN         int   // fixed position packets per node per step
	forceN       int   // fixed force packets per (HTIS, import source) per step
	pairsPerNode int

	importOf [][]topo.NodeID // per node: import region (self + half shell)
	// impCount[n] = len(importOf[n]); srcCount[n] = number of nodes whose
	// import region includes n (the HTIS's position-source count).
	impCount, srcCount []int
	// chargeDests[n]: the FFT halo nodes receiving node n's grid charges;
	// chargeSrcCount[n]: how many nodes send charges to n.
	chargeDests    [][]topo.NodeID
	chargeSrcCount []int

	bonds      []bondInstance
	bondCounts bondCounts
	// bondBySrc / bondByTerm index mp.bonds by current source and term.
	bondBySrc, bondByTerm [][]int

	dist   *fft.Dist
	green  *fft.Grid
	zeroIn *fft.Grid
	allred *collective.AllReduce

	// expected cumulative counter targets, sharded by client node: a
	// node's shard is touched only by that node's handlers (its PDES
	// domain) or by the serial coordinator, never concurrently.
	cum []map[cumKey]uint64

	// per-node compute time accumulated during the current step.
	// critCompute counts only the arithmetic on the canonical critical
	// path (HTIS work, FFT, integration, thermostat); bond-term and
	// migration processing runs on other units in parallel and is tracked
	// in nodeCompute only.
	nodeCompute []sim.Dur
	critCompute []sim.Dur

	// aging state
	bondAge   int // steps since the installed bond program's snapshot
	stepIndex int

	Tracer *trace.Tracer
}

type cumKey struct {
	c   packet.Client
	ctr packet.CounterID
}

// New builds the mapping: the synthetic chemical system, the spatial
// decomposition, the multicast patterns, the bond program, and the fixed
// packet counts.
func New(s *sim.Sim, m *machine.Machine, cfg Config) *Mapping {
	d := DefaultConfig()
	if cfg.Atoms == 0 {
		cfg = d
	}
	fillDefaults(&cfg, d)
	tor := m.Torus
	for _, dim := range []int{tor.DimX, tor.DimY, tor.DimZ} {
		if dim > 4 && dim%4 != 0 {
			panic(fmt.Sprintf("mdmap: torus dimension %d unsupported (need <=4 or multiple of 4)", dim))
		}
	}
	sys := md.Build(md.Config{
		Molecules:   cfg.Atoms / 3,
		Temperature: 1.0,
		Seed:        cfg.Seed,
		GridN:       cfg.GridN,
		Workers:     cfg.Workers,
	})
	mp := &Mapping{
		M: m, Cfg: cfg, Sys: sys, tor: tor,
		cum:         make([]map[cumKey]uint64, tor.Nodes()),
		nodeCompute: make([]sim.Dur, tor.Nodes()),
		critCompute: make([]sim.Dur, tor.Nodes()),
	}
	for i := range mp.cum {
		mp.cum[i] = make(map[cumKey]uint64)
	}
	// The MD workload keeps every event chain domain-confined (cross-node
	// effects go through machine/sim Defer), so the stage-2 window executor
	// may run whole windows of its handlers in parallel.
	s.SetConfined(true)
	mp.boxEdge = sys.Box / float64(tor.DimX)
	mp.assignHomes()
	mp.buildImportSets()
	mp.installPositionMulticast()
	mp.installMigrationMulticast()
	mp.buildBondProgram(0)
	mp.countPairs()
	mp.fixPacketCounts()

	mp.green = fft.NewGrid(cfg.GridN) // timing-only: kernel values irrelevant
	mp.zeroIn = fft.NewGrid(cfg.GridN)
	mp.dist = fft.NewDist(m, cfg.GridN, ctrFFTBase)
	mp.dist.PerPoint = 2 * sim.Ns
	mp.allred = collective.NewAllReduce(m, collective.Config{
		Bytes: 32, Values: 8,
		CtrBase: 32, McBase: mcARBase,
		PerValueAdd:   2200 * sim.Ps,
		RoundOverhead: 70 * sim.Ns,
	})
	return mp
}

func fillDefaults(cfg *Config, d Config) {
	if cfg.GridN == 0 {
		cfg.GridN = d.GridN
	}
	if cfg.LongRangeInterval == 0 {
		cfg.LongRangeInterval = d.LongRangeInterval
	}
	// MigrationInterval is deliberately not defaulted: zero disables
	// migration.
	if cfg.ForcesPerPacket == 0 {
		cfg.ForcesPerPacket = d.ForcesPerPacket
	}
	if cfg.PosSlack == 0 {
		cfg.PosSlack = d.PosSlack
	}
	if cfg.ChargePackets == 0 {
		cfg.ChargePackets = d.ChargePackets
	}
	if cfg.PotPackets == 0 {
		cfg.PotPackets = d.PotPackets
	}
	if cfg.HTISPairPs == 0 {
		cfg.HTISPairPs = d.HTISPairPs
	}
	if cfg.BondTermPs == 0 {
		cfg.BondTermPs = d.BondTermPs
	}
	if cfg.IntegratePerAtom == 0 {
		cfg.IntegratePerAtom = d.IntegratePerAtom
	}
	if cfg.SpreadPerPoint == 0 {
		cfg.SpreadPerPoint = d.SpreadPerPoint
	}
	if cfg.InterpPerPoint == 0 {
		cfg.InterpPerPoint = d.InterpPerPoint
	}
	if cfg.KEPerAtom == 0 {
		cfg.KEPerAtom = d.KEPerAtom
	}
	if cfg.PosBytes == 0 {
		cfg.PosBytes = d.PosBytes
	}
	if cfg.ThermoAdjust == 0 {
		cfg.ThermoAdjust = d.ThermoAdjust
	}
	if cfg.MigFixed == 0 {
		cfg.MigFixed = d.MigFixed
	}
	if cfg.MigPerAtom == 0 {
		cfg.MigPerAtom = d.MigPerAtom
	}
	if cfg.StepSoftware == 0 {
		cfg.StepSoftware = d.StepSoftware
	}
	if cfg.DiffusionPerStep == 0 {
		cfg.DiffusionPerStep = d.DiffusionPerStep
	}
}

// homeOf maps a position to its home node.
func (mp *Mapping) homeOf(p md.Vec3) topo.NodeID {
	c := topo.C(
		boxIdx(p.X, mp.Sys.Box, mp.tor.DimX),
		boxIdx(p.Y, mp.Sys.Box, mp.tor.DimY),
		boxIdx(p.Z, mp.Sys.Box, mp.tor.DimZ),
	)
	return mp.tor.ID(c)
}

func boxIdx(x, box float64, dim int) int {
	i := int(x / box * float64(dim))
	if i >= dim {
		i = dim - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

func (mp *Mapping) assignHomes() {
	mp.atomHome = make([]topo.NodeID, mp.Sys.N())
	mp.atomsAt = make([]int, mp.tor.Nodes())
	for i, p := range mp.Sys.Pos {
		h := mp.homeOf(p)
		mp.atomHome[i] = h
		mp.atomsAt[h]++
	}
}

// buildImportSets computes each node's import region: the node itself plus
// the 13 neighbours of the upper half shell. (The production machines'
// home boxes are comparable to the interaction radius; the paper reports
// positions broadcast to as many as 17 HTIS units, and the half-shell
// method we implement reaches 14.)
func (mp *Mapping) buildImportSets() {
	mp.importOf = make([][]topo.NodeID, mp.tor.Nodes())
	mp.tor.ForEach(func(c topo.Coord) {
		id := mp.tor.ID(c)
		seen := map[topo.NodeID]bool{id: true}
		set := []topo.NodeID{id}
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					if !upperHalf(dx, dy, dz) {
						continue
					}
					n := mp.tor.ID(mp.tor.Wrap(topo.C(c.X+dx, c.Y+dy, c.Z+dz)))
					if !seen[n] {
						seen[n] = true
						set = append(set, n)
					}
				}
			}
		}
		mp.importOf[id] = set
	})
	n := mp.tor.Nodes()
	mp.impCount = make([]int, n)
	mp.srcCount = make([]int, n)
	for id, set := range mp.importOf {
		mp.impCount[id] = len(set)
		for _, dst := range set {
			mp.srcCount[dst]++
		}
	}
	// FFT charge halo: the node itself plus the +1 neighbours in each
	// dimension combination (spreading support crosses the upper box
	// boundary).
	mp.chargeDests = make([][]topo.NodeID, n)
	mp.chargeSrcCount = make([]int, n)
	mp.tor.ForEach(func(c topo.Coord) {
		id := mp.tor.ID(c)
		seen := map[topo.NodeID]bool{}
		var dests []topo.NodeID
		for dx := 0; dx <= 1; dx++ {
			for dy := 0; dy <= 1; dy++ {
				for dz := 0; dz <= 1; dz++ {
					d := mp.tor.ID(mp.tor.Wrap(topo.C(c.X+dx, c.Y+dy, c.Z+dz)))
					if !seen[d] {
						seen[d] = true
						dests = append(dests, d)
					}
				}
			}
		}
		mp.chargeDests[id] = dests
		for _, d := range dests {
			mp.chargeSrcCount[d]++
		}
	})
}

func upperHalf(dx, dy, dz int) bool {
	if dx != 0 {
		return dx > 0
	}
	if dy != 0 {
		return dy > 0
	}
	return dz > 0
}

// patternID returns the multicast id for the pattern rooted at coordinate
// c, using a stride-4 residue so that patterns of nearby roots never
// collide within each other's forwarding trees.
func patternID(base packet.MulticastID, tor topo.Torus, c topo.Coord) packet.MulticastID {
	sx, sy, sz := stride(tor.DimX), stride(tor.DimY), stride(tor.DimZ)
	return base + packet.MulticastID((c.X%sx)*sy*sz+(c.Y%sy)*sz+c.Z%sz)
}

func stride(dim int) int {
	if dim < 4 {
		return dim
	}
	return 4
}

// buildTree merges the dimension-ordered routes from src to each dest into
// per-node multicast table entries delivering to client kind at each dest.
func buildTree(tor topo.Torus, src topo.Coord, dests []topo.NodeID, kind packet.ClientKind) map[topo.NodeID]packet.McEntry {
	entries := make(map[topo.NodeID]packet.McEntry)
	ensure := func(n topo.NodeID) packet.McEntry { return entries[n] }
	addOut := func(n topo.NodeID, p topo.Port) {
		e := ensure(n)
		for _, q := range e.Out {
			if q == p {
				return
			}
		}
		e.Out = append(e.Out, p)
		entries[n] = e
	}
	addLocal := func(n topo.NodeID) {
		e := ensure(n)
		for _, k := range e.Local {
			if k == kind {
				return
			}
		}
		e.Local = append(e.Local, kind)
		entries[n] = e
	}
	srcID := tor.ID(src)
	for _, dst := range dests {
		if dst == srcID {
			addLocal(srcID)
			continue
		}
		route := tor.Route(src, tor.Coord(dst))
		for _, step := range route {
			addOut(tor.ID(step.From), step.Port)
		}
		addLocal(dst)
	}
	// The source node always needs an entry, even if it only forwards.
	if _, ok := entries[srcID]; !ok {
		entries[srcID] = packet.McEntry{}
	}
	return entries
}

func (mp *Mapping) installPositionMulticast() {
	mp.tor.ForEach(func(c topo.Coord) {
		id := patternID(mcPosBase, mp.tor, c)
		tree := buildTree(mp.tor, c, mp.importOf[mp.tor.ID(c)], packet.HTIS)
		for n, e := range tree {
			mp.M.SetMulticast(n, id, e)
		}
	})
}

func (mp *Mapping) installMigrationMulticast() {
	installMigrationPatterns(mp.M)
}

func installMigrationPatterns(m *machine.Machine) {
	tor := m.Torus
	tor.ForEach(func(c topo.Coord) {
		id := patternID(mcMigBase, tor, c)
		var dests []topo.NodeID
		for _, nc := range tor.Neighbors26(c) {
			dests = append(dests, tor.ID(nc))
		}
		tree := buildTree(tor, c, dests, packet.Slice0)
		for n, e := range tree {
			m.SetMulticast(n, id, e)
		}
	})
}

// MeasureMigrationSync installs the 26-neighbour synchronization multicast
// patterns on a fresh machine and measures the migration synchronization
// step in isolation: every node simultaneously issues its in-order
// multicast write, and the result is the time until the last node has
// observed all of its neighbours' writes — the paper reports 0.56 us.
func MeasureMigrationSync(m *machine.Machine) sim.Dur {
	installMigrationPatterns(m)
	tor := m.Torus
	start := m.Sim.Now()
	var last sim.Time
	tor.ForEach(func(c topo.Coord) {
		n := tor.ID(c)
		expected := uint64(len(tor.Neighbors26(c)))
		m.Client(packet.Client{Node: n, Kind: packet.Slice0}).Wait(ctrMigSync, expected, func() {
			// `last` is a cross-node maximum: update it at the canonical
			// commit slot so the measurement is worker-count independent.
			ctx := m.Ctx(n)
			now := ctx.Now()
			ctx.Defer(func() {
				if now > last {
					last = now
				}
			})
		})
	})
	tor.ForEach(func(c topo.Coord) {
		m.Client(packet.Client{Node: tor.ID(c), Kind: packet.Slice0}).Send(&packet.Packet{
			Kind: packet.Write, Multicast: patternID(mcMigBase, tor, c),
			Counter: ctrMigSync, Bytes: 8, InOrder: true, Tag: "migration-sync",
		})
	})
	m.Sim.Run()
	return last.Sub(start)
}

// buildBondProgram assigns every distinct (atom, bond-term) pair to a
// node. age is the staleness of the position snapshot used for the
// assignment, in steps (the paper installs programs that are 120,000
// steps out of date, since regeneration runs in parallel with the
// simulation).
func (mp *Mapping) buildBondProgram(age int) {
	sys := mp.Sys
	// The assignment places each term on the home node of its first atom
	// at snapshot time.
	snapshot := func(atom int) topo.NodeID {
		if age == 0 {
			return mp.atomHome[atom]
		}
		return mp.displacedHome(atom, age)
	}
	type pair struct {
		atom int
		term topo.NodeID
	}
	seen := make(map[pair]bool)
	mp.bonds = mp.bonds[:0]
	add := func(term topo.NodeID, atoms ...int) {
		for _, a := range atoms {
			p := pair{a, term}
			if seen[p] {
				continue
			}
			seen[p] = true
			mp.bonds = append(mp.bonds, bondInstance{atom: a, term: term, src: mp.atomHome[a]})
		}
	}
	for _, b := range sys.Bonds {
		add(snapshot(b.I), b.I, b.J)
	}
	for _, a := range sys.Angles {
		add(snapshot(a.I), a.I, a.J, a.K)
	}
	mp.bondAge = 0
	mp.recountBondExpectations()
}

// displacedHome returns the home node of atom after a random-walk
// displacement of age steps. Each atom drifts along a fixed random
// direction whose magnitude grows as sqrt(age), so the aging curves are
// smooth and monotone rather than redrawn per sample.
func (mp *Mapping) displacedHome(atom, age int) topo.NodeID {
	rng := rand.New(rand.NewSource(mp.Cfg.Seed*1_000_003 + int64(atom)))
	std := math.Sqrt(2*mp.Cfg.DiffusionPerStep*float64(age)) * mp.Sys.Box
	p := mp.Sys.Pos[atom]
	p.X = wrapF(p.X+rng.NormFloat64()*std, mp.Sys.Box)
	p.Y = wrapF(p.Y+rng.NormFloat64()*std, mp.Sys.Box)
	p.Z = wrapF(p.Z+rng.NormFloat64()*std, mp.Sys.Box)
	return mp.homeOf(p)
}

func wrapF(x, l float64) float64 {
	x = math.Mod(x, l)
	if x < 0 {
		x += l
	}
	return x
}

// RegenerateBondProgram installs a fresh bond program derived from a
// position snapshot lag steps old: regeneration runs in parallel with the
// simulation, so a program is about one regeneration period out of date
// when installed (the paper regenerates every 100,000-200,000 steps).
// Receiver packet counts are recomputed at installation; between installs
// the communication pattern is fixed, keeping counted remote writes valid.
func (mp *Mapping) RegenerateBondProgram(lag int) { mp.buildBondProgram(lag) }

// SetBondAge models the system having evolved for age steps since the
// installed bond program's position snapshot: each atom's current home
// node is re-drawn from the diffusion model while term assignments stay
// fixed, so bond communication distances grow (Figure 11's mechanism).
func (mp *Mapping) SetBondAge(age int) {
	// Each bond's displaced home is an independent pure computation with a
	// disjoint write, so the re-draw runs on the worker pool.
	par.ParFor(par.Workers(mp.Cfg.Workers), len(mp.bonds), func(i int) {
		mp.bonds[i].src = mp.displacedHome(mp.bonds[i].atom, age)
	})
	mp.bondAge = age
	mp.recountBondExpectations()
}

// Expected bond packet counts, recomputed whenever sources or assignments
// change (migration or bond-program installation).
type bondCounts struct {
	posAt   []int // per node: bond positions expected at slice1
	forceAt []int // per node: bond force packets expected at accum0
	sendsBy []int // per node: bond position packets sent
}

func (mp *Mapping) recountBondExpectations() {
	n := mp.tor.Nodes()
	bc := bondCounts{
		posAt:   make([]int, n),
		forceAt: make([]int, n),
		sendsBy: make([]int, n),
	}
	for _, b := range mp.bonds {
		bc.posAt[b.term]++
		bc.forceAt[b.src]++
		bc.sendsBy[b.src]++
	}
	mp.bondCounts = bc
	mp.bondBySrc = make([][]int, n)
	mp.bondByTerm = make([][]int, n)
	for i, b := range mp.bonds {
		mp.bondBySrc[b.src] = append(mp.bondBySrc[b.src], i)
		mp.bondByTerm[b.term] = append(mp.bondByTerm[b.term], i)
	}
}

// countPairs estimates the per-node range-limited pair workload from the
// actual chemical system.
func (mp *Mapping) countPairs() {
	total := mp.Sys.PairCountWithinCutoff()
	mp.pairsPerNode = total/mp.tor.Nodes() + 1
}

// fixPacketCounts freezes the fixed per-step packet counts: the position
// count is padded for worst-case density fluctuations, and the force
// count follows from it and the aggregation factor.
func (mp *Mapping) fixPacketCounts() {
	maxAtoms := 0
	for _, n := range mp.atomsAt {
		if n > maxAtoms {
			maxAtoms = n
		}
	}
	mp.posN = int(math.Ceil(float64(maxAtoms) * mp.Cfg.PosSlack))
	if mp.posN < 1 {
		mp.posN = 1
	}
	mp.forceN = (mp.posN + mp.Cfg.ForcesPerPacket - 1) / mp.Cfg.ForcesPerPacket
}

// PosPackets returns the fixed per-node position packet count.
func (mp *Mapping) PosPackets() int { return mp.posN }

// ForcePackets returns the fixed per-(HTIS, import source) force packet
// count per step.
func (mp *Mapping) ForcePackets() int { return mp.forceN }

// MaxAtomsPerNode returns the largest per-node atom count of the current
// decomposition.
func (mp *Mapping) MaxAtomsPerNode() int {
	max := 0
	for _, n := range mp.atomsAt {
		if n > max {
			max = n
		}
	}
	return max
}

// MaxSrcCount returns the largest position-source count of any HTIS: the
// fan-in of the position multicast.
func (mp *Mapping) MaxSrcCount() int {
	max := 0
	for _, n := range mp.srcCount {
		if n > max {
			max = n
		}
	}
	return max
}

// MaxImportCount returns the largest import-region size of any node: the
// fan-out of the position multicast and of the force returns.
func (mp *Mapping) MaxImportCount() int {
	max := 0
	for _, n := range mp.impCount {
		if n > max {
			max = n
		}
	}
	return max
}

// GridPerNode returns the FFT grid points owned by each node.
func (mp *Mapping) GridPerNode() int {
	return mp.Cfg.GridN * mp.Cfg.GridN * mp.Cfg.GridN / mp.tor.Nodes()
}

// ForceWireBytes returns the wire payload of one aggregated force packet.
func (mp *Mapping) ForceWireBytes() int { return mp.forceBytes() }

// MaxBondTermsAt returns the largest per-node bond-position count: the
// bond-program instances whose term node must receive a position each
// step, maximized over nodes.
func (mp *Mapping) MaxBondTermsAt() int { return maxInt(mp.bondCounts.posAt) }

// MaxBondSendsBy returns the largest per-node count of bond position
// packets sent.
func (mp *Mapping) MaxBondSendsBy() int { return maxInt(mp.bondCounts.sendsBy) }

// MaxBondForcesAt returns the largest per-node count of bond force
// packets expected back at the accumulation memory.
func (mp *Mapping) MaxBondForcesAt() int { return maxInt(mp.bondCounts.forceAt) }

func maxInt(xs []int) int {
	max := 0
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	return max
}

// ImportSet returns node n's import region.
func (mp *Mapping) ImportSet(n topo.NodeID) []topo.NodeID { return mp.importOf[n] }

// PairsPerNode returns the estimated range-limited pairs per node.
func (mp *Mapping) PairsPerNode() int { return mp.pairsPerNode }

// BondInstances returns the number of (atom, term-node) deliveries per
// step.
func (mp *Mapping) BondInstances() int { return len(mp.bonds) }

// MeanBondHops returns the mean torus hop count of bond position packets
// under the current assignment — the quantity bond-program regeneration
// keeps small.
func (mp *Mapping) MeanBondHops() float64 {
	if len(mp.bonds) == 0 {
		return 0
	}
	total := 0
	for _, b := range mp.bonds {
		total += mp.tor.Hops(mp.tor.Coord(b.src), mp.tor.Coord(b.term))
	}
	return float64(total) / float64(len(mp.bonds))
}
