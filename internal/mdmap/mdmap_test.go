package mdmap

import (
	"testing"

	"anton/internal/machine"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
	"anton/internal/trace"
)

// smallConfig is a fast test configuration: 4x4x4 machine, ~2k atoms.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Atoms = 1998
	cfg.GridN = 16
	return cfg
}

func newSmall(t *testing.T, cfg Config) (*sim.Sim, *Mapping) {
	t.Helper()
	s := sim.New()
	m := machine.New(s, topo.NewTorus(4, 4, 4), noc.DefaultModel())
	return s, New(s, m, cfg)
}

func TestSetupInvariants(t *testing.T) {
	_, mp := newSmall(t, smallConfig())
	if mp.Sys.N() != 1998 {
		t.Fatalf("atoms = %d", mp.Sys.N())
	}
	// The fixed position count must cover the worst-case node.
	maxAtoms := 0
	for _, n := range mp.atomsAt {
		if n > maxAtoms {
			maxAtoms = n
		}
	}
	if mp.posN < maxAtoms {
		t.Fatalf("posN %d below max atoms per node %d", mp.posN, maxAtoms)
	}
	// Atoms all assigned.
	total := 0
	for _, n := range mp.atomsAt {
		total += n
	}
	if total != mp.Sys.N() {
		t.Fatalf("assigned %d of %d atoms", total, mp.Sys.N())
	}
	// Import region on a 4x4x4 torus: self + 13 distinct half-shell
	// neighbours.
	for n, set := range mp.importOf {
		if len(set) != 14 {
			t.Fatalf("node %d import set size %d, want 14", n, len(set))
		}
		if set[0] != topo.NodeID(n) {
			t.Fatalf("import set must start with self")
		}
	}
	// Source counts mirror import counts (the relation is symmetric).
	for n := range mp.srcCount {
		if mp.srcCount[n] != 14 {
			t.Fatalf("srcCount[%d] = %d, want 14", n, mp.srcCount[n])
		}
	}
	if mp.BondInstances() == 0 {
		t.Fatal("no bond instances")
	}
	// A fresh bond program keeps communication local.
	if h := mp.MeanBondHops(); h > 1.0 {
		t.Fatalf("fresh bond program mean hops = %v, want < 1", h)
	}
}

func TestStepKindsAlternate(t *testing.T) {
	if testing.Short() {
		t.Skip("several 512-node steps; exercised without -short")
	}
	_, mp := newSmall(t, smallConfig())
	kinds := []StepKind{}
	for i := 0; i < 4; i++ {
		kinds = append(kinds, mp.RunStep().Kind)
	}
	want := []StepKind{RangeLimited, LongRange, RangeLimited, LongRange}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("step kinds = %v", kinds)
		}
	}
	if RangeLimited.String() != "range-limited" || LongRange.String() != "long-range" {
		t.Fatal("kind strings wrong")
	}
}

func TestStepTimings(t *testing.T) {
	if testing.Short() {
		t.Skip("several 512-node steps; exercised without -short")
	}
	cfg := smallConfig()
	cfg.MigrationInterval = 4
	_, mp := newSmall(t, cfg)
	rl := mp.RunStep()
	lr := mp.RunStep()
	if rl.Total <= 0 || lr.Total <= 0 {
		t.Fatal("non-positive step times")
	}
	if lr.Total <= rl.Total {
		t.Fatalf("long-range step %v not slower than range-limited %v", lr.Total, rl.Total)
	}
	if rl.FFT != 0 || lr.FFT == 0 {
		t.Fatalf("FFT extents: rl=%v lr=%v", rl.FFT, lr.FFT)
	}
	if rl.Thermo != 0 || lr.Thermo == 0 {
		t.Fatalf("thermostat extents: rl=%v lr=%v", rl.Thermo, lr.Thermo)
	}
	if rl.Comm <= 0 || rl.Comm >= rl.Total {
		t.Fatalf("rl comm %v outside (0, total %v)", rl.Comm, rl.Total)
	}
	if rl.Migr != 0 || lr.Migr != 0 {
		t.Fatal("migration ran on a non-migration step")
	}
	// Steps 3 and 4: step 4 migrates.
	mp.RunStep()
	mig := mp.RunStep()
	if mig.Migr <= 0 {
		t.Fatalf("migration extent %v on migration step", mig.Migr)
	}
}

func TestThermostatOffMigrationOff(t *testing.T) {
	cfg := smallConfig()
	cfg.ThermostatOn = false
	cfg.MigrationInterval = 0
	_, mp := newSmall(t, cfg)
	for i := 0; i < 4; i++ {
		st := mp.RunStep()
		if st.Thermo != 0 || st.Migr != 0 {
			t.Fatalf("step %d: thermo=%v migr=%v with features disabled", i, st.Thermo, st.Migr)
		}
	}
}

func TestDeterministicSteps(t *testing.T) {
	run := func() []sim.Dur {
		_, mp := newSmall(t, smallConfig())
		var out []sim.Dur
		for i := 0; i < 3; i++ {
			out = append(out, mp.RunStep().Total)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRepeatedStepsStable(t *testing.T) {
	if testing.Short() {
		t.Skip("many 512-node steps; exercised without -short")
	}
	// Counter bookkeeping must stay consistent over many steps: identical
	// step kinds must give identical durations.
	cfg := smallConfig()
	cfg.MigrationInterval = 0
	_, mp := newSmall(t, cfg)
	var rl, lr []sim.Dur
	for i := 0; i < 6; i++ {
		st := mp.RunStep()
		if st.Kind == RangeLimited {
			rl = append(rl, st.Total)
		} else {
			lr = append(lr, st.Total)
		}
	}
	for i := 1; i < len(rl); i++ {
		if rl[i] != rl[0] {
			t.Fatalf("range-limited steps drift: %v", rl)
		}
	}
	for i := 1; i < len(lr); i++ {
		if lr[i] != lr[0] {
			t.Fatalf("long-range steps drift: %v", lr)
		}
	}
}

func TestBondAgingIncreasesHopsAndTime(t *testing.T) {
	cfg := smallConfig()
	cfg.MigrationInterval = 0
	_, mp := newSmall(t, cfg)
	fresh := mp.MeanBondHops()
	freshRL := mp.RunStep()
	mp.RunStep() // keep parity

	mp.SetBondAge(8_000_000)
	aged := mp.MeanBondHops()
	agedRL := mp.RunStep()
	if aged <= fresh {
		t.Fatalf("aging did not increase bond hops: %v -> %v", fresh, aged)
	}
	if agedRL.Total <= freshRL.Total {
		t.Fatalf("aging did not slow the step: %v -> %v", freshRL.Total, agedRL.Total)
	}
}

func TestBondProgramRegenerationRestoresLocality(t *testing.T) {
	cfg := smallConfig()
	_, mp := newSmall(t, cfg)
	mp.SetBondAge(8_000_000)
	aged := mp.MeanBondHops()
	// Install a fresh program with the 120k-step staleness lag the paper
	// describes.
	mp.RegenerateBondProgram(120_000)
	regen := mp.MeanBondHops()
	if regen >= aged {
		t.Fatalf("regeneration did not reduce hops: %v -> %v", aged, regen)
	}
}

func TestMigrationIntervalImprovement(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-interval 512-node sweep; exercised without -short")
	}
	// Fig. 12's shape: less frequent migration reduces the average step
	// time.
	avg := func(interval int) sim.Dur {
		cfg := smallConfig()
		cfg.MigrationInterval = interval
		_, mp := newSmall(t, cfg)
		var total sim.Dur
		steps := 2 * interval
		if steps < 4 {
			steps = 4
		}
		for i := 0; i < steps; i++ {
			total += mp.RunStep().Total
		}
		return total / sim.Dur(steps)
	}
	every := avg(1)
	rare := avg(8)
	if rare >= every {
		t.Fatalf("migration every step (%v) not slower than every 8 (%v)", every, rare)
	}
}

func TestTracerPhases(t *testing.T) {
	_, mp := newSmall(t, smallConfig())
	mp.Tracer = trace.New()
	mp.RunStep()
	mp.RunStep()
	labels := map[string]bool{}
	for _, ph := range mp.Tracer.Phases() {
		labels[ph.Label] = true
	}
	for _, want := range []string{
		"position send", "wait for positions", "range-limited interactions",
		"bonded interactions", "charge spreading", "force interpolation",
		"update positions and velocities", "wait for forces",
		"kinetic energy", "adjust temperature",
	} {
		if !labels[want] {
			t.Fatalf("phase %q missing from trace; have %v", want, labels)
		}
	}
}

func TestCounterAudit(t *testing.T) {
	// The foundation of counted remote writes: the receivers' precomputed
	// expectations must match the delivered packet counts exactly. After k
	// steps every HTIS position counter must read k * sources * posN.
	_, mp := newSmall(t, smallConfig())
	const steps = 4
	for i := 0; i < steps; i++ {
		mp.RunStep()
	}
	m := mp.M
	for id := 0; id < m.Torus.Nodes(); id++ {
		htis := m.Client(packet.Client{Node: topo.NodeID(id), Kind: packet.HTIS})
		want := uint64(steps * 14 * mp.PosPackets())
		if got := htis.Counter(0).Value(); got != want {
			t.Fatalf("node %d position counter = %d, want %d", id, got, want)
		}
	}
	// Bond position counters across all nodes must sum to
	// steps * BondInstances.
	var bondTotal uint64
	for id := 0; id < m.Torus.Nodes(); id++ {
		s1 := m.Client(packet.Client{Node: topo.NodeID(id), Kind: packet.Slice1})
		bondTotal += s1.Counter(1).Value()
	}
	if want := uint64(steps * mp.BondInstances()); bondTotal != want {
		t.Fatalf("bond position counters sum to %d, want %d", bondTotal, want)
	}
}

func TestTrafficScalesWithAtoms(t *testing.T) {
	run := func(atoms int) float64 {
		cfg := smallConfig()
		cfg.Atoms = atoms
		_, mp := newSmall(t, cfg)
		return mp.RunStep().SentPerNode
	}
	small, large := run(999), run(3999)
	if large <= small {
		t.Fatalf("sends per node did not grow with atoms: %v vs %v", small, large)
	}
}

func TestUnsupportedTorusPanics(t *testing.T) {
	s := sim.New()
	m := machine.New(s, topo.NewTorus(5, 5, 5), noc.DefaultModel())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 5x5x5 torus")
		}
	}()
	New(s, m, smallConfig())
}

func TestProduction512(t *testing.T) {
	if testing.Short() {
		t.Skip("512-node production step in short mode")
	}
	s := sim.New()
	m := machine.Default512(s)
	mp := New(s, m, DefaultConfig())
	rl := mp.RunStep()
	lr := mp.RunStep()
	// Table 3 Anton column, +/-25%: range-limited 9.0us, long-range 22.2us.
	if us := rl.Total.Us(); us < 6.7 || us > 11.3 {
		t.Errorf("range-limited step = %.2fus, want ~9.0us", us)
	}
	if us := lr.Total.Us(); us < 16.6 || us > 27.8 {
		t.Errorf("long-range step = %.2fus, want ~22.2us", us)
	}
	// The paper: during an *average* time step the average node sends over
	// 250 messages and receives over 500.
	if avg := (rl.SentPerNode + lr.SentPerNode) / 2; avg < 250 {
		t.Errorf("average sends per node %v, want > 250", avg)
	}
	if avg := (rl.RecvPerNode + lr.RecvPerNode) / 2; avg < 500 {
		t.Errorf("average receives per node %v, want > 500", avg)
	}
}
