package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestTruncationEveryOffset is the SIGKILL-mid-persist regression: a
// snapshot cut at EVERY byte offset must be refused with a clean error
// — never a panic, never a silently short restore. (The atomic
// write-then-rename in WriteFile should make torn files impossible, but
// the reader must stay safe against disks and copies that tear anyway.)
func TestTruncationEveryOffset(t *testing.T) {
	b := sample().Encode()
	for n := 0; n < len(b); n++ {
		n := n
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on truncation to %d/%d bytes: %v", n, len(b), r)
				}
			}()
			if _, err := Decode(b[:n]); err == nil {
				t.Fatalf("truncation to %d/%d bytes not rejected", n, len(b))
			}
		}()
	}
}

// TestByteFlipEveryOffset: any single corrupted byte anywhere in the
// file is either caught by the magic/version/digest checks or — for
// flips inside the header's digest field itself — by the digest no
// longer matching the payload. No flip may decode successfully.
func TestByteFlipEveryOffset(t *testing.T) {
	b := sample().Encode()
	for off := 0; off < len(b); off++ {
		c := append([]byte(nil), b...)
		c[off] ^= 0x01
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on byte flip at %d: %v", off, r)
				}
			}()
			if _, err := Decode(c); err == nil {
				t.Fatalf("byte flip at offset %d not rejected", off)
			}
		}()
	}
}

// TestConcurrentWriteFile hammers one path from many goroutines — the
// serving tier persists on every completion — and requires the survivor
// to be one of the complete snapshots, with no stray temp files left.
func TestConcurrentWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.ckpt")
	const writers = 16
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := sample()
			st.Step = int64(i)
			st.Rows = append(st.Rows, fmt.Sprintf("writer %d", i))
			if err := st.WriteFile(path); err != nil {
				t.Errorf("writer %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("survivor unreadable: %v", err)
	}
	if got.Step < 0 || got.Step >= writers {
		t.Fatalf("survivor has step %d, not one of the writers'", got.Step)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		var names []string
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("temp files left behind: %v", names)
	}
}
