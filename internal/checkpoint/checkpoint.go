// Package checkpoint implements the versioned binary snapshot format
// behind the -checkpoint-out / -restore flags of cmd/mdsim and
// cmd/antonbench.
//
// The simulators are deterministic: a fixed (config, seed, plan) tuple
// reproduces every event, row, and clock value bit for bit at any worker
// count. A snapshot therefore does not serialize the discrete-event
// state (pending events, resource queues, in-flight packets); it records
// the run's configuration, its observable history (the emitted rows),
// and validation digests (the simulated clock, selected state floats).
// Restart rebuilds the run from the recorded configuration and replays
// it deterministically up to the snapshot step, verifying every replayed
// row and the clock against the snapshot — any code, flag, or plan
// divergence is detected instead of silently producing a forked
// trajectory — and then continues past it. Killing a run at step N and
// restoring is thus bit-identical to never having killed it.
//
// Format (all integers little-endian):
//
//	magic   8 bytes  "ANTCKPT\x00"
//	version u32      currently 1
//	digest  u64      FNV-64a of everything after this field
//	kind    string   writing program ("mdsim", "antonbench")
//	step    i64      workload steps completed at snapshot time
//	clock   i64      simulated picoseconds at snapshot time
//	fields  u32 + sorted (string, string) pairs: the run configuration
//	rows    u32 + strings: observable history up to step
//	floats  u32 + f64 bits: state validation values
//
// Strings are u32 length + bytes. The version is bumped on any layout
// change; Decode rejects unknown versions rather than guessing.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Magic identifies a snapshot file.
const Magic = "ANTCKPT\x00"

// Version is the current snapshot layout version.
const Version = 1

// headerLen is magic + version + digest.
const headerLen = len(Magic) + 4 + 8

// State is one snapshot.
type State struct {
	// Kind names the writing program; restore refuses a snapshot written
	// by a different one.
	Kind string
	// Step is the number of workload steps completed at snapshot time.
	Step int64
	// Clock is the simulated time (integer picoseconds) at snapshot
	// time; replay must land on it exactly.
	Clock int64
	// Fields is the run configuration (flag name -> value). Restore
	// rebuilds the run from these, so a snapshot is self-describing.
	Fields map[string]string
	// Rows is the run's observable history: every data row emitted up to
	// Step, verified one by one during replay.
	Rows []string
	// Floats holds state validation values (e.g. the MD engine's
	// positions and velocities), compared bit-exactly after replay.
	Floats []float64
}

// Field returns a configuration field ("" when absent).
func (st *State) Field(name string) string { return st.Fields[name] }

// Encode renders the snapshot in the versioned binary format.
func (st *State) Encode() []byte {
	var p []byte
	putU32 := func(v uint32) { p = binary.LittleEndian.AppendUint32(p, v) }
	putU64 := func(v uint64) { p = binary.LittleEndian.AppendUint64(p, v) }
	putStr := func(s string) { putU32(uint32(len(s))); p = append(p, s...) }

	putStr(st.Kind)
	putU64(uint64(st.Step))
	putU64(uint64(st.Clock))
	keys := make([]string, 0, len(st.Fields))
	for k := range st.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	putU32(uint32(len(keys)))
	for _, k := range keys {
		putStr(k)
		putStr(st.Fields[k])
	}
	putU32(uint32(len(st.Rows)))
	for _, r := range st.Rows {
		putStr(r)
	}
	putU32(uint32(len(st.Floats)))
	for _, f := range st.Floats {
		putU64(math.Float64bits(f))
	}

	h := fnv.New64a()
	h.Write(p)
	out := make([]byte, 0, headerLen+len(p))
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint64(out, h.Sum64())
	return append(out, p...)
}

// Decode parses and validates a snapshot.
func Decode(b []byte) (*State, error) {
	if len(b) < headerLen || string(b[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("checkpoint: not a snapshot (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(b[len(Magic):]); v != Version {
		return nil, fmt.Errorf("checkpoint: unsupported snapshot version %d (this build reads %d)", v, Version)
	}
	digest := binary.LittleEndian.Uint64(b[len(Magic)+4:])
	p := b[headerLen:]
	h := fnv.New64a()
	h.Write(p)
	if h.Sum64() != digest {
		return nil, fmt.Errorf("checkpoint: digest mismatch (corrupt or truncated snapshot)")
	}

	errTrunc := fmt.Errorf("checkpoint: truncated snapshot")
	getU32 := func() (uint32, error) {
		if len(p) < 4 {
			return 0, errTrunc
		}
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v, nil
	}
	getU64 := func() (uint64, error) {
		if len(p) < 8 {
			return 0, errTrunc
		}
		v := binary.LittleEndian.Uint64(p)
		p = p[8:]
		return v, nil
	}
	getStr := func() (string, error) {
		n, err := getU32()
		if err != nil || uint32(len(p)) < n {
			return "", errTrunc
		}
		s := string(p[:n])
		p = p[n:]
		return s, nil
	}

	st := &State{Fields: map[string]string{}}
	var err error
	if st.Kind, err = getStr(); err != nil {
		return nil, err
	}
	step, err := getU64()
	if err != nil {
		return nil, err
	}
	clock, err := getU64()
	if err != nil {
		return nil, err
	}
	st.Step, st.Clock = int64(step), int64(clock)
	nf, err := getU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nf; i++ {
		k, err := getStr()
		if err != nil {
			return nil, err
		}
		v, err := getStr()
		if err != nil {
			return nil, err
		}
		st.Fields[k] = v
	}
	nr, err := getU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nr; i++ {
		r, err := getStr()
		if err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, r)
	}
	nfl, err := getU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nfl; i++ {
		v, err := getU64()
		if err != nil {
			return nil, err
		}
		st.Floats = append(st.Floats, math.Float64frombits(v))
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after snapshot payload", len(p))
	}
	return st, nil
}

// WriteFile atomically writes the snapshot to path. The temp file gets
// a unique name (concurrent writers never scribble on each other's
// half-written bytes) and is fsynced before the rename, so after a
// SIGKILL — even one landing mid-persist — the path holds either the
// previous complete snapshot or the new one, never a torn file. The
// directory fsync after the rename is best-effort: it narrows the
// window in which a machine crash forgets the rename, and filesystems
// that refuse directory syncs lose nothing else.
func (st *State) WriteFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(st.Encode()); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadFile reads and validates the snapshot at path.
func ReadFile(path string) (*State, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}
