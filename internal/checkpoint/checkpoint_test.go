package checkpoint

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sample() *State {
	return &State{
		Kind:  "mdsim",
		Step:  12,
		Clock: 987654321,
		Fields: map[string]string{
			"atoms": "4000", "torus": "2x2x2", "seed": "1", "faults": "seed=9,killlink=0:X+@2us",
		},
		Rows:   []string{"row one", "row two", "row three"},
		Floats: []float64{1.5, -2.25, math.Pi, 0},
	}
}

func TestRoundTrip(t *testing.T) {
	st := sample()
	got, err := Decode(st.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, st)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, b := sample().Encode(), sample().Encode()
	if string(a) != string(b) {
		t.Fatal("two encodings of the same state differ")
	}
}

func TestEmptyState(t *testing.T) {
	st := &State{Kind: "antonbench", Fields: map[string]string{}}
	got, err := Decode(st.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("empty round trip mismatch: %+v vs %+v", got, st)
	}
}

func TestBadMagic(t *testing.T) {
	b := sample().Encode()
	b[0] ^= 0xFF
	if _, err := Decode(b); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic not rejected: %v", err)
	}
}

func TestBadVersion(t *testing.T) {
	b := sample().Encode()
	binary.LittleEndian.PutUint32(b[len(Magic):], 99)
	if _, err := Decode(b); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("unknown version not rejected: %v", err)
	}
}

func TestCorruption(t *testing.T) {
	b := sample().Encode()
	// Flip one payload byte anywhere: the digest must catch it.
	for _, off := range []int{headerLen, headerLen + 7, len(b) - 1} {
		c := append([]byte(nil), b...)
		c[off] ^= 0x01
		if _, err := Decode(c); err == nil || !strings.Contains(err.Error(), "digest") {
			t.Fatalf("corruption at offset %d not rejected: %v", off, err)
		}
	}
}

func TestTruncation(t *testing.T) {
	b := sample().Encode()
	for _, n := range []int{0, 4, headerLen - 1, headerLen + 3, len(b) / 2, len(b) - 1} {
		if _, err := Decode(b[:n]); err == nil {
			t.Fatalf("truncation to %d bytes not rejected", n)
		}
	}
}

func TestTrailingBytes(t *testing.T) {
	// Extra bytes after the payload change the digest; a crafted file with
	// a digest over the padded payload still fails the exact-consume check.
	st := sample()
	b := st.Encode()
	padded := append(append([]byte(nil), b...), 0, 0, 0)
	if _, err := Decode(padded); err == nil {
		t.Fatal("trailing bytes not rejected")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.ckpt")
	st := sample()
	if err := st.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after atomic write")
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatal("file round trip mismatch")
	}
}
