package analytic_test

import (
	"testing"

	"anton/internal/analytic"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// TestFigure6RoutesExact pins the analytic tier to the calibrated
// Figure 6 values on the eleven routes the observability layer
// cross-validates (internal/metrics), including the paper's 162 ns
// headline number. The values are picosecond-exact.
func TestFigure6RoutesExact(t *testing.T) {
	a := analytic.NewAnton(topo.NewTorus(8, 8, 8))
	routes := []struct {
		dst   topo.Coord
		bytes int
		want  sim.Dur
	}{
		{topo.C(1, 0, 0), 0, 162000 * sim.Ps}, // the headline 162 ns
		{topo.C(1, 0, 0), 256, 211408 * sim.Ps},
		{topo.C(2, 0, 0), 0, 238000 * sim.Ps},
		{topo.C(1, 1, 0), 0, 216000 * sim.Ps},
		{topo.C(1, 1, 0), 256, 265408 * sim.Ps},
		{topo.C(0, 0, 3), 0, 270000 * sim.Ps},
		{topo.C(1, 1, 1), 0, 270000 * sim.Ps},
		{topo.C(1, 1, 1), 256, 319408 * sim.Ps},
		{topo.C(4, 4, 4), 256, 871408 * sim.Ps},
		{topo.C(0, 0, 0), 0, 104000 * sim.Ps}, // node-local write
		{topo.C(0, 0, 0), 256, 104000 * sim.Ps},
	}
	for _, r := range routes {
		if got := a.WriteLatency(topo.C(0, 0, 0), r.dst, r.bytes); got != r.want {
			t.Errorf("->%v %dB: got %v, want %v", r.dst, r.bytes, got, r.want)
		}
	}
}

// TestLatencyMonotoneInHops: adding a hop in any dimension (within the
// minimal-route hemisphere) strictly increases the point-to-point
// latency.
func TestLatencyMonotoneInHops(t *testing.T) {
	a := analytic.NewAnton(topo.NewTorus(8, 8, 8))
	origin := topo.C(0, 0, 0)
	for _, bytes := range []int{0, 256} {
		for x := 0; x <= 4; x++ {
			for y := 0; y <= 4; y++ {
				for z := 0; z <= 4; z++ {
					base := a.WriteLatency(origin, topo.C(x, y, z), bytes)
					for _, next := range []topo.Coord{
						topo.C(x+1, y, z), topo.C(x, y+1, z), topo.C(x, y, z+1),
					} {
						if next.X > 4 || next.Y > 4 || next.Z > 4 {
							continue // past the hemisphere: hop count would wrap
						}
						if got := a.WriteLatency(origin, next, bytes); got <= base {
							t.Fatalf("%dB ->%v (%v) not above ->%v (%v)",
								bytes, next, got, topo.C(x, y, z), base)
						}
					}
				}
			}
		}
	}
}

// TestLatencyMonotoneInPayload: latency is non-decreasing in payload
// size, flat across the inline-payload range (payloads up to
// packet.InlineBytes ride in the header), and strictly increasing once
// the payload is on the wire.
func TestLatencyMonotoneInPayload(t *testing.T) {
	a := analytic.NewAnton(topo.NewTorus(8, 8, 8))
	origin := topo.C(0, 0, 0)
	for _, dst := range []topo.Coord{topo.C(1, 0, 0), topo.C(2, 3, 1), topo.C(4, 4, 4)} {
		prev := sim.Dur(-1)
		for p := 0; p <= packet.MaxPayloadBytes; p += 4 {
			got := a.WriteLatency(origin, dst, p)
			if got < prev {
				t.Fatalf("->%v: latency decreased from %v to %v at %dB", dst, prev, got, p)
			}
			if p > packet.InlineBytes+4 && got == prev {
				t.Fatalf("->%v: latency flat at %dB despite wire payload growth", dst, p)
			}
			prev = got
		}
		if a.WriteLatency(origin, dst, packet.InlineBytes) != a.WriteLatency(origin, dst, 0) {
			t.Errorf("->%v: inline payload (%dB) should cost the same as empty", dst, packet.InlineBytes)
		}
	}
}

// TestLatencySymmetric: swapping source and destination leaves the
// latency unchanged (minimal dimension-ordered routes have the same
// per-dimension hop counts in both directions).
func TestLatencySymmetric(t *testing.T) {
	for _, tor := range []topo.Torus{topo.NewTorus(8, 8, 8), topo.NewTorus(3, 5, 2)} {
		a := analytic.NewAnton(tor)
		coords := []topo.Coord{
			topo.C(0, 0, 0), topo.C(1, 0, 0), topo.C(2, 4, 1),
			topo.C(1, 1, 1), topo.C(2, 3, 1), topo.C(0, 2, 0),
		}
		for _, src := range coords {
			for _, dst := range coords {
				src, dst := tor.Wrap(src), tor.Wrap(dst)
				for _, bytes := range []int{0, 64, 256} {
					fwd := a.WriteLatency(src, dst, bytes)
					rev := a.WriteLatency(dst, src, bytes)
					if fwd != rev {
						t.Errorf("%v: %v<->%v %dB asymmetric: %v vs %v", tor, src, dst, bytes, fwd, rev)
					}
				}
			}
		}
	}
}

// TestDiameterIsMaxOverAllRoutes: Diameter equals the exhaustive maximum
// of the point-to-point latency over every destination in the torus.
func TestDiameterIsMaxOverAllRoutes(t *testing.T) {
	for _, tor := range []topo.Torus{topo.NewTorus(8, 8, 8), topo.NewTorus(4, 4, 4), topo.NewTorus(3, 5, 2)} {
		a := analytic.NewAnton(tor)
		for _, bytes := range []int{0, 256} {
			var max sim.Dur
			var argmax topo.Coord
			tor.ForEach(func(c topo.Coord) {
				if lat := a.WriteLatency(topo.C(0, 0, 0), c, bytes); lat > max {
					max, argmax = lat, c
				}
			})
			if got := a.Diameter(bytes); got != max {
				t.Errorf("%v %dB: Diameter %v, exhaustive max %v at %v", tor, bytes, got, max, argmax)
			}
		}
	}
}

// TestSerializationAdditive: the payload-serialization cost of a route
// with at least one hop is independent of the route — latency(p) -
// latency(0) is the same constant for every remote destination.
func TestSerializationAdditive(t *testing.T) {
	a := analytic.NewAnton(topo.NewTorus(8, 8, 8))
	origin := topo.C(0, 0, 0)
	dsts := []topo.Coord{topo.C(1, 0, 0), topo.C(3, 0, 0), topo.C(1, 1, 1), topo.C(4, 4, 4)}
	for _, bytes := range []int{16, 64, 256} {
		delta := a.WriteLatency(origin, dsts[0], bytes) - a.WriteLatency(origin, dsts[0], 0)
		for _, dst := range dsts[1:] {
			got := a.WriteLatency(origin, dst, bytes) - a.WriteLatency(origin, dst, 0)
			if got != delta {
				t.Errorf("->%v %dB: serialization delta %v, want %v", dst, bytes, got, delta)
			}
		}
	}
}

// TestValidatePayload pins the payload-validation error path.
func TestValidatePayload(t *testing.T) {
	if err := analytic.ValidatePayload(-1); err == nil {
		t.Error("negative payload accepted")
	}
	if err := analytic.ValidatePayload(packet.MaxPayloadBytes + 1); err == nil {
		t.Error("oversized payload accepted")
	}
	if err := analytic.ValidatePayload(packet.MaxPayloadBytes); err != nil {
		t.Errorf("max payload rejected: %v", err)
	}
}
