package analytic

import (
	"sort"

	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// CollectiveConfig parameterizes an analytic all-reduce query. It
// mirrors collective.Config's timing-relevant fields (the counter and
// multicast bookkeeping of the event model has no latency effect).
type CollectiveConfig struct {
	// Bytes is the wire payload per packet (0 for a pure barrier).
	Bytes int
	// Values is the logical vector length being reduced.
	Values int
	// PerValueAdd is the software cost of adding one contribution of one
	// value during the redundant sum.
	PerValueAdd sim.Dur
	// RoundOverhead is the fixed software turnaround between receiving a
	// round's data and injecting the next round's packets.
	RoundOverhead sim.Dur
}

// AllReduce returns the completion time of the dimension-ordered global
// all-reduce (paper Section IV.B.4): three ring all-reduce rounds (X,
// then Y, then Z) built from multicast counted remote writes, plus the
// final local share from slice 2 to the other three slices.
//
// Every node is symmetric, so one node's timeline is the machine's. Per
// round, the ring-broadcast convoy recurrence below reproduces the link
// and receive-port head-of-line blocking of the event model exactly.
func (a *Anton) AllReduce(cfg CollectiveConfig) sim.Dur {
	m := &a.Model
	wire := WireBytes(cfg.Bytes)
	var t sim.Time
	for d := topo.X; d < topo.NumDims; d++ {
		n := a.Torus.Size(d)
		if n > 1 {
			t = a.ringRoundEnd(t, d, n, wire)
		}
		cost := cfg.RoundOverhead + sim.Dur(cfg.Values*n)*cfg.PerValueAdd
		t = t.Add(cost)
	}
	// Share: slice 2 writes the global sum locally to the other three
	// slices, gap-paced; completion is the third delivery.
	gap := m.SendGap(packet.Slice2)
	t = t.Add(2*gap + m.SendLatency(packet.Slice2) + m.LocalRing + m.DeliverLatency(packet.Slice0))
	return t.Sub(0)
}

// ringRoundEnd returns the instant a round-d ring all-reduce starting at
// t has delivered all n-1 peer contributions to (any) node's receiving
// slice: the counter-fire instant the event model's Wait observes.
//
// Each node multicasts one packet along its dimension-d ring: an arm of
// ceil((n-1)/2) nodes in the + direction and the remainder in the -
// direction. By symmetry every + link of the ring carries exactly one
// packet per upstream root of the + arm, with identical absolute
// schedules on every link, so a single per-hop recurrence yields the
// delivery times of all arrivals at a fixed observer node.
func (a *Anton) ringRoundEnd(t sim.Time, d topo.Dim, n, wire int) sim.Time {
	m := &a.Model
	plus := n / 2
	minus := n - 1 - plus

	// armAvails returns the receive-port arrival instants at the observer
	// from roots 1..arm hops away in one direction.
	armAvails := func(arm int) []sim.Time {
		if arm == 0 {
			return nil
		}
		svc := m.LinkService(wire)
		avails := make([]sim.Time, 0, arm)
		head := t.Add(m.SendLatency(packet.Slice0) + m.SrcRing)
		var linkFree sim.Time
		for j := 0; j < arm; j++ {
			s := head
			if linkFree > s {
				s = linkFree
			}
			linkFree = s.Add(svc)
			arrival := s.Add(m.AdapterPair[d])
			avails = append(avails, arrival.Add(m.ExtraSerialization(wire)+m.DstRing))
			head = arrival.Add(m.Through[d])
		}
		return avails
	}

	arrivals := append(armAvails(plus), armAvails(minus)...)
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i] < arrivals[j] })

	// Receive-port service at the round's destination slice, granted in
	// arrival order; the round completes at the last delivery commit.
	svc := m.ClientService(packet.Slice0, wire)
	var free, last sim.Time
	for _, at := range arrivals {
		s := at
		if free > s {
			s = free
		}
		free = s.Add(svc)
		last = s.Add(m.DeliverLatency(packet.Slice0))
	}
	return last
}

// DefaultCollective returns the analytic counterpart of
// collective.DefaultConfig; callers that have a collective.Config should
// convert it instead so the constants stay single-sourced.
func DefaultCollective(bytes int, perValueAdd, roundOverhead sim.Dur) CollectiveConfig {
	return CollectiveConfig{
		Bytes:         bytes,
		Values:        bytes / 4,
		PerValueAdd:   perValueAdd,
		RoundOverhead: roundOverhead,
	}
}
