package analytic

import (
	"fmt"
	"math/bits"

	"anton/internal/cluster"
	"anton/internal/sim"
)

// Cluster answers closed-form queries about the LogGP cluster baseline:
// N ranks under the calibrated InfiniBand model. All formulas below are
// exact — they reproduce the event-driven model in internal/cluster to
// the picosecond, which the differential fuzzer enforces.
type Cluster struct {
	Model cluster.Model
	N     int
}

// NewCluster returns the analytic model of an n-rank cluster with the
// calibrated DDR2 InfiniBand parameters.
func NewCluster(n int) *Cluster {
	return &Cluster{Model: cluster.DDR2InfiniBand(), N: n}
}

// sendService is the NIC injection occupancy of one message: the LogGP
// gap or the serialization time, whichever binds.
func (c *Cluster) sendService(bytes int) sim.Dur {
	s := c.Model.Gap
	if bw := sim.Dur(bytes) * c.Model.PsPerByte; bw > s {
		s = bw
	}
	return s
}

// Ping returns the one-way software-to-software latency of a single
// message: send overhead, wire latency, serialization, receive overhead.
func (c *Cluster) Ping(bytes int) sim.Dur {
	m := c.Model
	return m.SendOverhead + m.Latency + sim.Dur(bytes)*m.PsPerByte + m.RecvOverhead
}

// ManyMessages returns the completion time of moving totalBytes between
// two ranks split into count equal messages — the InfiniBand side of the
// Figure 7 measurement. Messages are paced at the NIC by the per-message
// service; the receiving CPU pays its overhead per message, queueing
// when arrivals outpace it.
func (c *Cluster) ManyMessages(totalBytes, count int) sim.Dur {
	m := c.Model
	per := totalBytes / count
	var nicFree, cpuFree, last sim.Time
	for i := 0; i < count; i++ {
		bytes := per
		if i == count-1 {
			bytes = totalBytes - per*(count-1)
		}
		start := nicFree
		nicFree = start.Add(c.sendService(bytes))
		arrive := start.Add(m.SendOverhead + m.Latency + sim.Dur(bytes)*m.PsPerByte)
		s := arrive
		if cpuFree > s {
			s = cpuFree
		}
		cpuFree = s.Add(m.RecvOverhead)
		if cpuFree > last {
			last = cpuFree
		}
	}
	return last.Sub(0)
}

// AllReduce returns the completion time of the recursive-doubling
// all-reduce across all ranks: log2(N) rounds, each one ping plus the
// per-round collective software overhead. N must be a power of two,
// matching the event model's precondition.
func (c *Cluster) AllReduce(bytes int) (sim.Dur, error) {
	if c.N <= 0 || c.N&(c.N-1) != 0 {
		return 0, fmt.Errorf("analytic: all-reduce requires power-of-two rank count, got %d", c.N)
	}
	rounds := sim.Dur(bits.TrailingZeros(uint(c.N)))
	return rounds * (c.Ping(bytes) + c.Model.CollectiveOverhead), nil
}

// StagedNeighborExchange returns the completion time of the three-stage
// neighbour exchange of Figure 8a: per stage, each rank injects two
// messages (NIC-paced), waits for its two incoming messages, and pays
// the inter-stage marshalling cost. The second arrival lands one NIC
// service after the first, so the stage critical path is one service,
// one ping, and the marshal.
func (c *Cluster) StagedNeighborExchange(bytesPerMsg int) sim.Dur {
	const stages = 3
	stage := c.sendService(bytesPerMsg) + c.Ping(bytesPerMsg) + c.Model.MarshalPerStage
	return stages * stage
}

// GroupAllToAll returns the completion time of one transpose round of
// the FFT: every rank exchanges one message with each other rank of its
// size-g group (groups run concurrently on disjoint resources). Rank j
// of a group receives i := j messages injected at position j-1 and
// g-1-j injected at position j, so its CPU serves a batch of j
// simultaneous arrivals and then the remainder; the completion is the
// worst rank's last delivery.
func (c *Cluster) GroupAllToAll(g, bytes int) sim.Dur {
	if g > c.N {
		g = c.N
	}
	if g < 2 {
		return 0
	}
	m := c.Model
	s := c.sendService(bytes)
	wire := m.SendOverhead + m.Latency + sim.Dur(bytes)*m.PsPerByte
	var worst sim.Time
	for j := 0; j < g; j++ {
		early := j        // messages from lower-ranked peers
		late := g - 1 - j // messages from higher-ranked peers
		var cpuFree sim.Time
		var last sim.Time
		if early > 0 {
			a1 := sim.Time(0).Add(sim.Dur(j-1)*s + wire)
			cpuFree = a1.Add(sim.Dur(early) * m.RecvOverhead)
			last = cpuFree
		}
		if late > 0 {
			a2 := sim.Time(0).Add(sim.Dur(j)*s + wire)
			start := a2
			if cpuFree > start {
				start = cpuFree
			}
			last = start.Add(sim.Dur(late) * m.RecvOverhead)
		}
		if last > worst {
			worst = last
		}
	}
	return worst.Sub(0)
}

// DesmondPhases returns the Table 3 Desmond communication-phase times in
// closed form, using the same calibrated parameters as the event model
// (cluster.DesmondDefaults).
func (c *Cluster) DesmondPhases() (cluster.PhaseTimes, error) {
	d := cluster.DesmondDefaults()
	var pt cluster.PhaseTimes
	pt.RangeLimitedComm = c.StagedNeighborExchange(d.PosBytes) + c.StagedNeighborExchange(d.ForceBytes)
	pt.FFTComm = sim.Dur(d.FFTRounds) * (c.GroupAllToAll(d.FFTGroup, d.FFTBytes) + c.Model.MarshalPerStage)
	ar, err := c.AllReduce(32)
	if err != nil {
		return pt, err
	}
	pt.ThermostatComm = 2*ar + d.ThermoSoftware
	pt.LongRangeComm = pt.RangeLimitedComm + pt.FFTComm + pt.ThermostatComm
	return pt, nil
}
