// Package analytic is the closed-form fast-path tier of the simulator:
// it answers point-to-point latency, collective-completion, and MD
// step-time queries in microseconds of wall time instead of a full
// discrete-event run, for both the Anton machine model and the
// InfiniBand cluster baseline.
//
// Everything here is derived from the same calibrated constants the
// event-driven models use (internal/noc for Anton, internal/cluster for
// the LogGP baseline); there are no independent magic numbers. Network
// queries are exact: the per-hop router latency, wire latency, and
// serialization terms reproduce the event simulator to the picosecond,
// including deterministic head-of-line queueing in packet trains (the
// convoy recurrences below), because the underlying resources grant
// service in arrival order. The MD step-time model is exact in its
// derived compute and pipeline terms and carries a calibrated residual
// fitted against one reference DES step (see step.go); its error bound
// is documented there and enforced by the differential test battery.
//
// The design follows Graphite's analytical network model tier and
// Agarwal's "Limits on Interconnect Network Performance": a contention
// model layered over a contention-free hop/serialization sum, checked
// against the event-driven ground truth. The bit-determinism of the DES
// makes that check mechanical: FuzzAnalyticVsDES drives both tiers over
// random topologies, routes, payloads, and collective shapes and
// requires agreement within the stated bound.
package analytic

import (
	"fmt"

	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// Anton answers closed-form queries about an Anton machine of the given
// torus under a noc timing model.
type Anton struct {
	Model noc.Model
	Torus topo.Torus
}

// NewAnton returns the analytic model of a machine with the default
// (paper-calibrated) noc timing on the given torus.
func NewAnton(t topo.Torus) *Anton {
	return &Anton{Model: noc.DefaultModel(), Torus: t}
}

// WireBytes returns the wire size of a packet carrying the given payload:
// payloads up to packet.InlineBytes ride inside the 32-byte header.
func WireBytes(payload int) int {
	if payload <= packet.InlineBytes {
		return packet.HeaderBytes
	}
	return packet.HeaderBytes + payload
}

// ValidatePayload rejects payload sizes the packet format cannot carry.
func ValidatePayload(payload int) error {
	if payload < 0 || payload > packet.MaxPayloadBytes {
		return fmt.Errorf("analytic: payload %d bytes outside [0,%d]", payload, packet.MaxPayloadBytes)
	}
	return nil
}

// PointToPoint returns the end-to-end latency of a single counted remote
// write between the given client kinds: injection, dimension-ordered
// route traversal, payload serialization, and delivery. Exact: equals
// the event simulator on an otherwise idle machine.
func (a *Anton) PointToPoint(src, dst topo.Coord, srcKind, dstKind packet.ClientKind, payload int) sim.Dur {
	hops := a.Torus.HopsByDim(src, dst)
	return a.Model.PathLatency(hops, srcKind, dstKind, WireBytes(payload))
}

// WriteLatency is PointToPoint for the paper's standard measurement: a
// counted remote write between the slice-0 clients of two nodes.
func (a *Anton) WriteLatency(src, dst topo.Coord, payload int) sim.Dur {
	return a.PointToPoint(src, dst, packet.Slice0, packet.Slice0, payload)
}

// Bidirectional returns the completion time of the Figure 5 ping-pong
// measurement: simultaneous opposite writes between src and dst, the
// slower direction reported. The two directions traverse disjoint
// directed links, so each is contention-free and the answer is the
// maximum of the two one-way latencies.
func (a *Anton) Bidirectional(src, dst topo.Coord, payload int) sim.Dur {
	fwd := a.WriteLatency(src, dst, payload)
	if src == dst {
		return fwd
	}
	rev := a.WriteLatency(dst, src, payload)
	if rev > fwd {
		return rev
	}
	return fwd
}

// DiameterCoord returns the coordinate at the torus diameter from the
// origin: the farthest minimal-route destination, half the ring size
// away in every dimension.
func (a *Anton) DiameterCoord() topo.Coord {
	return topo.C(a.Torus.DimX/2, a.Torus.DimY/2, a.Torus.DimZ/2)
}

// Diameter returns the worst-case point-to-point latency over all
// destinations: the latency to DiameterCoord. PathLatency is strictly
// increasing in per-dimension hop count, so the maximum is attained at
// the half-way point of every ring.
func (a *Anton) Diameter(payload int) sim.Dur {
	return a.WriteLatency(topo.C(0, 0, 0), a.DiameterCoord(), payload)
}

// Stream returns the completion time of a pipelined train of counted
// remote writes from one slice-0 client to another: the instant the last
// write has been delivered and counted. payloads lists the per-packet
// payload sizes in injection order.
//
// The train is paced by three resources, each granting in arrival
// order: the injection port (minimum inter-packet gap), every link of
// the dimension-ordered route (serialization-time occupancy — the
// bandwidth limit), and the destination's receive port. The convoy
// recurrence below reproduces the event simulator's head-of-line
// blocking exactly, in O(packets × hops) arithmetic.
func (a *Anton) Stream(src, dst topo.Coord, payloads []int) sim.Dur {
	m := &a.Model
	n := len(payloads)
	if n == 0 {
		return 0
	}
	route := a.Torus.Route(src, dst)
	gap := m.SendGap(packet.Slice0)
	sendLat := m.SendLatency(packet.Slice0)

	// linkFree[l] is the time link l of the route finishes its previous
	// packet; recvFree the same for the destination receive port.
	linkFree := make([]sim.Time, len(route))
	var recvFree sim.Time
	var last sim.Time
	for i, payload := range payloads {
		wire := WireBytes(payload)
		svc := m.LinkService(wire)
		start := sim.Time(0).Add(sim.Dur(i) * gap) // injection-port grant
		var avail sim.Time
		if len(route) == 0 {
			avail = start.Add(sendLat + m.LocalRing)
		} else {
			head := start.Add(sendLat + m.SrcRing)
			for l, hop := range route {
				s := head
				if linkFree[l] > s {
					s = linkFree[l]
				}
				linkFree[l] = s.Add(svc)
				arrival := s.Add(m.AdapterPair[hop.Port.Dim])
				if l == len(route)-1 {
					avail = arrival.Add(m.ExtraSerialization(wire) + m.DstRing)
				} else {
					head = arrival.Add(m.Through[route[l+1].Port.Dim])
				}
			}
		}
		rs := avail
		if recvFree > rs {
			rs = recvFree
		}
		recvFree = rs.Add(m.ClientService(packet.Slice0, wire))
		delivered := rs.Add(m.DeliverLatency(packet.Slice0))
		if delivered > last {
			last = delivered
		}
	}
	return last.Sub(0)
}

// Transfer returns the completion time of moving totalBytes from slice 0
// at src to slice 0 at dst split into count equal messages, each carried
// in as many maximum-payload packets as needed — the Anton side of the
// Figure 7 measurement.
func (a *Anton) Transfer(src, dst topo.Coord, totalBytes, count int) sim.Dur {
	per := totalBytes / count
	var payloads []int
	add := func(bytes int) {
		for bytes > 0 {
			chunk := bytes
			if chunk > packet.MaxPayloadBytes {
				chunk = packet.MaxPayloadBytes
			}
			payloads = append(payloads, chunk)
			bytes -= chunk
		}
	}
	for i := 0; i < count; i++ {
		bytes := per
		if i == count-1 {
			bytes = totalBytes - per*(count-1)
		}
		add(bytes)
	}
	return a.Stream(src, dst, payloads)
}
