package analytic_test

import (
	"testing"

	"anton/internal/analytic"
	"anton/internal/machine"
	"anton/internal/mdmap"
	"anton/internal/noc"
	"anton/internal/sim"
	"anton/internal/topo"
)

// desStepTimes runs four DES steps (two of each kind) and returns the
// steady-state total per kind — the ground truth for StepModel.
func desStepTimes(tor topo.Torus, cfg mdmap.Config, atoms int) map[mdmap.StepKind]sim.Dur {
	s := sim.New()
	m := machine.New(s, tor, noc.DefaultModel())
	cfg.Atoms = atoms
	mp := mdmap.New(s, m, cfg)
	out := make(map[mdmap.StepKind]sim.Dur)
	for i := 0; i < 4; i++ {
		st := mp.RunStep()
		out[st.Kind] = st.Total
	}
	return out
}

// TestStepModelWithinBound calibrates the step model on a small torus and
// checks the documented error-bound contract: exact at the two reference
// atom counts, within 5% of the DES at interior points of the bracket.
func TestStepModelWithinBound(t *testing.T) {
	tor := topo.NewTorus(4, 4, 4)
	cfg := mdmap.DefaultConfig()
	cfg.MigrationInterval = 0
	const lo, hi = 2500, 6000
	sm, err := analytic.CalibrateStep(tor, cfg, lo, hi, analytic.StepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	interior := []int{3000, 4000, 5000}
	if testing.Short() {
		interior = []int{4000}
	}
	check := func(atoms int, bound float64) {
		want := desStepTimes(tor, cfg, atoms)
		for _, kind := range []mdmap.StepKind{mdmap.RangeLimited, mdmap.LongRange} {
			got, err := sm.StepTime(kind, atoms)
			if err != nil {
				t.Fatalf("%d atoms %v: %v", atoms, kind, err)
			}
			rel := float64(got-want[kind]) / float64(want[kind])
			if rel < 0 {
				rel = -rel
			}
			if rel > bound {
				t.Errorf("%d atoms %v: model %v, DES %v (%.2f%% > %.1f%% bound)",
					atoms, kind, got, want[kind], rel*100, bound*100)
			}
		}
	}
	// Exact (zero error) at the calibration references by construction.
	check(lo, 0)
	check(hi, 0)
	for _, atoms := range interior {
		check(atoms, 0.05)
	}

	if sm.LinkStats.AnchorRatio <= 0 {
		t.Errorf("anchor ratio %v: link-occupancy feed missing", sm.LinkStats.AnchorRatio)
	}
	if sm.LinkStats.MeasuredBytesPerStep <= 0 {
		t.Errorf("measured link bytes per step %v: metrics feed missing", sm.LinkStats.MeasuredBytesPerStep)
	}
	if sm.LinkStats.PeakLinkUtilization <= 0 || sm.LinkStats.PeakLinkUtilization > 1 {
		t.Errorf("peak link utilization %v outside (0, 1]", sm.LinkStats.PeakLinkUtilization)
	}
}

// TestStepModelRefusals pins the step model's error paths: configurations
// and queries outside the closed-form tier's validity domain are refused,
// not approximated.
func TestStepModelRefusals(t *testing.T) {
	tor := topo.NewTorus(2, 2, 2)
	base := mdmap.DefaultConfig()
	base.MigrationInterval = 0

	t.Run("migration", func(t *testing.T) {
		cfg := base
		cfg.MigrationInterval = 8
		if _, err := analytic.CalibrateStep(tor, cfg, 300, 600, analytic.StepOptions{}); err == nil {
			t.Error("migration-enabled config: want refusal, got model")
		}
	})
	t.Run("inverted-bracket", func(t *testing.T) {
		if _, err := analytic.CalibrateStep(tor, base, 600, 300, analytic.StepOptions{}); err == nil {
			t.Error("inverted bracket: want error, got model")
		}
	})
	t.Run("no-long-range", func(t *testing.T) {
		cfg := base
		cfg.LongRangeInterval = -1
		if _, err := analytic.CalibrateStep(tor, cfg, 300, 600, analytic.StepOptions{}); err == nil {
			t.Error("LongRangeInterval<1: want error, got model")
		}
	})

	sm, err := analytic.CalibrateStep(tor, base, 300, 600, analytic.StepOptions{Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Run("outside-bracket", func(t *testing.T) {
		if _, err := sm.StepTime(mdmap.RangeLimited, 200); err == nil {
			t.Error("query below bracket: want refusal")
		}
		if _, err := sm.StepTime(mdmap.RangeLimited, 900); err == nil {
			t.Error("query above bracket: want refusal")
		}
	})
	t.Run("inside-bracket", func(t *testing.T) {
		if _, err := sm.StepTime(mdmap.LongRange, 450); err != nil {
			t.Errorf("query inside bracket: %v", err)
		}
		if _, err := sm.AverageStep(450); err != nil {
			t.Errorf("average step inside bracket: %v", err)
		}
	})
}
