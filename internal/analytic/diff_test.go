package analytic_test

import (
	"fmt"
	"testing"

	"anton/internal/analytic"
	"anton/internal/cluster"
	"anton/internal/collective"
	"anton/internal/machine"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// desWrite measures a single counted remote write on a fresh event-driven
// machine: the DES ground truth for PointToPoint.
func desWrite(tor topo.Torus, src, dst topo.Coord, payload int) sim.Dur {
	s := sim.New()
	m := machine.New(s, tor, noc.DefaultModel())
	a := packet.Client{Node: tor.ID(src), Kind: packet.Slice0}
	b := packet.Client{Node: tor.ID(dst), Kind: packet.Slice0}
	var done sim.Time
	m.Client(b).Wait(9, 1, func() { done = s.Now() })
	m.Client(a).Write(b, 9, 0, payload)
	s.Run()
	return sim.Dur(done)
}

// desStream measures a pipelined train of writes: the DES ground truth
// for Stream.
func desStream(tor topo.Torus, src, dst topo.Coord, payloads []int) sim.Dur {
	s := sim.New()
	m := machine.New(s, tor, noc.DefaultModel())
	a := m.Client(packet.Client{Node: tor.ID(src), Kind: packet.Slice0})
	b := packet.Client{Node: tor.ID(dst), Kind: packet.Slice0}
	var done sim.Time
	m.Client(b).Wait(3, uint64(len(payloads)), func() { done = s.Now() })
	for i, p := range payloads {
		a.Write(b, 3, i*64, p)
	}
	s.Run()
	return sim.Dur(done)
}

// desAllReduce measures the dimension-ordered all-reduce on a fresh
// machine: the DES ground truth for Anton.AllReduce.
func desAllReduce(tor topo.Torus, bytes int) sim.Dur {
	s := sim.New()
	m := machine.New(s, tor, noc.DefaultModel())
	ar := collective.NewAllReduce(m, collective.DefaultConfig(bytes))
	var done sim.Time
	ar.Run(nil, func(at sim.Time) { done = at })
	s.Run()
	return sim.Dur(done)
}

func analyticCollective(bytes int) analytic.CollectiveConfig {
	c := collective.DefaultConfig(bytes)
	return analytic.CollectiveConfig{
		Bytes: c.Bytes, Values: c.Values,
		PerValueAdd: c.PerValueAdd, RoundOverhead: c.RoundOverhead,
	}
}

func TestPointToPointMatchesDES(t *testing.T) {
	tori := []topo.Torus{topo.NewTorus(8, 8, 8), topo.NewTorus(4, 4, 4), topo.NewTorus(2, 4, 8), topo.NewTorus(3, 5, 2)}
	for _, tor := range tori {
		a := analytic.NewAnton(tor)
		cases := []struct {
			src, dst topo.Coord
			payload  int
		}{
			{topo.C(0, 0, 0), topo.C(1, 0, 0), 0},
			{topo.C(0, 0, 0), topo.C(1, 0, 0), 256},
			{topo.C(0, 0, 0), topo.C(0, 0, 0), 0},
			{topo.C(0, 0, 0), topo.C(0, 1, 1), 8},
			{topo.C(1, 2, 1), topo.C(0, 0, 0), 100},
			{topo.C(0, 0, 0), a.DiameterCoord(), 256},
			{topo.C(1, 1, 1), topo.C(0, 3, 1), 33},
		}
		for _, tc := range cases {
			tc.src, tc.dst = tor.Wrap(tc.src), tor.Wrap(tc.dst)
			want := desWrite(tor, tc.src, tc.dst, tc.payload)
			got := a.WriteLatency(tc.src, tc.dst, tc.payload)
			if got != want {
				t.Errorf("%v %v->%v %dB: analytic %v, DES %v", tor, tc.src, tc.dst, tc.payload, got, want)
			}
		}
	}
}

func TestStreamMatchesDES(t *testing.T) {
	tor := topo.NewTorus(8, 8, 8)
	a := analytic.NewAnton(tor)
	cases := []struct {
		dst      topo.Coord
		payloads []int
	}{
		{topo.C(1, 0, 0), []int{256, 256, 256, 256, 256, 256, 256, 256}},
		{topo.C(4, 0, 0), []int{256, 256, 256, 256}},
		{topo.C(1, 1, 0), []int{85, 85, 85, 85, 85, 93}},
		{topo.C(0, 0, 0), []int{64, 64, 64}},
		{topo.C(2, 3, 1), []int{0, 8, 16, 256, 4, 128}},
		{topo.C(1, 0, 0), []int{32}},
	}
	for _, tc := range cases {
		want := desStream(tor, topo.C(0, 0, 0), tc.dst, tc.payloads)
		got := a.Stream(topo.C(0, 0, 0), tc.dst, tc.payloads)
		if got != want {
			t.Errorf("stream ->%v %v: analytic %v, DES %v", tc.dst, tc.payloads, got, want)
		}
	}
	// Figure 7 message-count sweep at 1 and 4 hops.
	for _, hops := range []int{1, 4} {
		for _, count := range []int{1, 2, 8, 24, 64} {
			want := desStreamTransfer(tor, hops, 2048, count)
			got := a.Transfer(topo.C(0, 0, 0), topo.C(hops, 0, 0), 2048, count)
			if got != want {
				t.Errorf("transfer %d hops %d msgs: analytic %v, DES %v", hops, count, got, want)
			}
		}
	}
}

// desStreamTransfer mirrors the harness antonTransfer workload.
func desStreamTransfer(tor topo.Torus, hops, totalBytes, count int) sim.Dur {
	per := totalBytes / count
	var payloads []int
	add := func(bytes int) {
		for bytes > 0 {
			chunk := bytes
			if chunk > packet.MaxPayloadBytes {
				chunk = packet.MaxPayloadBytes
			}
			payloads = append(payloads, chunk)
			bytes -= chunk
		}
	}
	for i := 0; i < count; i++ {
		bytes := per
		if i == count-1 {
			bytes = totalBytes - per*(count-1)
		}
		add(bytes)
	}
	return desStream(tor, topo.C(0, 0, 0), topo.C(hops, 0, 0), payloads)
}

func TestAllReduceMatchesDES(t *testing.T) {
	tori := []topo.Torus{
		topo.NewTorus(8, 8, 8), topo.NewTorus(4, 4, 4), topo.NewTorus(8, 2, 8),
		topo.NewTorus(8, 8, 4), topo.NewTorus(2, 2, 2), topo.NewTorus(1, 1, 1),
		topo.NewTorus(3, 1, 5), topo.NewTorus(8, 8, 16),
	}
	for _, tor := range tori {
		for _, bytes := range []int{0, 32, 256} {
			want := desAllReduce(tor, bytes)
			got := analytic.NewAnton(tor).AllReduce(analyticCollective(bytes))
			if got != want {
				t.Errorf("%v all-reduce %dB: analytic %v, DES %v", tor, bytes, got, want)
			}
		}
	}
}

func TestClusterMatchesDES(t *testing.T) {
	model := cluster.DDR2InfiniBand()

	t.Run("ping", func(t *testing.T) {
		for _, bytes := range []int{0, 32, 2048} {
			s := sim.New()
			c := cluster.New(s, 2, model)
			var done sim.Time
			c.Send(0, 1, bytes, func(at sim.Time) { done = at })
			s.Run()
			if got, want := analytic.NewCluster(2).Ping(bytes), sim.Dur(done); got != want {
				t.Errorf("ping %dB: analytic %v, DES %v", bytes, got, want)
			}
		}
	})

	t.Run("many-messages", func(t *testing.T) {
		for _, count := range []int{1, 2, 4, 16, 24, 64} {
			s := sim.New()
			c := cluster.New(s, 2, model)
			var done sim.Time
			c.TransferManyMessages(0, 1, 2048, count, func(at sim.Time) { done = at })
			s.Run()
			if got, want := analytic.NewCluster(2).ManyMessages(2048, count), sim.Dur(done); got != want {
				t.Errorf("2KB in %d msgs: analytic %v, DES %v", count, got, want)
			}
		}
	})

	t.Run("all-reduce", func(t *testing.T) {
		for _, n := range []int{2, 16, 64, 512} {
			s := sim.New()
			c := cluster.New(s, n, model)
			var done sim.Time
			c.AllReduce(32, func(at sim.Time) { done = at })
			s.Run()
			got, err := analytic.NewCluster(n).AllReduce(32)
			if err != nil {
				t.Fatal(err)
			}
			if want := sim.Dur(done); got != want {
				t.Errorf("%d-rank all-reduce: analytic %v, DES %v", n, got, want)
			}
		}
		if _, err := analytic.NewCluster(48).AllReduce(32); err == nil {
			t.Error("48-rank all-reduce: want power-of-two error, got nil")
		}
	})

	t.Run("staged-exchange", func(t *testing.T) {
		for _, bytes := range []int{64, 2200} {
			s := sim.New()
			c := cluster.New(s, 512, model)
			var done sim.Time
			c.StagedNeighborExchange(bytes, func(at sim.Time) { done = at })
			s.Run()
			if got, want := analytic.NewCluster(512).StagedNeighborExchange(bytes), sim.Dur(done); got != want {
				t.Errorf("staged %dB: analytic %v, DES %v", bytes, got, want)
			}
		}
	})

	t.Run("desmond-phases", func(t *testing.T) {
		want := cluster.Measure(512, model)
		got, err := analytic.NewCluster(512).DesmondPhases()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Desmond phases: analytic %+v, DES %+v", got, want)
		}
	})
}

func ExampleAnton_Diameter() {
	a := analytic.NewAnton(topo.NewTorus(8, 8, 8))
	fmt.Println(a.Diameter(0))
	// Output: 822.000ns
}
