package analytic

import (
	"fmt"
	"math"

	"anton/internal/machine"
	"anton/internal/mdmap"
	"anton/internal/metrics"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// StepParams are the per-configuration quantities the step-time model is
// a function of. They are extracted from an mdmap.Mapping — the same
// spatial decomposition, bond program, and fixed packet counts the
// event-driven workload uses — without running the simulator.
type StepParams struct {
	Atoms      int // configured atom count
	PosN       int // position packets per node per step
	ForceN     int // force packets per (HTIS, import source)
	SrcCount   int // max position-multicast fan-in of any HTIS
	ImpCount   int // max import-region size of any node
	MaxAtoms   int // max atoms on any node
	Pairs      int // range-limited pairs per node
	Grid       int // FFT grid points per node
	BondSends  int // max bond position packets sent by any node
	BondTerms  int // max bond positions received by any term node
	BondForces int // max bond force packets expected at any accum
	ForceWire  int // wire bytes of one aggregated force packet
}

// CalibrationLinkStats is the link-occupancy evidence extracted from the
// calibration runs' metrics recorder: it anchors the contention term's
// traffic scalar to measured wire bytes and bounds the model's validity
// domain (a saturated link means queueing is no longer near-linear in
// offered load, so calibration refuses).
type CalibrationLinkStats struct {
	// MeasuredBytesPerStep: wire bytes serialized per step per node at the
	// high reference, summed over all links (from metrics.Links()).
	MeasuredBytesPerStep float64
	// PredictedBytesPerStep: the closed-form traffic scalar at the high
	// reference, before anchoring. AnchorRatio = Measured/Predicted scales
	// the traffic model into measured-byte units.
	PredictedBytesPerStep float64
	AnchorRatio           float64
	// PeakLinkUtilization: busiest link's occupancy fraction over the high
	// reference run.
	PeakLinkUtilization float64
	// QueuedShare: fraction of packets that found their link busy.
	QueuedShare float64
	// MaxQueueWait: worst head-of-line link wait observed.
	MaxQueueWait sim.Dur
}

// maxLinkUtilization is the validity ceiling for the busiest link at the
// high calibration reference: beyond it, queueing grows super-linearly in
// offered load and the linear contention term is no longer trustworthy.
const maxLinkUtilization = 0.98

// StepModel answers MD step-time queries in closed form for one
// (torus, workload configuration) pair, after a one-time two-point DES
// calibration (see CalibrateStep).
//
// The model is
//
//	T(kind, atoms) = D(kind, params) + Kappa[kind]·B(kind, params) + Resid[kind]
//
// where D sums the derived critical-path terms (the saturated HTIS
// receive port during the position import, the range-limited pair
// arithmetic, the bond-program branch, grid spreading/interpolation, the
// force-return drain, integration, and the thermostat's kinetic-energy,
// all-reduce, and adjustment legs — each a closed form over StepParams
// and the calibrated noc constants), B is the offered link-traffic
// scalar in measured wire bytes (anchored to the calibration runs' link
// occupancy, see CalibrationLinkStats), and Kappa/Resid are fitted so
// the model is exact at both calibration references.
//
// Error-bound contract: exact at the two reference atom counts by
// construction; within the documented 5% of the event simulator for any
// atoms in [LoAtoms, HiAtoms] (enforced by the differential battery);
// refused outside the bracket, where the linear contention term is
// unvalidated.
type StepModel struct {
	Torus topo.Torus
	Cfg   mdmap.Config
	Model noc.Model

	LoAtoms, HiAtoms int

	// Per-kind fitted contention slope (ps of critical-path time per
	// anchored traffic byte), the low-reference residual it is measured
	// from, and the low reference's anchored traffic scalar. The
	// contention term is evaluated as a rounded delta from the low
	// reference so the model reproduces both references to the picosecond.
	Kappa map[mdmap.StepKind]float64
	Resid map[mdmap.StepKind]sim.Dur
	BLo   map[mdmap.StepKind]float64
	// Reference step times at both calibration points (the DES ground
	// truth the fit is pinned to).
	RefLo, RefHi map[mdmap.StepKind]sim.Dur
	// FFTExtent: the distributed convolution's measured extent at the low
	// reference (grid-driven, atoms-independent; load-driven growth is
	// carried by the contention term).
	FFTExtent sim.Dur

	LinkStats CalibrationLinkStats

	newSim func() *sim.Sim
	params map[int]StepParams // cache: atoms -> extracted params
}

// StepOptions tunes CalibrateStep.
type StepOptions struct {
	// NewSim constructs the simulators for the calibration runs; nil means
	// sim.New. The harness passes its worker-pool constructor so fastpath
	// reports stay identical at any -workers.
	NewSim func() *sim.Sim
	// Steps per calibration run (at least one of each step kind must
	// occur); 0 means 4, matching the Table 3 measurement convention.
	Steps int
}

// CalibrateStep builds a StepModel for the given torus and workload
// configuration by running the event simulator at two reference atom
// counts, loAtoms < hiAtoms, and fitting the contention slope and
// residual per step kind. cfg.Atoms is ignored; migration must be
// disabled (the FIFO-driven migration phase is stochastic communication
// the closed-form tier does not model).
func CalibrateStep(tor topo.Torus, cfg mdmap.Config, loAtoms, hiAtoms int, opt StepOptions) (*StepModel, error) {
	if cfg.MigrationInterval != 0 {
		return nil, fmt.Errorf("analytic: step model does not cover migration (MigrationInterval=%d); disable it or use the DES tier", cfg.MigrationInterval)
	}
	if cfg.LongRangeInterval < 1 {
		return nil, fmt.Errorf("analytic: step model requires LongRangeInterval >= 1, got %d", cfg.LongRangeInterval)
	}
	if loAtoms >= hiAtoms || loAtoms <= 0 {
		return nil, fmt.Errorf("analytic: calibration needs 0 < loAtoms < hiAtoms, got %d, %d", loAtoms, hiAtoms)
	}
	newSim := opt.NewSim
	if newSim == nil {
		newSim = sim.New
	}
	steps := opt.Steps
	if steps == 0 {
		steps = 4
	}
	sm := &StepModel{
		Torus: tor, Cfg: cfg, Model: noc.DefaultModel(),
		LoAtoms: loAtoms, HiAtoms: hiAtoms,
		Kappa: make(map[mdmap.StepKind]float64),
		Resid: make(map[mdmap.StepKind]sim.Dur),
		BLo:   make(map[mdmap.StepKind]float64),
		RefLo: make(map[mdmap.StepKind]sim.Dur),
		RefHi: make(map[mdmap.StepKind]sim.Dur),

		newSim: newSim,
		params: make(map[int]StepParams),
	}

	lo, err := sm.reference(loAtoms, steps)
	if err != nil {
		return nil, err
	}
	sm.FFTExtent = lo.fft
	hi, err := sm.reference(hiAtoms, steps)
	if err != nil {
		return nil, err
	}
	sm.RefLo, sm.RefHi = lo.times, hi.times

	// Anchor the traffic scalar to the measured link bytes of the high
	// reference run, and bound the validity domain.
	if hi.stats.PeakLinkUtilization > maxLinkUtilization {
		return nil, fmt.Errorf("analytic: busiest link %.0f%% utilized at the high reference — network saturated, linear contention model refused",
			hi.stats.PeakLinkUtilization*100)
	}
	sm.LinkStats = hi.stats
	anchor := sm.LinkStats.AnchorRatio

	for kind, tHi := range hi.times {
		tLo, ok := lo.times[kind]
		if !ok {
			return nil, fmt.Errorf("analytic: step kind %v observed only at the high reference", kind)
		}
		dLo := sm.derived(kind, lo.params)
		dHi := sm.derived(kind, hi.params)
		bLo := anchor * sm.traffic(kind, lo.params)
		bHi := anchor * sm.traffic(kind, hi.params)
		if bHi <= bLo {
			return nil, fmt.Errorf("analytic: degenerate calibration — offered traffic does not grow between references (%g vs %g)", bLo, bHi)
		}
		rLo, rHi := tLo-dLo, tHi-dHi
		sm.Kappa[kind] = float64(rHi-rLo) / (bHi - bLo)
		sm.Resid[kind] = rLo
		sm.BLo[kind] = bLo
	}
	return sm, nil
}

// reference holds one calibration run's outputs.
type reference struct {
	params StepParams
	times  map[mdmap.StepKind]sim.Dur
	fft    sim.Dur
	stats  CalibrationLinkStats
}

// reference runs the event simulator at the given atom count and
// extracts step times, mapping parameters, and link-occupancy evidence.
func (sm *StepModel) reference(atoms, steps int) (reference, error) {
	s := sm.newSim()
	rec := metrics.Attach(s)
	m := machine.New(s, sm.Torus, sm.Model)
	cfg := sm.Cfg
	cfg.Atoms = atoms
	mp := mdmap.New(s, m, cfg)

	ref := reference{times: make(map[mdmap.StepKind]sim.Dur)}
	ref.params = extractParams(mp, atoms)
	sm.params[atoms] = ref.params

	counted := make(map[mdmap.StepKind]int)
	for i := 0; i < steps; i++ {
		st := mp.RunStep()
		ref.times[st.Kind] = st.Total // last of each kind: steady state
		counted[st.Kind]++
		if st.FFT > 0 {
			ref.fft = st.FFT
		}
	}
	if len(ref.times) == 0 {
		return ref, fmt.Errorf("analytic: calibration ran no steps")
	}

	// Link-occupancy statistics: the contention term's measured feed.
	var bytes, packets, queued uint64
	var peakBusy, maxWait sim.Dur
	for _, lr := range rec.Links() {
		bytes += lr.Bytes
		packets += lr.Packets
		queued += lr.Queued
		if lr.Busy > peakBusy {
			peakBusy = lr.Busy
		}
		if lr.MaxWait > maxWait {
			maxWait = lr.MaxWait
		}
	}
	var predicted float64
	for kind, n := range counted {
		predicted += float64(n) * sm.traffic(kind, ref.params)
	}
	nodes := float64(sm.Torus.Nodes())
	stepsRun := float64(steps)
	ref.stats = CalibrationLinkStats{
		MeasuredBytesPerStep:  float64(bytes) / stepsRun / nodes,
		PredictedBytesPerStep: predicted / stepsRun,
		MaxQueueWait:          maxWait,
	}
	if packets > 0 {
		ref.stats.QueuedShare = float64(queued) / float64(packets)
	}
	if total := s.Now().Sub(0); total > 0 {
		ref.stats.PeakLinkUtilization = float64(peakBusy) / float64(total)
	}
	if ref.stats.PredictedBytesPerStep > 0 {
		ref.stats.AnchorRatio = ref.stats.MeasuredBytesPerStep / ref.stats.PredictedBytesPerStep
	} else {
		ref.stats.AnchorRatio = 1
	}
	return ref, nil
}

// extractParams reads the model inputs off a built mapping.
func extractParams(mp *mdmap.Mapping, atoms int) StepParams {
	return StepParams{
		Atoms:      atoms,
		PosN:       mp.PosPackets(),
		ForceN:     mp.ForcePackets(),
		SrcCount:   mp.MaxSrcCount(),
		ImpCount:   mp.MaxImportCount(),
		MaxAtoms:   mp.MaxAtomsPerNode(),
		Pairs:      mp.PairsPerNode(),
		Grid:       mp.GridPerNode(),
		BondSends:  mp.MaxBondSendsBy(),
		BondTerms:  mp.MaxBondTermsAt(),
		BondForces: mp.MaxBondForcesAt(),
		ForceWire:  HeaderedWire(mp.ForceWireBytes()),
	}
}

// HeaderedWire returns payload plus the packet header (unconditionally —
// for payloads above the inline threshold).
func HeaderedWire(payload int) int { return packet.HeaderBytes + payload }

// Params returns the step-model inputs for the given atom count,
// building (and caching) the mapping if needed. This is the only
// per-query cost of a step-time query; no simulator events run.
func (sm *StepModel) Params(atoms int) StepParams {
	if p, ok := sm.params[atoms]; ok {
		return p
	}
	s := sim.New()
	m := machine.New(s, sm.Torus, sm.Model)
	cfg := sm.Cfg
	cfg.Atoms = atoms
	mp := mdmap.New(s, m, cfg)
	p := extractParams(mp, atoms)
	sm.params[atoms] = p
	return p
}

// derived sums the closed-form critical-path terms for one step kind.
func (sm *StepModel) derived(kind mdmap.StepKind, p StepParams) sim.Dur {
	m := &sm.Model
	cfg := sm.Cfg

	posWire := WireBytes(cfg.PosBytes)
	// Position import: the HTIS receive port is saturated (SrcCount
	// gap-paced streams exceed its service rate), so the wait is the
	// port's total service demand.
	satPos := sim.Dur(p.SrcCount*p.PosN) * m.ClientService(packet.HTIS, posWire)
	// Range-limited pair arithmetic (force sends overlap the chunks).
	rlCompute := sim.Dur(p.Pairs) * cfg.HTISPairPs
	rlBranch := satPos + rlCompute

	// Bond branch: position injection pacing at the slice-1 send port,
	// per-term geometry-core arithmetic, force injection pacing, and the
	// accumulation-port drain of the returning forces.
	bondBranch := sim.Dur(p.BondSends)*m.SliceSendGap +
		sim.Dur(p.BondTerms)*(cfg.BondTermPs+m.SliceSendGap) +
		sim.Dur(p.BondForces)*m.ClientService(packet.Accum0, WireBytes(24))

	integrate := sim.Dur(p.MaxAtoms)*cfg.IntegratePerAtom + cfg.StepSoftware

	if kind == mdmap.RangeLimited {
		return maxDur(rlBranch, bondBranch) + integrate
	}

	// Long-range step: charge spreading precedes the range-limited
	// chunks on the HTIS; the FFT path (charges in, convolution,
	// potentials out, interpolation, second force group) runs
	// concurrently and the integration waits for the later branch.
	spread := sim.Dur(p.Grid) * cfg.SpreadPerPoint
	interp := sim.Dur(p.Grid) * cfg.InterpPerPoint
	evenN := sim.Dur((p.ForceN + 1) / 2)
	lrDrain := sim.Dur(p.SrcCount) * evenN * m.ClientService(packet.Accum0, p.ForceWire)
	fftBranch := satPos + spread + interp + lrDrain + sm.FFTExtent
	lrRL := satPos + spread + rlCompute

	// Thermostat: kinetic energy on every node, the dimension-ordered
	// global all-reduce (closed form, exact), and the adjustment.
	thermo := sim.Dur(0)
	if cfg.ThermostatOn {
		a := &Anton{Model: sm.Model, Torus: sm.Torus}
		allred := a.AllReduce(DefaultCollective(32, 2200*sim.Ps, 70*sim.Ns))
		thermo = sim.Dur(p.MaxAtoms)*cfg.KEPerAtom + allred + cfg.ThermoAdjust
	}
	return maxDur(maxDur(lrRL, fftBranch), bondBranch) + integrate + thermo
}

// traffic is the offered link-traffic scalar for one step kind: wire
// bytes per node per step weighted by route length, before anchoring to
// the measured calibration bytes. It only needs to scale correctly with
// the configuration — the anchor ratio and the fitted slope carry the
// units.
func (sm *StepModel) traffic(kind mdmap.StepKind, p StepParams) float64 {
	posWire := float64(WireBytes(sm.Cfg.PosBytes))
	common := float64(p.PosN)*posWire*float64(p.ImpCount-1) + // position multicast tree
		float64(p.BondSends)*float64(WireBytes(32))*2 + // bond positions, ~2 hops
		float64(p.BondTerms)*float64(WireBytes(24))*2 + // bond forces back
		float64(p.ImpCount)*float64(p.ForceN)*float64(p.ForceWire)*1.7 // rl force returns
	if kind == mdmap.RangeLimited {
		return common
	}
	// Long-range adds the second force group and the charge/potential
	// grid halo exchange (atoms-independent).
	const gridHalo = 16 * (192 + 32) * 2
	return common*2 + gridHalo
}

// StepTime returns the modelled total time of one step of the given kind
// at the given atom count. Queries outside the calibration bracket are
// refused: the contention term is only validated within it.
func (sm *StepModel) StepTime(kind mdmap.StepKind, atoms int) (sim.Dur, error) {
	if atoms < sm.LoAtoms || atoms > sm.HiAtoms {
		return 0, fmt.Errorf("analytic: %d atoms outside the calibrated bracket [%d, %d]", atoms, sm.LoAtoms, sm.HiAtoms)
	}
	kappa, ok := sm.Kappa[kind]
	if !ok {
		return 0, fmt.Errorf("analytic: step kind %v was not observed during calibration", kind)
	}
	p := sm.Params(atoms)
	b := sm.LinkStats.AnchorRatio * sm.traffic(kind, p)
	contention := sim.Dur(math.Round(kappa * (b - sm.BLo[kind])))
	return sm.derived(kind, p) + sm.Resid[kind] + contention, nil
}

// AverageStep returns the mean of one range-limited and one long-range
// step — the Table 3 "average time step" convention.
func (sm *StepModel) AverageStep(atoms int) (sim.Dur, error) {
	rl, err := sm.StepTime(mdmap.RangeLimited, atoms)
	if err != nil {
		return 0, err
	}
	lr, err := sm.StepTime(mdmap.LongRange, atoms)
	if err != nil {
		return 0, err
	}
	return (rl + lr) / 2, nil
}

func maxDur(a, b sim.Dur) sim.Dur {
	if a > b {
		return a
	}
	return b
}
