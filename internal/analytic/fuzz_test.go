package analytic_test

import (
	"testing"

	"anton/internal/analytic"
	"anton/internal/cluster"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// fuzzTorus maps a selector to a small torus (kept small so each fuzz
// iteration's DES reference run is fast).
func fuzzTorus(sel uint8) topo.Torus {
	switch sel % 6 {
	case 0:
		return topo.NewTorus(2, 2, 2)
	case 1:
		return topo.NewTorus(4, 4, 4)
	case 2:
		return topo.NewTorus(1, 1, 1)
	case 3:
		return topo.NewTorus(3, 1, 5)
	case 4:
		return topo.NewTorus(2, 4, 8)
	default:
		return topo.NewTorus(4, 2, 1)
	}
}

// FuzzAnalyticVsDES is the fast-path differential fuzz target: for
// random topologies, routes, payload trains, collective shapes, and
// cluster transfers, the closed-form tier must agree with the
// event-driven simulator exactly (the network queries' documented bound
// is zero error). Any divergence is a bug in one of the two tiers.
func FuzzAnalyticVsDES(f *testing.F) {
	// Seed corpus: each query class on each topology class, plus payload
	// and count edge cases. ci.sh replays the checked-in corpus as
	// regular tests.
	f.Add(uint64(1), uint8(0), uint8(0), uint16(0), uint8(1))
	f.Add(uint64(2), uint8(1), uint8(0), uint16(256), uint8(1))
	f.Add(uint64(3), uint8(2), uint8(1), uint16(64), uint8(8))
	f.Add(uint64(4), uint8(3), uint8(1), uint16(8), uint8(24))
	f.Add(uint64(5), uint8(4), uint8(2), uint16(32), uint8(0))
	f.Add(uint64(6), uint8(5), uint8(2), uint16(256), uint8(3))
	f.Add(uint64(7), uint8(0), uint8(3), uint16(2048), uint8(16))
	f.Add(uint64(8), uint8(1), uint8(4), uint16(2200), uint8(64))
	f.Fuzz(func(t *testing.T, seed uint64, topoSel, querySel uint8, payload uint16, count uint8) {
		tor := fuzzTorus(topoSel)
		a := analytic.NewAnton(tor)
		pick := func(mod uint64) int { // cheap deterministic splitter
			seed = seed*6364136223846793005 + 1442695040888963407
			return int((seed >> 33) % mod)
		}
		coord := func() topo.Coord {
			return topo.C(pick(uint64(tor.DimX)), pick(uint64(tor.DimY)), pick(uint64(tor.DimZ)))
		}
		switch querySel % 5 {
		case 0: // single counted remote write
			src, dst := coord(), coord()
			bytes := int(payload) % (packet.MaxPayloadBytes + 1)
			want := desWrite(tor, src, dst, bytes)
			if got := a.WriteLatency(src, dst, bytes); got != want {
				t.Fatalf("write %v->%v %dB on %v: analytic %v, DES %v", src, dst, bytes, tor, got, want)
			}
		case 1: // pipelined packet train
			src, dst := coord(), coord()
			n := int(count)%24 + 1
			payloads := make([]int, n)
			for i := range payloads {
				payloads[i] = (int(payload) + i*pick(97)) % (packet.MaxPayloadBytes + 1)
			}
			want := desStream(tor, src, dst, payloads)
			if got := a.Stream(src, dst, payloads); got != want {
				t.Fatalf("stream %v->%v %v on %v: analytic %v, DES %v", src, dst, payloads, tor, got, want)
			}
		case 2: // dimension-ordered global all-reduce
			bytes := int(payload) % (packet.MaxPayloadBytes + 1)
			bytes -= bytes % 4 // the reduction operates on 4-byte values
			want := desAllReduce(tor, bytes)
			if got := a.AllReduce(analyticCollective(bytes)); got != want {
				t.Fatalf("all-reduce %dB on %v: analytic %v, DES %v", bytes, tor, got, want)
			}
		case 3: // cluster many-message transfer
			total := int(payload) + 1
			n := int(count)%32 + 1
			s := sim.New()
			c := cluster.New(s, 2, cluster.DDR2InfiniBand())
			var done sim.Time
			c.TransferManyMessages(0, 1, total, n, func(at sim.Time) { done = at })
			s.Run()
			if got, want := analytic.NewCluster(2).ManyMessages(total, n), sim.Dur(done); got != want {
				t.Fatalf("cluster %dB in %d msgs: analytic %v, DES %v", total, n, got, want)
			}
		default: // cluster staged neighbour exchange
			bytes := int(payload)
			s := sim.New()
			c := cluster.New(s, 8, cluster.DDR2InfiniBand())
			var done sim.Time
			c.StagedNeighborExchange(bytes, func(at sim.Time) { done = at })
			s.Run()
			if got, want := analytic.NewCluster(8).StagedNeighborExchange(bytes), sim.Dur(done); got != want {
				t.Fatalf("staged exchange %dB: analytic %v, DES %v", bytes, got, want)
			}
		}
	})
}
