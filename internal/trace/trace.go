// Package trace is the software counterpart of Anton's logic analyzer: an
// on-chip diagnostic facility the authors used to monitor ASIC activity
// (Figure 13). Models record activity spans per unit class; the renderer
// produces a textual timeline with one column per unit class, mirroring
// the paper's figure: torus-link traffic on the left, computational units
// (Tensilica cores, geometry cores, HTIS) on the right, with stall time
// distinguished from useful work.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"anton/internal/sim"
)

// Unit identifies a class of hardware unit whose activity is traced.
type Unit int

// The unit classes of Figure 13: six torus link directions, the Tensilica
// cores, the geometry cores, and the HTIS units.
const (
	LinkXPlus Unit = iota
	LinkXMinus
	LinkYPlus
	LinkYMinus
	LinkZPlus
	LinkZMinus
	TS  // Tensilica cores
	GC  // geometry cores
	HTI // HTIS units
	NumUnits
)

var unitNames = [NumUnits]string{"X+", "X-", "Y+", "Y-", "Z+", "Z-", "TS", "GC", "HTIS"}

func (u Unit) String() string {
	if u >= 0 && u < NumUnits {
		return unitNames[u]
	}
	return fmt.Sprintf("Unit(%d)", int(u))
}

// Span is one recorded activity interval.
type Span struct {
	Unit  Unit
	Start sim.Time
	End   sim.Time
	// Label names the activity (e.g. "position send", "range-limited").
	Label string
	// Stall marks time a unit spent waiting for data (light gray in the
	// paper's figure).
	Stall bool
}

// Tracer accumulates spans.
type Tracer struct {
	spans []Span
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// Add records a span. Inverted spans (end before start) are dropped;
// zero-width spans (end == start) are kept — they mark instantaneous
// events such as a counter firing, contribute no busy time, and render
// as a single tick on the timeline.
func (t *Tracer) Add(u Unit, start, end sim.Time, label string, stall bool) {
	if end < start {
		return
	}
	t.spans = append(t.spans, Span{Unit: u, Start: start, End: end, Label: label, Stall: stall})
}

// Spans returns all recorded spans sorted by start time.
func (t *Tracer) Spans() []Span {
	out := append([]Span(nil), t.spans...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Busy returns the total (possibly overlapping) recorded time on unit u,
// optionally excluding stalls.
func (t *Tracer) Busy(u Unit, includeStalls bool) sim.Dur {
	var total sim.Dur
	for _, s := range t.spans {
		if s.Unit == u && (includeStalls || !s.Stall) {
			total += s.End.Sub(s.Start)
		}
	}
	return total
}

// Occupancy returns the fraction of [from, to] during which unit u has at
// least one span active (union of intervals, so overlapping spans are not
// double counted).
func (t *Tracer) Occupancy(u Unit, from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	type edge struct {
		at    sim.Time
		delta int
	}
	var edges []edge
	for _, s := range t.spans {
		if s.Unit != u || s.End <= from || s.Start >= to {
			continue
		}
		st, en := s.Start, s.End
		if st < from {
			st = from
		}
		if en > to {
			en = to
		}
		edges = append(edges, edge{st, +1}, edge{en, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta > edges[j].delta
	})
	var covered sim.Dur
	depth := 0
	var openAt sim.Time
	for _, e := range edges {
		if depth == 0 && e.delta > 0 {
			openAt = e.at
		}
		depth += e.delta
		if depth == 0 && e.delta < 0 {
			covered += e.at.Sub(openAt)
		}
	}
	return float64(covered) / float64(to.Sub(from))
}

// Timeline renders the Figure 13-style textual timeline: rows are time
// buckets of the given width, columns are unit classes. Each cell shows
// '#' when the unit is mostly busy with useful work, '+' when partially
// busy, '.' when mostly stalled, and ' ' when idle.
func (t *Tracer) Timeline(from, to sim.Time, bucket sim.Dur) string {
	var b strings.Builder
	b.WriteString("      time |")
	for u := Unit(0); u < NumUnits; u++ {
		fmt.Fprintf(&b, "%4s|", u)
	}
	b.WriteByte('\n')
	for start := from; start < to; start = start.Add(bucket) {
		end := start.Add(bucket)
		if end > to {
			end = to
		}
		fmt.Fprintf(&b, "%8.2fus |", start.Us())
		for u := Unit(0); u < NumUnits; u++ {
			busyFrac := t.occupancyFiltered(u, start, end, false)
			allFrac := t.Occupancy(u, start, end)
			cell := ' '
			switch {
			case busyFrac >= 0.5:
				cell = '#'
			case busyFrac > 0.05:
				cell = '+'
			case allFrac > 0.05:
				cell = '.'
			case t.hasInstant(u, start, end):
				// A zero-width span covers no time but still happened
				// here: render it as a single tick rather than idle.
				cell = '|'
			}
			fmt.Fprintf(&b, " %c%c |", cell, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// hasInstant reports whether unit u has a zero-width span in [from, to).
func (t *Tracer) hasInstant(u Unit, from, to sim.Time) bool {
	for _, s := range t.spans {
		if s.Unit == u && s.Start == s.End && s.Start >= from && s.Start < to {
			return true
		}
	}
	return false
}

// occupancyFiltered is Occupancy restricted to stall or non-stall spans.
func (t *Tracer) occupancyFiltered(u Unit, from, to sim.Time, stalls bool) float64 {
	sub := New()
	for _, s := range t.spans {
		if s.Unit == u && s.Stall == stalls {
			sub.spans = append(sub.spans, s)
		}
	}
	return sub.Occupancy(u, from, to)
}

// Phases summarizes the labelled activity: for each distinct label, the
// earliest start and latest end across all units, in chronological order
// of first appearance. This reproduces the right-hand annotations of
// Figure 13 ("position send", "range-limited interactions", ...).
func (t *Tracer) Phases() []PhaseSummary {
	order := []string{}
	agg := map[string]*PhaseSummary{}
	for _, s := range t.Spans() {
		if s.Label == "" {
			continue
		}
		ps, ok := agg[s.Label]
		if !ok {
			ps = &PhaseSummary{Label: s.Label, Start: s.Start, End: s.End}
			agg[s.Label] = ps
			order = append(order, s.Label)
			continue
		}
		if s.Start < ps.Start {
			ps.Start = s.Start
		}
		if s.End > ps.End {
			ps.End = s.End
		}
	}
	out := make([]PhaseSummary, 0, len(order))
	for _, label := range order {
		out = append(out, *agg[label])
	}
	return out
}

// PhaseSummary is the aggregate extent of one labelled activity.
type PhaseSummary struct {
	Label string
	Start sim.Time
	End   sim.Time
}

// Dur returns the phase's extent.
func (p PhaseSummary) Dur() sim.Dur { return p.End.Sub(p.Start) }
