package trace

import (
	"strings"
	"testing"

	"anton/internal/sim"
	"testing/quick"
)

func TestBusyAccounting(t *testing.T) {
	tr := New()
	tr.Add(TS, 0, sim.Time(100*sim.Ns), "compute", false)
	tr.Add(TS, sim.Time(100*sim.Ns), sim.Time(150*sim.Ns), "wait", true)
	tr.Add(GC, 0, sim.Time(80*sim.Ns), "compute", false)
	if got := tr.Busy(TS, true); got != 150*sim.Ns {
		t.Fatalf("TS busy with stalls = %v", got)
	}
	if got := tr.Busy(TS, false); got != 100*sim.Ns {
		t.Fatalf("TS busy without stalls = %v", got)
	}
	if got := tr.Busy(HTI, true); got != 0 {
		t.Fatalf("HTIS busy = %v, want 0", got)
	}
}

func TestDegenerateSpans(t *testing.T) {
	tr := New()
	tr.Add(TS, 50, 50, "instant", false)
	tr.Add(TS, 60, 40, "negative", false)
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1 (zero-width kept, inverted dropped): %v", len(spans), spans)
	}
	if spans[0].Label != "instant" || spans[0].Start != spans[0].End {
		t.Fatalf("retained span is not the zero-width one: %v", spans[0])
	}
	if got := tr.Busy(TS, true); got != 0 {
		t.Fatalf("zero-width span contributed busy time: %v", got)
	}
}

// TestTimelineInstantTick pins the regression where zero-width spans were
// silently dropped at Add time and so could never appear on a timeline: an
// instantaneous event (e.g. a counter firing) must render as a tick in its
// bucket rather than idle space.
func TestTimelineInstantTick(t *testing.T) {
	tr := New()
	us := sim.Time(sim.Us)
	tr.Add(TS, 0, us, "compute", false)
	tr.Add(GC, us+us/2, us+us/2, "counter fire", false)
	out := tr.Timeline(0, 2*us, sim.Us)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline has %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "||") {
		t.Fatalf("zero-width span not rendered as a tick: %q", lines[2])
	}
	if strings.Contains(lines[1], "||") {
		t.Fatalf("tick rendered in the wrong bucket: %q", lines[1])
	}
	// A tick never outranks real occupancy: the busy bucket stays '#'.
	if !strings.Contains(lines[1], "##") {
		t.Fatalf("busy bucket not rendered: %q", lines[1])
	}
}

func TestSpansSorted(t *testing.T) {
	tr := New()
	tr.Add(GC, 300, 400, "c", false)
	tr.Add(TS, 100, 200, "a", false)
	tr.Add(HTI, 200, 300, "b", false)
	spans := tr.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("spans unsorted: %v", spans)
		}
	}
}

func TestOccupancyUnion(t *testing.T) {
	tr := New()
	// Two overlapping spans covering [0,60) and [40,100): union 100.
	tr.Add(LinkXPlus, 0, 60, "", false)
	tr.Add(LinkXPlus, 40, 100, "", false)
	if got := tr.Occupancy(LinkXPlus, 0, 100); got != 1.0 {
		t.Fatalf("occupancy = %v, want 1.0", got)
	}
	if got := tr.Occupancy(LinkXPlus, 0, 200); got != 0.5 {
		t.Fatalf("occupancy over double window = %v, want 0.5", got)
	}
	if got := tr.Occupancy(LinkYPlus, 0, 100); got != 0 {
		t.Fatalf("unused unit occupancy = %v", got)
	}
	if got := tr.Occupancy(LinkXPlus, 100, 100); got != 0 {
		t.Fatalf("empty window occupancy = %v", got)
	}
}

func TestOccupancyClipsToWindow(t *testing.T) {
	tr := New()
	tr.Add(TS, 0, 1000, "", false)
	if got := tr.Occupancy(TS, 400, 600); got != 1.0 {
		t.Fatalf("clipped occupancy = %v", got)
	}
}

func TestTimelineRendering(t *testing.T) {
	tr := New()
	us := sim.Time(sim.Us)
	tr.Add(TS, 0, us, "position send", false)
	tr.Add(TS, us, 2*us, "wait for forces", true)
	tr.Add(LinkXPlus, 0, 2*us, "", false)
	out := tr.Timeline(0, 2*us, sim.Us)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline has %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "TS") || !strings.Contains(lines[0], "X+") {
		t.Fatalf("header missing units: %q", lines[0])
	}
	// First bucket: TS busy (#), second: TS stalled (.).
	if !strings.Contains(lines[1], "##") {
		t.Fatalf("busy bucket not rendered: %q", lines[1])
	}
	if !strings.Contains(lines[2], "..") {
		t.Fatalf("stall bucket not rendered: %q", lines[2])
	}
}

func TestPhases(t *testing.T) {
	tr := New()
	tr.Add(TS, 100, 200, "position send", false)
	tr.Add(GC, 150, 400, "position send", false)
	tr.Add(HTI, 300, 900, "range-limited", false)
	tr.Add(TS, 500, 600, "position send", false)
	phases := tr.Phases()
	if len(phases) != 2 {
		t.Fatalf("phases = %v", phases)
	}
	if phases[0].Label != "position send" || phases[0].Start != 100 || phases[0].End != 600 {
		t.Fatalf("phase 0 = %+v", phases[0])
	}
	if phases[1].Label != "range-limited" || phases[1].Dur() != 600 {
		t.Fatalf("phase 1 = %+v", phases[1])
	}
}

func TestUnitNames(t *testing.T) {
	if TS.String() != "TS" || GC.String() != "GC" || HTI.String() != "HTIS" {
		t.Fatal("unit names wrong")
	}
	if LinkZMinus.String() != "Z-" {
		t.Fatalf("Z- name = %q", LinkZMinus)
	}
	if Unit(42).String() != "Unit(42)" {
		t.Fatal("unknown unit name wrong")
	}
}

// Property: occupancy always lies in [0, 1] for arbitrary span sets.
func TestOccupancyBoundedProperty(t *testing.T) {
	f := func(spans []struct{ S, D, U uint8 }) bool {
		tr := New()
		for _, sp := range spans {
			start := sim.Time(sp.S) * 10
			tr.Add(Unit(int(sp.U)%int(NumUnits)), start, start.Add(sim.Dur(sp.D)*10), "", sp.D%2 == 0)
		}
		for u := Unit(0); u < NumUnits; u++ {
			occ := tr.Occupancy(u, 0, 2560)
			if occ < 0 || occ > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
