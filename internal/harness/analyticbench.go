package harness

import (
	"anton/internal/analytic"
	"anton/internal/collective"
	"anton/internal/machine"
	"anton/internal/noc"
	"anton/internal/sim"
	"anton/internal/topo"
)

// The analytic benchmark workloads measure the closed-form fast-path
// tier's query throughput against one equivalent event-driven run — the
// ">=1000x faster per query" contract of the fastpath experiment. They
// are shared by the benchgate command, which records them in
// BENCH_analytic.json and gates the speedup floor.
//
// Like the PDES gate workloads, the DES side builds its simulator
// directly from sim.New (bare kernel, no fault injector or recorder),
// and every checksum is a pure function of the model — identical on
// every host — so the gate pins it exactly: the committed artifact is a
// machine-readable fingerprint of the calibrated fit.

// AnalyticBenchmark is one workload of the analytic fast-path perf gate.
type AnalyticBenchmark struct {
	// Name keys the workload in BENCH_analytic.json.
	Name string
	// Title is the human-readable description.
	Title string
	// Queries is the number of closed-form queries one Run call answers.
	Queries int
	// Run answers the full query batch from the analytic tier and returns
	// the checksum — the sum of every answer in picoseconds.
	Run func() int64
	// DES runs one equivalent query on the event-driven simulator and
	// returns its answer in picoseconds; the gate times it to compute the
	// per-query speedup.
	DES func() int64
}

// AnalyticBenchmarks returns the workloads of the analytic perf gate, in
// the order they appear in BENCH_analytic.json.
func AnalyticBenchmarks() []AnalyticBenchmark {
	tor := topo.NewTorus(8, 8, 8)
	origin := topo.C(0, 0, 0)
	sizes := []int{0, 64, 256}
	const maxHops = 12
	return []AnalyticBenchmark{
		{
			Name:    "p2p",
			Title:   "Figure 6 routes + hop-by-payload sweep grid, closed form vs one DES write",
			Queries: len(fastpathRoutes) + (maxHops+1)*len(sizes),
			Run: func() int64 {
				a := analytic.NewAnton(tor)
				var sum int64
				for _, r := range fastpathRoutes {
					sum += int64(a.WriteLatency(origin, r.dst, r.bytes))
				}
				for h := 0; h <= maxHops; h++ {
					for _, b := range sizes {
						sum += int64(a.WriteLatency(origin, hopPath(h), b))
					}
				}
				return sum
			},
			DES: func() int64 {
				s := sim.New()
				m := machine.Default512(s)
				return int64(measureWrite(m, origin, topo.C(1, 0, 0), 0, false))
			},
		},
		{
			Name:    "allreduce",
			Title:   "512-node global all-reduce completion, closed form vs one DES collective",
			Queries: 2,
			Run: func() int64 {
				a := analytic.NewAnton(tor)
				return int64(a.AllReduce(fastpathCollective(0))) + int64(a.AllReduce(fastpathCollective(32)))
			},
			DES: func() int64 {
				s := sim.New()
				m := machine.New(s, tor, noc.DefaultModel())
				ar := collective.NewAllReduce(m, collective.DefaultConfig(32))
				var done sim.Time
				ar.Run(nil, func(at sim.Time) { done = at })
				s.Run()
				return int64(done)
			},
		},
	}
}
