package harness

import (
	"fmt"

	"anton/internal/cluster"
	"anton/internal/collective"
	"anton/internal/machine"
	"anton/internal/mdmap"
	"anton/internal/noc"
	"anton/internal/sim"
	"anton/internal/topo"
)

// antonAllReduce measures one dimension-ordered global all-reduce on a
// fresh machine of the given torus.
func antonAllReduce(sess *Session, tor topo.Torus, bytes int) sim.Dur {
	s := sess.NewSim()
	m := machine.New(s, tor, noc.DefaultModel())
	ar := collective.NewAllReduce(m, collective.DefaultConfig(bytes))
	var done sim.Time
	ar.Run(nil, func(at sim.Time) { done = at })
	s.Run()
	return sim.Dur(done)
}

func table2(sess *Session, quick bool) string {
	out := header("Table 2: global all-reduce times for various Anton configurations")
	configs := []struct {
		tor   topo.Torus
		paper [2]float64 // 0B, 32B published us
	}{
		{topo.NewTorus(8, 8, 16), [2]float64{1.56, 2.06}},
		{topo.NewTorus(8, 8, 8), [2]float64{1.32, 1.77}},
		{topo.NewTorus(8, 8, 4), [2]float64{1.27, 1.68}},
		{topo.NewTorus(8, 2, 8), [2]float64{1.24, 1.64}},
		{topo.NewTorus(4, 4, 4), [2]float64{0.96, 1.31}},
	}
	t := NewTable("nodes (torus)", "0B reduce (us)", "paper", "32B reduce (us)", "paper")
	for _, c := range configs {
		z := antonAllReduce(sess, c.tor, 0)
		w := antonAllReduce(sess, c.tor, 32)
		t.Row(fmt.Sprintf("%d (%v)", c.tor.Nodes(), c.tor),
			fmt.Sprintf("%.2f", z.Us()), fmt.Sprintf("%.2f", c.paper[0]),
			fmt.Sprintf("%.2f", w.Us()), fmt.Sprintf("%.2f", c.paper[1]))
	}
	out += t.String()

	// The comparisons of Section IV.B.4.
	anton512 := antonAllReduce(sess, topo.NewTorus(8, 8, 8), 32)
	s := sess.NewSim()
	ib := cluster.New(s, 512, cluster.DDR2InfiniBand())
	var ibDone sim.Time
	ib.AllReduce(32, func(at sim.Time) { ibDone = at })
	s.Run()
	out += fmt.Sprintf("\n512-node 32B all-reduce: Anton %.2f us, InfiniBand cluster %.1f us -> %.0fx speedup (paper: 1.77 vs 35.5, 20x)\n",
		anton512.Us(), sim.Dur(ibDone).Us(), float64(ibDone)/float64(anton512))
	out += fmt.Sprintf("Blue Gene/L 512-node 16B tree-network all-reduce (published): 4.22 us -> Anton is %.1fx faster\n",
		4.22/anton512.Us())
	return out
}

func migsync(sess *Session, quick bool) string {
	out := header("Migration synchronization step (Section IV.B.5)")
	s := sess.NewSim()
	m := machine.Default512(s)
	d := mdmap.MeasureMigrationSync(m)
	out += fmt.Sprintf("in-order multicast write to all 26 nearest neighbours, all nodes\nsimultaneously: %.2f us (paper: 0.56 us)\n", d.Us())
	return out
}

func init() {
	register(Experiment{ID: "table2", Title: "global all-reduce times", run: table2})
	register(Experiment{ID: "migsync", Title: "migration synchronization step", run: migsync})
}
