package harness

import (
	"fmt"

	"anton/internal/cluster"
	"anton/internal/collective"
	"anton/internal/fault"
	"anton/internal/machine"
	"anton/internal/mdmap"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/par"
	"anton/internal/sim"
	"anton/internal/topo"
)

// The fault sweep quantifies the claim behind the paper's lossless
// network: Anton repairs flit corruption with a cheap link-level retry
// (tens of nanoseconds, paid only on the affected link), while a
// commodity fabric recovers lost messages with sender timeouts that
// cost four orders of magnitude more than the message itself. Sweeping
// the injected error rate shows how slowly Anton's 162 ns path and
// step rate degrade compared to the InfiniBand baseline.

// SweepFaultPlan is the plan the fault sweep injects at a given error
// rate: flit corruption at the rate with a 50 ns link-level retry
// turnaround, transient link stalls at a tenth of the rate (200 ns
// each), and InfiniBand message drops at the same rate with a 10 us
// sender retransmission timeout. Seed 1, so every run of the sweep is
// bit-identical.
func SweepFaultPlan(rate float64) fault.Plan {
	return fault.Plan{
		Seed:         1,
		CorruptRate:  rate,
		RetryLatency: 50 * sim.Ns,
		StallRate:    rate / 10,
		StallDur:     200 * sim.Ns,
		DropRate:     rate,
		DropTimeout:  10 * sim.Us,
	}
}

// faultSim builds a fresh simulator with plan attached. The sweep sets
// its plans explicitly rather than through the session fault plan, so a
// -faults flag (or a request plan) does not double-inject here; only the
// session worker count carries over.
func faultSim(sess *Session, p fault.Plan) *sim.Sim {
	s := sim.New()
	s.SetWorkers(par.Workers(sess.Workers))
	sess.armAbort(s)
	fault.Attach(s, p)
	return s
}

// antonPingMean runs n sequential one-X-hop counted remote writes on a
// 512-node machine and returns the mean software-to-software latency:
// the 162 ns path of Figure 6, degraded by whatever faults hit the
// link.
func antonPingMean(sess *Session, p fault.Plan, n int) sim.Dur {
	s := faultSim(sess, p)
	m := machine.Default512(s)
	src := packet.Client{Node: m.Torus.ID(topo.C(0, 0, 0)), Kind: packet.Slice0}
	dst := packet.Client{Node: m.Torus.ID(topo.C(1, 0, 0)), Kind: packet.Slice0}
	var total sim.Dur
	var round func(k int)
	round = func(k int) {
		if k == n {
			return
		}
		start := s.Now()
		m.Client(dst).Wait(0, uint64(k+1), func() {
			total += s.Now().Sub(start)
			round(k + 1)
		})
		m.Client(src).Write(dst, 0, 0, 0)
	}
	round(0)
	s.Run()
	return total / sim.Dur(n)
}

// antonAllReduceFault measures the dimension-ordered 512-node global
// all-reduce under plan p.
func antonAllReduceFault(sess *Session, p fault.Plan, bytes int) sim.Dur {
	s := faultSim(sess, p)
	m := machine.New(s, topo.NewTorus(8, 8, 8), noc.DefaultModel())
	ar := collective.NewAllReduce(m, collective.DefaultConfig(bytes))
	var done sim.Time
	ar.Run(nil, func(at sim.Time) { done = at })
	s.Run()
	return sim.Dur(done)
}

// antonStepFault maps a reduced MD system onto an 8-node machine under
// plan p and returns the average MD step time (one range-limited, one
// long-range step), the quantity behind the iteration rate. The system
// is deliberately small — the sweep needs the *relative* degradation
// per rate, and a small mapping keeps the five-rate sweep cheap.
func antonStepFault(sess *Session, p fault.Plan) sim.Dur {
	s := faultSim(sess, p)
	m := machine.New(s, topo.NewTorus(2, 2, 2), noc.DefaultModel())
	cfg := mdmap.DefaultConfig()
	cfg.Atoms = 4000
	cfg.MigrationInterval = 0
	cfg.GridN = 8
	mp := mdmap.New(s, m, cfg)
	rl := mp.RunStep()
	lr := mp.RunStep()
	return (rl.Total + lr.Total) / 2
}

// ibPingMean runs n sequential small-message sends between two cluster
// ranks and returns the mean one-way latency including any
// timeout-and-retransmit recoveries.
func ibPingMean(sess *Session, p fault.Plan, n int) sim.Dur {
	s := faultSim(sess, p)
	c := cluster.New(s, 2, cluster.DDR2InfiniBand())
	var total sim.Dur
	var round func(k int)
	round = func(k int) {
		if k == n {
			return
		}
		start := s.Now()
		c.Send(0, 1, 0, func(at sim.Time) {
			total += at.Sub(start)
			round(k + 1)
		})
	}
	round(0)
	s.Run()
	return total / sim.Dur(n)
}

// ibAllReduceFault measures the 512-rank recursive-doubling all-reduce
// under plan p.
func ibAllReduceFault(sess *Session, p fault.Plan, bytes int) sim.Dur {
	s := faultSim(sess, p)
	c := cluster.New(s, 512, cluster.DDR2InfiniBand())
	var done sim.Time
	c.AllReduce(bytes, func(at sim.Time) { done = at })
	s.Run()
	return sim.Dur(done)
}

func faultsweep(sess *Session, quick bool) string {
	out := header("Fault sweep: latency and iteration-rate degradation vs injected error rate")
	rates := []float64{0, 1e-5, 1e-4, 1e-3, 1e-2}
	pings := 1000
	if quick {
		rates = []float64{0, 1e-3, 1e-2}
		pings = 200
	}
	type row struct {
		ping, ar, step, ibPing, ibAr sim.Dur
	}
	// Every rate owns private simulator instances (one per metric), so
	// the sweep runs on the experiment worker pool and the report is
	// byte-identical at any worker count.
	rows := sweep(sess, len(rates), func(i int) row {
		p := SweepFaultPlan(rates[i])
		return row{
			ping:   antonPingMean(sess, p, pings),
			ar:     antonAllReduceFault(sess, p, 32),
			step:   antonStepFault(sess, p),
			ibPing: ibPingMean(sess, p, pings),
			ibAr:   ibAllReduceFault(sess, p, 32),
		}
	})
	t := NewTable("error rate", "Anton ping (ns)", "Anton 32B reduce (us)", "Anton step (us)",
		"steps/s", "IB ping (us)", "IB 32B reduce (us)")
	for i, r := range rows {
		t.Row(fmt.Sprintf("%g", rates[i]),
			fmt.Sprintf("%.1f", r.ping.Ns()),
			fmt.Sprintf("%.2f", r.ar.Us()),
			fmt.Sprintf("%.1f", r.step.Us()),
			fmt.Sprintf("%.0f", 1e6/r.step.Us()),
			fmt.Sprintf("%.2f", r.ibPing.Us()),
			fmt.Sprintf("%.1f", r.ibAr.Us()))
	}
	out += t.String()
	base, worst := rows[0], rows[len(rows)-1]
	pct := func(v, b sim.Dur) float64 { return 100 * (float64(v)/float64(b) - 1) }
	out += "\ninjected per link traversal: CRC flit corruption (repaired by link-level retry,\n" +
		"50 ns turnaround), transient stalls at rate/10 (200 ns); per IB message: drops\n" +
		"recovered by a 10 us sender timeout. Seed 1; the zero row is the fault-free baseline.\n"
	out += fmt.Sprintf("at rate %g: Anton ping %+.1f%%, Anton step %+.1f%%, IB ping %+.1f%%, IB reduce %+.1f%%\n",
		rates[len(rates)-1], pct(worst.ping, base.ping), pct(worst.step, base.step),
		pct(worst.ibPing, base.ibPing), pct(worst.ibAr, base.ibAr))
	return out
}

func init() {
	register(Experiment{ID: "faultsweep", Title: "degradation vs injected error rate", run: faultsweep})
}
