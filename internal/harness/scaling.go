package harness

import (
	"fmt"

	"anton/internal/machine"
	"anton/internal/mdmap"
	"anton/internal/noc"
	"anton/internal/sim"
	"anton/internal/topo"
)

// scaling reproduces the paper's framing claim rather than a specific
// figure: strong scaling of a fixed-size MD problem is limited by
// communication latency, not compute throughput. The same 23,558-atom
// system is mapped onto machines from 64 to 512 nodes; per-node compute
// shrinks 8x while the communication share of the step grows.
func scaling(sess *Session, quick bool) string {
	out := header("Strong scaling: fixed 23,558-atom system vs machine size")
	// The distributed FFT requires cubic machines, so the sweep doubles
	// the torus side: 8, 64, 512 nodes with a matching grid resolution.
	configs := []struct {
		tor   topo.Torus
		gridN int
	}{
		{topo.NewTorus(2, 2, 2), 8},
		{topo.NewTorus(4, 4, 4), 16},
		{topo.NewTorus(8, 8, 8), 32},
	}
	t := NewTable("nodes", "avg step (us)", "comm (us)", "comm share", "atoms/node")
	type point struct {
		nodes       int
		total, comm sim.Dur
	}
	// Each machine size maps and steps its own simulator instance; the
	// sweep runs on the experiment worker pool.
	pts := sweep(sess, len(configs), func(k int) point {
		c := configs[k]
		s := sess.NewSim()
		m := machine.New(s, c.tor, noc.DefaultModel())
		cfg := mdmap.DefaultConfig()
		cfg.MigrationInterval = 0
		cfg.GridN = c.gridN
		mp := mdmap.New(s, m, cfg)
		rl := mp.RunStep()
		lr := mp.RunStep()
		return point{c.tor.Nodes(), (rl.Total + lr.Total) / 2, (rl.Comm + lr.Comm) / 2}
	})
	for k, p := range pts {
		t.Row(fmt.Sprintf("%d (%v)", p.nodes, configs[k].tor),
			fmt.Sprintf("%.2f", p.total.Us()),
			fmt.Sprintf("%.2f", p.comm.Us()),
			fmt.Sprintf("%.0f%%", 100*float64(p.comm)/float64(p.total)),
			23558/p.nodes)
	}
	out += t.String()
	speedup := float64(pts[0].total) / float64(pts[len(pts)-1].total)
	out += fmt.Sprintf("\n64x more nodes yields %.1fx speedup: the residual is almost entirely\n"+
		"communication latency, the effect the paper's Introduction describes\n", speedup)
	return out
}

func init() {
	register(Experiment{ID: "scaling", Title: "strong scaling of a fixed problem", run: scaling})
}
