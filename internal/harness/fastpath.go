package harness

import (
	"fmt"

	"anton/internal/analytic"
	"anton/internal/cluster"
	"anton/internal/collective"
	"anton/internal/machine"
	"anton/internal/mdmap"
	"anton/internal/noc"
	"anton/internal/sim"
	"anton/internal/topo"
)

// fastpathRoutes is the Figure 6 11-route table the observability layer
// cross-validates: the analytic tier must reproduce every entry exactly.
var fastpathRoutes = []struct {
	dst   topo.Coord
	bytes int
}{
	{topo.C(1, 0, 0), 0}, // the headline 162 ns
	{topo.C(1, 0, 0), 256},
	{topo.C(2, 0, 0), 0},
	{topo.C(1, 1, 0), 0},
	{topo.C(1, 1, 0), 256},
	{topo.C(0, 0, 3), 0},
	{topo.C(1, 1, 1), 0},
	{topo.C(1, 1, 1), 256},
	{topo.C(4, 4, 4), 256},
	{topo.C(0, 0, 0), 0}, // node-local write
	{topo.C(0, 0, 0), 256},
}

// fastpathCollective translates the machine collective's default
// configuration into the analytic tier's shape.
func fastpathCollective(bytes int) analytic.CollectiveConfig {
	c := collective.DefaultConfig(bytes)
	return analytic.CollectiveConfig{
		Bytes: c.Bytes, Values: c.Values,
		PerValueAdd: c.PerValueAdd, RoundOverhead: c.RoundOverhead,
	}
}

// errCell renders one analytic-vs-DES error column entry. The network
// queries' documented bound is zero, so any non-"exact" cell in those
// sections is a regression the golden catches.
func errCell(des, an sim.Dur) string {
	if des == an {
		return "exact"
	}
	return fmt.Sprintf("%+.2f%%", 100*float64(an-des)/float64(des))
}

// withinBound reports whether the analytic answer is within the relative
// bound of the DES answer.
func withinBound(des, an sim.Dur, bound float64) bool {
	rel := float64(an-des) / float64(des)
	if rel < 0 {
		rel = -rel
	}
	return rel <= bound
}

// clusterDES runs one event-driven cluster operation on a fresh
// simulator and returns its completion time.
func clusterDES(sess *Session, n int, op func(c *cluster.Cluster, done func(sim.Time))) sim.Dur {
	s := sess.NewSim()
	c := cluster.New(s, n, cluster.DDR2InfiniBand())
	var at sim.Time
	op(c, func(t sim.Time) { at = t })
	s.Run()
	return sim.Dur(at)
}

// desStepKinds runs the event-driven workload for the given number of
// steps and returns the steady-state total per step kind (the last of
// each — the convention the step model is calibrated against).
func desStepKinds(sess *Session, tor topo.Torus, cfg mdmap.Config, atoms, steps int) map[mdmap.StepKind]sim.Dur {
	s := sess.NewSim()
	m := machine.New(s, tor, noc.DefaultModel())
	cfg.Atoms = atoms
	mp := mdmap.New(s, m, cfg)
	out := make(map[mdmap.StepKind]sim.Dur)
	for i := 0; i < steps; i++ {
		st := mp.RunStep()
		out[st.Kind] = st.Total
	}
	return out
}

// fastpath is the analytic fast-path validation experiment: the Figure 6
// 11-route table, a hop-by-payload sweep grid, collective and cluster
// queries, and the calibrated MD step-time model, each answered by the
// closed-form tier and (at des fidelity) cross-checked against the
// event-driven simulator with a per-row error column. The report is
// fully deterministic — no wall-clock numbers; the measured speedup
// lives in the benchgate artifact (BENCH_analytic.json).
func fastpath(sess *Session, quick bool) string {
	out := header("Fast path: closed-form analytic tier vs event-driven simulator")
	if sess.Faults != nil {
		return out + "refused: the analytic tier models a fault-free machine and cannot answer\n" +
			"under a fault plan; rerun without -faults to compare the tiers.\n"
	}
	analyticOnly := sess.fidelity() == FidelityAnalytic
	if analyticOnly {
		out += "fidelity: analytic (closed-form answers only; DES cross-check columns omitted)\n\n"
	} else {
		out += "fidelity: des (every analytic answer cross-checked against the event simulator)\n\n"
	}

	tor := topo.NewTorus(8, 8, 8)
	a := analytic.NewAnton(tor)
	exactRows, boundRows, violations := 0, 0, 0
	netRow := func(t *Table, label string, des, an sim.Dur, haveDES bool) {
		if !haveDES {
			t.Row(label, fmt.Sprintf("%.1f", an.Ns()))
			return
		}
		t.Row(label, fmt.Sprintf("%.1f", des.Ns()), fmt.Sprintf("%.1f", an.Ns()), errCell(des, an))
		exactRows++
		if des != an {
			violations++
		}
	}

	// Section 1: the Figure 6 11-route table.
	out += "Figure 6 routes (8x8x8, counted remote write from the origin):\n"
	var t *Table
	if analyticOnly {
		t = NewTable("route", "analytic (ns)")
	} else {
		t = NewTable("route", "DES (ns)", "analytic (ns)", "error")
	}
	routeDES := make([]sim.Dur, len(fastpathRoutes))
	if !analyticOnly {
		copy(routeDES, sweep(sess, len(fastpathRoutes), func(i int) sim.Dur {
			r := fastpathRoutes[i]
			return oneWayLatency(sess, r.dst, r.bytes)
		}))
	}
	for i, r := range fastpathRoutes {
		label := fmt.Sprintf("%v %dB", r.dst, r.bytes)
		netRow(t, label, routeDES[i], a.WriteLatency(topo.C(0, 0, 0), r.dst, r.bytes), !analyticOnly)
	}
	out += t.String()

	// Section 2: the hop-by-payload sweep grid along the Figure 5 path.
	hopsList := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if quick {
		hopsList = []int{0, 1, 2, 4, 8, 12}
	}
	sizes := []int{0, 64, 256}
	out += "\nHop-by-payload sweep grid (8x8x8, Figure 5 path):\n"
	if analyticOnly {
		t = NewTable("hops", "0B (ns)", "64B (ns)", "256B (ns)")
	} else {
		t = NewTable("hops", "0B DES", "0B analytic", "err", "64B DES", "64B analytic", "err", "256B DES", "256B analytic", "err")
	}
	type gridRow [3]sim.Dur
	gridDES := make([]gridRow, len(hopsList))
	if !analyticOnly {
		copy(gridDES, sweep(sess, len(hopsList), func(i int) gridRow {
			var r gridRow
			for k, b := range sizes {
				r[k] = oneWayLatency(sess, hopPath(hopsList[i]), b)
			}
			return r
		}))
	}
	for i, h := range hopsList {
		dst := hopPath(h)
		cells := []interface{}{h}
		for k, b := range sizes {
			an := a.WriteLatency(topo.C(0, 0, 0), dst, b)
			if analyticOnly {
				cells = append(cells, fmt.Sprintf("%.1f", an.Ns()))
				continue
			}
			des := gridDES[i][k]
			cells = append(cells, fmt.Sprintf("%.1f", des.Ns()), fmt.Sprintf("%.1f", an.Ns()), errCell(des, an))
			exactRows++
			if des != an {
				violations++
			}
		}
		t.Row(cells...)
	}
	out += t.String()

	// Section 3: Anton collective completion and cluster baseline queries.
	out += "\nCollective and InfiniBand-cluster queries:\n"
	if analyticOnly {
		t = NewTable("query", "analytic (us)")
	} else {
		t = NewTable("query", "DES (us)", "analytic (us)", "error")
	}
	usRow := func(label string, des func() sim.Dur, an sim.Dur) {
		if analyticOnly {
			t.Row(label, fmt.Sprintf("%.3f", an.Us()))
			return
		}
		d := des()
		t.Row(label, fmt.Sprintf("%.3f", d.Us()), fmt.Sprintf("%.3f", an.Us()), errCell(d, an))
		exactRows++
		if d != an {
			violations++
		}
	}
	for _, b := range []int{0, 32} {
		b := b
		usRow(fmt.Sprintf("Anton 512-node all-reduce %dB", b),
			func() sim.Dur { return antonAllReduce(sess, tor, b) },
			a.AllReduce(fastpathCollective(b)))
	}
	ib := analytic.NewCluster(512)
	usRow("cluster ping 32B",
		func() sim.Dur {
			return clusterDES(sess, 2, func(c *cluster.Cluster, done func(sim.Time)) { c.Send(0, 1, 32, done) })
		}, ib.Ping(32))
	usRow("cluster 2KB in 24 messages",
		func() sim.Dur {
			return clusterDES(sess, 2, func(c *cluster.Cluster, done func(sim.Time)) { c.TransferManyMessages(0, 1, 2048, 24, done) })
		}, ib.ManyMessages(2048, 24))
	if ibAR, err := ib.AllReduce(32); err == nil {
		usRow("cluster 512-rank all-reduce 32B",
			func() sim.Dur {
				return clusterDES(sess, 512, func(c *cluster.Cluster, done func(sim.Time)) { c.AllReduce(32, done) })
			}, ibAR)
	}
	usRow("cluster staged neighbour exchange 2200B",
		func() sim.Dur {
			return clusterDES(sess, 512, func(c *cluster.Cluster, done func(sim.Time)) { c.StagedNeighborExchange(2200, done) })
		}, ib.StagedNeighborExchange(2200))
	out += t.String()

	// Section 4: the calibrated MD step-time model. Calibration is the
	// tier's one-time DES cost (two reference runs); every query after it
	// is closed-form. quick calibrates a small machine.
	sTor, lo, hi, steps := topo.NewTorus(4, 4, 4), 2500, 6000, 4
	interior := []int{3000, 4000, 5000}
	if quick {
		sTor, lo, hi, steps = topo.NewTorus(2, 2, 2), 300, 600, 2
		interior = []int{450}
	}
	cfg := mdmap.DefaultConfig()
	cfg.MigrationInterval = 0
	out += fmt.Sprintf("\nMD step-time model (%v torus, calibrated at %d and %d atoms):\n", sTor, lo, hi)
	sm, err := analytic.CalibrateStep(sTor, cfg, lo, hi, analytic.StepOptions{NewSim: sess.NewSim, Steps: steps})
	if err != nil {
		out += fmt.Sprintf("calibration refused: %v\n", err)
		return out
	}
	kinds := []mdmap.StepKind{mdmap.RangeLimited, mdmap.LongRange}
	if analyticOnly {
		t = NewTable("atoms", "kind", "analytic (us)")
	} else {
		t = NewTable("atoms", "kind", "DES (us)", "analytic (us)", "error")
	}
	stepRow := func(atoms int, des map[mdmap.StepKind]sim.Dur) {
		for _, kind := range kinds {
			an, err := sm.StepTime(kind, atoms)
			if err != nil {
				t.Row(atoms, kind.String(), fmt.Sprintf("refused: %v", err))
				continue
			}
			if analyticOnly {
				t.Row(atoms, kind.String(), fmt.Sprintf("%.2f", an.Us()))
				continue
			}
			d := des[kind]
			t.Row(atoms, kind.String(), fmt.Sprintf("%.2f", d.Us()), fmt.Sprintf("%.2f", an.Us()), errCell(d, an))
			boundRows++
			if !withinBound(d, an, 0.05) {
				violations++
			}
		}
	}
	stepRow(lo, sm.RefLo)
	if !analyticOnly {
		interiorDES := sweep(sess, len(interior), func(i int) map[mdmap.StepKind]sim.Dur {
			return desStepKinds(sess, sTor, cfg, interior[i], steps)
		})
		for i, atoms := range interior {
			stepRow(atoms, interiorDES[i])
		}
	} else {
		for _, atoms := range interior {
			stepRow(atoms, nil)
		}
	}
	stepRow(hi, sm.RefHi)
	out += t.String()

	// The calibration fit, pinned by the golden: the two-point contention
	// slopes and the link-occupancy evidence that anchors them.
	out += "\ncalibration fit:\n"
	for _, kind := range kinds {
		out += fmt.Sprintf("  %-14s kappa %.6g ps/byte, residual %v\n", kind.String(), sm.Kappa[kind], sm.Resid[kind])
	}
	out += fmt.Sprintf("  link occupancy: %.1f measured bytes/step/node (anchor ratio %.4f),\n",
		sm.LinkStats.MeasuredBytesPerStep, sm.LinkStats.AnchorRatio)
	out += fmt.Sprintf("  peak link utilization %.1f%%, queued share %.1f%%, max queue wait %v\n",
		100*sm.LinkStats.PeakLinkUtilization, 100*sm.LinkStats.QueuedShare, sm.LinkStats.MaxQueueWait)

	// The error-bound contract, checked over every row above.
	if analyticOnly {
		out += "\nbound check: skipped (no DES cross-check at analytic fidelity)\n"
	} else if violations == 0 {
		out += fmt.Sprintf("\nbound check: %d network rows exact, %d step rows within the 5%% bound\n", exactRows, boundRows)
	} else {
		out += fmt.Sprintf("\nbound check: BOUND EXCEEDED on %d of %d rows\n", violations, exactRows+boundRows)
	}
	return out
}

func init() {
	register(Experiment{ID: "fastpath", Title: "analytic fast-path tier vs DES", run: fastpath, Analytic: true})
}
