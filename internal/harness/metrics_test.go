package harness

import (
	"bytes"
	"testing"
)

// TestMetricsArtifactsWorkerIndependent pins the determinism contract of
// the observability layer: the metrics report, the BENCH_metrics.json
// payload, and the chrome-trace export must be byte-identical at any
// sweep worker count, because every sweep point owns a private simulator
// and recorder and shard histograms merge exactly in index order.
func TestMetricsArtifactsWorkerIndependent(t *testing.T) {
	defer SetWorkers(Workers())
	SetWorkers(1)
	want := MetricsArtifacts(true)
	for _, w := range []int{4, 8, 0} {
		SetWorkers(w)
		got := MetricsArtifacts(true)
		if got.Report != want.Report {
			t.Fatalf("workers=%d: report differs from sequential run\n--- sequential ---\n%s\n--- workers=%d ---\n%s",
				w, want.Report, w, got.Report)
		}
		if !bytes.Equal(got.BenchJSON, want.BenchJSON) {
			t.Fatalf("workers=%d: BENCH_metrics.json differs from sequential run", w)
		}
		if !bytes.Equal(got.Trace, want.Trace) {
			t.Fatalf("workers=%d: chrome trace differs from sequential run", w)
		}
	}
}

// TestMetricsToggleIdentity checks the other half of the contract on one
// cheap experiment: attaching recorders to every harness simulator does
// not change a byte of a report that never looks at them (the full
// metrics-on golden identity test lives in cmd/antonbench).
func TestMetricsToggleIdentity(t *testing.T) {
	fig6, ok := Lookup("fig6")
	if !ok {
		t.Fatal("fig6 not registered")
	}
	SetMetrics(false)
	want := fig6.Run(false)
	SetMetrics(true)
	defer SetMetrics(false)
	if got := fig6.Run(false); got != want {
		t.Fatalf("metrics-on fig6 report differs from metrics-off:\n--- off ---\n%s\n--- on ---\n%s", want, got)
	}
}
