package harness

import (
	"fmt"

	"anton/internal/machine"
	"anton/internal/mdmap"
	"anton/internal/sim"
	"anton/internal/topo"
	"anton/internal/trace"
)

// agedStepTime measures the average (range-limited + long-range)/2 step
// time with the bond program aged by the given number of steps.
func agedStepTime(mp *mdmap.Mapping, age int) sim.Dur {
	mp.SetBondAge(age)
	a := mp.RunStep()
	b := mp.RunStep()
	return (a.Total + b.Total) / 2
}

func fig11(sess *Session, quick bool) string {
	out := header("Figure 11: step time evolution with and without bond program regeneration")
	s := sess.NewSim()
	m := machine.Default512(s)
	cfg := mdmap.DefaultConfig()
	cfg.MigrationInterval = 0
	mp := mdmap.New(s, m, cfg)

	const regenPeriod = 120_000
	sample := 400_000
	if quick {
		sample = 1_600_000
	}
	t := NewTable("steps (millions)", "no regeneration (us)", "with regeneration (us)")
	var sumNo, sumRe sim.Dur
	n := 0
	for step := 0; step <= 8_000_000; step += sample {
		no := agedStepTime(mp, step)
		// With regeneration every 120k steps, the installed program's
		// snapshot is between one and two periods old (regeneration runs
		// in parallel and installs a program that is regenPeriod stale).
		effAge := regenPeriod + step%regenPeriod
		if step == 0 {
			effAge = 0
		}
		re := agedStepTime(mp, effAge)
		sumNo += no
		sumRe += re
		n++
		t.Row(fmt.Sprintf("%.1f", float64(step)/1e6),
			fmt.Sprintf("%.2f", no.Us()), fmt.Sprintf("%.2f", re.Us()))
	}
	out += t.String()
	imp := 100 * (1 - float64(sumRe)/float64(sumNo))
	out += fmt.Sprintf("\nbond program regeneration improves overall performance by %.0f%% (paper: 14%%)\n", imp)
	out += "paper: without regeneration the step time climbs from ~11.5 us toward ~16 us\nover 8 M steps; with regeneration every 120k steps it stays nearly flat\n"
	return out
}

func fig12(sess *Session, quick bool) string {
	out := header("Figure 12: average step time vs migration interval (17,758 particles)")
	intervals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if quick {
		intervals = []int{1, 2, 4, 8}
	}
	t := NewTable("migration interval (steps)", "average step time (us)")
	// Each interval builds and steps its own machine: the sweep points are
	// independent and run on the experiment worker pool.
	avgs := sweep(sess, len(intervals), func(k int) sim.Dur {
		iv := intervals[k]
		s := sess.NewSim()
		m := machine.Default512(s)
		cfg := mdmap.DefaultConfig()
		cfg.Atoms = 17758
		cfg.MigrationInterval = iv
		mp := mdmap.New(s, m, cfg)
		steps := 2 * iv
		if steps < 4 {
			steps = 4
		}
		var total sim.Dur
		for i := 0; i < steps; i++ {
			total += mp.RunStep().Total
		}
		return total / sim.Dur(steps)
	})
	first, last := avgs[0], avgs[len(avgs)-1]
	for k, iv := range intervals {
		t.Row(iv, fmt.Sprintf("%.2f", avgs[k].Us()))
	}
	out += t.String()
	out += fmt.Sprintf("\nmigrating every 8 steps instead of every step improves performance by %.0f%% (paper: 19%%)\n",
		100*(1-float64(last)/float64(first)))
	return out
}

func fig13(sess *Session, quick bool) string {
	out := header("Figure 13: machine activity for two time steps (logic analyzer)")
	s := sess.NewSim()
	m := machine.Default512(s)
	cfg := mdmap.DefaultConfig()
	cfg.MigrationInterval = 0
	mp := mdmap.New(s, m, cfg)
	tr := trace.New()
	mp.Tracer = tr
	attachLinkTrace(m, tr)
	start := s.Now()
	mp.RunStep() // range-limited
	mp.RunStep() // long-range
	end := s.Now()

	out += tr.Timeline(start, end, end.Sub(start)/28)
	out += "\nlegend: ## mostly busy, ++ partially busy, .. stalled/waiting, blank idle\n"
	out += "columns: six torus link directions, Tensilica cores (TS), geometry cores (GC), HTIS\n\n"
	out += "phases (first occurrence order, extent across all units):\n"
	for _, ph := range tr.Phases() {
		out += fmt.Sprintf("  %-34s %8.2f -> %8.2f us\n", ph.Label, ph.Start.Sub(start).Us(), ph.End.Sub(start).Us())
	}
	out += "\npaper: the first (range-limited) step spans ~8 us, the second (long-range)\nstep ~24 us; torus links are occupied for much of the step and the\ncomputational units spend significant time waiting for data\n"
	return out
}

// attachLinkTrace records every torus-link occupancy as a trace span; the
// topo.Ports order (X+, X-, Y+, Y-, Z+, Z-) matches the first six trace
// units.
func attachLinkTrace(m *machine.Machine, tr *trace.Tracer) {
	m.OnLink = func(n topo.NodeID, p topo.Port, start sim.Time, service sim.Dur) {
		tr.Add(trace.Unit(topo.PortIndex(p)), start, start.Add(service), "", false)
	}
}

func init() {
	register(Experiment{ID: "fig11", Title: "bond program regeneration", run: fig11})
	register(Experiment{ID: "fig12", Title: "migration interval sweep", run: fig12})
	register(Experiment{ID: "fig13", Title: "activity timeline", run: fig13})
}
