package harness

import (
	"strings"
	"testing"

	"anton/internal/sim"
	"anton/internal/topo"
)

func TestRegistry(t *testing.T) {
	want := []string{
		"ablate-allreduce", "ablate-multicast", "ablate-staging",
		"fastpath", "faultsweep", "fig11", "fig12", "fig13", "fig5",
		"fig6", "fig7", "halfbw", "killsweep", "metrics", "migsync",
		"scaling", "table1", "table2", "table3",
	}
	all := Experiments()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("registry[%d] = %q, want %q", i, e.ID, want[i])
		}
	}
	if _, ok := Lookup("fig5"); !ok {
		t.Fatal("Lookup(fig5) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown id succeeded")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("a", "bb")
	tab.Row(1, "x")
	tab.Row("long-cell", 2.5)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "a") || !strings.Contains(lines[3], "2.50") {
		t.Fatalf("table content wrong:\n%s", out)
	}
}

func TestHopPath(t *testing.T) {
	tor := topo.NewTorus(8, 8, 8)
	for h := 0; h <= 12; h++ {
		c := hopPath(h)
		if got := tor.Hops(topo.C(0, 0, 0), c); got != h {
			t.Fatalf("hopPath(%d) = %v, %d hops", h, c, got)
		}
	}
}

func TestOneWayLatencyHeadline(t *testing.T) {
	if got := OneWayLatency(topo.C(1, 0, 0), 0); got != 162*sim.Ns {
		t.Fatalf("headline latency = %v, want 162ns", got)
	}
}

func TestFig5Slopes(t *testing.T) {
	// Marginal hop costs from the measured path: 76 ns per X hop, 54 ns
	// per Y/Z hop.
	one := OneWayLatency(hopPath(1), 0)
	four := OneWayLatency(hopPath(4), 0)
	five := OneWayLatency(hopPath(5), 0)
	if x := (four - one) / 3; x != 76*sim.Ns {
		t.Fatalf("X slope = %v, want 76ns", x)
	}
	if y := five - four; y != 54*sim.Ns {
		t.Fatalf("Y slope = %v, want 54ns", y)
	}
}

func TestAntonTransferFlat(t *testing.T) {
	// Fig. 7, Anton side: 64 messages must cost < 2x one message.
	sess := NewSession()
	one := antonTransfer(sess, 1, 2048, 1)
	many := antonTransfer(sess, 1, 2048, 64)
	if ratio := float64(many) / float64(one); ratio > 2 {
		t.Fatalf("64-message normalized cost = %.2f, want < 2", ratio)
	}
}

func TestCheapExperimentsRender(t *testing.T) {
	cases := map[string]string{
		"fig5":             "162",
		"fig6":             "end-to-end",
		"table1":           "Anton (measured here)",
		"table2":           "512 (8x8x8)",
		"fig7":             "InfiniBand",
		"halfbw":           "28-byte",
		"migsync":          "26 nearest neighbours",
		"ablate-multicast": "hardware multicast",
	}
	for id, marker := range cases {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		out := e.Run(true)
		if !strings.Contains(out, marker) {
			t.Fatalf("%s output missing %q:\n%s", id, marker, out)
		}
	}
}

func TestHalfBandwidthAt28Bytes(t *testing.T) {
	out := halfbw(NewSession(), true)
	if !strings.Contains(out, "reached at 28-byte messages") {
		t.Fatalf("half-bandwidth point is not 28 bytes:\n%s", out)
	}
}

func TestMigSyncNearPaper(t *testing.T) {
	out := migsync(NewSession(), true)
	// The measured value is printed as "...: X.XX us"; accept 0.2-1.0 us
	// around the paper's 0.56 us.
	if !strings.Contains(out, "0.") {
		t.Fatalf("unexpected migsync output:\n%s", out)
	}
}

func TestTable3Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("table3 runs the full 512-node mapping")
	}
	out := table3(NewSession(), true)
	for _, marker := range []string{"average time step", "range-limited", "FFT-based convolution", "thermostat", "x (paper: ~27x)"} {
		if !strings.Contains(out, marker) {
			t.Fatalf("table3 missing %q:\n%s", marker, out)
		}
	}
}

func TestFig13Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("fig13 runs the full 512-node mapping")
	}
	out := fig13(NewSession(), true)
	for _, marker := range []string{"HTIS", "position send", "range-limited interactions", "##"} {
		if !strings.Contains(out, marker) {
			t.Fatalf("fig13 missing %q:\n%s", marker, out)
		}
	}
}

func TestScalingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling runs 8-to-512-node mappings")
	}
	out := scaling(NewSession(), true)
	for _, marker := range []string{"512 (8x8x8)", "comm share", "speedup"} {
		if !strings.Contains(out, marker) {
			t.Fatalf("scaling output missing %q:\n%s", marker, out)
		}
	}
}
