package harness

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"anton/internal/cluster"
	"anton/internal/collective"
	"anton/internal/machine"
	"anton/internal/metrics"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// Artifacts is the full output of the metrics experiment: the rendered
// text report plus the machine-readable BENCH_metrics.json payload and a
// chrome://tracing export of a small scripted run. All three are
// byte-deterministic for a fixed (fault plan, quick) setting at any
// worker count.
type Artifacts struct {
	Report    string
	BenchJSON []byte
	Trace     []byte
}

// stageRow pairs one measured stage with its calibrated counterpart.
type stageRow struct {
	Label        string  `json:"label"`
	MeasuredNs   float64 `json:"measured_ns"`
	CalibratedNs float64 `json:"calibrated_ns"`
}

// routeCheck is the per-route outcome of the measured-vs-calibrated
// stage-attribution cross-check.
type routeCheck struct {
	Route        string  `json:"route"`
	Bytes        int     `json:"bytes"`
	Stages       int     `json:"stages"`
	MeasuredNs   float64 `json:"measured_ns"`
	CalibratedNs float64 `json:"calibrated_ns"`
	Agree        bool    `json:"agree"`
}

// histStats is a latency histogram's summary statistics.
type histStats struct {
	Count  uint64  `json:"count"`
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	MaxNs  float64 `json:"max_ns"`
	MeanNs float64 `json:"mean_ns"`
}

func summarize(h *metrics.Hist) histStats {
	return histStats{
		Count:  h.Count(),
		P50Ns:  h.Quantile(50).Ns(),
		P99Ns:  h.Quantile(99).Ns(),
		MaxNs:  h.Max().Ns(),
		MeanNs: h.Mean().Ns(),
	}
}

// linkStats is one link's counters in the JSON payload.
type linkStats struct {
	Node      int     `json:"node"`
	Port      string  `json:"port"`
	Packets   uint64  `json:"packets"`
	Bytes     uint64  `json:"bytes"`
	BusyUs    float64 `json:"busy_us"`
	Queued    uint64  `json:"queued"`
	MaxWaitNs float64 `json:"max_wait_ns"`
}

// phaseStats is one labelled phase span in the JSON payload.
type phaseStats struct {
	Label   string  `json:"label"`
	StartUs float64 `json:"start_us"`
	EndUs   float64 `json:"end_us"`
}

// benchMetrics is the BENCH_metrics.json schema.
type benchMetrics struct {
	Experiment    string       `json:"experiment"`
	Quick         bool         `json:"quick"`
	OneHopE2ENs   float64      `json:"one_hop_e2e_ns"`
	OneHopStages  []stageRow   `json:"one_hop_stages"`
	CrossChecks   []routeCheck `json:"cross_checks"`
	Anton         histStats    `json:"anton_latency"`
	Cluster       histStats    `json:"cluster_latency"`
	Links         []linkStats  `json:"busiest_links"`
	CountersArmed uint64       `json:"counters_armed"`
	CountersFired uint64       `json:"counters_fired"`
	Phases        []phaseStats `json:"allreduce_phases"`
}

// measuredStages runs one counted remote write from the origin to dst on
// a fresh instrumented 512-node machine and returns the reconstructed
// lifecycle's stage attribution and end-to-end latency.
func measuredStages(sess *Session, dst topo.Coord, bytes int) ([]metrics.Stage, sim.Dur) {
	s := sess.NewSim()
	rec := metrics.Attach(s)
	m := machine.Default512(s)
	measureWrite(m, topo.C(0, 0, 0), dst, bytes, false)
	lcs := rec.Lifecycles()
	if len(lcs) != 1 {
		panic(fmt.Sprintf("harness: expected 1 lifecycle, got %d", len(lcs)))
	}
	return lcs[0].Stages(), lcs[0].E2E()
}

// stagesAgree reports whether a measured attribution matches the
// calibrated closed form label for label and duration for duration.
func stagesAgree(meas []metrics.Stage, cal []noc.Stage) bool {
	if len(meas) != len(cal) {
		return false
	}
	for i := range meas {
		if meas[i].Label != cal[i].Label || meas[i].Dur != cal[i].Dur {
			return false
		}
	}
	return true
}

// crossRoutes are the routes the report's measured-vs-calibrated check
// covers; the metrics test battery checks more.
var crossRoutes = []struct {
	dst   topo.Coord
	bytes int
}{
	{topo.C(1, 0, 0), 0},
	{topo.C(2, 0, 0), 0},
	{topo.C(2, 1, 0), 256},
	{topo.C(1, 1, 1), 256},
}

// antonHist builds the Anton packet-latency histogram: the Figure 5 ping
// sweep (hops 0..12, 0 B and 256 B payloads, one fresh machine per
// point, merged in index order) plus every delivery of a 512-node 32 B
// all-reduce. Returns the histogram, the all-reduce recorder (for link,
// counter, and phase reporting), and the all-reduce torus used.
func antonHist(sess *Session, quick bool) (*metrics.Hist, *metrics.Recorder, topo.Torus) {
	maxHops := 12
	if quick {
		maxHops = 4
	}
	sizes := []int{0, 256}
	shards := sweep(sess, (maxHops+1)*len(sizes), func(i int) *metrics.Hist {
		h, b := i/len(sizes), sizes[i%len(sizes)]
		s := sess.NewSim()
		rec := metrics.Attach(s)
		m := machine.Default512(s)
		measureWrite(m, topo.C(0, 0, 0), hopPath(h), b, true)
		hist := &metrics.Hist{}
		hist.AddAll(rec.AntonLatencies())
		return hist
	})
	total := &metrics.Hist{}
	for _, h := range shards {
		if h == nil {
			continue // skipped unit of a cancelled session; report is discarded
		}
		total.Merge(*h)
	}

	tor := topo.NewTorus(8, 8, 8)
	if quick {
		tor = topo.NewTorus(4, 4, 4)
	}
	s := sess.NewSim()
	rec := metrics.Attach(s)
	m := machine.New(s, tor, noc.DefaultModel())
	ar := collective.NewAllReduce(m, collective.DefaultConfig(32))
	ar.Run(nil, nil)
	s.Run()
	total.AddAll(rec.AntonLatencies())
	return total, rec, tor
}

// clusterHist builds the InfiniBand message-latency histogram from every
// message of a recursive-doubling 32 B all-reduce across ranks ranks.
func clusterHist(sess *Session, ranks int) *metrics.Hist {
	s := sess.NewSim()
	rec := metrics.Attach(s)
	c := cluster.New(s, ranks, cluster.DDR2InfiniBand())
	c.AllReduce(32, nil)
	s.Run()
	h := &metrics.Hist{}
	h.AddAll(rec.ClusterLatencies())
	return h
}

// traceScenario runs the small scripted machine the chrome-trace export
// covers: a 2x2x2 torus performing two counted remote writes (one and
// three hops) followed by a 32 B all-reduce.
func traceScenario(sess *Session) *metrics.Recorder {
	s := sess.NewSim()
	rec := metrics.Attach(s)
	m := machine.New(s, topo.NewTorus(2, 2, 2), noc.DefaultModel())
	measureWrite(m, topo.C(0, 0, 0), topo.C(1, 0, 0), 0, false)
	measureWrite(m, topo.C(0, 0, 0), topo.C(1, 1, 1), 256, false)
	ar := collective.NewAllReduce(m, collective.DefaultConfig(32))
	ar.Run(func(n topo.NodeID) []float64 {
		v := make([]float64, 8)
		for i := range v {
			v[i] = float64(int(n)*8 + i)
		}
		return v
	}, nil)
	s.Run()
	return rec
}

// MetricsArtifacts runs the metrics experiment with a session snapshotted
// from the process-wide defaults and returns the rendered report, the
// BENCH_metrics.json payload, and the chrome-trace export.
func MetricsArtifacts(quick bool) Artifacts {
	return metricsArtifacts(NewSession(), quick)
}

func metricsArtifacts(sess *Session, quick bool) Artifacts {
	model := noc.DefaultModel()
	var b strings.Builder
	bench := benchMetrics{Experiment: "metrics", Quick: quick}

	b.WriteString(header("Measured-latency observability report"))

	// Figure 6, measured: the observed stage attribution of the one-hop
	// X+ 0-byte write against the calibrated closed form.
	b.WriteString("\nFigure 6 (measured): stage attribution of the single-X-hop 0 B remote write\n")
	oneHop, e2e := measuredStages(sess, topo.C(1, 0, 0), 0)
	oneHopCal := model.Stages([topo.NumDims]int{1, 0, 0}, packet.Slice0, packet.Slice0, packet.HeaderBytes)
	t := NewTable("stage", "measured (ns)", "calibrated (ns)")
	for i, st := range oneHop {
		cal := "-"
		if i < len(oneHopCal) {
			cal = fmt.Sprintf("%.0f", oneHopCal[i].Dur.Ns())
		}
		t.Row(st.Label, fmt.Sprintf("%.0f", st.Dur.Ns()), cal)
		row := stageRow{Label: st.Label, MeasuredNs: st.Dur.Ns()}
		if i < len(oneHopCal) {
			row.CalibratedNs = oneHopCal[i].Dur.Ns()
		}
		bench.OneHopStages = append(bench.OneHopStages, row)
	}
	t.Row("end-to-end", fmt.Sprintf("%.0f", e2e.Ns()), fmt.Sprintf("%.0f",
		model.PathLatency([topo.NumDims]int{1, 0, 0}, packet.Slice0, packet.Slice0, packet.HeaderBytes).Ns()))
	b.WriteString(t.String())
	bench.OneHopE2ENs = e2e.Ns()
	if stagesAgree(oneHop, oneHopCal) {
		b.WriteString("every measured stage agrees with the calibrated model to the picosecond\n")
	} else {
		b.WriteString("MISMATCH: measured attribution disagrees with the calibrated model\n")
	}
	b.WriteString("paper: 42 + 19 + 40 + 25 + 36 = 162 ns end to end\n")

	// Multi-hop cross-check: measured == calibrated, stage by stage.
	b.WriteString("\nmeasured-vs-calibrated cross-check\n")
	ct := NewTable("route", "bytes", "stages", "measured e2e (ns)", "calibrated e2e (ns)", "agree")
	tor := topo.NewTorus(8, 8, 8)
	for _, rc := range crossRoutes {
		meas, me2e := measuredStages(sess, rc.dst, rc.bytes)
		hops := tor.HopsByDim(topo.C(0, 0, 0), rc.dst)
		wire := packet.HeaderBytes + rc.bytes
		cal := model.Stages(hops, packet.Slice0, packet.Slice0, wire)
		ce2e := model.PathLatency(hops, packet.Slice0, packet.Slice0, wire)
		agree := stagesAgree(meas, cal) && me2e == ce2e
		ct.Row(fmt.Sprintf("%v", rc.dst), rc.bytes, len(meas),
			fmt.Sprintf("%.1f", me2e.Ns()), fmt.Sprintf("%.1f", ce2e.Ns()),
			fmt.Sprintf("%v", agree))
		bench.CrossChecks = append(bench.CrossChecks, routeCheck{
			Route: fmt.Sprintf("%v", rc.dst), Bytes: rc.bytes, Stages: len(meas),
			MeasuredNs: me2e.Ns(), CalibratedNs: ce2e.Ns(), Agree: agree,
		})
	}
	b.WriteString(ct.String())

	// Latency distributions.
	anton, arRec, arTor := antonHist(sess, quick)
	b.WriteString(fmt.Sprintf("\nAnton packet latency distribution (ping sweep + %v 32 B all-reduce deliveries)\n", arTor))
	b.WriteString(anton.Summary() + "\n")
	b.WriteString(anton.String())
	bench.Anton = summarize(anton)

	ranks := 512
	if quick {
		ranks = 64
	}
	ib := clusterHist(sess, ranks)
	b.WriteString(fmt.Sprintf("\nInfiniBand message latency distribution (%d-rank recursive-doubling 32 B all-reduce)\n", ranks))
	b.WriteString(ib.Summary() + "\n")
	b.WriteString(ib.String())
	bench.Cluster = summarize(ib)

	// Per-link utilization from the all-reduce run.
	links := arRec.Links()
	b.WriteString(fmt.Sprintf("\nbusiest links of the %v all-reduce (top 5 of %d by occupancy)\n", arTor, len(links)))
	top := append([]metrics.LinkRecord(nil), links...)
	// Occupancy descending; the stable sort keeps Links()'s (node, port)
	// order for ties, so the selection is deterministic.
	sort.SliceStable(top, func(i, j int) bool { return top[i].Busy > top[j].Busy })
	if len(top) > 5 {
		top = top[:5]
	}
	lt := NewTable("node", "port", "packets", "bytes", "busy (us)", "queued", "max wait (ns)")
	for _, l := range top {
		lt.Row(int(l.Key.Node), fmt.Sprintf("%v", topo.Ports[l.Key.Port]),
			l.Packets, l.Bytes, fmt.Sprintf("%.2f", l.Busy.Us()),
			l.Queued, fmt.Sprintf("%.1f", l.MaxWait.Ns()))
		bench.Links = append(bench.Links, linkStats{
			Node: int(l.Key.Node), Port: fmt.Sprintf("%v", topo.Ports[l.Key.Port]),
			Packets: l.Packets, Bytes: l.Bytes, BusyUs: l.Busy.Us(),
			Queued: l.Queued, MaxWaitNs: l.MaxWait.Ns(),
		})
	}
	b.WriteString(lt.String())

	armed, fired := arRec.CounterWaits()
	b.WriteString(fmt.Sprintf("\ncounter waits during the all-reduce: armed=%d fired=%d\n", armed, fired))
	bench.CountersArmed, bench.CountersFired = armed, fired

	b.WriteString("all-reduce round spans:\n")
	for _, sp := range arRec.Spans() {
		b.WriteString(fmt.Sprintf("  %-20s %8.3f us -> %8.3f us  (%.3f us)\n",
			sp.Label, sp.Start.Us(), sp.End.Us(), sp.End.Sub(sp.Start).Us()))
		bench.Phases = append(bench.Phases, phaseStats{
			Label: sp.Label, StartUs: sp.Start.Us(), EndUs: sp.End.Us(),
		})
	}

	js, err := json.MarshalIndent(&bench, "", "  ")
	if err != nil {
		panic(err)
	}
	js = append(js, '\n')

	return Artifacts{Report: b.String(), BenchJSON: js, Trace: traceScenario(sess).ChromeTrace()}
}

func init() {
	register(Experiment{ID: "metrics", Title: "measured-latency observability report",
		run:       func(s *Session, quick bool) string { return metricsArtifacts(s, quick).Report },
		artifacts: metricsArtifacts})
}
