package harness

import (
	"fmt"

	"anton/internal/cluster"
	"anton/internal/collective"
	"anton/internal/fault"
	"anton/internal/machine"
	"anton/internal/mdmap"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// The kill sweep quantifies hard-failure survival: permanent link and
// node deaths injected mid-run, survived by fault-aware rerouting plus
// the synchronization-counter watchdog on Anton, and by uplink failover
// plus degraded collectives on the InfiniBand baseline. The sweep
// reports the recovery cost — added collective latency, lost/re-issued
// packets, detour path stretch — as the number of dead links grows, and
// how long an MD run takes to re-stabilize after a mid-step kill.

// killList is the fixed, spatially spread set of torus links the sweep
// kills (on the 8x8x8 flagship machine and, by rank identity, on the
// cluster as uplink failures).
var killList = []fault.Link{
	{Node: 0, Port: topo.Port{Dim: topo.X, Dir: +1}},
	{Node: 9, Port: topo.Port{Dim: topo.Y, Dir: +1}},
	{Node: 18, Port: topo.Port{Dim: topo.Z, Dir: +1}},
	{Node: 27, Port: topo.Port{Dim: topo.X, Dir: -1}},
	{Node: 36, Port: topo.Port{Dim: topo.Y, Dir: -1}},
	{Node: 45, Port: topo.Port{Dim: topo.Z, Dir: -1}},
}

// killPlan kills the first k links of killList at time at.
func killPlan(k int, at sim.Time) fault.Plan {
	p := fault.Plan{Seed: 9, Watchdog: 15 * sim.Us}
	for _, l := range killList[:k] {
		p.KillLinks = append(p.KillLinks, fault.LinkKill{Link: l, At: at})
	}
	return p
}

// antonKillReduce runs the 512-node dimension-ordered all-reduce under
// plan p and returns its completion time and the recovery tallies.
func antonKillReduce(sess *Session, p fault.Plan, bytes int) (sim.Dur, machine.RecoveryStats) {
	s := faultSim(sess, p)
	m := machine.New(s, topo.NewTorus(8, 8, 8), noc.DefaultModel())
	ar := collective.NewAllReduce(m, collective.DefaultConfig(bytes))
	var done sim.Time
	ar.Run(nil, func(at sim.Time) { done = at })
	s.Run()
	return sim.Dur(done), m.Recovery()
}

// antonDetourPing measures one 0-byte counted remote write from (0,0,0)
// to (1,0,0) under plan p with kills applied from t=0: with 0:X+ dead
// this is the latency of the minimal surviving detour (the fault-free
// value is the paper's 162 ns).
func antonDetourPing(sess *Session, p fault.Plan) sim.Dur {
	s := faultSim(sess, p)
	m := machine.New(s, topo.NewTorus(8, 8, 8), noc.DefaultModel())
	src := packet.Client{Node: m.Torus.ID(topo.C(0, 0, 0)), Kind: packet.Slice0}
	dst := packet.Client{Node: m.Torus.ID(topo.C(1, 0, 0)), Kind: packet.Slice0}
	var done sim.Time
	m.Client(dst).Wait(0, 1, func() { done = s.Now() })
	m.Client(src).Write(dst, 0, 0, 0)
	s.Run()
	return sim.Dur(done)
}

// ibKillReduce runs the 512-rank recursive-doubling all-reduce under
// plan p (link kills read as rank uplink failures).
func ibKillReduce(sess *Session, p fault.Plan, bytes int) (sim.Dur, cluster.RecoveryStats) {
	s := faultSim(sess, p)
	c := cluster.New(s, 512, cluster.DDR2InfiniBand())
	var done sim.Time
	c.AllReduce(bytes, func(at sim.Time) { done = at })
	s.Run()
	return sim.Dur(done), c.Recovery()
}

// mdKillSteps runs a small MD mapping for steps steps under plan p and
// returns the per-step critical-path times.
func mdKillSteps(sess *Session, p fault.Plan, steps int) []sim.Dur {
	s := faultSim(sess, p)
	m := machine.New(s, topo.NewTorus(4, 4, 4), noc.DefaultModel())
	cfg := mdmap.DefaultConfig()
	cfg.Atoms = 4000
	cfg.MigrationInterval = 0
	cfg.GridN = 16
	mp := mdmap.New(s, m, cfg)
	out := make([]sim.Dur, steps)
	for i := range out {
		out[i] = mp.RunStep().Total
	}
	return out
}

func killsweep(sess *Session, quick bool) string {
	out := header("Kill sweep: recovery cost vs dead links and nodes (Anton vs InfiniBand)")
	ks := []int{0, 1, 2, 4, 6}
	mdSteps := 6
	if quick {
		ks = []int{0, 1, 6}
		mdSteps = 4
	}
	killAt := sim.Time(500 * sim.Ns)
	mdKillAt := sim.Time(30 * sim.Us)

	type row struct {
		ar    sim.Dur
		rec   machine.RecoveryStats
		ping  sim.Dur
		ibAr  sim.Dur
		ibRec cluster.RecoveryStats
	}
	rows := sweep(sess, len(ks), func(i int) row {
		var r row
		// Kills land mid-collective: the watchdog re-issues what the
		// dead links swallowed.
		p := killPlan(ks[i], killAt)
		r.ar, r.rec = antonKillReduce(sess, p, 32)
		r.ibAr, r.ibRec = ibKillReduce(sess, p, 32)
		// Detour stretch is measured with the same links dead from t=0.
		r.ping = antonDetourPing(sess, killPlan(ks[i], 0))
		return r
	})

	t := NewTable("dead links", "Anton 32B reduce (us)", "+vs intact", "lost", "reissued", "rerouted",
		"wdog fires", "detour ping (ns)", "IB 32B reduce (us)", "IB failovers")
	base := rows[0]
	for i, r := range rows {
		t.Row(fmt.Sprintf("%d", ks[i]),
			fmt.Sprintf("%.2f", r.ar.Us()),
			fmt.Sprintf("%+.2f", (r.ar-base.ar).Us()),
			fmt.Sprintf("%d", r.rec.Lost),
			fmt.Sprintf("%d", r.rec.Reissues),
			fmt.Sprintf("%d", r.rec.Rerouted),
			fmt.Sprintf("%d", r.rec.WatchdogFires),
			fmt.Sprintf("%.1f", r.ping.Ns()),
			fmt.Sprintf("%.2f", r.ibAr.Us()),
			fmt.Sprintf("%d", r.ibRec.FailedOver))
	}
	out += t.String()
	out += fmt.Sprintf("\nlinks killed at %.1f us mid-collective (watchdog %.0f us); the detour ping column\n"+
		"kills the same links at t=0 and measures the one-hop write over the minimal surviving\n"+
		"route (intact: 162.0 ns). IB reads a killed link as the rank's switch uplink failing over.\n",
		sim.Dur(killAt).Us(), (15 * sim.Us).Us())

	// A whole dead node: waits on its contributions complete degraded.
	nodePlan := fault.Plan{Seed: 9, Watchdog: 15 * sim.Us,
		KillNodes: []fault.NodeKill{{Node: 42, At: killAt}}}
	nAr, nRec := antonKillReduce(sess, nodePlan, 32)
	nIbAr, nIbRec := ibKillReduce(sess, nodePlan, 32)
	out += fmt.Sprintf("\ndead node (node 42 killed at %.1f us):\n", sim.Dur(killAt).Us())
	out += fmt.Sprintf("  Anton 32B reduce %.2f us  (%v)\n", nAr.Us(), nRec)
	out += fmt.Sprintf("  IB    32B reduce %.2f us  (%v)\n", nIbAr.Us(), nIbRec)

	// MD re-stabilization: compare a mid-run kill against the same kill
	// applied at t=0 (the degraded steady state). Steps that differ are
	// the transient the recovery machinery takes to re-converge.
	mid := mdKillSteps(sess, killPlan(1, mdKillAt), mdSteps)
	steady := mdKillSteps(sess, killPlan(1, 0), mdSteps)
	intact := mdKillSteps(sess, killPlan(0, 0), mdSteps)
	recoverSteps := 0
	for i := range mid {
		if mid[i] != steady[i] {
			recoverSteps = i + 1
		}
	}
	var midSum, intactSum sim.Dur
	for i := range mid {
		midSum += mid[i]
		intactSum += intact[i]
	}
	out += fmt.Sprintf("\nMD on 4x4x4 (4000 atoms), 0:X+ killed at %.0f us: %d of %d steps differ from the\n"+
		"kill-at-t=0 steady state before per-step times re-converge; average step %.2f us\n"+
		"vs %.2f us intact (%+.1f%%).\n",
		sim.Dur(mdKillAt).Us(), recoverSteps, mdSteps,
		(midSum / sim.Dur(mdSteps)).Us(), (intactSum / sim.Dur(mdSteps)).Us(),
		100*(float64(midSum)/float64(intactSum)-1))
	return out
}

func init() {
	register(Experiment{ID: "killsweep", Title: "hard-failure recovery cost vs dead links/nodes", run: killsweep})
}
