package harness

import (
	"fmt"

	"anton/internal/cluster"
	"anton/internal/machine"
	"anton/internal/mdmap"
	"anton/internal/sim"
)

// antonStepTimes runs the DHFR benchmark mapping on a 512-node machine and
// returns averaged range-limited and long-range step timings (migration
// disabled, matching the per-step-type profiling of Table 3).
func antonStepTimes(sess *Session, atoms int) (rl, lr mdmap.StepTiming) {
	s := sess.NewSim()
	m := machine.Default512(s)
	cfg := mdmap.DefaultConfig()
	cfg.Atoms = atoms
	cfg.MigrationInterval = 0
	mp := mdmap.New(s, m, cfg)
	// Average two of each step kind (the steps are deterministic, so two
	// suffice to confirm stability).
	var rls, lrs []mdmap.StepTiming
	for i := 0; i < 4; i++ {
		st := mp.RunStep()
		if st.Kind == mdmap.RangeLimited {
			rls = append(rls, st)
		} else {
			lrs = append(lrs, st)
		}
	}
	avg := func(xs []mdmap.StepTiming) mdmap.StepTiming {
		out := xs[0]
		for _, x := range xs[1:] {
			out.Total += x.Total
			out.Comm += x.Comm
			out.FFT += x.FFT
			out.Thermo += x.Thermo
			out.SentPerNode += x.SentPerNode
			out.RecvPerNode += x.RecvPerNode
		}
		n := sim.Dur(len(xs))
		out.Total /= n
		out.Comm /= n
		out.FFT /= n
		out.Thermo /= n
		out.SentPerNode /= float64(len(xs))
		out.RecvPerNode /= float64(len(xs))
		return out
	}
	return avg(rls), avg(lrs)
}

// Table3Sweep runs the Table 3 step-time measurement for several system
// sizes, one independent machine per size, on the experiment worker pool
// (see SetWorkers). It returns the averaged per-step total for each size
// in input order; the per-size results are identical for any worker
// count. This is the workload behind BenchmarkTable3Sweep.
func Table3Sweep(atomCounts []int) []sim.Dur {
	sess := NewSession()
	return sweep(sess, len(atomCounts), func(k int) sim.Dur {
		rl, lr := antonStepTimes(sess, atomCounts[k])
		return (rl.Total + lr.Total) / 2
	})
}

func table3(sess *Session, quick bool) string {
	out := header("Table 3: critical-path communication and total time, DHFR on 512 nodes")
	rl, lr := antonStepTimes(sess, 23558)
	avgComm := (rl.Comm + lr.Comm) / 2
	avgTotal := (rl.Total + lr.Total) / 2

	// The Anton FFT/thermostat rows report the extents of those phases
	// within a long-range step; their communication part excludes the
	// arithmetic they contain.
	fftComm := lr.FFT - 2*sim.Us // ~2us of FFT arithmetic per node chain
	thermoComm := lr.Thermo - 500*sim.Ns

	des := cluster.MeasureSim(512, cluster.DDR2InfiniBand(), sess.NewSim)
	d := cluster.NewDesmond(cluster.New(sess.NewSim(), 512, cluster.DDR2InfiniBand()))
	desRLTotal := des.RangeLimitedComm + d.RangeLimitedCompute
	desLRTotal := des.LongRangeComm + d.LongRangeCompute
	desAvgComm := (des.RangeLimitedComm + des.LongRangeComm) / 2
	desAvgTotal := (desRLTotal + desLRTotal) / 2
	desFFTTotal := des.FFTComm + d.FFTCompute
	desThermoTotal := des.ThermostatComm + d.ThermostatCompute

	t := NewTable("phase", "Anton comm (us)", "Anton total (us)", "Desmond comm (us)", "Desmond total (us)")
	row := func(name string, ac, at, dc, dt sim.Dur) {
		t.Row(name, fmt.Sprintf("%.1f", ac.Us()), fmt.Sprintf("%.1f", at.Us()),
			fmt.Sprintf("%.0f", dc.Us()), fmt.Sprintf("%.0f", dt.Us()))
	}
	row("average time step", avgComm, avgTotal, desAvgComm, desAvgTotal)
	row("range-limited time step", rl.Comm, rl.Total, des.RangeLimitedComm, desRLTotal)
	row("long-range time step", lr.Comm, lr.Total, des.LongRangeComm, desLRTotal)
	row("FFT-based convolution", fftComm, lr.FFT, des.FFTComm, desFFTTotal)
	row("thermostat", thermoComm, lr.Thermo, des.ThermostatComm, desThermoTotal)
	out += t.String()

	out += fmt.Sprintf("\npaper (Anton):   avg 9.8/15.6, range-limited 5.0/9.0, long-range 14.6/22.2, FFT 7.5/8.5, thermostat 2.6/3.0\n")
	out += fmt.Sprintf("paper (Desmond): avg 262/565, range-limited 108/351, long-range 416/779, FFT 230/290, thermostat 78/99\n")
	out += fmt.Sprintf("\ncritical-path communication ratio (average step): %.0fx (paper: ~27x)\n",
		float64(desAvgComm)/float64(avgComm))
	out += fmt.Sprintf("messages per node per step: sent %.0f, received %.0f (paper: over 250 sent, over 500 received)\n",
		(rl.SentPerNode+lr.SentPerNode)/2, (rl.RecvPerNode+lr.RecvPerNode)/2)
	return out
}

func init() {
	register(Experiment{ID: "table3", Title: "Anton vs Desmond step times", run: table3})
}
