// Package harness regenerates every table and figure of the paper's
// evaluation. Each experiment is a function returning a rendered text
// report; the registry maps experiment ids (fig5, table3, ...) to them so
// the antonbench command and the top-level benchmarks share one
// implementation.
package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"anton/internal/fault"
	"anton/internal/metrics"
	"anton/internal/par"
	"anton/internal/sim"
)

// Experiment is a runnable reproduction of one table or figure.
type Experiment struct {
	ID    string
	Title string
	// Run executes the experiment. quick trades sampling density for
	// speed where the full experiment is expensive (Fig. 11/12).
	Run func(quick bool) string
	// Analytic marks experiments that support the closed-form fast-path
	// tier (-fidelity analytic). Everything else is event-driven only and
	// antonbench refuses to run it at analytic fidelity.
	Analytic bool
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// workers is the pool size experiment sweeps use for their independent
// simulation instances. Atomic because benchmarks and tests flip it
// around concurrent experiment runs.
var workers int64 = 1

// SetWorkers sets the number of goroutines experiments may use:
// 1 (the default) runs everything on the calling goroutine, 0 or a
// negative value resolves to GOMAXPROCS. The setting feeds two layers:
// experiment sweeps run their independent simulator instances on a pool
// of this size, and every simulator the harness builds passes it to the
// PDES kernel (sim.SetWorkers), which parallelizes the event-queue work
// inside a single simulation over spatial domains. Every experiment's
// rendered report is byte-identical for any setting — sweep points own
// private simulators assembled in index order, and the PDES executor
// commits events in the sequential kernel's canonical order.
func SetWorkers(n int) { atomic.StoreInt64(&workers, int64(n)) }

// Workers reports the current sweep pool size.
func Workers() int { return int(atomic.LoadInt64(&workers)) }

// Fidelity tiers. FidelityDES answers every query by running the
// event-driven simulator; FidelityAnalytic answers from the closed-form
// fast-path tier (internal/analytic) where an experiment supports it.
const (
	FidelityDES      = "des"
	FidelityAnalytic = "analytic"
)

// fidelity is the selected simulation tier; the zero value means
// FidelityDES. Atomic for the same reason as workers.
var fidelity atomic.Value

// ParseFidelity validates a -fidelity flag value and returns the
// canonical tier name.
func ParseFidelity(s string) (string, error) {
	switch s {
	case FidelityDES, FidelityAnalytic:
		return s, nil
	}
	return "", fmt.Errorf("unknown fidelity %q (valid values: %s, %s)", s, FidelityDES, FidelityAnalytic)
}

// SetFidelity selects the simulation tier experiments answer queries
// at. Only FidelityDES and FidelityAnalytic are accepted.
func SetFidelity(s string) error {
	f, err := ParseFidelity(s)
	if err != nil {
		return err
	}
	fidelity.Store(f)
	return nil
}

// Fidelity reports the selected tier (FidelityDES by default).
func Fidelity() string {
	if f, ok := fidelity.Load().(string); ok {
		return f
	}
	return FidelityDES
}

// faultPlan is the fault plan applied to every simulator the harness
// builds (nil = fault-free). Set from the antonbench -faults flag.
var faultPlan atomic.Pointer[fault.Plan]

// SetFaultPlan installs the fault plan every subsequently built
// experiment simulator runs under; nil restores the fault-free models.
// Each simulator instance gets its own injector seeded from the plan,
// so experiment reports remain byte-identical at any worker count, and
// a zero-rate plan reproduces the fault-free reports bit for bit.
func SetFaultPlan(p *fault.Plan) { faultPlan.Store(p) }

// FaultPlan returns the currently installed plan, or nil.
func FaultPlan() *fault.Plan { return faultPlan.Load() }

// metricsOn, when set, attaches a lifecycle recorder to every simulator
// the harness builds. Recording is purely passive, so every experiment
// report is byte-identical with the toggle on or off — which the
// zero-overhead identity test pins against the golden reports.
var metricsOn atomic.Bool

// SetMetrics toggles lifecycle recording on every subsequently built
// experiment simulator. The metrics experiment attaches its own
// recorders and does not need the toggle; it exists so tests (and
// future experiments) can prove recording never changes a result.
func SetMetrics(on bool) { metricsOn.Store(on) }

// MetricsEnabled reports whether harness simulators record lifecycles.
func MetricsEnabled() bool { return metricsOn.Load() }

// NewSim returns a fresh simulator with the current fault plan (if any)
// and, when enabled, a metrics recorder attached. Every experiment
// builds its simulators through this, which is how one -faults flag
// perturbs the whole evaluation.
func NewSim() *sim.Sim {
	s := sim.New()
	s.SetWorkers(par.Workers(Workers()))
	if p := faultPlan.Load(); p != nil {
		fault.Attach(s, *p)
	}
	if metricsOn.Load() {
		metrics.Attach(s)
	}
	return s
}

// sweep runs n independent jobs — each building its own sim.Sim and
// machine — on the package worker pool and returns the results in index
// order.
func sweep[T any](n int, job func(i int) T) []T {
	out := make([]T, n)
	par.ParFor(par.Workers(Workers()), n, func(i int) { out[i] = job(i) })
	return out
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Table is a simple fixed-width text table builder.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table { return &Table{headers: headers} }

// Row appends a row; values are formatted with %v unless already strings.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func header(title string) string {
	return title + "\n" + strings.Repeat("=", len(title)) + "\n"
}
