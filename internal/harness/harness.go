// Package harness regenerates every table and figure of the paper's
// evaluation. Each experiment is a function returning a rendered text
// report; the registry maps experiment ids (fig5, table3, ...) to them so
// the antonbench command, the antonserve HTTP tier, and the top-level
// benchmarks share one implementation.
//
// Experiments run inside a Session, which carries everything that may
// perturb simulator construction or report content: the sweep/PDES
// worker count, the fidelity tier, the fault plan, and the metrics
// toggle. Sessions are isolated — two sessions with different fault
// plans can run concurrently on the same process — which is what lets
// the serving tier execute many sim sessions at once. The package-level
// Set* functions remain as process-wide defaults for the one-shot CLIs;
// Experiment.Run snapshots them into a fresh Session per call, so the
// CLI behaviour is unchanged.
package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"anton/internal/fault"
	"anton/internal/metrics"
	"anton/internal/par"
	"anton/internal/sim"
)

// Experiment is a runnable reproduction of one table or figure.
type Experiment struct {
	ID    string
	Title string
	// run executes the experiment inside a session. quick trades sampling
	// density for speed where the full experiment is expensive
	// (Fig. 11/12).
	run func(s *Session, quick bool) string
	// artifacts, when non-nil, runs the experiment and returns its
	// machine-readable artifacts alongside the report (currently only the
	// metrics experiment: BENCH_metrics.json plus the chrome-trace
	// export). The CLI and the HTTP tier dispatch on this instead of
	// hardcoding experiment ids.
	artifacts func(s *Session, quick bool) Artifacts
	// Analytic marks experiments that support the closed-form fast-path
	// tier (-fidelity analytic). Everything else is event-driven only and
	// antonbench refuses to run it at analytic fidelity.
	Analytic bool
}

// Run executes the experiment with a session snapshotted from the
// process-wide defaults (SetWorkers, SetFidelity, SetFaultPlan,
// SetMetrics) — the one-shot CLI and test entry point.
func (e Experiment) Run(quick bool) string { return e.run(NewSession(), quick) }

// RunWith executes the experiment inside the given session.
func (e Experiment) RunWith(s *Session, quick bool) string { return e.run(s, quick) }

// HasArtifacts reports whether the experiment produces machine-readable
// artifacts beyond its text report.
func (e Experiment) HasArtifacts() bool { return e.artifacts != nil }

// ArtifactsWith runs the experiment inside the given session and returns
// its full artifact set. It panics if the experiment has none; check
// HasArtifacts first.
func (e Experiment) ArtifactsWith(s *Session, quick bool) Artifacts {
	if e.artifacts == nil {
		panic(fmt.Sprintf("harness: experiment %q has no artifacts", e.ID))
	}
	return e.artifacts(s, quick)
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// Session is one isolated experiment run's configuration. The zero
// value is usable: sequential sweeps, DES fidelity, no faults, no
// metrics. Sessions must not be shared between concurrent experiment
// runs (each run owns its progress counter), but any number of
// sessions may run concurrently — nothing in the harness is shared
// between them, which is the isolation contract the serving tier's
// concurrent sim sessions rely on.
type Session struct {
	// Workers is the goroutine budget: 1 (and 0 by convention in the
	// package-level default) runs everything on the calling goroutine, a
	// negative value or 0 passed through par.Workers resolves to
	// GOMAXPROCS. It feeds two layers: experiment sweeps run their
	// independent simulator instances on a pool of this size, and every
	// simulator the session builds passes it to the PDES kernel
	// (sim.SetWorkers). Reports are byte-identical at any setting.
	Workers int
	// Fidelity selects the simulation tier (FidelityDES when empty).
	Fidelity string
	// Faults, when non-nil, is attached to every simulator the session
	// builds; each simulator gets its own injector seeded from the plan.
	Faults *fault.Plan
	// Metrics attaches a passive lifecycle recorder to every simulator
	// the session builds. Recording never changes a report byte (the
	// zero-overhead identity gates pin this).
	Metrics bool
	// Progress, when non-nil, is called with the cumulative number of
	// completed sweep units each time one finishes. Sweep units complete
	// on pool goroutines, so the hook must be safe for concurrent use;
	// the count is monotone. The serving tier streams it to clients.
	Progress func(completed int)

	// Ctx, when non-nil, cooperatively cancels the run: the generic
	// sweep() consults it between sweep points (a cancelled session skips
	// every remaining sweep unit), and every simulator the session builds
	// installs an abort hook polled at PDES window boundaries and
	// sequential event-batch boundaries (sim.SetAbort). Cancellation never
	// produces partial committed state inside a simulator — the kernel
	// stops only between fully committed events — but a cancelled run's
	// report is a truncated artifact and must be discarded, never cached
	// or served; the serving tier aborts the in-flight cache entry. Nil
	// means the session is never cancelled.
	Ctx context.Context

	completed atomic.Int64
}

// NewSession snapshots the process-wide defaults into a fresh session.
func NewSession() *Session {
	return &Session{
		Workers:  Workers(),
		Fidelity: Fidelity(),
		Faults:   FaultPlan(),
		Metrics:  MetricsEnabled(),
	}
}

// fidelity returns the session tier, resolving the zero value.
func (s *Session) fidelity() string {
	if s.Fidelity == "" {
		return FidelityDES
	}
	return s.Fidelity
}

// NewSim returns a fresh simulator configured by the session: the PDES
// kernel worker count, the fault plan (if any), and, when enabled, a
// metrics recorder. Every experiment builds its simulators through
// this, which is how one request's fault plan perturbs exactly that
// request's evaluation and nothing else.
func (s *Session) NewSim() *sim.Sim {
	sm := sim.New()
	sm.SetWorkers(par.Workers(s.Workers))
	s.armAbort(sm)
	if s.Faults != nil {
		fault.Attach(sm, *s.Faults)
	}
	if s.Metrics {
		metrics.Attach(sm)
	}
	return sm
}

// armAbort installs the session's cooperative-abort hook on sm (a
// no-op for a session without a context). Every simulator a session
// run builds must pass through here — NewSim does, and so does the
// fault-sweep experiments' custom-plan faultSim — otherwise a
// cancellation stalls until the next sweep point instead of stopping
// at the next event batch or PDES window.
func (s *Session) armAbort(sm *sim.Sim) {
	if s.Ctx == nil {
		return
	}
	done := s.Ctx.Done()
	sm.SetAbort(func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	})
}

// step records one completed sweep unit and notifies the progress hook.
func (s *Session) step() {
	n := s.completed.Add(1)
	if s.Progress != nil {
		s.Progress(int(n))
	}
}

// Completed reports the cumulative number of finished sweep units.
func (s *Session) Completed() int { return int(s.completed.Load()) }

// Cancelled reports whether the session's context (if any) has been
// cancelled. Experiments and the generic sweep consult it between units
// of work; once it returns true the run's output is garbage by contract.
func (s *Session) Cancelled() bool {
	if s.Ctx == nil {
		return false
	}
	select {
	case <-s.Ctx.Done():
		return true
	default:
		return false
	}
}

// Err returns the session context's error: nil while live,
// context.Canceled or context.DeadlineExceeded after cancellation.
func (s *Session) Err() error {
	if s.Ctx == nil {
		return nil
	}
	return s.Ctx.Err()
}

// sweep runs n independent jobs — each building its own sim.Sim and
// machine — on the session worker pool and returns the results in index
// order. Each completed job bumps the session progress counter. A
// cancelled session skips every not-yet-started unit, leaving zero
// values behind: the caller's report is then a discarded artifact (the
// progress counter also stops, so observers can tell the run died).
func sweep[T any](s *Session, n int, job func(i int) T) []T {
	out := make([]T, n)
	par.ParFor(par.Workers(s.Workers), n, func(i int) {
		if s.Cancelled() {
			return
		}
		out[i] = job(i)
		s.step()
	})
	return out
}

// workers is the process-default pool size experiment sweeps use for
// their independent simulation instances. Atomic because benchmarks and
// tests flip it around concurrent experiment runs.
var workers int64 = 1

// SetWorkers sets the process-default number of goroutines experiments
// may use: 1 (the default) runs everything on the calling goroutine, 0
// or a negative value resolves to GOMAXPROCS. Experiment.Run snapshots
// it into each run's session; see Session.Workers.
func SetWorkers(n int) { atomic.StoreInt64(&workers, int64(n)) }

// Workers reports the current default sweep pool size.
func Workers() int { return int(atomic.LoadInt64(&workers)) }

// Fidelity tiers. FidelityDES answers every query by running the
// event-driven simulator; FidelityAnalytic answers from the closed-form
// fast-path tier (internal/analytic) where an experiment supports it.
const (
	FidelityDES      = "des"
	FidelityAnalytic = "analytic"
)

// fidelity is the process-default simulation tier; the zero value means
// FidelityDES. Atomic for the same reason as workers.
var fidelity atomic.Value

// ParseFidelity validates a -fidelity flag value and returns the
// canonical tier name.
func ParseFidelity(s string) (string, error) {
	switch s {
	case FidelityDES, FidelityAnalytic:
		return s, nil
	}
	return "", fmt.Errorf("unknown fidelity %q (valid values: %s, %s)", s, FidelityDES, FidelityAnalytic)
}

// SetFidelity selects the process-default simulation tier. Only
// FidelityDES and FidelityAnalytic are accepted.
func SetFidelity(s string) error {
	f, err := ParseFidelity(s)
	if err != nil {
		return err
	}
	fidelity.Store(f)
	return nil
}

// Fidelity reports the default tier (FidelityDES by default).
func Fidelity() string {
	if f, ok := fidelity.Load().(string); ok {
		return f
	}
	return FidelityDES
}

// faultPlan is the process-default fault plan (nil = fault-free). Set
// from the antonbench -faults flag.
var faultPlan atomic.Pointer[fault.Plan]

// SetFaultPlan installs the default fault plan snapshotted into every
// subsequently started Experiment.Run; nil restores the fault-free
// models. Each simulator instance gets its own injector seeded from the
// plan, so experiment reports remain byte-identical at any worker
// count, and a zero-rate plan reproduces the fault-free reports bit for
// bit.
func SetFaultPlan(p *fault.Plan) { faultPlan.Store(p) }

// FaultPlan returns the currently installed default plan, or nil.
func FaultPlan() *fault.Plan { return faultPlan.Load() }

// metricsOn, when set, attaches a lifecycle recorder to every simulator
// default sessions build. Recording is purely passive, so every
// experiment report is byte-identical with the toggle on or off — which
// the zero-overhead identity test pins against the golden reports.
var metricsOn atomic.Bool

// SetMetrics toggles the default for lifecycle recording. The metrics
// experiment attaches its own recorders and does not need the toggle;
// it exists so tests (and the serving tier) can prove recording never
// changes a result.
func SetMetrics(on bool) { metricsOn.Store(on) }

// MetricsEnabled reports the default metrics toggle.
func MetricsEnabled() bool { return metricsOn.Load() }

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Experiments returns every registered experiment sorted by id — the
// enumerable registry shared by the antonbench CLI and the antonserve
// HTTP tier.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Table is a simple fixed-width text table builder.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table { return &Table{headers: headers} }

// Row appends a row; values are formatted with %v unless already strings.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func header(title string) string {
	return title + "\n" + strings.Repeat("=", len(title)) + "\n"
}
