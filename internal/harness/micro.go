package harness

import (
	"fmt"

	"anton/internal/cluster"
	"anton/internal/machine"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// antonTransfer measures the total time to move totalBytes from slice0 at
// the origin to slice0 of a node `hops` X hops away, split into count
// equal messages. Messages larger than the 256-byte payload limit are
// carried in multiple packets, exactly as Anton software would send them.
func antonTransfer(sess *Session, hops, totalBytes, count int) sim.Dur {
	s := sess.NewSim()
	m := machine.Default512(s)
	dst := packet.Client{Node: m.Torus.ID(topo.C(hops, 0, 0)), Kind: packet.Slice0}
	src := m.Client(packet.Client{Node: 0, Kind: packet.Slice0})

	per := totalBytes / count
	packets := 0
	var done sim.Time
	send := func(bytes int) {
		for bytes > 0 {
			chunk := bytes
			if chunk > packet.MaxPayloadBytes {
				chunk = packet.MaxPayloadBytes
			}
			src.Write(dst, 3, packets*32, chunk)
			packets++
			bytes -= chunk
		}
	}
	for i := 0; i < count; i++ {
		bytes := per
		if i == count-1 {
			bytes = totalBytes - per*(count-1)
		}
		send(bytes)
	}
	m.Client(dst).Wait(3, uint64(packets), func() { done = s.Now() })
	s.Run()
	return sim.Dur(done)
}

func infinibandTransfer(sess *Session, totalBytes, count int) sim.Dur {
	s := sess.NewSim()
	c := cluster.New(s, 2, cluster.DDR2InfiniBand())
	var done sim.Time
	c.TransferManyMessages(0, 1, totalBytes, count, func(at sim.Time) { done = at })
	s.Run()
	return sim.Dur(done)
}

func fig7(sess *Session, quick bool) string {
	out := header("Figure 7: time to transfer 2 KB vs number of messages")
	counts := []int{1, 2, 4, 8, 16, 24, 32, 48, 64}
	t := NewTable("messages", "Anton 1 hop (us)", "Anton 4 hops (us)", "InfiniBand (us)",
		"A1 norm", "A4 norm", "IB norm")
	type transfer struct{ a1, a4, ib sim.Dur }
	rs := sweep(sess, len(counts), func(i int) transfer {
		n := counts[i]
		return transfer{antonTransfer(sess, 1, 2048, n), antonTransfer(sess, 4, 2048, n), infinibandTransfer(sess, 2048, n)}
	})
	base1, base4, baseIB := rs[0].a1, rs[0].a4, rs[0].ib
	for i, n := range counts {
		a1, a4, ib := rs[i].a1, rs[i].a4, rs[i].ib
		t.Row(n,
			fmt.Sprintf("%.2f", a1.Us()), fmt.Sprintf("%.2f", a4.Us()), fmt.Sprintf("%.2f", ib.Us()),
			fmt.Sprintf("%.2f", float64(a1)/float64(base1)),
			fmt.Sprintf("%.2f", float64(a4)/float64(base4)),
			fmt.Sprintf("%.2f", float64(ib)/float64(baseIB)))
	}
	out += t.String()
	out += "\npaper: on Anton the message count barely matters (normalized ~1-2 at 64\n" +
		"messages); on InfiniBand the 64-message transfer costs ~8x the single message\n"
	return out
}

func halfbw(sess *Session, quick bool) string {
	model := noc.DefaultModel()
	out := header("Half-bandwidth message size (Section III.D)")
	peak := 256.0 * 8 / model.LinkService(288).Ns()
	t := NewTable("payload (B)", "payload bandwidth (Gbit/s)", "% of peak")
	half := 0
	for _, s := range []int{4, 8, 16, 24, 28, 32, 48, 64, 96, 128, 192, 256} {
		wire := packet.HeaderBytes + s
		if s <= packet.InlineBytes {
			wire = packet.HeaderBytes
		}
		bw := float64(s) * 8 / model.LinkService(wire).Ns()
		if half == 0 && bw >= peak/2 {
			half = s
		}
		t.Row(s, fmt.Sprintf("%.1f", bw), fmt.Sprintf("%.0f%%", 100*bw/peak))
	}
	out += t.String()
	out += fmt.Sprintf("\nhalf of the %.1f Gbit/s peak data bandwidth is reached at %d-byte messages\n", peak, half)
	out += "paper: 50% of peak at 28-byte messages on Anton, versus 1.4 KB (Blue Gene/L),\n" +
		"16 KB (Red Storm) and 39 KB (ASC Purple) on contemporary supercomputers\n"
	return out
}

func init() {
	register(Experiment{ID: "fig7", Title: "2KB transfer vs message count", run: fig7})
	register(Experiment{ID: "halfbw", Title: "half-bandwidth message size", run: halfbw})
}
