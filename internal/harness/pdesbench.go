package harness

import (
	"anton/internal/machine"
	"anton/internal/mdmap"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// The PDES benchmark workloads measure the parallel event kernel itself:
// how fast the simulator retires events (host wall time and events/sec)
// on the two workloads the perf-trajectory gate tracks. They are shared
// by the top-level go-test benchmarks (bench_pdes_test.go) and the
// benchgate command, which compares a fresh run against the committed
// BENCH_pdes.json baseline.
//
// Each workload builds its own simulator directly from sim.New (not
// NewSim), so the gate measures the bare kernel — no fault injector or
// metrics recorder — and the event count it returns is a pure function
// of the model, identical on every host and at every worker setting.

// PDESBenchmark is one workload of the PDES perf gate.
type PDESBenchmark struct {
	// Name keys the workload in BENCH_pdes.json ("fig6", "sweep").
	Name string
	// Title is the human-readable description.
	Title string
	// Run executes the workload with the given PDES kernel worker count
	// and returns the number of simulation events fired — a
	// deterministic count the gate checks exactly, at any worker count.
	Run func(kernelWorkers int) uint64
}

// pdesBenchFig6 is the latency workload: a chain of sequential
// single-X-hop counted remote writes on the flagship 512-node machine —
// the Figure 6 measurement repeated back to back. The chain is
// intrinsically serial (each write launches from the previous
// completion), so it prices the kernel's window overhead on the 162 ns
// critical path rather than its parallel throughput.
func pdesBenchFig6(kernelWorkers int) uint64 {
	const pings = 400
	s := sim.New()
	s.SetWorkers(kernelWorkers)
	m := machine.Default512(s)
	src := packet.Client{Node: m.Torus.ID(topo.C(0, 0, 0)), Kind: packet.Slice0}
	dst := packet.Client{Node: m.Torus.ID(topo.C(1, 0, 0)), Kind: packet.Slice0}
	var round func(k int)
	round = func(k int) {
		if k == pings {
			return
		}
		m.Client(dst).Wait(0, uint64(k+1), func() { round(k + 1) })
		m.Client(src).Write(dst, 0, 0, 0)
	}
	round(0)
	s.Run()
	return s.Fired()
}

// pdesBenchSweep is the throughput workload: one range-limited plus one
// long-range DHFR time step mapped onto a 4x4x4 machine — the Table 3
// measurement at the sweep's reduced scale. All 64 nodes send
// concurrently, so this is where domain parallelism pays. (The full
// 512-node step fires the same event mix but takes ~8 s per run, too
// slow for a gate that needs several iterations to average noise out.)
func pdesBenchSweep(kernelWorkers int) uint64 {
	s := sim.New()
	s.SetWorkers(kernelWorkers)
	m := machine.New(s, topo.NewTorus(4, 4, 4), noc.DefaultModel())
	cfg := mdmap.DefaultConfig()
	cfg.MigrationInterval = 0
	cfg.GridN = 16
	mp := mdmap.New(s, m, cfg)
	mp.RunStep()
	mp.RunStep()
	return s.Fired()
}

// PDESBenchmarks returns the workloads of the PDES perf gate, in the
// order they appear in BENCH_pdes.json.
func PDESBenchmarks() []PDESBenchmark {
	return []PDESBenchmark{
		{
			Name:  "fig6",
			Title: "sequential single-hop counted writes on 512 nodes (critical-path latency)",
			Run:   pdesBenchFig6,
		},
		{
			Name:  "sweep",
			Title: "one range-limited + one long-range DHFR step on 512 nodes (event throughput)",
			Run:   pdesBenchSweep,
		},
	}
}
