package harness

import (
	"fmt"

	"anton/internal/machine"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// hopPath returns a destination coordinate h hops from the origin,
// travelling first along X (up to 4 hops), then Y, then Z, matching the
// measurement path of Figure 5 on an 8x8x8 machine.
func hopPath(h int) topo.Coord {
	c := topo.C(0, 0, 0)
	take := func(v int, max int) (int, int) {
		if v > max {
			return max, v - max
		}
		return v, 0
	}
	var x, y, z int
	x, h = take(h, 4)
	y, h = take(h, 4)
	z, _ = take(h, 4)
	c = topo.C(x, y, z)
	return c
}

// OneWayLatency measures a single counted remote write from slice0 at the
// origin to slice0 at dst on a fresh 512-node machine configured from the
// process-wide defaults.
func OneWayLatency(dst topo.Coord, bytes int) sim.Dur {
	return oneWayLatency(NewSession(), dst, bytes)
}

func oneWayLatency(sess *Session, dst topo.Coord, bytes int) sim.Dur {
	s := sess.NewSim()
	m := machine.Default512(s)
	return measureWrite(m, topo.C(0, 0, 0), dst, bytes, false)
}

// measureWrite measures the origin->dst write latency; if bidirectional,
// an opposite write is launched simultaneously (the ping-pong traffic of
// Figure 5's bidirectional curves) and the slower of the two directions is
// reported.
func measureWrite(m *machine.Machine, src, dst topo.Coord, bytes int, bidirectional bool) sim.Dur {
	s := m.Sim
	a := packet.Client{Node: m.Torus.ID(src), Kind: packet.Slice0}
	b := packet.Client{Node: m.Torus.ID(dst), Kind: packet.Slice0}
	start := s.Now()
	var fwd, rev sim.Time = -1, start
	m.Client(b).Wait(9, 1, func() { fwd = s.Now() })
	m.Client(a).Write(b, 9, 0, bytes)
	if bidirectional && a != b {
		rev = -1
		m.Client(a).Wait(9, 1, func() { rev = s.Now() })
		m.Client(b).Write(a, 9, 0, bytes)
	}
	s.Run()
	lat := fwd.Sub(start)
	if r := rev.Sub(start); r > lat {
		lat = r
	}
	return lat
}

func fig5(sess *Session, quick bool) string {
	out := header("Figure 5: one-way counted remote write latency vs network hops (8x8x8)")
	t := NewTable("hops", "0B uni (ns)", "0B bidir (ns)", "256B uni (ns)", "256B bidir (ns)")
	maxHops := 12
	// Every hop count is measured on its own fresh machine, so the hop
	// sweep runs on the experiment worker pool.
	rows := sweep(sess, maxHops+1, func(h int) [4]string {
		dst := hopPath(h)
		var cells [4]string
		for k, c := range []struct {
			bytes int
			bidir bool
		}{{0, false}, {0, true}, {256, false}, {256, true}} {
			s := sess.NewSim()
			m := machine.Default512(s)
			lat := measureWrite(m, topo.C(0, 0, 0), dst, c.bytes, c.bidir)
			cells[k] = fmt.Sprintf("%.1f", lat.Ns())
		}
		return cells
	})
	for h, cells := range rows {
		t.Row(h, cells[0], cells[1], cells[2], cells[3])
	}
	out += t.String()
	model := noc.DefaultModel()
	out += fmt.Sprintf("\nslopes: %.0f ns/hop in X, %.0f ns/hop in Y/Z (paper: 76 and 54)\n",
		model.HopIncrement(topo.X).Ns(), model.HopIncrement(topo.Y).Ns())
	out += "paper: 162 ns for a 0-byte message between X neighbours; 12 hops is the 8x8x8 maximum\n"
	return out
}

func fig6(sess *Session, quick bool) string {
	model := noc.DefaultModel()
	out := header("Figure 6: breakdown of single-X-hop counted remote write latency")
	t := NewTable("component", "model (ns)", "paper (ns)")
	t.Row("write packet send initiated in processing slice", fmt.Sprintf("%.0f", model.SliceSend.Ns()), "42")
	t.Row("source on-chip ring traversal (2 router hops)", fmt.Sprintf("%.0f", model.SrcRing.Ns()), "19")
	t.Row("link adapters + passive torus wire (both sides)", fmt.Sprintf("%.0f", model.AdapterPair[topo.X].Ns()), "20+20")
	t.Row("destination on-chip ring traversal (3 router hops)", fmt.Sprintf("%.0f", model.DstRing.Ns()), "25")
	t.Row("memory write + counter increment + successful poll", fmt.Sprintf("%.0f", model.Deliver.Ns()), "36")
	total := oneWayLatency(sess, topo.C(1, 0, 0), 0)
	t.Row("end-to-end (measured on the event simulator)", fmt.Sprintf("%.0f", total.Ns()), "162")
	out += t.String()
	return out
}

// table1Survey is the published latency survey of Table 1 (microseconds).
var table1Survey = []struct {
	machine string
	us      float64
	date    string
}{
	{"Altix 3700 BX2", 1.25, "2006"},
	{"QsNetII", 1.28, "2005"},
	{"Columbia", 1.6, "2005"},
	{"Sun Fire", 1.7, "2002"},
	{"EV7", 1.7, "2002"},
	{"J-Machine", 1.8, "1993"},
	{"QsNET", 1.9, "2001"},
	{"Roadrunner (InfiniBand)", 2.16, "2008"},
	{"Cray T3E", 2.75, "1996"},
	{"Blue Gene/P", 2.75, "2008"},
	{"Blue Gene/L", 2.8, "2005"},
	{"ASC Purple", 4.4, "2005"},
	{"Cray XT4", 4.5, "2007"},
	{"Red Storm", 6.9, "2005"},
	{"SR8000", 9.9, "2001"},
}

func table1(sess *Session, quick bool) string {
	out := header("Table 1: survey of published inter-node software-to-software latency")
	t := NewTable("machine", "latency (us)", "date")
	anton := oneWayLatency(sess, topo.C(1, 0, 0), 0)
	t.Row("Anton (measured here)", fmt.Sprintf("%.2f", anton.Us()), "2009")
	for _, row := range table1Survey {
		t.Row(row.machine, fmt.Sprintf("%.2f", row.us), row.date)
	}
	out += t.String()
	out += fmt.Sprintf("\nAnton advantage over the fastest survey entry: %.1fx (paper: 1.25/0.162 = 7.7x)\n",
		table1Survey[0].us/anton.Us())
	return out
}

func init() {
	register(Experiment{ID: "fig5", Title: "latency vs hops", run: fig5})
	register(Experiment{ID: "fig6", Title: "single-hop latency breakdown", run: fig6})
	register(Experiment{ID: "table1", Title: "latency survey", run: table1})
}
