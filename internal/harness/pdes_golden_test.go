package harness

import "testing"

// TestPDESGoldenIdentity pins the determinism contract of the parallel
// event kernel at the report level: the rendered experiment reports
// must be byte-identical between the sequential kernel and the
// partitioned executor at any worker count. fig6 runs one 512-node
// simulator (64 domains — pure single-simulation parallelism), metrics
// layers the full latency-recorder pipeline (sharded histograms,
// lifecycle traces) on top of it, while the fault sweeps layer the
// kernel under the sweep pool, the fault injector, and watchdog
// recovery.
func TestPDESGoldenIdentity(t *testing.T) {
	ids := []string{"fig6", "metrics", "faultsweep", "killsweep"}
	if testing.Short() {
		ids = ids[:3]
	}
	defer SetWorkers(Workers())
	for _, id := range ids {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		SetWorkers(1)
		want := e.Run(true)
		for _, w := range []int{2, 8} {
			SetWorkers(w)
			if got := e.Run(true); got != want {
				t.Fatalf("%s: workers=%d report differs from sequential report\n--- sequential ---\n%s\n--- workers=%d ---\n%s",
					id, w, want, w, got)
			}
		}
	}
}

// TestPDESBenchEventsWorkerIndependent pins the other half of the
// BENCH_pdes.json contract: each gate workload fires exactly the same
// number of events at any kernel worker count, so the committed event
// counts are machine-independent constants the perf gate can check
// exactly.
func TestPDESBenchEventsWorkerIndependent(t *testing.T) {
	for _, bm := range PDESBenchmarks() {
		if testing.Short() && bm.Name == "sweep" {
			continue // several seconds per run; exercised without -short and by ci.sh
		}
		want := bm.Run(1)
		if want == 0 {
			t.Fatalf("%s: fired no events", bm.Name)
		}
		for _, w := range []int{4, 8} {
			if got := bm.Run(w); got != want {
				t.Fatalf("%s: workers=%d fired %d events, sequential fired %d", bm.Name, w, got, want)
			}
		}
	}
}
