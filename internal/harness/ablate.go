package harness

import (
	"fmt"

	"anton/internal/collective"
	"anton/internal/machine"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// ablateAllReduce compares the paper's dimension-ordered all-reduce with
// the two designs it rejects: the radix-2 butterfly (more rounds, more
// hops) and summing in the accumulation memories (expensive cross-ring
// counter polling).
func ablateAllReduce(sess *Session, quick bool) string {
	out := header("Ablation: all-reduce algorithm choices (Section IV.B.4)")
	tori := []topo.Torus{topo.NewTorus(4, 4, 4), topo.NewTorus(8, 8, 8)}
	if quick {
		tori = tori[:1]
	}
	t := NewTable("torus", "dimension-ordered (us)", "radix-2 butterfly (us)", "accum-memory sums (us)")
	// The three algorithm variants per torus each run on a private
	// machine; the torus sweep runs on the experiment worker pool.
	type trio struct{ dim, fly, acc sim.Dur }
	rs := sweep(sess, len(tori), func(k int) trio {
		tor := tori[k]
		run := func(mk func(m *machine.Machine) func(func(topo.NodeID) []float64, func(sim.Time))) sim.Dur {
			s := sess.NewSim()
			m := machine.New(s, tor, noc.DefaultModel())
			var done sim.Time
			mk(m)(nil, func(at sim.Time) { done = at })
			s.Run()
			return sim.Dur(done)
		}
		dim := run(func(m *machine.Machine) func(func(topo.NodeID) []float64, func(sim.Time)) {
			return collective.NewAllReduce(m, collective.DefaultConfig(32)).Run
		})
		fly := run(func(m *machine.Machine) func(func(topo.NodeID) []float64, func(sim.Time)) {
			return collective.NewButterflyAllReduce(m, collective.DefaultConfig(32)).Run
		})
		acc := run(func(m *machine.Machine) func(func(topo.NodeID) []float64, func(sim.Time)) {
			return collective.NewAccumAllReduce(m, collective.DefaultConfig(32)).Run
		})
		return trio{dim, fly, acc}
	})
	for k, tor := range tori {
		t.Row(tor.String(), fmt.Sprintf("%.2f", rs[k].dim.Us()), fmt.Sprintf("%.2f", rs[k].fly.Us()), fmt.Sprintf("%.2f", rs[k].acc.Us()))
	}
	out += t.String()
	out += "\nthe dimension-ordered algorithm needs 3 rounds and 3N/2 hops per ring; the\nbutterfly needs 3*log2(N) rounds; accumulation-memory summing pays the large\ncross-ring counter-polling penalty on every round\n"
	return out
}

// directNeighborExchange: each node pushes its data straight to all 26
// neighbours as fine-grained counted remote writes (Figure 8a, Anton
// style). Returns completion time for all nodes.
func directNeighborExchange(m *machine.Machine, packetsPerNeighbor, bytes int) sim.Dur {
	s := m.Sim
	tor := m.Torus
	start := s.Now()
	var last sim.Time
	tor.ForEach(func(c topo.Coord) {
		n := tor.ID(c)
		expected := uint64(len(tor.Neighbors26(c)) * packetsPerNeighbor)
		m.Client(packet.Client{Node: n, Kind: packet.Slice0}).Wait(11, expected, func() {
			if now := s.Now(); now > last {
				last = now
			}
		})
	})
	tor.ForEach(func(c topo.Coord) {
		src := m.Client(packet.Client{Node: tor.ID(c), Kind: packet.Slice0})
		for _, nc := range tor.Neighbors26(c) {
			dst := packet.Client{Node: tor.ID(nc), Kind: packet.Slice0}
			for i := 0; i < packetsPerNeighbor; i++ {
				src.Write(dst, 11, i*32, bytes)
			}
		}
	})
	s.Run()
	return last.Sub(start)
}

// stagedNeighborExchange: the commodity-cluster structure on Anton
// hardware — three stages (one per dimension), two consolidated messages
// per stage, data recombined between stages. Returns completion time.
func stagedNeighborExchange(m *machine.Machine, bytesPerStage int, marshal sim.Dur) sim.Dur {
	s := m.Sim
	tor := m.Torus
	start := s.Now()
	var last sim.Time
	nodes := tor.Nodes()
	remaining := nodes
	var stage func(c topo.Coord, k int)
	stage = func(c topo.Coord, k int) {
		if k >= 3 {
			remaining--
			if now := s.Now(); now > last {
				last = now
			}
			return
		}
		n := tor.ID(c)
		dim := topo.Dim(k)
		self := m.Client(packet.Client{Node: n, Kind: packet.Slice0})
		// Consolidated messages may exceed the 256-byte payload: split.
		sendBig := func(dst packet.Client, total int) int {
			count := 0
			for total > 0 {
				chunk := total
				if chunk > packet.MaxPayloadBytes {
					chunk = packet.MaxPayloadBytes
				}
				self.Write(dst, packet.CounterID(12+k), count*32, chunk)
				count++
				total -= chunk
			}
			return count
		}
		expect := 0
		for _, dir := range []topo.Direction{+1, -1} {
			dst := tor.ID(tor.Neighbor(c, topo.Port{Dim: dim, Dir: dir}))
			if dst == n {
				continue
			}
			expect += sendBig(packet.Client{Node: dst, Kind: packet.Slice0}, bytesPerStage)
		}
		// By symmetry this node receives what it sends.
		m.Client(packet.Client{Node: n, Kind: packet.Slice0}).Wait(packet.CounterID(12+k), uint64(expect), func() {
			s.After(marshal, func() { stage(c, k+1) })
		})
	}
	tor.ForEach(func(c topo.Coord) { stage(c, 0) })
	s.Run()
	_ = remaining
	return last.Sub(start)
}

func ablateStaging(sess *Session, quick bool) string {
	out := header("Ablation: direct fine-grained exchange vs staged communication (Figure 8a)")
	// Exchange ~832 bytes of data with each of the 26 neighbours, either
	// directly (26 destinations x fine-grained packets) or staged
	// (3 stages x 2 consolidated messages carrying the aggregated data,
	// with marshalling between stages).
	s1 := sess.NewSim()
	m1 := machine.Default512(s1)
	direct := directNeighborExchange(m1, 13, 64) // 13 packets x 64 B to each neighbour

	s2 := sess.NewSim()
	m2 := machine.Default512(s2)
	// Each staged message consolidates one third of the total volume:
	// 26 neighbours x 832 B / (3 stages x 2 messages) ~ 3.6 KB per message.
	staged := stagedNeighborExchange(m2, 3600, 1500*sim.Ns)

	t := NewTable("strategy", "messages/node", "completion (us)")
	t.Row("direct fine-grained (Anton style)", 26*13, fmt.Sprintf("%.2f", direct.Us()))
	t.Row("staged 3-phase (commodity style)", 6, fmt.Sprintf("%.2f", staged.Us()))
	out += t.String()
	out += "\npaper: staging is preferable on commodity clusters to cut message count, but\non Anton a single round of direct fine-grained communication wins\n"
	return out
}

func ablateMulticast(sess *Session, quick bool) string {
	out := header("Ablation: hardware multicast vs repeated unicast")
	// Broadcast 32 packets of 64 B from one node to the 7 other nodes of
	// its X ring.
	runMulticast := func() (sim.Dur, uint64) {
		s := sess.NewSim()
		m := machine.Default512(s)
		collective.InstallRingBroadcast(m, topo.X, packet.Slice0, 0)
		var done sim.Time
		root := packet.Client{Node: 0, Kind: packet.Slice0}
		far := packet.Client{Node: m.Torus.ID(topo.C(4, 0, 0)), Kind: packet.Slice0}
		m.Client(far).Wait(5, 32, func() { done = s.Now() })
		for i := 0; i < 32; i++ {
			m.Client(root).Send(&packet.Packet{
				Kind: packet.Write, Multicast: 0, Counter: 5, Addr: i * 8, Bytes: 64,
			})
		}
		s.Run()
		return sim.Dur(done), m.Stats().Sent
	}
	runUnicast := func() (sim.Dur, uint64) {
		s := sess.NewSim()
		m := machine.Default512(s)
		var done sim.Time
		root := m.Client(packet.Client{Node: 0, Kind: packet.Slice0})
		far := packet.Client{Node: m.Torus.ID(topo.C(4, 0, 0)), Kind: packet.Slice0}
		m.Client(far).Wait(5, 32, func() { done = s.Now() })
		for i := 0; i < 32; i++ {
			for x := 1; x < 8; x++ {
				root.Write(packet.Client{Node: m.Torus.ID(topo.C(x, 0, 0)), Kind: packet.Slice0}, 5, i*8, 64)
			}
		}
		s.Run()
		return sim.Dur(done), m.Stats().Sent
	}
	mc, mcSent := runMulticast()
	uc, ucSent := runUnicast()
	t := NewTable("mechanism", "injected packets", "completion at farthest node (us)")
	t.Row("hardware multicast", mcSent, fmt.Sprintf("%.2f", mc.Us()))
	t.Row("repeated unicast", ucSent, fmt.Sprintf("%.2f", uc.Us()))
	out += t.String()
	out += "\nmulticast cuts both sender overhead and network bandwidth: positions are\nbroadcast to as many as 17 HTIS units per atom in the MD mapping\n"
	return out
}

func init() {
	register(Experiment{ID: "ablate-allreduce", Title: "all-reduce design ablation", run: ablateAllReduce})
	register(Experiment{ID: "ablate-staging", Title: "direct vs staged exchange", run: ablateStaging})
	register(Experiment{ID: "ablate-multicast", Title: "multicast vs unicast", run: ablateMulticast})
}
