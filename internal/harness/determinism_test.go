package harness

import "testing"

// Every experiment report must be byte-identical no matter how many
// goroutines the sweeps use: each sweep point owns a private simulator
// instance and rows are assembled in index order.
func TestSweepReportsWorkerIndependent(t *testing.T) {
	ids := []string{"fastpath", "ablate-allreduce", "fig7", "faultsweep", "killsweep", "fig5"}
	if testing.Short() {
		ids = ids[:5]
	}
	defer SetWorkers(Workers())
	for _, id := range ids {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		SetWorkers(1)
		want := e.Run(true)
		for _, w := range []int{4, 0} {
			SetWorkers(w)
			if got := e.Run(true); got != want {
				t.Fatalf("%s: workers=%d report differs from sequential report\n--- sequential ---\n%s\n--- workers=%d ---\n%s",
					id, w, want, w, got)
			}
		}
	}
}

func TestTable3SweepWorkerIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("builds several 512-node mappings; run without -short")
	}
	defer SetWorkers(Workers())
	sizes := []int{5000}
	SetWorkers(1)
	want := Table3Sweep(sizes)
	SetWorkers(4)
	got := Table3Sweep(sizes)
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("size %d: step time %v, want %v", sizes[i], got[i], want[i])
		}
	}
}
