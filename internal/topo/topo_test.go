package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIDCoordRoundtrip(t *testing.T) {
	tor := NewTorus(8, 8, 8)
	seen := make(map[NodeID]bool)
	tor.ForEach(func(c Coord) {
		id := tor.ID(c)
		if seen[id] {
			t.Fatalf("duplicate ID %d for %v", id, c)
		}
		seen[id] = true
		if got := tor.Coord(id); got != c {
			t.Fatalf("Coord(ID(%v)) = %v", c, got)
		}
	})
	if len(seen) != 512 {
		t.Fatalf("enumerated %d nodes, want 512", len(seen))
	}
}

func TestIDCoordRoundtripNonCubic(t *testing.T) {
	for _, tor := range []Torus{NewTorus(8, 8, 16), NewTorus(8, 2, 8), NewTorus(1, 1, 1), NewTorus(3, 5, 7)} {
		for id := NodeID(0); int(id) < tor.Nodes(); id++ {
			if got := tor.ID(tor.Coord(id)); got != id {
				t.Fatalf("%v: ID(Coord(%d)) = %d", tor, id, got)
			}
		}
	}
}

func TestWrap(t *testing.T) {
	tor := NewTorus(8, 4, 2)
	cases := []struct{ in, want Coord }{
		{Coord{-1, 0, 0}, Coord{7, 0, 0}},
		{Coord{8, 4, 2}, Coord{0, 0, 0}},
		{Coord{15, -5, 3}, Coord{7, 3, 1}},
		{Coord{3, 2, 1}, Coord{3, 2, 1}},
	}
	for _, c := range cases {
		if got := tor.Wrap(c.in); got != c.want {
			t.Errorf("Wrap(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDeltaShortestPath(t *testing.T) {
	tor := NewTorus(8, 8, 8)
	a := Coord{0, 0, 0}
	cases := []struct {
		b    Coord
		d    Dim
		want int
	}{
		{Coord{1, 0, 0}, X, 1},
		{Coord{7, 0, 0}, X, -1},
		{Coord{4, 0, 0}, X, 4}, // tie broken positive
		{Coord{5, 0, 0}, X, -3},
		{Coord{0, 3, 0}, Y, 3},
		{Coord{0, 0, 6}, Z, -2},
	}
	for _, c := range cases {
		if got := tor.Delta(a, c.b, c.d); got != c.want {
			t.Errorf("Delta(%v,%v,%v) = %d, want %d", a, c.b, c.d, got, c.want)
		}
	}
}

func TestMaxHops(t *testing.T) {
	if got := NewTorus(8, 8, 8).MaxHops(); got != 12 {
		t.Errorf("8x8x8 MaxHops = %d, want 12 (paper: twelve hops is the max distance)", got)
	}
	if got := NewTorus(8, 8, 16).MaxHops(); got != 16 {
		t.Errorf("8x8x16 MaxHops = %d, want 16", got)
	}
	if got := NewTorus(4, 4, 4).MaxHops(); got != 6 {
		t.Errorf("4x4x4 MaxHops = %d, want 6", got)
	}
}

func TestRouteDimensionOrdered(t *testing.T) {
	tor := NewTorus(8, 8, 8)
	route := tor.Route(Coord{0, 0, 0}, Coord{2, 7, 4})
	// X: +2 hops, Y: -1 hop, Z: +4 hops (tie positive) = 7 steps.
	if len(route) != 7 {
		t.Fatalf("route length %d, want 7", len(route))
	}
	// Dimension order must be nondecreasing X->Y->Z.
	lastDim := Dim(-1)
	for _, s := range route {
		if s.Port.Dim < lastDim {
			t.Fatalf("route not dimension ordered: %v", route)
		}
		lastDim = s.Port.Dim
	}
	if route[0].Port != (Port{X, +1}) || route[2].Port != (Port{Y, -1}) || route[3].Port != (Port{Z, +1}) {
		t.Fatalf("unexpected ports: %v", route)
	}
	if route[len(route)-1].To != (Coord{2, 7, 4}) {
		t.Fatalf("route ends at %v", route[len(route)-1].To)
	}
}

func TestRouteSelfEmpty(t *testing.T) {
	tor := NewTorus(8, 8, 8)
	if r := tor.Route(Coord{3, 3, 3}, Coord{3, 3, 3}); len(r) != 0 {
		t.Fatalf("self route = %v, want empty", r)
	}
}

// Property: a route is contiguous, its length equals Hops(a,b), and each
// step moves exactly one wrapped unit along its port's dimension.
func TestRouteProperty(t *testing.T) {
	tor := NewTorus(8, 4, 6)
	f := func(ax, ay, az, bx, by, bz uint8) bool {
		a := tor.Wrap(Coord{int(ax), int(ay), int(az)})
		b := tor.Wrap(Coord{int(bx), int(by), int(bz)})
		route := tor.Route(a, b)
		if len(route) != tor.Hops(a, b) {
			return false
		}
		cur := a
		for _, s := range route {
			if s.From != cur {
				return false
			}
			if tor.Neighbor(cur, s.Port) != s.To {
				return false
			}
			cur = s.To
		}
		return cur == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: hop count is symmetric and satisfies the triangle inequality.
func TestHopsMetricProperty(t *testing.T) {
	tor := NewTorus(8, 8, 8)
	rng := rand.New(rand.NewSource(42))
	randCoord := func() Coord {
		return Coord{rng.Intn(8), rng.Intn(8), rng.Intn(8)}
	}
	for i := 0; i < 1000; i++ {
		a, b, c := randCoord(), randCoord(), randCoord()
		if tor.Hops(a, b) != tor.Hops(b, a) {
			t.Fatalf("asymmetric hops %v %v", a, b)
		}
		if tor.Hops(a, c) > tor.Hops(a, b)+tor.Hops(b, c) {
			t.Fatalf("triangle violated %v %v %v", a, b, c)
		}
		if a == b && tor.Hops(a, b) != 0 {
			t.Fatalf("nonzero self distance")
		}
	}
}

func TestHopsByDim(t *testing.T) {
	tor := NewTorus(8, 8, 8)
	h := tor.HopsByDim(Coord{0, 0, 0}, Coord{6, 4, 1})
	if h != [3]int{2, 4, 1} {
		t.Fatalf("HopsByDim = %v, want [2 4 1]", h)
	}
}

func TestNeighbors26(t *testing.T) {
	tor := NewTorus(8, 8, 8)
	n := tor.Neighbors26(Coord{0, 0, 0})
	if len(n) != 26 {
		t.Fatalf("got %d neighbors, want 26", len(n))
	}
	seen := map[Coord]bool{}
	for _, c := range n {
		if seen[c] {
			t.Fatalf("duplicate neighbor %v", c)
		}
		seen[c] = true
		if tor.Hops(Coord{0, 0, 0}, c) > 3 {
			t.Fatalf("neighbor %v too far", c)
		}
	}
}

func TestNeighbors26SmallTorus(t *testing.T) {
	// On a 2x2x2 torus the 26 offsets alias heavily: only 7 distinct others.
	tor := NewTorus(2, 2, 2)
	n := tor.Neighbors26(Coord{0, 0, 0})
	if len(n) != 7 {
		t.Fatalf("got %d neighbors on 2x2x2, want 7", len(n))
	}
}

func TestAxisNodes(t *testing.T) {
	tor := NewTorus(8, 8, 8)
	axis := tor.AxisNodes(Coord{3, 4, 5}, Y)
	if len(axis) != 8 {
		t.Fatalf("axis length %d", len(axis))
	}
	for i, c := range axis {
		if c.X != 3 || c.Z != 5 || c.Y != i {
			t.Fatalf("axis[%d] = %v", i, c)
		}
	}
}

func TestPortIndex(t *testing.T) {
	for i, p := range Ports {
		if PortIndex(p) != i {
			t.Fatalf("PortIndex(%v) = %d, want %d", p, PortIndex(p), i)
		}
	}
	if Ports[0].String() != "X+" || Ports[5].String() != "Z-" {
		t.Fatalf("port strings: %v %v", Ports[0], Ports[5])
	}
}

func TestDimString(t *testing.T) {
	if X.String() != "X" || Y.String() != "Y" || Z.String() != "Z" {
		t.Fatal("dim strings wrong")
	}
	if Dim(9).String() != "Dim(9)" {
		t.Fatal("unknown dim string wrong")
	}
}

func TestInvalidTorusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero dimension")
		}
	}()
	NewTorus(0, 8, 8)
}

func TestCoordGetSet(t *testing.T) {
	c := Coord{1, 2, 3}
	for d := X; d < NumDims; d++ {
		got := c.Set(d, 9)
		if got.Get(d) != 9 {
			t.Fatalf("Set/Get dim %v failed", d)
		}
		// Other dims unchanged.
		for e := X; e < NumDims; e++ {
			if e != d && got.Get(e) != c.Get(e) {
				t.Fatalf("Set(%v) clobbered %v", d, e)
			}
		}
	}
}

// Property (testing/quick): ID and Coord are inverse bijections for
// arbitrary wrapped coordinates.
func TestIDCoordBijectionProperty(t *testing.T) {
	tor := NewTorus(8, 4, 2)
	f := func(x, y, z int16) bool {
		c := tor.Wrap(Coord{int(x), int(y), int(z)})
		return tor.Coord(tor.ID(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
