package topo

import (
	"math/rand"
	"reflect"
	"testing"
)

// refDist computes surviving-graph BFS distances from every node to dst
// independently of RouteTable, as the oracle for minimality and
// reachability.
func refDist(t Torus, dead map[LinkID]bool, deadN map[NodeID]bool, dst NodeID) []int {
	nodes := t.Nodes()
	dist := make([]int, nodes)
	for i := range dist {
		dist[i] = -1
	}
	if deadN[dst] {
		return dist
	}
	dist[dst] = 0
	queue := []NodeID{dst}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, p := range Ports {
			u := t.ID(t.Neighbor(t.Coord(v), Port{Dim: p.Dim, Dir: -p.Dir}))
			if u == v || dist[u] >= 0 || deadN[u] || deadN[v] || dead[LinkID{Node: u, Port: p}] {
				continue
			}
			dist[u] = dist[v] + 1
			queue = append(queue, u)
		}
	}
	return dist
}

// On a fault-free torus the recomputed tables must reproduce the static
// dimension-order route exactly — every hop, including half-ring
// positive tie-breaks — so installing a table with no kills cannot
// perturb a single packet's path.
func TestRouteTableFaultFreeMatchesDimensionOrder(t *testing.T) {
	for _, tor := range []Torus{NewTorus(4, 4, 4), NewTorus(3, 5, 2), NewTorus(8, 1, 6), NewTorus(2, 2, 2)} {
		rt := NewRouteTable(tor, nil, nil)
		for a := NodeID(0); int(a) < tor.Nodes(); a++ {
			for b := NodeID(0); int(b) < tor.Nodes(); b++ {
				want := tor.Route(tor.Coord(a), tor.Coord(b))
				got, ok := rt.Route(a, b)
				if !ok {
					t.Fatalf("torus %v: %d->%d unreachable on fault-free table", tor, a, b)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("torus %v %d->%d: table route %v, dimension-order route %v", tor, a, b, got, want)
				}
			}
		}
	}
}

// Detour-route properties under randomized kills: for every pair of
// surviving nodes, the table route (when the oracle says the pair is
// connected) exists, runs over surviving links and nodes only, is
// minimal in the surviving graph (which bounds the stretch of any
// detour by the surviving-graph distance), and two independently built
// tables agree hop for hop.
func TestRouteTableDetourProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		tor := NewTorus(2+rng.Intn(4), 2+rng.Intn(4), 1+rng.Intn(4))
		nodes := tor.Nodes()
		deadL := map[LinkID]bool{}
		var deadLinks []LinkID
		for i, k := 0, rng.Intn(5); i < k; i++ {
			l := LinkID{Node: NodeID(rng.Intn(nodes)), Port: Ports[rng.Intn(6)]}
			if !deadL[l] {
				deadL[l] = true
				deadLinks = append(deadLinks, l)
			}
		}
		deadN := map[NodeID]bool{}
		var deadNodes []NodeID
		if rng.Intn(2) == 0 {
			n := NodeID(rng.Intn(nodes))
			deadN[n] = true
			deadNodes = append(deadNodes, n)
		}
		rt := NewRouteTable(tor, deadLinks, deadNodes)
		rt2 := NewRouteTable(tor, deadLinks, deadNodes)
		for dst := NodeID(0); int(dst) < nodes; dst++ {
			dist := refDist(tor, deadL, deadN, dst)
			for src := NodeID(0); int(src) < nodes; src++ {
				if src == dst || deadN[src] || deadN[dst] {
					continue
				}
				route, ok := rt.Route(src, dst)
				if dist[src] < 0 {
					if ok {
						t.Fatalf("torus %v kills %v/%v: %d->%d disconnected but table found %v",
							tor, deadLinks, deadNodes, src, dst, route)
					}
					continue
				}
				if !ok {
					t.Fatalf("torus %v kills %v/%v: %d->%d connected (dist %d) but table has no route",
						tor, deadLinks, deadNodes, src, dst, dist[src])
				}
				// Minimal in the surviving graph = bounded stretch.
				if len(route) != dist[src] {
					t.Fatalf("torus %v kills %v/%v: %d->%d route length %d, surviving-graph distance %d",
						tor, deadLinks, deadNodes, src, dst, len(route), dist[src])
				}
				// Dead-link- and dead-node-free, connected chain.
				cur := src
				for i, st := range route {
					if tor.ID(st.From) != cur {
						t.Fatalf("step %d starts at %v, expected node %d", i, st.From, cur)
					}
					l := LinkID{Node: cur, Port: st.Port}
					if deadL[l] {
						t.Fatalf("torus %v: %d->%d route crosses dead link %v", tor, src, dst, l)
					}
					next := tor.ID(st.To)
					if deadN[next] {
						t.Fatalf("torus %v: %d->%d route enters dead node %d", tor, src, dst, next)
					}
					if tor.ID(tor.Neighbor(st.From, st.Port)) != next {
						t.Fatalf("step %d port %v does not reach %v", i, st.Port, st.To)
					}
					cur = next
				}
				if cur != dst {
					t.Fatalf("route ends at %d, want %d", cur, dst)
				}
				// Deterministic: a rebuilt table routes identically.
				route2, ok2 := rt2.Route(src, dst)
				if !ok2 || !reflect.DeepEqual(route, route2) {
					t.Fatalf("torus %v kills %v/%v: %d->%d rebuild disagrees: %v vs %v",
						tor, deadLinks, deadNodes, src, dst, route, route2)
				}
			}
		}
	}
}

// Deadlock safety: every route the recomputed tables produce admits the
// dateline-style VC-layer assignment of LayerRoute, and the channel
// dependency graph over (link, layer) pairs — one edge per consecutive
// hop pair of every all-pairs route — must be acyclic with a small
// bounded layer count. Acyclicity holds by construction ((layer,
// LinkOrder) strictly increases lexicographically along a route); the
// test verifies the implementation honors it on faulty tables too.
func TestRouteTableChannelDependenciesAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		tor := NewTorus(2+rng.Intn(3), 2+rng.Intn(3), 2+rng.Intn(3))
		nodes := tor.Nodes()
		var deadLinks []LinkID
		for i, k := 0, rng.Intn(4); i < k; i++ {
			deadLinks = append(deadLinks, LinkID{Node: NodeID(rng.Intn(nodes)), Port: Ports[rng.Intn(6)]})
		}
		var deadNodes []NodeID
		if rng.Intn(3) == 0 {
			deadNodes = append(deadNodes, NodeID(rng.Intn(nodes)))
		}
		rt := NewRouteTable(tor, deadLinks, deadNodes)

		type channel struct {
			link  LinkID
			layer int
		}
		deps := map[channel]map[channel]bool{} // channel -> channels it waits on
		maxLayer := 0
		for a := NodeID(0); int(a) < nodes; a++ {
			for b := NodeID(0); int(b) < nodes; b++ {
				route, ok := rt.Route(a, b)
				if !ok || len(route) == 0 {
					continue
				}
				layers := tor.LayerRoute(route)
				for i, st := range route {
					if layers[i] > maxLayer {
						maxLayer = layers[i]
					}
					if i == 0 {
						continue
					}
					// A packet holding channel i-1 waits on channel i.
					from := channel{LinkID{tor.ID(route[i-1].From), route[i-1].Port}, layers[i-1]}
					to := channel{LinkID{tor.ID(st.From), st.Port}, layers[i]}
					if deps[from] == nil {
						deps[from] = map[channel]bool{}
					}
					deps[from][to] = true
				}
			}
		}
		// Fault-free dimension-order needs at most one dateline descent
		// per dimension (4 layers); detours may add a couple more.
		if maxLayer > 5 {
			t.Fatalf("torus %v kills %v/%v: VC layer %d exceeds bound 5", tor, deadLinks, deadNodes, maxLayer)
		}
		// Cycle check via iterative DFS with colors.
		const (
			white = 0
			gray  = 1
			black = 2
		)
		color := map[channel]int{}
		var stack []channel
		var visit func(c channel)
		visit = func(c channel) {
			color[c] = gray
			stack = append(stack, c)
			for n := range deps[c] {
				switch color[n] {
				case gray:
					t.Fatalf("torus %v kills %v/%v: cyclic channel dependency through %v (stack %v)",
						tor, deadLinks, deadNodes, n, stack)
				case white:
					visit(n)
				}
			}
			color[c] = black
			stack = stack[:len(stack)-1]
		}
		for c := range deps {
			if color[c] == white {
				visit(c)
			}
		}
	}
}

// LinkOrder is a total order: distinct links never collide, and
// LayerRoute assigns at most NumDims+1 layers to any fault-free
// dimension-order route (one dateline descent per dimension).
func TestLinkOrderTotalAndDimOrderLayers(t *testing.T) {
	for _, tor := range []Torus{NewTorus(4, 4, 4), NewTorus(3, 2, 5), NewTorus(8, 8, 8)} {
		seen := map[int]LinkID{}
		for id := NodeID(0); int(id) < tor.Nodes(); id++ {
			for _, p := range Ports {
				l := LinkID{Node: id, Port: p}
				k := tor.LinkOrder(l)
				if prev, dup := seen[k]; dup {
					t.Fatalf("torus %v: LinkOrder collision %v vs %v (key %d)", tor, prev, l, k)
				}
				seen[k] = l
			}
		}
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 200; trial++ {
			a := C(rng.Intn(tor.DimX), rng.Intn(tor.DimY), rng.Intn(tor.DimZ))
			b := C(rng.Intn(tor.DimX), rng.Intn(tor.DimY), rng.Intn(tor.DimZ))
			route := tor.Route(a, b)
			layers := tor.LayerRoute(route)
			for _, l := range layers {
				if l > NumDims {
					t.Fatalf("torus %v %v->%v: dimension-order route needs layer %d (> %d)",
						tor, a, b, l, NumDims)
				}
			}
		}
	}
}
