// Package topo describes the three-dimensional torus topology that connects
// Anton nodes. Each node is identified by its Cartesian coordinates within
// the torus; packets are routed dimension order (X, then Y, then Z) along
// the shortest path in each dimension, matching the paper's description.
package topo

import "fmt"

// Dim identifies one torus dimension.
type Dim int

// The three torus dimensions.
const (
	X Dim = iota
	Y
	Z
	NumDims = 3
)

func (d Dim) String() string {
	switch d {
	case X:
		return "X"
	case Y:
		return "Y"
	case Z:
		return "Z"
	}
	return fmt.Sprintf("Dim(%d)", int(d))
}

// Direction is a signed direction along a dimension: +1 or -1.
type Direction int

// Port identifies one of the six torus links of a node (a dimension and a
// direction), e.g. {X, +1} is the X+ link.
type Port struct {
	Dim Dim
	Dir Direction
}

func (p Port) String() string {
	s := "+"
	if p.Dir < 0 {
		s = "-"
	}
	return p.Dim.String() + s
}

// Ports lists all six torus ports in a fixed order (X+, X-, Y+, Y-, Z+, Z-).
var Ports = []Port{
	{X, +1}, {X, -1}, {Y, +1}, {Y, -1}, {Z, +1}, {Z, -1},
}

// PortIndex returns a dense index in [0,6) for p, in the order of Ports.
func PortIndex(p Port) int {
	i := int(p.Dim) * 2
	if p.Dir < 0 {
		i++
	}
	return i
}

// Coord is a node coordinate within the torus.
type Coord struct{ X, Y, Z int }

func (c Coord) String() string { return fmt.Sprintf("(%d,%d,%d)", c.X, c.Y, c.Z) }

// Get returns the coordinate along dimension d.
func (c Coord) Get(d Dim) int {
	switch d {
	case X:
		return c.X
	case Y:
		return c.Y
	default:
		return c.Z
	}
}

// Set returns a copy of c with dimension d set to v.
func (c Coord) Set(d Dim, v int) Coord {
	switch d {
	case X:
		c.X = v
	case Y:
		c.Y = v
	default:
		c.Z = v
	}
	return c
}

// NodeID is a dense identifier for a node within a particular Torus.
type NodeID int

// Torus describes the machine's node grid.
type Torus struct {
	DimX, DimY, DimZ int
}

// NewTorus returns a torus with the given dimensions. All dimensions must
// be positive.
func NewTorus(x, y, z int) Torus {
	if x <= 0 || y <= 0 || z <= 0 {
		panic(fmt.Sprintf("topo: invalid torus dimensions %dx%dx%d", x, y, z))
	}
	return Torus{x, y, z}
}

// Nodes returns the total node count.
func (t Torus) Nodes() int { return t.DimX * t.DimY * t.DimZ }

// Size returns the extent of dimension d.
func (t Torus) Size(d Dim) int {
	switch d {
	case X:
		return t.DimX
	case Y:
		return t.DimY
	default:
		return t.DimZ
	}
}

func (t Torus) String() string { return fmt.Sprintf("%dx%dx%d", t.DimX, t.DimY, t.DimZ) }

// ID returns the dense node ID for coordinate c (which is wrapped).
func (t Torus) ID(c Coord) NodeID {
	c = t.Wrap(c)
	return NodeID((c.X*t.DimY+c.Y)*t.DimZ + c.Z)
}

// Coord returns the coordinate of node id.
func (t Torus) Coord(id NodeID) Coord {
	n := int(id)
	z := n % t.DimZ
	n /= t.DimZ
	y := n % t.DimY
	x := n / t.DimY
	return Coord{x, y, z}
}

// Wrap maps c into the canonical coordinate range of the torus.
func (t Torus) Wrap(c Coord) Coord {
	return Coord{mod(c.X, t.DimX), mod(c.Y, t.DimY), mod(c.Z, t.DimZ)}
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// Delta returns the signed shortest-path hop count from a to b along
// dimension d. Ties between the two directions (possible only for even
// dimension sizes at exactly half the ring) are broken toward the positive
// direction, so routing is deterministic.
func (t Torus) Delta(a, b Coord, d Dim) int {
	n := t.Size(d)
	diff := mod(b.Get(d)-a.Get(d), n)
	if diff > n/2 {
		return diff - n
	}
	if diff == n-diff && diff != 0 {
		// Exactly half way: deterministic positive direction.
		return diff
	}
	return diff
}

// Hops returns the total shortest-path hop count between a and b.
func (t Torus) Hops(a, b Coord) int {
	h := 0
	for d := X; d < NumDims; d++ {
		h += abs(t.Delta(a, b, d))
	}
	return h
}

// HopsByDim returns per-dimension unsigned hop counts between a and b.
func (t Torus) HopsByDim(a, b Coord) [NumDims]int {
	var h [NumDims]int
	for d := X; d < NumDims; d++ {
		h[d] = abs(t.Delta(a, b, d))
	}
	return h
}

// MaxHops returns the network diameter: the maximum shortest-path hop count
// between any two nodes (e.g. 12 for an 8x8x8 torus).
func (t Torus) MaxHops() int {
	return t.DimX/2 + t.DimY/2 + t.DimZ/2
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Step is one link traversal in a route.
type Step struct {
	From Coord
	To   Coord
	Port Port // outgoing port at From
}

// Route returns the dimension-ordered (X, then Y, then Z) shortest-path
// route from a to b as a sequence of link traversals. An empty route means
// a == b.
func (t Torus) Route(a, b Coord) []Step {
	a, b = t.Wrap(a), t.Wrap(b)
	var steps []Step
	cur := a
	for d := X; d < NumDims; d++ {
		delta := t.Delta(cur, b, d)
		dir := Direction(+1)
		if delta < 0 {
			dir = -1
			delta = -delta
		}
		for i := 0; i < delta; i++ {
			next := t.Wrap(cur.Set(d, cur.Get(d)+int(dir)))
			steps = append(steps, Step{From: cur, To: next, Port: Port{d, dir}})
			cur = next
		}
	}
	return steps
}

// Neighbor returns the coordinate of the node reached from c through port p.
func (t Torus) Neighbor(c Coord, p Port) Coord {
	return t.Wrap(c.Set(p.Dim, c.Get(p.Dim)+int(p.Dir)))
}

// Neighbors26 returns the coordinates of the (up to) 26 distinct nodes in
// the 3x3x3 cube surrounding c, excluding c itself. On small tori some
// offsets alias to the same node or to c itself; duplicates are removed.
func (t Torus) Neighbors26(c Coord) []Coord {
	seen := map[NodeID]bool{t.ID(c): true}
	var out []Coord
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				n := t.Wrap(Coord{c.X + dx, c.Y + dy, c.Z + dz})
				id := t.ID(n)
				if !seen[id] {
					seen[id] = true
					out = append(out, n)
				}
			}
		}
	}
	return out
}

// ForEach calls fn for every coordinate in the torus in ID order.
func (t Torus) ForEach(fn func(Coord)) {
	for x := 0; x < t.DimX; x++ {
		for y := 0; y < t.DimY; y++ {
			for z := 0; z < t.DimZ; z++ {
				fn(Coord{x, y, z})
			}
		}
	}
}

// AxisNodes returns the coordinates of all nodes sharing the ring through c
// along dimension d (including c itself), in increasing coordinate order.
func (t Torus) AxisNodes(c Coord, d Dim) []Coord {
	n := t.Size(d)
	out := make([]Coord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.Set(d, i))
	}
	return out
}

// C is a convenience constructor for Coord.
func C(x, y, z int) Coord { return Coord{X: x, Y: y, Z: z} }
