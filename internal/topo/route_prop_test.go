package topo

import (
	"math/rand"
	"testing"
)

// Property-based check of dimension-order routing: for randomized torus
// sizes and node pairs, a route must be exactly as long as the torus
// Manhattan distance (per-dimension shortest wrap), must never revisit
// a node, and must take the shorter ring direction in every dimension.
// The fault layer's per-link draw streams assume routes are minimal and
// loop-free, so this is a load-bearing invariant, not just geometry.
func TestRoutePropertyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		tor := NewTorus(1+rng.Intn(9), 1+rng.Intn(9), 1+rng.Intn(9))
		a := C(rng.Intn(tor.DimX), rng.Intn(tor.DimY), rng.Intn(tor.DimZ))
		b := C(rng.Intn(tor.DimX), rng.Intn(tor.DimY), rng.Intn(tor.DimZ))
		route := tor.Route(a, b)

		// Manhattan distance on the torus: per dimension, the shorter
		// of going up or wrapping down.
		want := 0
		for d := X; d < NumDims; d++ {
			n := tor.Size(d)
			diff := b.Get(d) - a.Get(d)
			if diff < 0 {
				diff += n
			}
			if n-diff < diff {
				diff = n - diff
			}
			want += diff
		}
		if len(route) != want {
			t.Fatalf("torus %v %v->%v: route length %d, Manhattan distance %d",
				tor, a, b, len(route), want)
		}
		if got := tor.Hops(a, b); got != want {
			t.Fatalf("torus %v %v->%v: Hops %d, Manhattan distance %d", tor, a, b, got, want)
		}

		// Route is a connected chain from a to b that never revisits a
		// node, and each step moves through the port it names.
		visited := map[NodeID]bool{tor.ID(a): true}
		cur := a
		for i, s := range route {
			if tor.ID(s.From) != tor.ID(cur) {
				t.Fatalf("torus %v %v->%v: step %d starts at %v, expected %v", tor, a, b, i, s.From, cur)
			}
			if next := tor.Neighbor(s.From, s.Port); tor.ID(next) != tor.ID(s.To) {
				t.Fatalf("torus %v %v->%v: step %d port %v reaches %v, step says %v",
					tor, a, b, i, s.Port, next, s.To)
			}
			id := tor.ID(s.To)
			if visited[id] {
				t.Fatalf("torus %v %v->%v: route revisits node %v", tor, a, b, s.To)
			}
			visited[id] = true
			cur = s.To
		}
		if tor.ID(cur) != tor.ID(b) {
			t.Fatalf("torus %v %v->%v: route ends at %v", tor, a, b, cur)
		}

		// Wraparound picks the shorter direction: the signed delta never
		// exceeds half the ring in magnitude, and ties (exactly half on
		// an even ring) break positive, deterministically.
		for d := X; d < NumDims; d++ {
			n := tor.Size(d)
			delta := tor.Delta(a, b, d)
			if abs(delta) > n/2 {
				t.Fatalf("torus %v %v->%v: dim %v delta %d exceeds half ring %d",
					tor, a, b, d, delta, n/2)
			}
			if n%2 == 0 && abs(delta) == n/2 && delta < 0 && n > 1 {
				t.Fatalf("torus %v %v->%v: dim %v half-ring tie broke negative (%d)",
					tor, a, b, d, delta)
			}
		}
	}
}

// Routing is pure: the same pair yields the identical route object
// every time (the fault layer replays traversal sequences and would
// observe any nondeterminism here as diverging fault sites).
func TestRouteDeterministic(t *testing.T) {
	tor := NewTorus(6, 4, 8)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		a := C(rng.Intn(6), rng.Intn(4), rng.Intn(8))
		b := C(rng.Intn(6), rng.Intn(4), rng.Intn(8))
		r1 := tor.Route(a, b)
		r2 := tor.Route(a, b)
		if len(r1) != len(r2) {
			t.Fatalf("%v->%v: lengths differ", a, b)
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("%v->%v: step %d differs: %v vs %v", a, b, i, r1[i], r2[i])
			}
		}
	}
}
