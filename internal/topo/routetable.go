package topo

// Fault-aware routing. A RouteTable is the software-recomputed routing
// state of a torus with permanently failed (killed) links and nodes:
// per-destination next-hop tables built by breadth-first search over the
// surviving directed-link graph, so every surviving source-destination
// pair uses a minimal route *within the surviving graph* (dimension-order
// with misroute legs around the failures). On a fault-free torus the
// tables reproduce the static dimension-order Route exactly, including
// its positive tie-break at half-ring distances, because the lowest
// port index among distance-decreasing ports is chosen (Ports orders
// X+ X- Y+ Y- Z+ Z-).
//
// Deadlock safety is by virtual-channel layering (dateline-style): hops
// are assigned VC layers by LayerRoute against the total link order
// LinkOrder, incrementing the layer whenever the order does not
// strictly increase. The (link, layer) channel-dependency graph is then
// acyclic by construction — consecutive hops either ascend in link
// order on one layer or move to a higher layer, so (layer, order)
// strictly increases lexicographically along any route. Fault-free
// dimension-order routes use at most NumDims+1 layers (one dateline
// descent per dimension); detours add at most a few more. The DES does
// not model VC buffers explicitly — LayerRoute exists so tests can
// verify every recomputed table admits a cycle-free VC assignment with
// a small bounded layer count.

// LinkID names one directed torus link: the outgoing port of one node.
type LinkID struct {
	Node NodeID
	Port Port
}

// NextHop returns the static dimension-order next hop from a toward b:
// the first step of Route(a, b). ok is false when a == b.
func (t Torus) NextHop(a, b Coord) (Port, bool) {
	for d := X; d < NumDims; d++ {
		if delta := t.Delta(a, b, d); delta != 0 {
			dir := Direction(+1)
			if delta < 0 {
				dir = -1
			}
			return Port{Dim: d, Dir: dir}, true
		}
	}
	return Port{}, false
}

// RouteTable holds per-destination next-hop tables over the surviving
// graph of a torus with killed links and nodes.
type RouteTable struct {
	t        Torus
	deadLink map[LinkID]bool
	deadNode map[NodeID]bool
	// next[dst][node] is the PortIndex of the next hop from node toward
	// dst, or -1 (self, dead, or unreachable).
	next [][]int8
}

// NewRouteTable computes the routing tables of t with the given dead
// links and nodes removed. A dead node implicitly removes all twelve
// directed links touching it. Construction is deterministic: the same
// dead sets produce byte-identical tables regardless of slice order.
func NewRouteTable(t Torus, deadLinks []LinkID, deadNodes []NodeID) *RouteTable {
	rt := &RouteTable{
		t:        t,
		deadLink: make(map[LinkID]bool, len(deadLinks)),
		deadNode: make(map[NodeID]bool, len(deadNodes)),
	}
	for _, l := range deadLinks {
		rt.deadLink[l] = true
	}
	for _, n := range deadNodes {
		rt.deadNode[n] = true
	}
	nodes := t.Nodes()
	rt.next = make([][]int8, nodes)
	coords := make([]Coord, nodes)
	for id := 0; id < nodes; id++ {
		coords[id] = t.Coord(NodeID(id))
	}
	dist := make([]int, nodes)
	queue := make([]NodeID, 0, nodes)
	for dst := 0; dst < nodes; dst++ {
		row := make([]int8, nodes)
		for i := range row {
			row[i] = -1
		}
		rt.next[dst] = row
		if rt.deadNode[NodeID(dst)] {
			continue
		}
		// Reverse BFS from dst over usable links gives every node's
		// surviving-graph distance to dst.
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue = append(queue[:0], NodeID(dst))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			vc := coords[v]
			for _, p := range Ports {
				// u reaches v through the port opposite to p's direction
				// reversed: u = Neighbor(v, {dim,-dir}) has
				// Neighbor(u, {dim,+dir}) == v.
				u := t.ID(t.Neighbor(vc, Port{Dim: p.Dim, Dir: -p.Dir}))
				if u == v || dist[u] >= 0 || !rt.usable(u, p, v) {
					continue
				}
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
		// Next hop: the lowest-indexed usable port that decreases the
		// distance to dst. Port order (X+ X- Y+ Y- Z+ Z-) makes this
		// reproduce dimension-order routing when nothing is dead.
		for u := 0; u < nodes; u++ {
			if u == dst || dist[u] < 0 || rt.deadNode[NodeID(u)] {
				continue
			}
			uc := coords[u]
			for pi, p := range Ports {
				v := t.ID(t.Neighbor(uc, p))
				if int(v) == u || dist[v] < 0 || dist[v] != dist[u]-1 || !rt.usable(NodeID(u), p, v) {
					continue
				}
				row[u] = int8(pi)
				break
			}
		}
	}
	return rt
}

// usable reports whether the directed link from u through port p to v
// survives: neither endpoint node nor the link itself is dead.
func (rt *RouteTable) usable(u NodeID, p Port, v NodeID) bool {
	return !rt.deadLink[LinkID{Node: u, Port: p}] && !rt.deadNode[u] && !rt.deadNode[v]
}

// DeadLink reports whether l is in the table's dead-link set (dead
// nodes' links are reported via DeadNode, not here).
func (rt *RouteTable) DeadLink(l LinkID) bool { return rt.deadLink[l] }

// DeadNode reports whether n is dead.
func (rt *RouteTable) DeadNode(n NodeID) bool { return rt.deadNode[n] }

// NextHop returns the outgoing port from node `from` toward dst. ok is
// false when from == dst, either endpoint is dead, or no surviving
// route exists.
func (rt *RouteTable) NextHop(from, dst NodeID) (Port, bool) {
	pi := rt.next[dst][from]
	if pi < 0 {
		return Port{}, false
	}
	return Ports[pi], true
}

// Route walks the next-hop tables from a to b and returns the full
// route. ok is false when no surviving route exists; a == b yields an
// empty route with ok true (unless a is dead).
func (rt *RouteTable) Route(a, b NodeID) ([]Step, bool) {
	if a == b {
		return nil, !rt.deadNode[a]
	}
	var steps []Step
	cur := a
	for cur != b {
		p, ok := rt.NextHop(cur, b)
		if !ok {
			return nil, false
		}
		from := rt.t.Coord(cur)
		to := rt.t.Neighbor(from, p)
		steps = append(steps, Step{From: from, To: to, Port: p})
		cur = rt.t.ID(to)
		if len(steps) > rt.t.Nodes() {
			panic("topo: route table cycle") // impossible: hops strictly decrease BFS distance
		}
	}
	return steps, true
}

// LinkOrder is the total order over directed links that the VC-layer
// construction uses: major key the (dimension, direction) class, then
// the ring the link belongs to, then the link's position along the ring
// *in its own direction of travel* — so a route that keeps moving in
// one direction ascends in order except at the single dateline wrap.
func (t Torus) LinkOrder(l LinkID) int {
	c := t.Coord(l.Node)
	d := l.Port.Dim
	size := t.Size(d)
	progress := c.Get(d)
	dirIdx := 0
	if l.Port.Dir < 0 {
		dirIdx = 1
		progress = size - 1 - progress
	}
	ring := int(t.ID(c.Set(d, 0)))
	return ((int(d)*2+dirIdx)*t.Nodes()+ring)*(size+1) + progress
}

// LayerRoute assigns a virtual-channel layer to each hop of route:
// layer 0 for the first hop, incrementing whenever LinkOrder does not
// strictly increase from one hop to the next. The returned slice has
// one entry per hop; an empty route yields nil.
func (t Torus) LayerRoute(route []Step) []int {
	if len(route) == 0 {
		return nil
	}
	layers := make([]int, len(route))
	layer, prev := 0, -1
	for i, st := range route {
		k := t.LinkOrder(LinkID{Node: t.ID(st.From), Port: st.Port})
		if i > 0 && k <= prev {
			layer++
		}
		layers[i] = layer
		prev = k
	}
	return layers
}
