// Package fault is the deterministic fault-injection layer for the
// communication models. The paper's 162 ns end-to-end path assumes
// lossless links: flits are CRC-checked at every hop and corrupted
// transfers are repaired by link-level retransmission, and the
// InfiniBand comparison platform recovers lost packets with
// sender-side timeouts. This package perturbs the perfect network the
// discrete-event models otherwise simulate, so experiments can
// quantify how Anton's latency advantage degrades under error
// recovery.
//
// An Injector is attached to a *sim.Sim (Attach) and consulted by the
// event-driven models built on that simulator:
//
//   - Torus links (package machine): per-traversal flit corruption,
//     detected by CRC at the receiving link adapter and repaired by
//     retransmitting the packet over the same link after a configurable
//     retry turnaround; transient link stalls; and scheduled outage
//     windows (a dead-then-recovered link) during which traversals wait
//     for recovery before the retransmission succeeds.
//   - The InfiniBand cluster (package cluster): whole-message drops
//     repaired by a sender timeout and retransmission.
//   - Nodes (package machine): optional clock skew, modelled as a
//     service-time multiplier on packet injection and delivery at a
//     seed-chosen subset of nodes.
//
// Determinism contract: every decision is a pure function of
// (plan seed, fault stream, per-stream draw index). Streams are keyed
// by fault kind and fault site (link, node, or rank), and the draw
// index advances in simulated-event order, which the DES kernel makes
// deterministic (FIFO tie-break on equal timestamps). Host parallelism
// never shares an Injector: each simulator instance owns its own, so a
// fixed (seed, plan, workers) tuple reproduces identical fault sites,
// retry counts, and reports at any worker count. A zero-rate plan draws
// nothing and adds zero to every latency, reproducing the fault-free
// models bit for bit.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"anton/internal/sim"
	"anton/internal/topo"
)

// Link names one directed torus link: the outgoing port of one node.
type Link struct {
	Node int
	Port topo.Port
}

func (l Link) String() string { return fmt.Sprintf("%d:%v", l.Node, l.Port) }

// Window is a scheduled outage of one link: traversals that begin
// within [From, Until) wait for recovery and then pay one retry
// turnaround, modelling a dead-then-recovered link.
type Window struct {
	Link        Link
	From, Until sim.Time
}

// LinkKill is a permanent hard failure of one directed link at time At:
// unlike an outage Window the link never recovers, and the machine
// model responds by recomputing fault-aware routing tables rather than
// by link-level retransmission.
type LinkKill struct {
	Link Link
	At   sim.Time
}

// NodeKill is a permanent hard failure of a whole node at time At: all
// twelve directed links touching it go down, in-flight traffic to or
// through it is lost, and its clients neither send nor receive again.
type NodeKill struct {
	Node int
	At   sim.Time
}

// DefaultWatchdog is the end-to-end synchronization-counter watchdog
// deadline used when a plan kills links or nodes without setting
// Watchdog explicitly.
const DefaultWatchdog = 25 * sim.Us

// Plan is a complete, serializable description of the faults to inject.
// The zero value injects nothing. Plans are parsed from and formatted to
// the -faults flag syntax by ParsePlan and String (plan.go).
type Plan struct {
	// Seed selects the pseudo-random fault sequence. Two runs with the
	// same plan are bit-identical; changing only the seed moves the
	// fault sites.
	Seed uint64

	// CorruptRate is the per-link-traversal probability that a packet's
	// flits are corrupted in flight. Corruption is detected by the CRC
	// at the receiving link adapter and repaired by link-level
	// retransmission: each retry re-occupies the link for the packet's
	// full serialization time plus RetryLatency of turnaround.
	CorruptRate float64
	// RetryLatency is the link-level retry turnaround: the time between
	// the CRC failure and the retransmission entering the wire.
	RetryLatency sim.Dur

	// StallRate is the per-link-traversal probability of a transient
	// stall (e.g. a lane re-synchronization) adding StallDur before the
	// transfer begins.
	StallRate float64
	StallDur  sim.Dur

	// DropRate is the per-message probability that the cluster fabric
	// loses a message. The sender detects the loss after DropTimeout and
	// retransmits.
	DropRate    float64
	DropTimeout sim.Dur

	// SlowRate is the fraction of nodes (chosen by seed, stable for the
	// life of the plan) whose clocks are skewed slow; SlowFactor >= 1 is
	// the service-time multiplier applied to packet injection and
	// delivery on those nodes.
	SlowRate   float64
	SlowFactor float64

	// Links, when non-empty, restricts corruption and stall faults to
	// the named links; empty means every link is eligible. Outage
	// windows name their own link and are unaffected.
	Links []Link

	// Down lists scheduled link outages.
	Down []Window

	// KillLinks lists permanent link failures (hard faults).
	KillLinks []LinkKill
	// KillNodes lists permanent node failures (hard faults).
	KillNodes []NodeKill
	// Watchdog is the end-to-end synchronization-counter deadline: a
	// counter wait that has not fired within Watchdog triggers
	// deterministic recovery (re-issue of known-lost counted writes, or
	// a degraded-mode partial reduction). Zero selects DefaultWatchdog
	// when the plan kills anything; without kills it is inert.
	Watchdog sim.Dur
}

// IsZero reports whether the plan injects nothing (the seed alone does
// not make a plan non-zero).
func (p Plan) IsZero() bool {
	return p.CorruptRate == 0 && p.StallRate == 0 && p.DropRate == 0 &&
		p.SlowRate == 0 && len(p.Down) == 0 && !p.HardFaults()
}

// HardFaults reports whether the plan permanently kills any link or
// node.
func (p Plan) HardFaults() bool {
	return len(p.KillLinks) > 0 || len(p.KillNodes) > 0
}

// maxRetries caps consecutive retransmissions of one traversal (and
// consecutive drops of one message) so that a rate of 1.0 remains a
// terminating, if pathological, simulation.
const maxRetries = 64

// LinkCounts is the per-link fault tally.
type LinkCounts struct {
	Corrupts  uint64 // CRC-detected corruptions (= retransmissions)
	Stalls    uint64
	DownWaits uint64 // traversals that waited out an outage window
}

// Stats is a snapshot of everything the injector has done.
type Stats struct {
	Corrupts  uint64 // total link-level retransmissions
	Stalls    uint64 // total transient link stalls
	Drops     uint64 // total cluster messages lost (each forces a timeout)
	DownWaits uint64 // total traversals delayed by an outage window
	Links     map[Link]LinkCounts
}

// String renders the stats deterministically: totals first, then the
// per-link fault sites sorted by node and port.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "corrupts=%d stalls=%d drops=%d downwaits=%d",
		st.Corrupts, st.Stalls, st.Drops, st.DownWaits)
	links := make([]Link, 0, len(st.Links))
	for l := range st.Links {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].Node != links[j].Node {
			return links[i].Node < links[j].Node
		}
		return topo.PortIndex(links[i].Port) < topo.PortIndex(links[j].Port)
	})
	for _, l := range links {
		c := st.Links[l]
		fmt.Fprintf(&b, "\n  %v: corrupts=%d stalls=%d downwaits=%d",
			l, c.Corrupts, c.Stalls, c.DownWaits)
	}
	return b.String()
}

// Injector draws fault decisions for one simulator instance. All methods
// are nil-receiver safe: a nil *Injector injects nothing, so the models
// consult it unconditionally.
type Injector struct {
	plan Plan

	// Precomputed 53-bit Bernoulli thresholds (0 disables the fault
	// without drawing, keeping a zero-rate plan draw-free).
	corruptT, stallT, dropT, slowT uint64
	// slowPermille is the extra service time of a slow node in 1/1000
	// units, kept integral so fault arithmetic never touches floats.
	slowPermille int64

	// ctr is the per-stream draw index; advancing it in event order is
	// what makes replays bit-identical.
	ctr   map[uint64]uint64
	stats Stats

	// pinned holds per-link-site draw indices and tallies, indexed by
	// linkSite(node, port), allocated by PinLinks. A pinned site's state is
	// touched only by its own node's events — which all belong to one PDES
	// domain — so the stage-2 window executor can draw link faults from
	// worker goroutines without sharing: each site is single-writer, draw
	// order per site equals the canonical order (within-domain execution
	// order is canonical), and the machine-wide totals are derived by
	// summation in Stats. The map-based path remains for unpinned sites
	// (direct unit tests, the cluster's rank streams).
	pinned []linkSiteState
}

// linkSiteState is one directed link's pinned fault stream state.
type linkSiteState struct {
	link             Link
	used             bool
	corruptN, stallN uint64
	counts           LinkCounts
}

// NewInjector returns an injector for plan. Plans should be validated
// (ParsePlan does so); NewInjector clamps rather than rejects.
func NewInjector(p Plan) *Injector {
	in := &Injector{
		plan:     p,
		corruptT: threshold53(p.CorruptRate),
		stallT:   threshold53(p.StallRate),
		dropT:    threshold53(p.DropRate),
		ctr:      make(map[uint64]uint64),
	}
	if p.SlowRate > 0 && p.SlowFactor > 1 {
		in.slowT = threshold53(p.SlowRate)
		in.slowPermille = int64((p.SlowFactor-1)*1000 + 0.5)
	}
	in.stats.Links = make(map[Link]LinkCounts)
	return in
}

// Attach builds an injector for plan and installs it on s, where the
// machine and cluster constructors will find it.
func Attach(s *sim.Sim, p Plan) *Injector {
	in := NewInjector(p)
	s.Faults = in
	return in
}

// FromSim returns the injector attached to s, or nil.
func FromSim(s *sim.Sim) *Injector {
	in, _ := s.Faults.(*Injector)
	return in
}

// Plan returns the injector's plan (zero Plan for a nil injector).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// PinLinks pre-pins the fault streams of every directed link of a
// nodes-node machine (six ports per node), so link draws need no shared
// map and are safe from stage-2 worker goroutines. Nil-receiver safe;
// repinning with a smaller machine keeps the larger allocation.
func (in *Injector) PinLinks(nodes int) {
	if in == nil || nodes*6 <= len(in.pinned) {
		return
	}
	grown := make([]linkSiteState, nodes*6)
	copy(grown, in.pinned)
	in.pinned = grown
}

// site returns the pinned state for link l, or nil when unpinned.
func (in *Injector) site(l Link) *linkSiteState {
	s := linkSite(l.Node, l.Port)
	if s >= uint64(len(in.pinned)) {
		return nil
	}
	ps := &in.pinned[s]
	if !ps.used {
		ps.used = true
		ps.link = l
	}
	return ps
}

// Stats returns a snapshot of the fault tallies: the serial (map-based)
// tallies plus every pinned link site, with machine-wide totals derived
// by summation so they are identical at any worker count.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	st := in.stats
	st.Links = make(map[Link]LinkCounts, len(in.stats.Links))
	for l, c := range in.stats.Links {
		st.Links[l] = c
	}
	for i := range in.pinned {
		ps := &in.pinned[i]
		if !ps.used {
			continue
		}
		c := st.Links[ps.link]
		c.Corrupts += ps.counts.Corrupts
		c.Stalls += ps.counts.Stalls
		c.DownWaits += ps.counts.DownWaits
		if c == (LinkCounts{}) {
			continue
		}
		st.Links[ps.link] = c
		st.Corrupts += ps.counts.Corrupts
		st.Stalls += ps.counts.Stalls
		st.DownWaits += ps.counts.DownWaits
	}
	return st
}

// Fault stream kinds. The stream key packs (kind, site) so that every
// fault site has an independent deterministic sequence.
const (
	streamCorrupt uint64 = iota + 1
	streamStall
	streamDrop
	streamSlowSel
)

func streamKey(kind, site uint64) uint64 { return kind<<48 | site&(1<<48-1) }

// mix is a splitmix64-style avalanche of (seed, stream, index): the
// entire pseudo-random state of the fault layer.
func mix(seed, key, n uint64) uint64 {
	x := seed ^ (key * 0x9E3779B97F4A7C15) ^ (n * 0xD1342543DE82EF95)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// threshold53 maps a probability to a 53-bit comparison threshold;
// comparing hash>>11 against it is exact for rate 0 and 1.
func threshold53(r float64) uint64 {
	if r <= 0 {
		return 0
	}
	if r >= 1 {
		return 1 << 53
	}
	return uint64(r * (1 << 53))
}

// bern draws the next Bernoulli decision on stream (kind, site).
func (in *Injector) bern(kind, site, threshold uint64) bool {
	key := streamKey(kind, site)
	n := in.ctr[key]
	in.ctr[key] = n + 1
	return mix(in.plan.Seed, key, n)>>11 < threshold
}

// bernAt draws the Bernoulli decision at draw index *n on stream
// (kind, site) and advances the index. Identical to bern for the same
// index sequence; the caller owns the index storage (a pinned site).
func (in *Injector) bernAt(kind, site uint64, n *uint64, threshold uint64) bool {
	key := streamKey(kind, site)
	v := *n
	*n = v + 1
	return mix(in.plan.Seed, key, v)>>11 < threshold
}

func linkSite(node int, port topo.Port) uint64 {
	return uint64(node)*6 + uint64(topo.PortIndex(port))
}

func (in *Injector) linkEligible(l Link) bool {
	if len(in.plan.Links) == 0 {
		return true
	}
	for _, el := range in.plan.Links {
		if el == l {
			return true
		}
	}
	return false
}

// LinkExtra returns the extra time one traversal of the link (node,
// port) spends on faults: transient stalls, CRC-detected corruption
// repaired by retransmission (each retry costs RetryLatency plus the
// packet's full link serialization, service), and scheduled outages.
// start is the time service would begin; the caller adds the returned
// duration to both the link occupancy and the packet's arrival.
func (in *Injector) LinkExtra(node int, port topo.Port, service sim.Dur, start sim.Time) sim.Dur {
	if in == nil {
		return 0
	}
	l := Link{Node: node, Port: port}
	if ps := in.site(l); ps != nil {
		// Pinned path: single-writer per site, stage-2 safe.
		var extra sim.Dur
		if (in.stallT > 0 || in.corruptT > 0) && in.linkEligible(l) {
			site := linkSite(node, port)
			if in.stallT > 0 && in.bernAt(streamStall, site, &ps.stallN, in.stallT) {
				extra += in.plan.StallDur
				ps.counts.Stalls++
			}
			if in.corruptT > 0 {
				retries := uint64(0)
				for retries < maxRetries && in.bernAt(streamCorrupt, site, &ps.corruptN, in.corruptT) {
					retries++
				}
				if retries > 0 {
					extra += sim.Dur(retries) * (in.plan.RetryLatency + service)
					ps.counts.Corrupts += retries
				}
			}
		}
		for _, w := range in.plan.Down {
			if w.Link == l && start >= w.From && start < w.Until {
				// The transfer fails until the link recovers; the
				// retransmission after recovery pays one retry turnaround.
				extra += w.Until.Sub(start) + in.plan.RetryLatency
				ps.counts.DownWaits++
			}
		}
		return extra
	}
	var extra sim.Dur
	c := in.stats.Links[l]
	touched := false
	if (in.stallT > 0 || in.corruptT > 0) && in.linkEligible(l) {
		site := linkSite(node, port)
		if in.stallT > 0 && in.bern(streamStall, site, in.stallT) {
			extra += in.plan.StallDur
			in.stats.Stalls++
			c.Stalls++
			touched = true
		}
		if in.corruptT > 0 {
			retries := uint64(0)
			for retries < maxRetries && in.bern(streamCorrupt, site, in.corruptT) {
				retries++
			}
			if retries > 0 {
				extra += sim.Dur(retries) * (in.plan.RetryLatency + service)
				in.stats.Corrupts += retries
				c.Corrupts += retries
				touched = true
			}
		}
	}
	for _, w := range in.plan.Down {
		if w.Link == l && start >= w.From && start < w.Until {
			extra += w.Until.Sub(start) + in.plan.RetryLatency
			in.stats.DownWaits++
			c.DownWaits++
			touched = true
		}
	}
	if touched {
		in.stats.Links[l] = c
	}
	return extra
}

// NodeSlowExtra returns the extra service time a (possibly) clock-skewed
// node adds on top of base. Slow nodes are a stable seed-chosen subset.
func (in *Injector) NodeSlowExtra(node int, base sim.Dur) sim.Dur {
	if in == nil || in.slowT == 0 || in.slowPermille <= 0 {
		return 0
	}
	if mix(in.plan.Seed, streamKey(streamSlowSel, uint64(node)), 0)>>11 >= in.slowT {
		return 0
	}
	return base * sim.Dur(in.slowPermille) / 1000
}

// NodeSlow reports whether the plan skews node's clock.
func (in *Injector) NodeSlow(node int) bool {
	if in == nil || in.slowT == 0 {
		return false
	}
	return mix(in.plan.Seed, streamKey(streamSlowSel, uint64(node)), 0)>>11 < in.slowT
}

// Drop draws whether the cluster fabric loses rank's next message. The
// caller retransmits after DropTimeout; attempt caps the consecutive
// losses of one message at maxRetries so a rate of 1.0 terminates.
func (in *Injector) Drop(rank, attempt int) bool {
	if in == nil || in.dropT == 0 || attempt >= maxRetries {
		return false
	}
	if !in.bern(streamDrop, uint64(rank), in.dropT) {
		return false
	}
	in.stats.Drops++
	return true
}

// DropTimeout returns the sender retransmission timeout.
func (in *Injector) DropTimeout() sim.Dur {
	if in == nil {
		return 0
	}
	return in.plan.DropTimeout
}

// HardFaults reports whether the plan permanently kills any link or
// node. Models gate all hard-failure machinery on this so that plans
// without kills schedule nothing extra and stay bit-identical to the
// pre-recovery models.
func (in *Injector) HardFaults() bool {
	return in != nil && in.plan.HardFaults()
}

// LinkKills returns the plan's permanent link failures.
func (in *Injector) LinkKills() []LinkKill {
	if in == nil {
		return nil
	}
	return in.plan.KillLinks
}

// NodeKills returns the plan's permanent node failures.
func (in *Injector) NodeKills() []NodeKill {
	if in == nil {
		return nil
	}
	return in.plan.KillNodes
}

// NodeKilledAt reports whether node (or cluster rank) `node` is dead at
// time at: a kill applies from its At instant onward.
func (in *Injector) NodeKilledAt(node int, at sim.Time) bool {
	if in == nil {
		return false
	}
	for _, k := range in.plan.KillNodes {
		if k.Node == node && k.At <= at {
			return true
		}
	}
	return false
}

// FirstLinkKill returns the earliest kill time of any link leaving
// node. The cluster model reads a rank's link kills as the failure of
// its switch uplink.
func (in *Injector) FirstLinkKill(node int) (sim.Time, bool) {
	if in == nil {
		return 0, false
	}
	var first sim.Time
	found := false
	for _, k := range in.plan.KillLinks {
		if k.Link.Node == node && (!found || k.At < first) {
			first, found = k.At, true
		}
	}
	return first, found
}

// WatchdogDeadline returns the effective end-to-end counter-watchdog
// deadline: the plan's Watchdog, or DefaultWatchdog when unset.
func (in *Injector) WatchdogDeadline() sim.Dur {
	if in == nil || in.plan.Watchdog == 0 {
		return DefaultWatchdog
	}
	return in.plan.Watchdog
}
