package fault

import (
	"reflect"
	"strings"
	"testing"

	"anton/internal/sim"
	"anton/internal/topo"
)

// Kill syntax parses to the expected plan, renders canonically (times
// always explicit, entries sorted), and round-trips.
func TestParsePlanKillSyntax(t *testing.T) {
	p, err := ParsePlan("seed=3,killlink=3:Y-@0ns;0:X+@1us,killnode=5@2us;2,wdog=25us")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		Seed: 3,
		KillLinks: []LinkKill{
			{Link: Link{Node: 0, Port: topo.Port{Dim: topo.X, Dir: +1}}, At: sim.Time(1 * sim.Us)},
			{Link: Link{Node: 3, Port: topo.Port{Dim: topo.Y, Dir: -1}}, At: 0},
		},
		KillNodes: []NodeKill{{Node: 2, At: 0}, {Node: 5, At: sim.Time(2 * sim.Us)}},
		Watchdog:  25 * sim.Us,
	}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	canon := "seed=3,killlink=0:X+@1000ns;3:Y-@0ns,killnode=2@0ns;5@2000ns,wdog=25000ns"
	if s := p.String(); s != canon {
		t.Fatalf("canonical form %q, want %q", s, canon)
	}
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("round trip changed the plan: %+v vs %+v", p, p2)
	}
	if !p.HardFaults() || p.IsZero() {
		t.Fatal("kill plan must report hard faults and not be zero")
	}
}

// Invalid plans are rejected with errors that name the offending target.
func TestParsePlanKillValidation(t *testing.T) {
	cases := []struct {
		in, wantErr string
	}{
		{"killlink=0:X+;0:X+", "killed twice"},
		{"killnode=4@1us;4@2us", "killed twice"},
		{"killlink=0:X+@-1ns", "out of range"},
		{"killnode=-1", "negative node"},
		{"killnode=5@-2us", "out of range"},
		{"wdog=-5us", "out of range"},
		{"down=0:X+@1us:1us", "empty or not ordered"},
		{"down=0:X+@5us:1us", "empty or not ordered"},
		{"killlink=0:Q+", "unknown port"},
		{"killlink=0X+", "not node:port"},
		{"killnode=abc", "invalid syntax"},
	}
	for _, c := range cases {
		if _, err := ParsePlan(c.in); err == nil {
			t.Errorf("ParsePlan(%q) accepted invalid input", c.in)
		} else if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ParsePlan(%q) error %q does not mention %q", c.in, err, c.wantErr)
		}
	}
}

// ValidateTopo rejects kills of links and nodes that do not exist on
// the target machine, while in-range plans pass.
func TestValidateTopo(t *testing.T) {
	p := MustParsePlan("killlink=63:X+@1us,killnode=10@0ns,links=5:Y+,down=7:Z-@0ns:1us")
	if err := p.ValidateTopo(64); err != nil {
		t.Fatalf("in-range plan rejected: %v", err)
	}
	for _, c := range []struct {
		plan, wantErr string
	}{
		{"killlink=64:X+", "killed link"},
		{"killnode=64", "killed node"},
		{"links=64:X+", "link"},
		{"down=64:X+@0ns:1us", "outage link"},
	} {
		p := MustParsePlan(c.plan)
		err := p.ValidateTopo(64)
		if err == nil {
			t.Errorf("ValidateTopo accepted %q on a 64-node machine", c.plan)
		} else if !strings.Contains(err.Error(), c.wantErr) || !strings.Contains(err.Error(), "64 nodes") {
			t.Errorf("ValidateTopo(%q) error %q lacks target or node count", c.plan, err)
		}
	}
}

// Injector accessors for hard faults: kill lists pass through, node
// death applies from its kill time onward, FirstLinkKill reports the
// earliest uplink failure, and the watchdog deadline defaults.
func TestInjectorHardFaultAccessors(t *testing.T) {
	in := NewInjector(MustParsePlan("killlink=2:X+@1us;2:Y+@3us,killnode=5@2us"))
	if !in.HardFaults() {
		t.Fatal("injector with kills reports no hard faults")
	}
	if n := len(in.LinkKills()); n != 2 {
		t.Fatalf("LinkKills len %d, want 2", n)
	}
	if in.NodeKilledAt(5, sim.Time(2*sim.Us)-1) {
		t.Fatal("node 5 dead before its kill time")
	}
	if !in.NodeKilledAt(5, sim.Time(2*sim.Us)) {
		t.Fatal("node 5 alive at its kill time")
	}
	if in.NodeKilledAt(4, sim.Time(10*sim.Us)) {
		t.Fatal("unkilled node reported dead")
	}
	if at, ok := in.FirstLinkKill(2); !ok || at != sim.Time(1*sim.Us) {
		t.Fatalf("FirstLinkKill(2) = %v,%v, want 1us,true", at, ok)
	}
	if _, ok := in.FirstLinkKill(3); ok {
		t.Fatal("FirstLinkKill(3) found a kill on an untouched node")
	}
	if d := in.WatchdogDeadline(); d != DefaultWatchdog {
		t.Fatalf("default watchdog %v, want %v", d, DefaultWatchdog)
	}
	in2 := NewInjector(MustParsePlan("killnode=1,wdog=7us"))
	if d := in2.WatchdogDeadline(); d != 7*sim.Us {
		t.Fatalf("watchdog %v, want 7us", d)
	}
	var nilIn *Injector
	if nilIn.HardFaults() || nilIn.NodeKilledAt(0, 0) {
		t.Fatal("nil injector reports hard faults")
	}
}
