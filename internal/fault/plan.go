package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"anton/internal/sim"
	"anton/internal/topo"
)

// The -faults flag syntax is a comma-separated key=value list:
//
//	seed=42,corrupt=1e-3,retry=50ns,stall=1e-4,stalldur=200ns,
//	drop=1e-3,timeout=10us,slow=0.05,slowfactor=1.5,
//	links=0:X+;5:Y-,down=0:X+@1us:5us
//
// Rates are probabilities in [0,1]; durations take a ps/ns/us/ms
// suffix; links are node:port with port one of X+ X- Y+ Y- Z+ Z-;
// outage windows are link@from:until. String renders the same syntax
// canonically (fixed key order, zero-valued keys omitted, durations in
// ns when whole nanoseconds), so Plan round-trips through
// ParsePlan(p.String()) exactly.

// String formats p in canonical -faults syntax.
func (p Plan) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	add("seed", strconv.FormatUint(p.Seed, 10))
	if p.CorruptRate != 0 {
		add("corrupt", fmtRate(p.CorruptRate))
	}
	if p.RetryLatency != 0 {
		add("retry", fmtDur(p.RetryLatency))
	}
	if p.StallRate != 0 {
		add("stall", fmtRate(p.StallRate))
	}
	if p.StallDur != 0 {
		add("stalldur", fmtDur(p.StallDur))
	}
	if p.DropRate != 0 {
		add("drop", fmtRate(p.DropRate))
	}
	if p.DropTimeout != 0 {
		add("timeout", fmtDur(p.DropTimeout))
	}
	if p.SlowRate != 0 {
		add("slow", fmtRate(p.SlowRate))
	}
	if p.SlowFactor != 0 {
		add("slowfactor", fmtRate(p.SlowFactor))
	}
	if len(p.Links) > 0 {
		ls := make([]string, len(p.Links))
		for i, l := range p.Links {
			ls[i] = l.String()
		}
		add("links", strings.Join(ls, ";"))
	}
	if len(p.Down) > 0 {
		ws := make([]string, len(p.Down))
		for i, w := range p.Down {
			ws[i] = fmt.Sprintf("%v@%s:%s", w.Link, fmtDur(sim.Dur(w.From)), fmtDur(sim.Dur(w.Until)))
		}
		add("down", strings.Join(ws, ";"))
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses the -faults flag syntax and validates the result.
// The empty string parses to the zero plan.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			return p, fmt.Errorf("fault: empty field in plan %q", s)
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return p, fmt.Errorf("fault: field %q is not key=value", field)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 10, 64)
		case "corrupt":
			p.CorruptRate, err = parseRate(v)
		case "retry":
			p.RetryLatency, err = parseDur(v)
		case "stall":
			p.StallRate, err = parseRate(v)
		case "stalldur":
			p.StallDur, err = parseDur(v)
		case "drop":
			p.DropRate, err = parseRate(v)
		case "timeout":
			p.DropTimeout, err = parseDur(v)
		case "slow":
			p.SlowRate, err = parseRate(v)
		case "slowfactor":
			p.SlowFactor, err = parseFactor(v)
		case "links":
			p.Links, err = parseLinks(v)
		case "down":
			p.Down, err = parseWindows(v)
		default:
			err = fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("fault: %s: %v", k, err)
		}
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// MustParsePlan is ParsePlan for known-good literals in tests and
// experiment definitions; it panics on error.
func MustParsePlan(s string) Plan {
	p, err := ParsePlan(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate checks the structural invariants ParsePlan promises.
func (p Plan) Validate() error {
	checkRate := func(name string, r float64) error {
		if math.IsNaN(r) || r < 0 || r > 1 {
			return fmt.Errorf("fault: %s rate %v outside [0,1]", name, r)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		r    float64
	}{{"corrupt", p.CorruptRate}, {"stall", p.StallRate}, {"drop", p.DropRate}, {"slow", p.SlowRate}} {
		if err := checkRate(c.name, c.r); err != nil {
			return err
		}
	}
	for _, c := range []struct {
		name string
		d    sim.Dur
	}{{"retry", p.RetryLatency}, {"stalldur", p.StallDur}, {"timeout", p.DropTimeout}} {
		if c.d < 0 {
			return fmt.Errorf("fault: negative %s duration %v", c.name, c.d)
		}
	}
	if f := p.SlowFactor; f != 0 && (math.IsNaN(f) || f < 1 || f > 100) {
		return fmt.Errorf("fault: slowfactor %v outside [1,100]", f)
	}
	for _, l := range p.Links {
		if l.Node < 0 {
			return fmt.Errorf("fault: negative link node in %v", l)
		}
	}
	for _, w := range p.Down {
		if w.Link.Node < 0 {
			return fmt.Errorf("fault: negative link node in outage %v", w.Link)
		}
		if w.From < 0 || w.Until < w.From {
			return fmt.Errorf("fault: outage window [%v,%v) is not ordered", w.From, w.Until)
		}
	}
	return nil
}

// fmtRate round-trips any finite float through strconv exactly.
func fmtRate(r float64) string { return strconv.FormatFloat(r, 'g', -1, 64) }

func parseRate(s string) (float64, error) {
	r, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0, fmt.Errorf("rate %q is not finite", s)
	}
	return r, nil
}

func parseFactor(s string) (float64, error) {
	f, err := parseRate(s)
	if err != nil {
		return 0, err
	}
	return f, nil
}

// fmtDur renders whole nanoseconds as "<n>ns", anything finer as
// "<n>ps"; both re-parse to the identical picosecond count.
func fmtDur(d sim.Dur) string {
	if d%1000 == 0 {
		return strconv.FormatInt(int64(d/1000), 10) + "ns"
	}
	return strconv.FormatInt(int64(d), 10) + "ps"
}

var durUnits = []struct {
	suffix string
	ps     float64
}{{"ps", 1}, {"ns", 1000}, {"us", 1e6}, {"ms", 1e9}}

func parseDur(s string) (sim.Dur, error) {
	for _, u := range durUnits {
		if num, ok := strings.CutSuffix(s, u.suffix); ok {
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, err
			}
			ps := v * u.ps
			if math.IsNaN(ps) || ps < 0 || ps > float64(1<<62) {
				return 0, fmt.Errorf("duration %q out of range", s)
			}
			return sim.Dur(math.Round(ps)), nil
		}
	}
	return 0, fmt.Errorf("duration %q needs a ps/ns/us/ms suffix", s)
}

var portNames = func() map[string]topo.Port {
	m := make(map[string]topo.Port, len(topo.Ports))
	for _, p := range topo.Ports {
		m[p.String()] = p
	}
	return m
}()

func parseLink(s string) (Link, error) {
	nodeStr, portStr, ok := strings.Cut(s, ":")
	if !ok {
		return Link{}, fmt.Errorf("link %q is not node:port", s)
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		return Link{}, err
	}
	port, ok := portNames[portStr]
	if !ok {
		return Link{}, fmt.Errorf("unknown port %q (want X+ X- Y+ Y- Z+ Z-)", portStr)
	}
	return Link{Node: node, Port: port}, nil
}

func parseLinks(s string) ([]Link, error) {
	var out []Link
	for _, f := range strings.Split(s, ";") {
		l, err := parseLink(f)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	// Canonical order plus dedup keeps String() stable under re-parse.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return topo.PortIndex(out[i].Port) < topo.PortIndex(out[j].Port)
	})
	dedup := out[:0]
	for i, l := range out {
		if i == 0 || l != out[i-1] {
			dedup = append(dedup, l)
		}
	}
	return dedup, nil
}

func parseWindows(s string) ([]Window, error) {
	var out []Window
	for _, f := range strings.Split(s, ";") {
		linkStr, span, ok := strings.Cut(f, "@")
		if !ok {
			return nil, fmt.Errorf("outage %q is not link@from:until", f)
		}
		l, err := parseLink(linkStr)
		if err != nil {
			return nil, err
		}
		fromStr, untilStr, ok := strings.Cut(span, ":")
		if !ok {
			return nil, fmt.Errorf("outage span %q is not from:until", span)
		}
		from, err := parseDur(fromStr)
		if err != nil {
			return nil, err
		}
		until, err := parseDur(untilStr)
		if err != nil {
			return nil, err
		}
		out = append(out, Window{Link: l, From: sim.Time(from), Until: sim.Time(until)})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Link.Node != b.Link.Node {
			return a.Link.Node < b.Link.Node
		}
		if pi, pj := topo.PortIndex(a.Link.Port), topo.PortIndex(b.Link.Port); pi != pj {
			return pi < pj
		}
		return a.From < b.From
	})
	return out, nil
}
