package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"anton/internal/sim"
	"anton/internal/topo"
)

// The -faults flag syntax is a comma-separated key=value list:
//
//	seed=42,corrupt=1e-3,retry=50ns,stall=1e-4,stalldur=200ns,
//	drop=1e-3,timeout=10us,slow=0.05,slowfactor=1.5,
//	links=0:X+;5:Y-,down=0:X+@1us:5us,
//	killlink=0:X+@1us;3:Y-@0ns,killnode=5@2us,wdog=25us
//
// Rates are probabilities in [0,1]; durations take a ps/ns/us/ms
// suffix; links are node:port with port one of X+ X- Y+ Y- Z+ Z-;
// outage windows are link@from:until. Permanent hard failures are
// killlink=link@at and killnode=node@at (the "@at" may be omitted and
// defaults to 0ns: dead from the start); wdog sets the end-to-end
// counter-watchdog deadline hard-failure recovery uses. String renders
// the same syntax canonically (fixed key order, zero-valued keys
// omitted, durations in ns when whole nanoseconds, kill times always
// explicit), so Plan round-trips through ParsePlan(p.String()) exactly.

// String formats p in canonical -faults syntax.
func (p Plan) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	add("seed", strconv.FormatUint(p.Seed, 10))
	if p.CorruptRate != 0 {
		add("corrupt", fmtRate(p.CorruptRate))
	}
	if p.RetryLatency != 0 {
		add("retry", fmtDur(p.RetryLatency))
	}
	if p.StallRate != 0 {
		add("stall", fmtRate(p.StallRate))
	}
	if p.StallDur != 0 {
		add("stalldur", fmtDur(p.StallDur))
	}
	if p.DropRate != 0 {
		add("drop", fmtRate(p.DropRate))
	}
	if p.DropTimeout != 0 {
		add("timeout", fmtDur(p.DropTimeout))
	}
	if p.SlowRate != 0 {
		add("slow", fmtRate(p.SlowRate))
	}
	if p.SlowFactor != 0 {
		add("slowfactor", fmtRate(p.SlowFactor))
	}
	if len(p.Links) > 0 {
		ls := make([]string, len(p.Links))
		for i, l := range p.Links {
			ls[i] = l.String()
		}
		add("links", strings.Join(ls, ";"))
	}
	if len(p.Down) > 0 {
		ws := make([]string, len(p.Down))
		for i, w := range p.Down {
			ws[i] = fmt.Sprintf("%v@%s:%s", w.Link, fmtDur(sim.Dur(w.From)), fmtDur(sim.Dur(w.Until)))
		}
		add("down", strings.Join(ws, ";"))
	}
	if len(p.KillLinks) > 0 {
		ks := make([]string, len(p.KillLinks))
		for i, k := range p.KillLinks {
			ks[i] = fmt.Sprintf("%v@%s", k.Link, fmtDur(sim.Dur(k.At)))
		}
		add("killlink", strings.Join(ks, ";"))
	}
	if len(p.KillNodes) > 0 {
		ks := make([]string, len(p.KillNodes))
		for i, k := range p.KillNodes {
			ks[i] = fmt.Sprintf("%d@%s", k.Node, fmtDur(sim.Dur(k.At)))
		}
		add("killnode", strings.Join(ks, ";"))
	}
	if p.Watchdog != 0 {
		add("wdog", fmtDur(p.Watchdog))
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses the -faults flag syntax and validates the result.
// The empty string parses to the zero plan.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			return p, fmt.Errorf("fault: empty field in plan %q", s)
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return p, fmt.Errorf("fault: field %q is not key=value", field)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 10, 64)
		case "corrupt":
			p.CorruptRate, err = parseRate(v)
		case "retry":
			p.RetryLatency, err = parseDur(v)
		case "stall":
			p.StallRate, err = parseRate(v)
		case "stalldur":
			p.StallDur, err = parseDur(v)
		case "drop":
			p.DropRate, err = parseRate(v)
		case "timeout":
			p.DropTimeout, err = parseDur(v)
		case "slow":
			p.SlowRate, err = parseRate(v)
		case "slowfactor":
			p.SlowFactor, err = parseFactor(v)
		case "links":
			p.Links, err = parseLinks(v)
		case "down":
			p.Down, err = parseWindows(v)
		case "killlink":
			p.KillLinks, err = parseLinkKills(v)
		case "killnode":
			p.KillNodes, err = parseNodeKills(v)
		case "wdog":
			p.Watchdog, err = parseDur(v)
		default:
			err = fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("fault: %s: %v", k, err)
		}
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// MustParsePlan is ParsePlan for known-good literals in tests and
// experiment definitions; it panics on error.
func MustParsePlan(s string) Plan {
	p, err := ParsePlan(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate checks the structural invariants ParsePlan promises.
func (p Plan) Validate() error {
	checkRate := func(name string, r float64) error {
		if math.IsNaN(r) || r < 0 || r > 1 {
			return fmt.Errorf("fault: %s rate %v outside [0,1]", name, r)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		r    float64
	}{{"corrupt", p.CorruptRate}, {"stall", p.StallRate}, {"drop", p.DropRate}, {"slow", p.SlowRate}} {
		if err := checkRate(c.name, c.r); err != nil {
			return err
		}
	}
	for _, c := range []struct {
		name string
		d    sim.Dur
	}{{"retry", p.RetryLatency}, {"stalldur", p.StallDur}, {"timeout", p.DropTimeout}} {
		if c.d < 0 {
			return fmt.Errorf("fault: negative %s duration %v", c.name, c.d)
		}
	}
	if f := p.SlowFactor; f != 0 && (math.IsNaN(f) || f < 1 || f > 100) {
		return fmt.Errorf("fault: slowfactor %v outside [1,100]", f)
	}
	for _, l := range p.Links {
		if l.Node < 0 {
			return fmt.Errorf("fault: negative link node in %v", l)
		}
	}
	for _, w := range p.Down {
		if w.Link.Node < 0 {
			return fmt.Errorf("fault: negative link node in outage %v", w.Link)
		}
		if w.From < 0 || w.Until <= w.From {
			return fmt.Errorf("fault: outage window [%v,%v) is empty or not ordered", w.From, w.Until)
		}
	}
	seenLinks := make(map[Link]bool, len(p.KillLinks))
	for _, k := range p.KillLinks {
		if k.Link.Node < 0 {
			return fmt.Errorf("fault: negative link node in kill %v", k.Link)
		}
		if k.At < 0 {
			return fmt.Errorf("fault: negative kill time %v for link %v", k.At, k.Link)
		}
		if seenLinks[k.Link] {
			return fmt.Errorf("fault: link %v killed twice", k.Link)
		}
		seenLinks[k.Link] = true
	}
	seenNodes := make(map[int]bool, len(p.KillNodes))
	for _, k := range p.KillNodes {
		if k.Node < 0 {
			return fmt.Errorf("fault: negative node in kill %d", k.Node)
		}
		if k.At < 0 {
			return fmt.Errorf("fault: negative kill time %v for node %d", k.At, k.Node)
		}
		if seenNodes[k.Node] {
			return fmt.Errorf("fault: node %d killed twice", k.Node)
		}
		seenNodes[k.Node] = true
	}
	if p.Watchdog < 0 {
		return fmt.Errorf("fault: negative wdog duration %v", p.Watchdog)
	}
	return nil
}

// ValidateTopo checks that every link, outage, and kill target names a
// node that exists on a machine with the given node count. CLIs call
// this against their primary torus so a typo'd kill fails loudly
// instead of silently never firing; the machine model itself ignores
// out-of-range sites, because one plan may drive ancillary simulators
// of many sizes.
func (p Plan) ValidateTopo(nodes int) error {
	check := func(what string, node int) error {
		if node >= nodes {
			return fmt.Errorf("fault: %s names node %d, but the machine has only %d nodes", what, node, nodes)
		}
		return nil
	}
	for _, l := range p.Links {
		if err := check(fmt.Sprintf("link %v", l), l.Node); err != nil {
			return err
		}
	}
	for _, w := range p.Down {
		if err := check(fmt.Sprintf("outage link %v", w.Link), w.Link.Node); err != nil {
			return err
		}
	}
	for _, k := range p.KillLinks {
		if err := check(fmt.Sprintf("killed link %v", k.Link), k.Link.Node); err != nil {
			return err
		}
	}
	for _, k := range p.KillNodes {
		if err := check(fmt.Sprintf("killed node %d", k.Node), k.Node); err != nil {
			return err
		}
	}
	return nil
}

// fmtRate round-trips any finite float through strconv exactly.
func fmtRate(r float64) string { return strconv.FormatFloat(r, 'g', -1, 64) }

func parseRate(s string) (float64, error) {
	r, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0, fmt.Errorf("rate %q is not finite", s)
	}
	return r, nil
}

func parseFactor(s string) (float64, error) {
	f, err := parseRate(s)
	if err != nil {
		return 0, err
	}
	return f, nil
}

// fmtDur renders whole nanoseconds as "<n>ns", anything finer as
// "<n>ps"; both re-parse to the identical picosecond count.
func fmtDur(d sim.Dur) string {
	if d%1000 == 0 {
		return strconv.FormatInt(int64(d/1000), 10) + "ns"
	}
	return strconv.FormatInt(int64(d), 10) + "ps"
}

var durUnits = []struct {
	suffix string
	ps     float64
}{{"ps", 1}, {"ns", 1000}, {"us", 1e6}, {"ms", 1e9}}

func parseDur(s string) (sim.Dur, error) {
	for _, u := range durUnits {
		if num, ok := strings.CutSuffix(s, u.suffix); ok {
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, err
			}
			ps := v * u.ps
			if math.IsNaN(ps) || ps < 0 || ps > float64(1<<62) {
				return 0, fmt.Errorf("duration %q out of range", s)
			}
			return sim.Dur(math.Round(ps)), nil
		}
	}
	return 0, fmt.Errorf("duration %q needs a ps/ns/us/ms suffix", s)
}

var portNames = func() map[string]topo.Port {
	m := make(map[string]topo.Port, len(topo.Ports))
	for _, p := range topo.Ports {
		m[p.String()] = p
	}
	return m
}()

func parseLink(s string) (Link, error) {
	nodeStr, portStr, ok := strings.Cut(s, ":")
	if !ok {
		return Link{}, fmt.Errorf("link %q is not node:port", s)
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		return Link{}, err
	}
	port, ok := portNames[portStr]
	if !ok {
		return Link{}, fmt.Errorf("unknown port %q (want X+ X- Y+ Y- Z+ Z-)", portStr)
	}
	return Link{Node: node, Port: port}, nil
}

func parseLinks(s string) ([]Link, error) {
	var out []Link
	for _, f := range strings.Split(s, ";") {
		l, err := parseLink(f)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	// Canonical order plus dedup keeps String() stable under re-parse.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return topo.PortIndex(out[i].Port) < topo.PortIndex(out[j].Port)
	})
	dedup := out[:0]
	for i, l := range out {
		if i == 0 || l != out[i-1] {
			dedup = append(dedup, l)
		}
	}
	return dedup, nil
}

func parseWindows(s string) ([]Window, error) {
	var out []Window
	for _, f := range strings.Split(s, ";") {
		linkStr, span, ok := strings.Cut(f, "@")
		if !ok {
			return nil, fmt.Errorf("outage %q is not link@from:until", f)
		}
		l, err := parseLink(linkStr)
		if err != nil {
			return nil, err
		}
		fromStr, untilStr, ok := strings.Cut(span, ":")
		if !ok {
			return nil, fmt.Errorf("outage span %q is not from:until", span)
		}
		from, err := parseDur(fromStr)
		if err != nil {
			return nil, err
		}
		until, err := parseDur(untilStr)
		if err != nil {
			return nil, err
		}
		out = append(out, Window{Link: l, From: sim.Time(from), Until: sim.Time(until)})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Link.Node != b.Link.Node {
			return a.Link.Node < b.Link.Node
		}
		if pi, pj := topo.PortIndex(a.Link.Port), topo.PortIndex(b.Link.Port); pi != pj {
			return pi < pj
		}
		return a.From < b.From
	})
	return out, nil
}

func parseLinkKills(s string) ([]LinkKill, error) {
	var out []LinkKill
	for _, f := range strings.Split(s, ";") {
		linkStr, atStr, hasAt := strings.Cut(f, "@")
		l, err := parseLink(linkStr)
		if err != nil {
			return nil, err
		}
		var at sim.Dur
		if hasAt {
			if at, err = parseDur(atStr); err != nil {
				return nil, err
			}
		}
		out = append(out, LinkKill{Link: l, At: sim.Time(at)})
	}
	// Canonical order (duplicates survive so Validate can reject them).
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Link.Node != b.Link.Node {
			return a.Link.Node < b.Link.Node
		}
		return topo.PortIndex(a.Link.Port) < topo.PortIndex(b.Link.Port)
	})
	return out, nil
}

func parseNodeKills(s string) ([]NodeKill, error) {
	var out []NodeKill
	for _, f := range strings.Split(s, ";") {
		nodeStr, atStr, hasAt := strings.Cut(f, "@")
		node, err := strconv.Atoi(nodeStr)
		if err != nil {
			return nil, err
		}
		var at sim.Dur
		if hasAt {
			if at, err = parseDur(atStr); err != nil {
				return nil, err
			}
		}
		out = append(out, NodeKill{Node: node, At: sim.Time(at)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out, nil
}
