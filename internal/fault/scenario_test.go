package fault_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anton/internal/cluster"
	"anton/internal/collective"
	"anton/internal/fault"
	"anton/internal/machine"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

var update = flag.Bool("update", false, "rewrite the scenario golden files with the current output")

// The scenario tests pin full text reports of small fault experiments —
// the plan, every probe latency, and the injector's fault-site tally —
// as golden files. The fault layer is bit-deterministic, so any diff
// means the fault model (or a model it perturbs) changed behaviour.
// After an intentional change, regenerate with:
//
//	go test ./internal/fault -run Scenario -update

// pingReport runs n sequential 0-byte counted remote writes from a to b
// on a 4x4x4 machine under plan, reporting each ping's latency.
func pingReport(b *strings.Builder, plan fault.Plan, a, dst topo.Coord, n int) *fault.Injector {
	s := sim.New()
	in := fault.Attach(s, plan)
	m := machine.New(s, topo.NewTorus(4, 4, 4), noc.DefaultModel())
	src := packet.Client{Node: m.Torus.ID(a), Kind: packet.Slice0}
	d := packet.Client{Node: m.Torus.ID(dst), Kind: packet.Slice0}
	var round func(k int)
	round = func(k int) {
		if k == n {
			return
		}
		start := s.Now()
		m.Client(d).Wait(0, uint64(k+1), func() {
			fmt.Fprintf(b, "ping %2d: %7.1f ns\n", k, s.Now().Sub(start).Ns())
			round(k + 1)
		})
		m.Client(src).Write(d, 0, 0, 0)
	}
	round(0)
	s.Run()
	return in
}

// singleCorruptLink: one noisy link on the ping path (0:X+), every
// other link clean. The first hop of the two-hop route pays seeded
// retransmissions; the report shows which pings were hit and the
// fault-site tally names only the configured link.
func singleCorruptLink() string {
	plan := fault.MustParsePlan("seed=7,corrupt=0.2,retry=50ns,links=0:X+")
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: single corrupt link\nplan: %v\n", plan)
	b.WriteString("torus 4x4x4, 16 sequential pings (0,0,0) -> (2,0,0), 0B payload\n")
	in := pingReport(&b, plan, topo.C(0, 0, 0), topo.C(2, 0, 0), 16)
	fmt.Fprintf(&b, "stats: %v\n", in.Stats())
	return b.String()
}

// deadThenRecovered: the 0:X+ link is down for [200ns, 2us). Pings
// launch every 300 ns; those whose transfer begins during the outage
// wait for recovery plus one retry turnaround and drain in FIFO order,
// then the path returns to the fault-free latency.
func deadThenRecovered() string {
	plan := fault.MustParsePlan("seed=1,retry=50ns,down=0:X+@200ns:2us")
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: dead-then-recovered link\nplan: %v\n", plan)
	b.WriteString("torus 4x4x4, pings (0,0,0) -> (1,0,0) launched every 300 ns\n")

	s := sim.New()
	in := fault.Attach(s, plan)
	m := machine.New(s, topo.NewTorus(4, 4, 4), noc.DefaultModel())
	src := packet.Client{Node: m.Torus.ID(topo.C(0, 0, 0)), Kind: packet.Slice0}
	dst := packet.Client{Node: m.Torus.ID(topo.C(1, 0, 0)), Kind: packet.Slice0}
	const n = 10
	type result struct{ launch, arrive sim.Time }
	results := make([]result, n)
	for k := 0; k < n; k++ {
		k := k
		launch := sim.Time(k) * sim.Time(300*sim.Ns)
		results[k].launch = launch
		// Writes traverse one link in order, so the (k+1)th counter
		// increment is the kth ping's arrival.
		m.Client(dst).Wait(0, uint64(k+1), func() { results[k].arrive = s.Now() })
		s.At(launch, func() { m.Client(src).Write(dst, 0, 0, 0) })
	}
	s.Run()
	for k, r := range results {
		fmt.Fprintf(&b, "ping %2d: launch %6.0f ns  arrive %6.1f ns  latency %7.1f ns\n",
			k, sim.Dur(r.launch).Ns(), sim.Dur(r.arrive).Ns(), r.arrive.Sub(r.launch).Ns())
	}
	fmt.Fprintf(&b, "stats: %v\n", in.Stats())
	return b.String()
}

// clusterDrops: the InfiniBand model at a 1e-3 drop rate. A burst of
// 3000 sequential small messages sees a handful of seeded losses, each
// costing the full 10 us sender timeout — the report pins the mean and
// worst one-way latency and the drop count.
func clusterDrops() string {
	plan := fault.MustParsePlan("seed=3,drop=1e-3,timeout=10us")
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: cluster message drops\nplan: %v\n", plan)
	b.WriteString("2-rank InfiniBand cluster, 3000 sequential 0B sends rank 0 -> 1\n")

	s := sim.New()
	in := fault.Attach(s, plan)
	c := cluster.New(s, 2, cluster.DDR2InfiniBand())
	const n = 3000
	var total, worst sim.Dur
	var slow int
	base := c.Model.PingLatency()
	var round func(k int)
	round = func(k int) {
		if k == n {
			return
		}
		start := s.Now()
		c.Send(0, 1, 0, func(at sim.Time) {
			lat := at.Sub(start)
			total += lat
			if lat > worst {
				worst = lat
			}
			if lat > base {
				slow++
			}
			round(k + 1)
		})
	}
	round(0)
	s.Run()
	fmt.Fprintf(&b, "fault-free one-way: %.2f us\n", base.Us())
	fmt.Fprintf(&b, "mean  one-way: %.3f us\n", (total / n).Us())
	fmt.Fprintf(&b, "worst one-way: %.2f us\n", worst.Us())
	fmt.Fprintf(&b, "sends delayed by a timeout: %d of %d\n", slow, n)
	fmt.Fprintf(&b, "stats: %v\n", in.Stats())
	return b.String()
}

// stallBurst: transient lane stalls at a high rate on all links of the
// ping path; each stall adds exactly StallDur, so latencies are
// quantized at baseline + k*200ns.
func stallBurst() string {
	plan := fault.MustParsePlan("seed=11,stall=0.15,stalldur=200ns")
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: transient link stalls\nplan: %v\n", plan)
	b.WriteString("torus 4x4x4, 16 sequential pings (0,0,0) -> (2,0,0), 0B payload\n")
	in := pingReport(&b, plan, topo.C(0, 0, 0), topo.C(2, 0, 0), 16)
	fmt.Fprintf(&b, "stats: %v\n", in.Stats())
	return b.String()
}

// killedLinkAllReduce: a link killed mid-all-reduce on a 4x4x4 machine.
// The fault-aware tables detour subsequent traffic; anything caught on
// the dying link is re-issued by the counter watchdog. The report pins
// the degraded completion time against the intact one and the full
// recovery tally.
func killedLinkAllReduce() string {
	plan := fault.MustParsePlan("seed=9,killlink=0:X+@100ns,wdog=5us")
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: killed link mid-all-reduce\nplan: %v\n", plan)
	b.WriteString("torus 4x4x4, 32B dimension-ordered all-reduce, 0:X+ killed at 100 ns\n")
	run := func(p fault.Plan) (sim.Dur, machine.RecoveryStats) {
		s := sim.New()
		fault.Attach(s, p)
		m := machine.New(s, topo.NewTorus(4, 4, 4), noc.DefaultModel())
		ar := collective.NewAllReduce(m, collective.DefaultConfig(32))
		var done sim.Time
		ar.Run(nil, func(at sim.Time) { done = at })
		s.Run()
		return sim.Dur(done), m.Recovery()
	}
	intact, _ := run(fault.MustParsePlan("seed=9"))
	killed, rec := run(plan)
	fmt.Fprintf(&b, "intact all-reduce: %.3f us\n", intact.Us())
	fmt.Fprintf(&b, "killed all-reduce: %.3f us (%+.3f us)\n", killed.Us(), (killed - intact).Us())
	fmt.Fprintf(&b, "recovery: %v\n", rec)
	return b.String()
}

// deadNodeDegraded: a node dead from t=0. Counted writes addressed to it
// are lost, its own sends are lost at the source, and every wait that
// depends on it completes degraded via the watchdog instead of hanging
// the simulation.
func deadNodeDegraded() string {
	plan := fault.MustParsePlan("seed=9,killnode=21,wdog=2us")
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: dead node, degraded waits\nplan: %v\n", plan)
	b.WriteString("torus 4x4x4, node 21 dead from t=0, watchdog 2 us\n")

	s := sim.New()
	fault.Attach(s, plan)
	m := machine.New(s, topo.NewTorus(4, 4, 4), noc.DefaultModel())
	cl := func(n topo.NodeID) packet.Client { return packet.Client{Node: n, Kind: packet.Slice0} }
	dead := topo.NodeID(21)

	// Three live nodes write to the dead node, whose software waits for
	// all three; a live node waits on a write the dead node will never
	// manage to send.
	var deadWait, liveWait sim.Time
	m.Client(cl(dead)).Wait(3, 3, func() { deadWait = s.Now() })
	for i := 0; i < 3; i++ {
		m.Client(cl(topo.NodeID(i))).Write(cl(dead), 3, 0, 8, 1)
	}
	m.Client(cl(0)).Wait(4, 2, func() { liveWait = s.Now() })
	m.Client(cl(1)).Write(cl(0), 4, 0, 8, 7)
	m.Client(cl(dead)).Write(cl(0), 4, 8, 8, 9)
	s.Run()

	fmt.Fprintf(&b, "wait on dead node completed degraded at %.3f us\n", sim.Dur(deadWait).Us())
	fmt.Fprintf(&b, "live wait on a dead source completed degraded at %.3f us\n", sim.Dur(liveWait).Us())
	fmt.Fprintf(&b, "live write payload stored: %v, dead source's address untouched: %v\n",
		m.Client(cl(0)).Mem(0, 1)[0], m.Client(cl(0)).Mem(8, 1)[0])
	fmt.Fprintf(&b, "recovery: %v\n", m.Recovery())
	return b.String()
}

func TestScenarioGoldens(t *testing.T) {
	scenarios := []struct {
		name string
		run  func() string
	}{
		{"single_corrupt_link", singleCorruptLink},
		{"dead_then_recovered", deadThenRecovered},
		{"cluster_drops", clusterDrops},
		{"stall_burst", stallBurst},
		{"killed_link_allreduce", killedLinkAllReduce},
		{"dead_node_degraded", deadNodeDegraded},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			got := sc.run()
			// The whole point: a second run is byte-identical.
			if again := sc.run(); again != got {
				t.Fatalf("scenario %s is nondeterministic:\n--- first ---\n%s--- second ---\n%s", sc.name, got, again)
			}
			path := filepath.Join("testdata", sc.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with: go test ./internal/fault -run Scenario -update)", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from %s — if the fault-model change is intentional, regenerate with -update\n--- got ---\n%s--- want ---\n%s",
					sc.name, path, got, want)
			}
		})
	}
}
