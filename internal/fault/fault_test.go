package fault

import (
	"testing"

	"anton/internal/sim"
	"anton/internal/topo"
)

var xPlus = topo.Port{Dim: topo.X, Dir: +1}

// A zero-rate plan must be a perfect no-op: no draws, no extra latency,
// empty stats — this is what makes the fault-free models reproducible
// bit for bit under an installed (but inert) plan.
func TestZeroPlanIsInert(t *testing.T) {
	in := NewInjector(Plan{Seed: 99})
	for i := 0; i < 1000; i++ {
		if extra := in.LinkExtra(i%7, xPlus, 55650, sim.Time(i)); extra != 0 {
			t.Fatalf("zero plan added %v to a link traversal", extra)
		}
		if in.Drop(i%4, 0) {
			t.Fatal("zero plan dropped a message")
		}
		if d := in.NodeSlowExtra(i%7, 36000); d != 0 {
			t.Fatalf("zero plan slowed a node by %v", d)
		}
	}
	st := in.Stats()
	if st.Corrupts != 0 || st.Stalls != 0 || st.Drops != 0 || st.DownWaits != 0 || len(st.Links) != 0 {
		t.Fatalf("zero plan accumulated stats: %v", st)
	}
	if len(in.ctr) != 0 {
		t.Fatalf("zero plan consumed %d draw streams", len(in.ctr))
	}
}

// A nil injector (no plan attached at all) behaves identically.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if extra := in.LinkExtra(0, xPlus, 55650, 0); extra != 0 {
		t.Fatalf("nil injector added %v", extra)
	}
	if in.Drop(0, 0) || in.NodeSlowExtra(0, 100) != 0 || in.DropTimeout() != 0 {
		t.Fatal("nil injector not inert")
	}
	if st := in.Stats(); st.Corrupts != 0 {
		t.Fatal("nil injector has stats")
	}
}

// The same (seed, plan) tuple must reproduce the identical decision
// sequence; a different seed must produce a different one.
func TestDrawSequenceDeterministicPerSeed(t *testing.T) {
	plan := Plan{Seed: 7, CorruptRate: 0.3, RetryLatency: 50 * sim.Ns, StallRate: 0.1, StallDur: 200 * sim.Ns, DropRate: 0.25, DropTimeout: 10 * sim.Us}
	seq := func(p Plan) []sim.Dur {
		in := NewInjector(p)
		var out []sim.Dur
		for i := 0; i < 500; i++ {
			out = append(out, in.LinkExtra(i%11, topo.Ports[i%6], 55650, sim.Time(i)))
			if in.Drop(i%5, 0) {
				out = append(out, -1)
			}
		}
		return out
	}
	a, b := seq(plan), seq(plan)
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	plan2 := plan
	plan2.Seed = 8
	c := seq(plan2)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("changing the seed did not move any fault site in 500 draws")
	}
}

// Corruption rates near 1 must terminate (the retry cap) and charge
// retry turnaround plus re-serialization per retransmission.
func TestCorruptionRetryCost(t *testing.T) {
	service := sim.Dur(55650)
	in := NewInjector(Plan{Seed: 1, CorruptRate: 1, RetryLatency: 50 * sim.Ns})
	extra := in.LinkExtra(0, xPlus, service, 0)
	want := sim.Dur(maxRetries) * (50*sim.Ns + service)
	if extra != want {
		t.Fatalf("rate-1 corruption: extra %v, want capped %v", extra, want)
	}
	if st := in.Stats(); st.Corrupts != maxRetries {
		t.Fatalf("rate-1 corruption: %d retries recorded, want %d", st.Corrupts, maxRetries)
	}
}

// The Links selector restricts corruption and stalls to the named
// links; others see zero faults at any rate.
func TestLinkSelector(t *testing.T) {
	in := NewInjector(Plan{
		Seed: 3, CorruptRate: 1, RetryLatency: sim.Ns,
		Links: []Link{{Node: 2, Port: xPlus}},
	})
	if extra := in.LinkExtra(1, xPlus, 100, 0); extra != 0 {
		t.Fatalf("unlisted link faulted: %v", extra)
	}
	if extra := in.LinkExtra(2, topo.Port{Dim: topo.Y, Dir: -1}, 100, 0); extra != 0 {
		t.Fatalf("unlisted port faulted: %v", extra)
	}
	if extra := in.LinkExtra(2, xPlus, 100, 0); extra == 0 {
		t.Fatal("listed link did not fault at rate 1")
	}
	st := in.Stats()
	if len(st.Links) != 1 {
		t.Fatalf("fault sites %v, want exactly the listed link", st.Links)
	}
	if _, ok := st.Links[Link{Node: 2, Port: xPlus}]; !ok {
		t.Fatalf("fault sites %v missing 2:X+", st.Links)
	}
}

// Outage windows delay only traversals that begin inside the window,
// by exactly the time to recovery plus one retry turnaround.
func TestDownWindow(t *testing.T) {
	w := Window{Link: Link{Node: 0, Port: xPlus}, From: 1000, Until: 5000}
	in := NewInjector(Plan{Seed: 1, RetryLatency: 100, Down: []Window{w}})
	if extra := in.LinkExtra(0, xPlus, 10, 999); extra != 0 {
		t.Fatalf("traversal before the outage delayed by %v", extra)
	}
	if extra := in.LinkExtra(0, xPlus, 10, 5000); extra != 0 {
		t.Fatalf("traversal after recovery delayed by %v", extra)
	}
	if extra := in.LinkExtra(1, xPlus, 10, 2000); extra != 0 {
		t.Fatalf("other link delayed by %v", extra)
	}
	if extra := in.LinkExtra(0, xPlus, 10, 2000); extra != sim.Dur(3000+100) {
		t.Fatalf("mid-outage traversal delayed by %v, want 3100", extra)
	}
	if st := in.Stats(); st.DownWaits != 1 {
		t.Fatalf("downwaits %d, want 1", st.DownWaits)
	}
}

// Slow-node selection is a stable seed-chosen subset at roughly the
// configured rate, and the skew scales service time by SlowFactor.
func TestNodeSlowdown(t *testing.T) {
	in := NewInjector(Plan{Seed: 5, SlowRate: 0.25, SlowFactor: 2})
	slow := 0
	for n := 0; n < 4096; n++ {
		a := in.NodeSlow(n)
		if a != in.NodeSlow(n) {
			t.Fatalf("node %d slow-selection not stable", n)
		}
		if a {
			slow++
			if extra := in.NodeSlowExtra(n, 36000); extra != 36000 {
				t.Fatalf("factor-2 skew on node %d added %v, want 36000", n, extra)
			}
		} else if extra := in.NodeSlowExtra(n, 36000); extra != 0 {
			t.Fatalf("fast node %d skewed by %v", n, extra)
		}
	}
	if slow < 800 || slow > 1250 {
		t.Fatalf("rate-0.25 selection picked %d/4096 nodes", slow)
	}
}

// Bernoulli draws track the configured rate within sampling error.
func TestBernoulliRate(t *testing.T) {
	in := NewInjector(Plan{Seed: 11, DropRate: 0.1, DropTimeout: sim.Us})
	drops := 0
	for i := 0; i < 20000; i++ {
		if in.Drop(0, 0) {
			drops++
		}
	}
	if drops < 1800 || drops > 2200 {
		t.Fatalf("rate-0.1 drop stream produced %d/20000 drops", drops)
	}
}

// Attach/FromSim round-trip through the simulator attachment point.
func TestAttachFromSim(t *testing.T) {
	s := sim.New()
	if FromSim(s) != nil {
		t.Fatal("fresh sim has an injector")
	}
	in := Attach(s, Plan{Seed: 2, CorruptRate: 0.5})
	if FromSim(s) != in {
		t.Fatal("FromSim did not return the attached injector")
	}
	if FromSim(s).Plan().CorruptRate != 0.5 {
		t.Fatal("plan lost in attachment")
	}
}
