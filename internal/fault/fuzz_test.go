package fault

import (
	"reflect"
	"testing"
)

// FuzzFaultPlanParse checks the parser never panics on arbitrary input
// and that any accepted plan round-trips through its canonical form:
// ParsePlan(p.String()) must succeed and re-render to the same string
// and the same plan value.
func FuzzFaultPlanParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"seed=42",
		"seed=42,corrupt=1e-3,retry=50ns",
		"seed=7,corrupt=0.1,retry=50ns,stall=1e-4,stalldur=200ns",
		"drop=1e-3,timeout=10us",
		"slow=0.05,slowfactor=1.5",
		"links=0:X+;5:Y-",
		"down=0:X+@1us:5us;3:Z-@0ns:100ns",
		"killlink=0:X+@1us;3:Y-@0ns",
		"killnode=5@2us,wdog=25us",
		"killlink=0:X+", // implicit @0ns
		"killnode=7",    // implicit @0ns
		"seed=3,killlink=1:Z+@500ns,killnode=2@1us,wdog=15us",
		"killlink=0:X+;0:X+",       // duplicate kill target
		"killnode=4@1us;4@2us",     // duplicate kill target
		"killlink=0:X+@-1ns",       // negative kill time
		"killnode=-1",              // negative node
		"wdog=-5us",                // negative watchdog
		"down=0:X+@1us:1us",        // empty window (now rejected)
		"seed=1,corrupt=2",         // invalid rate
		"retry=-5ns",               // invalid duration
		"links=0:Q+",               // invalid port
		"down=0:X+@5us:1us",        // unordered window
		"corrupt=nan",              // non-finite
		"seed=42,corrupt=1e-3,,",   // empty field
		"retry=9999999999999999ms", // overflow
		"stalldur=123ps,timeout=1ms",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p1, err := ParsePlan(s)
		if err != nil {
			return // rejected input: no panic is all we require
		}
		if verr := p1.Validate(); verr != nil {
			t.Fatalf("ParsePlan(%q) accepted an invalid plan: %v", s, verr)
		}
		s1 := p1.String()
		p2, err := ParsePlan(s1)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not re-parse: %v", s1, s, err)
		}
		if s2 := p2.String(); s2 != s1 {
			t.Fatalf("canonical form is not a fixed point: %q -> %q -> %q", s, s1, s2)
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("round-trip changed the plan: %+v vs %+v (via %q)", p1, p2, s1)
		}
	})
}
