package machine

import (
	"math/rand"
	"testing"

	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// measure sends one counted remote write from src to dst and returns the
// end-to-end latency: send issue to successful poll of the sync counter.
func measure(t *testing.T, m *Machine, src, dst packet.Client, bytes int) sim.Dur {
	t.Helper()
	var avail sim.Time = -1
	m.Client(dst).Wait(7, 1, func() { avail = m.Sim.Now() })
	start := m.Sim.Now()
	m.Client(src).Write(dst, 7, 0, bytes)
	m.Sim.Run()
	if avail < 0 {
		t.Fatalf("write %v -> %v never delivered", src, dst)
	}
	return avail.Sub(start)
}

func slice0(n topo.NodeID) packet.Client { return packet.Client{Node: n, Kind: packet.Slice0} }

func TestEndToEnd162ns(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	a := m.NodeAt(topo.C(0, 0, 0)).ID
	b := m.NodeAt(topo.C(1, 0, 0)).ID
	got := measure(t, m, slice0(a), slice0(b), 0)
	if got != 162*sim.Ns {
		t.Fatalf("1 X hop 0B latency = %v, want 162ns", got)
	}
}

func TestLatencyMatchesClosedForm(t *testing.T) {
	// The event-driven model must agree exactly with noc.PathLatency for
	// uncontended traffic between arbitrary node pairs and payload sizes.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		s := sim.New()
		m := Default512(s)
		ca := topo.C(rng.Intn(8), rng.Intn(8), rng.Intn(8))
		cb := topo.C(rng.Intn(8), rng.Intn(8), rng.Intn(8))
		if ca == cb {
			continue
		}
		bytes := rng.Intn(257)
		a, b := m.Torus.ID(ca), m.Torus.ID(cb)
		got := measure(t, m, slice0(a), slice0(b), bytes)
		wire := (&packet.Packet{Bytes: bytes}).WireBytes()
		want := m.Model.PathLatency(m.Torus.HopsByDim(ca, cb), packet.Slice0, packet.Slice0, wire)
		if got != want {
			t.Fatalf("trial %d %v->%v %dB: DES %v, closed form %v", trial, ca, cb, bytes, got, want)
		}
	}
}

func TestLocalDelivery(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	n := m.NodeAt(topo.C(3, 3, 3)).ID
	got := measure(t, m, slice0(n), packet.Client{Node: n, Kind: packet.Slice2}, 0)
	want := m.Model.SliceSend + m.Model.LocalRing + m.Model.Deliver
	if got != want {
		t.Fatalf("local delivery = %v, want %v", got, want)
	}
}

func TestWritePayloadStored(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	dst := packet.Client{Node: 9, Kind: packet.Slice1}
	m.Client(slice0(0)).Write(dst, 0, 10, 24, 1.5, 2.5, 3.5)
	s.Run()
	got := m.Client(dst).Mem(10, 3)
	if got[0] != 1.5 || got[1] != 2.5 || got[2] != 3.5 {
		t.Fatalf("stored payload = %v", got)
	}
	// Unwritten memory reads zero.
	if z := m.Client(dst).Mem(100, 1)[0]; z != 0 {
		t.Fatalf("unwritten word = %v", z)
	}
}

func TestAccumulationSums(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	acc := packet.Client{Node: 0, Kind: packet.Accum0}
	// Five sources across the machine accumulate into the same address.
	for i := 1; i <= 5; i++ {
		src := packet.Client{Node: topo.NodeID(i), Kind: packet.Slice(i % 4)}
		m.Client(src).Accumulate(acc, 3, 0, 8, float64(i))
	}
	done := false
	m.Client(acc).Counter(3).Wait(5, 0, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("accumulation counter never reached 5")
	}
	if got := m.Client(acc).Mem(0, 1)[0]; got != 15 {
		t.Fatalf("accumulated sum = %v, want 15", got)
	}
}

// Property: accumulation is order-independent — random interleavings of
// senders yield the same final sum.
func TestAccumulationOrderIndependence(t *testing.T) {
	run := func(seed int64) float64 {
		s := sim.New()
		m := Default512(s)
		acc := packet.Client{Node: 100, Kind: packet.Accum1}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 30; i++ {
			src := packet.Client{Node: topo.NodeID(rng.Intn(512)), Kind: packet.Slice(rng.Intn(4))}
			if src.Node == 100 {
				continue
			}
			v := float64(i)
			delay := sim.Dur(rng.Intn(1000)) * sim.Ns
			s.After(delay, func() { m.Client(src).Accumulate(acc, 0, 4, 8, v) })
		}
		s.Run()
		return m.Client(acc).Mem(4, 1)[0]
	}
	a, b := run(1), run(2)
	if a != b {
		t.Fatalf("accumulation order dependence: %v vs %v", a, b)
	}
}

func TestAccumulatePacketToSlicePanics(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	m.Client(slice0(0)).Accumulate(slice0(1), 0, 0, 8, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic delivering accumulation packet to a slice")
		}
	}()
	s.Run()
}

func TestAccumCannotSend(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: accumulation memories cannot send")
		}
	}()
	m.Client(packet.Client{Node: 0, Kind: packet.Accum0}).Write(slice0(1), 0, 0, 8)
}

func TestCountedRemoteWriteMultipleSources(t *testing.T) {
	// The defining pattern: several sources push to one target, which polls
	// a single counter and proceeds only when all data has arrived.
	s := sim.New()
	m := Default512(s)
	dst := slice0(m.NodeAt(topo.C(4, 4, 4)).ID)
	sources := []topo.Coord{topo.C(3, 4, 4), topo.C(5, 4, 4), topo.C(4, 3, 4), topo.C(4, 5, 4), topo.C(0, 0, 0)}
	for i, c := range sources {
		src := slice0(m.NodeAt(c).ID)
		m.Client(src).Write(dst, 1, i, 8, float64(i+1))
	}
	var avail sim.Time = -1
	m.Client(dst).Wait(1, uint64(len(sources)), func() { avail = s.Now() })
	s.Run()
	if avail < 0 {
		t.Fatal("counter never reached target")
	}
	// The last arrival dominates: the (0,0,0) source is 12 hops away.
	want := m.Model.PathLatency([3]int{4, 4, 4}, packet.Slice0, packet.Slice0, packet.HeaderBytes)
	if avail.Sub(0) < want {
		t.Fatalf("completion %v earlier than farthest source %v", avail, want)
	}
	for i := range sources {
		if got := m.Client(dst).Mem(i, 1)[0]; got != float64(i+1) {
			t.Fatalf("word %d = %v", i, got)
		}
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	// Two max-size packets from different slices on the same node, same
	// destination: the shared outgoing link must serialize them.
	s := sim.New()
	m := Default512(s)
	a := m.NodeAt(topo.C(0, 0, 0)).ID
	b := m.NodeAt(topo.C(1, 0, 0)).ID
	dst := slice0(b)
	var first, second sim.Time = -1, -1
	m.Client(dst).Counter(0).Wait(1, 0, func() { first = s.Now() })
	m.Client(dst).Counter(0).Wait(2, 0, func() { second = s.Now() })
	m.Client(packet.Client{Node: a, Kind: packet.Slice0}).Write(dst, 0, 0, 256)
	m.Client(packet.Client{Node: a, Kind: packet.Slice1}).Write(dst, 0, 64, 256)
	s.Run()
	gap := second.Sub(first)
	service := m.Model.LinkService(288)
	if gap < service {
		t.Fatalf("second delivery only %v after first; link service is %v", gap, service)
	}
}

func TestSustainedBandwidth(t *testing.T) {
	// A stream of max-size packets across one link must sustain ~36.8
	// Gbit/s of payload.
	s := sim.New()
	m := Default512(s)
	a := m.NodeAt(topo.C(0, 0, 0)).ID
	b := m.NodeAt(topo.C(1, 0, 0)).ID
	const n = 200
	var done sim.Time
	m.Client(slice0(b)).Wait(0, n, func() { done = s.Now() })
	for i := 0; i < n; i++ {
		m.Client(slice0(a)).Write(slice0(b), 0, i*32, 256)
	}
	s.Run()
	gbps := float64(n*256*8) / done.Ns()
	if gbps < 33 || gbps > 38 {
		t.Fatalf("sustained payload bandwidth = %.2f Gbit/s, want ~36.8", gbps)
	}
}

func TestMulticastRowBroadcast(t *testing.T) {
	// Broadcast along an X row: each node delivers to its slice0 and
	// forwards to X+ until the pattern stops. One injected packet, many
	// deliveries — this is what cuts sender overhead and bandwidth.
	s := sim.New()
	m := Default512(s)
	row := make([]topo.NodeID, 4)
	for i := range row {
		row[i] = m.NodeAt(topo.C(i, 2, 2)).ID
	}
	const mcid = 5
	for i, n := range row {
		e := packet.McEntry{}
		if i > 0 {
			e.Local = []packet.ClientKind{packet.Slice0}
		}
		if i < len(row)-1 {
			e.Out = []topo.Port{{Dim: topo.X, Dir: +1}}
		}
		m.SetMulticast(n, mcid, e)
	}
	arrive := map[topo.NodeID]sim.Time{}
	for _, n := range row[1:] {
		n := n
		m.Client(slice0(n)).Wait(2, 1, func() { arrive[n] = s.Now() })
	}
	m.Client(slice0(row[0])).MulticastWrite(mcid, 2, 0, 8, 42)
	s.Run()
	if len(arrive) != 3 {
		t.Fatalf("deliveries = %d, want 3", len(arrive))
	}
	if arrive[row[1]] != sim.Time(162*sim.Ns) {
		t.Fatalf("first hop arrival %v, want 162ns", arrive[row[1]])
	}
	// Each further node arrives one X hop increment later.
	inc := m.Model.HopIncrement(topo.X)
	if arrive[row[2]].Sub(arrive[row[1]]) != inc || arrive[row[3]].Sub(arrive[row[2]]) != inc {
		t.Fatalf("multicast hop spacing: %v %v %v", arrive[row[1]], arrive[row[2]], arrive[row[3]])
	}
	// Sender injected exactly one packet; three were received.
	st := m.Stats()
	if st.Sent != 1 || st.Received != 3 {
		t.Fatalf("stats sent=%d received=%d, want 1/3", st.Sent, st.Received)
	}
	for _, n := range row[1:] {
		if got := m.Client(slice0(n)).Mem(0, 1)[0]; got != 42 {
			t.Fatalf("payload at node %d = %v", n, got)
		}
	}
}

func TestMulticastMissingPatternPanics(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	m.Client(slice0(0)).MulticastWrite(9, 0, 0, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on uninstalled multicast pattern")
		}
	}()
	s.Run()
}

func TestFIFOMessageDelivery(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	dst := slice0(5)
	var got *packet.Packet
	m.Client(dst).FIFO().Pop(func(p *packet.Packet) { got = p })
	m.Client(slice0(0)).Message(dst, 64, 1, 2, 3)
	s.Run()
	if got == nil || len(got.Payload) != 3 || got.Payload[2] != 3 {
		t.Fatalf("FIFO message = %+v", got)
	}
}

func TestFIFOQueuesInOrder(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	dst := slice0(3)
	src := m.Client(slice0(2))
	for i := 0; i < 5; i++ {
		src.Message(dst, 32, float64(i))
	}
	var got []float64
	var drain func(*packet.Packet)
	drain = func(p *packet.Packet) {
		got = append(got, p.Payload[0])
		if len(got) < 5 {
			m.Client(dst).FIFO().Pop(drain)
		}
	}
	m.Client(dst).FIFO().Pop(drain)
	s.Run()
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("messages out of order: %v", got)
		}
	}
	if m.Client(dst).FIFO().Delivered() != 5 {
		t.Fatalf("delivered = %d", m.Client(dst).FIFO().Delivered())
	}
}

func TestFIFOBackpressure(t *testing.T) {
	s := sim.New()
	model := noc.DefaultModel()
	model.FIFOCapacity = 2
	m := New(s, topo.NewTorus(4, 4, 4), model)
	dst := slice0(1)
	src := m.Client(slice0(0))
	for i := 0; i < 5; i++ {
		src.Message(dst, 32, float64(i))
	}
	// Let everything arrive with nobody draining: 2 queued, 3 blocked.
	s.Run()
	f := m.Client(dst).FIFO()
	if f.Len() != 2 || f.Blocked() != 3 {
		t.Fatalf("queue=%d blocked=%d, want 2/3", f.Len(), f.Blocked())
	}
	// Drain everything; blocked messages are admitted as space frees.
	var got []float64
	var drain func(*packet.Packet)
	drain = func(p *packet.Packet) {
		got = append(got, p.Payload[0])
		if len(got) < 5 {
			f.Pop(drain)
		}
	}
	f.Pop(drain)
	s.Run()
	if len(got) != 5 {
		t.Fatalf("drained %d messages, want 5", len(got))
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("backpressured messages out of order: %v", got)
		}
	}
}

func TestConcurrentFIFOPopPanics(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	f := m.Client(slice0(0)).FIFO()
	f.Pop(func(*packet.Packet) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on concurrent Pop")
		}
	}()
	f.Pop(func(*packet.Packet) {})
}

func TestFIFOOnNonSlicePanics(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: HTIS has no FIFO")
		}
	}()
	m.Client(packet.Client{Node: 0, Kind: packet.HTIS}).FIFO()
}

func TestInOrderAvailabilityMonotone(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	a, b := slice0(0), slice0(1)
	var avails []sim.Time
	m.OnDeliver = func(pkt *packet.Packet, dst packet.Client, at sim.Time) {
		avails = append(avails, at)
	}
	for i := 0; i < 4; i++ {
		m.Client(a).Send(&packet.Packet{
			Kind: packet.Write, Dst: b, Multicast: packet.NoMulticast,
			Counter: 0, Bytes: 256 - i*80, InOrder: true,
		})
	}
	s.Run()
	if len(avails) != 4 {
		t.Fatalf("deliveries = %d", len(avails))
	}
	for i := 1; i < len(avails); i++ {
		if avails[i] < avails[i-1] {
			t.Fatalf("in-order availability regressed: %v", avails)
		}
	}
}

func TestStatsPerNode(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	m.Client(slice0(0)).Write(slice0(1), 0, 0, 0)
	m.Client(slice0(0)).Write(slice0(2), 0, 0, 64)
	s.Run()
	st := m.Stats()
	if st.NodeSent(0) != 2 || st.NodeReceived(1) != 1 || st.NodeReceived(2) != 1 {
		t.Fatalf("per-node stats: sent0=%d recv1=%d recv2=%d", st.NodeSent(0), st.NodeReceived(1), st.NodeReceived(2))
	}
	if st.SentBytes != 32+96 {
		t.Fatalf("sent bytes = %d, want 128", st.SentBytes)
	}
	if st.NodeSent(99) != 0 || st.NodeReceived(600) != 0 {
		t.Fatal("out-of-range node stats should be zero")
	}
}

func TestLinkBusyAccounting(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	a := m.NodeAt(topo.C(0, 0, 0)).ID
	m.Client(slice0(a)).Write(slice0(m.NodeAt(topo.C(1, 0, 0)).ID), 0, 0, 256)
	s.Run()
	busy := m.LinkBusy(a, topo.Port{Dim: topo.X, Dir: +1})
	if busy != m.Model.LinkService(288) {
		t.Fatalf("link busy = %v, want %v", busy, m.Model.LinkService(288))
	}
	if m.LinkBusy(a, topo.Port{Dim: topo.X, Dir: -1}) != 0 {
		t.Fatal("unused link shows busy time")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []sim.Time {
		s := sim.New()
		m := Default512(s)
		var avails []sim.Time
		m.OnDeliver = func(pkt *packet.Packet, dst packet.Client, at sim.Time) {
			avails = append(avails, at)
		}
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 100; i++ {
			src := slice0(topo.NodeID(rng.Intn(512)))
			dst := slice0(topo.NodeID(rng.Intn(512)))
			if src == dst {
				continue
			}
			m.Client(src).Write(dst, 0, 0, rng.Intn(257))
		}
		s.Run()
		return avails
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWaitRemoteChargesAccumPoll(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	acc := packet.Client{Node: 2, Kind: packet.Accum0}
	var local, remote sim.Time
	m.Client(acc).Wait(0, 1, func() { local = s.Now() })
	m.Client(acc).WaitRemote(0, 1, func() { remote = s.Now() })
	m.Client(slice0(0)).Accumulate(acc, 0, 0, 8, 1)
	s.Run()
	if remote.Sub(local) != m.Model.AccumPoll {
		t.Fatalf("remote poll penalty = %v, want %v", remote.Sub(local), m.Model.AccumPoll)
	}
}

func TestInvalidPacketPanics(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid packet")
		}
	}()
	m.Client(slice0(0)).Write(slice0(1), 0, 0, 300)
}

func TestInOrderMulticastAfterUnicasts(t *testing.T) {
	// The migration idiom: in-order unicast messages followed by an
	// in-order multicast sync write on the same pairs; the sync must not
	// become available before the messages.
	s := sim.New()
	m := Default512(s)
	a := m.NodeAt(topo.C(0, 0, 0)).ID
	b := m.NodeAt(topo.C(1, 0, 0)).ID
	m.SetMulticast(a, 3, packet.McEntry{Out: []topo.Port{{Dim: topo.X, Dir: +1}}})
	m.SetMulticast(b, 3, packet.McEntry{Local: []packet.ClientKind{packet.Slice0}})

	var msgAt, syncAt sim.Time
	m.OnDeliver = func(p *packet.Packet, dst packet.Client, at sim.Time) {
		if p.Kind == packet.Message {
			msgAt = at
		} else {
			syncAt = at
		}
	}
	src := m.Client(slice0(a))
	// The big message is sent first; without the in-order guarantee the
	// small sync write would overtake it (it skips the payload
	// serialization the 256-byte message pays).
	src.Send(&packet.Packet{
		Kind: packet.Message, Dst: slice0(b), Multicast: packet.NoMulticast,
		Counter: packet.NoCounter, Bytes: 256, InOrder: true,
	})
	src.Send(&packet.Packet{
		Kind: packet.Write, Multicast: 3, Counter: 9, Bytes: 8, InOrder: true,
	})
	s.Run()
	if msgAt == 0 || syncAt == 0 {
		t.Fatal("deliveries missing")
	}
	if syncAt < msgAt {
		t.Fatalf("sync committed at %v before the message at %v", syncAt, msgAt)
	}
}

func TestOverlappingWritesLastWins(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	dst := slice0(4)
	src := m.Client(slice0(3))
	src.Write(dst, 0, 0, 8, 1)
	src.Write(dst, 0, 0, 8, 2)
	s.Run()
	// Same route, same size: deliveries keep send order; the second write
	// overwrites the first.
	if got := m.Client(dst).Mem(0, 1)[0]; got != 2 {
		t.Fatalf("final word = %v, want 2", got)
	}
}

func TestSendGapPacesInjection(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	var sendTimes []sim.Time
	m.OnSend = func(p *packet.Packet, at sim.Time) { sendTimes = append(sendTimes, at) }
	src := m.Client(slice0(0))
	for i := 0; i < 5; i++ {
		src.Write(slice0(1), 0, i, 0)
	}
	s.Run()
	for i := 1; i < len(sendTimes); i++ {
		if got := sendTimes[i].Sub(sendTimes[i-1]); got != m.Model.SliceSendGap {
			t.Fatalf("injection spacing %v, want %v", got, m.Model.SliceSendGap)
		}
	}
}

func TestHTISFasterDelivery(t *testing.T) {
	// The HTIS ingest port drains a saturating packet stream faster than a
	// slice's: four neighbouring nodes flood the destination concurrently
	// so the receive port, not the senders, is the bottleneck.
	drain := func(kind packet.ClientKind) sim.Dur {
		s := sim.New()
		m := Default512(s)
		dstNode := m.NodeAt(topo.C(1, 1, 1)).ID
		dst := packet.Client{Node: dstNode, Kind: kind}
		srcs := []topo.Coord{topo.C(0, 1, 1), topo.C(2, 1, 1), topo.C(1, 0, 1), topo.C(1, 2, 1)}
		const per = 100
		var done sim.Time
		m.Client(dst).Wait(0, uint64(len(srcs)*per), func() { done = s.Now() })
		for _, c := range srcs {
			src := m.Client(slice0(m.NodeAt(c).ID))
			for i := 0; i < per; i++ {
				src.Write(dst, 0, i, 64)
			}
		}
		s.Run()
		return sim.Dur(done)
	}
	if htis, slice := drain(packet.HTIS), drain(packet.Slice2); htis >= slice {
		t.Fatalf("HTIS drain %v not faster than slice drain %v", htis, slice)
	}
}

func TestResetStats(t *testing.T) {
	s := sim.New()
	m := Default512(s)
	m.Client(slice0(0)).Write(slice0(1), 0, 0, 8)
	s.Run()
	if m.Stats().Sent == 0 {
		t.Fatal("no traffic recorded")
	}
	m.ResetStats()
	st := m.Stats()
	if st.Sent != 0 || st.Received != 0 || st.NodeSent(0) != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
}

func TestInOrderIndependentPairsDoNotBlock(t *testing.T) {
	// In-order applies per (source, destination) pair: traffic on one pair
	// must not delay another pair's deliveries.
	s := sim.New()
	m := Default512(s)
	var cAt, bAt sim.Time
	m.OnDeliver = func(p *packet.Packet, dst packet.Client, at sim.Time) {
		if dst.Node == 2 {
			bAt = at
		} else {
			cAt = at
		}
	}
	src := m.Client(slice0(0))
	// Big in-order packet to node 2, then small in-order packet to node 1:
	// different pairs, so the small one may arrive first.
	src.Send(&packet.Packet{Kind: packet.Write, Dst: slice0(2), Multicast: packet.NoMulticast,
		Counter: 0, Bytes: 256, InOrder: true})
	src.Send(&packet.Packet{Kind: packet.Write, Dst: slice0(1), Multicast: packet.NoMulticast,
		Counter: 0, Bytes: 0, InOrder: true})
	s.Run()
	if cAt == 0 || bAt == 0 {
		t.Fatal("deliveries missing")
	}
	if cAt >= bAt {
		t.Fatalf("independent pair delayed: small %v, big %v", cAt, bAt)
	}
}
