package machine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// Property tests for the stage-2 sharding contracts: canonical send-
// sequence renumbering, per-node statistics merging, and the in-order
// commit ledger. Each property is checked on the sequential kernel and
// under the stage-2 window executor, and the parallel runs must prove
// engagement (ExecWindows > 0) so the checks cannot pass vacuously.

// propSend is one send of the randomized property workload, generated
// once so every run (any worker count, any InOrder policy) replays the
// identical schedule.
type propSend struct {
	src     topo.NodeID
	dst     packet.Client
	at      sim.Time
	kind    packet.Kind
	mc      packet.MulticastID
	bytes   int
	ctr     packet.CounterID
	inOrder bool
	tag     string
}

// propWorkload derives a deterministic send mix. A handful of hot
// (src, dst) pairs — X-adjacent neighbours with a per-pair multicast
// pattern over the same link — get bursts interleaving large FIFO
// messages with small multicast sync writes: the sync write skips the
// payload serialization the message pays, so without the in-order
// guarantee it overtakes, and the ledger genuinely has to defer
// commits (the migration idiom). The remaining sends scatter unicast
// counted writes across the whole torus.
func propWorkload(seed int64, shape [3]int, sends int) ([]propSend, [][2]topo.NodeID) {
	tor := topo.NewTorus(shape[0], shape[1], shape[2])
	nodes := tor.Nodes()
	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]topo.NodeID, 6)
	for i := range pairs {
		src := topo.NodeID(rng.Intn(nodes))
		dst := tor.ID(tor.Neighbor(tor.Coord(src), topo.Port{Dim: topo.X, Dir: +1}))
		pairs[i] = [2]topo.NodeID{src, dst}
	}
	out := make([]propSend, 0, sends)
	for i := 0; i < sends; i++ {
		var s propSend
		if rng.Intn(3) > 0 {
			pi := rng.Intn(len(pairs))
			p := pairs[pi]
			s.src = p[0]
			s.dst = packet.Client{Node: p[1], Kind: packet.Slice(pi % 4)}
			s.at = sim.Time(rng.Intn(8)) * sim.Time(250*sim.Ns)
			if rng.Intn(2) == 0 {
				s.kind = packet.Message
				s.mc = packet.NoMulticast
				s.bytes = 128 + rng.Intn(129)
				s.ctr = packet.NoCounter
			} else {
				s.kind = packet.Write
				s.mc = packet.MulticastID(pi)
				s.bytes = 8
				s.ctr = packet.CounterID(rng.Intn(3))
			}
		} else {
			s.src = topo.NodeID(rng.Intn(nodes))
			s.dst = packet.Client{Node: topo.NodeID(rng.Intn(nodes)), Kind: packet.Slice(rng.Intn(4))}
			s.at = sim.Time(rng.Int63n(int64(2 * sim.Us)))
			s.kind = packet.Write
			s.mc = packet.NoMulticast
			s.bytes = rng.Intn(257)
			s.ctr = packet.CounterID(rng.Intn(3))
		}
		s.inOrder = rng.Intn(2) == 0
		s.tag = fmt.Sprintf("p%d", i)
		out = append(out, s)
	}
	return out, pairs
}

// propRun replays the workload on a fresh machine and returns the
// machine plus the canonical send record and per-delivery commit times.
// forceOrder overrides each send's InOrder flag: -1 leaves the mix,
// 0 clears it, 1 sets it.
func propRun(t *testing.T, work []propSend, pairs [][2]topo.NodeID, workers, forceOrder int, shape [3]int) (*Machine, []sentRec, map[string]sim.Time) {
	t.Helper()
	tor := topo.NewTorus(shape[0], shape[1], shape[2])
	s := sim.New()
	s.SetWorkers(workers)
	// The workload is small relative to the default grain; force every
	// window through the stage-2 executor so the parallel legs of the
	// properties actually exercise it.
	s.SetGrain(1)
	m := New(s, tor, noc.DefaultModel())
	s.SetConfined(true)

	for pi, p := range pairs {
		m.SetMulticast(p[0], packet.MulticastID(pi), packet.McEntry{Out: []topo.Port{{Dim: topo.X, Dir: +1}}})
		m.SetMulticast(p[1], packet.MulticastID(pi), packet.McEntry{Local: []packet.ClientKind{packet.Slice(pi % 4)}})
	}

	var sent []sentRec
	m.OnSend = func(pkt *packet.Packet, at sim.Time) {
		rec := sentRec{seq: pkt.Seq, src: pkt.Src, dst: pkt.Dst, ticket: pkt.Ticket, inOrder: pkt.InOrder, tag: pkt.Tag}
		if pkt.Multicast != packet.NoMulticast && len(pkt.Tickets) > 0 {
			// Single-destination multicast: report the resolved ticket so
			// per-pair checks treat it like the unicasts it interleaves with.
			rec.dst = pkt.Tickets[0].Dst
			rec.ticket = pkt.Tickets[0].Ticket
		}
		sent = append(sent, rec)
	}
	commits := make(map[string]sim.Time)
	m.OnDeliver = func(pkt *packet.Packet, dst packet.Client, at sim.Time) {
		commits[pkt.Tag] = at
	}

	for i := range work {
		w := work[i]
		inOrder := w.inOrder
		if forceOrder == 0 {
			inOrder = false
		} else if forceOrder == 1 {
			inOrder = true
		}
		src := m.Client(packet.Client{Node: w.src, Kind: packet.Slice0})
		m.Ctx(w.src).At(w.at, func() {
			pkt := &packet.Packet{
				Kind: w.kind, Multicast: w.mc, Counter: w.ctr,
				Bytes: w.bytes, InOrder: inOrder, Tag: w.tag,
			}
			if w.mc == packet.NoMulticast {
				pkt.Dst = w.dst
			}
			src.Send(pkt)
		})
	}
	s.Run()
	if workers > 1 && s.ExecWindows() == 0 {
		t.Fatalf("workers=%d: stage-2 executor never engaged; property checks would be vacuous", workers)
	}
	return m, sent, commits
}

type sentRec struct {
	seq     uint64
	src     packet.Client
	dst     packet.Client
	ticket  uint64
	inOrder bool
	tag     string
}

const propShapeX, propShapeY, propShapeZ = 4, 4, 2

// TestSeqRenumberBijection pins the canonical renumbering contract: the
// send-sequence stream observed at the canonical merge point is exactly
// 1..N in order (a bijection onto the dense range — no gaps, no
// duplicates, no reordering of the stream itself), per-(src,dst)
// in-order tickets appear in strictly increasing order (renumbering
// preserves per-pair send order), and the whole mapping is identical at
// any worker count.
func TestSeqRenumberBijection(t *testing.T) {
	work, pairs := propWorkload(31, [3]int{propShapeX, propShapeY, propShapeZ}, 240)
	shape := [3]int{propShapeX, propShapeY, propShapeZ}

	check := func(t *testing.T, sent []sentRec) string {
		if len(sent) != len(work) {
			t.Fatalf("recorded %d sends, workload has %d", len(sent), len(work))
		}
		var render strings.Builder
		lastTicket := make(map[[2]packet.Client]uint64)
		for i, r := range sent {
			if r.seq != uint64(i+1) {
				t.Fatalf("send record %d carries seq %d; canonical stream must be the identity 1..N", i, r.seq)
			}
			if r.inOrder {
				key := [2]packet.Client{r.src, r.dst}
				if last, ok := lastTicket[key]; ok && r.ticket <= last {
					t.Fatalf("pair %v->%v: ticket %d after %d in canonical seq order; renumbering broke per-pair send order",
						r.src, r.dst, r.ticket, last)
				}
				lastTicket[key] = r.ticket
			}
			fmt.Fprintf(&render, "%d %v %v %d %v\n", r.seq, r.src, r.dst, r.ticket, r.inOrder)
		}
		return render.String()
	}

	_, seqSent, _ := propRun(t, work, pairs, 1, -1, shape)
	want := check(t, seqSent)
	for _, workers := range []int{2, 8} {
		_, parSent, _ := propRun(t, work, pairs, workers, -1, shape)
		if got := check(t, parSent); got != want {
			t.Fatalf("workers=%d: canonical send mapping differs from sequential", workers)
		}
	}
}

// TestStatsShardMergeConservation pins the sharded-statistics contract:
// the machine-wide totals are exactly the sum of the per-node shards
// (count conservation — the merge is a reduction that cannot invent or
// drop traffic), the reduction is order-free, and every shard is
// identical at any worker count.
func TestStatsShardMergeConservation(t *testing.T) {
	work, pairs := propWorkload(47, [3]int{propShapeX, propShapeY, propShapeZ}, 240)
	shape := [3]int{propShapeX, propShapeY, propShapeZ}
	nodes := propShapeX * propShapeY * propShapeZ

	type shard struct{ sent, recv uint64 }
	snapshot := func(m *Machine) ([]shard, Stats) {
		st := m.Stats()
		per := make([]shard, nodes)
		for n := 0; n < nodes; n++ {
			per[n] = shard{st.NodeSent(topo.NodeID(n)), st.NodeReceived(topo.NodeID(n))}
		}
		return per, st
	}

	mSeq, _, _ := propRun(t, work, pairs, 1, -1, shape)
	wantPer, wantTot := snapshot(mSeq)

	// Conservation: totals equal the shard sum, summed in either order.
	var fwd, rev shard
	for n := 0; n < nodes; n++ {
		fwd.sent += wantPer[n].sent
		fwd.recv += wantPer[n].recv
		rev.sent += wantPer[nodes-1-n].sent
		rev.recv += wantPer[nodes-1-n].recv
	}
	if fwd != rev {
		t.Fatalf("shard reduction is order-dependent: forward %v, reverse %v", fwd, rev)
	}
	if wantTot.Sent != fwd.sent || wantTot.Received != fwd.recv {
		t.Fatalf("totals (%d sent, %d received) != shard sum (%d, %d)",
			wantTot.Sent, wantTot.Received, fwd.sent, fwd.recv)
	}
	if wantTot.Sent != uint64(len(work)) {
		t.Fatalf("machine sent %d packets, workload issued %d", wantTot.Sent, len(work))
	}

	for _, workers := range []int{2, 8} {
		mPar, _, _ := propRun(t, work, pairs, workers, -1, shape)
		gotPer, gotTot := snapshot(mPar)
		for n := 0; n < nodes; n++ {
			if gotPer[n] != wantPer[n] {
				t.Fatalf("workers=%d node %d shard %v != sequential %v", workers, n, gotPer[n], wantPer[n])
			}
		}
		if gotTot.Sent != wantTot.Sent || gotTot.Received != wantTot.Received ||
			gotTot.SentBytes != wantTot.SentBytes || gotTot.RecvBytes != wantTot.RecvBytes {
			t.Fatalf("workers=%d totals %+v != sequential %+v", workers, gotTot, wantTot)
		}
	}
}

// TestInOrderCommitNeverEarly pins the ledger-reconciliation bound
// end to end: an in-order packet's commit never runs earlier than the
// availability instant commitInOrder was given. The plain (unflagged)
// twin run commits at exactly that bound — the flag changes nothing
// upstream of commit — so comparing per-packet commit times across the
// twin runs observes the bound directly, and the in-order run must
// additionally commit each pair's packets at nondecreasing times. (In
// the static model same-pair traffic arrives in ticket order — the
// links and receive ports are FIFO resources — so deferral itself is
// exercised synthetically by TestLedgerReconcileBound and, through
// recovery reissue, by the kill-plan classes of FuzzPDESDifferential.)
func TestInOrderCommitNeverEarly(t *testing.T) {
	work, pairs := propWorkload(59, [3]int{propShapeX, propShapeY, propShapeZ}, 240)
	shape := [3]int{propShapeX, propShapeY, propShapeZ}

	for _, workers := range []int{1, 8} {
		_, _, plain := propRun(t, work, pairs, workers, 0, shape)
		_, ordSent, ordered := propRun(t, work, pairs, workers, 1, shape)

		if len(plain) != len(work) || len(ordered) != len(work) {
			t.Fatalf("workers=%d: delivered %d plain / %d ordered, want %d", workers, len(plain), len(ordered), len(work))
		}
		for _, w := range work {
			avail, ok := plain[w.tag]
			if !ok {
				t.Fatalf("workers=%d: packet %s missing from plain run", workers, w.tag)
			}
			got, ok := ordered[w.tag]
			if !ok {
				t.Fatalf("workers=%d: packet %s missing from in-order run", workers, w.tag)
			}
			if got < avail {
				t.Fatalf("workers=%d: packet %s committed at %v, before its availability bound %v", workers, w.tag, got, avail)
			}
		}

		// Per-pair commit times nondecreasing in ticket order. The send
		// records arrive in canonical order, which within one pair equals
		// ticket order (pinned by TestSeqRenumberBijection), so walking
		// them in sequence visits each pair's packets oldest-ticket first.
		lastTicket := make(map[[2]packet.Client]uint64)
		lastAt := make(map[[2]packet.Client]sim.Time)
		for _, r := range ordSent {
			key := [2]packet.Client{r.src, r.dst}
			if last, ok := lastTicket[key]; ok && r.ticket <= last {
				t.Fatalf("workers=%d: pair %v->%v ticket %d after %d in canonical order", workers, r.src, r.dst, r.ticket, last)
			}
			lastTicket[key] = r.ticket
			at := ordered[r.tag]
			if last, ok := lastAt[key]; ok && at < last {
				t.Fatalf("workers=%d: pair %v->%v ticket %d committed at %v, before the pair's previous commit %v",
					workers, r.src, r.dst, r.ticket, at, last)
			}
			lastAt[key] = at
		}
	}
}

// TestLedgerReconcileBound drives commitInOrder directly with
// out-of-order ticket arrivals — the situation recovery reissue creates
// — and pins the reconciliation contract: commits run in ticket order,
// never earlier than the packet's own availability bound, never earlier
// than the pair's previous commit, and exactly at the bound when nothing
// blocks. The schedule is replayed at several worker counts and must
// reconcile identically.
func TestLedgerReconcileBound(t *testing.T) {
	type commitRec struct {
		ticket uint64
		at     sim.Time
	}
	run := func(workers int) []commitRec {
		tor := topo.NewTorus(2, 2, 1)
		s := sim.New()
		s.SetWorkers(workers)
		s.SetGrain(1)
		m := New(s, tor, noc.DefaultModel())
		s.SetConfined(true)

		src := packet.Client{Node: 0, Kind: packet.Slice0}
		dst := packet.Client{Node: 1, Kind: packet.Slice1}
		mk := func(ticket uint64) *packet.Packet {
			return &packet.Packet{
				Kind: packet.Write, Src: src, Dst: dst,
				Multicast: packet.NoMulticast, InOrder: true, Ticket: ticket,
			}
		}
		var commits []commitRec
		ctx := m.Ctx(1)
		record := func(ticket uint64) func() {
			return func() {
				at := ctx.Now()
				ctx.Defer(func() { commits = append(commits, commitRec{ticket, at}) })
			}
		}
		// Ticket 1 arrives first (avail 110ns), ticket 2 next with an even
		// earlier bound (105ns), ticket 0 last (avail 150ns, already past
		// at arrival) — all must wait for ticket 0 and commit together.
		arrive := func(at sim.Time, ticket uint64, avail sim.Time) {
			ctx.At(at, func() { m.commitInOrder(ctx, mk(ticket), dst, avail, record(ticket)) })
		}
		arrive(100*sim.Time(sim.Ns), 1, 110*sim.Time(sim.Ns))
		arrive(120*sim.Time(sim.Ns), 2, 105*sim.Time(sim.Ns))
		arrive(200*sim.Time(sim.Ns), 0, 150*sim.Time(sim.Ns))
		// A second burst in arrival order: each commits exactly at its own
		// bound (the ledger adds no slack when nothing blocks).
		arrive(300*sim.Time(sim.Ns), 3, 310*sim.Time(sim.Ns))
		arrive(320*sim.Time(sim.Ns), 4, 340*sim.Time(sim.Ns))
		s.Run()
		return commits
	}

	want := []commitRec{
		// Tickets 0..2 unblock when 0 arrives at 200ns: every bound is in
		// the past by then, so all three commit at the arrival instant.
		{0, 200 * sim.Time(sim.Ns)},
		{1, 200 * sim.Time(sim.Ns)},
		{2, 200 * sim.Time(sim.Ns)},
		// The in-order burst commits exactly at its availability bounds.
		{3, 310 * sim.Time(sim.Ns)},
		{4, 340 * sim.Time(sim.Ns)},
	}
	for _, workers := range []int{1, 2, 4} {
		got := run(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d commits, want %d (%v)", workers, len(got), len(want), got)
		}
		var lastAt sim.Time
		for i, g := range got {
			if g != want[i] {
				t.Fatalf("workers=%d: commit %d = {ticket %d, %v}, want {ticket %d, %v}",
					workers, i, g.ticket, g.at, want[i].ticket, want[i].at)
			}
			if g.at < lastAt {
				t.Fatalf("workers=%d: commit times regressed: %v", workers, got)
			}
			lastAt = g.at
		}
	}
}
