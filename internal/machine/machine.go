// Package machine assembles the event-driven model of an Anton machine: a
// three-dimensional torus of nodes, each containing four processing slices,
// a high-throughput interaction subsystem (HTIS), and two accumulation
// memories, all of which are network clients with local memories that
// directly accept write packets issued by other clients.
//
// The model reproduces, at packet granularity, the communication behaviour
// the paper measures: counted remote writes with synchronization counters,
// accumulation packets, hardware multicast via per-node lookup tables,
// the per-slice message FIFO with backpressure, selective in-order
// delivery, cut-through routing with per-hop latencies calibrated from
// Figure 6, and bandwidth contention on links, injection ports, and
// delivery ports.
package machine

import (
	"fmt"

	"anton/internal/fault"
	"anton/internal/metrics"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// Machine is a simulated Anton machine.
type Machine struct {
	Sim   *sim.Sim
	Torus topo.Torus
	Model noc.Model

	nodes []*Node

	// ordIssue and ordDst implement the software-controlled header flag
	// that selectively guarantees in-order delivery between fixed
	// source-destination pairs: flagged packets commit strictly in send
	// order per pair, whatever their sizes or routes. The ledger is
	// sharded by spatial domain so stage-2 window execution keeps it
	// single-writer: tickets are drawn from the source node's domain
	// shard at send time (program order) and carried inside the packet,
	// and the per-pair commit ledgers live in the destination node's
	// domain shard.
	ordIssue []map[pairKey]uint64
	ordDst   []map[pairKey]*ordDst
	// sendSeq is the canonical global send sequence. It is canonical
	// state: assignments happen in deferred actions (sim.Ctx.Defer), so
	// they run serially at the merge point in canonical event order.
	sendSeq uint64

	// OnDeliver, if non-nil, is invoked at the simulated instant a packet
	// becomes available to software at dst (after counter increment).
	OnDeliver func(pkt *packet.Packet, dst packet.Client, at sim.Time)
	// OnSend, if non-nil, is invoked at the simulated instant a client's
	// injection of a packet begins.
	OnSend func(pkt *packet.Packet, at sim.Time)
	// OnLink, if non-nil, is invoked when a packet begins occupying node
	// n's outgoing link on port p for the given service time. Used by the
	// logic-analyzer tracing of Figure 13.
	OnLink func(n topo.NodeID, p topo.Port, start sim.Time, service sim.Dur)

	// faults is the fault injector attached to the simulator, or nil.
	// A nil injector (and a zero-rate plan) adds exactly zero to every
	// latency, so the fault-free model is reproduced bit for bit.
	faults *fault.Injector

	// metrics is the lifecycle recorder attached to the simulator, or
	// nil. Recording is purely passive (append-only), so an attached
	// recorder never changes a simulation result.
	metrics *metrics.Recorder

	// Hard-failure survival state (recovery.go). All of it stays
	// nil/zero — and every hard-path branch false — unless the attached
	// plan permanently kills links or nodes, so plans without kills
	// reproduce the static model bit for bit.
	hard     bool
	wdog     sim.Dur
	rt       *topo.RouteTable
	linkKill map[topo.LinkID]sim.Time
	nodeKill map[topo.NodeID]sim.Time
	deficit  map[recKey]*recState
	rec      RecoveryStats

	// ndom is the PDES spatial decomposition: contiguous node-ID slabs,
	// one event queue per slab, windowed on the minimum link-adapter
	// latency (see sim.Partition). Depends only on the torus, never on
	// the worker count.
	ndom int

	stats Stats
}

// maxDomains caps the spatial decomposition so the per-window merge stays
// shallow on the flagship 512-node machine while each domain still holds a
// node slab large enough to batch meaningfully.
const maxDomains = 64

type pairKey struct {
	src, dst packet.Client
}

// ordDst is the destination-side in-order ledger of one (src, dst) pair:
// a flagged packet carries the ticket drawn at send time, and its commit
// runs only after every earlier ticket on the pair has committed, never
// earlier than its own availability instant and never earlier than the
// previous commit on the pair.
type ordDst struct {
	committed uint64
	lastAt    sim.Time
	pending   map[uint64]ordPending
}

type ordPending struct {
	avail sim.Time
	fn    func()
}

// ticket draws the next in-order ticket for (pkt.Src, dst) from the source
// node's domain shard. Tickets are issued at send-call time, so per-pair
// program order is preserved; issuing from worker context is deterministic
// because within-domain execution order equals the canonical order.
func (m *Machine) ticket(pkt *packet.Packet, dst packet.Client) uint64 {
	shard := m.ordIssue[m.domain(pkt.Src.Node)]
	key := pairKey{pkt.Src, dst}
	t := shard[key]
	shard[key] = t + 1
	return t
}

// ticketOf returns the ticket pkt carries for destination dst.
func ticketOf(pkt *packet.Packet, dst packet.Client) uint64 {
	if pkt.Multicast == packet.NoMulticast {
		return pkt.Ticket
	}
	for i := range pkt.Tickets {
		if pkt.Tickets[i].Dst == dst {
			return pkt.Tickets[i].Ticket
		}
	}
	panic("machine: in-order packet without a ticket")
}

// commitInOrder schedules fn no earlier than avail and no earlier than
// every previously sent in-order packet's commit on the same pair. ctx is
// the destination domain's context — the caller is executing in it.
func (m *Machine) commitInOrder(ctx sim.Ctx, pkt *packet.Packet, dst packet.Client, avail sim.Time, fn func()) {
	shard := m.ordDst[m.domain(dst.Node)]
	key := pairKey{pkt.Src, dst}
	st, ok := shard[key]
	if !ok {
		st = &ordDst{pending: make(map[uint64]ordPending)}
		shard[key] = st
	}
	st.pending[ticketOf(pkt, dst)] = ordPending{avail: avail, fn: fn}
	for {
		p, ready := st.pending[st.committed]
		if !ready {
			return
		}
		delete(st.pending, st.committed)
		st.committed++
		at := p.avail
		if at < st.lastAt {
			at = st.lastAt
		}
		if now := ctx.Now(); at < now {
			at = now
		}
		st.lastAt = at
		ctx.At(at, p.fn)
	}
}

// Node is one Anton ASIC: seven network clients, six torus link ports, and
// a multicast lookup table.
type Node struct {
	ID    topo.NodeID
	Coord topo.Coord

	m       *Machine
	links   [6]*sim.Resource
	mc      *packet.McTable
	clients [packet.NumClients]*Client
}

// New constructs a machine with the given torus dimensions and timing
// model.
func New(s *sim.Sim, t topo.Torus, model noc.Model) *Machine {
	m := &Machine{
		Sim:     s,
		Torus:   t,
		Model:   model,
		faults:  fault.FromSim(s),
		metrics: metrics.FromSim(s),
	}
	m.ndom = t.Nodes()
	if m.ndom > maxDomains {
		m.ndom = maxDomains
	}
	s.Partition(m.ndom, model.Lookahead())
	m.ordIssue = make([]map[pairKey]uint64, m.ndom)
	m.ordDst = make([]map[pairKey]*ordDst, m.ndom)
	for d := 0; d < m.ndom; d++ {
		m.ordIssue[d] = make(map[pairKey]uint64)
		m.ordDst[d] = make(map[pairKey]*ordDst)
	}
	// Pre-size the per-node statistics and pin the fault injector's link
	// streams, so neither ever grows shared storage from worker context.
	m.stats.perNode = make([]nodeStats, t.Nodes())
	m.faults.PinLinks(t.Nodes())
	m.nodes = make([]*Node, t.Nodes())
	for id := range m.nodes {
		n := &Node{
			ID:    topo.NodeID(id),
			Coord: t.Coord(topo.NodeID(id)),
			m:     m,
			mc:    packet.NewMcTable(),
		}
		dom := m.domain(n.ID)
		for p := range n.links {
			n.links[p] = sim.NewResource(s).InDomain(dom)
		}
		for k := packet.ClientKind(0); k < packet.NumClients; k++ {
			n.clients[k] = newClient(m, packet.Client{Node: n.ID, Kind: k})
		}
		m.nodes[id] = n
	}
	if m.faults.HardFaults() {
		m.setupHardFaults()
	}
	return m
}

// Default512 constructs an 8x8x8 (512-node) machine with the paper's
// default timing model, the configuration most of the paper's measurements
// use.
func Default512(s *sim.Sim) *Machine {
	return New(s, topo.NewTorus(8, 8, 8), noc.DefaultModel())
}

// domain maps a node to its PDES spatial domain: contiguous ID slabs,
// which under the z-major torus numbering are spatial slabs, so a one-hop
// neighbour is in the same or an adjacent domain.
func (m *Machine) domain(n topo.NodeID) int {
	return int(n) * m.ndom / len(m.nodes)
}

// Ctx returns the scheduling context of node n's spatial domain. The
// model layers built on the machine (mdmap, collective, fft) use it to
// keep their event chains domain-confined under the stage-2 executor;
// see sim.Ctx for the confinement contract.
func (m *Machine) Ctx(n topo.NodeID) sim.Ctx { return m.Sim.Ctx(m.domain(n)) }

// Defer runs fn at the calling event's canonical commit slot from node
// n's domain (sim.Ctx.Defer): immediately under the sequential executor,
// at the window merge point — serially, in canonical order — under the
// stage-2 executor. Cross-node and machine-global effects of confined
// handlers go through it.
func (m *Machine) Defer(n topo.NodeID, fn func()) { m.Ctx(n).Defer(fn) }

// Node returns the node with the given ID.
func (m *Machine) Node(id topo.NodeID) *Node { return m.nodes[id] }

// NodeAt returns the node at coordinate c (wrapped).
func (m *Machine) NodeAt(c topo.Coord) *Node { return m.nodes[m.Torus.ID(c)] }

// Client returns the client state addressed by c.
func (m *Machine) Client(c packet.Client) *Client {
	return m.nodes[c.Node].clients[c.Kind]
}

// Stats returns a snapshot of the machine's traffic statistics. Counts
// are kept per node (single-writer under the stage-2 executor) and the
// machine-wide totals are derived by summation, so a snapshot taken at
// quiescence is identical at any worker count.
func (m *Machine) Stats() Stats {
	st := Stats{perNode: append([]nodeStats(nil), m.stats.perNode...)}
	for i := range st.perNode {
		ns := &st.perNode[i]
		st.Sent += ns.Sent
		st.Received += ns.Received
		st.SentBytes += ns.SentBytes
		st.RecvBytes += ns.RecvBytes
	}
	return st
}

// Faults returns the fault injector driving this machine, or nil.
func (m *Machine) Faults() *fault.Injector { return m.faults }

// Metrics returns the lifecycle recorder observing this machine, or nil.
func (m *Machine) Metrics() *metrics.Recorder { return m.metrics }

// nextStart predicts the service-start time Resource.Acquire will use
// for the next acquisition of r: the fault layer needs it to decide
// whether a traversal falls inside a scheduled link outage. now is the
// calling handler's (domain) clock.
func nextStart(now sim.Time, r *sim.Resource) sim.Time {
	start := r.FreeAt()
	if start < now {
		start = now
	}
	return start
}

// ResetStats zeroes the traffic statistics (link busy-time accumulators in
// the resources are not reset).
func (m *Machine) ResetStats() { m.stats.reset() }

// SetMulticast installs multicast pattern id in node n's lookup table.
// Patterns must be installed on every node a multicast packet can visit;
// Lookup misses panic, as they indicate a software configuration bug.
func (m *Machine) SetMulticast(n topo.NodeID, id packet.MulticastID, e packet.McEntry) {
	m.nodes[n].mc.Set(id, e)
}

// LinkBusy returns the accumulated busy time of node n's outgoing link on
// port p.
func (m *Machine) LinkBusy(n topo.NodeID, p topo.Port) sim.Dur {
	return m.nodes[n].links[topo.PortIndex(p)].BusyTime()
}

// send is the injection path shared by the Client send helpers. The
// caller must be executing in the source node's domain (or in
// coordinator/serial context), per the confinement contract.
func (m *Machine) send(src *Client, pkt *packet.Packet) {
	if err := pkt.Validate(); err != nil {
		panic(fmt.Sprintf("machine: %v", err))
	}
	pkt.Src = src.Addr
	if pkt.InOrder {
		// Issue per-destination tickets in program order and carry them in
		// the packet; multicast destinations are resolved by walking the
		// installed tables (deterministic BFS order).
		if pkt.Multicast != packet.NoMulticast {
			dsts := m.resolveMulticast(src.Addr.Node, pkt.Multicast)
			pkt.Tickets = make([]packet.DstTicket, len(dsts))
			for i, dst := range dsts {
				pkt.Tickets[i] = packet.DstTicket{Dst: dst, Ticket: m.ticket(pkt, dst)}
			}
		} else {
			pkt.Ticket = m.ticket(pkt, pkt.Dst)
		}
	}
	model := &m.Model
	gap := model.SendGap(src.Addr.Kind)
	lat := model.SendLatency(src.Addr.Kind)
	// Clock-skewed (slow) nodes pay proportionally more to assemble and
	// inject a packet.
	lat += m.faults.NodeSlowExtra(int(src.Addr.Node), lat)
	ctx := m.Ctx(src.Addr.Node)
	src.send.Acquire(gap, func(start sim.Time) {
		if m.hard && m.nodeDeadNow(src.Addr.Node) {
			// A dead node's software halts: nothing reaches the wire, and
			// every delivery this injection would have made becomes a
			// permanent counter deficit at its destinations.
			m.loseSend(pkt, src.Addr)
			return
		}
		// The canonical send sequence is assigned at the event's commit
		// slot, as its first deferred action, so every later deferred
		// reader of pkt.Seq (metrics, hooks, fan-out copies) observes the
		// canonical number whatever the worker count.
		ctx.Defer(func() {
			m.sendSeq++
			pkt.Seq = m.sendSeq
			if m.OnSend != nil {
				m.OnSend(pkt, start)
			}
		})
		m.stats.send(src.Addr.Node, pkt.WireBytes())
		inject := start.Add(lat)
		if m.metrics != nil {
			ctx.Defer(func() { m.metrics.PacketSend(pkt.Seq, src.Addr, start, inject) })
		}
		node := m.nodes[src.Addr.Node]
		if pkt.Multicast != packet.NoMulticast {
			m.multicastAt(ctx, pkt, node, inject, true)
			return
		}
		if pkt.Dst.Node == src.Addr.Node {
			// Node-local delivery travels the on-chip ring only.
			m.deliverLocal(ctx, pkt, node.clients[pkt.Dst.Kind], inject.Add(model.LocalRing))
			return
		}
		if m.hard {
			m.forwardHard(pkt, node, inject, true)
			return
		}
		route := m.Torus.Route(node.Coord, m.Torus.Coord(pkt.Dst.Node))
		m.forward(ctx, pkt, node, route, 0, inject.Add(model.SrcRing))
	})
}

// forward transmits pkt across route[step:]; head is the time the packet
// header reaches the egress side of node's on-chip network for this hop.
// ctx is the calling handler's executing domain context — the hop itself
// may belong to a different (neighbouring) domain.
func (m *Machine) forward(ctx sim.Ctx, pkt *packet.Packet, node *Node, route []topo.Step, step int, head sim.Time) {
	model := &m.Model
	hop := route[step]
	link := node.links[topo.PortIndex(hop.Port)]
	hctx := m.Ctx(node.ID)
	// The hop's events belong to the egress node's domain; scheduling it
	// from the previous node's arrival event is the cross-domain hand-off
	// the link-adapter lookahead makes window-safe.
	ctx.AtDomain(m.domain(node.ID), head, func() {
		service := model.LinkService(pkt.WireBytes())
		// Fault layer: CRC-detected flit corruption repaired by
		// link-level retransmission, transient stalls, and scheduled
		// outages all extend both the link occupancy and the arrival.
		extra := m.faults.LinkExtra(int(node.ID), hop.Port, service, nextStart(hctx.Now(), link))
		if m.metrics != nil {
			now := hctx.Now()
			hctx.Defer(func() { m.metrics.HopDepart(pkt.Seq, node.ID, hop.Port, now) })
		}
		link.Acquire(service+extra, func(start sim.Time) {
			if m.OnLink != nil {
				hctx.Defer(func() { m.OnLink(node.ID, hop.Port, start, service+extra) })
			}
			if m.metrics != nil {
				hctx.Defer(func() {
					m.metrics.LinkTransfer(pkt.Seq, node.ID, hop.Port, start, service+extra,
						pkt.WireBytes(), start.Sub(head))
				})
			}
			arrival := start.Add(extra).Add(model.AdapterPair[hop.Port.Dim])
			next := m.nodes[m.Torus.ID(hop.To)]
			if m.metrics != nil {
				hctx.Defer(func() { m.metrics.HopArrive(pkt.Seq, next.ID, arrival) })
			}
			if step == len(route)-1 {
				avail := arrival.Add(model.ExtraSerialization(pkt.WireBytes()) + model.DstRing)
				m.deliverLocal(hctx, pkt, next.clients[pkt.Dst.Kind], avail)
				return
			}
			nextDim := route[step+1].Port.Dim
			m.forward(hctx, pkt, next, route, step+1, arrival.Add(model.Through[nextDim]))
		})
	})
}

// multicastAt performs the per-node multicast table lookup and fans the
// packet out to local clients and outgoing links. atSource distinguishes
// the injecting node (ring traversal from the sending client) from transit
// nodes (ring traversal from the arriving link adapter).
func (m *Machine) multicastAt(ctx sim.Ctx, pkt *packet.Packet, node *Node, base sim.Time, atSource bool) {
	model := &m.Model
	if m.hard && m.nodeDeadNow(node.ID) {
		// The fan-out node died under the packet: the whole remaining
		// subtree is lost in flight.
		m.loseSubtree(pkt, node.ID)
		return
	}
	entry, ok := node.mc.Lookup(pkt.Multicast)
	if !ok {
		panic(fmt.Sprintf("machine: multicast pattern %d not installed on node %d", pkt.Multicast, node.ID))
	}
	for _, kind := range entry.Local {
		var avail sim.Time
		if atSource {
			avail = base.Add(model.LocalRing)
		} else {
			avail = base.Add(model.ExtraSerialization(pkt.WireBytes()) + model.DstRing)
		}
		// Each delivery is a distinct logical packet so that counters,
		// stats and hooks see per-destination events. The copy's canonical
		// sequence number is stamped at the commit slot: the injection's
		// own deferred assignment replays first (parents precede children),
		// so pkt.Seq is resolved by then.
		cp := new(packet.Packet)
		*cp = *pkt
		cp.Dst = packet.Client{Node: node.ID, Kind: kind}
		ctx.Defer(func() { cp.Seq = pkt.Seq })
		m.deliverLocal(ctx, cp, node.clients[kind], avail)
	}
	for _, port := range entry.Out {
		var head sim.Time
		if atSource {
			head = base.Add(model.SrcRing)
		} else {
			head = base.Add(model.Through[port.Dim])
		}
		port := port
		link := node.links[topo.PortIndex(port)]
		nctx := m.Ctx(node.ID)
		ctx.AtDomain(m.domain(node.ID), head, func() {
			nextID := m.Torus.ID(m.Torus.Neighbor(node.Coord, port))
			if m.hard && (m.linkDeadNow(topo.LinkID{Node: node.ID, Port: port}) || m.nodeDeadNow(nextID)) {
				// The branch is already known dead: fall back to unicast
				// copies over the recomputed routes for every destination
				// in the subtree, instead of losing them and paying a
				// watchdog round trip on every send.
				m.mcReroute(pkt, node, nextID, m.Sim.Now())
				return
			}
			service := model.LinkService(pkt.WireBytes())
			extra := m.faults.LinkExtra(int(node.ID), port, service, nextStart(nctx.Now(), link))
			if m.metrics != nil {
				now := nctx.Now()
				nctx.Defer(func() { m.metrics.HopDepart(pkt.Seq, node.ID, port, now) })
			}
			link.Acquire(service+extra, func(start sim.Time) {
				arrival := start.Add(extra).Add(model.AdapterPair[port.Dim])
				next := m.nodes[m.Torus.ID(m.Torus.Neighbor(node.Coord, port))]
				if m.hard {
					if kt, ok := m.linkKillTime(topo.LinkID{Node: node.ID, Port: port}); ok && kt < start.Add(service+extra) {
						m.loseSubtree(pkt, next.ID)
						return
					}
					if kt, ok := m.nodeKillTime(next.ID); ok && kt <= arrival {
						m.loseSubtree(pkt, next.ID)
						return
					}
				}
				if m.OnLink != nil {
					nctx.Defer(func() { m.OnLink(node.ID, port, start, service+extra) })
				}
				if m.metrics != nil {
					nctx.Defer(func() {
						m.metrics.LinkTransfer(pkt.Seq, node.ID, port, start, service+extra,
							pkt.WireBytes(), start.Sub(head))
						m.metrics.HopArrive(pkt.Seq, next.ID, arrival)
					})
				}
				m.multicastAt(nctx, pkt, next, arrival, false)
			})
		})
	}
}

// deliverLocal schedules the final delivery of pkt into client dst: the
// receive-port occupancy, memory/FIFO update, counter increment, and the
// availability instant software observes. ctx is the calling handler's
// executing domain context; the delivery events run in dst's domain.
func (m *Machine) deliverLocal(ctx sim.Ctx, pkt *packet.Packet, dst *Client, at sim.Time) {
	model := &m.Model
	service := model.ClientService(dst.Addr.Kind, pkt.WireBytes())
	dctx := m.Ctx(dst.Addr.Node)
	ctx.AtDomain(m.domain(dst.Addr.Node), at, func() {
		if m.hard && m.nodeDeadNow(dst.Addr.Node) {
			m.losePacket(pkt, dst.Addr, lossDstDead)
			return
		}
		dst.recv.Acquire(service, func(start sim.Time) {
			if m.metrics != nil {
				dctx.Defer(func() { m.metrics.DeliverStart(pkt.Seq, dst.Addr, start) })
			}
			lat := model.DeliverLatency(dst.Addr.Kind)
			lat += m.faults.NodeSlowExtra(int(dst.Addr.Node), lat)
			avail := start.Add(lat)
			if pkt.InOrder {
				m.commitInOrder(dctx, pkt, dst.Addr, avail, func() { m.commit(pkt, dst) })
				return
			}
			dctx.At(avail, func() { m.commit(pkt, dst) })
		})
	})
}

// resolveMulticast walks the installed multicast tables from node n and
// returns every destination client pattern id reaches, in deterministic
// (BFS) order.
func (m *Machine) resolveMulticast(n topo.NodeID, id packet.MulticastID) []packet.Client {
	var out []packet.Client
	visited := map[topo.NodeID]bool{}
	queue := []topo.NodeID{n}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if visited[cur] {
			continue
		}
		visited[cur] = true
		entry, ok := m.nodes[cur].mc.Lookup(id)
		if !ok {
			panic(fmt.Sprintf("machine: multicast pattern %d not installed on node %d", id, cur))
		}
		for _, kind := range entry.Local {
			out = append(out, packet.Client{Node: cur, Kind: kind})
		}
		for _, port := range entry.Out {
			queue = append(queue, m.Torus.ID(m.Torus.Neighbor(m.nodes[cur].Coord, port)))
		}
	}
	return out
}

// commit applies pkt's effect to dst at the current simulated time.
func (m *Machine) commit(pkt *packet.Packet, dst *Client) {
	switch pkt.Kind {
	case packet.Write:
		dst.storeWrite(pkt)
		dst.counter(pkt.Counter).Inc()
	case packet.Accumulate:
		if !dst.Addr.Kind.IsAccum() {
			panic(fmt.Sprintf("machine: accumulation packet delivered to %v", dst.Addr))
		}
		dst.storeAccumulate(pkt)
		dst.counter(pkt.Counter).Inc()
	case packet.Message:
		if !dst.Addr.Kind.IsSlice() {
			panic(fmt.Sprintf("machine: FIFO message delivered to %v", dst.Addr))
		}
		dst.fifo.deliver(pkt)
	}
	m.stats.recv(dst.Addr.Node, pkt.WireBytes())
	dctx := m.Ctx(dst.Addr.Node)
	now := dctx.Now()
	if m.metrics != nil {
		dctx.Defer(func() { m.metrics.Deliver(pkt.Seq, dst.Addr, now) })
	}
	if m.OnDeliver != nil {
		dctx.Defer(func() { m.OnDeliver(pkt, dst.Addr, now) })
	}
}
