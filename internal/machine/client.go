package machine

import (
	"fmt"

	"anton/internal/packet"
	"anton/internal/sim"
)

// Client is the state of one network client: a local memory that directly
// accepts write packets, a set of synchronization counters, an injection
// port, a delivery port, and (for processing slices) the hardware-managed
// message FIFO.
type Client struct {
	Addr packet.Client

	m        *Machine
	mem      []float64
	counters map[packet.CounterID]*sim.Counter
	send     *sim.Resource
	recv     *sim.Resource
	fifo     *FIFO
}

func newClient(m *Machine, addr packet.Client) *Client {
	dom := m.domain(addr.Node)
	c := &Client{
		Addr:     addr,
		m:        m,
		counters: make(map[packet.CounterID]*sim.Counter),
		send:     sim.NewResource(m.Sim).InDomain(dom),
		recv:     sim.NewResource(m.Sim).InDomain(dom),
	}
	if addr.Kind.IsSlice() {
		c.fifo = newFIFO(m, c)
	}
	return c
}

// Send transmits pkt from this client. The call returns immediately; all
// costs are paid in simulated time. Accumulation memories cannot send
// (matching the hardware) and panic if asked to.
func (c *Client) Send(pkt *packet.Packet) {
	if c.Addr.Kind.IsAccum() {
		panic("machine: accumulation memories cannot send packets")
	}
	c.m.send(c, pkt)
}

// Write sends a counted remote write of the given wire payload size to dst,
// labelled with counter ctr, storing payload (optional) at word address
// addr in dst's local memory.
func (c *Client) Write(dst packet.Client, ctr packet.CounterID, addr, bytes int, payload ...float64) {
	c.Send(&packet.Packet{
		Kind: packet.Write, Dst: dst, Multicast: packet.NoMulticast,
		Counter: ctr, Addr: addr, Bytes: bytes, Payload: payload,
	})
}

// Accumulate sends an accumulation packet to dst (which must be an
// accumulation memory): its payload is added, element-wise, to the values
// stored at addr.
func (c *Client) Accumulate(dst packet.Client, ctr packet.CounterID, addr, bytes int, payload ...float64) {
	c.Send(&packet.Packet{
		Kind: packet.Accumulate, Dst: dst, Multicast: packet.NoMulticast,
		Counter: ctr, Addr: addr, Bytes: bytes, Payload: payload,
	})
}

// Message sends an arbitrary network message to dst's hardware-managed
// receive FIFO. Used where communication cannot be formulated as counted
// remote writes (e.g. atom migration).
func (c *Client) Message(dst packet.Client, bytes int, payload ...float64) {
	c.Send(&packet.Packet{
		Kind: packet.Message, Dst: dst, Multicast: packet.NoMulticast,
		Counter: packet.NoCounter, Bytes: bytes, Payload: payload,
	})
}

// MulticastWrite sends a counted remote write through multicast pattern id.
// Every destination client named by the pattern tables receives the write
// at the same address and counter label.
func (c *Client) MulticastWrite(id packet.MulticastID, ctr packet.CounterID, addr, bytes int, payload ...float64) {
	c.Send(&packet.Packet{
		Kind: packet.Write, Multicast: id,
		Counter: ctr, Addr: addr, Bytes: bytes, Payload: payload,
	})
}

// Counter returns the client's synchronization counter ctr, allocating it
// on first use.
func (c *Client) Counter(ctr packet.CounterID) *sim.Counter { return c.counter(ctr) }

func (c *Client) counter(ctr packet.CounterID) *sim.Counter {
	if ctr < 0 {
		panic("machine: negative counter id")
	}
	cnt, ok := c.counters[ctr]
	if !ok {
		// Counters are domain-confined state: their wake events are pinned
		// to the owning node's domain so the stage-2 executor can run Inc
		// and Wait from the domain's worker goroutine.
		cnt = sim.NewCounter(c.m.Sim).InDomain(c.m.domain(c.Addr.Node))
		c.counters[ctr] = cnt
	}
	return cnt
}

// Wait schedules fn once counter ctr on this client reaches target. The
// successful-poll overhead is already charged at delivery time for local
// counters, so no additional cost applies: processing slices and HTIS units
// directly poll their local synchronization counters. Under a hard-fault
// plan the wait is guarded by the end-to-end watchdog (recovery.go).
func (c *Client) Wait(ctr packet.CounterID, target uint64, fn func()) {
	c.m.waitGuarded(c, ctr, target, 0, fn)
}

// WaitRemote schedules fn once counter ctr reaches target, charging the
// cross-ring polling penalty. This models a processing slice polling an
// accumulation memory's counters across the on-chip network, which the
// paper notes incurs much larger polling latencies.
func (c *Client) WaitRemote(ctr packet.CounterID, target uint64, fn func()) {
	c.m.waitGuarded(c, ctr, target, c.m.Model.AccumPoll, fn)
}

// armed brackets a counter wait with count-arm/count-fire lifecycle
// events when a metrics recorder is attached. The wrapping fires fn in
// exactly the same event slot, so recording never perturbs the schedule.
func (c *Client) armed(ctr packet.CounterID, target uint64, fn func()) func() {
	rec := c.m.metrics
	if rec == nil {
		return fn
	}
	ctx := c.m.Ctx(c.Addr.Node)
	at := ctx.Now()
	ctx.Defer(func() { rec.CountArm(c.Addr, ctr, target, at) })
	return func() {
		fire := ctx.Now()
		ctx.Defer(func() { rec.CountFire(c.Addr, ctr, target, fire) })
		fn()
	}
}

// Mem returns n words of the client's local memory starting at addr. The
// memory grows on demand; unwritten words read as zero.
func (c *Client) Mem(addr, n int) []float64 {
	c.ensure(addr + n)
	return c.mem[addr : addr+n]
}

// FIFO returns the client's message FIFO (slices only).
func (c *Client) FIFO() *FIFO {
	if c.fifo == nil {
		panic(fmt.Sprintf("machine: %v has no message FIFO", c.Addr))
	}
	return c.fifo
}

func (c *Client) ensure(n int) {
	if n > len(c.mem) {
		grown := make([]float64, n*2)
		copy(grown, c.mem)
		c.mem = grown
	}
}

func (c *Client) storeWrite(pkt *packet.Packet) {
	if len(pkt.Payload) == 0 {
		return
	}
	c.ensure(pkt.Addr + len(pkt.Payload))
	copy(c.mem[pkt.Addr:], pkt.Payload)
}

func (c *Client) storeAccumulate(pkt *packet.Packet) {
	if len(pkt.Payload) == 0 {
		return
	}
	c.ensure(pkt.Addr + len(pkt.Payload))
	for i, v := range pkt.Payload {
		c.mem[pkt.Addr+i] += v
	}
}

// FIFO is the hardware-managed circular receive FIFO within a processing
// slice's local memory. The Tensilica core polls the tail pointer to
// determine when a new message has arrived; if the FIFO fills, backpressure
// is exerted into the network (modelled as delayed delivery), and software
// is responsible for polling and processing messages to avoid deadlock.
type FIFO struct {
	m       *Machine
	owner   *Client
	queue   []*packet.Packet
	blocked []*packet.Packet
	waiter  func(*packet.Packet)
	// delivered counts total messages accepted into the FIFO.
	delivered uint64
}

func newFIFO(m *Machine, owner *Client) *FIFO {
	return &FIFO{m: m, owner: owner}
}

// Len returns the number of messages queued and not yet popped.
func (f *FIFO) Len() int { return len(f.queue) }

// Delivered returns the total number of messages accepted so far.
func (f *FIFO) Delivered() uint64 { return f.delivered }

// Blocked returns the number of messages currently stalled by
// backpressure.
func (f *FIFO) Blocked() int { return len(f.blocked) }

// Pop schedules fn with the next message, charging the software FIFO-poll
// overhead. If the FIFO is empty, fn fires when the next message arrives.
// Only one outstanding Pop is permitted: the FIFO has a single tail
// pointer and a single polling core.
func (f *FIFO) Pop(fn func(*packet.Packet)) {
	if f.waiter != nil {
		panic("machine: concurrent FIFO Pop")
	}
	if len(f.queue) > 0 {
		pkt := f.queue[0]
		f.queue = f.queue[1:]
		f.admitBlocked()
		f.ctx().After(f.m.Model.FIFOPoll, func() { fn(pkt) })
		return
	}
	f.waiter = fn
}

// ctx returns the owning slice's domain context: FIFO state is
// domain-confined, and its poll wake-ups stay in the owner's domain.
func (f *FIFO) ctx() sim.Ctx { return f.m.Ctx(f.owner.Addr.Node) }

func (f *FIFO) deliver(pkt *packet.Packet) {
	f.delivered++
	if f.waiter != nil {
		fn := f.waiter
		f.waiter = nil
		f.ctx().After(f.m.Model.FIFOPoll, func() { fn(pkt) })
		return
	}
	if len(f.queue) >= f.m.Model.FIFOCapacity {
		// Backpressure: the message waits outside the FIFO until software
		// drains an entry.
		f.delivered--
		f.blocked = append(f.blocked, pkt)
		return
	}
	f.queue = append(f.queue, pkt)
}

func (f *FIFO) admitBlocked() {
	for len(f.blocked) > 0 && len(f.queue) < f.m.Model.FIFOCapacity {
		pkt := f.blocked[0]
		f.blocked = f.blocked[1:]
		f.delivered++
		f.queue = append(f.queue, pkt)
	}
}
