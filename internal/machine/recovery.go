package machine

// Hard-failure survival: fault-aware rerouting, end-to-end watchdog
// recovery of synchronization counters, and degraded-mode completion.
//
// When the attached fault plan permanently kills links or nodes
// (fault.Plan.HardFaults), the machine switches its transport to
// hop-by-hop routing over a topo.RouteTable that is recomputed at every
// kill instant (a "fault epoch"), so surviving traffic detours around
// dead links with minimal routes in the surviving graph. Packets caught
// by a kill — on a link that dies mid-transfer, addressed to a dead
// node, or injected by one — are recorded as lost instead of silently
// vanishing, and every synchronization-counter wait is guarded by an
// end-to-end watchdog: if the counter has not reached its target within
// the plan's watchdog deadline, the recovery path re-issues the
// known-lost counted writes over the detour routes, or — when the
// missing increments come from permanently dead sources — completes the
// wait in degraded mode by synthesizing them, so no injected hard
// failure can deadlock the discrete-event simulation.
//
// Everything here is gated on m.hard: a plan without kills takes none of
// these branches, schedules no extra events, and therefore reproduces
// the static dimension-order model bit for bit.

import (
	"fmt"
	"sort"

	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// lossReason classifies why a packet was destroyed by a hard fault.
type lossReason uint8

const (
	// lossLink: a killed link (or a node dying under a transit packet)
	// destroyed the packet in flight. Recoverable: the watchdog re-issues
	// the write from its still-living source over the detour routes.
	lossLink lossReason = iota
	// lossSrcDead: the source node died before injection; the write can
	// never be re-issued and its increment is permanently missing.
	lossSrcDead
	// lossDstDead: the destination node is dead; nothing can be
	// delivered there again.
	lossDstDead
	// lossUnreachable: no surviving route reaches the (living)
	// destination. Kills only accumulate, so this is permanent too.
	lossUnreachable
)

// recKey identifies one synchronization-counter deficit account: the
// destination client and counter a lost counted write would have
// incremented — exactly the pair a guarded wait observes.
type recKey struct {
	dst packet.Client
	ctr packet.CounterID
}

// recState is the cumulative loss ledger of one (client, counter) pair.
type recState struct {
	// lost holds recoverable lost writes awaiting re-issue.
	lost []*packet.Packet
	// dead counts increments that can never arrive (dead source or
	// destination); compensated counts how many of those a degraded
	// completion has already synthesized into the counter. Both are
	// cumulative, which makes the accounting correct for the cumulative
	// per-generation targets the collective and MD layers use.
	dead        uint64
	compensated uint64
}

// waitState tracks one watchdog-guarded counter wait.
type waitState struct {
	c      *Client
	ctr    packet.CounterID
	target uint64
	done   bool
	checks int
}

// watchdogMaxChecks bounds consecutive watchdog deadlines on one wait;
// exceeding it means recovery cannot make progress, which is a modelling
// bug, not a survivable failure — so it panics with a diagnosis instead
// of spinning forever.
const watchdogMaxChecks = 1024

// RecoveryStats summarizes everything the hard-failure machinery did.
type RecoveryStats struct {
	Lost          uint64 // packets destroyed by hard faults
	LostMsgs      uint64 // of which uncounted FIFO messages (not recoverable)
	Reissues      uint64 // lost counted writes re-sent over detour routes
	Rerouted      uint64 // multicast branch copies delivered unicast around a dead branch
	WatchdogFires uint64 // watchdog deadlines that found an incomplete wait
	Degraded      uint64 // waits completed in degraded mode
	DegradedInc   uint64 // counter increments synthesized by degraded completions
	Epochs        uint64 // routing-table recomputations after time zero
}

// String renders the stats deterministically on one line.
func (r RecoveryStats) String() string {
	return fmt.Sprintf("lost=%d lostmsgs=%d reissues=%d rerouted=%d wdogfires=%d degraded=%d degradedinc=%d epochs=%d",
		r.Lost, r.LostMsgs, r.Reissues, r.Rerouted, r.WatchdogFires, r.Degraded, r.DegradedInc, r.Epochs)
}

// Recovery returns a snapshot of the hard-failure recovery statistics.
func (m *Machine) Recovery() RecoveryStats { return m.rec }

// setupHardFaults installs the hard-failure state: the kill schedules,
// the initial routing table, and one epoch event per distinct future
// kill instant. Called from New, so epoch events are scheduled before
// any workload event and win FIFO tie-breaks at equal timestamps. Kills
// naming nodes beyond this machine are ignored — one plan may drive
// ancillary simulators of many sizes; CLIs reject typos via
// Plan.ValidateTopo against their primary torus.
func (m *Machine) setupHardFaults() {
	m.hard = true
	// Hard-failure recovery mutates machine-global state (the deficit
	// ledger, recovery stats, kill tables) from arbitrary handlers, so it
	// permanently vetoes the stage-2 confined executor: windows fall back
	// to stage 1 (parallel queue work, serial handler commit), which needs
	// no confinement audit and reproduces the same canonical order.
	m.Sim.SetConfined(false)
	m.wdog = m.faults.WatchdogDeadline()
	m.linkKill = make(map[topo.LinkID]sim.Time)
	m.nodeKill = make(map[topo.NodeID]sim.Time)
	m.deficit = make(map[recKey]*recState)
	nodes := m.Torus.Nodes()
	epochSet := make(map[sim.Time]bool)
	for _, k := range m.faults.LinkKills() {
		if k.Link.Node >= nodes {
			continue
		}
		l := topo.LinkID{Node: topo.NodeID(k.Link.Node), Port: k.Link.Port}
		if t, ok := m.linkKill[l]; !ok || k.At < t {
			m.linkKill[l] = k.At
		}
		epochSet[k.At] = true
	}
	for _, k := range m.faults.NodeKills() {
		if k.Node >= nodes {
			continue
		}
		n := topo.NodeID(k.Node)
		if t, ok := m.nodeKill[n]; !ok || k.At < t {
			m.nodeKill[n] = k.At
		}
		epochSet[k.At] = true
	}
	var epochs []sim.Time
	for t := range epochSet {
		if t > 0 {
			epochs = append(epochs, t)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	m.applyEpoch(0)
	for _, t := range epochs {
		t := t
		m.Sim.At(t, func() {
			m.rec.Epochs++
			m.applyEpoch(t)
		})
	}
}

// applyEpoch recomputes the routing table over the links and nodes
// surviving at time now.
func (m *Machine) applyEpoch(now sim.Time) {
	var deadL []topo.LinkID
	for l, t := range m.linkKill {
		if t <= now {
			deadL = append(deadL, l)
		}
	}
	var deadN []topo.NodeID
	for n, t := range m.nodeKill {
		if t <= now {
			deadN = append(deadN, n)
		}
	}
	m.rt = topo.NewRouteTable(m.Torus, deadL, deadN)
}

func (m *Machine) nodeDeadNow(n topo.NodeID) bool {
	if !m.hard {
		return false
	}
	t, ok := m.nodeKill[n]
	return ok && t <= m.Sim.Now()
}

func (m *Machine) linkDeadNow(l topo.LinkID) bool {
	t, ok := m.linkKill[l]
	return ok && t <= m.Sim.Now()
}

func (m *Machine) linkKillTime(l topo.LinkID) (sim.Time, bool) {
	t, ok := m.linkKill[l]
	return t, ok
}

func (m *Machine) nodeKillTime(n topo.NodeID) (sim.Time, bool) {
	t, ok := m.nodeKill[n]
	return t, ok
}

func (m *Machine) recStateFor(key recKey) *recState {
	st, ok := m.deficit[key]
	if !ok {
		st = &recState{}
		m.deficit[key] = st
	}
	return st
}

// losePacket records the destruction of pkt on its way to dst: it
// consumes the in-order ticket (so later flagged packets on the pair do
// not stall forever behind the lost one), and books the missing counter
// increment into the deficit ledger — as a recoverable write when the
// source can re-issue it, as a permanent deficit otherwise.
func (m *Machine) losePacket(pkt *packet.Packet, dst packet.Client, reason lossReason) {
	now := m.Sim.Now()
	fmt.Printf("LOSE t=%d seq=%d src=%v dst=%v ctr=%d kind=%d reason=%d\n", now, pkt.Seq, pkt.Src, dst, pkt.Counter, pkt.Kind, reason)
	m.rec.Lost++
	m.metrics.PacketLost(pkt.Seq, dst, int(reason), now)
	if pkt.InOrder {
		m.commitInOrder(m.Ctx(dst.Node), pkt, dst, now, func() {})
	}
	if pkt.Kind == packet.Message {
		// FIFO messages carry no counter: nothing can observe the loss
		// end-to-end, so it is only counted. Workloads drain FIFOs by
		// observed length, which keeps them deadlock-free regardless.
		m.rec.LostMsgs++
		return
	}
	if pkt.Counter == packet.NoCounter {
		return
	}
	st := m.recStateFor(recKey{dst, pkt.Counter})
	if reason == lossLink {
		cp := *pkt
		cp.Dst = dst
		cp.Multicast = packet.NoMulticast
		// A re-issued write cannot keep the in-order guarantee: its
		// ticket was already consumed and younger writes may have
		// committed. Recovery trades ordering for progress.
		cp.InOrder = false
		st.lost = append(st.lost, &cp)
	} else {
		st.dead++
	}
}

// loseSend records the loss of an entire injection from a dead source:
// each destination the packet would have reached books a permanent
// deficit.
func (m *Machine) loseSend(pkt *packet.Packet, src packet.Client) {
	if pkt.Multicast != packet.NoMulticast {
		for _, dst := range m.resolveMulticast(src.Node, pkt.Multicast) {
			cp := *pkt
			cp.Dst = dst
			m.losePacket(&cp, dst, lossSrcDead)
		}
		return
	}
	m.losePacket(pkt, pkt.Dst, lossSrcDead)
}

// loseSubtree records the loss of every delivery a multicast packet
// would have made from node `from` downward, after the branch feeding
// the subtree was destroyed mid-transfer.
func (m *Machine) loseSubtree(pkt *packet.Packet, from topo.NodeID) {
	for _, dst := range m.resolveMulticast(from, pkt.Multicast) {
		cp := *pkt
		cp.Dst = dst
		reason := lossLink
		if m.nodeDeadNow(dst.Node) {
			reason = lossDstDead
		}
		m.losePacket(&cp, dst, reason)
	}
}

// mcReroute is the unicast fallback for a multicast tree branch that is
// already dead at fan-out time: every destination in the unreachable
// subtree gets its own copy routed over the recomputed tables. A static
// multicast pattern with a killed branch therefore keeps delivering on
// every send instead of tripping the watchdog each timestep.
func (m *Machine) mcReroute(pkt *packet.Packet, node *Node, subtree topo.NodeID, at sim.Time) {
	for _, dst := range m.resolveMulticast(subtree, pkt.Multicast) {
		cp := new(packet.Packet)
		*cp = *pkt
		cp.Dst = dst
		cp.Multicast = packet.NoMulticast
		if cp.InOrder {
			// The unicast copy loses the multicast ticket table with the
			// pattern id, so the per-destination ticket must move into the
			// unicast slot or the pair's in-order ledger stalls forever on
			// the ticket this delivery was issued.
			cp.Ticket = ticketOf(pkt, dst)
			cp.Tickets = nil
		}
		if m.nodeDeadNow(dst.Node) {
			m.losePacket(cp, dst, lossDstDead)
			continue
		}
		m.rec.Rerouted++
		if dst.Node == node.ID {
			m.deliverLocal(m.Ctx(node.ID), cp, m.nodes[node.ID].clients[dst.Kind], at.Add(m.Model.LocalRing))
			continue
		}
		m.forwardHard(cp, node, at, false)
	}
}

// forwardHard transports pkt hop by hop over the current fault-epoch
// routing table. ringAt is the instant the header is on node's on-chip
// network choosing an egress port; atSource selects the injection-side
// ring latency for the first hop (matching the static path's timing).
func (m *Machine) forwardHard(pkt *packet.Packet, node *Node, ringAt sim.Time, atSource bool) {
	m.Sim.AtDomain(m.domain(node.ID), ringAt, func() {
		model := &m.Model
		if m.nodeDeadNow(node.ID) {
			// The node died under a transiting packet.
			m.losePacket(pkt, pkt.Dst, lossLink)
			return
		}
		if m.nodeDeadNow(pkt.Dst.Node) {
			m.losePacket(pkt, pkt.Dst, lossDstDead)
			return
		}
		port, ok := m.rt.NextHop(node.ID, pkt.Dst.Node)
		if !ok {
			m.losePacket(pkt, pkt.Dst, lossUnreachable)
			return
		}
		var head sim.Time
		if atSource {
			head = ringAt.Add(model.SrcRing)
		} else {
			head = ringAt.Add(model.Through[port.Dim])
		}
		link := node.links[topo.PortIndex(port)]
		m.Sim.At(head, func() {
			service := model.LinkService(pkt.WireBytes())
			extra := m.faults.LinkExtra(int(node.ID), port, service, nextStart(m.Sim.Now(), link))
			m.metrics.HopDepart(pkt.Seq, node.ID, port, m.Sim.Now())
			link.Acquire(service+extra, func(start sim.Time) {
				arrival := start.Add(extra).Add(model.AdapterPair[port.Dim])
				next := m.nodes[m.Torus.ID(m.Torus.Neighbor(node.Coord, port))]
				// A kill landing inside the occupancy (cut-through: the
				// tail is still serializing after the head arrives)
				// destroys the transfer; so does the next node dying
				// before the header clears its adapter.
				if kt, ok := m.linkKillTime(topo.LinkID{Node: node.ID, Port: port}); ok && kt < start.Add(service+extra) {
					m.losePacket(pkt, pkt.Dst, lossLink)
					return
				}
				if kt, ok := m.nodeKillTime(next.ID); ok && kt <= arrival {
					reason := lossLink
					if next.ID == pkt.Dst.Node {
						reason = lossDstDead
					}
					m.losePacket(pkt, pkt.Dst, reason)
					return
				}
				if m.OnLink != nil {
					m.OnLink(node.ID, port, start, service+extra)
				}
				m.metrics.LinkTransfer(pkt.Seq, node.ID, port, start, service+extra,
					pkt.WireBytes(), start.Sub(head))
				m.metrics.HopArrive(pkt.Seq, next.ID, arrival)
				if next.ID == pkt.Dst.Node {
					avail := arrival.Add(model.ExtraSerialization(pkt.WireBytes()) + model.DstRing)
					m.deliverLocal(m.Ctx(node.ID), pkt, next.clients[pkt.Dst.Kind], avail)
					return
				}
				m.forwardHard(pkt, next, arrival, false)
			})
		})
	})
}

// waitGuarded registers a counter wait, adding the end-to-end watchdog
// when the plan injects hard faults. Without hard faults — or when the
// target is already met, which no failure can retract — the wait is
// exactly the pre-recovery registration.
func (m *Machine) waitGuarded(c *Client, ctr packet.CounterID, target uint64, poll sim.Dur, fn func()) {
	cnt := c.counter(ctr)
	if !m.hard || cnt.Value() >= target {
		cnt.Wait(target, poll, c.armed(ctr, target, fn))
		return
	}
	ws := &waitState{c: c, ctr: ctr, target: target}
	wrapped := c.armed(ctr, target, fn)
	cnt.Wait(target, poll, func() {
		if ws.done {
			return
		}
		ws.done = true
		wrapped()
	})
	m.armWatchdog(ws)
}

func (m *Machine) armWatchdog(ws *waitState) {
	m.Sim.After(m.wdog, func() { m.watchdogCheck(ws) })
}

// watchdogCheck runs at a guarded wait's deadline. A wait that fired in
// the meantime needs nothing. Otherwise recovery acts on what is known:
// re-issue recoverable lost writes (then grant them a fresh deadline),
// complete degraded when permanent deficits explain the whole shortfall,
// and otherwise keep waiting — packets that are merely late (detour
// stretch, congestion) must never be duplicated.
func (m *Machine) watchdogCheck(ws *waitState) {
	cnt := ws.c.counter(ws.ctr)
	if ws.done || cnt.Value() >= ws.target {
		return
	}
	ws.checks++
	if ws.checks > watchdogMaxChecks {
		panic(fmt.Sprintf("machine: watchdog stuck on %v ctr %d: value %d never explained toward target %d after %d deadlines",
			ws.c.Addr, ws.ctr, cnt.Value(), ws.target, ws.checks))
	}
	m.rec.WatchdogFires++
	m.metrics.WatchdogFire(ws.c.Addr, ws.ctr, ws.target, m.Sim.Now())
	key := recKey{ws.c.Addr, ws.ctr}
	st := m.deficit[key]
	if m.nodeDeadNow(ws.c.Addr.Node) {
		// The waiter itself is dead. Its continuation still runs (in
		// degraded mode) because workload control flow chains across
		// nodes; stalling it would deadlock the living ones.
		m.completeDegraded(ws, st)
		return
	}
	if st != nil && len(st.lost) > 0 {
		lost := st.lost
		st.lost = nil
		for _, cp := range lost {
			if m.nodeDeadNow(cp.Src.Node) {
				// The source died after the loss: no longer re-issuable.
				st.dead++
				continue
			}
			m.rec.Reissues++
			fmt.Printf("REISSUE t=%d seq=%d src=%v dst=%v ctr=%d\n", m.Sim.Now(), cp.Seq, cp.Src, cp.Dst, cp.Counter)
			m.metrics.Reissue(cp.Seq, cp.Dst, cp.Counter, m.Sim.Now())
			re := new(packet.Packet)
			*re = *cp
			m.send(m.Client(cp.Src), re)
		}
		m.armWatchdog(ws)
		return
	}
	if st != nil && st.dead > st.compensated &&
		cnt.Value()+(st.dead-st.compensated) >= ws.target {
		m.completeDegraded(ws, st)
		return
	}
	m.armWatchdog(ws)
}

// completeDegraded finishes a wait whose missing increments come from
// permanently dead sources: the deficit is synthesized into the counter,
// which fires the registered wait through its normal path. The workload
// proceeds on a partial reduction; RecoveryStats and the Degraded
// lifecycle event report exactly how many contributions were missing.
func (m *Machine) completeDegraded(ws *waitState, st *recState) {
	cnt := ws.c.counter(ws.ctr)
	value := cnt.Value()
	if value >= ws.target {
		return
	}
	add := ws.target - value
	if st != nil {
		comp := add
		if avail := st.dead - st.compensated; avail < comp {
			comp = avail
		}
		st.compensated += comp
	}
	m.rec.Degraded++
	m.rec.DegradedInc += add
	m.metrics.Degraded(ws.c.Addr, ws.ctr, add, m.Sim.Now())
	cnt.Add(add)
}
