package machine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"anton/internal/fault"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// hardMachine builds a 4x4x4 machine under the given hard-fault plan.
func hardMachine(t *testing.T, plan string) *Machine {
	t.Helper()
	s := sim.New()
	fault.Attach(s, fault.MustParsePlan(plan))
	return New(s, topo.NewTorus(4, 4, 4), noc.DefaultModel())
}

// A write across a link that is dead from time zero must detour around
// it and still complete — no deadlock, no loss — and the detour route
// must be exactly one surviving-graph-minimal route longer than the
// direct one.
func TestKilledLinkDetourCompletes(t *testing.T) {
	m := hardMachine(t, "seed=1,killlink=0:X+@0ns")
	a := m.NodeAt(topo.C(0, 0, 0)).ID
	b := m.NodeAt(topo.C(1, 0, 0)).ID
	var avail sim.Time = -1
	m.Client(slice0(b)).Wait(7, 1, func() { avail = m.Sim.Now() })
	m.Client(slice0(a)).Write(slice0(b), 7, 0, 0)
	m.Sim.Run()
	if avail < 0 {
		t.Fatal("write across a killed link never delivered")
	}
	direct := 162 * sim.Ns
	if got := avail.Sub(0); got <= direct {
		t.Fatalf("detour latency %v not longer than the direct route's %v", got, direct)
	}
	rec := m.Recovery()
	if rec.Lost != 0 || rec.Degraded != 0 {
		t.Fatalf("pre-dead link should reroute, not lose: %v", rec)
	}
}

// A link killed while a long stream is in flight loses the packets
// caught on it; the watchdog must detect the shortfall and re-issue
// exactly the lost writes over the detour, completing the wait with the
// correct payload.
func TestWatchdogReissuesMidFlightLoss(t *testing.T) {
	// Kill the 0:X+ link at 1us while 40 back-to-back writes from node
	// (0,0,0) to (1,0,0) are streaming across it.
	m := hardMachine(t, "seed=1,killlink=0:X+@1us,wdog=5us")
	a := m.NodeAt(topo.C(0, 0, 0)).ID
	b := m.NodeAt(topo.C(1, 0, 0)).ID
	const n = 40
	var avail sim.Time = -1
	m.Client(slice0(b)).Wait(7, n, func() { avail = m.Sim.Now() })
	for i := 0; i < n; i++ {
		m.Client(slice0(a)).Write(slice0(b), 7, i, 256, float64(i))
	}
	m.Sim.Run()
	if avail < 0 {
		t.Fatalf("stream across a mid-flight kill never completed: recovery %v, counter %d/%d",
			m.Recovery(), m.Client(slice0(b)).Counter(7).Value(), n)
	}
	rec := m.Recovery()
	if rec.Lost == 0 {
		t.Fatalf("kill at 1us lost nothing out of %d writes: %v", n, rec)
	}
	if rec.Reissues == 0 || rec.Reissues != rec.Lost {
		t.Fatalf("reissues %d != lost %d (all losses were recoverable): %v", rec.Reissues, rec.Lost, rec)
	}
	if rec.Degraded != 0 {
		t.Fatalf("recoverable losses must not degrade: %v", rec)
	}
	// Every payload must have landed despite the loss and re-issue.
	mem := m.Client(slice0(b)).Mem(0, n)
	for i, v := range mem {
		if v != float64(i) {
			t.Fatalf("word %d = %v after recovery, want %d", i, v, i)
		}
	}
}

// Writes addressed to a dead node can never be delivered; the sender
// side is unaffected, and a waiter on the dead node completes degraded
// so cross-node control flow keeps advancing.
func TestDeadNodeDegradedWait(t *testing.T) {
	m := hardMachine(t, "seed=1,killnode=21@0ns,wdog=2us")
	dead := topo.NodeID(21)
	var fired sim.Time = -1
	// The dead node's software arms a wait for 3 writes that can never
	// arrive.
	m.Client(slice0(dead)).Wait(3, 3, func() { fired = m.Sim.Now() })
	for i := 0; i < 3; i++ {
		m.Client(slice0(topo.NodeID(i))).Write(slice0(dead), 3, 0, 8, 1)
	}
	m.Sim.Run()
	if fired < 0 {
		t.Fatalf("wait on dead node never completed: %v", m.Recovery())
	}
	rec := m.Recovery()
	if rec.Lost != 3 {
		t.Fatalf("3 writes to a dead node, lost %d: %v", rec.Lost, rec)
	}
	if rec.Degraded != 1 || rec.DegradedInc != 3 {
		t.Fatalf("expected one degraded completion synthesizing 3 increments: %v", rec)
	}
	if rec.Reissues != 0 {
		t.Fatalf("writes to a dead node must never be re-issued: %v", rec)
	}
}

// A send issued by a dead node is lost at the source and books a
// permanent deficit at its destination, whose watchdog then completes
// the wait degraded.
func TestDeadSourceDeficit(t *testing.T) {
	m := hardMachine(t, "seed=1,killnode=5@0ns,wdog=2us")
	dst := slice0(0)
	var fired sim.Time = -1
	m.Client(dst).Wait(4, 2, func() { fired = m.Sim.Now() })
	m.Client(slice0(1)).Write(dst, 4, 0, 8, 7) // arrives
	m.Client(slice0(5)).Write(dst, 4, 8, 8, 9) // source is dead
	m.Sim.Run()
	if fired < 0 {
		t.Fatalf("wait depending on a dead source never completed: %v", m.Recovery())
	}
	rec := m.Recovery()
	if rec.Degraded != 1 || rec.DegradedInc != 1 {
		t.Fatalf("expected exactly the dead source's increment synthesized: %v", rec)
	}
	if got := m.Client(dst).Mem(0, 1)[0]; got != 7 {
		t.Fatalf("live write payload = %v, want 7", got)
	}
	if got := m.Client(dst).Mem(8, 1)[0]; got != 0 {
		t.Fatalf("dead source's address = %v, want untouched 0", got)
	}
}

// In-order packets lost to a kill must release their ordering tickets:
// later in-order packets on the same pair still commit (in order among
// the survivors) instead of stalling forever.
func TestInOrderTicketsReleasedOnLoss(t *testing.T) {
	m := hardMachine(t, "seed=1,killlink=0:X+@1us,wdog=5us")
	a := m.NodeAt(topo.C(0, 0, 0)).ID
	b := m.NodeAt(topo.C(1, 0, 0)).ID
	const n = 30
	delivered := 0
	m.OnDeliver = func(pkt *packet.Packet, dst packet.Client, at sim.Time) { delivered++ }
	var doneAt sim.Time = -1
	m.Client(slice0(b)).Wait(7, n, func() { doneAt = m.Sim.Now() })
	for i := 0; i < n; i++ {
		m.Client(slice0(a)).Send(&packet.Packet{
			Kind: packet.Write, Dst: slice0(b), Multicast: packet.NoMulticast,
			Counter: 7, Addr: i, Bytes: 256, InOrder: true, Payload: []float64{float64(i)},
		})
	}
	m.Sim.Run()
	if doneAt < 0 {
		t.Fatalf("in-order stream never completed after loss: %v (delivered %d/%d)",
			m.Recovery(), delivered, n)
	}
	if delivered != n {
		t.Fatalf("delivered %d of %d in-order writes", delivered, n)
	}
}

// A multicast pattern with a branch that is dead at fan-out time falls
// back to unicast copies over the detour routes: every destination still
// receives the write without any watchdog involvement.
func TestMulticastDeadBranchReroutes(t *testing.T) {
	m := hardMachine(t, "seed=1,killlink=0:X+@0ns")
	// Pattern: node 0 fans out locally and over X+ to node 1, which
	// delivers locally — the X+ branch is dead from the start.
	root := m.NodeAt(topo.C(0, 0, 0)).ID
	next := m.NodeAt(topo.C(1, 0, 0)).ID
	xPlus := topo.Port{Dim: topo.X, Dir: +1}
	m.SetMulticast(root, 1, packet.McEntry{Local: []packet.ClientKind{packet.Slice1}, Out: []topo.Port{xPlus}})
	m.SetMulticast(next, 1, packet.McEntry{Local: []packet.ClientKind{packet.Slice1}})
	got := 0
	for _, n := range []topo.NodeID{root, next} {
		m.Client(packet.Client{Node: n, Kind: packet.Slice1}).Wait(2, 1, func() { got++ })
	}
	m.Client(slice0(root)).MulticastWrite(1, 2, 0, 8, 4.5)
	m.Sim.Run()
	if got != 2 {
		t.Fatalf("%d of 2 multicast destinations reached: %v", got, m.Recovery())
	}
	rec := m.Recovery()
	if rec.Rerouted == 0 {
		t.Fatalf("dead branch should have been rerouted unicast: %v", rec)
	}
	if rec.WatchdogFires != 0 || rec.Lost != 0 {
		t.Fatalf("fan-out reroute must not lose packets or trip the watchdog: %v", rec)
	}
	if v := m.Client(packet.Client{Node: next, Kind: packet.Slice1}).Mem(0, 1)[0]; v != 4.5 {
		t.Fatalf("rerouted multicast payload = %v, want 4.5", v)
	}
}

// An in-order multicast rerouted around a dead branch must carry its
// per-destination ticket into the unicast copies. The pair already has
// one committed in-order write, so a copy that loses its ticket (and
// falls back to the zero value) claims an already-consumed slot and
// wedges the pair's ledger forever — the regression this test pins.
func TestMulticastRerouteKeepsInOrderTicket(t *testing.T) {
	m := hardMachine(t, "seed=1,killlink=0:X+@0ns,wdog=5us")
	root := m.NodeAt(topo.C(0, 0, 0)).ID
	next := m.NodeAt(topo.C(1, 0, 0)).ID
	xPlus := topo.Port{Dim: topo.X, Dir: +1}
	m.SetMulticast(root, 1, packet.McEntry{Local: []packet.ClientKind{packet.Slice1}, Out: []topo.Port{xPlus}})
	m.SetMulticast(next, 1, packet.McEntry{Local: []packet.ClientKind{packet.Slice1}})
	dst := packet.Client{Node: next, Kind: packet.Slice1}
	var doneAt sim.Time = -1
	m.Client(dst).Wait(2, 2, func() { doneAt = m.Sim.Now() })
	// Ticket 0 on the pair: a plain in-order write over the detour.
	m.Client(slice0(root)).Send(&packet.Packet{
		Kind: packet.Write, Dst: dst, Multicast: packet.NoMulticast,
		Counter: 2, Addr: 0, Bytes: 8, InOrder: true, Payload: []float64{1.5},
	})
	// Ticket 1: an in-order multicast whose X+ branch reroutes unicast.
	m.Client(slice0(root)).Send(&packet.Packet{
		Kind: packet.Write, Multicast: 1,
		Counter: 2, Addr: 1, Bytes: 8, InOrder: true, Payload: []float64{2.5},
	})
	m.Sim.Run()
	if doneAt < 0 {
		t.Fatalf("in-order multicast over a dead branch never completed: %v", m.Recovery())
	}
	rec := m.Recovery()
	if rec.WatchdogFires != 0 || rec.Lost != 0 {
		t.Fatalf("reroute must not lose packets or trip the watchdog: %v", rec)
	}
	mem := m.Client(dst).Mem(0, 2)
	if mem[0] != 1.5 || mem[1] != 2.5 {
		t.Fatalf("delivered memory = %v, want [1.5 2.5]", mem)
	}
}

// The whole recovery pipeline is deterministic: two identical runs under
// the same kill plan produce identical completion times, recovery stats,
// and memory contents.
func TestRecoveryDeterministic(t *testing.T) {
	run := func() (sim.Time, RecoveryStats, []float64) {
		m := hardMachine(t, "seed=3,killlink=0:X+@1us;21:Y-@500ns,killnode=42@2us,wdog=4us")
		a := m.NodeAt(topo.C(0, 0, 0)).ID
		b := m.NodeAt(topo.C(1, 0, 0)).ID
		const n = 25
		var doneAt sim.Time = -1
		m.Client(slice0(b)).Wait(7, n, func() { doneAt = m.Sim.Now() })
		for i := 0; i < n; i++ {
			m.Client(slice0(a)).Write(slice0(b), 7, i, 256, float64(i)*0.5)
		}
		// Traffic involving the doomed node too.
		m.Client(slice0(42)).Write(slice0(a), 9, 0, 8, 1)
		m.Client(slice0(a)).Write(slice0(42), 9, 0, 8, 1)
		end := m.Sim.Run()
		if doneAt < 0 {
			t.Fatalf("run never completed: %v", m.Recovery())
		}
		mem := append([]float64(nil), m.Client(slice0(b)).Mem(0, n)...)
		_ = end
		return doneAt, m.Recovery(), mem
	}
	t1, r1, m1 := run()
	t2, r2, m2 := run()
	if t1 != t2 || r1 != r2 {
		t.Fatalf("nondeterministic recovery: (%v, %v) vs (%v, %v)", t1, r1, t2, r2)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("memory word %d differs: %v vs %v", i, m1[i], m2[i])
		}
	}
}

// A plan with kills that all target nodes beyond this machine leaves the
// hard path enabled but inert: traffic is routed by the (fault-free)
// tables and nothing is lost.
func TestOutOfRangeKillsIgnored(t *testing.T) {
	m := hardMachine(t, "seed=1,killlink=500:X+@0ns,killnode=400@0ns")
	a := m.NodeAt(topo.C(0, 0, 0)).ID
	b := m.NodeAt(topo.C(2, 1, 0)).ID
	var avail sim.Time = -1
	m.Client(slice0(b)).Wait(7, 1, func() { avail = m.Sim.Now() })
	m.Client(slice0(a)).Write(slice0(b), 7, 0, 16)
	m.Sim.Run()
	if avail < 0 {
		t.Fatal("write never delivered under out-of-range kills")
	}
	if rec := m.Recovery(); rec.Lost != 0 || rec.WatchdogFires != 0 {
		t.Fatalf("out-of-range kills perturbed the machine: %v", rec)
	}
}

// TestRecoveryUnderPDESStress is the machine half of the 600-run race
// battery (the kernel half is internal/sim's TestPDESReconfigureStress):
// each seed derives a torus, a fault-plan class — none, soft
// corruption+stalls, a scheduled outage, a killed link, or a killed
// node — a spray of counted writes with registered waits sized to the
// exactly reachable targets, a RunUntil schedule whose stops land while
// traffic (and, for kill classes, watchdog recovery) is mid-window, and
// a worker-count flip at every stop. The full trajectory — canonical
// send stream, delivery log, wait completions, recovery tally, final
// clock — must match the all-sequential run of the same schedule. Kill
// classes veto confinement, so the battery sweeps both the stage-2
// executor and the stage-1 fallback; ci.sh runs it under the race
// detector.
func TestRecoveryUnderPDESStress(t *testing.T) {
	seeds := 300
	if testing.Short() {
		seeds = 40
	}
	shapes := [][3]int{{2, 2, 2}, {4, 2, 2}, {4, 4, 2}, {4, 4, 4}}

	type ctrKey struct {
		c   packet.Client
		ctr packet.CounterID
	}

	run := func(seed int64, workerPlan []int) (string, uint64, RecoveryStats) {
		rng := rand.New(rand.NewSource(seed))
		shape := shapes[rng.Intn(len(shapes))]
		tor := topo.NewTorus(shape[0], shape[1], shape[2])
		nodes := tor.Nodes()

		plan := fault.Plan{Seed: uint64(seed)}
		switch rng.Intn(5) {
		case 0:
			// fault-free
		case 1:
			plan.CorruptRate = 0.02
			plan.RetryLatency = 30 * sim.Ns
			plan.StallRate = 0.01
			plan.StallDur = 100 * sim.Ns
		case 2:
			l := fault.Link{Node: rng.Intn(nodes), Port: topo.Port{Dim: topo.X, Dir: +1}}
			plan.Down = []fault.Window{{Link: l, From: sim.Time(400 * sim.Ns), Until: sim.Time(2 * sim.Us)}}
		case 3:
			l := fault.Link{Node: rng.Intn(nodes), Port: topo.Port{Dim: topo.Y, Dir: -1}}
			plan.KillLinks = []fault.LinkKill{{Link: l, At: sim.Time(1 * sim.Us)}}
			plan.Watchdog = 15 * sim.Us
		case 4:
			plan.KillNodes = []fault.NodeKill{{Node: rng.Intn(nodes), At: sim.Time(1 * sim.Us)}}
			plan.Watchdog = 15 * sim.Us
		}

		s := sim.New()
		s.SetGrain(1)
		s.SetWorkers(workerPlan[0])
		if !plan.IsZero() || plan.Seed != 0 {
			fault.Attach(s, plan)
		}
		m := New(s, tor, noc.DefaultModel())
		s.SetConfined(true)

		var log strings.Builder
		m.OnSend = func(pkt *packet.Packet, at sim.Time) {
			fmt.Fprintf(&log, "S %d %s %v\n", pkt.Seq, pkt.Tag, at)
		}
		m.OnDeliver = func(pkt *packet.Packet, dst packet.Client, at sim.Time) {
			fmt.Fprintf(&log, "D %d %s %v %v\n", pkt.Seq, pkt.Tag, dst, at)
		}

		expected := make(map[ctrKey]uint64)
		order := make([]ctrKey, 0, 32)
		const sends = 80
		for i := 0; i < sends; i++ {
			srcNode := topo.NodeID(rng.Intn(nodes))
			dst := packet.Client{Node: topo.NodeID(rng.Intn(nodes)), Kind: packet.Slice(rng.Intn(4))}
			ctr := packet.CounterID(rng.Intn(4))
			at := sim.Time(rng.Int63n(int64(3 * sim.Us)))
			bytes := rng.Intn(257)
			inOrder := rng.Intn(3) == 0
			tag := fmt.Sprintf("p%d", i)
			key := ctrKey{dst, ctr}
			if expected[key] == 0 {
				order = append(order, key)
			}
			expected[key]++
			src := m.Client(packet.Client{Node: srcNode, Kind: packet.Slice0})
			m.Ctx(srcNode).At(at, func() {
				src.Send(&packet.Packet{
					Kind: packet.Write, Dst: dst, Multicast: packet.NoMulticast,
					Counter: ctr, Addr: 8 * (i % 32), Bytes: bytes, InOrder: inOrder, Tag: tag,
				})
			})
		}
		// Register a wait per (client, counter) at its exactly reachable
		// target; under kill plans the watchdog completes stalled waits by
		// re-issue or degradation, so every wait still fires.
		for _, key := range order {
			key := key
			target := expected[key]
			m.Client(key.c).Wait(key.ctr, target, func() {
				at := m.Ctx(key.c.Node).Now()
				m.Defer(key.c.Node, func() {
					fmt.Fprintf(&log, "W %v %d %d %v\n", key.c, key.ctr, target, at)
				})
			})
		}

		stops := []sim.Time{sim.Time(800 * sim.Ns), sim.Time(2 * sim.Us), sim.Time(5 * sim.Us)}
		for i, stop := range stops {
			drained := s.RunUntil(stop)
			fmt.Fprintf(&log, "stop%d drained=%v now=%v fired=%d pending=%d\n",
				i, drained, s.Now(), s.Fired(), s.Pending())
			if i+1 < len(workerPlan) {
				s.SetWorkers(workerPlan[i+1])
			}
		}
		s.Run()
		st := m.Stats()
		fmt.Fprintf(&log, "stats %d %d %d %d\n", st.Sent, st.Received, st.SentBytes, st.RecvBytes)
		fmt.Fprintf(&log, "recovery %v\n", m.Recovery())
		fmt.Fprintf(&log, "end %v %d\n", s.Now(), s.Fired())
		return log.String(), s.ExecWindows(), m.Recovery()
	}

	var engaged uint64
	var recovered uint64
	for seed := 0; seed < seeds; seed++ {
		sd := int64(seed)*104729 + 13
		rng := rand.New(rand.NewSource(sd ^ 0x5eed))
		workerPlan := make([]int, 4)
		workerPlan[0] = 2 + rng.Intn(7)
		for i := 1; i < len(workerPlan); i++ {
			workerPlan[i] = rng.Intn(9) // 0 = GOMAXPROCS, 1 = sequential
		}
		want, _, _ := run(sd, []int{1, 1, 1, 1})
		got, windows, rec := run(sd, workerPlan)
		if got != want {
			t.Fatalf("seed %d workers=%v: trajectory diverged from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
				seed, workerPlan, want, got)
		}
		engaged += windows
		recovered += rec.Lost + rec.Degraded
	}
	if engaged == 0 {
		t.Fatal("stage-2 executor never engaged across the battery; stress is vacuous")
	}
	if recovered == 0 {
		t.Fatal("no kill-class seed ever lost traffic; watchdog recovery was not exercised")
	}
}
