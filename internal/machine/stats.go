package machine

import "anton/internal/topo"

// Stats aggregates machine-wide traffic counts. Received counts individual
// deliveries, so a multicast packet delivered to k clients counts k times
// on the receive side but once on the send side — this is why the paper's
// average node receives over 500 messages per time step while sending over
// 250.
type Stats struct {
	Sent      uint64
	Received  uint64
	SentBytes uint64
	RecvBytes uint64
	perNode   []nodeStats
}

type nodeStats struct {
	Sent, Received uint64
}

func (s *Stats) reset() {
	s.Sent, s.Received, s.SentBytes, s.RecvBytes = 0, 0, 0, 0
	for i := range s.perNode {
		s.perNode[i] = nodeStats{}
	}
}

func (s *Stats) ensureNodes(n int) {
	if len(s.perNode) < n {
		grown := make([]nodeStats, n)
		copy(grown, s.perNode)
		s.perNode = grown
	}
}

func (s *Stats) send(n topo.NodeID, bytes int) {
	s.Sent++
	s.SentBytes += uint64(bytes)
	s.ensureNodes(int(n) + 1)
	s.perNode[n].Sent++
}

func (s *Stats) recv(n topo.NodeID, bytes int) {
	s.Received++
	s.RecvBytes += uint64(bytes)
	s.ensureNodes(int(n) + 1)
	s.perNode[n].Received++
}

// NodeSent returns the number of packets node n injected.
func (s Stats) NodeSent(n topo.NodeID) uint64 {
	if int(n) >= len(s.perNode) {
		return 0
	}
	return s.perNode[n].Sent
}

// NodeReceived returns the number of packet deliveries at node n's clients.
func (s Stats) NodeReceived(n topo.NodeID) uint64 {
	if int(n) >= len(s.perNode) {
		return 0
	}
	return s.perNode[n].Received
}
