package machine

import "anton/internal/topo"

// Stats aggregates machine-wide traffic counts. Received counts individual
// deliveries, so a multicast packet delivered to k clients counts k times
// on the receive side but once on the send side — this is why the paper's
// average node receives over 500 messages per time step while sending over
// 250.
//
// The live accumulator holds only the per-node counts: a node's counts are
// updated exclusively by its own node's events, which all belong to one
// PDES domain, so stage-2 window execution never shares a counter between
// worker goroutines. The machine-wide totals are filled in by
// Machine.Stats, which sums the nodes — an order-free reduction, hence
// identical at any worker count.
type Stats struct {
	Sent      uint64
	Received  uint64
	SentBytes uint64
	RecvBytes uint64
	perNode   []nodeStats
}

type nodeStats struct {
	Sent, Received       uint64
	SentBytes, RecvBytes uint64
}

func (s *Stats) reset() {
	s.Sent, s.Received, s.SentBytes, s.RecvBytes = 0, 0, 0, 0
	for i := range s.perNode {
		s.perNode[i] = nodeStats{}
	}
}

// ensureNodes grows the per-node slice; machine.New pre-sizes it to the
// torus, so growth only happens in direct unit-test use, never from
// worker context.
func (s *Stats) ensureNodes(n int) {
	if len(s.perNode) < n {
		grown := make([]nodeStats, n)
		copy(grown, s.perNode)
		s.perNode = grown
	}
}

func (s *Stats) send(n topo.NodeID, bytes int) {
	s.ensureNodes(int(n) + 1)
	ns := &s.perNode[n]
	ns.Sent++
	ns.SentBytes += uint64(bytes)
}

func (s *Stats) recv(n topo.NodeID, bytes int) {
	s.ensureNodes(int(n) + 1)
	ns := &s.perNode[n]
	ns.Received++
	ns.RecvBytes += uint64(bytes)
}

// NodeSent returns the number of packets node n injected.
func (s Stats) NodeSent(n topo.NodeID) uint64 {
	if int(n) >= len(s.perNode) {
		return 0
	}
	return s.perNode[n].Sent
}

// NodeReceived returns the number of packet deliveries at node n's clients.
func (s Stats) NodeReceived(n topo.NodeID) uint64 {
	if int(n) >= len(s.perNode) {
		return 0
	}
	return s.perNode[n].Received
}
