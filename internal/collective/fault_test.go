package collective

import (
	"testing"

	"anton/internal/fault"
	"anton/internal/machine"
	"anton/internal/sim"
	"anton/internal/topo"
)

// runFaulted performs one 32-byte all-reduce on a 4x4x4 machine under
// plan and returns the completion time plus every node's result vector.
func runFaulted(t *testing.T, plan fault.Plan) (sim.Time, [][]float64) {
	t.Helper()
	s := sim.New()
	fault.Attach(s, plan)
	m := machine.New(s, topo.NewTorus(4, 4, 4), defaultNoc())
	cfg := DefaultConfig(32)
	ar := NewAllReduce(m, cfg)
	var doneAt sim.Time = -1
	ar.Run(func(n topo.NodeID) []float64 {
		v := make([]float64, cfg.Values)
		for i := range v {
			v[i] = float64(int(n) + i)
		}
		return v
	}, func(at sim.Time) { doneAt = at })
	s.Run()
	if doneAt < 0 {
		t.Fatal("all-reduce never completed")
	}
	results := make([][]float64, m.Torus.Nodes())
	for id := range results {
		results[id] = append([]float64(nil), ar.Result(topo.NodeID(id))...)
	}
	return doneAt, results
}

// Link-level retransmission is lossless: under heavy flit corruption the
// all-reduce still delivers the exact sums to every node — it just takes
// longer than the fault-free run. And the faulted run is deterministic:
// repeating it reproduces the completion time and results bit for bit.
func TestAllReduceLosslessUnderCorruption(t *testing.T) {
	plan := fault.Plan{Seed: 9, CorruptRate: 0.05, RetryLatency: 50 * sim.Ns}
	cleanAt, _ := runFaulted(t, fault.Plan{})
	faultAt, results := runFaulted(t, plan)

	if faultAt <= cleanAt {
		t.Fatalf("corrupted all-reduce finished at %v, not later than fault-free %v", faultAt, cleanAt)
	}
	nodes := len(results)
	sumN := float64(nodes*(nodes-1)) / 2
	for id, got := range results {
		for i := range got {
			want := sumN + float64(nodes*i)
			if got[i] != want {
				t.Fatalf("node %d value %d = %v, want %v: corruption leaked into the data", id, i, got[i], want)
			}
		}
	}

	replayAt, replay := runFaulted(t, plan)
	if replayAt != faultAt {
		t.Fatalf("replay completed at %v, first run at %v", replayAt, faultAt)
	}
	for id := range results {
		for i := range results[id] {
			if results[id][i] != replay[id][i] {
				t.Fatalf("replay node %d value %d differs", id, i)
			}
		}
	}
}
