package collective

import (
	"testing"

	"anton/internal/machine"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

func defaultNoc() noc.Model { return noc.DefaultModel() }

func TestRingBroadcastReachesAllPeers(t *testing.T) {
	s := sim.New()
	m := machine.Default512(s)
	InstallRingBroadcast(m, topo.Y, packet.Slice1, 0)
	root := topo.C(3, 5, 2)
	got := map[topo.NodeID]bool{}
	m.OnDeliver = func(p *packet.Packet, dst packet.Client, at sim.Time) {
		if dst.Kind != packet.Slice1 {
			t.Errorf("delivered to %v, want slice1", dst)
		}
		if got[dst.Node] {
			t.Errorf("duplicate delivery to node %d", dst.Node)
		}
		got[dst.Node] = true
	}
	src := packet.Client{Node: m.Torus.ID(root), Kind: packet.Slice0}
	m.Client(src).Send(&packet.Packet{
		Kind: packet.Write, Multicast: packet.MulticastID(root.Y),
		Counter: 0, Bytes: 8,
	})
	s.Run()
	if len(got) != 7 {
		t.Fatalf("delivered to %d nodes, want 7", len(got))
	}
	if got[src.Node] {
		t.Fatal("broadcast delivered to its own root")
	}
	for _, c := range m.Torus.AxisNodes(root, topo.Y) {
		id := m.Torus.ID(c)
		if id != src.Node && !got[id] {
			t.Fatalf("ring peer %v missed", c)
		}
	}
}

func TestRingBroadcastTinyRing(t *testing.T) {
	// N=2 ring: a single peer, + direction only.
	s := sim.New()
	m := machine.New(s, topo.NewTorus(2, 1, 1), defaultNoc())
	InstallRingBroadcast(m, topo.X, packet.Slice0, 0)
	count := 0
	m.OnDeliver = func(p *packet.Packet, dst packet.Client, at sim.Time) { count++ }
	m.Client(packet.Client{Node: 0, Kind: packet.Slice0}).Send(&packet.Packet{
		Kind: packet.Write, Multicast: 0, Counter: 0, Bytes: 8,
	})
	s.Run()
	if count != 1 {
		t.Fatalf("deliveries = %d, want 1", count)
	}
}

func TestAllReduceCorrectSum(t *testing.T) {
	s := sim.New()
	m := machine.New(s, topo.NewTorus(4, 4, 4), defaultNoc())
	cfg := DefaultConfig(32)
	ar := NewAllReduce(m, cfg)
	var doneAt sim.Time = -1
	ar.Run(func(n topo.NodeID) []float64 {
		v := make([]float64, cfg.Values)
		for i := range v {
			v[i] = float64(int(n) + i)
		}
		return v
	}, func(at sim.Time) { doneAt = at })
	s.Run()
	if doneAt < 0 {
		t.Fatal("all-reduce never completed")
	}
	nodes := m.Torus.Nodes()
	// Expected sum over n of (n + i) = sum(n) + nodes*i.
	sumN := float64(nodes*(nodes-1)) / 2
	for id := 0; id < nodes; id++ {
		got := ar.Result(topo.NodeID(id))
		for i := range got {
			want := sumN + float64(nodes*i)
			if got[i] != want {
				t.Fatalf("node %d value %d = %v, want %v", id, i, got[i], want)
			}
		}
	}
}

func TestAllReduce512Latency(t *testing.T) {
	// Table 2: a 32-byte all-reduce on 512 nodes takes 1.77 us; a 0-byte
	// reduction takes 1.32 us. Allow 15% tolerance.
	for _, tc := range []struct {
		bytes  int
		wantUs float64
	}{
		{0, 1.32},
		{32, 1.77},
	} {
		s := sim.New()
		m := machine.Default512(s)
		ar := NewAllReduce(m, DefaultConfig(tc.bytes))
		var doneAt sim.Time = -1
		ar.Run(nil, func(at sim.Time) { doneAt = at })
		s.Run()
		got := doneAt.Us()
		if got < tc.wantUs*0.85 || got > tc.wantUs*1.15 {
			t.Errorf("512-node %dB all-reduce = %.3fus, want %.2fus +/- 15%%", tc.bytes, got, tc.wantUs)
		}
	}
}

func TestAllReduceScalesWithMachineSize(t *testing.T) {
	// Table 2 ordering: 64 < 128 < 256 < 512 < 1024 node latencies.
	sizes := []topo.Torus{
		topo.NewTorus(4, 4, 4),
		topo.NewTorus(8, 2, 8),
		topo.NewTorus(8, 8, 4),
		topo.NewTorus(8, 8, 8),
		topo.NewTorus(8, 8, 16),
	}
	var prev sim.Time
	for _, tor := range sizes {
		s := sim.New()
		m := machine.New(s, tor, defaultNoc())
		ar := NewAllReduce(m, DefaultConfig(32))
		var doneAt sim.Time
		ar.Run(nil, func(at sim.Time) { doneAt = at })
		s.Run()
		if doneAt <= prev {
			t.Fatalf("%v all-reduce %v not slower than previous %v", tor, doneAt, prev)
		}
		prev = doneAt
	}
}

func TestAllReduceRepeatedRuns(t *testing.T) {
	s := sim.New()
	m := machine.New(s, topo.NewTorus(4, 2, 2), defaultNoc())
	cfg := DefaultConfig(32)
	ar := NewAllReduce(m, cfg)
	for run := 1; run <= 3; run++ {
		var doneAt sim.Time = -1
		ar.Run(func(n topo.NodeID) []float64 {
			v := make([]float64, cfg.Values)
			v[0] = float64(run)
			return v
		}, func(at sim.Time) { doneAt = at })
		s.Run()
		if doneAt < 0 {
			t.Fatalf("run %d never completed", run)
		}
		want := float64(run * m.Torus.Nodes())
		if got := ar.Result(0)[0]; got != want {
			t.Fatalf("run %d sum = %v, want %v", run, got, want)
		}
	}
}

func TestBarrier(t *testing.T) {
	s := sim.New()
	m := machine.Default512(s)
	var doneAt sim.Time = -1
	Barrier(m, DefaultConfig(0), func(at sim.Time) { doneAt = at })
	s.Run()
	if doneAt < 0 {
		t.Fatal("barrier never completed")
	}
	// A barrier is a 0-byte reduction: ~1.32 us on 512 nodes.
	if us := doneAt.Us(); us < 1.0 || us > 1.6 {
		t.Fatalf("barrier = %.3fus, want ~1.32us", us)
	}
}

func TestButterflyCorrectAndSlower(t *testing.T) {
	// The butterfly computes the same sums but needs 3*log2(N) rounds; on
	// an 8x8x8 machine it must lose to the dimension-ordered algorithm.
	sDim := sim.New()
	mDim := machine.Default512(sDim)
	arDim := NewAllReduce(mDim, DefaultConfig(32))
	var dimAt sim.Time
	arDim.Run(initV, func(at sim.Time) { dimAt = at })
	sDim.Run()

	sB := sim.New()
	mB := machine.Default512(sB)
	arB := NewButterflyAllReduce(mB, DefaultConfig(32))
	var bAt sim.Time
	arB.Run(initV, func(at sim.Time) { bAt = at })
	sB.Run()

	for id := 0; id < 512; id++ {
		a, b := arDim.Result(topo.NodeID(id)), arB.Result(topo.NodeID(id))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d value %d: dim %v vs butterfly %v", id, i, a[i], b[i])
			}
		}
	}
	if bAt <= dimAt {
		t.Fatalf("butterfly %v should be slower than dimension-ordered %v", bAt, dimAt)
	}
}

func initV(n topo.NodeID) []float64 {
	v := make([]float64, 8)
	for i := range v {
		v[i] = float64(int(n)%7 + i)
	}
	return v
}

func TestButterflyRequiresPowerOfTwo(t *testing.T) {
	s := sim.New()
	m := machine.New(s, topo.NewTorus(3, 4, 4), defaultNoc())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-power-of-two torus")
		}
	}()
	NewButterflyAllReduce(m, DefaultConfig(32))
}

func TestAccumVariantCorrectAndSlower(t *testing.T) {
	// Summing in the accumulation memories gives the right answer but the
	// cross-ring counter polling makes it slower — the paper's rationale
	// for summing in the processing slices.
	sDim := sim.New()
	mDim := machine.New(sDim, topo.NewTorus(4, 4, 4), defaultNoc())
	arDim := NewAllReduce(mDim, DefaultConfig(32))
	var dimAt sim.Time
	arDim.Run(initV, func(at sim.Time) { dimAt = at })
	sDim.Run()

	sA := sim.New()
	mA := machine.New(sA, topo.NewTorus(4, 4, 4), defaultNoc())
	arA := NewAccumAllReduce(mA, DefaultConfig(32))
	var aAt sim.Time
	arA.Run(initV, func(at sim.Time) { aAt = at })
	sA.Run()

	for id := 0; id < 64; id++ {
		a, b := arDim.Result(topo.NodeID(id)), arA.Result(topo.NodeID(id))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d value %d: slices %v vs accum %v", id, i, a[i], b[i])
			}
		}
	}
	if aAt <= dimAt {
		t.Fatalf("accum-memory variant %v should be slower than slice summing %v", aAt, dimAt)
	}
}

func TestAccumVariantRepeatedRuns(t *testing.T) {
	s := sim.New()
	m := machine.New(s, topo.NewTorus(2, 2, 2), defaultNoc())
	ar := NewAccumAllReduce(m, DefaultConfig(32))
	for run := 1; run <= 2; run++ {
		var done bool
		ar.Run(func(n topo.NodeID) []float64 {
			v := make([]float64, 8)
			v[0] = 1
			return v
		}, func(sim.Time) { done = true })
		s.Run()
		if !done {
			t.Fatalf("run %d never completed", run)
		}
		if got := ar.Result(0)[0]; got != 8 {
			t.Fatalf("run %d sum = %v, want 8", run, got)
		}
	}
}
