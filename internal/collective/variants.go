package collective

import (
	"math/bits"

	"anton/internal/machine"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// Barrier runs a fast global barrier, implemented as a 0-byte reduction as
// the paper describes (Table 2 caption). done fires when every node has
// observed the barrier.
func Barrier(m *machine.Machine, cfg Config, done func(at sim.Time)) {
	cfg.Bytes = 0
	cfg.Values = 0
	NewAllReduce(m, cfg).Run(nil, done)
}

// ButterflyAllReduce is the radix-2 butterfly alternative the paper rejects:
// 3*log2(N) rounds and 3(N-1) hops versus the dimension-ordered
// algorithm's 3 rounds and 3N/2 hops on an NxNxN machine. It exists for
// the design-choice ablation. All torus dimensions must be powers of two.
type ButterflyAllReduce struct {
	m       *machine.Machine
	cfg     Config
	gen     uint64
	partial [][]float64
}

// NewButterflyAllReduce returns a butterfly all-reduce (no multicast
// patterns are needed: every exchange is a unicast counted remote write).
func NewButterflyAllReduce(m *machine.Machine, cfg Config) *ButterflyAllReduce {
	for d := topo.X; d < topo.NumDims; d++ {
		if n := m.Torus.Size(d); n&(n-1) != 0 {
			panic("collective: butterfly all-reduce requires power-of-two dimensions")
		}
	}
	return &ButterflyAllReduce{m: m, cfg: cfg, partial: make([][]float64, m.Torus.Nodes())}
}

// Run performs one butterfly all-reduce; see AllReduce.Run.
func (b *ButterflyAllReduce) Run(initial func(topo.NodeID) []float64, done func(at sim.Time)) {
	b.gen++
	nodes := b.m.Torus.Nodes()
	for id := 0; id < nodes; id++ {
		v := make([]float64, b.cfg.Values)
		if initial != nil {
			copy(v, initial(topo.NodeID(id)))
		}
		b.partial[id] = v
	}
	remaining := nodes
	perNode := func(at sim.Time) {
		remaining--
		if remaining == 0 && done != nil {
			done(at)
		}
	}
	for id := 0; id < nodes; id++ {
		b.stage(topo.NodeID(id), topo.X, 0, perNode)
	}
}

// Result returns node n's reduced vector after completion.
func (b *ButterflyAllReduce) Result(n topo.NodeID) []float64 { return b.partial[n] }

func (b *ButterflyAllReduce) stage(n topo.NodeID, d topo.Dim, k int, done func(sim.Time)) {
	m := b.m
	ctx := m.Ctx(n)
	ringN := m.Torus.Size(d)
	logN := bits.TrailingZeros(uint(ringN))
	if k >= logN {
		if d < topo.Z {
			b.stage(n, d+1, 0, done)
			return
		}
		// done decrements the caller's cross-node completion count: run it
		// at the commit slot.
		at := ctx.Now()
		ctx.Defer(func() { done(at) })
		return
	}
	c := m.Torus.Coord(n)
	partner := m.Torus.ID(c.Set(d, c.Get(d)^(1<<k)))
	ctr := b.cfg.CtrBase + packet.CounterID(16+int(d)*8+k)
	addr := (int(d)*8 + k) * max(b.cfg.Values, 1)
	self := packet.Client{Node: n, Kind: packet.Slice0}
	dst := packet.Client{Node: partner, Kind: packet.Slice0}
	payload := append([]float64(nil), b.partial[n]...)
	m.Client(self).Send(&packet.Packet{
		Kind: packet.Write, Dst: dst, Multicast: packet.NoMulticast,
		Counter: ctr, Addr: addr, Bytes: b.cfg.Bytes, Payload: payload,
		Tag: "butterfly",
	})
	m.Client(self).Wait(ctr, b.gen, func() {
		vals := m.Client(self).Mem(addr, b.cfg.Values)
		sum := b.partial[n]
		for i := range sum {
			sum[i] += vals[i]
		}
		cost := b.cfg.RoundOverhead + sim.Dur(2*b.cfg.Values)*b.cfg.PerValueAdd
		ctx.After(cost, func() { b.stage(n, d, k+1, done) })
	})
}

// AccumAllReduce is the sum-in-accumulation-memory variant the paper
// rejects (Section IV.B.4): the ring contributions accumulate in hardware,
// but the processing slices must poll the accumulation-memory counters
// across the on-chip network, which costs more than summing in software.
// It is dimension-ordered like AllReduce and exists for the ablation.
type AccumAllReduce struct {
	m       *machine.Machine
	cfg     Config
	gen     uint64
	partial [][]float64
	dimOff  [topo.NumDims]packet.MulticastID
}

// NewAccumAllReduce installs multicast patterns that deliver to the ring
// peers' accumulation memory 0.
func NewAccumAllReduce(m *machine.Machine, cfg Config) *AccumAllReduce {
	ar := &AccumAllReduce{m: m, cfg: cfg, partial: make([][]float64, m.Torus.Nodes())}
	id := cfg.McBase
	for d := topo.X; d < topo.NumDims; d++ {
		ar.dimOff[d] = id
		id += packet.MulticastID(InstallRingBroadcast(m, d, packet.Accum0, id))
	}
	return ar
}

// Run performs one all-reduce; see AllReduce.Run.
func (a *AccumAllReduce) Run(initial func(topo.NodeID) []float64, done func(at sim.Time)) {
	a.gen++
	nodes := a.m.Torus.Nodes()
	for id := 0; id < nodes; id++ {
		v := make([]float64, a.cfg.Values)
		if initial != nil {
			copy(v, initial(topo.NodeID(id)))
		}
		a.partial[id] = v
	}
	remaining := nodes
	perNode := func(at sim.Time) {
		remaining--
		if remaining == 0 && done != nil {
			done(at)
		}
	}
	for id := 0; id < nodes; id++ {
		a.round(topo.NodeID(id), topo.X, perNode)
	}
}

// Result returns node n's reduced vector after completion.
func (a *AccumAllReduce) Result(n topo.NodeID) []float64 { return a.partial[n] }

func (a *AccumAllReduce) round(n topo.NodeID, d topo.Dim, done func(sim.Time)) {
	m := a.m
	ringN := m.Torus.Size(d)
	c := m.Torus.Coord(n)
	r := c.Get(d)
	ctr := a.cfg.CtrBase + packet.CounterID(d)
	// Distinct accumulation range per generation and round, since
	// accumulation memories add rather than overwrite.
	addr := (int(a.gen-1)*3 + int(d)) * max(a.cfg.Values, 1)
	sender := m.Client(packet.Client{Node: n, Kind: senderSlice(d)})
	acc := packet.Client{Node: n, Kind: packet.Accum0}
	payload := append([]float64(nil), a.partial[n]...)

	// Broadcast the partial into the ring peers' accumulation memories...
	if ringN > 1 {
		sender.Send(&packet.Packet{
			Kind: packet.Accumulate, Multicast: a.dimOff[d] + packet.MulticastID(r),
			Counter: ctr, Addr: addr, Bytes: a.cfg.Bytes, Payload: payload,
			Tag: "accum-allreduce",
		})
	}
	// ...and contribute locally to our own.
	sender.Send(&packet.Packet{
		Kind: packet.Accumulate, Dst: acc, Multicast: packet.NoMulticast,
		Counter: ctr, Addr: addr, Bytes: a.cfg.Bytes, Payload: payload,
		Tag: "accum-allreduce-local",
	})

	target := a.gen * uint64(ringN)
	// The receiving slice polls the accumulation-memory counter across the
	// on-chip network: this is where the variant loses.
	m.Client(acc).WaitRemote(ctr, target, func() {
		sum := m.Client(acc).Mem(addr, a.cfg.Values)
		copy(a.partial[n], sum)
		// Reading the result back across the ring costs another round trip.
		ctx := m.Ctx(n)
		cost := a.cfg.RoundOverhead + a.m.Model.AccumPoll
		ctx.After(cost, func() {
			if d < topo.Z {
				a.round(n, d+1, done)
				return
			}
			at := ctx.Now()
			ctx.Defer(func() { done(at) })
		})
	})
}
