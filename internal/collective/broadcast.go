package collective

import (
	"anton/internal/machine"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// Broadcast is a machine-wide one-to-all broadcast built from the same
// ring-multicast primitive as the all-reduce: the root broadcasts along
// its X ring, every X-ring node rebroadcasts along its Y ring, and every
// node of that plane rebroadcasts along its Z ring. Three rounds reach
// all N^3 nodes with the minimum per-dimension hop count — the structure
// hardware tree networks (Blue Gene's) provide as a dedicated facility
// and Anton synthesizes from multicast counted remote writes.
type Broadcast struct {
	m   *machine.Machine
	cfg Config
	gen uint64
	// dimOff holds the ring-broadcast pattern bases, one per dimension.
	dimOff [topo.NumDims]packet.MulticastID
}

// NewBroadcast installs ring-broadcast patterns for all three dimensions,
// delivering to slice0. It consumes DimX+DimY+DimZ pattern ids at
// cfg.McBase.
func NewBroadcast(m *machine.Machine, cfg Config) *Broadcast {
	b := &Broadcast{m: m, cfg: cfg}
	id := cfg.McBase
	for d := topo.X; d < topo.NumDims; d++ {
		b.dimOff[d] = id
		id += packet.MulticastID(InstallRingBroadcast(m, d, packet.Slice0, id))
	}
	return b
}

// Run broadcasts payload from root to slice0 of every node; done fires
// when the last node has received it (the collective-completion metric
// the paper uses).
func (b *Broadcast) Run(root topo.NodeID, payload []float64, done func(at sim.Time)) {
	b.gen++
	m := b.m
	nodes := m.Torus.Nodes()
	remaining := nodes - 1
	if remaining == 0 {
		if done != nil {
			m.Sim.After(0, func() { done(m.Sim.Now()) })
		}
		return
	}
	ctr := b.cfg.CtrBase + 7
	addr := int(b.gen) * max(b.cfg.Values, 1)
	recvd := func(n topo.NodeID) {
		ctx := m.Ctx(n)
		m.Client(packet.Client{Node: n, Kind: packet.Slice0}).Wait(ctr, b.gen, func() {
			// remaining is a cross-node completion count: decrement at the
			// canonical commit slot.
			at := ctx.Now()
			ctx.Defer(func() {
				remaining--
				if remaining == 0 && done != nil {
					done(at)
				}
			})
		})
	}
	rootCoord := m.Torus.Coord(root)
	m.Torus.ForEach(func(c topo.Coord) {
		if id := m.Torus.ID(c); id != root {
			recvd(id)
		}
	})

	send := func(n topo.NodeID, d topo.Dim) {
		c := m.Torus.Coord(n)
		if m.Torus.Size(d) == 1 {
			return
		}
		m.Client(packet.Client{Node: n, Kind: packet.Slice0}).Send(&packet.Packet{
			Kind: packet.Write, Multicast: b.dimOff[d] + packet.MulticastID(c.Get(d)),
			Counter: ctr, Addr: addr, Bytes: b.cfg.Bytes, Payload: payload,
			Tag: "broadcast",
		})
	}

	// Round 1: root along X. Rounds 2 and 3 relay on reception; nodes in
	// the root's X ring forward along Y, nodes in the root's XY plane
	// forward along Z. A node knows its role from its coordinates alone,
	// so no extra coordination traffic is needed.
	send(root, topo.X)
	m.Torus.ForEach(func(c topo.Coord) {
		id := m.Torus.ID(c)
		switch {
		case id == root:
			// The root already has the value: relay along Y and Z at once.
			send(root, topo.Y)
			send(root, topo.Z)
		case c.Y == rootCoord.Y && c.Z == rootCoord.Z:
			// X-ring node: relay along Y, then Z, once the value arrives.
			m.Client(packet.Client{Node: id, Kind: packet.Slice0}).Wait(ctr, b.gen, func() {
				send(id, topo.Y)
				send(id, topo.Z)
			})
		case c.Z == rootCoord.Z:
			// XY-plane node: relay along Z once the value arrives.
			m.Client(packet.Client{Node: id, Kind: packet.Slice0}).Wait(ctr, b.gen, func() {
				send(id, topo.Z)
			})
		}
	})
}
