// Package collective implements Anton's collective operations, which are
// built entirely from multicast and counted remote writes: the hardware has
// no dedicated reduction network.
//
// The global all-reduce uses the paper's dimension-ordered algorithm
// (Section IV.B.4): the three-dimensional reduction decomposes into
// parallel one-dimensional all-reduce rounds along the X axis, then Y,
// then Z. Within each round, each of the N nodes along a ring broadcasts
// its data to, and receives data from, the other N-1 nodes via multicast
// counted remote writes; all N nodes then redundantly compute the same
// sum. Processing slice k receives the round-k writes and computes the
// partial sum, so after three rounds slice 2 on each node holds the global
// sum and shares it locally with the other three slices. The algorithm
// achieves the minimum total hop count (3N/2 per dimension-ring) in three
// rounds, versus 3*log2(N) rounds for a radix-2 butterfly.
//
// A butterfly all-reduce and a sum-in-accumulation-memory variant are
// provided for the paper's design-choice ablations.
package collective

import (
	"fmt"

	"anton/internal/machine"
	"anton/internal/metrics"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// InstallRingBroadcast installs multicast patterns so that any node can
// broadcast to the `kind` client of every other node along its dimension-d
// ring. Pattern base+r is the broadcast rooted at ring coordinate r; the
// same pattern id serves every parallel ring because forwarding decisions
// depend only on a node's own coordinate along d. Returns the number of
// pattern ids consumed (the ring size).
func InstallRingBroadcast(m *machine.Machine, d topo.Dim, kind packet.ClientKind, base packet.MulticastID) int {
	n := m.Torus.Size(d)
	plus := (n - 1 + 1) / 2 // nodes covered in the + direction
	minus := n - 1 - plus   // nodes covered in the - direction
	m.Torus.ForEach(func(c topo.Coord) {
		x := c.Get(d)
		for r := 0; r < n; r++ {
			delta := x - r
			if delta < 0 {
				delta += n
			}
			var e packet.McEntry
			switch {
			case delta == 0:
				if plus > 0 {
					e.Out = append(e.Out, topo.Port{Dim: d, Dir: +1})
				}
				if minus > 0 {
					e.Out = append(e.Out, topo.Port{Dim: d, Dir: -1})
				}
			case delta <= plus:
				e.Local = []packet.ClientKind{kind}
				if delta < plus {
					e.Out = append(e.Out, topo.Port{Dim: d, Dir: +1})
				}
			default: // negative-direction arm
				e.Local = []packet.ClientKind{kind}
				if n-delta < minus {
					e.Out = append(e.Out, topo.Port{Dim: d, Dir: -1})
				}
			}
			m.SetMulticast(m.Torus.ID(c), base+packet.MulticastID(r), e)
		}
	})
	return n
}

// Config parameterizes an all-reduce.
type Config struct {
	// Bytes is the wire payload per packet (0 for a pure barrier).
	Bytes int
	// Values is the logical vector length being reduced. The paper's
	// 32-byte reduction carries eight 4-byte quantities.
	Values int
	// CtrBase is the first of four synchronization-counter labels used
	// (one per round plus one for the final local share).
	CtrBase packet.CounterID
	// McBase is the first multicast pattern id; DimX+DimY+DimZ ids are
	// consumed.
	McBase packet.MulticastID
	// PerValueAdd is the software cost of adding one contribution of one
	// value during the redundant sum.
	PerValueAdd sim.Dur
	// RoundOverhead is the fixed software turnaround between receiving a
	// round's data and injecting the next round's packets.
	RoundOverhead sim.Dur
}

// DefaultConfig returns the calibrated configuration for a reduction of
// the given wire payload size, with one logical value per 4-byte quantity.
func DefaultConfig(bytes int) Config {
	return Config{
		Bytes:         bytes,
		Values:        bytes / 4,
		CtrBase:       32,
		McBase:        64,
		PerValueAdd:   2200 * sim.Ps,
		RoundOverhead: 70 * sim.Ns,
	}
}

// AllReduce is a reusable dimension-ordered global all-reduce across every
// node of a machine.
type AllReduce struct {
	m   *machine.Machine
	cfg Config
	gen uint64 // completed generations (for cumulative counter targets)
	// partial holds each node's current partial-sum vector.
	partial [][]float64
	dimOff  [topo.NumDims]packet.MulticastID

	// rec, when a metrics recorder is attached to the machine's
	// simulator, receives one labelled phase span per reduction round
	// (first injection to last node's completion of that round).
	rec        *metrics.Recorder
	roundStart [topo.NumDims]sim.Time
	roundOpen  [topo.NumDims]bool
	roundLeft  [topo.NumDims]int
}

// NewAllReduce installs the multicast patterns for all three dimensions and
// returns a ready all-reduce.
func NewAllReduce(m *machine.Machine, cfg Config) *AllReduce {
	ar := &AllReduce{m: m, cfg: cfg, partial: make([][]float64, m.Torus.Nodes()), rec: m.Metrics()}
	id := cfg.McBase
	for d := topo.X; d < topo.NumDims; d++ {
		ar.dimOff[d] = id
		// Round-k writes are received by processing slice k.
		id += packet.MulticastID(InstallRingBroadcast(m, d, packet.Slice(int(d)), id))
	}
	return ar
}

// Run performs one global all-reduce. initial supplies each node's input
// vector (length cfg.Values; may be nil when Values is 0). done fires at
// the simulated instant the operation has completed on all destination
// nodes — when every slice of every node holds the global sum.
func (ar *AllReduce) Run(initial func(topo.NodeID) []float64, done func(at sim.Time)) {
	ar.gen++
	nodes := ar.m.Torus.Nodes()
	for id := 0; id < nodes; id++ {
		v := make([]float64, ar.cfg.Values)
		if initial != nil {
			copy(v, initial(topo.NodeID(id)))
		}
		ar.partial[id] = v
	}
	remaining := nodes
	perNodeDone := func(at sim.Time) {
		remaining--
		if remaining == 0 && done != nil {
			done(at)
		}
	}
	for d := topo.X; d < topo.NumDims; d++ {
		ar.roundOpen[d] = false
		ar.roundLeft[d] = nodes
	}
	for id := 0; id < nodes; id++ {
		ar.round(topo.NodeID(id), topo.X, perNodeDone)
	}
}

// Result returns node n's copy of the reduced vector after completion.
func (ar *AllReduce) Result(n topo.NodeID) []float64 { return ar.partial[n] }

// round executes reduction round d for node n: broadcast the current
// partial sum to the ring peers' slice d, await their contributions, and
// redundantly compute the new partial sum.
func (ar *AllReduce) round(n topo.NodeID, d topo.Dim, done func(sim.Time)) {
	m := ar.m
	ctx := m.Ctx(n)
	if ar.rec != nil {
		// roundOpen/roundStart are cross-node: the canonically first node
		// entering the round opens the span, so resolve the race at the
		// commit slot.
		at := ctx.Now()
		ctx.Defer(func() {
			if !ar.roundOpen[d] {
				ar.roundOpen[d] = true
				ar.roundStart[d] = at
			}
		})
	}
	ringN := m.Torus.Size(d)
	c := m.Torus.Coord(n)
	r := c.Get(d)
	ctr := ar.cfg.CtrBase + packet.CounterID(d)
	sender := senderSlice(d)
	recvKind := packet.Slice(int(d))
	recv := m.Client(packet.Client{Node: n, Kind: recvKind})

	if ringN > 1 {
		payload := append([]float64(nil), ar.partial[n]...)
		m.Client(packet.Client{Node: n, Kind: sender}).Send(&packet.Packet{
			Kind: packet.Write, Multicast: ar.dimOff[d] + packet.MulticastID(r),
			Counter: ctr, Addr: sumAddr(d, r, ar.cfg.Values), Bytes: ar.cfg.Bytes,
			Payload: payload, Tag: fmt.Sprintf("allreduce-%v", d),
		})
	}
	target := ar.gen * uint64(ringN-1)
	recv.Wait(ctr, target, func() {
		// Redundantly compute the ring sum: own partial + N-1 received.
		sum := ar.partial[n]
		for p := 0; p < ringN; p++ {
			if p == r {
				continue
			}
			vals := recv.Mem(sumAddr(d, p, ar.cfg.Values), ar.cfg.Values)
			for i := range sum {
				sum[i] += vals[i]
			}
		}
		cost := ar.cfg.RoundOverhead + sim.Dur(ar.cfg.Values*ringN)*ar.cfg.PerValueAdd
		ctx.After(cost, func() {
			if ar.rec != nil {
				end := ctx.Now()
				ctx.Defer(func() {
					ar.roundLeft[d]--
					if ar.roundLeft[d] == 0 {
						ar.rec.Span(fmt.Sprintf("all-reduce round %v", d), ar.roundStart[d], end)
					}
				})
			}
			if d < topo.Z {
				ar.round(n, d+1, done)
				return
			}
			ar.share(n, done)
		})
	})
}

// share distributes the global sum from slice 2 to the node's other three
// slices with local writes, completing the operation on this node.
func (ar *AllReduce) share(n topo.NodeID, done func(sim.Time)) {
	m := ar.m
	ctx := m.Ctx(n)
	src := m.Client(packet.Client{Node: n, Kind: packet.Slice2})
	ctr := ar.cfg.CtrBase + 3
	waiting := 3
	for _, k := range []packet.ClientKind{packet.Slice0, packet.Slice1, packet.Slice3} {
		dst := packet.Client{Node: n, Kind: k}
		m.Client(dst).Wait(ctr, ar.gen, func() {
			// All three waits live on node n, so `waiting` is
			// domain-confined; done touches the caller's cross-node
			// completion count and runs at the commit slot.
			waiting--
			if waiting == 0 {
				at := ctx.Now()
				ctx.Defer(func() { done(at) })
			}
		})
		src.Write(dst, ctr, shareAddr(ar.cfg.Values), ar.cfg.Bytes, ar.partial[n]...)
	}
}

// senderSlice is the slice that injects round d's broadcasts: the slice
// that computed the previous round's partial sum (slice 0 initiates).
func senderSlice(d topo.Dim) packet.ClientKind {
	if d == topo.X {
		return packet.Slice0
	}
	return packet.Slice(int(d) - 1)
}

// sumAddr is the preallocated receive slot for the contribution from ring
// position p in round d.
func sumAddr(d topo.Dim, p, values int) int {
	return (int(d)*32 + p) * max(values, 1)
}

func shareAddr(values int) int { return 4096 }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
