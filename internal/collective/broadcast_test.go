package collective

import (
	"testing"

	"anton/internal/machine"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

func TestBroadcastReachesAllNodes(t *testing.T) {
	s := sim.New()
	m := machine.New(s, topo.NewTorus(4, 4, 4), defaultNoc())
	cfg := DefaultConfig(32)
	cfg.McBase = 0
	b := NewBroadcast(m, cfg)
	var doneAt sim.Time = -1
	root := m.Torus.ID(topo.C(1, 2, 3))
	b.Run(root, []float64{42, 7}, func(at sim.Time) { doneAt = at })
	s.Run()
	if doneAt < 0 {
		t.Fatal("broadcast never completed")
	}
	// Every non-root node holds the payload at the generation address.
	addr := 1 * 8
	for id := 0; id < m.Torus.Nodes(); id++ {
		if topo.NodeID(id) == root {
			continue
		}
		got := m.Client(packet.Client{Node: topo.NodeID(id), Kind: packet.Slice0}).Mem(addr, 2)
		if got[0] != 42 || got[1] != 7 {
			t.Fatalf("node %d payload = %v", id, got)
		}
	}
}

func TestBroadcastLatencyReasonable(t *testing.T) {
	// Three dimension-ordered rounds: comparable to (a bit less than) the
	// all-reduce, and far below a naive serial unicast sweep.
	s := sim.New()
	m := machine.Default512(s)
	cfg := DefaultConfig(32)
	cfg.McBase = 0
	b := NewBroadcast(m, cfg)
	var doneAt sim.Time
	b.Run(0, make([]float64, 8), func(at sim.Time) { doneAt = at })
	s.Run()
	us := doneAt.Us()
	if us < 0.5 || us > 2.0 {
		t.Fatalf("512-node broadcast = %.2fus, want ~1us", us)
	}
}

func TestBroadcastRepeated(t *testing.T) {
	s := sim.New()
	m := machine.New(s, topo.NewTorus(2, 2, 2), defaultNoc())
	cfg := DefaultConfig(32)
	cfg.McBase = 0
	b := NewBroadcast(m, cfg)
	for round := 1; round <= 3; round++ {
		var done bool
		b.Run(0, []float64{float64(round)}, func(sim.Time) { done = true })
		s.Run()
		if !done {
			t.Fatalf("round %d never completed", round)
		}
		got := m.Client(packet.Client{Node: 7, Kind: packet.Slice0}).Mem(round*8, 1)
		if got[0] != float64(round) {
			t.Fatalf("round %d payload = %v", round, got[0])
		}
	}
}

func TestBroadcastSingleNode(t *testing.T) {
	s := sim.New()
	m := machine.New(s, topo.NewTorus(1, 1, 1), defaultNoc())
	cfg := DefaultConfig(32)
	cfg.McBase = 0
	b := NewBroadcast(m, cfg)
	var done bool
	b.Run(0, nil, func(sim.Time) { done = true })
	s.Run()
	if !done {
		t.Fatal("degenerate broadcast never completed")
	}
}

func TestBroadcastSingleInjection(t *testing.T) {
	// The root injects one packet per dimension round it participates in;
	// the fan-out happens in the network. Compare against N-1 unicasts.
	s := sim.New()
	m := machine.New(s, topo.NewTorus(4, 4, 4), defaultNoc())
	cfg := DefaultConfig(32)
	cfg.McBase = 0
	b := NewBroadcast(m, cfg)
	b.Run(0, nil, nil)
	s.Run()
	if sent := m.Stats().NodeSent(0); sent != 3 {
		t.Fatalf("root injected %d packets, want 3 (one per dimension)", sent)
	}
	if recv := m.Stats().Received; recv != 63 {
		t.Fatalf("deliveries = %d, want 63", recv)
	}
}
