// Package cluster models the comparison platform of the paper's Table 3
// and Figure 7: a 512-node Xeon cluster with a DDR2 InfiniBand
// interconnect running the Desmond MD software.
//
// The network follows the LogGP cost model: per-message sender and
// receiver CPU overheads, a wire latency, a minimum inter-message gap, and
// a per-byte cost. The constants are calibrated against published
// measurements the paper cites: ~2.2 us small-message MPI latency
// (Roadrunner InfiniBand, Table 1), ~0.55 us per-message cost (Figure 7's
// InfiniBand slope), and the 35.5 us 512-node all-reduce of Section
// IV.B.4.
package cluster

import (
	"math/bits"

	"anton/internal/fault"
	"anton/internal/metrics"
	"anton/internal/sim"
)

// Model holds the LogGP parameters of the cluster interconnect.
type Model struct {
	// SendOverhead (o_s): CPU time to issue one message.
	SendOverhead sim.Dur
	// RecvOverhead (o_r): CPU time to land one message.
	RecvOverhead sim.Dur
	// Latency (L): wire plus switch traversal.
	Latency sim.Dur
	// Gap (g): minimum spacing between message injections at one rank.
	Gap sim.Dur
	// PsPerByte (G): incremental cost per payload byte.
	PsPerByte sim.Dur
	// CollectiveOverhead: per-round software cost inside MPI collectives
	// (buffer management, algorithm control flow).
	CollectiveOverhead sim.Dur
	// MarshalPerStage: data recombination/repackaging cost between stages
	// of staged communication — the processing the paper's Figure 8
	// describes commodity codes doing to keep message counts low.
	MarshalPerStage sim.Dur
}

// DDR2InfiniBand returns the calibrated model.
func DDR2InfiniBand() Model {
	return Model{
		SendOverhead:       450 * sim.Ns,
		RecvOverhead:       450 * sim.Ns,
		Latency:            1260 * sim.Ns,
		Gap:                550 * sim.Ns,
		PsPerByte:          1250 * sim.Ps, // ~6.4 Gbit/s effective at 2 KB
		CollectiveOverhead: 1750 * sim.Ns,
		MarshalPerStage:    9500 * sim.Ns,
	}
}

// PingLatency returns the one-way small-message software-to-software
// latency: the quantity Table 1 surveys.
func (m Model) PingLatency() sim.Dur {
	return m.SendOverhead + m.Latency + m.RecvOverhead
}

// Cluster is an event-driven cluster of N ranks.
type Cluster struct {
	Sim   *sim.Sim
	Model Model
	N     int

	nic []*sim.Resource // per-rank injection (gap/bandwidth) pacing
	cpu []*sim.Resource // per-rank receive processing

	// faults is the fault injector attached to the simulator, or nil.
	// It models fabric-level message loss repaired by a sender-side
	// retransmission timeout (the reliability layer commodity
	// interconnects run in firmware or the MPI transport).
	faults *fault.Injector

	// metrics is the lifecycle recorder attached to the simulator, or
	// nil; it observes per-message software-to-software latencies.
	metrics *metrics.Recorder

	// Hard-failure state (recovery.go); nil/zero unless the plan kills a
	// link or node, so kill-free plans reproduce the old model exactly.
	hard       bool
	failedOver []bool
	rec        RecoveryStats

	// ndom is the PDES rank-block decomposition (see New).
	ndom int
}

// domain maps a rank to its PDES spatial domain: contiguous rank blocks.
func (c *Cluster) domain(rank int) int { return rank * c.ndom / c.N }

// maxDomains caps the PDES rank-block decomposition (see machine's
// equivalent; the considerations match).
const maxDomains = 64

// New builds a cluster of n ranks.
func New(s *sim.Sim, n int, m Model) *Cluster {
	// The cluster model's handlers mutate shared tallies (drop counters,
	// retransmit state) from arbitrary ranks, so it has not been audited
	// for the stage-2 domain-confinement contract: veto it permanently.
	s.SetConfined(false)
	c := &Cluster{Sim: s, Model: m, N: n, faults: fault.FromSim(s), metrics: metrics.FromSim(s)}
	c.ndom = n
	if c.ndom > maxDomains {
		c.ndom = maxDomains
	}
	// Rank-to-rank interactions are never closer than the wire latency,
	// so it is the conservative PDES window for this model.
	s.Partition(c.ndom, m.Latency)
	c.nic = make([]*sim.Resource, n)
	c.cpu = make([]*sim.Resource, n)
	for i := 0; i < n; i++ {
		dom := c.domain(i)
		c.nic[i] = sim.NewResource(s).InDomain(dom)
		c.cpu[i] = sim.NewResource(s).InDomain(dom)
	}
	if c.faults.HardFaults() {
		c.hard = true
		c.failedOver = make([]bool, n)
	}
	return c
}

// Send transmits bytes from src to dst; onRecv fires when the receiving
// rank's software has the message (after its receive overhead). Under a
// fault plan, the fabric may lose the message; the sender detects the
// loss after the plan's timeout and retransmits (paying the injection
// overheads again), repeating until a copy gets through.
func (c *Cluster) Send(src, dst, bytes int, onRecv func(at sim.Time)) {
	m := c.Model
	service := m.Gap
	if bw := sim.Dur(bytes) * m.PsPerByte; bw > service {
		service = bw
	}
	if rec := c.metrics; rec != nil {
		// Latency is measured from the software issuing the send to the
		// receiver software holding the message, so NIC queueing and any
		// timeout-and-retransmit recoveries are part of the sample.
		seq := rec.ClusterSend(src, dst, bytes, c.Sim.Now())
		user := onRecv
		onRecv = func(at sim.Time) {
			rec.ClusterDeliver(seq, dst, at)
			if user != nil {
				user(at)
			}
		}
	}
	attempts := 0
	var attempt func()
	attempt = func() {
		c.nic[src].Acquire(service, func(start sim.Time) {
			if c.hard && c.faults.NodeKilledAt(src, start) {
				// A dead rank issues nothing: the message is lost at the
				// NIC and the receiver's watchdog explains the shortfall.
				c.rec.Lost++
				return
			}
			if c.hard && !c.failedOver[src] {
				if kt, ok := c.faults.FirstLinkKill(src); ok && start >= kt {
					// Primary uplink is dead: one-time path migration to
					// the secondary rail, then retry the injection.
					c.failedOver[src] = true
					c.rec.FailedOver++
					c.Sim.At(start.Add(c.failoverDelay()), attempt)
					return
				}
			}
			if c.faults.Drop(src, attempts) {
				attempts++
				c.Sim.At(start.Add(c.faults.DropTimeout()), attempt)
				return
			}
			arrive := start.Add(m.SendOverhead + m.Latency + sim.Dur(bytes)*m.PsPerByte)
			// Cross-rank hand-off: the delivery events belong to the
			// receiving rank's domain, at least one wire latency ahead.
			c.Sim.AtDomain(c.domain(dst), arrive, func() {
				if c.hard && c.faults.NodeKilledAt(dst, arrive) {
					c.rec.Lost++
					return
				}
				c.cpu[dst].Acquire(m.RecvOverhead, func(s2 sim.Time) {
					c.Sim.At(s2.Add(m.RecvOverhead), func() {
						if onRecv != nil {
							onRecv(c.Sim.Now())
						}
					})
				})
			})
		})
	}
	attempt()
}

// Faults returns the fault injector driving this cluster, or nil.
func (c *Cluster) Faults() *fault.Injector { return c.faults }

// TransferManyMessages sends the given total payload from rank src to rank
// dst split into count equal messages and calls done when the last byte
// has been received — the Figure 7 experiment.
func (c *Cluster) TransferManyMessages(src, dst, totalBytes, count int, done func(at sim.Time)) {
	per := totalBytes / count
	remaining := count
	for i := 0; i < count; i++ {
		bytes := per
		if i == count-1 {
			bytes = totalBytes - per*(count-1)
		}
		c.Send(src, dst, bytes, func(at sim.Time) {
			remaining--
			if remaining == 0 && done != nil {
				done(at)
			}
		})
	}
}

// AllReduce performs a recursive-doubling all-reduce of the given payload
// size across all ranks (N must be a power of two); done fires when every
// rank has the result.
func (c *Cluster) AllReduce(bytes int, done func(at sim.Time)) {
	if c.N&(c.N-1) != 0 {
		panic("cluster: all-reduce requires power-of-two rank count")
	}
	rounds := bits.TrailingZeros(uint(c.N))
	remaining := c.N
	finish := func(at sim.Time) {
		remaining--
		if remaining == 0 && done != nil {
			done(at)
		}
	}
	var stage func(rank, k int)
	recvd := make([]map[int]int, c.N) // rank -> round -> arrivals
	waiting := make([]map[int]func(), c.N)
	for i := range recvd {
		recvd[i] = make(map[int]int)
		waiting[i] = make(map[int]func())
	}
	stage = func(rank, k int) {
		if k >= rounds {
			finish(c.Sim.Now())
			return
		}
		partner := rank ^ (1 << k)
		c.Send(rank, partner, bytes, func(at sim.Time) {
			recvd[partner][k]++
			if fn := waiting[partner][k]; fn != nil && recvd[partner][k] > 0 {
				delete(waiting[partner], k)
				fn()
			}
		})
		proceed := func() {
			c.Sim.After(c.Model.CollectiveOverhead, func() { stage(rank, k+1) })
		}
		if recvd[rank][k] > 0 {
			recvd[rank][k]--
			proceed()
		} else {
			waiting[rank][k] = func() {
				recvd[rank][k]--
				proceed()
			}
			// Under a kill plan the wait may never be satisfied: if the
			// waiter or its partner is dead, proceed without the data.
			rank, k, partner := rank, k, partner
			c.watchCollective(
				func() bool { return waiting[rank][k] != nil },
				func() bool {
					now := c.Sim.Now()
					return c.faults.NodeKilledAt(rank, now) || c.faults.NodeKilledAt(partner, now)
				},
				func() {
					delete(waiting[rank], k)
					proceed()
				},
			)
		}
	}
	for r := 0; r < c.N; r++ {
		stage(r, 0)
	}
}

// StagedNeighborExchange models the commodity-cluster pattern of Figure
// 8a: a three-stage exchange (one stage per dimension, two messages per
// stage) that reaches all 26 neighbours with only six messages per node,
// at the cost of forwarding dependencies and per-stage marshalling. done
// fires when every rank has completed all stages. bytesPerMsg is the
// per-message payload.
func (c *Cluster) StagedNeighborExchange(bytesPerMsg int, done func(at sim.Time)) {
	const stages = 3
	remaining := c.N
	finish := func(at sim.Time) {
		remaining--
		if remaining == 0 && done != nil {
			done(at)
		}
	}
	// Ranks are arranged in a notional 8x8x8 grid; partners along each
	// stage dimension. (Exact neighbour identity does not matter for the
	// switched-fabric cost model: every message costs the same.)
	side := 8
	for c.N < side*side*side {
		side /= 2
	}
	recvd := make([]int, c.N)
	waiting := make([]func(), c.N)
	var stage func(rank, k int)
	stage = func(rank, k int) {
		if k >= stages {
			finish(c.Sim.Now())
			return
		}
		// Two messages (plus and minus neighbours along this dimension).
		stride := 1
		for i := 0; i < k; i++ {
			stride *= side
		}
		up := (rank + stride) % c.N
		down := (rank - stride + c.N) % c.N
		for _, dst := range []int{up, down} {
			c.Send(rank, dst, bytesPerMsg, func(at sim.Time) {
				recvd[dst]++
				if waiting[dst] != nil && recvd[dst] >= 2 {
					fn := waiting[dst]
					waiting[dst] = nil
					fn()
				}
			})
		}
		proceed := func() {
			recvd[rank] -= 2
			// Between stages the node recombines received data for
			// forwarding: the marshalling cost staged communication pays.
			c.Sim.After(c.Model.MarshalPerStage, func() { stage(rank, k+1) })
		}
		if recvd[rank] >= 2 {
			proceed()
		} else {
			waiting[rank] = proceed
			// The stage's senders to this rank are exactly up and down
			// (the exchange is symmetric); degrade when enough of them
			// are dead to explain the shortfall.
			rank, up, down := rank, up, down
			c.watchCollective(
				func() bool { return waiting[rank] != nil },
				func() bool {
					now := c.Sim.Now()
					if c.faults.NodeKilledAt(rank, now) {
						return true
					}
					dead := 0
					if c.faults.NodeKilledAt(up, now) {
						dead++
					}
					if c.faults.NodeKilledAt(down, now) {
						dead++
					}
					return dead >= 2-recvd[rank]
				},
				func() {
					fn := waiting[rank]
					waiting[rank] = nil
					recvd[rank] = 2
					fn()
				},
			)
		}
	}
	for r := 0; r < c.N; r++ {
		stage(r, 0)
	}
}
