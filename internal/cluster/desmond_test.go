package cluster

import (
	"testing"

	"anton/internal/sim"
)

func TestDesmondPhaseCalibration(t *testing.T) {
	// Table 3's Desmond column (communication): range-limited 108 us, FFT
	// convolution 230 us, thermostat 78 us, long-range 416 us. The model
	// must land within 15%.
	pt := Measure(512, DDR2InfiniBand())
	cases := []struct {
		name   string
		got    float64
		wantUs float64
	}{
		{"range-limited", pt.RangeLimitedComm.Us(), 108},
		{"FFT convolution", pt.FFTComm.Us(), 230},
		{"thermostat", pt.ThermostatComm.Us(), 78},
		{"long-range", pt.LongRangeComm.Us(), 416},
	}
	for _, c := range cases {
		if c.got < c.wantUs*0.85 || c.got > c.wantUs*1.15 {
			t.Errorf("Desmond %s comm = %.1fus, want %.0fus +/- 15%%", c.name, c.got, c.wantUs)
		}
	}
}

func TestDesmondLongRangeIsSumOfPhases(t *testing.T) {
	// The long-range step's communication is the three phases run back to
	// back; allow a small delta for phase-boundary effects.
	pt := Measure(512, DDR2InfiniBand())
	sum := pt.RangeLimitedComm + pt.FFTComm + pt.ThermostatComm
	diff := float64(pt.LongRangeComm-sum) / float64(sum)
	if diff < -0.05 || diff > 0.05 {
		t.Fatalf("long-range %v vs phase sum %v (%.1f%% apart)", pt.LongRangeComm, sum, 100*diff)
	}
}

func TestDesmondComputeConstants(t *testing.T) {
	// The published per-phase totals must emerge from comm + compute.
	d := NewDesmond(New(sim.New(), 1, DDR2InfiniBand()))
	pt := Measure(512, DDR2InfiniBand())
	rlTotal := (pt.RangeLimitedComm + d.RangeLimitedCompute).Us()
	lrTotal := (pt.LongRangeComm + d.LongRangeCompute).Us()
	if rlTotal < 300 || rlTotal > 400 {
		t.Errorf("Desmond range-limited total = %.0fus, want ~351", rlTotal)
	}
	if lrTotal < 660 || lrTotal > 900 {
		t.Errorf("Desmond long-range total = %.0fus, want ~779", lrTotal)
	}
}

func TestAntonDesmondCommRatio(t *testing.T) {
	// The paper's headline: Anton's critical-path communication is ~1/27
	// of Desmond's. The Anton side is asserted in mdmap's production test;
	// here we pin the Desmond average so the ratio cannot drift silently.
	pt := Measure(512, DDR2InfiniBand())
	avg := (pt.RangeLimitedComm + pt.LongRangeComm).Us() / 2
	if avg < 220 || avg > 300 {
		t.Fatalf("Desmond average comm = %.0fus, want ~262", avg)
	}
}
