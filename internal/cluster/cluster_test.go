package cluster

import (
	"testing"

	"anton/internal/sim"
)

func TestPingLatencyCalibration(t *testing.T) {
	// Published MPI small-message latencies for DDR-era InfiniBand are
	// ~2.2 us (Table 1's Roadrunner row).
	m := DDR2InfiniBand()
	us := m.PingLatency().Us()
	if us < 1.8 || us > 2.6 {
		t.Fatalf("ping latency = %.2fus, want ~2.16us", us)
	}
}

func TestSendDelivers(t *testing.T) {
	s := sim.New()
	c := New(s, 4, DDR2InfiniBand())
	var at sim.Time = -1
	c.Send(0, 3, 0, func(tm sim.Time) { at = tm })
	s.Run()
	if at < 0 {
		t.Fatal("message never delivered")
	}
	if got := sim.Dur(at); got != c.Model.PingLatency() {
		t.Fatalf("small message latency %v, want %v", got, c.Model.PingLatency())
	}
}

func TestSendBandwidthTerm(t *testing.T) {
	s := sim.New()
	c := New(s, 2, DDR2InfiniBand())
	var small, big sim.Time
	c.Send(0, 1, 0, func(tm sim.Time) { small = tm })
	s.Run()
	s2 := sim.New()
	c2 := New(s2, 2, DDR2InfiniBand())
	c2.Send(0, 1, 2048, func(tm sim.Time) { big = tm })
	s2.Run()
	want := sim.Dur(2048) * c.Model.PsPerByte
	if big.Sub(small) != want {
		t.Fatalf("2KB adds %v, want %v", big.Sub(small), want)
	}
}

func TestGapSerializesMessages(t *testing.T) {
	s := sim.New()
	c := New(s, 2, DDR2InfiniBand())
	var last sim.Time
	n := 10
	got := 0
	for i := 0; i < n; i++ {
		c.Send(0, 1, 0, func(tm sim.Time) {
			got++
			last = tm
		})
	}
	s.Run()
	if got != n {
		t.Fatalf("delivered %d of %d", got, n)
	}
	// n messages gap-paced: total >= (n-1)*gap + ping.
	min := sim.Dur(n-1)*c.Model.Gap + c.Model.PingLatency()
	if sim.Dur(last) < min {
		t.Fatalf("last delivery %v, want >= %v", last, min)
	}
}

func TestTransferManyMessagesGrowsWithCount(t *testing.T) {
	// Figure 7's InfiniBand curve: splitting 2 KB into many messages costs
	// far more than one message — roughly 8x at 64 messages.
	times := map[int]sim.Time{}
	for _, count := range []int{1, 16, 64} {
		s := sim.New()
		c := New(s, 2, DDR2InfiniBand())
		var at sim.Time
		c.TransferManyMessages(0, 1, 2048, count, func(tm sim.Time) { at = tm })
		s.Run()
		times[count] = at
	}
	if times[16] <= times[1] || times[64] <= times[16] {
		t.Fatalf("transfer time not increasing: %v", times)
	}
	ratio := float64(times[64]) / float64(times[1])
	if ratio < 5 || ratio > 12 {
		t.Fatalf("64-message normalized cost %.1f, want ~8 (Fig. 7b)", ratio)
	}
	// Absolute: 1 message ~4.5-5.5us, 64 messages ~35-45us.
	if us := times[1].Us(); us < 3.5 || us > 6.5 {
		t.Fatalf("single 2KB message = %.2fus, want ~5us", us)
	}
	if us := times[64].Us(); us < 30 || us > 50 {
		t.Fatalf("64-message 2KB = %.2fus, want ~40us", us)
	}
}

func TestAllReduce512Calibration(t *testing.T) {
	// Section IV.B.4: the same 32-byte reduction Anton does in 1.77us takes
	// 35.5us on the 512-node InfiniBand cluster.
	s := sim.New()
	c := New(s, 512, DDR2InfiniBand())
	var at sim.Time = -1
	c.AllReduce(32, func(tm sim.Time) { at = tm })
	s.Run()
	if at < 0 {
		t.Fatal("all-reduce never completed")
	}
	us := at.Us()
	if us < 30 || us > 41 {
		t.Fatalf("512-rank all-reduce = %.1fus, want ~35.5us", us)
	}
}

func TestAllReduceRequiresPowerOfTwo(t *testing.T) {
	s := sim.New()
	c := New(s, 6, DDR2InfiniBand())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.AllReduce(8, nil)
}

func TestStagedExchangeCompletes(t *testing.T) {
	s := sim.New()
	c := New(s, 512, DDR2InfiniBand())
	var at sim.Time = -1
	c.StagedNeighborExchange(3000, func(tm sim.Time) { at = tm })
	s.Run()
	if at < 0 {
		t.Fatal("staged exchange never completed")
	}
	// Three stages with marshalling: tens of microseconds.
	us := at.Us()
	if us < 20 || us > 90 {
		t.Fatalf("staged exchange = %.1fus", us)
	}
}

func TestDeterministicCluster(t *testing.T) {
	run := func() sim.Time {
		s := sim.New()
		c := New(s, 64, DDR2InfiniBand())
		var at sim.Time
		c.AllReduce(32, func(tm sim.Time) { at = tm })
		s.Run()
		return at
	}
	if run() != run() {
		t.Fatal("cluster model is nondeterministic")
	}
}
