package cluster

import (
	"testing"

	"anton/internal/fault"
	"anton/internal/sim"
)

func hardCluster(t *testing.T, n int, plan string) *Cluster {
	t.Helper()
	s := sim.New()
	fault.Attach(s, fault.MustParsePlan(plan))
	return New(s, n, DDR2InfiniBand())
}

// A killed uplink costs one path-migration delay on the rank's next send
// and nothing afterwards.
func TestClusterUplinkFailover(t *testing.T) {
	base := func() sim.Dur {
		s := sim.New()
		c := New(s, 8, DDR2InfiniBand())
		var at sim.Time
		c.Send(3, 4, 32, func(tm sim.Time) { at = tm })
		s.Run()
		return sim.Dur(at)
	}()

	c := hardCluster(t, 8, "seed=1,killlink=3:X+@0ns")
	var first, second sim.Time
	c.Send(3, 4, 32, func(tm sim.Time) {
		first = tm
		c.Send(3, 4, 32, func(tm2 sim.Time) { second = tm2 })
	})
	c.Sim.Run()
	if first == 0 || second == 0 {
		t.Fatalf("sends after an uplink kill never delivered: %v", c.Recovery())
	}
	if got := sim.Dur(first); got != base+defaultFailover {
		t.Fatalf("first send after uplink kill took %v, want base %v + failover %v", got, base, defaultFailover)
	}
	if rec := c.Recovery(); rec.FailedOver != 1 || rec.Lost != 0 || rec.Degraded != 0 {
		t.Fatalf("one failover and nothing else expected: %v", rec)
	}
	// The second send runs on the migrated path at full speed: no
	// further failover penalty (it's back-to-back, so just the gap).
	if gap := second.Sub(first); gap > sim.Dur(base) {
		t.Fatalf("second send took %v after the first — secondary rail should be full speed", gap)
	}
}

// Messages to and from a dead rank are lost; an all-reduce including the
// dead rank still completes on every live rank, degraded.
func TestClusterAllReduceDeadRank(t *testing.T) {
	c := hardCluster(t, 8, "seed=1,killnode=5@0ns,wdog=5us")
	var at sim.Time
	c.AllReduce(32, func(tm sim.Time) { at = tm })
	c.Sim.Run()
	if at == 0 {
		t.Fatalf("all-reduce with a dead rank never completed: %v", c.Recovery())
	}
	rec := c.Recovery()
	if rec.Lost == 0 {
		t.Fatalf("dead rank's messages should be lost: %v", rec)
	}
	if rec.Degraded == 0 {
		t.Fatalf("waits on the dead rank should complete degraded: %v", rec)
	}
}

// The staged neighbour exchange and the FFT all-to-all also survive a
// dead rank (the Desmond long-range step composes all three patterns).
func TestClusterDesmondDeadRankCompletes(t *testing.T) {
	c := hardCluster(t, 64, "seed=1,killnode=9@0ns,wdog=5us")
	d := NewDesmond(c)
	var at sim.Time
	d.LongRangeComm(func(tm sim.Time) { at = tm })
	c.Sim.Run()
	if at == 0 {
		t.Fatalf("Desmond long-range step with a dead rank never completed: %v", c.Recovery())
	}
	if rec := c.Recovery(); rec.Degraded == 0 {
		t.Fatalf("expected degraded collective waits: %v", rec)
	}
}

// Recovery is deterministic: identical kill plans produce identical
// completion times and tallies.
func TestClusterRecoveryDeterministic(t *testing.T) {
	run := func() (sim.Time, RecoveryStats) {
		c := hardCluster(t, 16, "seed=2,killnode=3@1us,killlink=7:Y-@0ns,wdog=5us")
		var at sim.Time
		c.AllReduce(64, func(tm sim.Time) { at = tm })
		c.Sim.Run()
		return at, c.Recovery()
	}
	t1, r1 := run()
	t2, r2 := run()
	if t1 != t2 || r1 != r2 {
		t.Fatalf("nondeterministic cluster recovery: (%v, %v) vs (%v, %v)", t1, r1, t2, r2)
	}
}

// A plan without kills leaves the hard path disabled entirely: the
// all-reduce completes at exactly the fault-free time with zero tallies.
func TestClusterKillFreeIdentity(t *testing.T) {
	run := func(plan string) sim.Time {
		s := sim.New()
		if plan != "" {
			fault.Attach(s, fault.MustParsePlan(plan))
		}
		c := New(s, 8, DDR2InfiniBand())
		var at sim.Time
		c.AllReduce(32, func(tm sim.Time) { at = tm })
		s.Run()
		if rec := c.Recovery(); rec != (RecoveryStats{}) {
			t.Fatalf("kill-free plan produced recovery tallies: %v", rec)
		}
		return at
	}
	if a, b := run(""), run("seed=7"); a != b {
		t.Fatalf("kill-free plan perturbed the all-reduce: %v vs %v", a, b)
	}
}
