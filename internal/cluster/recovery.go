package cluster

import (
	"fmt"

	"anton/internal/sim"
)

// Hard-failure survival for the cluster model. A killed rank (killnode)
// stops sending and receiving: its outgoing messages are lost at the NIC
// and messages addressed to it vanish at arrival. A killed uplink
// (killlink naming any port of the rank) is survivable: switched fabrics
// run redundant rails, so the rank pays a one-time path-migration delay
// on its next send and then continues at full speed.
//
// Collectives survive both through a watchdog on every stalled wait: a
// rank whose expected contributions cannot arrive (the waiter itself or
// enough of its senders are dead) proceeds degraded — the MPI
// fault-tolerance analogue of the machine model's synchronization-counter
// watchdog (machine/recovery.go). All of it is gated on the plan actually
// killing something, so kill-free plans schedule nothing extra and stay
// bit-identical to the pre-recovery model.

// defaultFailover is the one-time path-migration delay after an uplink
// kill when the plan sets no retransmission timeout to derive it from.
const defaultFailover = 10 * sim.Us

// watchdogMaxChecks bounds re-arms of one collective watchdog so a logic
// error degenerates into a panic rather than an unbounded event stream.
const watchdogMaxChecks = 1024

// RecoveryStats counts the hard-failure events the cluster survived.
type RecoveryStats struct {
	// Lost counts messages lost to dead ranks: dropped at the sender's
	// NIC (source dead) or at arrival (destination dead).
	Lost int
	// FailedOver counts ranks that migrated to a secondary uplink after
	// their primary was killed.
	FailedOver int
	// Degraded counts collective waits completed without a dead rank's
	// contribution.
	Degraded int
}

func (r RecoveryStats) String() string {
	return fmt.Sprintf("lost=%d failedover=%d degraded=%d", r.Lost, r.FailedOver, r.Degraded)
}

// Recovery returns the hard-failure tallies (all zero without kills).
func (c *Cluster) Recovery() RecoveryStats { return c.rec }

// failoverDelay is the one-time path-migration cost: the plan's drop
// timeout when set (the transport's detection deadline), else a default.
func (c *Cluster) failoverDelay() sim.Dur {
	if d := c.faults.DropTimeout(); d > 0 {
		return d
	}
	return defaultFailover
}

// watchCollective guards one stalled collective wait. pending reports
// whether the wait is still outstanding; explained whether the shortfall
// is attributable to dead ranks (or the waiter itself being dead);
// degrade completes the wait without the missing data. The check re-arms
// every watchdog deadline until the data arrives or the shortfall is
// explained — senders that are merely slow (e.g. mid-failover) are never
// preempted.
func (c *Cluster) watchCollective(pending func() bool, explained func() bool, degrade func()) {
	if !c.hard {
		return
	}
	deadline := c.faults.WatchdogDeadline()
	checks := 0
	var check func()
	check = func() {
		if !pending() {
			return
		}
		checks++
		if checks > watchdogMaxChecks {
			panic("cluster: collective watchdog exceeded max checks without progress")
		}
		if explained() {
			c.rec.Degraded++
			degrade()
			return
		}
		c.Sim.After(deadline, check)
	}
	c.Sim.After(deadline, check)
}
