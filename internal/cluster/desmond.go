package cluster

import "anton/internal/sim"

// Desmond models the communication phases of the Desmond MD software
// (Bowers et al., the paper's reference [12]) running the DHFR benchmark
// on the 512-node cluster: the comparison column of Table 3. Desmond's
// midpoint method exchanges positions and forces with neighbours in a
// three-stage staged pattern (six messages per node, Figure 8a), performs
// the FFT with transpose-based all-to-all rounds, and computes the
// thermostat with MPI all-reduces. Compute-phase durations are constants
// taken from the published per-step breakdown of [15].
type Desmond struct {
	C *Cluster

	// PosBytes/ForceBytes: per-message payloads of the staged exchanges.
	PosBytes, ForceBytes int
	// FFTRounds transpose rounds, each an all-to-all among FFTGroup ranks
	// exchanging FFTBytes messages.
	FFTRounds, FFTGroup, FFTBytes int
	// ThermoSoftware: thermostat software time outside the all-reduces.
	ThermoSoftware sim.Dur

	// Published compute (non-communication) times per phase.
	RangeLimitedCompute sim.Dur
	LongRangeCompute    sim.Dur
	FFTCompute          sim.Dur
	ThermostatCompute   sim.Dur
}

// DesmondDefaults returns the calibrated Desmond parameters without a
// cluster attached: the single source the event-driven model (NewDesmond)
// and the closed-form fast path (internal/analytic) both draw from.
func DesmondDefaults() Desmond {
	return Desmond{
		PosBytes:            2200,
		ForceBytes:          2200,
		FFTRounds:           3,
		FFTGroup:            64,
		FFTBytes:            256,
		ThermoSoftware:      7 * sim.Us,
		RangeLimitedCompute: 243 * sim.Us,
		LongRangeCompute:    363 * sim.Us,
		FFTCompute:          60 * sim.Us,
		ThermostatCompute:   21 * sim.Us,
	}
}

// NewDesmond returns the calibrated Desmond model on cluster c.
func NewDesmond(c *Cluster) *Desmond {
	d := DesmondDefaults()
	d.C = c
	return &d
}

// RangeLimitedComm runs the communication of a range-limited time step:
// the staged position exchange followed by the staged force exchange.
func (d *Desmond) RangeLimitedComm(done func(at sim.Time)) {
	d.C.StagedNeighborExchange(d.PosBytes, func(sim.Time) {
		d.C.StagedNeighborExchange(d.ForceBytes, done)
	})
}

// FFTComm runs the communication of the FFT-based convolution:
// FFTRounds transpose rounds, each an all-to-all within groups, with
// marshalling between rounds.
func (d *Desmond) FFTComm(done func(at sim.Time)) {
	d.round(0, done)
}

func (d *Desmond) round(k int, done func(at sim.Time)) {
	if k >= d.FFTRounds {
		done(d.C.Sim.Now())
		return
	}
	d.groupAllToAll(func(sim.Time) {
		d.C.Sim.After(d.C.Model.MarshalPerStage, func() { d.round(k+1, done) })
	})
}

// groupAllToAll: every rank exchanges one message with each other rank of
// its group; done fires when all ranks have received everything.
func (d *Desmond) groupAllToAll(done func(at sim.Time)) {
	c := d.C
	g := d.FFTGroup
	if g > c.N {
		g = c.N
	}
	remaining := c.N
	expected := g - 1
	got := make([]int, c.N)
	finished := make([]bool, c.N)
	finish := func(dst int, at sim.Time) {
		if finished[dst] {
			return
		}
		finished[dst] = true
		remaining--
		if remaining == 0 {
			done(at)
		}
	}
	for base := 0; base < c.N; base += g {
		for i := 0; i < g; i++ {
			src := base + i
			for j := 0; j < g; j++ {
				if i == j {
					continue
				}
				dst := base + j
				c.Send(src, dst, d.FFTBytes, func(at sim.Time) {
					got[dst]++
					if got[dst] >= expected {
						finish(dst, at)
					}
				})
			}
		}
		// Under a kill plan a rank's shortfall may be permanent: degrade
		// once enough of its group peers are dead to explain it.
		for j := 0; j < g; j++ {
			dst := base + j
			base := base
			c.watchCollective(
				func() bool { return !finished[dst] },
				func() bool {
					now := c.Sim.Now()
					if c.Faults().NodeKilledAt(dst, now) {
						return true
					}
					dead := 0
					for i := 0; i < g; i++ {
						if base+i != dst && c.Faults().NodeKilledAt(base+i, now) {
							dead++
						}
					}
					return dead >= expected-got[dst]
				},
				func() { finish(dst, c.Sim.Now()) },
			)
		}
	}
}

// ThermostatComm runs the thermostat's communication: two 32-byte
// all-reduces (kinetic energy out, scale factors back) plus software
// overhead.
func (d *Desmond) ThermostatComm(done func(at sim.Time)) {
	d.C.AllReduce(32, func(sim.Time) {
		d.C.AllReduce(32, func(sim.Time) {
			d.C.Sim.After(d.ThermoSoftware, func() { done(d.C.Sim.Now()) })
		})
	})
}

// LongRangeComm runs the communication of a long-range time step: the
// range-limited exchanges plus the FFT convolution plus the thermostat.
func (d *Desmond) LongRangeComm(done func(at sim.Time)) {
	d.RangeLimitedComm(func(sim.Time) {
		d.FFTComm(func(sim.Time) {
			d.ThermostatComm(done)
		})
	})
}

// PhaseTimes measures each communication phase on a fresh simulated
// cluster and returns the Table 3 Desmond column (all values sim.Dur).
type PhaseTimes struct {
	RangeLimitedComm sim.Dur
	FFTComm          sim.Dur
	ThermostatComm   sim.Dur
	LongRangeComm    sim.Dur
}

// Measure runs the three comm phases independently (each on a fresh
// cluster at rest, as the paper's per-phase profiling does).
func Measure(n int, model Model) PhaseTimes { return MeasureSim(n, model, sim.New) }

// MeasureSim is Measure with a caller-supplied simulator constructor,
// which is how the harness attaches its fault plan to the Desmond
// baseline: each phase runs on a fresh simulator from newSim.
func MeasureSim(n int, model Model, newSim func() *sim.Sim) PhaseTimes {
	var pt PhaseTimes
	run := func(f func(d *Desmond, done func(sim.Time))) sim.Dur {
		s := newSim()
		d := NewDesmond(New(s, n, model))
		var at sim.Time
		f(d, func(tm sim.Time) { at = tm })
		s.Run()
		return sim.Dur(at)
	}
	pt.RangeLimitedComm = run(func(d *Desmond, done func(sim.Time)) { d.RangeLimitedComm(done) })
	pt.FFTComm = run(func(d *Desmond, done func(sim.Time)) { d.FFTComm(done) })
	pt.ThermostatComm = run(func(d *Desmond, done func(sim.Time)) { d.ThermostatComm(done) })
	pt.LongRangeComm = run(func(d *Desmond, done func(sim.Time)) { d.LongRangeComm(done) })
	return pt
}
