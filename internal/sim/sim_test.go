package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestUnitsAndConversions(t *testing.T) {
	if Ns != 1000*Ps || Us != 1000*Ns || Ms != 1000*Us {
		t.Fatal("unit constants inconsistent")
	}
	if got := (162 * Ns).Ns(); got != 162 {
		t.Fatalf("Dur.Ns = %v, want 162", got)
	}
	if got := Time(1_500_000).Us(); got != 1.5 {
		t.Fatalf("Time.Us = %v, want 1.5", got)
	}
	if got := NsDur(8.8); got != 8800 {
		t.Fatalf("NsDur(8.8) = %v, want 8800", got)
	}
	if Time(2500).Add(500).Sub(Time(2500)) != 500 {
		t.Fatal("Add/Sub roundtrip failed")
	}
	if s := (5 * Ns).String(); s != "5.000ns" {
		t.Fatalf("Dur.String = %q", s)
	}
	if s := Time(1234).String(); s != "1.234ns" {
		t.Fatalf("Time.String = %q", s)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var got []Time
	for _, d := range []Dur{50, 10, 30, 20, 40} {
		d := d
		s.After(d, func() { got = append(got, s.Now()) })
	}
	s.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 || got[0] != 10 || got[4] != 50 {
		t.Fatalf("unexpected event times: %v", got)
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(42, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO at %d: %v", i, order[:i+1])
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 1000 {
			s.After(1, rec)
		}
	}
	s.After(1, rec)
	end := s.Run()
	if depth != 1000 {
		t.Fatalf("depth = %d, want 1000", depth)
	}
	if end != 1000 {
		t.Fatalf("end time = %v, want 1000", end)
	}
	if s.Fired() != 1000 {
		t.Fatalf("Fired = %d, want 1000", s.Fired())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.After(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative delay")
		}
	}()
	s.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	fired := 0
	for _, d := range []Dur{10, 20, 30, 40} {
		s.After(d, func() { fired++ })
	}
	if s.RunUntil(25) {
		t.Fatal("RunUntil claimed drained with events pending")
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if s.Now() != 25 {
		t.Fatalf("now = %v, want 25", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	if !s.RunFor(100) {
		t.Fatal("RunFor should drain queue")
	}
	if fired != 4 {
		t.Fatalf("fired = %d, want 4", fired)
	}
}

// Property: for any batch of non-negative delays, Run visits them in
// nondecreasing time order and ends at the max delay.
func TestRunOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var visited []Time
		var max Dur
		for _, d16 := range delays {
			d := Dur(d16)
			if d > max {
				max = d
			}
			s.After(d, func() { visited = append(visited, s.Now()) })
		}
		end := s.Run()
		if len(delays) > 0 && end != Time(max) {
			return false
		}
		return sort.SliceIsSorted(visited, func(i, j int) bool { return visited[i] < visited[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceSerializesFIFO(t *testing.T) {
	s := New()
	r := NewResource(s)
	var starts []Time
	// Three back-to-back acquisitions of 100 ps each at t=0.
	for i := 0; i < 3; i++ {
		r.Acquire(100, func(st Time) { starts = append(starts, st) })
	}
	s.Run()
	want := []Time{0, 100, 200}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("starts = %v, want %v", starts, want)
		}
	}
	if r.BusyTime() != 300 {
		t.Fatalf("busy = %v, want 300", r.BusyTime())
	}
	if r.Uses() != 3 {
		t.Fatalf("uses = %d, want 3", r.Uses())
	}
}

func TestResourceIdleGap(t *testing.T) {
	s := New()
	r := NewResource(s)
	r.Acquire(10, nil)
	s.After(100, func() {
		start := r.Acquire(10, nil)
		if start != 100 {
			t.Errorf("start after idle gap = %v, want 100", start)
		}
	})
	s.Run()
	if r.FreeAt() != 110 {
		t.Fatalf("FreeAt = %v, want 110", r.FreeAt())
	}
}

// Property: resource service intervals never overlap and respect FIFO order
// regardless of the arrival pattern.
func TestResourceNoOverlapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		s := New()
		r := NewResource(s)
		n := 1 + rng.Intn(40)
		type span struct{ start, end Time }
		var spans []span
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(500))
			service := Dur(1 + rng.Intn(50))
			s.At(at, func() {
				r.Acquire(service, func(st Time) {
					spans = append(spans, span{st, st.Add(service)})
				})
			})
		}
		s.Run()
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end {
				t.Fatalf("trial %d: overlapping service spans %v then %v", trial, spans[i-1], spans[i])
			}
		}
	}
}

func TestCounterThresholdWait(t *testing.T) {
	s := New()
	c := NewCounter(s)
	var firedAt Time = -1
	c.Wait(3, 36*Ns, func() { firedAt = s.Now() })
	for i := 1; i <= 3; i++ {
		d := Dur(i) * 100 * Ns
		s.At(Time(d), func() { c.Inc() })
	}
	s.Run()
	want := Time(300*Ns + 36*Ns)
	if firedAt != want {
		t.Fatalf("fired at %v, want %v", firedAt, want)
	}
	if c.Value() != 3 {
		t.Fatalf("value = %d, want 3", c.Value())
	}
}

func TestCounterAlreadySatisfied(t *testing.T) {
	s := New()
	c := NewCounter(s)
	c.Add(5)
	var fired bool
	s.After(10, func() {
		c.Wait(5, 7, func() {
			fired = true
			if s.Now() != 17 {
				t.Errorf("fired at %v, want 17", s.Now())
			}
		})
	})
	s.Run()
	if !fired {
		t.Fatal("satisfied wait never fired")
	}
}

func TestCounterMultipleWaiters(t *testing.T) {
	s := New()
	c := NewCounter(s)
	fired := make(map[uint64]Time)
	for _, target := range []uint64{2, 4, 6} {
		target := target
		c.Wait(target, 0, func() { fired[target] = s.Now() })
	}
	for i := 1; i <= 6; i++ {
		s.At(Time(i*10), func() { c.Inc() })
	}
	s.Run()
	for target, at := range fired {
		if want := Time(target * 10); at != want {
			t.Fatalf("target %d fired at %v, want %v", target, at, want)
		}
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d waiters, want 3", len(fired))
	}
}

func TestCounterResetPanicsWithWaiters(t *testing.T) {
	s := New()
	c := NewCounter(s)
	c.Wait(1, 0, func() {})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on Reset with waiters")
		}
	}()
	c.Reset()
}

func TestCounterResetAfterPhase(t *testing.T) {
	s := New()
	c := NewCounter(s)
	c.Wait(2, 0, func() {})
	c.Add(2)
	s.Run()
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("value after reset = %d", c.Value())
	}
}

// Determinism: two identical runs produce identical event interleavings.
func TestDeterminism(t *testing.T) {
	run := func() []int {
		s := New()
		var log []int
		rng := rand.New(rand.NewSource(123))
		for i := 0; i < 500; i++ {
			i := i
			s.At(Time(rng.Intn(100)), func() { log = append(log, i) })
		}
		s.Run()
		return log
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	s := New()
	var next func()
	count := 0
	next = func() {
		count++
		if count < b.N {
			s.After(1, next)
		}
	}
	s.After(1, next)
	b.ResetTimer()
	s.Run()
}
