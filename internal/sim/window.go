package sim

// Stage-2 window execution: within one conservative window each active
// domain's handlers run on a worker goroutine (fused with that domain's
// queue integration), and the coordinator then replays a per-domain
// execution log at the merge point to assign the canonical global sequence
// numbers and run the deferred cross-domain effects — serially, in exactly
// the (time, seq) order the sequential executor would have used.
//
// Why the result is bit-identical to the sequential kernel:
//
//   - Batch events enter the window with their real sequence numbers, and
//     a worker executes them in (at, seq) order merged with the domain's
//     in-window children. A child scheduled into its own domain below the
//     horizon gets a provisional key (provBit | creation index), which
//     compares after every real sequence number at the same timestamp —
//     matching the canonical order, where children drawn during the window
//     always receive later sequence numbers than every pre-window event.
//     Two provisional children compare by creation index, which equals
//     their canonical-assignment order at replay. Within one domain the
//     local execution order therefore equals the canonical order
//     restricted to that domain.
//   - Every scheduling call and every Defer is appended to one per-event
//     action log in call order. Replay walks the merged logs in canonical
//     event order and processes actions in call order, assigning s.seq++
//     to each schedule exactly where the sequential kernel would have
//     (defers run inline there, so their nested schedules also land in
//     the right slots).
//   - Cross-domain scheduling below the horizon panics: the conservative
//     lookahead guarantees real models never do it, and anything else is
//     a confinement violation that must be loud.
//
// The executor engages per window (execWindow vs extract+commit in
// pdes.run) only when the simulator is confined (Sim.SetConfined), more
// than one domain is active, and the population clears the grain; both
// paths reproduce the sequential order exactly, so mixing them across
// windows is safe.

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// provBit marks a provisional (not yet canonically numbered) key; it
// compares after every real sequence number.
const provBit = uint64(1) << 63

const (
	actSched = uint8(iota) // a scheduling call (At/After/AtDomain/...)
	actDefer               // a Defer(fn) — run at replay
)

// waction is one logged action of one handler, in call order.
type waction struct {
	at   Time
	fn   func()
	dom  int32
	prov int32 // provisional index when executed locally in-window, else -1
	kind uint8
}

// wlogEntry is one executed event in a domain's window log. key is the
// event's real sequence number, or provBit|provIdx until replay resolves
// it (a domain's first log entry is always real: the local child heap is
// empty when the window starts). prov records whether the entry began
// provisional — replay resolves key in place (clearing provBit), so the
// key alone can't tell a resolved child from a batch event, and only
// batch events leave the resident population at replay.
type wlogEntry struct {
	at   Time
	key  uint64
	nact int32
	prov bool
}

// levent is a pending in-window local child on a worker's private heap.
type levent struct {
	at  Time
	key uint64
	fn  func()
}

// winCtx is one domain's window-execution context. During the parallel
// phase exactly one worker owns it; during replay only the coordinator
// touches it. Slices are reused across windows.
type winCtx struct {
	dom     int32
	ndom    int
	now     Time
	horizon Time
	entries []wlogEntry
	acts    []waction
	lheap   []levent
	prov    []uint64 // provisional index -> real seq, filled at replay
	err     any      // captured handler panic, re-raised by the coordinator
	ei, ai  int      // replay cursors (entry, action)
}

func (wx *winCtx) reset(horizon Time) {
	wx.now = 0
	wx.horizon = horizon
	wx.entries = wx.entries[:0]
	wx.acts = wx.acts[:0]
	wx.lheap = wx.lheap[:0]
	wx.prov = wx.prov[:0]
	wx.err = nil
	wx.ei, wx.ai = 0, 0
}

// schedule logs one scheduling call from this domain's handler. Local
// sub-horizon children additionally enter the worker's private heap for
// in-window execution; everything else is posted at replay.
func (wx *winCtx) schedule(dom int32, t Time, fn func()) {
	if t < wx.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, wx.now))
	}
	if dom < 0 || int(dom) >= wx.ndom {
		dom = int32(uint32(dom) % uint32(wx.ndom))
	}
	if t < wx.horizon {
		if dom != wx.dom {
			panic(fmt.Sprintf("sim: cross-domain schedule from domain %d into domain %d at %v inside the lookahead window ending %v (confinement violation)",
				wx.dom, dom, t, wx.horizon))
		}
		idx := int32(len(wx.prov))
		wx.prov = append(wx.prov, 0)
		wx.acts = append(wx.acts, waction{kind: actSched, at: t, dom: dom, prov: idx, fn: fn})
		wx.lpush(levent{at: t, key: provBit | uint64(idx), fn: fn})
		return
	}
	wx.acts = append(wx.acts, waction{kind: actSched, at: t, dom: dom, prov: -1, fn: fn})
}

func (wx *winCtx) deferFn(fn func()) {
	wx.acts = append(wx.acts, waction{kind: actDefer, prov: -1, fn: fn})
}

func (wx *winCtx) lless(a, b *levent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.key < b.key
}

func (wx *winCtx) lpush(e levent) {
	wx.lheap = append(wx.lheap, e)
	s := wx.lheap
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !wx.lless(&s[i], &s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (wx *winCtx) lpop() levent {
	s := wx.lheap
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = levent{}
	wx.lheap = s[:n]
	s = wx.lheap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && wx.lless(&s[l], &s[least]) {
			least = l
		}
		if r < n && wx.lless(&s[r], &s[least]) {
			least = r
		}
		if least == i {
			return top
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
}

// execute runs the domain's window: the extracted batch (sorted — it was
// popped from a heap) merged with the in-window children the handlers
// create, in the domain-local canonical order.
func (wx *winCtx) execute(batch []event) {
	defer func() {
		if r := recover(); r != nil {
			wx.err = r
		}
	}()
	bi := 0
	for bi < len(batch) || len(wx.lheap) > 0 {
		var at Time
		var fn func()
		var key uint64
		useLocal := len(wx.lheap) > 0
		if useLocal && bi < len(batch) {
			l, b := &wx.lheap[0], &batch[bi]
			// provBit makes every local child compare after every real
			// seq at the same instant — the canonical tie-break.
			if b.at < l.at || (b.at == l.at && b.seq < l.key) {
				useLocal = false
			}
		}
		if useLocal {
			l := wx.lpop()
			at, key, fn = l.at, l.key, l.fn
		} else {
			b := &batch[bi]
			at, key, fn = b.at, b.seq, b.fn
			batch[bi] = event{}
			bi++
		}
		wx.now = at
		wx.entries = append(wx.entries, wlogEntry{at: at, key: key, prov: key&provBit != 0})
		na := len(wx.acts)
		fn()
		wx.entries[len(wx.entries)-1].nact = int32(len(wx.acts) - na)
	}
}

// useExec reports whether the next window should run stage 2.
func (p *pdes) useExec(s *Sim) bool {
	return s.confined && s.kworkers > 1 && len(p.active) > 1 && p.count >= p.grain
}

// execWindow runs one stage-2 window: fused integrate+execute per active
// domain on the workers, then the canonical replay on the coordinator.
func (p *pdes) execWindow(s *Sim, horizon Time) {
	s.execWindows++
	act := p.active
	if p.wx == nil {
		p.wx = make([]*winCtx, p.ndom)
	}
	for _, d := range act {
		q := &p.dq[d]
		if q.wx == nil {
			q.wx = &winCtx{dom: int32(d), ndom: p.ndom}
		}
		q.wx.reset(horizon)
		p.wx[d] = q.wx
	}
	w := s.kworkers
	if w > len(act) {
		w = len(act)
	}
	s.inParallel = true
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(act) {
					return
				}
				q := &p.dq[act[i]]
				q.integrate(horizon)
				q.wx.execute(q.batch)
			}
		}()
	}
	wg.Wait()
	s.inParallel = false
	for _, d := range act {
		if err := p.wx[d].err; err != nil {
			for _, dd := range act {
				p.wx[dd] = nil
			}
			panic(err)
		}
	}
	p.replay(s, act, horizon)
	for _, d := range act {
		p.wx[d] = nil
	}
}

// rhead returns the canonical key of domain d's next unreplayed log entry
// (always resolved: entries are resolved in place as the cursor advances,
// and a domain's first entry is never provisional).
func (p *pdes) rhead(d int) (Time, uint64) {
	wx := p.wx[d]
	e := &wx.entries[wx.ei]
	return e.at, e.key
}

func (p *pdes) rless(a, b int) bool {
	at1, k1 := p.rhead(a)
	at2, k2 := p.rhead(b)
	if at1 != at2 {
		return at1 < at2
	}
	return k1 < k2
}

func (p *pdes) siftRHeads(i int) {
	h := p.heads
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && p.rless(h[l], h[least]) {
			least = l
		}
		if r < n && p.rless(h[r], h[least]) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// replay is the canonical merge point: it walks the per-domain execution
// logs in global (time, seq) order, advancing the clock and firing count
// for each logged event, assigning the canonical sequence number to every
// logged schedule (recording it for provisional children, posting real
// events otherwise), and running the deferred functions. Overflow events —
// scheduled sub-horizon by deferred functions — execute fully, interleaved
// at their canonical slots.
func (p *pdes) replay(s *Sim, act []int, horizon Time) {
	p.inWindow = true
	p.horizon = horizon
	p.heads = p.heads[:0]
	for _, d := range act {
		if len(p.wx[d].entries) > 0 {
			p.heads = append(p.heads, d)
		}
	}
	for i := len(p.heads)/2 - 1; i >= 0; i-- {
		p.siftRHeads(i)
	}
	for {
		useOverflow := false
		switch {
		case len(p.heads) > 0 && len(p.overflow) > 0:
			at, key := p.rhead(p.heads[0])
			o := &p.overflow[0]
			useOverflow = o.at < at || (o.at == at && o.seq < key)
		case len(p.overflow) > 0:
			useOverflow = true
		case len(p.heads) == 0:
			p.inWindow = false
			return
		}
		if useOverflow {
			e := p.overflow.pop()
			p.count--
			s.exec(&e)
			continue
		}
		wx := p.wx[p.heads[0]]
		ent := &wx.entries[wx.ei]
		s.now = ent.at
		s.curDom = wx.dom
		s.nfired++
		if !ent.prov {
			// Batch events leave the resident population here; in-window
			// children were created and consumed inside the window and
			// never entered it.
			p.count--
		}
		end := wx.ai + int(ent.nact)
		for wx.ai < end {
			a := &wx.acts[wx.ai]
			wx.ai++
			if a.kind == actSched {
				s.seq++
				if a.prov >= 0 {
					wx.prov[a.prov] = s.seq
				} else {
					p.schedule(event{at: a.at, seq: s.seq, dom: a.dom, fn: a.fn})
				}
			} else {
				a.fn()
			}
			a.fn = nil
		}
		wx.ei++
		if wx.ei == len(wx.entries) {
			n := len(p.heads) - 1
			p.heads[0] = p.heads[n]
			p.heads = p.heads[:n]
		} else if e := &wx.entries[wx.ei]; e.key&provBit != 0 {
			// Resolve the next head's key: its creator replayed already
			// (parents precede children in the log), so the mapping is set.
			e.key = wx.prov[e.key&^provBit]
		}
		p.siftRHeads(0)
	}
}
