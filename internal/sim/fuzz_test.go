// Differential fuzzing of the PDES kernel through the full machine
// model: for a randomized workload — topology, fault plan, kill
// schedule, and handler mix all derived from the fuzz input — the
// parallel executor must reproduce the sequential kernel's trajectory
// byte for byte across a workers x grain grid. The workload runs on the
// machine layer (in an external test package, since machine builds on
// sim), so the fuzzer sweeps the real conversion surface: canonical
// send-sequence renumbering, the sharded in-order ledger, per-node
// statistics, multicast fan-out, counter wakes, FIFO delivery, fault
// draws, and — under kill plans — watchdog recovery, which vetoes
// stage 2 and exercises the stage-1 fallback instead.
package sim_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"anton/internal/collective"
	"anton/internal/fault"
	"anton/internal/machine"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// fuzzTopos are the torus shapes the fuzzer cycles through: enough nodes
// for several PDES domains, small enough that a seed runs in
// milliseconds.
var fuzzTopos = [][3]int{{2, 2, 2}, {4, 2, 2}, {4, 4, 2}, {4, 4, 4}}

// fuzzPlan derives a fault plan from the selector: none, soft faults
// (corruption + stalls), scheduled outage windows, a killed link, or a
// killed node. Hard-fault selections exercise watchdog recovery and the
// stage-1 fallback (recovery vetoes confinement); the others keep
// stage 2 eligible.
func fuzzPlan(sel uint8, seed uint64, nodes int) fault.Plan {
	p := fault.Plan{Seed: seed}
	switch sel % 5 {
	case 0:
		// fault-free
	case 1:
		p.CorruptRate = 0.02
		p.RetryLatency = 30 * sim.Ns
		p.StallRate = 0.01
		p.StallDur = 100 * sim.Ns
	case 2:
		l := fault.Link{Node: int(seed) % nodes, Port: topo.Port{Dim: topo.X, Dir: +1}}
		p.Down = []fault.Window{{Link: l, From: sim.Time(500 * sim.Ns), Until: sim.Time(2 * sim.Us)}}
	case 3:
		l := fault.Link{Node: int(seed) % nodes, Port: topo.Port{Dim: topo.Y, Dir: -1}}
		p.KillLinks = []fault.LinkKill{{Link: l, At: sim.Time(1 * sim.Us)}}
		p.Watchdog = 15 * sim.Us
	case 4:
		p.KillNodes = []fault.NodeKill{{Node: int(seed) % nodes, At: sim.Time(1 * sim.Us)}}
		p.Watchdog = 15 * sim.Us
	}
	return p
}

// fuzzTrajectory runs the derived workload and renders every observable
// the determinism contract covers: the canonical send-sequence stream,
// the delivery log (in canonical commit order), per-node traffic
// counts, the fault tally, and the final clock and event count.
func fuzzTrajectory(seed uint64, topoSel, faultSel uint8, workers, grain int) string {
	shape := fuzzTopos[int(topoSel)%len(fuzzTopos)]
	tor := topo.NewTorus(shape[0], shape[1], shape[2])
	s := sim.New()
	if grain > 0 {
		s.SetGrain(grain)
	}
	s.SetWorkers(workers)
	plan := fuzzPlan(faultSel, seed, tor.Nodes())
	if !plan.IsZero() || plan.Seed != 0 {
		fault.Attach(s, plan)
	}
	m := machine.New(s, tor, noc.DefaultModel())
	// The workload below keeps every handler domain-confined (logs go
	// through the machine hooks, which commit canonically), so stage 2 is
	// legal whenever the plan has not vetoed it.
	s.SetConfined(true)

	var log strings.Builder
	m.OnSend = func(pkt *packet.Packet, at sim.Time) {
		fmt.Fprintf(&log, "S %d %s %v\n", pkt.Seq, pkt.Tag, at)
	}
	m.OnDeliver = func(pkt *packet.Packet, dst packet.Client, at sim.Time) {
		fmt.Fprintf(&log, "D %d %s %v->%v %v\n", pkt.Seq, pkt.Tag, pkt.Src, dst, at)
	}

	// Ring-broadcast patterns along X deliver to every ring peer's
	// slice 1: the multicast path, including in-order multicast tickets.
	ringN := collective.InstallRingBroadcast(m, topo.X, packet.Slice1, 0)

	rng := rand.New(rand.NewSource(int64(seed)))
	nodes := tor.Nodes()
	// expected counts the counted writes addressed to each (client,
	// counter), so every registered wait has an exactly reachable target
	// (kill plans may still lose packets; recovery then reissues or
	// degrades the wait deterministically).
	type ctrKey struct {
		c   packet.Client
		ctr packet.CounterID
	}
	expected := make(map[ctrKey]uint64)

	const sends = 120
	for i := 0; i < sends; i++ {
		srcNode := topo.NodeID(rng.Intn(nodes))
		at := sim.Time(rng.Int63n(int64(4 * sim.Us)))
		tag := fmt.Sprintf("p%d", i)
		switch rng.Intn(5) {
		case 0: // unicast counted write, sometimes in order
			dst := packet.Client{Node: topo.NodeID(rng.Intn(nodes)), Kind: packet.Slice(rng.Intn(4))}
			ctr := packet.CounterID(rng.Intn(3))
			inOrder := rng.Intn(2) == 0
			expected[ctrKey{dst, ctr}]++
			src := m.Client(packet.Client{Node: srcNode, Kind: packet.Slice0})
			m.Ctx(srcNode).At(at, func() {
				src.Send(&packet.Packet{
					Kind: packet.Write, Dst: dst, Multicast: packet.NoMulticast,
					Counter: ctr, Addr: 64 * i, Bytes: 32, InOrder: inOrder, Tag: tag,
				})
			})
		case 1: // accumulation
			dst := packet.Client{Node: topo.NodeID(rng.Intn(nodes)), Kind: packet.Accum(rng.Intn(2))}
			ctr := packet.CounterID(3 + rng.Intn(2))
			expected[ctrKey{dst, ctr}]++
			src := m.Client(packet.Client{Node: srcNode, Kind: packet.Slice1})
			m.Ctx(srcNode).At(at, func() {
				src.Send(&packet.Packet{
					Kind: packet.Accumulate, Dst: dst, Multicast: packet.NoMulticast,
					Counter: ctr, Addr: 8 * (i % 16), Bytes: 24, Payload: []float64{float64(i)}, Tag: tag,
				})
			})
		case 2: // message into the destination slice's FIFO
			dst := packet.Client{Node: topo.NodeID(rng.Intn(nodes)), Kind: packet.Slice(rng.Intn(4))}
			src := m.Client(packet.Client{Node: srcNode, Kind: packet.Slice2})
			m.Ctx(srcNode).At(at, func() {
				src.Send(&packet.Packet{
					Kind: packet.Message, Dst: dst, Multicast: packet.NoMulticast,
					Counter: packet.NoCounter, Bytes: 64, Tag: tag,
				})
			})
		case 3: // X-ring multicast counted write, sometimes in order
			c := tor.Coord(srcNode)
			ctr := packet.CounterID(5)
			inOrder := rng.Intn(2) == 0
			for r := 0; r < ringN; r++ {
				if r == c.X {
					continue
				}
				peer := tor.ID(topo.C(r, c.Y, c.Z))
				expected[ctrKey{packet.Client{Node: peer, Kind: packet.Slice1}, ctr}]++
			}
			src := m.Client(packet.Client{Node: srcNode, Kind: packet.Slice0})
			m.Ctx(srcNode).At(at, func() {
				src.Send(&packet.Packet{
					Kind: packet.Write, Multicast: packet.MulticastID(c.X),
					Counter: ctr, Addr: 4096, Bytes: 16, InOrder: inOrder, Tag: tag,
				})
			})
		case 4: // chained handler: a wait that sends onward when it fires
			dst := packet.Client{Node: topo.NodeID(rng.Intn(nodes)), Kind: packet.Slice3}
			ctr := packet.CounterID(6)
			expected[ctrKey{dst, ctr}]++
			src := m.Client(packet.Client{Node: srcNode, Kind: packet.Slice0})
			next := packet.Client{Node: topo.NodeID(rng.Intn(nodes)), Kind: packet.Slice2}
			target := expected[ctrKey{dst, ctr}]
			m.Client(dst).Wait(ctr, target, func() {
				// Executes in dst's domain: relay from dst's own node.
				m.Client(dst).Send(&packet.Packet{
					Kind: packet.Message, Dst: next, Multicast: packet.NoMulticast,
					Counter: packet.NoCounter, Bytes: 8, Tag: tag + "-relay",
				})
			})
			m.Ctx(srcNode).At(at, func() {
				src.Send(&packet.Packet{
					Kind: packet.Write, Dst: dst, Multicast: packet.NoMulticast,
					Counter: ctr, Addr: 0, Bytes: 32, Tag: tag,
				})
			})
		}
	}
	// Drain one FIFO with the polling loop so Pop interleaves with
	// deliveries.
	drainNode := topo.NodeID(int(seed) % nodes)
	f := m.Client(packet.Client{Node: drainNode, Kind: packet.Slice0}).FIFO()
	var pump func()
	pump = func() {
		f.Pop(func(pkt *packet.Packet) {
			// The log is shared state: append at the canonical commit slot,
			// like the machine's own hooks do.
			m.Defer(drainNode, func() { fmt.Fprintf(&log, "F %s\n", pkt.Tag) })
			pump()
		})
	}
	m.Ctx(drainNode).At(sim.Time(1*sim.Us), pump)

	s.Run()

	st := m.Stats()
	fmt.Fprintf(&log, "stats %d %d %d %d\n", st.Sent, st.Received, st.SentBytes, st.RecvBytes)
	for n := 0; n < nodes; n++ {
		fmt.Fprintf(&log, "node %d %d %d\n", n, st.NodeSent(topo.NodeID(n)), st.NodeReceived(topo.NodeID(n)))
	}
	if fs := m.Faults(); fs != nil {
		fmt.Fprintf(&log, "faults %v\n", fs.Stats())
	}
	fmt.Fprintf(&log, "end %v %d\n", s.Now(), s.Fired())
	return log.String()
}

// FuzzPDESDifferential is the differential fuzz target: any divergence
// between the sequential kernel and the parallel executor — at any
// worker count, domain count (via topology), or grain — is a bug in the
// determinism contract, regardless of what the workload does.
func FuzzPDESDifferential(f *testing.F) {
	// Seed corpus: every topology and every fault-plan class, plus a few
	// extra seeds for handler-mix variety. ci.sh runs these as regular
	// tests.
	for sel := uint8(0); sel < 5; sel++ {
		f.Add(uint64(11+sel), sel, sel)
	}
	f.Add(uint64(1), uint8(3), uint8(0))
	f.Add(uint64(2), uint8(2), uint8(1))
	f.Add(uint64(99), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, topoSel, faultSel uint8) {
		want := fuzzTrajectory(seed, topoSel, faultSel, 1, 0)
		for _, workers := range []int{2, 8} {
			for _, grain := range []int{1, 0} { // 1 forces windows parallel; 0 keeps the default
				got := fuzzTrajectory(seed, topoSel, faultSel, workers, grain)
				if got != want {
					t.Fatalf("seed=%d topo=%d fault=%d workers=%d grain=%d: trajectory diverged from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
						seed, topoSel, faultSel, workers, grain, diffHead(want, got), diffHead(got, want))
				}
			}
		}
	})
}

// diffHead returns the first few lines around the first difference, so
// a failing fuzz case prints a usable report instead of two full logs.
func diffHead(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := range la {
		if i >= len(lb) || la[i] != lb[i] {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			hi := i + 3
			if hi > len(la) {
				hi = len(la)
			}
			return fmt.Sprintf("(first divergence at line %d)\n%s", i, strings.Join(la[lo:hi], "\n"))
		}
	}
	return "(prefix identical)"
}
