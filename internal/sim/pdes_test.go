package sim

import (
	"math/rand"
	"testing"
)

// pdesWorkload drives a kernel with a randomized but seeded event graph
// shaped like the torus models: D spatial domains, cross-domain hand-offs
// never closer than the lookahead, intra-domain work at arbitrary
// sub-lookahead delays (including zero), bursts at shared instants, and
// window-boundary timestamps (exact multiples of the lookahead, and one
// tick either side). It returns the observed firing log.
func pdesWorkload(s *Sim, domains int, lookahead Dur, seed int64, n int) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	var log []uint64
	var id uint64
	var spawn func(dom int, depth int)
	spawn = func(dom int, depth int) {
		id++
		me := id
		// Delays stress the window machinery: sub-lookahead intra-domain
		// hops, exact window-boundary landings, and >lookahead jumps.
		var d Dur
		cross := false
		switch rng.Intn(6) {
		case 0:
			d = 0 // same-instant chain
		case 1:
			d = Dur(rng.Int63n(int64(lookahead))) // inside the window
		case 2:
			d = lookahead // exactly one window out
		case 3:
			d = lookahead + Dur(rng.Intn(3)) - 1 // boundary +/- one tick
		case 4:
			d = lookahead + Dur(rng.Int63n(int64(lookahead)*3)) // far
			cross = true
		case 5:
			d = lookahead * Dur(1+rng.Intn(4)) // multiple boundaries
			cross = true
		}
		target := dom
		if cross {
			target = rng.Intn(domains)
		}
		fn := func() {
			log = append(log, me)
			if depth < 4 && rng.Intn(10) < 6 {
				spawn(target, depth+1)
			}
			if depth < 2 && rng.Intn(10) < 3 {
				spawn(target, depth+1)
			}
		}
		if cross {
			s.AfterDomain(target, d, fn)
		} else {
			s.After(d, fn)
		}
	}
	for i := 0; i < n; i++ {
		s.AtDomain(rng.Intn(domains), Time(rng.Int63n(int64(lookahead)*10)), func() {})
		spawn(rng.Intn(domains), 0)
	}
	s.Run()
	return log
}

// The PDES executor must commit exactly the sequential executor's event
// order — that is the whole determinism contract — for any worker count,
// any grain (goroutines forced on or off), and any domain count.
func TestPDESEquivalentToSequential(t *testing.T) {
	const lookahead = 40 * Ns
	for _, domains := range []int{2, 7, 64} {
		seq := New()
		want := pdesWorkload(seq, domains, lookahead, 42, 200)
		if len(want) < 200 {
			t.Fatalf("domains=%d: only %d events fired", domains, len(want))
		}
		for _, workers := range []int{2, 4, 8} {
			for _, grain := range []int{1, DefaultGrain} {
				s := New()
				s.SetGrain(grain)
				s.Partition(domains, lookahead)
				s.SetWorkers(workers)
				got := pdesWorkload(s, domains, lookahead, 42, 200)
				if len(got) != len(want) {
					t.Fatalf("domains=%d workers=%d grain=%d: fired %d events, sequential fired %d",
						domains, workers, grain, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("domains=%d workers=%d grain=%d: commit order diverged at event %d: got id %d, want %d",
							domains, workers, grain, i, got[i], want[i])
					}
				}
				if s.Fired() != seq.Fired() || s.Now() != seq.Now() {
					t.Fatalf("domains=%d workers=%d grain=%d: fired/clock %d/%v, want %d/%v",
						domains, workers, grain, s.Fired(), s.Now(), seq.Fired(), seq.Now())
				}
			}
		}
	}
}

// Same-instant events scheduled from different domains must fire in
// scheduling (FIFO) order — the canonical tie-break — not in domain or
// arrival order.
func TestPDESSameInstantCrossDomain(t *testing.T) {
	s := New()
	s.SetGrain(1)
	s.Partition(8, 10*Ns)
	s.SetWorkers(4)
	var got []int
	at := Time(100 * Ns)
	for i := 0; i < 32; i++ {
		i := i
		s.AtDomain(i%8, at, func() { got = append(got, i) })
	}
	// A pre-burst event scheduling three more at the burst instant from
	// yet another domain: they must fire after the 32 already queued.
	s.AtDomain(3, 5*Time(Ns), func() {
		for j := 32; j < 35; j++ {
			j := j
			s.AtDomain(j%8, at, func() { got = append(got, j) })
		}
	})
	s.Run()
	if len(got) != 35 {
		t.Fatalf("fired %d events, want 35", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d fired event %d: same-instant cross-domain events out of FIFO order (%v)", i, v, got)
		}
	}
}

// Events scheduled mid-window for inside the window (the overflow path)
// must interleave with already-extracted batch events in timestamp order:
// an event at t+1 scheduled while committing t runs before a batch event
// at t+2.
func TestPDESWindowOverflowOrdering(t *testing.T) {
	s := New()
	s.SetGrain(1)
	s.Partition(4, 100*Ns)
	s.SetWorkers(2)
	var got []string
	s.AtDomain(0, 10, func() {
		got = append(got, "first")
		// Lands inside the current window, between the two batch events.
		s.After(5, func() { got = append(got, "overflow") })
	})
	s.AtDomain(1, 20, func() { got = append(got, "second") })
	s.Run()
	want := []string{"first", "overflow", "second"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// RunUntil under the PDES executor must match the sequential executor's
// semantics exactly: inclusive deadline, clock advanced to the deadline
// when events remain, clock left at the last event when drained.
func TestPDESRunUntil(t *testing.T) {
	build := func(parallel bool) (*Sim, *[]Time) {
		s := New()
		if parallel {
			s.SetGrain(1)
			s.Partition(4, 7*Ns)
			s.SetWorkers(4)
		}
		var fired []Time
		for _, at := range []Time{5, 25, 25, 60, 61, 200} {
			at := at
			s.AtDomain(int(at)%4, at*Time(Ns), func() { fired = append(fired, s.Now()) })
		}
		return s, &fired
	}
	seq, seqFired := build(false)
	par, parFired := build(true)
	for _, deadline := range []Time{25 * Time(Ns), 60 * Time(Ns), 199 * Time(Ns), 500 * Time(Ns)} {
		a := seq.RunUntil(deadline)
		b := par.RunUntil(deadline)
		if a != b {
			t.Fatalf("deadline %v: drained %v (parallel) vs %v (sequential)", deadline, b, a)
		}
		if seq.Now() != par.Now() {
			t.Fatalf("deadline %v: clock %v (parallel) vs %v (sequential)", deadline, par.Now(), seq.Now())
		}
		if len(*seqFired) != len(*parFired) {
			t.Fatalf("deadline %v: fired %d (parallel) vs %d (sequential)", deadline, len(*parFired), len(*seqFired))
		}
	}
	for i := range *seqFired {
		if (*seqFired)[i] != (*parFired)[i] {
			t.Fatalf("firing times diverged at %d: %v vs %v", i, (*parFired)[i], (*seqFired)[i])
		}
	}
}

// Step must work on a partitioned simulator (the sequential debugging
// path over domain queues) and interleave correctly with windowed Run.
func TestPDESStepInterop(t *testing.T) {
	s := New()
	s.SetGrain(1)
	s.Partition(4, 10*Ns)
	s.SetWorkers(4)
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		s.AtDomain(i%4, Time(i)*Time(Ns), func() { got = append(got, i) })
	}
	if !s.Step() || !s.Step() {
		t.Fatal("Step returned false with events pending")
	}
	if s.Pending() != 6 {
		t.Fatalf("Pending = %d after two steps, want 6", s.Pending())
	}
	s.Run()
	if s.Step() {
		t.Fatal("Step returned true on a drained simulator")
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d fired event %d (%v)", i, v, got)
		}
	}
}

// Reconfiguring the decomposition or worker count mid-simulation must
// migrate resident events without perturbing the canonical order.
func TestPDESReconfigureMigration(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 12; i++ {
		i := i
		s.At(Time(i/3)*Time(10*Ns), func() { got = append(got, i) })
	}
	s.Partition(4, 10*Ns) // still sequential: workers=1
	s.SetWorkers(4)       // engage: events migrate into domain queues
	if s.Pending() != 12 {
		t.Fatalf("Pending = %d after engage, want 12", s.Pending())
	}
	s.RunUntil(10 * Time(10*Ns) / 10)
	s.SetWorkers(1) // disengage mid-run: events migrate back
	if s.pd != nil {
		t.Fatal("pd still engaged after SetWorkers(1)")
	}
	s.SetWorkers(6) // and forward again
	s.Run()
	if len(got) != 12 {
		t.Fatalf("fired %d events, want 12", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d fired event %d: migration broke canonical order (%v)", i, v, got)
		}
	}
}

// The race-detector stress test: a large randomized workload with the
// goroutine threshold forced to 1 so every window spawns workers, at
// GOMAXPROCS parallelism. Run under -race (ci.sh does), any unsynchronized
// sharing between the window workers and the commit goroutine is caught
// here; the result is additionally checked against the sequential order.
func TestPDESRaceStress(t *testing.T) {
	const lookahead = 13 * Ns
	seq := New()
	want := pdesWorkload(seq, 32, lookahead, 7, 600)
	s := New()
	s.SetGrain(1)
	s.Partition(32, lookahead)
	s.SetWorkers(0) // GOMAXPROCS
	got := pdesWorkload(s, 32, lookahead, 7, 600)
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("commit order diverged at event %d under parallel extraction", i)
		}
	}
}

// Pending must count resident events across domain queues, inboxes and
// the overflow heap.
func TestPDESPending(t *testing.T) {
	s := New()
	s.SetGrain(1)
	s.Partition(4, 10*Ns)
	s.SetWorkers(2)
	for i := 0; i < 10; i++ {
		s.AtDomain(i%4, Time(i)*Time(Ns), func() {})
	}
	if s.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", s.Pending())
	}
	if s.Fired() != 10 {
		t.Fatalf("Fired = %d, want 10", s.Fired())
	}
}

// A pinned Resource must keep its service events in its domain while
// preserving FIFO service order and exact start times versus an unpinned
// sequential run.
func TestPDESResourceDomainPinned(t *testing.T) {
	run := func(parallel bool) []Time {
		s := New()
		if parallel {
			s.SetGrain(1)
			s.Partition(2, 10*Ns)
			s.SetWorkers(2)
		}
		r := NewResource(s).InDomain(1)
		var starts []Time
		for i := 0; i < 5; i++ {
			s.AtDomain(0, Time(i)*Time(3*Ns), func() {
				r.Acquire(7*Ns, func(start Time) { starts = append(starts, start) })
			})
		}
		s.Run()
		return starts
	}
	want := run(false)
	got := run(true)
	if len(got) != len(want) {
		t.Fatalf("got %d service starts, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("service start %d: %v, want %v", i, got[i], want[i])
		}
	}
}
