package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// pdesWorkload drives a kernel with a randomized but seeded event graph
// shaped like the torus models: D spatial domains, cross-domain hand-offs
// never closer than the lookahead, intra-domain work at arbitrary
// sub-lookahead delays (including zero), bursts at shared instants, and
// window-boundary timestamps (exact multiples of the lookahead, and one
// tick either side). It returns the observed firing log.
func pdesWorkload(s *Sim, domains int, lookahead Dur, seed int64, n int) []uint64 {
	log := seedPDESWorkload(s, domains, lookahead, seed, n)
	s.Run()
	return *log
}

// seedPDESWorkload schedules the randomized event graph without running
// it, so tests can interleave RunUntil stops, reconfiguration, and
// snapshots with the workload. The returned pointer observes the firing
// log as it grows.
func seedPDESWorkload(s *Sim, domains int, lookahead Dur, seed int64, n int) *[]uint64 {
	rng := rand.New(rand.NewSource(seed))
	log := new([]uint64)
	var id uint64
	var spawn func(dom int, depth int)
	spawn = func(dom int, depth int) {
		id++
		me := id
		// Delays stress the window machinery: sub-lookahead intra-domain
		// hops, exact window-boundary landings, and >lookahead jumps.
		var d Dur
		cross := false
		switch rng.Intn(6) {
		case 0:
			d = 0 // same-instant chain
		case 1:
			d = Dur(rng.Int63n(int64(lookahead))) // inside the window
		case 2:
			d = lookahead // exactly one window out
		case 3:
			d = lookahead + Dur(rng.Intn(3)) - 1 // boundary +/- one tick
		case 4:
			d = lookahead + Dur(rng.Int63n(int64(lookahead)*3)) // far
			cross = true
		case 5:
			d = lookahead * Dur(1+rng.Intn(4)) // multiple boundaries
			cross = true
		}
		target := dom
		if cross {
			target = rng.Intn(domains)
		}
		fn := func() {
			*log = append(*log, me)
			if depth < 4 && rng.Intn(10) < 6 {
				spawn(target, depth+1)
			}
			if depth < 2 && rng.Intn(10) < 3 {
				spawn(target, depth+1)
			}
		}
		if cross {
			s.AfterDomain(target, d, fn)
		} else {
			s.After(d, fn)
		}
	}
	for i := 0; i < n; i++ {
		s.AtDomain(rng.Intn(domains), Time(rng.Int63n(int64(lookahead)*10)), func() {})
		spawn(rng.Intn(domains), 0)
	}
	return log
}

// The PDES executor must commit exactly the sequential executor's event
// order — that is the whole determinism contract — for any worker count,
// any grain (goroutines forced on or off), and any domain count.
func TestPDESEquivalentToSequential(t *testing.T) {
	const lookahead = 40 * Ns
	for _, domains := range []int{2, 7, 64} {
		seq := New()
		want := pdesWorkload(seq, domains, lookahead, 42, 200)
		if len(want) < 200 {
			t.Fatalf("domains=%d: only %d events fired", domains, len(want))
		}
		for _, workers := range []int{2, 4, 8} {
			for _, grain := range []int{1, DefaultGrain} {
				s := New()
				s.SetGrain(grain)
				s.Partition(domains, lookahead)
				s.SetWorkers(workers)
				got := pdesWorkload(s, domains, lookahead, 42, 200)
				if len(got) != len(want) {
					t.Fatalf("domains=%d workers=%d grain=%d: fired %d events, sequential fired %d",
						domains, workers, grain, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("domains=%d workers=%d grain=%d: commit order diverged at event %d: got id %d, want %d",
							domains, workers, grain, i, got[i], want[i])
					}
				}
				if s.Fired() != seq.Fired() || s.Now() != seq.Now() {
					t.Fatalf("domains=%d workers=%d grain=%d: fired/clock %d/%v, want %d/%v",
						domains, workers, grain, s.Fired(), s.Now(), seq.Fired(), seq.Now())
				}
			}
		}
	}
}

// Same-instant events scheduled from different domains must fire in
// scheduling (FIFO) order — the canonical tie-break — not in domain or
// arrival order.
func TestPDESSameInstantCrossDomain(t *testing.T) {
	s := New()
	s.SetGrain(1)
	s.Partition(8, 10*Ns)
	s.SetWorkers(4)
	var got []int
	at := Time(100 * Ns)
	for i := 0; i < 32; i++ {
		i := i
		s.AtDomain(i%8, at, func() { got = append(got, i) })
	}
	// A pre-burst event scheduling three more at the burst instant from
	// yet another domain: they must fire after the 32 already queued.
	s.AtDomain(3, 5*Time(Ns), func() {
		for j := 32; j < 35; j++ {
			j := j
			s.AtDomain(j%8, at, func() { got = append(got, j) })
		}
	})
	s.Run()
	if len(got) != 35 {
		t.Fatalf("fired %d events, want 35", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d fired event %d: same-instant cross-domain events out of FIFO order (%v)", i, v, got)
		}
	}
}

// Events scheduled mid-window for inside the window (the overflow path)
// must interleave with already-extracted batch events in timestamp order:
// an event at t+1 scheduled while committing t runs before a batch event
// at t+2.
func TestPDESWindowOverflowOrdering(t *testing.T) {
	s := New()
	s.SetGrain(1)
	s.Partition(4, 100*Ns)
	s.SetWorkers(2)
	var got []string
	s.AtDomain(0, 10, func() {
		got = append(got, "first")
		// Lands inside the current window, between the two batch events.
		s.After(5, func() { got = append(got, "overflow") })
	})
	s.AtDomain(1, 20, func() { got = append(got, "second") })
	s.Run()
	want := []string{"first", "overflow", "second"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// RunUntil under the PDES executor must match the sequential executor's
// semantics exactly: inclusive deadline, clock advanced to the deadline
// when events remain, clock left at the last event when drained.
func TestPDESRunUntil(t *testing.T) {
	build := func(parallel bool) (*Sim, *[]Time) {
		s := New()
		if parallel {
			s.SetGrain(1)
			s.Partition(4, 7*Ns)
			s.SetWorkers(4)
		}
		var fired []Time
		for _, at := range []Time{5, 25, 25, 60, 61, 200} {
			at := at
			s.AtDomain(int(at)%4, at*Time(Ns), func() { fired = append(fired, s.Now()) })
		}
		return s, &fired
	}
	seq, seqFired := build(false)
	par, parFired := build(true)
	for _, deadline := range []Time{25 * Time(Ns), 60 * Time(Ns), 199 * Time(Ns), 500 * Time(Ns)} {
		a := seq.RunUntil(deadline)
		b := par.RunUntil(deadline)
		if a != b {
			t.Fatalf("deadline %v: drained %v (parallel) vs %v (sequential)", deadline, b, a)
		}
		if seq.Now() != par.Now() {
			t.Fatalf("deadline %v: clock %v (parallel) vs %v (sequential)", deadline, par.Now(), seq.Now())
		}
		if len(*seqFired) != len(*parFired) {
			t.Fatalf("deadline %v: fired %d (parallel) vs %d (sequential)", deadline, len(*parFired), len(*seqFired))
		}
	}
	for i := range *seqFired {
		if (*seqFired)[i] != (*parFired)[i] {
			t.Fatalf("firing times diverged at %d: %v vs %v", i, (*parFired)[i], (*seqFired)[i])
		}
	}
}

// Step must work on a partitioned simulator (the sequential debugging
// path over domain queues) and interleave correctly with windowed Run.
func TestPDESStepInterop(t *testing.T) {
	s := New()
	s.SetGrain(1)
	s.Partition(4, 10*Ns)
	s.SetWorkers(4)
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		s.AtDomain(i%4, Time(i)*Time(Ns), func() { got = append(got, i) })
	}
	if !s.Step() || !s.Step() {
		t.Fatal("Step returned false with events pending")
	}
	if s.Pending() != 6 {
		t.Fatalf("Pending = %d after two steps, want 6", s.Pending())
	}
	s.Run()
	if s.Step() {
		t.Fatal("Step returned true on a drained simulator")
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d fired event %d (%v)", i, v, got)
		}
	}
}

// Reconfiguring the decomposition or worker count mid-simulation must
// migrate resident events without perturbing the canonical order.
func TestPDESReconfigureMigration(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 12; i++ {
		i := i
		s.At(Time(i/3)*Time(10*Ns), func() { got = append(got, i) })
	}
	s.Partition(4, 10*Ns) // still sequential: workers=1
	s.SetWorkers(4)       // engage: events migrate into domain queues
	if s.Pending() != 12 {
		t.Fatalf("Pending = %d after engage, want 12", s.Pending())
	}
	s.RunUntil(10 * Time(10*Ns) / 10)
	s.SetWorkers(1) // disengage mid-run: events migrate back
	if s.pd != nil {
		t.Fatal("pd still engaged after SetWorkers(1)")
	}
	s.SetWorkers(6) // and forward again
	s.Run()
	if len(got) != 12 {
		t.Fatalf("fired %d events, want 12", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d fired event %d: migration broke canonical order (%v)", i, v, got)
		}
	}
}

// The race-detector stress test: a large randomized workload with the
// goroutine threshold forced to 1 so every window spawns workers, at
// GOMAXPROCS parallelism. Run under -race (ci.sh does), any unsynchronized
// sharing between the window workers and the commit goroutine is caught
// here; the result is additionally checked against the sequential order.
func TestPDESRaceStress(t *testing.T) {
	const lookahead = 13 * Ns
	seq := New()
	want := pdesWorkload(seq, 32, lookahead, 7, 600)
	s := New()
	s.SetGrain(1)
	s.Partition(32, lookahead)
	s.SetWorkers(0) // GOMAXPROCS
	got := pdesWorkload(s, 32, lookahead, 7, 600)
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("commit order diverged at event %d under parallel extraction", i)
		}
	}
}

// Pending must count resident events across domain queues, inboxes and
// the overflow heap.
func TestPDESPending(t *testing.T) {
	s := New()
	s.SetGrain(1)
	s.Partition(4, 10*Ns)
	s.SetWorkers(2)
	for i := 0; i < 10; i++ {
		s.AtDomain(i%4, Time(i)*Time(Ns), func() {})
	}
	if s.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", s.Pending())
	}
	if s.Fired() != 10 {
		t.Fatalf("Fired = %d, want 10", s.Fired())
	}
}

// A pinned Resource must keep its service events in its domain while
// preserving FIFO service order and exact start times versus an unpinned
// sequential run.
func TestPDESResourceDomainPinned(t *testing.T) {
	run := func(parallel bool) []Time {
		s := New()
		if parallel {
			s.SetGrain(1)
			s.Partition(2, 10*Ns)
			s.SetWorkers(2)
		}
		r := NewResource(s).InDomain(1)
		var starts []Time
		for i := 0; i < 5; i++ {
			s.AtDomain(0, Time(i)*Time(3*Ns), func() {
				r.Acquire(7*Ns, func(start Time) { starts = append(starts, start) })
			})
		}
		s.Run()
		return starts
	}
	want := run(false)
	got := run(true)
	if len(got) != len(want) {
		t.Fatalf("got %d service starts, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("service start %d: %v, want %v", i, got[i], want[i])
		}
	}
}

// TestPDESReconfigureStress is the seeded half of the 600-run race
// battery (the machine half lives in internal/machine's recovery
// stress): each seed derives a domain count, lookahead, workload, a
// schedule of RunUntil stops pinned to window boundaries (exact
// lookahead multiples and one tick either side), and a worker-count
// flip to apply at every stop — so engagement, disengagement, and
// re-engagement all happen with events resident mid-window. At each
// stop the test captures a checkpoint of the observable state (clock,
// fired count, resident population, firing-log prefix); the whole
// trajectory and every checkpoint must match the sequential run of the
// same schedule. ci.sh runs this under the race detector, where any
// unsynchronized sharing between window workers and the coordinator
// also fails the run.
func TestPDESReconfigureStress(t *testing.T) {
	seeds := 300
	if testing.Short() {
		seeds = 40
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed) * 7919))
		domains := 2 + rng.Intn(31)
		lookahead := Dur(5+rng.Intn(60)) * Ns
		n := 40 + rng.Intn(80)

		// RunUntil stops at window boundaries, ascending; the offset puts
		// some stops exactly on a boundary and some one tick either side.
		stops := make([]Time, 3)
		k := 0
		for i := range stops {
			k += 1 + rng.Intn(7)
			stops[i] = Time(int64(lookahead)*int64(k) + int64(rng.Intn(3)-1))
		}
		flips := make([]int, len(stops))
		for i := range flips {
			flips[i] = rng.Intn(9) // 0 = GOMAXPROCS, 1 = disengage, else workers
		}
		wseed := rng.Int63()

		run := func(parallel bool) string {
			s := New()
			if parallel {
				s.SetGrain(1)
				s.Partition(domains, lookahead)
				s.SetWorkers(2 + rngStatic(wseed)%7)
			}
			log := seedPDESWorkload(s, domains, lookahead, wseed, n)
			var ckpt strings.Builder
			for i, stop := range stops {
				drained := s.RunUntil(stop)
				fmt.Fprintf(&ckpt, "stop%d drained=%v now=%v fired=%d pending=%d log=%d\n",
					i, drained, s.Now(), s.Fired(), s.Pending(), len(*log))
				if parallel {
					s.SetWorkers(flips[i])
				}
			}
			s.Run()
			fmt.Fprintf(&ckpt, "end now=%v fired=%d log=%v\n", s.Now(), s.Fired(), *log)
			return ckpt.String()
		}

		want := run(false)
		got := run(true)
		if got != want {
			t.Fatalf("seed %d (domains=%d lookahead=%v stops=%v flips=%v): trajectory diverged\n--- sequential ---\n%s--- parallel ---\n%s",
				seed, domains, lookahead, stops, flips, want, got)
		}
	}
}

// rngStatic derives a small positive constant from a seed without
// consuming the workload's random stream.
func rngStatic(seed int64) int {
	return int(uint64(seed) % 97)
}
