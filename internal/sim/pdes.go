package sim

// Conservative-window parallel DES (PDES) executor.
//
// The event population is partitioned into spatial domains — one queue per
// domain — and processed in conservative time windows sized by the
// decomposition's lookahead: the minimum latency any interaction needs to
// cross between two domains (for the torus models, the minimum inter-node
// link latency). Within a window the per-domain queue work — applying
// buffered cross-domain arrivals and extracting the window's batch in
// sorted order — runs on worker goroutines, one domain at a time per
// worker. The extracted batches are then merged and committed on the
// simulation goroutine in the canonical global (time, seq) order, which is
// exactly the order the sequential executor uses, so results are
// bit-identical at any worker count and to the sequential kernel.
//
// Committing on one goroutine is what lets the unmodified models — whose
// handlers touch machine-wide state such as packet sequence numbers,
// in-order delivery ledgers, traffic statistics, and the metrics recorder
// — run under the parallel executor without a confinement audit; the
// parallel payoff is the queue machinery (the dominant kernel cost beyond
// the handlers themselves), and the domain/window structure is the
// foundation handlers can migrate onto domain-confined state incrementally.
//
// Event routing during a window exploits the lookahead exactly the way
// conservative PDES does: a handler scheduling into its own window (only
// possible for intra-domain work closer than the lookahead) goes to a small
// coordinator-side overflow heap, while everything at or beyond the window
// horizon — in particular every cross-domain hand-off, which the lookahead
// guarantees lands there — is buffered in the target domain's inbox and
// integrated in parallel at the next window boundary.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the minimum number of resident events before a window
// spreads its queue work over goroutines; below it the spawn cost would
// dominate the heap work being spread.
const DefaultGrain = 256

const maxTime = Time(1<<63 - 1)

// Partition configures the spatial decomposition the PDES executor uses:
// the number of domains and the conservative lookahead (the minimum
// simulated latency of any inter-domain interaction; the window width).
// Model constructors call it once — machine.New partitions by torus node
// blocks with the NoC model's minimum link-adapter latency, cluster.New by
// rank blocks with the wire latency. The decomposition never affects
// results, only where queue work can run; it depends solely on the model,
// never on the worker count.
func (s *Sim) Partition(domains int, lookahead Dur) {
	if s.pd != nil && s.pd.inWindow {
		panic("sim: Partition during window execution")
	}
	if domains < 1 {
		domains = 1
	}
	if lookahead < 1 {
		lookahead = 1
	}
	s.ndom, s.la = domains, lookahead
	s.reconfigure()
}

// SetWorkers sets the number of goroutines the kernel may use for window
// queue work: 1 (the default) selects the sequential executor, 0 or a
// negative value resolves to GOMAXPROCS, larger values engage the PDES
// executor once Partition has configured more than one domain. Any
// setting produces bit-identical results.
func (s *Sim) SetWorkers(n int) {
	if s.pd != nil && s.pd.inWindow {
		panic("sim: SetWorkers during window execution")
	}
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	s.kworkers = n
	s.reconfigure()
}

// Workers reports the configured kernel worker count.
func (s *Sim) Workers() int {
	if s.kworkers < 1 {
		return 1
	}
	return s.kworkers
}

// Domains reports the configured domain count (1 when unpartitioned).
func (s *Sim) Domains() int {
	if s.ndom < 1 {
		return 1
	}
	return s.ndom
}

// SetGrain sets the minimum resident-event population before a window
// spawns extraction goroutines (default DefaultGrain). Tests lower it to
// force goroutines onto tiny workloads; it never affects results.
func (s *Sim) SetGrain(n int) {
	if n < 1 {
		n = 1
	}
	s.grain = n
	if s.pd != nil {
		s.pd.grain = n
	}
}

// reconfigure engages or disengages the PDES executor to match the current
// Partition/SetWorkers settings, migrating resident events between the
// sequential heap and the domain queues. Migration preserves every event's
// (time, seq) key, so the canonical order — and therefore every result —
// is untouched.
func (s *Sim) reconfigure() {
	on := s.ndom > 1 && s.kworkers > 1
	if on && s.pd != nil && s.pd.ndom == s.ndom && s.pd.lookahead == s.la {
		return // only the worker count changed; nothing resident moves
	}
	if s.pd != nil {
		// Drain the old decomposition back to the sequential heap.
		p := s.pd
		s.pd = nil
		for i := range p.dq {
			q := &p.dq[i]
			s.events = append(s.events, q.heap...)
			s.events = append(s.events, q.inbox...)
		}
		s.events = append(s.events, p.overflow...)
		s.events.init()
	}
	if !on {
		return
	}
	grain := s.grain
	if grain < 1 {
		grain = DefaultGrain
	}
	p := &pdes{ndom: s.ndom, lookahead: s.la, grain: grain, dq: make([]domainQ, s.ndom)}
	for i := range p.dq {
		p.dq[i].inboxMin = maxTime
	}
	s.pd = p
	for _, e := range s.events {
		p.schedule(e)
	}
	s.events = nil
}

// domainQ is one domain's event state. During a window's parallel phase
// exactly one worker owns each domainQ; between phases only the simulation
// goroutine touches it.
type domainQ struct {
	heap  eventHeap
	inbox []event // cross-window arrivals, integrated at the next boundary
	// inboxMin caches the earliest inbox timestamp so the coordinator can
	// bound the global minimum without walking (or heaping) inboxes.
	inboxMin Time
	active   bool
	// batch is the window's extracted, canonically sorted event run; bpos
	// is the merge cursor.
	batch []event
	bpos  int
	// wx is the domain's stage-2 window context (window.go), reused
	// across windows.
	wx *winCtx
}

// integrate merges the inbox into the heap and extracts this domain's
// batch for the window ending at horizon. Runs on a worker goroutine.
func (q *domainQ) integrate(horizon Time) {
	if len(q.inbox) > 0 {
		if len(q.heap) > 4*len(q.inbox) {
			for _, e := range q.inbox {
				q.heap.push(e)
			}
		} else {
			q.heap = append(q.heap, q.inbox...)
			q.heap.init()
		}
		for i := range q.inbox {
			q.inbox[i] = event{}
		}
		q.inbox = q.inbox[:0]
		q.inboxMin = maxTime
	}
	q.batch = q.batch[:0]
	q.bpos = 0
	for len(q.heap) > 0 && q.heap[0].at < horizon {
		q.batch = append(q.batch, q.heap.pop())
	}
}

// head returns the domain's next unmerged batch event.
func (q *domainQ) head() *event { return &q.batch[q.bpos] }

type pdes struct {
	ndom      int
	lookahead Dur
	grain     int
	dq        []domainQ
	active    []int // domains with resident events
	// overflow holds events scheduled during the current window for
	// commit inside it: with a true lookahead these are exclusively
	// intra-domain, sub-lookahead hand-offs.
	overflow eventHeap
	horizon  Time
	inWindow bool
	count    int // resident (scheduled, not yet committed) events
	heads    []int
	// wx[d] is domain d's window context during a stage-2 window
	// (nil outside one and for inactive domains).
	wx []*winCtx
}

// schedule routes one event. Called from the simulation goroutine only.
func (p *pdes) schedule(e event) {
	if e.dom < 0 || int(e.dom) >= p.ndom {
		// Tags from before a re-Partition (or explicit out-of-range tags)
		// are folded into range: tags are a locality hint, never meaning.
		e.dom = int32((uint32(e.dom)) % uint32(p.ndom))
	}
	p.count++
	if p.inWindow && e.at < p.horizon {
		p.overflow.push(e)
		return
	}
	q := &p.dq[e.dom]
	q.inbox = append(q.inbox, e)
	if e.at < q.inboxMin {
		q.inboxMin = e.at
	}
	if !q.active {
		q.active = true
		p.active = append(p.active, int(e.dom))
	}
}

// globalMin scans the active domains for the earliest resident timestamp,
// pruning domains that have gone empty. Returns maxTime when drained.
func (p *pdes) globalMin() Time {
	min := maxTime
	live := p.active[:0]
	for _, d := range p.active {
		q := &p.dq[d]
		if len(q.heap) == 0 && len(q.inbox) == 0 {
			q.active = false
			continue
		}
		live = append(live, d)
		if len(q.heap) > 0 && q.heap[0].at < min {
			min = q.heap[0].at
		}
		if q.inboxMin < min {
			min = q.inboxMin
		}
	}
	p.active = live
	return min
}

// run executes windows until the queues drain or (when bounded) every
// remaining event lies beyond deadline; it reports whether it drained.
// The abort hook is polled only here, between windows: a window that has
// started always commits whole, so an aborted run is a prefix of complete
// windows in the canonical order.
func (p *pdes) run(s *Sim, deadline Time, bounded bool) bool {
	for {
		if s.abortFn != nil && s.abortNow() {
			return false
		}
		min := p.globalMin()
		if min == maxTime {
			return true
		}
		if bounded && min > deadline {
			return false
		}
		horizon := min.Add(p.lookahead)
		if horizon <= min {
			horizon = maxTime // lookahead overflow: one unbounded window
		}
		// RunUntil is inclusive of the deadline, so the window may reach
		// deadline+1; if that increment overflows, no event can lie beyond
		// the deadline and no cap is needed.
		if dl1 := deadline + 1; bounded && dl1 > deadline && horizon > dl1 {
			horizon = dl1
		}
		if p.useExec(s) {
			p.execWindow(s, horizon)
		} else {
			p.extract(s, horizon)
			p.commit(s, horizon)
		}
	}
}

// extract runs each active domain's integrate for the window, spreading
// domains over worker goroutines when the population justifies it. Every
// domain is claimed by exactly one worker (atomic work counter), so the
// workers touch disjoint domainQ state; the WaitGroup publishes it back to
// the simulation goroutine.
func (p *pdes) extract(s *Sim, horizon Time) {
	act := p.active
	w := s.kworkers
	if w > len(act) {
		w = len(act)
	}
	if w <= 1 || p.count < p.grain {
		for _, d := range act {
			p.dq[d].integrate(horizon)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(act) {
					return
				}
				p.dq[act[i]].integrate(horizon)
			}
		}()
	}
	wg.Wait()
}

// commit merges the window's batches with the overflow heap and executes
// every event in canonical (time, seq) order on the simulation goroutine.
func (p *pdes) commit(s *Sim, horizon Time) {
	p.heads = p.heads[:0]
	for _, d := range p.active {
		if len(p.dq[d].batch) > 0 {
			p.heads = append(p.heads, d)
		}
	}
	for i := len(p.heads)/2 - 1; i >= 0; i-- {
		p.siftHeads(i)
	}
	p.inWindow = true
	p.horizon = horizon
	for {
		var e event
		switch {
		case len(p.heads) > 0 && len(p.overflow) > 0:
			if p.overflow[0].before(p.dq[p.heads[0]].head()) {
				e = p.overflow.pop()
			} else {
				e = p.popHead()
			}
		case len(p.heads) > 0:
			e = p.popHead()
		case len(p.overflow) > 0:
			e = p.overflow.pop()
		default:
			p.inWindow = false
			return
		}
		p.count--
		s.exec(&e)
	}
}

// popHead takes the earliest batch event and restores the merge heap.
func (p *pdes) popHead() event {
	q := &p.dq[p.heads[0]]
	e := q.batch[q.bpos]
	q.batch[q.bpos] = event{}
	q.bpos++
	if q.bpos == len(q.batch) {
		n := len(p.heads) - 1
		p.heads[0] = p.heads[n]
		p.heads = p.heads[:n]
	}
	p.siftHeads(0)
	return e
}

func (p *pdes) siftHeads(i int) {
	h := p.heads
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && p.dq[h[l]].head().before(p.dq[h[least]].head()) {
			least = l
		}
		if r < n && p.dq[h[r]].head().before(p.dq[h[least]].head()) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// step commits exactly the next event in canonical order — the sequential
// debugging path over the partitioned queues. O(active domains) per call.
func (p *pdes) step(s *Sim) bool {
	best := -1
	live := p.active[:0]
	for _, d := range p.active {
		q := &p.dq[d]
		if len(q.inbox) > 0 {
			q.integrateInbox()
		}
		if len(q.heap) == 0 {
			q.active = false
			continue
		}
		live = append(live, d)
		if best < 0 || q.heap[0].before(&p.dq[best].heap[0]) {
			best = d
		}
	}
	p.active = live
	if best < 0 {
		return false
	}
	e := p.dq[best].heap.pop()
	p.count--
	s.exec(&e)
	return true
}

// integrateInbox folds the inbox into the heap without extracting a batch.
func (q *domainQ) integrateInbox() {
	if len(q.heap) > 4*len(q.inbox) {
		for _, e := range q.inbox {
			q.heap.push(e)
		}
	} else {
		q.heap = append(q.heap, q.inbox...)
		q.heap.init()
	}
	for i := range q.inbox {
		q.inbox[i] = event{}
	}
	q.inbox = q.inbox[:0]
	q.inboxMin = maxTime
}
