// Package sim provides a deterministic discrete-event simulation kernel
// used by every timing model in this repository.
//
// Time is measured in integer picoseconds so that repeated additions of
// sub-nanosecond latency components (e.g. 8.8 ns ring hops) never accumulate
// floating-point error, and so that two runs of the same experiment are
// bit-identical. Events scheduled for the same instant fire in the order in
// which they were scheduled (FIFO tie-break on a sequence number), which
// makes the entire simulation deterministic without any further effort from
// the models built on top of it.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is an absolute simulation time in picoseconds.
type Time int64

// Dur is a span of simulation time in picoseconds.
type Dur int64

// Convenient duration units.
const (
	Ps Dur = 1
	Ns Dur = 1000
	Us Dur = 1000 * 1000
	Ms Dur = 1000 * 1000 * 1000
)

// Ns reports t in nanoseconds as a float (for reporting only; the kernel
// itself never uses floating point).
func (t Time) Ns() float64 { return float64(t) / 1000 }

// Us reports t in microseconds as a float.
func (t Time) Us() float64 { return float64(t) / 1e6 }

// Ns reports d in nanoseconds as a float.
func (d Dur) Ns() float64 { return float64(d) / 1000 }

// Us reports d in microseconds as a float.
func (d Dur) Us() float64 { return float64(d) / 1e6 }

// Add returns t shifted by d.
func (t Time) Add(d Dur) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Dur { return Dur(t - u) }

func (t Time) String() string { return fmt.Sprintf("%.3fns", t.Ns()) }
func (d Dur) String() string  { return fmt.Sprintf("%.3fns", d.Ns()) }

// NsDur converts a nanosecond count to a Dur.
func NsDur(ns float64) Dur { return Dur(ns * 1000) }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now    Time
	seq    uint64
	events eventHeap
	nfired uint64

	// Faults is the attachment point for the deterministic
	// fault-injection layer (internal/fault): fault.Attach stores its
	// *Injector here and the model constructors (machine.New,
	// cluster.New) pick it up, so one plan perturbs every model built
	// on this simulator. The kernel itself never touches it — event
	// ordering stays exactly as documented above, which is what makes
	// the fault layer's draws replayable.
	Faults any

	// Metrics is the attachment point for the observability layer
	// (internal/metrics): metrics.Attach stores its *Recorder here and
	// the model constructors pick it up, exactly like Faults. The
	// recorder is purely passive — it appends to buffers and never
	// schedules events — so attaching it cannot change a single bit of
	// any simulation result.
	Metrics any
}

// New returns a fresh simulator at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current simulation time.
func (s *Sim) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.nfired }

// Pending returns the number of events not yet executed.
func (s *Sim) Pending() int { return len(s.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a modelling bug rather than a recoverable condition.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d Dur, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now.Add(d), fn)
}

// Step executes the next event, if any, and reports whether one ran.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	s.nfired++
	e.fn()
	return true
}

// Run executes events until the queue is empty and returns the final time.
func (s *Sim) Run() Time {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline. It returns true if
// the queue drained before the deadline, false if events remain beyond it.
// The clock is advanced to the deadline when events remain.
func (s *Sim) RunUntil(deadline Time) bool {
	for len(s.events) > 0 && s.events[0].at <= deadline {
		s.Step()
	}
	if len(s.events) == 0 {
		return true
	}
	s.now = deadline
	return false
}

// RunFor executes events for d simulated time from now; see RunUntil.
func (s *Sim) RunFor(d Dur) bool { return s.RunUntil(s.now.Add(d)) }
