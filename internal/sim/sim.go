// Package sim provides a deterministic discrete-event simulation kernel
// used by every timing model in this repository.
//
// Time is measured in integer picoseconds so that repeated additions of
// sub-nanosecond latency components (e.g. 8.8 ns ring hops) never accumulate
// floating-point error, and so that two runs of the same experiment are
// bit-identical. Events scheduled for the same instant fire in the order in
// which they were scheduled (FIFO tie-break on a sequence number), which
// makes the entire simulation deterministic without any further effort from
// the models built on top of it.
//
// The kernel has two executors over the same canonical event order:
//
//   - The sequential executor (the default): one binary heap, one event at
//     a time.
//   - The parallel PDES executor (pdes.go): the event population is
//     partitioned into spatial domains with one queue per domain, windows
//     derived from the minimum inter-domain link latency are processed with
//     the per-domain queue work spread over worker goroutines, and the
//     window's events are committed in the same global (time, seq) order
//     the sequential executor uses. Output is therefore bit-identical at
//     any worker count. Partition selects the decomposition; SetWorkers
//     selects the executor.
package sim

import "fmt"

// Time is an absolute simulation time in picoseconds.
type Time int64

// Dur is a span of simulation time in picoseconds.
type Dur int64

// Convenient duration units.
const (
	Ps Dur = 1
	Ns Dur = 1000
	Us Dur = 1000 * 1000
	Ms Dur = 1000 * 1000 * 1000
)

// Ns reports t in nanoseconds as a float (for reporting only; the kernel
// itself never uses floating point).
func (t Time) Ns() float64 { return float64(t) / 1000 }

// Us reports t in microseconds as a float.
func (t Time) Us() float64 { return float64(t) / 1e6 }

// Ns reports d in nanoseconds as a float.
func (d Dur) Ns() float64 { return float64(d) / 1000 }

// Us reports d in microseconds as a float.
func (d Dur) Us() float64 { return float64(d) / 1e6 }

// Add returns t shifted by d.
func (t Time) Add(d Dur) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Dur { return Dur(t - u) }

func (t Time) String() string { return fmt.Sprintf("%.3fns", t.Ns()) }
func (d Dur) String() string  { return fmt.Sprintf("%.3fns", d.Ns()) }

// NsDur converts a nanosecond count to a Dur.
func NsDur(ns float64) Dur { return Dur(ns * 1000) }

// event is a scheduled callback. dom is the spatial domain the event
// belongs to under the PDES decomposition; the sequential executor records
// it but never reads it.
type event struct {
	at  Time
	seq uint64
	dom int32
	fn  func()
}

// before is the canonical event order shared by both executors:
// timestamp, then scheduling order (FIFO among same-instant events).
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a binary min-heap over the canonical order. The methods are
// hand-rolled rather than container/heap so pops do not box events into
// interfaces — the queue is the kernel's hottest data structure.
type eventHeap []event

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(&s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the closure
	*h = s[:n]
	h.siftDown(0)
	return top
}

func (h *eventHeap) siftDown(i int) {
	s := *h
	n := len(s)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && s[l].before(&s[least]) {
			least = l
		}
		if r < n && s[r].before(&s[least]) {
			least = r
		}
		if least == i {
			return
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
}

// init establishes the heap invariant over arbitrary contents in O(n).
func (h *eventHeap) init() {
	for i := len(*h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now    Time
	seq    uint64
	events eventHeap
	nfired uint64

	// curDom is the domain of the event currently executing; events
	// scheduled from inside an event inherit it, so a domain decomposition
	// installed by Partition propagates through event chains without the
	// models tagging every call site. Explicit cross-domain hand-offs use
	// AtDomain.
	curDom int32

	// PDES configuration (pdes.go). pd is non-nil exactly when the
	// parallel executor is engaged (Partition configured >1 domain and
	// SetWorkers asked for >1 worker).
	ndom     int
	la       Dur
	kworkers int
	grain    int
	pd       *pdes

	// Stage-2 state (ctx.go, window.go): confined records that the
	// workload declared the domain-confinement contract, confineVeto
	// permanently disables it, and inParallel is true exactly while
	// worker goroutines are executing a window's handlers — when only
	// domain-bound Ctx calls are legal.
	confined    bool
	confineVeto bool
	inParallel  bool
	// execWindows counts stage-2 windows executed, so tests and benchmarks
	// can prove the parallel path engaged rather than passing vacuously
	// through the stage-1 fallback.
	execWindows uint64

	// Faults is the attachment point for the deterministic
	// fault-injection layer (internal/fault): fault.Attach stores its
	// *Injector here and the model constructors (machine.New,
	// cluster.New) pick it up, so one plan perturbs every model built
	// on this simulator. The kernel itself never touches it — event
	// ordering stays exactly as documented above, which is what makes
	// the fault layer's draws replayable.
	Faults any

	// Cooperative abort hook (abort.go): abortFn is polled between event
	// batches (sequential executor) and at window boundaries (PDES
	// executor); aborted latches the first true answer. Both are nil/false
	// in every CLI path, so the hook costs nothing unless a serving-tier
	// session installs one.
	abortFn    func() bool
	aborted    bool
	abortBatch int

	// Metrics is the attachment point for the observability layer
	// (internal/metrics): metrics.Attach stores its *Recorder here and
	// the model constructors pick it up, exactly like Faults. The
	// recorder is purely passive — it appends to buffers and never
	// schedules events — so attaching it cannot change a single bit of
	// any simulation result.
	Metrics any
}

// New returns a fresh simulator at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current simulation time. During a parallel window
// phase the global clock is unrelated to the calling handler's domain
// clock, so the call panics — confined handlers read time through a
// domain Ctx instead, and the panic turns an unconverted call site into
// a loud test failure rather than silent divergence.
func (s *Sim) Now() Time {
	if s.inParallel {
		panic("sim: Sim.Now during parallel window execution (use a domain Ctx)")
	}
	return s.now
}

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.nfired }

// Pending returns the number of events not yet executed.
func (s *Sim) Pending() int {
	if s.pd != nil {
		return s.pd.count
	}
	return len(s.events)
}

// At schedules fn to run at absolute time t in the current event's domain.
// Scheduling in the past panics: it always indicates a modelling bug rather
// than a recoverable condition.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.schedule(s.curDom, t, fn)
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d Dur, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now.Add(d), fn)
}

// AtDomain schedules fn at absolute time t in spatial domain dom. Models
// call it where an event chain crosses from one domain's state to
// another's — a packet leaving a node for its neighbour — so the PDES
// executor can keep each domain's queue local. The domain tag never
// affects results (the commit order is the canonical global one either
// way); a wrong tag only costs queue locality.
func (s *Sim) AtDomain(dom int, t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.schedule(int32(dom), t, fn)
}

// AfterDomain schedules fn to run d after the current time in domain dom.
func (s *Sim) AfterDomain(dom int, d Dur, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.AtDomain(dom, s.now.Add(d), fn)
}

// schedule assigns the global sequence number — the deterministic FIFO
// tie-break — and routes the event to the executor's queues. All
// scheduling happens on the simulation goroutine (model code only runs
// during event commit, which both executors serialize), so seq assignment
// is identical whatever the worker count.
func (s *Sim) schedule(dom int32, t Time, fn func()) {
	if s.inParallel {
		panic("sim: unconfined scheduling during parallel window execution (use a domain Ctx)")
	}
	s.seq++
	e := event{at: t, seq: s.seq, dom: dom, fn: fn}
	if p := s.pd; p != nil {
		p.schedule(e)
		return
	}
	s.events.push(e)
}

// Step executes the next event, if any, and reports whether one ran.
func (s *Sim) Step() bool {
	if s.pd != nil {
		return s.pd.step(s)
	}
	if len(s.events) == 0 {
		return false
	}
	e := s.events.pop()
	s.exec(&e)
	return true
}

// exec commits one event: clock advance, domain context, callback.
func (s *Sim) exec(e *event) {
	s.now = e.at
	s.curDom = e.dom
	s.nfired++
	e.fn()
}

// Run executes events until the queue is empty and returns the final time.
// With an abort hook installed the loop may instead stop at a batch or
// window boundary (see Aborted); the state left behind is a clean prefix of
// the full run.
func (s *Sim) Run() Time {
	if s.pd != nil {
		s.pd.run(s, 0, false)
		return s.now
	}
	if s.abortFn == nil {
		for s.Step() {
		}
		return s.now
	}
	for !s.abortNow() {
		for budget := s.abortBatchSize(); budget > 0; budget-- {
			if !s.Step() {
				return s.now
			}
		}
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline. It returns true if
// the queue drained before the deadline, false if events remain beyond it.
// The clock is advanced to the deadline when events remain. An abort (see
// SetAbort) returns false with the clock left at the last committed event —
// the run is a prefix, not a result.
func (s *Sim) RunUntil(deadline Time) bool {
	if s.pd != nil {
		if s.pd.run(s, deadline, true) {
			return true
		}
		if !s.aborted {
			s.now = deadline
		}
		return false
	}
	if s.abortFn == nil {
		for len(s.events) > 0 && s.events[0].at <= deadline {
			s.Step()
		}
	} else {
		budget := s.abortBatchSize()
		for len(s.events) > 0 && s.events[0].at <= deadline {
			if budget == 0 {
				if s.abortNow() {
					return false
				}
				budget = s.abortBatchSize()
			}
			budget--
			s.Step()
		}
		if s.aborted {
			return false
		}
	}
	if len(s.events) == 0 {
		return true
	}
	s.now = deadline
	return false
}

// RunFor executes events for d simulated time from now; see RunUntil.
func (s *Sim) RunFor(d Dur) bool { return s.RunUntil(s.now.Add(d)) }
