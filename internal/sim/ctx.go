package sim

import "fmt"

// Ctx is a domain-bound scheduling context: the handle through which
// domain-confined handlers read the clock and schedule follow-up work so
// that the PDES executor can run whole windows of handlers concurrently
// (stage 2, window.go) without losing the sequential kernel's canonical
// order.
//
// Outside a parallel window phase every method is exactly the plain Sim
// call it names (and Defer runs its function immediately), so converted
// model code behaves bit-identically under the sequential executor. During
// a parallel window phase the methods route through the executing domain's
// window context instead: scheduling is logged for canonical sequence
// assignment at the merge point, Now returns the domain-local clock, and
// Defer queues the function for the coordinator to run at the event's
// canonical commit slot.
//
// The confinement contract (DESIGN §9): a handler running in domain d may
// only call methods of a Ctx for domain d — obtained from Sim.Ctx(d) or
// from a Resource/Counter pinned to d — and may only touch state owned by
// domain d. Everything else (global counters, cross-domain latches, the
// metrics recorder) must go through Defer, whose functions run serially on
// the simulation goroutine in canonical event order.
type Ctx struct {
	s   *Sim
	dom int32
}

// Ctx returns a scheduling context bound to domain dom.
func (s *Sim) Ctx(dom int) Ctx { return Ctx{s: s, dom: int32(dom)} }

// Sim returns the underlying simulator.
func (c Ctx) Sim() *Sim { return c.s }

// Domain returns the domain this context is bound to.
func (c Ctx) Domain() int { return int(c.dom) }

// win returns the window context when the bound domain is executing a
// parallel window phase, else nil. The coordinator goroutine blocks for
// the whole phase, so any call observing inParallel comes from the worker
// that owns the domain — making the unsynchronized reads safe: inParallel
// and the wx slots are written before the workers start and after they
// join (the WaitGroup provides the happens-before edges).
func (c Ctx) win() *winCtx {
	s := c.s
	if !s.inParallel {
		return nil
	}
	p := s.pd
	if p == nil || c.dom < 0 || int(c.dom) >= len(p.wx) {
		return nil
	}
	return p.wx[c.dom]
}

// Now returns the current simulation time as seen by the bound domain.
func (c Ctx) Now() Time {
	if w := c.win(); w != nil {
		return w.now
	}
	return c.s.Now()
}

// At schedules fn at absolute time t in the bound domain.
func (c Ctx) At(t Time, fn func()) {
	if w := c.win(); w != nil {
		w.schedule(c.dom, t, fn)
		return
	}
	c.s.AtDomain(int(c.dom), t, fn)
}

// After schedules fn to run d after the bound domain's current time.
func (c Ctx) After(d Dur, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	if w := c.win(); w != nil {
		w.schedule(c.dom, w.now.Add(d), fn)
		return
	}
	c.s.AtDomain(int(c.dom), c.s.Now().Add(d), fn)
}

// AtDomain schedules fn at absolute time t in domain dom — the explicit
// cross-domain hand-off. During a parallel window phase the target time
// must lie at or beyond the window horizon; the conservative lookahead
// guarantees that for every real inter-domain interaction, so a violation
// panics as a modelling bug.
func (c Ctx) AtDomain(dom int, t Time, fn func()) {
	if w := c.win(); w != nil {
		w.schedule(int32(dom), t, fn)
		return
	}
	c.s.AtDomain(dom, t, fn)
}

// AfterDomain schedules fn to run d after the bound domain's current time
// in domain dom.
func (c Ctx) AfterDomain(dom int, d Dur, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	if w := c.win(); w != nil {
		w.schedule(int32(dom), w.now.Add(d), fn)
		return
	}
	c.s.AtDomain(dom, c.s.Now().Add(d), fn)
}

// Defer runs fn at the calling event's canonical commit slot on the
// simulation goroutine: immediately when no parallel window phase is
// executing, otherwise when the coordinator replays this event at the
// merge point — serially, in canonical (time, seq) order, after every
// handler of the window that canonically precedes it. Deferred functions
// are where confined handlers touch global state (sequence numbers,
// statistics totals, the metrics recorder, cross-domain latches).
func (c Ctx) Defer(fn func()) {
	if w := c.win(); w != nil {
		w.deferFn(fn)
		return
	}
	if c.s.inParallel {
		panic("sim: Defer from a domain not executing the current window")
	}
	fn()
}

// SetConfined declares (true) or permanently vetoes (false) the
// domain-confinement contract for this simulator's handlers. The stage-2
// window executor — which runs each domain's handlers on its worker
// goroutine — engages only on simulators whose top-level workload owner
// declared confinement and nothing vetoed it; otherwise windows fall back
// to stage 1 (parallel queue work, serial handler commit), which needs no
// audit. The veto is sticky: machine hard-fault recovery and the cluster
// model veto because their recovery paths mutate machine-global state
// from arbitrary handlers.
func (s *Sim) SetConfined(on bool) {
	if !on {
		s.confineVeto = true
		s.confined = false
		return
	}
	if !s.confineVeto {
		s.confined = true
	}
}

// Confined reports whether the stage-2 window executor may engage.
func (s *Sim) Confined() bool { return s.confined }

// ExecWindows returns the number of windows the stage-2 executor has run.
// Zero under the sequential kernel or the stage-1 fallback; tests assert
// it is positive so parallel-identity checks cannot pass vacuously.
func (s *Sim) ExecWindows() uint64 { return s.execWindows }
