package sim

import "testing"

// chain schedules a self-perpetuating event chain: each firing schedules
// the next, total events, one per tick.
func chain(s *Sim, total int) *int {
	fired := 0
	var step func()
	step = func() {
		fired++
		if fired < total {
			s.After(1*Ns, step)
		}
	}
	s.After(1*Ns, step)
	return &fired
}

func TestAbortStopsSequentialRun(t *testing.T) {
	s := New()
	fired := chain(s, 100_000)
	s.SetAbortBatch(64)
	polls := 0
	s.SetAbort(func() bool {
		polls++
		return polls > 3 // abort on the 4th poll
	})
	s.Run()
	if !s.Aborted() {
		t.Fatal("Aborted() = false after abort hook fired")
	}
	// Exactly 3 full batches committed: the poll only ever decides between
	// batches, so the prefix length is a multiple of the batch size.
	if *fired != 3*64 {
		t.Fatalf("fired %d events, want exactly 3 batches of 64", *fired)
	}
	if s.Pending() == 0 {
		t.Fatal("abort should leave the chain's next event pending")
	}
}

func TestAbortStopsRunUntil(t *testing.T) {
	s := New()
	fired := chain(s, 100_000)
	s.SetAbortBatch(32)
	polls := 0
	s.SetAbort(func() bool { polls++; return polls > 2 })
	if s.RunUntil(Time(1_000_000 * Ns)) {
		t.Fatal("RunUntil reported drained on an aborted run")
	}
	if !s.Aborted() || *fired != 3*32 {
		t.Fatalf("aborted=%v fired=%d, want true / 96", s.Aborted(), *fired)
	}
	// The clock must sit at the last committed event, not the deadline:
	// the aborted state is a prefix, not a bounded run.
	if s.Now() != Time(96*Ns) {
		t.Fatalf("clock at %v after abort, want 96ns", s.Now())
	}
}

func TestAbortNeverFiresStaysIdentical(t *testing.T) {
	run := func(hook bool) (Time, uint64) {
		s := New()
		chain(s, 5000)
		if hook {
			s.SetAbortBatch(16)
			s.SetAbort(func() bool { return false })
		}
		return s.Run(), s.Fired()
	}
	t0, n0 := run(false)
	t1, n1 := run(true)
	if t0 != t1 || n0 != n1 {
		t.Fatalf("a never-firing hook changed the run: (%v,%d) vs (%v,%d)", t0, n0, t1, n1)
	}
}

func TestAbortPDESWindowBoundary(t *testing.T) {
	s := New()
	s.Partition(4, 10*Ns)
	s.SetWorkers(4)
	s.SetGrain(1)
	// Four independent per-domain chains so several windows' worth of
	// events exist in every domain.
	fired := 0
	for d := 0; d < 4; d++ {
		d := d
		var step func()
		count := 0
		step = func() {
			fired++
			count++
			if count < 1000 {
				s.AfterDomain(d, 1*Ns, step)
			}
		}
		s.AtDomain(d, Time(1*Ns), step)
	}
	polls := 0
	s.SetAbort(func() bool { polls++; return polls > 5 })
	s.Run()
	if !s.Aborted() {
		t.Fatal("PDES run did not honor the abort hook")
	}
	if fired == 0 || fired >= 4000 {
		t.Fatalf("fired %d events, want a strict prefix of 4000", fired)
	}
	// Windows commit whole: with 4 synchronized 1ns chains and 10ns
	// windows, the committed prefix is a multiple of 4 events.
	if fired%4 != 0 {
		t.Fatalf("fired %d events: a window was committed partially", fired)
	}
}

func TestAbortedRunIsCleanPrefix(t *testing.T) {
	// The committed prefix of an aborted run must be byte-for-byte the
	// prefix of the full run: same events, same order, same clocks.
	trace := func(abortAfter int) []Time {
		s := New()
		var log []Time
		for i := 0; i < 300; i++ {
			s.After(Dur(i+1)*Ns, func() { log = append(log, s.Now()) })
		}
		if abortAfter > 0 {
			s.SetAbortBatch(abortAfter)
			polls := 0
			s.SetAbort(func() bool { polls++; return polls > 1 })
		}
		s.Run()
		return log
	}
	full := trace(0)
	partial := trace(100)
	if len(partial) != 100 {
		t.Fatalf("aborted run committed %d events, want 100", len(partial))
	}
	for i, at := range partial {
		if full[i] != at {
			t.Fatalf("prefix diverges at %d: %v vs %v", i, at, full[i])
		}
	}
}
