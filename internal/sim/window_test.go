package sim

import (
	"fmt"
	"testing"
)

// confinedWorkload drives a synthetic confined model on s: ndom domains,
// each hosting a chain of local events (sub-lookahead self-schedules) that
// periodically hands off to a neighbour domain at +lookahead and records
// every commit through Defer. The returned trace is the canonical record
// (time, firing order) of everything that ran.
func confinedWorkload(s *Sim, ndom int, la Dur, rounds int) []string {
	var trace []string
	s.Partition(ndom, la)
	s.SetConfined(true)
	var hop func(dom, round, k int)
	hop = func(dom, round, k int) {
		c := s.Ctx(dom)
		now := c.Now()
		c.Defer(func() { trace = append(trace, fmt.Sprintf("d%d r%d k%d @%d", dom, round, k, now)) })
		if k < 3 {
			// Local sub-lookahead child: exercises the provisional path.
			c.After(la/4+1, func() { hop(dom, round, k+1) })
			return
		}
		if round < rounds {
			next := (dom + 1) % ndom
			c.AfterDomain(next, la, func() { hop(next, round+1, 0) })
		}
	}
	for d := 0; d < ndom; d++ {
		d := d
		s.Ctx(d).At(Time(d+1), func() { hop(d, 0, 0) })
	}
	s.Run()
	return trace
}

// TestWindowExecutorIdentity pins stage 2's determinism contract at the
// kernel level: the commit trace (every event's domain, payload, and
// timestamp, in firing order) and the fired-event count are identical
// between the sequential executor and the stage-2 window executor at
// several worker/grain settings.
func TestWindowExecutorIdentity(t *testing.T) {
	const ndom, rounds = 8, 6
	const la = Dur(1000)
	ref := New()
	want := confinedWorkload(ref, ndom, la, rounds)
	wantFired := ref.Fired()
	if len(want) == 0 {
		t.Fatal("workload produced no trace")
	}
	for _, workers := range []int{2, 4, 8} {
		for _, grain := range []int{1, 16, DefaultGrain} {
			s := New()
			s.SetWorkers(workers)
			s.SetGrain(grain)
			got := confinedWorkload(s, ndom, la, rounds)
			if s.Fired() != wantFired {
				t.Fatalf("workers=%d grain=%d fired %d events, sequential fired %d",
					workers, grain, s.Fired(), wantFired)
			}
			if len(got) != len(want) {
				t.Fatalf("workers=%d grain=%d trace length %d, want %d", workers, grain, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d grain=%d trace[%d] = %q, want %q", workers, grain, i, got[i], want[i])
				}
			}
		}
	}
}

// TestWindowExecutorEngages proves the stage-2 path actually ran in the
// identity test's configuration (otherwise it would vacuously pass by
// falling back to stage 1): an unconverted Sim.Now call from a handler
// must panic during a parallel window phase.
func TestWindowExecutorEngages(t *testing.T) {
	s := New()
	s.SetWorkers(4)
	s.SetGrain(1)
	s.Partition(4, 1000)
	s.SetConfined(true)
	for d := 0; d < 4; d++ {
		d := d
		s.Ctx(d).At(1, func() {
			_ = s.Now() // illegal: plain Sim call from a parallel window
		})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Sim.Now from a stage-2 handler did not panic (stage 2 never engaged?)")
		}
	}()
	s.Run()
}

// TestWindowCrossDomainViolation pins the loud-failure guard for
// lookahead violations: a cross-domain schedule below the horizon panics.
func TestWindowCrossDomainViolation(t *testing.T) {
	s := New()
	s.SetWorkers(4)
	s.SetGrain(1)
	s.Partition(4, 1_000_000)
	s.SetConfined(true)
	for d := 0; d < 4; d++ {
		d := d
		s.Ctx(d).At(1, func() {
			s.Ctx(d).AtDomain((d+1)%4, 2, func() {}) // inside the window
		})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("sub-horizon cross-domain schedule did not panic")
		}
	}()
	s.Run()
}

// TestSetConfinedVetoSticky pins the veto semantics: once any layer vetoes
// confinement, later declarations cannot re-enable stage 2.
func TestSetConfinedVetoSticky(t *testing.T) {
	s := New()
	s.SetConfined(true)
	if !s.Confined() {
		t.Fatal("SetConfined(true) did not declare confinement")
	}
	s.SetConfined(false)
	s.SetConfined(true)
	if s.Confined() {
		t.Fatal("veto was not sticky")
	}
}
