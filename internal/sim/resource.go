package sim

// Resource models a unit-capacity FIFO server such as a network link or a
// DMA engine: each acquisition occupies the resource for a caller-supplied
// service time, and requests are served strictly in arrival order.
//
// Acquire returns immediately (it only schedules); the supplied callback
// runs at the simulated time at which service *begins*. The resource is
// released automatically when the service time elapses.
type Resource struct {
	sim *Sim
	// freeAt is the earliest time the resource can begin the next service.
	freeAt Time
	// busy accumulates total occupied time, for utilization reporting.
	busy Dur
	uses uint64
	// dom, when >= 0, pins every service-start event to that spatial
	// domain for the PDES executor; -1 inherits the scheduling event's
	// domain. Physical resources (a node's links and ports) are pinned to
	// their node's domain so their event chains stay queue-local.
	dom int32
}

// NewResource returns a resource attached to s.
func NewResource(s *Sim) *Resource {
	return &Resource{sim: s, dom: -1}
}

// InDomain pins the resource's events to spatial domain dom (see
// Sim.AtDomain) and returns the resource for construction chaining.
func (r *Resource) InDomain(dom int) *Resource {
	r.dom = int32(dom)
	return r
}

// Acquire schedules fn to run when the resource becomes free (no earlier
// than now) and occupies the resource for service starting at that moment.
// It returns the time at which service begins. A pinned resource is
// domain-confined state: during a stage-2 window only its own domain's
// handlers may acquire it, and the call routes through the domain Ctx.
func (r *Resource) Acquire(service Dur, fn func(start Time)) Time {
	if r.dom >= 0 {
		c := Ctx{s: r.sim, dom: r.dom}
		start := r.freeAt
		if now := c.Now(); start < now {
			start = now
		}
		r.freeAt = start.Add(service)
		r.busy += service
		r.uses++
		if fn != nil {
			c.At(start, func() { fn(start) })
		}
		return start
	}
	start := r.freeAt
	if now := r.sim.Now(); start < now {
		start = now
	}
	r.freeAt = start.Add(service)
	r.busy += service
	r.uses++
	if fn != nil {
		r.sim.At(start, func() { fn(start) })
	}
	return start
}

// FreeAt returns the earliest time the next acquisition could begin service.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTime returns the total simulated time the resource has been occupied.
func (r *Resource) BusyTime() Dur { return r.busy }

// Uses returns the number of acquisitions.
func (r *Resource) Uses() uint64 { return r.uses }

// Counter is a monotonically increasing event counter with threshold
// waiters. It models Anton's synchronization counters at the kernel level:
// writers call Inc when a packet has been delivered, and a reader registers
// a callback to fire once the counter reaches a target value.
//
// Wait also accepts a poll overhead: the callback fires pollOverhead after
// the increment that satisfied the threshold, modelling the cost of the
// successful poll observing the new value. A Wait whose threshold is
// already met fires pollOverhead after now.
type Counter struct {
	sim   *Sim
	value uint64
	waits []counterWait
	// dom, when >= 0, pins the counter's wake events to that spatial
	// domain; -1 inherits the scheduling event's domain. A pinned counter
	// is domain-confined state under the stage-2 contract.
	dom int32
}

type counterWait struct {
	target uint64
	poll   Dur
	fn     func()
}

// NewCounter returns a counter attached to s with value zero.
func NewCounter(s *Sim) *Counter { return &Counter{sim: s, dom: -1} }

// InDomain pins the counter's wake events to spatial domain dom and
// returns the counter for construction chaining.
func (c *Counter) InDomain(dom int) *Counter {
	c.dom = int32(dom)
	return c
}

// wake schedules a satisfied waiter's callback poll after now.
func (c *Counter) wake(poll Dur, fn func()) {
	if c.dom >= 0 {
		Ctx{s: c.sim, dom: c.dom}.After(poll, fn)
		return
	}
	c.sim.After(poll, fn)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.value }

// Inc increments the counter by one and wakes any satisfied waiters.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by n and wakes any satisfied waiters.
func (c *Counter) Add(n uint64) {
	c.value += n
	if len(c.waits) == 0 {
		return
	}
	remaining := c.waits[:0]
	for _, w := range c.waits {
		if c.value >= w.target {
			c.wake(w.poll, w.fn)
		} else {
			remaining = append(remaining, w)
		}
	}
	c.waits = remaining
}

// Reset zeroes the counter. Resetting with waiters outstanding panics;
// Anton software only reuses a counter after its phase has completed.
func (c *Counter) Reset() {
	if len(c.waits) != 0 {
		panic("sim: Counter.Reset with outstanding waiters")
	}
	c.value = 0
}

// Wait schedules fn to run pollOverhead after the counter reaches target.
func (c *Counter) Wait(target uint64, pollOverhead Dur, fn func()) {
	if c.value >= target {
		c.wake(pollOverhead, fn)
		return
	}
	c.waits = append(c.waits, counterWait{target: target, poll: pollOverhead, fn: fn})
}
