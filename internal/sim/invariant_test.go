package sim

import (
	"math/rand"
	"testing"
)

// The fault layer's determinism contract rests on two kernel
// invariants: events are served in non-decreasing timestamp order, and
// events with equal timestamps fire in the order they were scheduled
// (FIFO on the sequence number), including events scheduled from inside
// other events. This test drives the kernel with a randomized but
// seeded workload — nested scheduling, duplicate timestamps, bursts at
// the same instant — and checks both invariants on the observed firing
// sequence, twice, asserting the two runs are identical.
func TestEventOrderInvariants(t *testing.T) {
	type fired struct {
		at    Time
		order int // scheduling order among events sharing a timestamp
	}
	run := func(seed int64) []fired {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var log []fired
		// perTime tracks, per timestamp, how many events have been
		// scheduled at it so far; each event records its index.
		perTime := map[Time]int{}
		var schedule func(at Time, depth int)
		schedule = func(at Time, depth int) {
			idx := perTime[at]
			perTime[at]++
			s.At(at, func() {
				log = append(log, fired{at: at, order: idx})
				if depth < 3 && rng.Intn(3) == 0 {
					// Nested scheduling: same instant (exercises the
					// FIFO tie-break from within an event) or later.
					delay := Dur(rng.Intn(5)) * Ns
					schedule(s.Now().Add(delay), depth+1)
				}
			})
		}
		for i := 0; i < 300; i++ {
			schedule(Time(rng.Intn(50))*Time(Ns), 0)
		}
		s.Run()
		return log
	}

	log := run(1)
	if len(log) < 300 {
		t.Fatalf("only %d events fired", len(log))
	}
	lastSeen := map[Time]int{}
	for i := 1; i < len(log); i++ {
		if log[i].at < log[i-1].at {
			t.Fatalf("event %d fired at %v after an event at %v: timestamps not monotone",
				i, log[i].at, log[i-1].at)
		}
	}
	for i, f := range log {
		if prev, ok := lastSeen[f.at]; ok && f.order <= prev {
			t.Fatalf("event %d at %v has scheduling index %d after index %d: same-time events out of insertion order",
				i, f.at, f.order, prev)
		}
		lastSeen[f.at] = f.order
	}

	// Bit-determinism: a replay of the same workload observes the same
	// firing sequence.
	replay := run(1)
	if len(replay) != len(log) {
		t.Fatalf("replay fired %d events, first run %d", len(replay), len(log))
	}
	for i := range log {
		if log[i] != replay[i] {
			t.Fatalf("replay diverged at event %d: %+v vs %+v", i, replay[i], log[i])
		}
	}
}

// Same-time FIFO holds under interleaved At/After calls from multiple
// nesting levels — the exact pattern the in-order delivery machinery
// and the fault layer's retry scheduling rely on.
func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var got []int
	at := Time(10 * Ns)
	for i := 0; i < 20; i++ {
		i := i
		s.At(at, func() { got = append(got, i) })
	}
	// An event before the burst that schedules three more events at the
	// burst instant: they must fire after the 20 already queued.
	s.At(5*Time(Ns), func() {
		for j := 20; j < 23; j++ {
			j := j
			s.At(at, func() { got = append(got, j) })
		}
	})
	s.Run()
	if len(got) != 23 {
		t.Fatalf("fired %d events, want 23", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d fired event %d: same-instant events out of FIFO order (%v)", i, v, got)
		}
	}
}
