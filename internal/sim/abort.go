package sim

// Cooperative abort hook.
//
// A long-running simulation driven by the serving tier must be stoppable
// when its requester cancels, its deadline expires, or the server drains —
// without ever leaving partially committed state behind. The kernel
// supports this with a polled hook rather than preemption: the abort check
// runs only at points where the event order is quiescent — between event
// batches on the sequential executor and at conservative-window boundaries
// on the PDES executor — so every event that has fired was committed in the
// canonical (time, seq) order, and no event is ever half-executed. An
// aborted run is therefore a clean prefix of the run that would have
// happened; the only non-determinism is *where* the prefix ends (the poll
// races wall-clock cancellation), which is why aborted runs must be
// discarded, never cached or reported. The serving tier enforces exactly
// that: a cancelled or timed-out run aborts its in-flight cache entry.

// DefaultAbortBatch is the number of committed events between abort-hook
// polls on the sequential executor. Each poll is one closure call (a
// channel-closed check in practice), so the default keeps the overhead
// unmeasurable while bounding abort latency to a few thousand cheap
// handlers.
const DefaultAbortBatch = 4096

// SetAbort installs (or, with nil, removes) the abort hook. The hook is
// polled at sequential event-batch boundaries and PDES window boundaries;
// when it first returns true the run loops (Run, RunUntil, RunFor) return
// early and the simulator is marked aborted. The hook must be safe to call
// from the simulation goroutine and should be cheap — the canonical hook is
// a non-blocking receive on a context's Done channel. Installing a hook
// clears a previous aborted mark.
func (s *Sim) SetAbort(fn func() bool) {
	s.abortFn = fn
	s.aborted = false
}

// SetAbortBatch overrides the sequential poll interval (default
// DefaultAbortBatch). Tests lower it to bound abort latency on tiny
// workloads; it never affects committed results, only how soon an abort is
// noticed.
func (s *Sim) SetAbortBatch(n int) {
	if n < 1 {
		n = 1
	}
	s.abortBatch = n
}

// Aborted reports whether a run loop stopped early because the abort hook
// fired. Pending events remain queued; the simulation state is a clean
// prefix of the full run and must not be treated as a result.
func (s *Sim) Aborted() bool { return s.aborted }

// abortNow polls the hook (sticky once it has fired).
func (s *Sim) abortNow() bool {
	if s.aborted {
		return true
	}
	if s.abortFn != nil && s.abortFn() {
		s.aborted = true
	}
	return s.aborted
}

// abortBatchSize resolves the sequential poll interval.
func (s *Sim) abortBatchSize() int {
	if s.abortBatch < 1 {
		return DefaultAbortBatch
	}
	return s.abortBatch
}
