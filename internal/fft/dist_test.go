package fft

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"anton/internal/machine"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

func randGrid(seed int64, n int) *Grid {
	rng := rand.New(rand.NewSource(seed))
	g := NewGrid(n)
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), 0)
	}
	return g
}

func randGreen(seed int64, n int) *Grid {
	rng := rand.New(rand.NewSource(seed))
	g := NewGrid(n)
	for i := range g.Data {
		g.Data[i] = complex(rng.Float64()+0.5, 0)
	}
	return g
}

// runDistConvolve executes a distributed convolution and returns the
// result and completion time.
func runDistConvolve(t *testing.T, torusSide, gridN int, in, green *Grid) (*Grid, sim.Time) {
	t.Helper()
	s := sim.New()
	m := machine.New(s, topo.NewTorus(torusSide, torusSide, torusSide), noc.DefaultModel())
	d := NewDist(m, gridN, 0)
	var out *Grid
	var at sim.Time = -1
	d.Convolve(in, green, func(g *Grid, tm sim.Time) { out, at = g, tm })
	s.Run()
	if out == nil {
		t.Fatal("distributed convolution never completed")
	}
	return out, at
}

func TestDistConvolveMatchesSequential(t *testing.T) {
	for _, tc := range []struct{ torus, grid int }{
		{2, 4},
		{2, 8},
		{4, 8},
	} {
		in := randGrid(10, tc.grid)
		green := randGreen(11, tc.grid)
		want := in.Clone()
		want.Convolve(green)
		got, _ := runDistConvolve(t, tc.torus, tc.grid, in, green)
		for i := range got.Data {
			if cmplx.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("torus %d grid %d: point %d = %v, want %v",
					tc.torus, tc.grid, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestDistConvolve512Node32Grid(t *testing.T) {
	// The paper's production configuration: a 32x32x32 grid on an 8x8x8
	// machine. Verify numerical correctness and that the communication
	// time lands near Table 3's FFT-based convolution row (7.5 us of
	// critical-path communication, 8.5 us total).
	if testing.Short() {
		t.Skip("512-node FFT in short mode")
	}
	in := randGrid(20, 32)
	green := randGreen(21, 32)
	want := in.Clone()
	want.Convolve(green)
	got, at := runDistConvolve(t, 8, 32, in, green)
	for i := range got.Data {
		if cmplx.Abs(got.Data[i]-want.Data[i]) > 1e-8 {
			t.Fatalf("point %d = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
	us := at.Us()
	if us < 5.5 || us > 11 {
		t.Fatalf("FFT convolution took %.2fus, want ~8.5us (Table 3)", us)
	}
}

func TestDistRepeatedRuns(t *testing.T) {
	s := sim.New()
	m := machine.New(s, topo.NewTorus(2, 2, 2), noc.DefaultModel())
	d := NewDist(m, 4, 0)
	green := randGreen(31, 4)
	for run := int64(0); run < 2; run++ {
		in := randGrid(40+run, 4)
		want := in.Clone()
		want.Convolve(green)
		var out *Grid
		d.Convolve(in, green, func(g *Grid, tm sim.Time) { out = g })
		s.Run()
		if out == nil {
			t.Fatalf("run %d never completed", run)
		}
		for i := range out.Data {
			if cmplx.Abs(out.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("run %d point %d = %v, want %v", run, i, out.Data[i], want.Data[i])
			}
		}
	}
}

func TestDistExpectedPacketCounts(t *testing.T) {
	// Every node receives exactly lpn*N packets per pencil stage: the
	// fixed counts that make counted remote writes possible.
	s := sim.New()
	m := machine.New(s, topo.NewTorus(2, 2, 2), noc.DefaultModel())
	d := NewDist(m, 4, 0)
	if d.Expected() != d.lpn*d.N {
		t.Fatalf("Expected() = %d", d.Expected())
	}
	in := randGrid(50, 4)
	green := randGreen(51, 4)
	d.Convolve(in, green, func(*Grid, sim.Time) {})
	s.Run()
	// Per node: 5 pencil stages x lpn*N + final box stage b^3.
	wantPerNode := uint64(5*d.lpn*d.N + d.b*d.b*d.b)
	for id := 0; id < m.Torus.Nodes(); id++ {
		if got := m.Stats().NodeReceived(topo.NodeID(id)); got != wantPerNode {
			t.Fatalf("node %d received %d packets, want %d", id, got, wantPerNode)
		}
	}
}

func TestDistValidation(t *testing.T) {
	s := sim.New()
	cases := []struct {
		torus topo.Torus
		grid  int
	}{
		{topo.NewTorus(2, 2, 4), 8},  // non-cubic
		{topo.NewTorus(4, 4, 4), 10}, // grid not divisible
		{topo.NewTorus(8, 8, 8), 8},  // b*b=1 line per row < 8 nodes
	}
	for i, tc := range cases {
		m := machine.New(s, tc.torus, noc.DefaultModel())
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			NewDist(m, tc.grid, 0)
		}()
	}
}

func TestDistFineGrainedPackets(t *testing.T) {
	// One grid point per packet: wire payloads stay at the complex-value
	// size throughout.
	s := sim.New()
	m := machine.New(s, topo.NewTorus(2, 2, 2), noc.DefaultModel())
	d := NewDist(m, 4, 0)
	maxBytes := 0
	m.OnSend = func(p *packet.Packet, at sim.Time) {
		if p.Bytes > maxBytes {
			maxBytes = p.Bytes
		}
	}
	d.Convolve(randGrid(60, 4), randGreen(61, 4), func(*Grid, sim.Time) {})
	s.Run()
	if maxBytes != d.Bytes {
		t.Fatalf("largest packet payload = %dB, want %dB", maxBytes, d.Bytes)
	}
}
