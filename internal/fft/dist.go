package fft

import (
	"fmt"

	"anton/internal/machine"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// Dist is a distributed dimension-ordered 3D FFT convolution running on a
// simulated Anton machine. The grid starts in the box decomposition that
// mirrors the MD spatial decomposition; the forward transform performs 1D
// FFTs in the x dimension, then y, then z, with a fine-grained
// counted-remote-write redistribution (one grid point per packet) between
// dimensions; the inverse transform runs in the reverse dimension order.
// Per-dimension synchronization counters track the incoming remote writes,
// so the communication pattern is entirely fixed — no handshakes.
type Dist struct {
	m *machine.Machine
	// N is the grid side; n the (cubic) torus side; b = N/n the box side;
	// lpn = b*b/n the pencil lines owned per node per stage.
	N, n, b, lpn int
	// CtrBase is the first of six synchronization-counter labels (one per
	// redistribution).
	CtrBase packet.CounterID
	// PerPoint is the flexible-subsystem compute cost per grid point per
	// 1D-FFT stage.
	PerPoint sim.Dur
	// Bytes is the wire payload per grid-point packet (a complex value).
	Bytes int

	gen uint64
}

// Stage bases within the slice-0 local memory, spaced far enough apart for
// any supported grid size.
const distStride = 1 << 16

// NewDist validates the machine/grid combination and returns a distributed
// FFT. The torus must be cubic, the grid side divisible by the torus side,
// and the per-row line count divisible by the row length.
func NewDist(m *machine.Machine, gridN int, ctrBase packet.CounterID) *Dist {
	t := m.Torus
	if t.DimX != t.DimY || t.DimY != t.DimZ {
		panic(fmt.Sprintf("fft: distributed FFT requires a cubic torus, got %v", t))
	}
	n := t.DimX
	if gridN%n != 0 {
		panic(fmt.Sprintf("fft: grid side %d not divisible by torus side %d", gridN, n))
	}
	b := gridN / n
	if (b*b)%n != 0 {
		panic(fmt.Sprintf("fft: %d lines per node row not divisible by row length %d", b*b, n))
	}
	return &Dist{
		m: m, N: gridN, n: n, b: b, lpn: b * b / n,
		CtrBase:  ctrBase,
		PerPoint: 2500 * sim.Ps,
		Bytes:    16,
	}
}

// stage identifiers, in execution order.
const (
	stFwdX = iota // box -> x pencils, FFT x
	stFwdY        // x -> y pencils, FFT y
	stFwdZ        // y -> z pencils, FFT z, multiply, IFFT z
	stInvY        // z -> y pencils, IFFT y
	stInvX        // y -> x pencils, IFFT x
	stBox         // x pencils -> box
	numStages
)

func (d *Dist) client(n topo.NodeID) *machine.Client {
	return d.m.Client(packet.Client{Node: n, Kind: packet.Slice0})
}

// sender returns the injecting client for the k-th packet of a node's
// redistribution: the four processing slices of the flexible subsystem
// share the injection work round-robin, as on the real machine, while all
// pencil buffers live in slice 0's local memory.
func (d *Dist) sender(n topo.NodeID, k int) *machine.Client {
	return d.m.Client(packet.Client{Node: n, Kind: packet.Slice(k % 4)})
}

// ownerInRow returns the ring position owning pencil line (u, v) of a
// node-row, where u and v are the box-local coordinates of the two fixed
// dimensions.
func (d *Dist) ownerInRow(u, v int) int { return (u*d.b + v) / d.lpn }

// lineLocal returns the node-local line index for box-local (u, v).
func (d *Dist) lineLocal(u, v int) int { return (u*d.b + v) % d.lpn }

// Expected returns the number of packets every node receives in each
// pencil redistribution (the receiver's precomputed counter target).
func (d *Dist) Expected() int { return d.lpn * d.N }

// ComputePerNode returns the total per-node arithmetic charged during one
// convolution: five single-cost stages plus the double-cost forward-Z
// stage (FFT, green multiply, inverse FFT).
func (d *Dist) ComputePerNode() sim.Dur {
	return 7 * sim.Dur(d.lpn*d.N) * d.PerPoint
}

// Convolve runs the full FFT-based convolution: forward transform of the
// grid, point-wise multiplication by green (in wave-number space), and
// inverse transform. in must have side N and is interpreted as the initial
// box-decomposed charge grid; done receives the convolved grid and the
// completion time of the final counted remote write.
func (d *Dist) Convolve(in, green *Grid, done func(out *Grid, at sim.Time)) {
	if in.N != d.N || green.N != d.N {
		panic("fft: grid size mismatch")
	}
	d.gen++
	nodes := d.m.Torus.Nodes()
	remaining := nodes
	finish := func() {
		remaining--
		if remaining > 0 {
			return
		}
		out := NewGrid(d.N)
		d.m.Torus.ForEach(func(c topo.Coord) {
			cl := d.client(d.m.Torus.ID(c))
			base := stBox * distStride
			for lx := 0; lx < d.b; lx++ {
				for ly := 0; ly < d.b; ly++ {
					for lz := 0; lz < d.b; lz++ {
						addr := base + ((lx*d.b+ly)*d.b+lz)*2
						w := cl.Mem(addr, 2)
						out.Set(c.X*d.b+lx, c.Y*d.b+ly, c.Z*d.b+lz, complex(w[0], w[1]))
					}
				}
			}
		})
		done(out, d.m.Sim.Now())
	}

	d.m.Torus.ForEach(func(c topo.Coord) {
		id := d.m.Torus.ID(c)
		// Scatter this node's box points into x pencils.
		d.sendBoxToX(c, in)
		// Then walk the stage chain.
		d.runStage(id, c, stFwdX, green, finish)
	})
}

// runStage waits for the stage's incoming counted remote writes, performs
// the stage's computation, and emits the next redistribution.
func (d *Dist) runStage(id topo.NodeID, c topo.Coord, stage int, green *Grid, finish func()) {
	cl := d.client(id)
	ctx := d.m.Ctx(id)
	ctr := d.CtrBase + packet.CounterID(stage)
	var expected uint64
	if stage == stBox {
		expected = uint64(d.b * d.b * d.b)
	} else {
		expected = uint64(d.Expected())
	}
	cl.Wait(ctr, d.gen*expected, func() {
		if stage == stBox {
			// finish decrements the cross-node completion count and, on the
			// last node, gathers every node's box memory: coordinator work.
			ctx.Defer(finish)
			return
		}
		cost := sim.Dur(d.lpn*d.N) * d.PerPoint
		if stage == stFwdZ {
			// FFT z, green multiply, and IFFT z all happen locally.
			cost *= 2
		}
		ctx.After(cost, func() {
			d.compute(id, c, stage, green)
			d.emit(id, c, stage)
			d.runStage(id, c, nextStage(stage), green, finish)
		})
	})
}

func nextStage(stage int) int { return stage + 1 }

// compute applies the stage's 1D transforms (and the convolution multiply
// for the final forward stage) to the node's pencil buffer.
func (d *Dist) compute(id topo.NodeID, c topo.Coord, stage int, green *Grid) {
	cl := d.client(id)
	base := stage * distStride
	line := make([]complex128, d.N)
	for l := 0; l < d.lpn; l++ {
		buf := cl.Mem(base+l*d.N*2, d.N*2)
		for i := 0; i < d.N; i++ {
			line[i] = complex(buf[2*i], buf[2*i+1])
		}
		switch stage {
		case stFwdX, stFwdY:
			FFT(line)
		case stFwdZ:
			FFT(line)
			u, v := d.lineCoords(c, stage, l)
			for z := 0; z < d.N; z++ {
				line[z] *= green.At(u, v, z)
			}
			IFFT(line)
		case stInvY, stInvX:
			IFFT(line)
		}
		for i := 0; i < d.N; i++ {
			buf[2*i], buf[2*i+1] = real(line[i]), imag(line[i])
		}
	}
}

// lineCoords returns the global coordinates of the two fixed dimensions of
// node c's l-th pencil line in the given stage's layout. For x pencils the
// pair is (y, z); for y pencils (x, z); for z pencils (x, y).
func (d *Dist) lineCoords(c topo.Coord, stage int, l int) (int, int) {
	var ring int // position along the pencil-owning torus dimension
	switch stage {
	case stFwdX, stInvX:
		ring = c.X
	case stFwdY, stInvY:
		ring = c.Y
	default:
		ring = c.Z
	}
	idx := ring*d.lpn + l // line index within the node row
	lu, lv := idx/d.b, idx%d.b
	switch stage {
	case stFwdX, stInvX:
		return c.Y*d.b + lu, c.Z*d.b + lv
	case stFwdY, stInvY:
		return c.X*d.b + lu, c.Z*d.b + lv
	default:
		return c.X*d.b + lu, c.Y*d.b + lv
	}
}

// sendBoxToX scatters node c's box of the input grid into x pencils.
func (d *Dist) sendBoxToX(c topo.Coord, in *Grid) {
	id := d.m.Torus.ID(c)
	ctr := d.CtrBase + packet.CounterID(stFwdX)
	k := 0
	for lx := 0; lx < d.b; lx++ {
		for ly := 0; ly < d.b; ly++ {
			for lz := 0; lz < d.b; lz++ {
				x, y, z := c.X*d.b+lx, c.Y*d.b+ly, c.Z*d.b+lz
				owner := topo.C(d.ownerInRow(ly, lz), c.Y, c.Z)
				addr := stFwdX*distStride + (d.lineLocal(ly, lz)*d.N+x)*2
				v := in.At(x, y, z)
				d.sender(id, k).Write(packet.Client{Node: d.m.Torus.ID(owner), Kind: packet.Slice0},
					ctr, addr, d.Bytes, real(v), imag(v))
				k++
			}
		}
	}
}

// emit sends the node's freshly computed pencil data into the next stage's
// layout.
func (d *Dist) emit(id topo.NodeID, c topo.Coord, stage int) {
	cl := d.client(id)
	base := stage * distStride
	next := nextStage(stage)
	ctr := d.CtrBase + packet.CounterID(next)
	k := 0
	for l := 0; l < d.lpn; l++ {
		u, v := d.lineCoords(c, stage, l)
		buf := cl.Mem(base+l*d.N*2, d.N*2)
		for i := 0; i < d.N; i++ {
			dstCoord, addr := d.destFor(c, stage, u, v, i)
			d.sender(id, k).Write(packet.Client{Node: d.m.Torus.ID(dstCoord), Kind: packet.Slice0},
				ctr, addr, d.Bytes, buf[2*i], buf[2*i+1])
			k++
		}
	}
}

// destFor maps one grid point, identified by its stage layout (fixed
// coordinates u, v and running coordinate i), to its owner and local
// address in the *next* stage's layout.
func (d *Dist) destFor(c topo.Coord, stage, u, v, i int) (topo.Coord, int) {
	next := nextStage(stage)
	base := next * distStride
	switch stage {
	case stFwdX: // x pencils (u=y, v=z, i=x) -> y pencils (fixed x, z)
		x, y, z := i, u, v
		dst := topo.C(x/d.b, d.ownerInRow(x%d.b, z%d.b), c.Z)
		return dst, base + (d.lineLocal(x%d.b, z%d.b)*d.N+y)*2
	case stFwdY: // y pencils (u=x, v=z, i=y) -> z pencils (fixed x, y)
		x, y, z := u, i, v
		dst := topo.C(c.X, y/d.b, d.ownerInRow(x%d.b, y%d.b))
		return dst, base + (d.lineLocal(x%d.b, y%d.b)*d.N+z)*2
	case stFwdZ: // z pencils (u=x, v=y, i=z) -> y pencils (fixed x, z)
		x, y, z := u, v, i
		dst := topo.C(c.X, d.ownerInRow(x%d.b, z%d.b), z/d.b)
		return dst, base + (d.lineLocal(x%d.b, z%d.b)*d.N+y)*2
	case stInvY: // y pencils (u=x, v=z, i=y) -> x pencils (fixed y, z)
		x, y, z := u, i, v
		dst := topo.C(d.ownerInRow(y%d.b, z%d.b), y/d.b, c.Z)
		return dst, base + (d.lineLocal(y%d.b, z%d.b)*d.N+x)*2
	case stInvX: // x pencils (u=y, v=z, i=x) -> box
		x, y, z := i, u, v
		dst := topo.C(x/d.b, y/d.b, z/d.b)
		local := ((x%d.b)*d.b+(y%d.b))*d.b + (z % d.b)
		return dst, base + local*2
	}
	panic("fft: no next layout")
}
