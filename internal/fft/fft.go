// Package fft provides the fast Fourier transforms behind Anton's
// long-range electrostatics: a from-scratch radix-2 complex FFT, a
// sequential 3D transform used as the ground truth, and a distributed
// dimension-ordered 3D FFT that runs on the simulated machine using
// fine-grained counted remote writes (one grid point per packet), as
// described in Section IV.B.3 of the paper and in Young et al.'s
// companion paper on Anton's 4-microsecond 32x32x32 FFT.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"

	"anton/internal/par"
)

// FFT performs an in-place forward transform of a (whose length must be a
// power of two) using an iterative radix-2 decimation-in-time algorithm.
func FFT(a []complex128) { transform(a, false) }

// IFFT performs an in-place inverse transform of a, including the 1/N
// normalization.
func IFFT(a []complex128) {
	transform(a, true)
	scale := complex(1/float64(len(a)), 0)
	for i := range a {
		a[i] *= scale
	}
}

func transform(a []complex128, inverse bool) {
	n := len(a)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// DFT computes the forward transform by direct summation. O(n^2); used
// only to validate FFT in tests.
func DFT(a []complex128) []complex128 {
	n := len(a)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k*t) / float64(n)
			sum += a[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

// Grid is a cubic 3D complex grid of side N stored in x-major order:
// index = (x*N + y)*N + z.
//
// Workers controls how many goroutines the 3D transforms use: 1 runs
// fully sequentially, 0 (or negative) resolves to GOMAXPROCS. The 1D line
// transforms of a 3D pass touch disjoint memory, so every setting yields
// bit-identical grids.
type Grid struct {
	N       int
	Data    []complex128
	Workers int
}

// NewGrid allocates a zero grid of side n.
func NewGrid(n int) *Grid {
	return &Grid{N: n, Data: make([]complex128, n*n*n)}
}

// Idx returns the linear index of (x, y, z).
func (g *Grid) Idx(x, y, z int) int { return (x*g.N+y)*g.N + z }

// At returns the value at (x, y, z).
func (g *Grid) At(x, y, z int) complex128 { return g.Data[g.Idx(x, y, z)] }

// Set stores v at (x, y, z).
func (g *Grid) Set(x, y, z int, v complex128) { g.Data[g.Idx(x, y, z)] = v }

// Clone returns a deep copy.
func (g *Grid) Clone() *Grid {
	out := NewGrid(g.N)
	out.Workers = g.Workers
	copy(out.Data, g.Data)
	return out
}

// Forward transforms the grid in place: 1D FFTs along x, then y, then z —
// the same dimension order the distributed implementation uses.
func (g *Grid) Forward() { g.apply(FFT) }

// Inverse applies the inverse transform in reverse dimension order.
func (g *Grid) Inverse() { g.applyReverse(IFFT) }

func (g *Grid) apply(f func([]complex128)) {
	g.alongX(f)
	g.alongY(f)
	g.alongZ(f)
}

func (g *Grid) applyReverse(f func([]complex128)) {
	g.alongZ(f)
	g.alongY(f)
	g.alongX(f)
}

// Each pass transforms n*n independent lines. The lines are numbered
// 0..n*n-1 and split into contiguous chunks, one per worker; every line
// reads and writes only its own grid elements, so parallel execution is
// race-free and bit-identical to sequential. alongX and alongY gather
// strided lines through a per-worker scratch buffer; alongZ lines are
// contiguous and transform in place.

func (g *Grid) alongX(f func([]complex128)) {
	n := g.N
	par.ForChunks(par.Workers(g.Workers), n*n, func(lo, hi int) {
		line := make([]complex128, n)
		for l := lo; l < hi; l++ {
			y, z := l/n, l%n
			for x := 0; x < n; x++ {
				line[x] = g.At(x, y, z)
			}
			f(line)
			for x := 0; x < n; x++ {
				g.Set(x, y, z, line[x])
			}
		}
	})
}

func (g *Grid) alongY(f func([]complex128)) {
	n := g.N
	par.ForChunks(par.Workers(g.Workers), n*n, func(lo, hi int) {
		line := make([]complex128, n)
		for l := lo; l < hi; l++ {
			x, z := l/n, l%n
			for y := 0; y < n; y++ {
				line[y] = g.At(x, y, z)
			}
			f(line)
			for y := 0; y < n; y++ {
				g.Set(x, y, z, line[y])
			}
		}
	})
}

func (g *Grid) alongZ(f func([]complex128)) {
	n := g.N
	par.ForChunks(par.Workers(g.Workers), n*n, func(lo, hi int) {
		for l := lo; l < hi; l++ {
			x, y := l/n, l%n
			f(g.Data[g.Idx(x, y, 0) : g.Idx(x, y, 0)+n])
		}
	})
}

// Convolve multiplies the grid's spectrum by green point-wise: forward
// transform, multiply, inverse transform. green is indexed like the grid
// (wave-number space).
func (g *Grid) Convolve(green *Grid) {
	if green.N != g.N {
		panic("fft: green function grid size mismatch")
	}
	g.Forward()
	for i := range g.Data {
		g.Data[i] *= green.Data[i]
	}
	g.Inverse()
}
