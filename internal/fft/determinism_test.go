package fft

import (
	"math/rand"
	"runtime"
	"testing"
)

// The 3D transforms split n*n independent 1D lines across workers; every
// line owns its own grid elements, so any worker count must produce
// bit-identical grids.
func TestGridTransformBitDeterminism(t *testing.T) {
	for _, n := range []int{8, 16} {
		rng := rand.New(rand.NewSource(int64(n)))
		base := NewGrid(n)
		for i := range base.Data {
			base.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		ref := base.Clone()
		ref.Workers = 1
		ref.Forward()
		refRound := ref.Clone()
		refRound.Inverse()
		for _, w := range []int{2, 4, runtime.GOMAXPROCS(0), 0} {
			g := base.Clone()
			g.Workers = w
			g.Forward()
			for i := range g.Data {
				if g.Data[i] != ref.Data[i] {
					t.Fatalf("n=%d workers=%d: forward grid[%d] = %v, want %v", n, w, i, g.Data[i], ref.Data[i])
				}
			}
			g.Inverse()
			for i := range g.Data {
				if g.Data[i] != refRound.Data[i] {
					t.Fatalf("n=%d workers=%d: round-trip grid[%d] differs", n, w, i)
				}
			}
		}
	}
}

func TestCloneCopiesWorkers(t *testing.T) {
	g := NewGrid(4)
	g.Workers = 7
	if c := g.Clone(); c.Workers != 7 {
		t.Fatalf("Clone dropped Workers: got %d", c.Workers)
	}
}
