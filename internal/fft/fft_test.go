package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

const eps = 1e-9

func approxEq(a, b complex128) bool { return cmplx.Abs(a-b) < eps }

func randVec(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

func TestFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		a := randVec(rng, n)
		want := DFT(a)
		FFT(a)
		for i := range a {
			if !approxEq(a[i], want[i]) {
				t.Fatalf("n=%d: FFT[%d] = %v, DFT = %v", n, i, a[i], want[i])
			}
		}
	}
}

func TestFFTInverseRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 32, 256} {
		a := randVec(rng, n)
		orig := append([]complex128(nil), a...)
		FFT(a)
		IFFT(a)
		for i := range a {
			if !approxEq(a[i], orig[i]) {
				t.Fatalf("n=%d: roundtrip[%d] = %v, want %v", n, i, a[i], orig[i])
			}
		}
	}
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of an impulse is all ones.
	a := []complex128{1, 0, 0, 0}
	FFT(a)
	for i, v := range a {
		if !approxEq(v, 1) {
			t.Fatalf("impulse FFT[%d] = %v", i, v)
		}
	}
	// FFT of a constant is an impulse of size n at k=0.
	b := []complex128{1, 1, 1, 1}
	FFT(b)
	if !approxEq(b[0], 4) || !approxEq(b[1], 0) || !approxEq(b[2], 0) || !approxEq(b[3], 0) {
		t.Fatalf("constant FFT = %v", b)
	}
	// Single tone: e^{2*pi*i*x/n} has all energy at k=1.
	n := 8
	c := make([]complex128, n)
	for i := range c {
		c[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(i)/float64(n)))
	}
	FFT(c)
	for k, v := range c {
		want := complex128(0)
		if k == 1 {
			want = complex(float64(n), 0)
		}
		if !approxEq(v, want) {
			t.Fatalf("tone FFT[%d] = %v, want %v", k, v, want)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 32
		a, b := randVec(rng, n), randVec(rng, n)
		alpha := complex(rng.NormFloat64(), rng.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + alpha*b[i]
		}
		FFT(a)
		FFT(b)
		FFT(sum)
		for i := range sum {
			if !approxEq(sum[i], a[i]+alpha*b[i]) {
				t.Fatalf("linearity violated at %d", i)
			}
		}
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 64
	a := randVec(rng, n)
	var timeE float64
	for _, v := range a {
		timeE += real(v)*real(v) + imag(v)*imag(v)
	}
	FFT(a)
	var freqE float64
	for _, v := range a {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-8 {
		t.Fatalf("Parseval violated: time %v, freq/n %v", timeE, freqE/float64(n))
	}
}

func TestFFTNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two length")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestFFTEmptyAndSingle(t *testing.T) {
	FFT(nil) // must not panic
	one := []complex128{5}
	FFT(one)
	if one[0] != 5 {
		t.Fatalf("FFT of singleton = %v", one[0])
	}
}

func TestGridForwardMatchesSeparableDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 4
	g := NewGrid(n)
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := NewGrid(n)
	// Direct 3D DFT.
	for kx := 0; kx < n; kx++ {
		for ky := 0; ky < n; ky++ {
			for kz := 0; kz < n; kz++ {
				var sum complex128
				for x := 0; x < n; x++ {
					for y := 0; y < n; y++ {
						for z := 0; z < n; z++ {
							ang := -2 * math.Pi * float64(kx*x+ky*y+kz*z) / float64(n)
							sum += g.At(x, y, z) * cmplx.Exp(complex(0, ang))
						}
					}
				}
				want.Set(kx, ky, kz, sum)
			}
		}
	}
	f := g.Clone()
	f.Forward()
	for i := range f.Data {
		if cmplx.Abs(f.Data[i]-want.Data[i]) > 1e-8 {
			t.Fatalf("3D FFT[%d] = %v, want %v", i, f.Data[i], want.Data[i])
		}
	}
}

func TestGridRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := NewGrid(8)
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), 0)
	}
	orig := g.Clone()
	g.Forward()
	g.Inverse()
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]-orig.Data[i]) > 1e-9 {
			t.Fatalf("3D roundtrip diverged at %d", i)
		}
	}
}

func TestGridConvolveIdentity(t *testing.T) {
	// Convolving with a green function of all ones is the identity.
	rng := rand.New(rand.NewSource(7))
	g := NewGrid(4)
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), 0)
	}
	orig := g.Clone()
	green := NewGrid(4)
	for i := range green.Data {
		green.Data[i] = 1
	}
	g.Convolve(green)
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]-orig.Data[i]) > 1e-9 {
			t.Fatalf("identity convolution diverged at %d", i)
		}
	}
}

func TestGridConvolveMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	NewGrid(4).Convolve(NewGrid(8))
}

func TestGridIndexing(t *testing.T) {
	g := NewGrid(3)
	g.Set(1, 2, 0, 7)
	if g.At(1, 2, 0) != 7 {
		t.Fatal("Set/At mismatch")
	}
	if g.Idx(2, 2, 2) != 26 {
		t.Fatalf("Idx(2,2,2) = %d", g.Idx(2, 2, 2))
	}
}

func BenchmarkFFT1D32(b *testing.B) {
	a := make([]complex128, 32)
	for i := range a {
		a[i] = complex(float64(i), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(a)
	}
}

func BenchmarkGrid32Forward(b *testing.B) {
	g := NewGrid(32)
	for i := range g.Data {
		g.Data[i] = complex(float64(i%17), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Forward()
	}
}

// Property: the spectrum of a real signal is Hermitian: X[k] = conj(X[n-k]).
func TestFFTHermitianSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 64
		a := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), 0)
		}
		FFT(a)
		for k := 1; k < n; k++ {
			if cmplx.Abs(a[k]-cmplx.Conj(a[n-k])) > 1e-9 {
				t.Fatalf("Hermitian symmetry violated at k=%d", k)
			}
		}
		if imag(a[0]) > 1e-12 {
			t.Fatalf("DC term not real: %v", a[0])
		}
	}
}

// Property: FFT is an isometry up to sqrt(n): shifting the input rotates
// phases but preserves magnitudes.
func TestFFTShiftInvariantMagnitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 32
	a := randVec(rng, n)
	shifted := make([]complex128, n)
	for i := range a {
		shifted[i] = a[(i+5)%n]
	}
	FFT(a)
	FFT(shifted)
	for k := range a {
		if math.Abs(cmplx.Abs(a[k])-cmplx.Abs(shifted[k])) > 1e-9 {
			t.Fatalf("shift changed magnitude at k=%d", k)
		}
	}
}
