package packet

import (
	"bytes"
	"math"
	"testing"
)

// corpusPackets are the valid packets of the unit tests plus wire-format
// corner cases; they seed both the codec tests and the fuzz corpus.
func corpusPackets() []Packet {
	return []Packet{
		{Kind: Write, Counter: 0, Bytes: 32},
		{Kind: Accumulate, Counter: 1, Bytes: 16},
		{Kind: Message, Counter: NoCounter, Bytes: 64},
		{Kind: Write, Src: Client{Node: 7, Kind: Slice2}, Dst: Client{Node: 511, Kind: HTIS},
			Multicast: NoMulticast, Counter: 9, Addr: 1024, Bytes: 16,
			Payload: []float64{1.5, -2.25}, InOrder: true, Seq: 42},
		{Kind: Write, Src: Client{Node: 1, Kind: Slice0}, Dst: Client{Node: 2, Kind: Accum1},
			Multicast: 255, Counter: 3, Bytes: 8, Payload: []float64{math.Pi}},
		{Kind: Write, Counter: 0, Bytes: 0, Multicast: 0},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for i, p := range corpusPackets() {
		enc, err := p.Encode()
		if err != nil {
			t.Fatalf("packet %d: encode: %v", i, err)
		}
		if len(enc) != HeaderBytes+8*len(p.Payload) {
			t.Fatalf("packet %d: encoded %d bytes", i, len(enc))
		}
		q, err := Decode(enc)
		if err != nil {
			t.Fatalf("packet %d: decode: %v", i, err)
		}
		re, err := q.Encode()
		if err != nil {
			t.Fatalf("packet %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("packet %d: re-encoding differs", i)
		}
		if q.Kind != p.Kind || q.Src != p.Src || q.Dst != p.Dst || q.Multicast != p.Multicast ||
			q.Counter != p.Counter || q.Addr != p.Addr || q.Bytes != p.Bytes ||
			q.InOrder != p.InOrder || q.Seq != p.Seq || len(q.Payload) != len(p.Payload) {
			t.Fatalf("packet %d: round trip changed fields: %+v -> %+v", i, p, *q)
		}
		for k := range p.Payload {
			if math.Float64bits(q.Payload[k]) != math.Float64bits(p.Payload[k]) {
				t.Fatalf("packet %d: payload word %d changed", i, k)
			}
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	bad := []Packet{
		{Kind: Write, Counter: 0, Bytes: 257},            // fails Validate
		{Kind: Message, Counter: 2, Bytes: 8},            // fails Validate
		{Kind: Kind(9), Counter: 0, Bytes: 8},            // unknown kind
		{Kind: Write, Counter: 0, Addr: -1},              // negative address
		{Kind: Write, Counter: 0, Multicast: -2},         // below the sentinel
		{Kind: Write, Counter: math.MaxInt16 + 1},        // counter overflow
		{Kind: Write, Counter: 0, Src: Client{Kind: 99}}, // bad client kind
		{Kind: Write, Counter: 0, Src: Client{Node: -1}}, // bad node
		{Kind: Write, Counter: 0, Dst: Client{Kind: -1}}, // bad client kind
	}
	for i, p := range bad {
		if _, err := p.Encode(); err == nil {
			t.Errorf("bad packet %d encoded", i)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid, err := (&Packet{Kind: Write, Counter: 0, Bytes: 8}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mut(b)
		return b
	}
	cases := [][]byte{
		valid[:HeaderBytes-1],                               // truncated header
		append(append([]byte(nil), valid...), 0),            // trailing bytes
		corrupt(func(b []byte) { b[0] = 9 }),                // unknown kind
		corrupt(func(b []byte) { b[1] = 0x80 }),             // unknown flag
		corrupt(func(b []byte) { b[6] = 99 }),               // bad src client kind
		corrupt(func(b []byte) { b[30] = 1 }),               // declared payload missing
		corrupt(func(b []byte) { b[28], b[29] = 2, 1 }),     // Bytes=258 fails Validate
		corrupt(func(b []byte) { b[14], b[15] = 254, 255 }), // counter -2
	}
	for i, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("malformed input %d decoded", i)
		}
	}
}

// FuzzPacketRoundTrip fuzzes the codec's core invariant: any byte string
// either fails Decode, or decodes to a packet that passes Validate and
// re-encodes to exactly the input bytes (the encoding is canonical).
func FuzzPacketRoundTrip(f *testing.F) {
	for _, p := range corpusPackets() {
		enc, err := p.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, HeaderBytes+8))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("decoded packet fails Validate: %v", err)
		}
		re, err := p.Encode()
		if err != nil {
			t.Fatalf("decoded packet fails to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, re)
		}
		q, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded packet fails to decode: %v", err)
		}
		if q.WireBytes() != p.WireBytes() {
			t.Fatalf("wire size changed across round trip")
		}
	})
}
