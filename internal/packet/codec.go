package packet

import (
	"encoding/binary"
	"fmt"
	"math"

	"anton/internal/topo"
)

// Binary wire codec for packets. The encoding mirrors the hardware
// format's shape: a fixed 32-byte header (HeaderBytes) followed by the
// functional payload as 8-byte words. Tag is a host-side trace label and
// is never encoded.
//
// Header layout (little-endian):
//
//	 0     kind
//	 1     flags (bit 0: in-order delivery)
//	 2- 5  source node
//	 6     source client kind
//	 7-10  destination node
//	11     destination client kind
//	12-13  multicast pattern (int16, -1 = unicast)
//	14-15  counter label (int16, -1 = none)
//	16-19  destination address (word index)
//	20-27  sequence number
//	28-29  wire payload size in bytes
//	30-31  functional payload length in words

const flagInOrder = 1 << 0

func encodeClient(b []byte, c Client) error {
	if c.Node < 0 || int64(c.Node) > math.MaxUint32 {
		return fmt.Errorf("packet: node id %d not encodable", c.Node)
	}
	if c.Kind < 0 || c.Kind >= NumClients {
		return fmt.Errorf("packet: client kind %d not encodable", c.Kind)
	}
	binary.LittleEndian.PutUint32(b, uint32(c.Node))
	b[4] = byte(c.Kind)
	return nil
}

func decodeClient(b []byte) (Client, error) {
	c := Client{Node: topo.NodeID(binary.LittleEndian.Uint32(b)), Kind: ClientKind(b[4])}
	if c.Kind >= NumClients {
		return Client{}, fmt.Errorf("packet: client kind %d out of range", c.Kind)
	}
	return c, nil
}

// Encode serializes the packet. It fails on packets that do not satisfy
// Validate or whose fields fall outside the wire format's ranges, so any
// successfully encoded packet decodes back to an identical one.
func (p *Packet) Encode() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Kind < 0 || p.Kind > Message {
		return nil, fmt.Errorf("packet: kind %d not encodable", p.Kind)
	}
	if p.Multicast < NoMulticast {
		return nil, fmt.Errorf("packet: multicast id %d not encodable", p.Multicast)
	}
	if p.Counter < NoCounter || p.Counter > math.MaxInt16 {
		return nil, fmt.Errorf("packet: counter id %d not encodable", p.Counter)
	}
	if p.Addr < 0 || int64(p.Addr) > math.MaxUint32 {
		return nil, fmt.Errorf("packet: address %d not encodable", p.Addr)
	}
	if len(p.Payload) > math.MaxUint16 {
		return nil, fmt.Errorf("packet: %d payload words not encodable", len(p.Payload))
	}
	out := make([]byte, HeaderBytes+8*len(p.Payload))
	out[0] = byte(p.Kind)
	if p.InOrder {
		out[1] |= flagInOrder
	}
	if err := encodeClient(out[2:7], p.Src); err != nil {
		return nil, err
	}
	if err := encodeClient(out[7:12], p.Dst); err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint16(out[12:14], uint16(int16(p.Multicast)))
	binary.LittleEndian.PutUint16(out[14:16], uint16(int16(p.Counter)))
	binary.LittleEndian.PutUint32(out[16:20], uint32(p.Addr))
	binary.LittleEndian.PutUint64(out[20:28], p.Seq)
	binary.LittleEndian.PutUint16(out[28:30], uint16(p.Bytes))
	binary.LittleEndian.PutUint16(out[30:32], uint16(len(p.Payload)))
	for i, v := range p.Payload {
		binary.LittleEndian.PutUint64(out[HeaderBytes+8*i:], math.Float64bits(v))
	}
	return out, nil
}

// Decode parses an encoded packet. It rejects inputs whose length does
// not match the declared payload, whose enumerated fields are out of
// range, or whose decoded packet fails Validate — so every decoded
// packet is well-formed and re-encodes to the identical bytes.
func Decode(b []byte) (*Packet, error) {
	if len(b) < HeaderBytes {
		return nil, fmt.Errorf("packet: %d bytes shorter than the %d-byte header", len(b), HeaderBytes)
	}
	p := &Packet{Kind: Kind(b[0])}
	if p.Kind > Message {
		return nil, fmt.Errorf("packet: kind %d out of range", p.Kind)
	}
	if b[1]&^flagInOrder != 0 {
		return nil, fmt.Errorf("packet: unknown flags %#x", b[1])
	}
	p.InOrder = b[1]&flagInOrder != 0
	var err error
	if p.Src, err = decodeClient(b[2:7]); err != nil {
		return nil, err
	}
	if p.Dst, err = decodeClient(b[7:12]); err != nil {
		return nil, err
	}
	p.Multicast = MulticastID(int16(binary.LittleEndian.Uint16(b[12:14])))
	if p.Multicast < NoMulticast {
		return nil, fmt.Errorf("packet: multicast id %d out of range", p.Multicast)
	}
	p.Counter = CounterID(int16(binary.LittleEndian.Uint16(b[14:16])))
	if p.Counter < NoCounter {
		return nil, fmt.Errorf("packet: counter id %d out of range", p.Counter)
	}
	p.Addr = int(binary.LittleEndian.Uint32(b[16:20]))
	p.Seq = binary.LittleEndian.Uint64(b[20:28])
	p.Bytes = int(binary.LittleEndian.Uint16(b[28:30]))
	words := int(binary.LittleEndian.Uint16(b[30:32]))
	if len(b) != HeaderBytes+8*words {
		return nil, fmt.Errorf("packet: %d bytes, want %d for %d payload words", len(b), HeaderBytes+8*words, words)
	}
	if words > 0 {
		p.Payload = make([]float64, words)
		for i := range p.Payload {
			p.Payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[HeaderBytes+8*i:]))
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
