// Package packet defines Anton's network packet format and client
// addressing. Packets contain 32 bytes of header and 0 to 256 bytes of
// payload; writes of up to 8 bytes travel entirely in the header. Write
// and accumulation packets are labelled with a synchronization-counter
// identifier that the receiving client increments on delivery, which is the
// basis of the counted-remote-write paradigm.
package packet

import (
	"fmt"

	"anton/internal/topo"
)

// Wire-format constants from the paper (Section III.A).
const (
	HeaderBytes     = 32  // every packet carries a 32-byte header
	MaxPayloadBytes = 256 // payload is 0-256 bytes
	// InlineBytes is the largest write whose data rides in the header
	// itself, adding nothing to the wire size.
	InlineBytes = 8
	// AccumWordBytes is the granularity of accumulation-packet payloads:
	// the accumulation memories add 4-byte quantities.
	AccumWordBytes = 4
	// MaxMulticastPatterns is the per-node multicast table capacity.
	MaxMulticastPatterns = 256
)

// ClientKind identifies one of the seven network clients on a node: four
// processing slices, the high-throughput interaction subsystem, and two
// accumulation memories.
type ClientKind int

// The seven per-node network clients.
const (
	Slice0 ClientKind = iota
	Slice1
	Slice2
	Slice3
	HTIS
	Accum0
	Accum1
	NumClients
)

// IsSlice reports whether k is one of the four processing slices.
func (k ClientKind) IsSlice() bool { return k >= Slice0 && k <= Slice3 }

// IsAccum reports whether k is an accumulation memory.
func (k ClientKind) IsAccum() bool { return k == Accum0 || k == Accum1 }

func (k ClientKind) String() string {
	switch k {
	case Slice0, Slice1, Slice2, Slice3:
		return fmt.Sprintf("slice%d", int(k))
	case HTIS:
		return "htis"
	case Accum0:
		return "accum0"
	case Accum1:
		return "accum1"
	}
	return fmt.Sprintf("client(%d)", int(k))
}

// Slice returns the ClientKind for processing slice i in [0,4).
func Slice(i int) ClientKind {
	if i < 0 || i > 3 {
		panic(fmt.Sprintf("packet: slice index %d out of range", i))
	}
	return Slice0 + ClientKind(i)
}

// Accum returns the ClientKind for accumulation memory i in [0,2).
func Accum(i int) ClientKind {
	if i < 0 || i > 1 {
		panic(fmt.Sprintf("packet: accum index %d out of range", i))
	}
	return Accum0 + ClientKind(i)
}

// Client addresses a specific network client on a specific node.
type Client struct {
	Node topo.NodeID
	Kind ClientKind
}

func (c Client) String() string { return fmt.Sprintf("n%d/%s", c.Node, c.Kind) }

// Kind distinguishes the packet types the network carries.
type Kind int

const (
	// Write stores its payload at a pre-arranged address in the target
	// client's local memory and increments the labelled sync counter.
	Write Kind = iota
	// Accumulate adds its payload (4-byte quantities) to the values stored
	// at the target address in an accumulation memory, then increments the
	// labelled sync counter.
	Accumulate
	// Message is delivered to the target processing slice's
	// hardware-managed circular FIFO rather than to a fixed address; used
	// when communication cannot be formulated as counted remote writes
	// (e.g. atom migration).
	Message
)

func (k Kind) String() string {
	switch k {
	case Write:
		return "write"
	case Accumulate:
		return "accum"
	case Message:
		return "message"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// CounterID labels one of a client's synchronization counters.
type CounterID int

// NoCounter marks packets (FIFO messages) that do not increment a counter.
const NoCounter CounterID = -1

// MulticastID indexes a node's multicast lookup table.
type MulticastID int

// NoMulticast marks unicast packets.
const NoMulticast MulticastID = -1

// Packet is a network packet. Payload values are logical 64-bit words used
// by functional models (the MD engine's positions, forces, grid values);
// Bytes is the wire payload size used by all timing models, and need not
// equal 8*len(Payload) — fine-grained MD packets carry compressed fixed
// point data on real Anton.
type Packet struct {
	Kind      Kind
	Src       Client
	Dst       Client      // unicast destination; ignored when Multicast >= 0
	Multicast MulticastID // multicast pattern, or NoMulticast
	Counter   CounterID   // sync counter to increment on delivery
	Addr      int         // destination local-memory address (word index)
	Bytes     int         // wire payload size in bytes (0..256)
	Payload   []float64   // functional payload (may be nil for timing-only runs)
	// InOrder selects the network's in-order delivery guarantee between a
	// fixed source-destination pair (used by migration synchronization).
	InOrder bool
	// Seq is the canonical global send sequence number, assigned by the
	// machine when the injection commits; applications must not set it.
	Seq uint64
	// Ticket is the per-(src,dst) in-order delivery ticket, drawn by the
	// machine at send time in program order for unicast InOrder packets.
	// Simulation-internal bookkeeping: not part of the wire format.
	Ticket uint64
	// Tickets carries the per-destination in-order tickets of a multicast
	// InOrder packet, in the deterministic (BFS) resolution order of the
	// pattern tables. Fan-out copies share the slice read-only.
	// Simulation-internal bookkeeping: not part of the wire format.
	Tickets []DstTicket
	// Tag is an opaque label for tracing and tests.
	Tag string
}

// DstTicket pairs one multicast destination with its in-order ticket.
type DstTicket struct {
	Dst    Client
	Ticket uint64
}

// WireBytes returns the packet's total size on a link: header plus payload,
// with payloads of up to 8 bytes carried inside the header.
func (p *Packet) WireBytes() int {
	if p.Bytes <= InlineBytes {
		return HeaderBytes
	}
	return HeaderBytes + p.Bytes
}

// Validate checks the structural invariants of a packet.
func (p *Packet) Validate() error {
	if p.Bytes < 0 || p.Bytes > MaxPayloadBytes {
		return fmt.Errorf("packet: payload %d bytes outside [0,%d]", p.Bytes, MaxPayloadBytes)
	}
	if p.Kind == Accumulate && p.Bytes%AccumWordBytes != 0 {
		return fmt.Errorf("packet: accumulation payload %d bytes not a multiple of %d", p.Bytes, AccumWordBytes)
	}
	if p.Kind == Message && p.Counter != NoCounter {
		return fmt.Errorf("packet: FIFO message must not carry a counter label")
	}
	if p.Kind != Message && p.Counter < 0 {
		return fmt.Errorf("packet: %v packet requires a counter label", p.Kind)
	}
	if p.Multicast >= MaxMulticastPatterns {
		return fmt.Errorf("packet: multicast pattern %d exceeds table capacity %d", p.Multicast, MaxMulticastPatterns)
	}
	return nil
}

// McEntry is one node's multicast table entry: the set of local clients to
// deliver to and the outgoing torus ports to forward on. This matches the
// paper's mechanism: "a table lookup is used to determine the set of local
// clients and outgoing network links to which the packet should be
// forwarded".
type McEntry struct {
	Local []ClientKind
	Out   []topo.Port
}

// McTable is a per-node multicast lookup table.
type McTable struct {
	entries map[MulticastID]McEntry
}

// NewMcTable returns an empty table.
func NewMcTable() *McTable {
	return &McTable{entries: make(map[MulticastID]McEntry)}
}

// Set installs pattern id. Installing more than MaxMulticastPatterns
// distinct patterns panics, matching the hardware's 256-entry capacity.
func (t *McTable) Set(id MulticastID, e McEntry) {
	if id < 0 || id >= MaxMulticastPatterns {
		panic(fmt.Sprintf("packet: multicast id %d out of range", id))
	}
	if _, ok := t.entries[id]; !ok && len(t.entries) >= MaxMulticastPatterns {
		panic("packet: multicast table full")
	}
	t.entries[id] = e
}

// Lookup returns the entry for id.
func (t *McTable) Lookup(id MulticastID) (McEntry, bool) {
	e, ok := t.entries[id]
	return e, ok
}

// Len returns the number of installed patterns.
func (t *McTable) Len() int { return len(t.entries) }
