package packet

import (
	"testing"
	"testing/quick"

	"anton/internal/topo"
)

func TestWireBytes(t *testing.T) {
	cases := []struct {
		payload, want int
	}{
		{0, 32}, // zero-byte write: header only
		{8, 32}, // up to 8 bytes ride in the header
		{9, 41}, // beyond 8 bytes, payload is carried separately
		{256, 288},
	}
	for _, c := range cases {
		p := Packet{Kind: Write, Counter: 0, Bytes: c.payload}
		if got := p.WireBytes(); got != c.want {
			t.Errorf("WireBytes(%d) = %d, want %d", c.payload, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := Packet{Kind: Write, Counter: 0, Bytes: 32}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid packet rejected: %v", err)
	}
	bad := []Packet{
		{Kind: Write, Counter: 0, Bytes: -1},
		{Kind: Write, Counter: 0, Bytes: 257},
		{Kind: Accumulate, Counter: 0, Bytes: 6},    // not 4-byte quantized
		{Kind: Message, Counter: 3, Bytes: 8},       // FIFO message with counter
		{Kind: Write, Counter: NoCounter, Bytes: 8}, // write without counter
		{Kind: Write, Counter: 0, Bytes: 8, Multicast: 256},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad packet %d accepted", i)
		}
	}
	accOK := Packet{Kind: Accumulate, Counter: 1, Bytes: 16}
	if err := accOK.Validate(); err != nil {
		t.Fatalf("valid accumulation packet rejected: %v", err)
	}
	msgOK := Packet{Kind: Message, Counter: NoCounter, Bytes: 64}
	if err := msgOK.Validate(); err != nil {
		t.Fatalf("valid message rejected: %v", err)
	}
}

// Property: wire size is monotone in payload size and bounded by
// header+payload.
func TestWireBytesMonotoneProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		pa := Packet{Bytes: int(a)}
		pb := Packet{Bytes: int(b)}
		if int(a) <= int(b) && pa.WireBytes() > pb.WireBytes() {
			return false
		}
		return pa.WireBytes() >= HeaderBytes && pa.WireBytes() <= HeaderBytes+int(a)+InlineBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClientKinds(t *testing.T) {
	if NumClients != 7 {
		t.Fatalf("NumClients = %d, want 7 (paper: seven local memories per node)", NumClients)
	}
	for i := 0; i < 4; i++ {
		if !Slice(i).IsSlice() {
			t.Errorf("Slice(%d) not a slice", i)
		}
	}
	if HTIS.IsSlice() || Accum0.IsSlice() {
		t.Error("non-slice kinds reported as slices")
	}
	if !Accum0.IsAccum() || !Accum1.IsAccum() || HTIS.IsAccum() {
		t.Error("IsAccum wrong")
	}
	if Slice(2).String() != "slice2" || HTIS.String() != "htis" || Accum(1).String() != "accum1" {
		t.Error("kind strings wrong")
	}
}

func TestSliceAccumRangePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Slice(4) },
		func() { Slice(-1) },
		func() { Accum(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMcTable(t *testing.T) {
	tab := NewMcTable()
	e := McEntry{Local: []ClientKind{HTIS}, Out: []topo.Port{{Dim: topo.X, Dir: 1}}}
	tab.Set(3, e)
	got, ok := tab.Lookup(3)
	if !ok || len(got.Local) != 1 || got.Local[0] != HTIS {
		t.Fatalf("Lookup(3) = %v, %v", got, ok)
	}
	if _, ok := tab.Lookup(4); ok {
		t.Fatal("Lookup of absent id succeeded")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestMcTableCapacity(t *testing.T) {
	tab := NewMcTable()
	for i := 0; i < MaxMulticastPatterns; i++ {
		tab.Set(MulticastID(i), McEntry{})
	}
	// Overwriting an existing entry is fine even when full.
	tab.Set(0, McEntry{Local: []ClientKind{Slice0}})
	defer func() {
		if recover() == nil {
			t.Error("expected panic when exceeding 256 patterns")
		}
	}()
	// The table is full and id 256 is out of range anyway; use an in-range
	// id by removing none — capacity panic fires first for a fresh id.
	tab.Set(MulticastID(255), McEntry{}) // overwrite ok
	tabFresh := NewMcTable()
	for i := 0; i < MaxMulticastPatterns; i++ {
		tabFresh.Set(MulticastID(i), McEntry{})
	}
	tabFresh.Set(256, McEntry{}) // out of range: panics
}

func TestKindStrings(t *testing.T) {
	if Write.String() != "write" || Accumulate.String() != "accum" || Message.String() != "message" {
		t.Fatal("kind strings wrong")
	}
	c := Client{Node: 5, Kind: Slice1}
	if c.String() != "n5/slice1" {
		t.Fatalf("client string = %q", c.String())
	}
}
