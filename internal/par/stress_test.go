package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestStressOverlappingCalls hammers the primitives with many concurrent,
// nested, and overlapping invocations. It exists for the race detector:
// `go test -race ./internal/par` must pass while ParFor, ForChunks, and
// MapReduce calls from independent goroutines interleave freely, since the
// harness runs experiment sweeps concurrently with kernels that themselves
// fan out.
func TestStressOverlappingCalls(t *testing.T) {
	callers := 8
	rounds := 20
	if testing.Short() {
		rounds = 8
	}
	var grand int64
	var wg sync.WaitGroup
	wg.Add(callers)
	for c := 0; c < callers; c++ {
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Nested use: a MapReduce whose shards run ParFors.
				var local int64
				MapReduce(1+c%4, 16, func(s int) int64 {
					var sub int64
					ParFor(2, 50, func(i int) {
						atomic.AddInt64(&sub, int64(s+i))
					})
					return sub
				}, func(_ int, v int64) { local += v })
				ForChunks(3, 64, func(lo, hi int) {
					atomic.AddInt64(&grand, int64(hi-lo))
				})
				// Every caller and round must agree: sum over s of
				// (50*s + 0+1+...+49) = 50*(0+..+15) + 16*1225.
				if want := int64(50*120 + 16*1225); local != want {
					t.Errorf("caller %d round %d: local = %d, want %d", c, r, local, want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if want := int64(callers) * int64(rounds) * 64; grand != want {
		t.Fatalf("grand = %d, want %d", grand, want)
	}
}
