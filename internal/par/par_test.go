package par

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Fatalf("Workers(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestParForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 2, 5, 64, 1000} {
			hits := make([]int32, n)
			ParFor(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 8} {
		n := 103
		covered := make([]int32, n)
		ForChunks(workers, n, func(lo, hi int) {
			if lo > hi || lo < 0 || hi > n {
				t.Errorf("bad chunk [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
}

func TestMapReduceCombinesInShardOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		const shards = 37
		var order []int
		MapReduce(workers, shards, func(s int) int { return s * s }, func(s, r int) {
			if r != s*s {
				t.Fatalf("shard %d result %d", s, r)
			}
			order = append(order, s)
		})
		if len(order) != shards {
			t.Fatalf("workers=%d: %d combines, want %d", workers, len(order), shards)
		}
		for i, s := range order {
			if s != i {
				t.Fatalf("workers=%d: combine order %v", workers, order)
			}
		}
	}
}

// The core determinism property: a float reduction with non-associative
// rounding gives bit-identical results for every worker count, because the
// combine order is fixed by the shard decomposition.
func TestMapReduceFloatBitDeterminism(t *testing.T) {
	const shards = 64
	rng := rand.New(rand.NewSource(7))
	data := make([][]float64, shards)
	for s := range data {
		data[s] = make([]float64, 1000)
		for i := range data[s] {
			data[s][i] = (rng.Float64() - 0.5) * rng.Float64() * 1e6
		}
	}
	sum := func(workers int) float64 {
		var total float64
		MapReduce(workers, shards, func(s int) float64 {
			var partial float64
			for _, v := range data[s] {
				partial += v
			}
			return partial
		}, func(_ int, r float64) { total += r })
		return total
	}
	want := sum(1)
	for _, workers := range []int{2, 3, 4, 8, runtime.GOMAXPROCS(0)} {
		if got := sum(workers); got != want {
			t.Fatalf("workers=%d: sum %x differs from workers=1 sum %x", workers, got, want)
		}
	}
}

func TestMapReduceZeroShards(t *testing.T) {
	called := false
	MapReduce(4, 0, func(s int) int { return s }, func(int, int) { called = true })
	if called {
		t.Fatal("combine called with zero shards")
	}
}

func TestParForInlineWhenSingleWorker(t *testing.T) {
	// Workers=1 must run on the calling goroutine: writes need no
	// synchronization and are immediately visible.
	total := 0
	ParFor(1, 100, func(i int) { total += i })
	if total != 4950 {
		t.Fatalf("inline sum = %d", total)
	}
}
