// Package par is the deterministic goroutine-parallel compute layer.
//
// Anton itself gets bit-reproducible parallelism from fixed communication
// schedules: every reduction combines its operands in a wired-in order, so
// a simulation step produces the same bits no matter how phases overlap in
// time. This package gives the reproduction's host-side compute the same
// property. The rules are:
//
//   - Work is decomposed into shards whose count and boundaries depend only
//     on the problem (never on the worker count).
//   - Shard results are combined strictly in shard-index order.
//   - The worker count therefore only decides *where* a shard runs, never
//     what is summed with what — so float results are bit-identical for
//     Workers=1, Workers=4, and Workers=GOMAXPROCS.
//
// All helpers run inline on the calling goroutine when the resolved worker
// count (or the amount of work) is 1, so a Workers=1 run spawns no
// goroutines at all.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option: n >= 1 is used as given; zero or
// negative values mean runtime.GOMAXPROCS(0). This is the shared convention
// for every Workers field and -workers flag in the repository.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForChunks splits [0, n) into one contiguous chunk per worker and runs
// body(lo, hi) for each chunk, concurrently when workers > 1. body must
// only write state owned by its own index range; under that contract the
// result is independent of the worker count and of scheduling.
//
// Chunk boundaries DO depend on the worker count here, so ForChunks is only
// appropriate when chunk bodies write disjoint outputs (no accumulation
// across iterations). For order-sensitive reductions use MapReduce.
func ForChunks(workers, n int, body func(lo, hi int)) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		if n > 0 {
			body(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo, hi := k*n/w, (k+1)*n/w
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParFor runs body(i) for every i in [0, n), distributing contiguous index
// blocks over the given number of workers. Each iteration must own its
// outputs (write only state indexed by i); no iteration order may be
// assumed.
func ParFor(workers, n int, body func(i int)) {
	ForChunks(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// MapReduce evaluates mapFn for every shard in [0, shards) on up to
// workers goroutines and feeds the results to combine strictly in
// shard-index order. Shards are handed out dynamically (an atomic work
// counter), so uneven shard costs still load-balance, but the combine
// order — and therefore any float summation the caller performs in
// combine — is fixed by the shard decomposition alone. combine always runs
// on the calling goroutine.
//
// combine(s, r) is invoked once per shard with s ascending from 0 to
// shards-1; r is mapFn(s)'s result. A shard's result is released to the
// garbage collector as soon as it has been combined, so peak memory is
// bounded by the out-of-order completion window, not by the shard count.
func MapReduce[T any](workers, shards int, mapFn func(shard int) T, combine func(shard int, r T)) {
	w := Workers(workers)
	if w > shards {
		w = shards
	}
	if w <= 1 {
		for s := 0; s < shards; s++ {
			combine(s, mapFn(s))
		}
		return
	}

	type slot struct {
		r    T
		done bool
	}
	var (
		mu      sync.Mutex
		cond          = sync.NewCond(&mu)
		results       = make([]slot, shards)
		next    int64 = 0 // next shard to hand out
	)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				s := int(atomic.AddInt64(&next, 1)) - 1
				if s >= shards {
					return
				}
				r := mapFn(s)
				mu.Lock()
				results[s] = slot{r: r, done: true}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	// Drain in shard order on the calling goroutine, releasing each result
	// as soon as it is combined.
	for s := 0; s < shards; s++ {
		mu.Lock()
		for !results[s].done {
			cond.Wait()
		}
		r := results[s].r
		var zero T
		results[s] = slot{r: zero, done: true}
		mu.Unlock()
		combine(s, r)
	}
	wg.Wait()
}
