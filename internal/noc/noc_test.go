package noc

import (
	"testing"

	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
	"testing/quick"
)

func TestHeadline162ns(t *testing.T) {
	m := DefaultModel()
	// One X hop, zero-byte write, slice to slice: the paper's headline.
	got := m.PathLatency([3]int{1, 0, 0}, packet.Slice0, packet.Slice1, packet.HeaderBytes)
	if got != 162*sim.Ns {
		t.Fatalf("single X hop latency = %v, want 162ns", got)
	}
}

func TestFig6ComponentSum(t *testing.T) {
	m := DefaultModel()
	sum := m.SliceSend + m.SrcRing + m.AdapterPair[topo.X] + m.DstRing + m.Deliver
	if sum != 162*sim.Ns {
		t.Fatalf("Fig. 6 components sum to %v, want 162ns", sum)
	}
	// Individual Fig. 6 values.
	if m.SliceSend != 42*sim.Ns || m.SrcRing != 19*sim.Ns || m.DstRing != 25*sim.Ns || m.Deliver != 36*sim.Ns {
		t.Fatal("Fig. 6 segment values drifted from the paper")
	}
	if m.AdapterPair[topo.X] != 40*sim.Ns {
		t.Fatalf("adapter pair = %v, want 40ns (20ns per adapter)", m.AdapterPair[topo.X])
	}
}

func TestHopIncrements(t *testing.T) {
	m := DefaultModel()
	if got := m.HopIncrement(topo.X); got != 76*sim.Ns {
		t.Errorf("X hop increment = %v, want 76ns (Fig. 5)", got)
	}
	if got := m.HopIncrement(topo.Y); got != 54*sim.Ns {
		t.Errorf("Y hop increment = %v, want 54ns (Fig. 5)", got)
	}
	if got := m.HopIncrement(topo.Z); got != 54*sim.Ns {
		t.Errorf("Z hop increment = %v, want 54ns (Fig. 5)", got)
	}
}

func TestPathLatencyLinearInHops(t *testing.T) {
	m := DefaultModel()
	base := m.PathLatency([3]int{1, 0, 0}, packet.Slice0, packet.Slice0, 32)
	for h := 2; h <= 4; h++ {
		got := m.PathLatency([3]int{h, 0, 0}, packet.Slice0, packet.Slice0, 32)
		want := base + sim.Dur(h-1)*m.HopIncrement(topo.X)
		if got != want {
			t.Fatalf("%d X hops = %v, want %v", h, got, want)
		}
	}
	// 4 X hops + Y and Z hops, as in the Fig. 5 measurement path.
	got := m.PathLatency([3]int{4, 4, 4}, packet.Slice0, packet.Slice0, 32)
	want := 162*sim.Ns + 3*76*sim.Ns + 8*54*sim.Ns
	if got != want {
		t.Fatalf("12-hop latency = %v, want %v", got, want)
	}
}

func TestTwelveHopsAboutFiveTimesOneHop(t *testing.T) {
	// Paper: communication between the two most distant nodes in an 8x8x8
	// machine has a latency five times higher than neighbours.
	m := DefaultModel()
	one := m.PathLatency([3]int{1, 0, 0}, packet.Slice0, packet.Slice0, 32)
	twelve := m.PathLatency([3]int{4, 4, 4}, packet.Slice0, packet.Slice0, 32)
	ratio := float64(twelve) / float64(one)
	if ratio < 4.5 || ratio > 5.5 {
		t.Fatalf("12-hop / 1-hop = %.2f, want ~5", ratio)
	}
}

func TestZeroHopLocalDelivery(t *testing.T) {
	m := DefaultModel()
	got := m.PathLatency([3]int{0, 0, 0}, packet.Slice0, packet.Slice1, 32)
	want := m.SliceSend + m.LocalRing + m.Deliver
	if got != want {
		t.Fatalf("local latency = %v, want %v", got, want)
	}
	if got >= 162*sim.Ns {
		t.Fatalf("local latency %v should undercut the 1-hop 162ns", got)
	}
}

func TestExtraSerialization(t *testing.T) {
	m := DefaultModel()
	if m.ExtraSerialization(32) != 0 {
		t.Error("header-only packet should pay no extra serialization")
	}
	if m.ExtraSerialization(0) != 0 {
		t.Error("negative extra must clamp to zero")
	}
	got := m.ExtraSerialization(288)
	if got != 256*193 {
		t.Errorf("256B payload serialization = %v, want %v", got, sim.Dur(256*193))
	}
}

func TestEffectiveDataBandwidth(t *testing.T) {
	// A max-size packet must sustain ~36.8 Gbit/s of payload.
	m := DefaultModel()
	service := m.LinkService(288)
	gbps := 256 * 8 / service.Ns()
	if gbps < 36 || gbps > 38 {
		t.Fatalf("max-packet payload bandwidth = %.2f Gbit/s, want ~36.8", gbps)
	}
}

func TestHalfBandwidthMessageSize(t *testing.T) {
	// Paper SIII.D: 50%% of the maximum data bandwidth is achieved with
	// 28-byte messages. Find our model's half-power point.
	m := DefaultModel()
	peak := 256.0 / m.LinkService(288).Ns()
	half := 0
	for s := 1; s <= 256; s++ {
		wire := packet.HeaderBytes + s
		if s <= packet.InlineBytes {
			wire = packet.HeaderBytes
		}
		tput := float64(s) / m.LinkService(wire).Ns()
		if tput >= peak/2 {
			half = s
			break
		}
	}
	if half < 20 || half > 36 {
		t.Fatalf("half-bandwidth message size = %dB, want within ~28B +/- 8", half)
	}
}

func TestSendAndDeliverDispatch(t *testing.T) {
	m := DefaultModel()
	if m.SendLatency(packet.Slice2) != m.SliceSend {
		t.Error("slice send latency wrong")
	}
	if m.SendLatency(packet.HTIS) != m.HTISSend {
		t.Error("HTIS send latency wrong")
	}
	if m.SendGap(packet.HTIS) != m.HTISSendGap || m.SendGap(packet.Slice0) != m.SliceSendGap {
		t.Error("send gaps wrong")
	}
	if m.DeliverLatency(packet.Accum0) != m.AccumDeliver {
		t.Error("accum deliver latency wrong")
	}
	if m.DeliverLatency(packet.HTIS) != m.Deliver {
		t.Error("HTIS deliver latency wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic: accumulation memories cannot send")
		}
	}()
	m.SendLatency(packet.Accum1)
}

func TestSendLatencyVsGap(t *testing.T) {
	// The gap (occupancy) must be much smaller than the latency, otherwise
	// fine-grained messaging could not be efficient (Fig. 7).
	m := DefaultModel()
	if m.SliceSendGap*3 > m.SliceSend {
		t.Fatalf("send gap %v too large relative to send latency %v", m.SliceSendGap, m.SliceSend)
	}
}

func TestAccumPollPenalty(t *testing.T) {
	// Paper SIV.B.4: polling accumulation-memory counters costs much more
	// than local polling — this drives the all-reduce design.
	m := DefaultModel()
	if m.AccumPoll <= 2*m.Deliver {
		t.Fatalf("AccumPoll %v should be much larger than local poll %v", m.AccumPoll, m.Deliver)
	}
}

func TestHTISIngestFasterThanRing(t *testing.T) {
	m := DefaultModel()
	if m.ClientService(packet.HTIS, 64) >= m.ClientService(packet.Slice0, 64) {
		t.Fatal("HTIS ingest must be faster than a slice's ring station")
	}
	if m.ClientService(packet.Accum0, 64) != m.ClientService(packet.Slice0, 64) {
		t.Fatal("accumulation memories drain at ring-station rate")
	}
}

// Property (testing/quick): contention-free path latency is monotone in
// per-dimension hop counts.
func TestPathLatencyMonotoneProperty(t *testing.T) {
	m := DefaultModel()
	f := func(hx, hy, hz uint8) bool {
		h := [3]int{int(hx % 8), int(hy % 8), int(hz % 8)}
		base := m.PathLatency(h, packet.Slice0, packet.Slice0, 64)
		for d := 0; d < 3; d++ {
			more := h
			more[d]++
			if m.PathLatency(more, packet.Slice0, packet.Slice0, 64) <= base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
