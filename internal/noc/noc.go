// Package noc holds the calibrated timing model for Anton's on-chip
// six-router ring, link adapters, and inter-node torus links.
//
// The segment latencies come from the paper's own hardware breakdown
// (Figure 6): a write packet initiated in a processing slice takes 42 ns to
// reach the on-chip ring, 19 ns to traverse the ring to the outgoing link
// adapter, 20 ns through each link adapter (wire delay folded in), 25 ns
// from the arriving adapter to the destination client, and 36 ns for the
// local-memory write, synchronization-counter increment, and successful
// poll — 162 ns end to end for one X hop. Pass-through traffic costs 76 ns
// per X hop and 54 ns per Y or Z hop (Figure 5), because X-dimension
// traffic traverses more on-chip routers per node.
package noc

import (
	"fmt"

	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// Model is the set of timing parameters for a node and its links. All
// values are sim.Dur (picoseconds). The zero value is not useful; start
// from DefaultModel.
type Model struct {
	// SliceSend is the latency from a processing slice's software issuing a
	// send instruction to the packet header entering the on-chip ring
	// (Fig. 6: 42 ns).
	SliceSend sim.Dur
	// HTISSend is the corresponding injection latency for the HTIS, whose
	// hardwired pipelines assemble packets without software involvement.
	HTISSend sim.Dur
	// SliceSendGap is the minimum spacing between consecutive packets
	// injected by one slice; hardware support for quickly assembling
	// packets makes this far smaller than SliceSend (which is a pipeline
	// latency, not an occupancy).
	SliceSendGap sim.Dur
	// HTISSendGap is the minimum spacing between consecutive HTIS packets.
	HTISSendGap sim.Dur
	// SrcRing is the on-chip ring traversal from the sending client to the
	// outgoing link adapter (Fig. 6: 19 ns, two router hops).
	SrcRing sim.Dur
	// LocalRing is the ring traversal for node-local deliveries (the
	// zero-hop case of Fig. 5).
	LocalRing sim.Dur
	// AdapterPair is the combined egress-adapter + passive-wire + ingress-
	// adapter latency of one link traversal, per dimension (Fig. 6: 20 ns
	// per adapter; wire delay up to 4/8/10 ns for X/Y/Z folded in).
	AdapterPair [topo.NumDims]sim.Dur
	// Through is the on-chip latency for pass-through traffic between the
	// arriving adapter and the next outgoing adapter, indexed by the
	// *outgoing* hop's dimension. Calibrated so a through X hop costs
	// 76 ns total and a through Y/Z hop 54 ns (Fig. 5).
	Through [topo.NumDims]sim.Dur
	// DstRing is the ring traversal from the arriving link adapter to the
	// destination client (Fig. 6: 25 ns, three router hops).
	DstRing sim.Dur
	// Deliver is the local-memory write + synchronization-counter update +
	// successful local poll at a slice or HTIS (Fig. 6: 36 ns).
	Deliver sim.Dur
	// AccumDeliver is the accumulation-memory update + counter increment.
	AccumDeliver sim.Dur
	// AccumPoll is the extra cost for a processing slice to poll an
	// accumulation memory's synchronization counter across the on-chip
	// network (the paper: "much larger" than local polling; this figure
	// motivates summing reductions in the slices rather than the
	// accumulation memories).
	AccumPoll sim.Dur
	// FIFOPoll is the software cost for a Tensilica core to poll the
	// message FIFO's tail pointer and begin processing one message.
	FIFOPoll sim.Dur
	// LinkPsPerByte is the inter-node link occupancy per wire byte.
	// Calibrated so a maximum-size packet (32 B header + 256 B payload)
	// sustains the paper's 36.8 Gbit/s effective data bandwidth.
	LinkPsPerByte sim.Dur
	// ClientPsPerByte is the delivery-port occupancy per wire byte at a
	// receiving client, derived from the 124.2 Gbit/s on-chip ring.
	ClientPsPerByte sim.Dur
	// HTISRecvPsPerByte is the faster delivery-port occupancy of the HTIS,
	// whose hardwired input buffers ingest the position stream from up to
	// 17 import sources at well above single-ring-station rate.
	HTISRecvPsPerByte sim.Dur
	// FIFOCapacity is the number of messages the hardware-managed receive
	// FIFO holds before exerting backpressure into the network.
	FIFOCapacity int
}

// DefaultModel returns the paper-calibrated timing model.
func DefaultModel() Model {
	return Model{
		SliceSend:    42 * sim.Ns,
		HTISSend:     20 * sim.Ns,
		SliceSendGap: 11 * sim.Ns,
		HTISSendGap:  4 * sim.Ns,
		SrcRing:      19 * sim.Ns,
		LocalRing:    26 * sim.Ns,
		AdapterPair: [topo.NumDims]sim.Dur{
			40 * sim.Ns, 40 * sim.Ns, 40 * sim.Ns,
		},
		Through: [topo.NumDims]sim.Dur{
			36 * sim.Ns, 14 * sim.Ns, 14 * sim.Ns,
		},
		DstRing:      25 * sim.Ns,
		Deliver:      36 * sim.Ns,
		AccumDeliver: 30 * sim.Ns,
		AccumPoll:    150 * sim.Ns,
		FIFOPoll:     60 * sim.Ns,
		// 288 wire bytes in 55.65 ns -> 256 payload bytes at 36.8 Gbit/s.
		LinkPsPerByte:     193,
		ClientPsPerByte:   64, // 124.2 Gbit/s ~ 15.5 B/ns
		HTISRecvPsPerByte: 32,
		FIFOCapacity:      128,
	}
}

// Lookahead returns the minimum simulated latency any packet needs to
// cross between two nodes: the smallest per-dimension link-adapter-pair
// latency. It is the conservative PDES window (sim.Partition) for machines
// built on this model — an event chain can only hand off to another node's
// domain at least this far in the future, so a window of this width never
// splits a cross-domain interaction.
func (m *Model) Lookahead() sim.Dur {
	min := m.AdapterPair[0]
	for _, d := range m.AdapterPair[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// SendLatency returns the injection latency for a packet sent by client
// kind k. Accumulation memories cannot send packets.
func (m *Model) SendLatency(k packet.ClientKind) sim.Dur {
	switch {
	case k.IsSlice():
		return m.SliceSend
	case k == packet.HTIS:
		return m.HTISSend
	default:
		panic("noc: accumulation memories cannot send packets")
	}
}

// SendGap returns the minimum inter-packet injection spacing for client
// kind k.
func (m *Model) SendGap(k packet.ClientKind) sim.Dur {
	if k == packet.HTIS {
		return m.HTISSendGap
	}
	return m.SliceSendGap
}

// DeliverLatency returns the delivery (memory update + counter + poll)
// latency at a client of kind k.
func (m *Model) DeliverLatency(k packet.ClientKind) sim.Dur {
	if k.IsAccum() {
		return m.AccumDeliver
	}
	return m.Deliver
}

// ExtraSerialization returns the link serialization time beyond the
// header-sized minimum already folded into the adapter latencies. Zero-byte
// (header-only) packets pay nothing extra.
func (m *Model) ExtraSerialization(wireBytes int) sim.Dur {
	extra := wireBytes - packet.HeaderBytes
	if extra <= 0 {
		return 0
	}
	return sim.Dur(extra) * m.LinkPsPerByte
}

// LinkService returns the full link occupancy for a packet of the given
// wire size: this is what bounds sustained bandwidth.
func (m *Model) LinkService(wireBytes int) sim.Dur {
	return sim.Dur(wireBytes) * m.LinkPsPerByte
}

// ClientService returns the receive-port occupancy at a client of kind k
// for a packet of the given wire size.
func (m *Model) ClientService(k packet.ClientKind, wireBytes int) sim.Dur {
	if k == packet.HTIS {
		return sim.Dur(wireBytes) * m.HTISRecvPsPerByte
	}
	return sim.Dur(wireBytes) * m.ClientPsPerByte
}

// PathLatency computes the contention-free end-to-end latency of a single
// counted remote write between two clients, given the per-dimension hop
// counts of the dimension-ordered route. It is the closed-form counterpart
// of the event-driven model in package machine and is used to validate it.
//
// hops is the per-dimension hop count; src and dst are the endpoint client
// kinds; wireBytes is the packet's wire size.
func (m *Model) PathLatency(hops [topo.NumDims]int, src, dst packet.ClientKind, wireBytes int) sim.Dur {
	total := m.SendLatency(src)
	nhops := hops[0] + hops[1] + hops[2]
	if nhops == 0 {
		total += m.LocalRing
	} else {
		total += m.SrcRing
		first := true
		for d := topo.X; d < topo.NumDims; d++ {
			for i := 0; i < hops[d]; i++ {
				if !first {
					// Pass-through at an intermediate node, charged at the
					// outgoing hop's dimension.
					total += m.Through[d]
				}
				total += m.AdapterPair[d]
				first = false
			}
		}
		total += m.ExtraSerialization(wireBytes)
		total += m.DstRing
	}
	total += m.DeliverLatency(dst)
	return total
}

// HopIncrement returns the contention-free marginal latency of one
// additional pass-through hop in dimension d: 76 ns for X and 54 ns for Y/Z
// under the default model (Fig. 5's slopes).
func (m *Model) HopIncrement(d topo.Dim) sim.Dur {
	return m.Through[d] + m.AdapterPair[d]
}

// Stage is one named component of a contention-free end-to-end latency,
// as in the paper's Figure 6 breakdown. The labels match the stage labels
// the measured-lifecycle attribution (internal/metrics) derives from
// observed packet events, so the two can be compared stage by stage: this
// is the calibrated ground truth the observability layer cross-validates
// against.
type Stage struct {
	Label string
	Dur   sim.Dur
}

// Stages returns the contention-free stage-by-stage latency attribution
// of a single counted remote write: the closed-form counterpart of a
// measured metrics.Lifecycle.Stages(). The stage durations sum exactly to
// PathLatency(hops, src, dst, wireBytes).
func (m *Model) Stages(hops [topo.NumDims]int, src, dst packet.ClientKind, wireBytes int) []Stage {
	var out []Stage
	add := func(label string, d sim.Dur) { out = append(out, Stage{label, d}) }
	add("send initiation", m.SendLatency(src))
	nhops := hops[0] + hops[1] + hops[2]
	if nhops == 0 {
		add("local ring traversal", m.LocalRing)
	} else {
		add("source ring traversal", m.SrcRing)
		hop := 0
		for d := topo.X; d < topo.NumDims; d++ {
			for i := 0; i < hops[d]; i++ {
				hop++
				if hop > 1 {
					add(fmt.Sprintf("through node (%v hop %d)", d, hop), m.Through[d])
				}
				add(fmt.Sprintf("link adapters + wire (%v hop %d)", d, hop), m.AdapterPair[d])
			}
		}
		add("payload serialization + destination ring traversal",
			m.ExtraSerialization(wireBytes)+m.DstRing)
	}
	add("memory write + counter increment + successful poll", m.DeliverLatency(dst))
	return out
}
