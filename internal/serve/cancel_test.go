package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// The cancellation battery. The contract under test: a cancelled or
// timed-out run never populates the cache or counts as completed, the
// worker it occupied is freed within one abort-check interval, joiners
// of a cancelled leader re-arm and recompute rather than erroring, and
// the recomputed bytes are identical to an uninterrupted run's.

// httpDo issues one request and returns (status, body, header).
func httpDo(t *testing.T, method, url, body string) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header
}

// submitJob POSTs an async job and returns its id.
func submitJob(t *testing.T, base, body string) string {
	t.Helper()
	status, b, _ := httpDo(t, "POST", base+"/api/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, b)
	}
	var st struct {
		Job string `json:"job"`
	}
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("submit body %q: %v", b, err)
	}
	return st.Job
}

// jobStateOf fetches a job's current state string.
func jobStateOf(t *testing.T, base, id string) string {
	t.Helper()
	status, b, _ := httpDo(t, "GET", base+"/api/v1/jobs/"+id, "")
	if status != http.StatusOK {
		t.Fatalf("job status: %d %s", status, b)
	}
	var st struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	return st.State
}

// waitUntil polls cond every 2ms until it holds or the bound expires.
func waitUntil(t *testing.T, bound time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(bound)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %s waiting for %s", bound, what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// abortBound is the generous ceiling on cancel-to-worker-freed latency.
// The real figure is one abort-check interval — a sweep point, a 4096
// event batch, or one PDES window, i.e. milliseconds — but CI boxes
// deserve slack. The bound is asserted even in -short mode.
const abortBound = 5 * time.Second

// longDES is a DES request slow enough (~6s quick) that cancelling it
// mid-run is race-free, but whose abort costs only one check interval.
const longDES = `{"experiment":"killsweep","quick":true}`

// TestCancelRunningJobNeverCachedAndFreesWorker cancels a job mid-DES
// and requires: the job reports cancelled, nothing lands in the cache or
// the completed-entry count, the abort is observed within abortBound,
// and the (single) DES worker is free to run the next request promptly
// rather than grinding out the cancelled simulation.
func TestCancelRunningJobNeverCachedAndFreesWorker(t *testing.T) {
	srv, err := New(Config{Sched: SchedConfig{DESWorkers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	digest := mustNormalize(t, longDES).Digest()
	id := submitJob(t, ts.URL, longDES)
	waitUntil(t, 10*time.Second, "job to start running", func() bool {
		return jobStateOf(t, ts.URL, id) == string(StateRunning)
	})

	cancelled := time.Now()
	status, b, _ := httpDo(t, "DELETE", ts.URL+"/api/v1/jobs/"+id, "")
	if status != http.StatusOK {
		t.Fatalf("cancel: %d %s", status, b)
	}
	if st := jobStateOf(t, ts.URL, id); st != string(StateCancelled) {
		t.Fatalf("job state after DELETE = %q, want cancelled", st)
	}

	// The worker observes the cancelled context at the next abort check
	// and withdraws the entry; that Abort is the worker-freed signal.
	waitUntil(t, abortBound, "the worker to abort the run", func() bool {
		return srv.cache.Stats().Aborts >= 1
	})
	t.Logf("cancel-to-abort latency: %s", time.Since(cancelled).Round(time.Millisecond))

	if _, ok := srv.cache.Peek(digest); ok {
		t.Fatal("cancelled run's result is servable from the cache")
	}
	if st := srv.cache.Stats(); st.Entries != 0 {
		t.Fatalf("cancelled run counted as a completed entry: %+v", st)
	}

	// Worker freed: a cheap run on the same single-worker queue must
	// complete far sooner than the cancelled simulation would have.
	quick := time.Now()
	status, b, _ = httpDo(t, "POST", ts.URL+"/api/v1/run", `{"experiment":"fig6","quick":true}`)
	if status != http.StatusOK {
		t.Fatalf("post-cancel run: %d %s", status, b)
	}
	if el := time.Since(quick); el > abortBound {
		t.Fatalf("worker not freed: follow-up run took %s", el)
	}
}

// TestTimeoutNeverCached submits a long run with a tiny timeout_ms and
// requires a 504, a job that settles in the timeout state, and a cache
// with no trace of the truncated computation.
func TestTimeoutNeverCached(t *testing.T) {
	srv, err := New(Config{Sched: SchedConfig{DESWorkers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"experiment":"killsweep","quick":true,"timeout_ms":150}`
	digest := mustNormalize(t, body).Digest()

	status, b, _ := httpDo(t, "POST", ts.URL+"/api/v1/run", body)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", status, b)
	}
	if !strings.Contains(string(b), "deadline-exceeded") {
		t.Fatalf("504 body lacks deadline-exceeded code: %s", b)
	}

	waitUntil(t, abortBound, "the timed-out run to abort", func() bool {
		return srv.cache.Stats().Aborts >= 1
	})
	if _, ok := srv.cache.Peek(digest); ok {
		t.Fatal("timed-out run's result is servable from the cache")
	}
	if st := srv.cache.Stats(); st.Entries != 0 {
		t.Fatalf("timed-out run counted as a completed entry: %+v", st)
	}

	// The async path records the distinct timeout state.
	id := submitJob(t, ts.URL, body)
	waitUntil(t, abortBound, "async job to settle in timeout", func() bool {
		return jobStateOf(t, ts.URL, id) == string(StateTimeout)
	})
	if st := srv.cache.Stats(); st.Entries != 0 {
		t.Fatalf("async timed-out run counted as completed: %+v", st)
	}
}

// TestJoinerOfCancelledLeaderReruns pins the single-flight re-arm: a
// synchronous request that joined an in-flight entry whose leader is
// cancelled must become the new owner, recompute, and answer bytes
// identical to an uninterrupted run — never an error.
func TestJoinerOfCancelledLeaderReruns(t *testing.T) {
	srv, err := New(Config{Sched: SchedConfig{DESWorkers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the only DES worker so the leader stays queued and can be
	// cancelled before it starts.
	blocker := submitJob(t, ts.URL, longDES)
	waitUntil(t, 10*time.Second, "blocker to start running", func() bool {
		return jobStateOf(t, ts.URL, blocker) == string(StateRunning)
	})

	const cheap = `{"experiment":"fig5","quick":true}`
	req := mustNormalize(t, cheap)
	want := runExperiment(req, req.Session(1, nil)).Response

	leader := submitJob(t, ts.URL, cheap)
	if st := jobStateOf(t, ts.URL, leader); st != string(StateQueued) {
		t.Fatalf("leader state = %q, want queued behind the blocker", st)
	}

	type runReply struct {
		status int
		body   []byte
		cache  string
	}
	joined := make(chan runReply, 1)
	go func() {
		status, b, hdr := httpDo(t, "POST", ts.URL+"/api/v1/run", cheap)
		joined <- runReply{status, b, hdr.Get(CacheHeader)}
	}()
	waitUntil(t, abortBound, "the synchronous request to join the leader", func() bool {
		return srv.cache.Stats().Joins >= 1
	})

	// Cancel the queued leader: its entry aborts, the joiner re-arms as
	// the new owner and resubmits. Then cancel the blocker to free the
	// worker for the joiner's recompute.
	if status, b, _ := httpDo(t, "DELETE", ts.URL+"/api/v1/jobs/"+leader, ""); status != http.StatusOK {
		t.Fatalf("cancel leader: %d %s", status, b)
	}
	if st := jobStateOf(t, ts.URL, leader); st != string(StateCancelled) {
		t.Fatalf("leader state after DELETE = %q, want cancelled", st)
	}
	if status, b, _ := httpDo(t, "DELETE", ts.URL+"/api/v1/jobs/"+blocker, ""); status != http.StatusOK {
		t.Fatalf("cancel blocker: %d %s", status, b)
	}

	var got runReply
	select {
	case got = <-joined:
	case <-time.After(2 * abortBound):
		t.Fatal("joiner never completed after its leader was cancelled")
	}
	if got.status != http.StatusOK {
		t.Fatalf("joiner got %d %s, want a recomputed 200", got.status, got.body)
	}
	if string(got.body) != string(want) {
		t.Fatalf("joiner's recomputed bytes differ from an uninterrupted run\n got: %s\nwant: %s", got.body, want)
	}
	// The recompute landed in the cache; a follow-up hit serves the same
	// bytes.
	status, b, hdr := httpDo(t, "POST", ts.URL+"/api/v1/run", cheap)
	if status != http.StatusOK || hdr.Get(CacheHeader) != string(Hit) {
		t.Fatalf("follow-up: %d cache=%s %s", status, hdr.Get(CacheHeader), b)
	}
	if string(b) != string(want) {
		t.Fatal("follow-up hit served different bytes than the recompute")
	}
}

// TestCancelMidRunThenRecomputeByteIdentical cancels a moderately long
// run mid-flight, then requires the identical request to recompute from
// scratch into exactly the bytes an uninterrupted run produces — the
// end-to-end form of the simulator's clean-prefix abort guarantee.
func TestCancelMidRunThenRecomputeByteIdentical(t *testing.T) {
	srv, err := New(Config{Sched: SchedConfig{DESWorkers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const body = `{"experiment":"table2","quick":true}`
	req := mustNormalize(t, body)
	digest := req.Digest()
	want := runExperiment(req, req.Session(1, nil)).Response

	// table2 runs ~hundreds of ms: long enough to catch mid-run, cheap
	// enough to recompute. If a pathologically slow poll ever loses the
	// race and the run completes first, evict and try again.
	aborted := false
	for attempt := 0; attempt < 5 && !aborted; attempt++ {
		id := submitJob(t, ts.URL, body)
		waitUntil(t, 10*time.Second, "job to leave the queue", func() bool {
			return jobStateOf(t, ts.URL, id) != string(StateQueued)
		})
		httpDo(t, "DELETE", ts.URL+"/api/v1/jobs/"+id, "")
		waitUntil(t, abortBound, "job to settle", func() bool {
			st := jobStateOf(t, ts.URL, id)
			return st == string(StateCancelled) || st == string(StateDone)
		})
		if jobStateOf(t, ts.URL, id) == string(StateCancelled) {
			waitUntil(t, abortBound, "the cancelled run to abort its entry", func() bool {
				_, ok := srv.cache.Peek(digest)
				return !ok && srv.cache.Stats().Aborts >= 1
			})
			aborted = true
		} else {
			srv.cache.Evict(digest) // completed before the cancel landed; retry
		}
	}
	if !aborted {
		t.Skip("could not cancel mid-run in 5 attempts (machine too slow/fast)")
	}

	status, b, hdr := httpDo(t, "POST", ts.URL+"/api/v1/run", body)
	if status != http.StatusOK || hdr.Get(CacheHeader) != string(Miss) {
		t.Fatalf("recompute: %d cache=%s %s", status, hdr.Get(CacheHeader), b)
	}
	if string(b) != string(want) {
		t.Fatalf("recompute after mid-run cancel drifted\n got: %s\nwant: %s", b, want)
	}
}
