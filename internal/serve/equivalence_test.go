package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"anton/internal/harness"
)

// The cache-equivalence battery pins the serving tier's core promise:
// a cached response is byte-identical to a fresh run. Three tiers keep
// it affordable on the default `go test` run:
//
//   - -short: the cheap subset, with the full miss/hit/evict/recompute
//     cycle (this is what the -race CI stage replays);
//   - default: every experiment except the two multi-minute MD sweeps
//     (fig11, fig12) gets the miss/hit cycle; the cheap subset keeps
//     the evict-then-recompute identity check;
//   - ANTON_SERVE_FULL=1: everything, including fig11/fig12, with the
//     full cycle.
func equivalenceRequests(t *testing.T) (reqs []Request, recompute map[string]bool) {
	cheap := []Request{
		{Experiment: "fastpath", Fidelity: harness.FidelityAnalytic, Quick: true},
		{Experiment: "fig5", Quick: true},
		{Experiment: "fig6", Quick: true},
		{Experiment: "table1", Quick: true},
		{Experiment: "fig6", Faults: "seed=7,corrupt=1e-4,retry=250ns", Quick: true},
	}
	recompute = map[string]bool{}
	for _, r := range cheap {
		n, err := Normalize(r)
		if err != nil {
			t.Fatal(err)
		}
		recompute[n.Digest()] = true
	}
	if testing.Short() {
		return cheap, recompute
	}
	full := os.Getenv("ANTON_SERVE_FULL") != ""
	reqs = cheap
	for _, e := range harness.Experiments() {
		switch e.ID {
		case "fig5", "fig6", "table1", "fastpath":
			continue // already in the cheap subset
		case "fig11", "fig12":
			if !full {
				continue
			}
		}
		reqs = append(reqs, Request{Experiment: e.ID, Quick: true})
		if full {
			n, err := Normalize(Request{Experiment: e.ID, Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			recompute[n.Digest()] = true
		}
	}
	// The DES tier of the fastpath experiment exercises the differential
	// path the analytic entry skips.
	reqs = append(reqs, Request{Experiment: "fastpath", Quick: true})
	return reqs, recompute
}

func postRun(t *testing.T, url string, req Request) (Outcome, []byte) {
	t.Helper()
	body, err := marshalRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/api/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /run %s: %d %s", body, resp.StatusCode, out)
	}
	return Outcome(resp.Header.Get(CacheHeader)), out
}

func marshalRequest(r Request) ([]byte, error) {
	b := &bytes.Buffer{}
	fmt.Fprintf(b, `{"experiment":%q`, r.Experiment)
	if r.Fidelity != "" {
		fmt.Fprintf(b, `,"fidelity":%q`, r.Fidelity)
	}
	if r.Faults != "" {
		fmt.Fprintf(b, `,"faults":%q`, r.Faults)
	}
	if r.Quick {
		fmt.Fprint(b, `,"quick":true`)
	}
	if r.Workers != 0 {
		fmt.Fprintf(b, `,"workers":%d`, r.Workers)
	}
	if r.Metrics {
		fmt.Fprint(b, `,"metrics":true`)
	}
	fmt.Fprint(b, "}")
	return b.Bytes(), nil
}

func TestCacheEquivalence(t *testing.T) {
	reqs, recompute := equivalenceRequests(t)
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, req := range reqs {
		req := req
		name := req.Experiment
		if req.Fidelity != "" {
			name += "/" + req.Fidelity
		}
		if req.Faults != "" {
			name += "/faulted"
		}
		t.Run(name, func(t *testing.T) {
			n, err := Normalize(req)
			if err != nil {
				t.Fatal(err)
			}
			o1, fresh := postRun(t, ts.URL, req)
			if o1 != Miss {
				t.Fatalf("first request: outcome %v, want miss", o1)
			}
			// The hit request deliberately differs in workers and metrics:
			// byte-identity must hold across those knobs too.
			hitReq := req
			hitReq.Workers = 3
			hitReq.Metrics = !req.Metrics
			if req.Fidelity == harness.FidelityAnalytic {
				hitReq.Metrics = false // analytic sessions build no sim to attach to
			}
			o2, cached := postRun(t, ts.URL, hitReq)
			if o2 != Hit {
				t.Fatalf("second request: outcome %v, want hit", o2)
			}
			if !bytes.Equal(fresh, cached) {
				t.Fatalf("cache hit differs from fresh run:\nfresh:  %s\ncached: %s", fresh, cached)
			}
			if !recompute[n.Digest()] {
				return
			}
			// Evict and recompute in a brand-new session: the strong form
			// of the identity — two independent computations, same bytes.
			if !srv.cache.Evict(n.Digest()) {
				t.Fatal("evict hook failed")
			}
			o3, again := postRun(t, ts.URL, req)
			if o3 != Miss {
				t.Fatalf("post-eviction request: outcome %v, want miss", o3)
			}
			if !bytes.Equal(fresh, again) {
				t.Fatalf("recomputed response differs from the original run:\nfirst:  %s\nsecond: %s", fresh, again)
			}
		})
	}
}

// TestSingleFlightDedup: N concurrent identical requests run the
// simulation exactly once — every response is byte-identical and the
// cache counts exactly one miss.
func TestSingleFlightDedup(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 12
	body := []byte(`{"experiment":"fastpath","fidelity":"analytic","quick":true}`)
	bodies := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/api/v1/run", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			out, err := io.ReadAll(resp.Body)
			if err == nil && resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %d: %s", resp.StatusCode, out)
			}
			bodies[i], errs[i] = out, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d saw different bytes than client 0", i)
		}
	}
	st := srv.cache.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d cache misses for %d identical concurrent requests, want exactly 1 (stats %+v)", st.Misses, n, st)
	}
	if st.Hits+st.Joins != n-1 {
		t.Fatalf("hits+joins = %d, want %d (stats %+v)", st.Hits+st.Joins, n-1, st)
	}
}
