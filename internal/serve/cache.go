package serve

import (
	"container/list"
	"sort"
	"sync"
)

// Outcome classifies one cache lookup.
type Outcome string

const (
	// Hit: the result was already cached; the response bytes are served
	// without running anything.
	Hit Outcome = "hit"
	// Miss: this request is the first with its digest; the caller owns
	// the computation and must call Entry.Complete (or Entry.Abort).
	Miss Outcome = "miss"
	// Join: an identical request is already computing; this one waits on
	// the same entry instead of running a second simulation.
	Join Outcome = "join"
)

// Result is a completed computation's cached payload: the response
// bytes served to every requester with this digest, plus the optional
// machine-readable artifacts (the metrics experiment's BENCH JSON and
// chrome-trace export).
type Result struct {
	Response []byte
	Bench    []byte
	Trace    []byte
}

// Entry is one digest's slot in the cache. Between Miss and Complete
// the entry is in flight: joiners block on Done. In-flight entries are
// never evicted (evicting one would strand its joiners), so the cache
// can transiently hold more than max entries under load.
type Entry struct {
	Digest string
	done   chan struct{}

	// Owned by the cache mutex after completion.
	res     Result
	aborted bool
	failed  bool
	elem    *list.Element
}

// Done is closed when the entry completes, aborts, or fails.
func (e *Entry) Done() <-chan struct{} { return e.done }

// Result returns the cached payload and whether the computation
// completed (false: aborted or failed). Only valid after Done is
// closed.
func (e *Entry) Result() (Result, bool) { return e.res, !e.aborted }

// Failed reports whether the entry's computation failed terminally (a
// panicking experiment) rather than being cancelled: waiters should
// answer an error instead of re-arming the single-flight slot. Only
// valid after Done is closed.
func (e *Entry) Failed() bool { return e.failed }

// Stats are the cache's monotone outcome counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Joins     uint64 `json:"joins"`
	Evictions uint64 `json:"evictions"`
	// Aborts counts in-flight entries withdrawn without a result —
	// cancelled, timed-out, shed, or failed runs. None of them ever
	// count as Entries: an aborted computation's bytes are never cached.
	Aborts  uint64 `json:"aborts"`
	Entries int    `json:"entries"`
}

// Cache is the digest-keyed single-flight result cache with LRU
// eviction by entry count.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*Entry
	lru     *list.List // completed entries, most recent at front
	stats   Stats

	// onComplete, when set, is called (outside the lock) every time an
	// entry completes; the server uses it to persist the cache snapshot.
	onComplete func()
}

// NewCache creates a cache holding at most max completed results
// (max <= 0 means unbounded).
func NewCache(max int) *Cache {
	return &Cache{max: max, entries: map[string]*Entry{}, lru: list.New()}
}

// Get looks up digest, creating an in-flight entry on miss. The caller
// must Complete or Abort the entry when the outcome is Miss.
func (c *Cache) Get(digest string) (*Entry, Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[digest]; ok {
		select {
		case <-e.done:
			c.stats.Hits++
			// Refresh recency.
			if e.elem != nil {
				c.lru.MoveToFront(e.elem)
			}
			return e, Hit
		default:
			c.stats.Joins++
			return e, Join
		}
	}
	e := &Entry{Digest: digest, done: make(chan struct{})}
	c.entries[digest] = e
	c.stats.Misses++
	return e, Miss
}

// GetCompleted returns the completed result for digest — counting a
// Hit and refreshing recency exactly like Get — but never creates an
// in-flight entry on absence. The synchronous handler uses it to serve
// hits ahead of admission control: bytes already in memory are always
// within any deadline.
func (c *Cache) GetCompleted(digest string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[digest]
	if !ok {
		return Result{}, false
	}
	select {
	case <-e.done:
		if e.aborted {
			return Result{}, false
		}
		c.stats.Hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		return e.res, true
	default:
		return Result{}, false
	}
}

// Peek returns the completed result for digest without creating an
// in-flight entry (and without counting an outcome).
func (c *Cache) Peek(digest string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[digest]
	if !ok {
		return Result{}, false
	}
	select {
	case <-e.done:
		if e.aborted {
			return Result{}, false
		}
		return e.res, true
	default:
		return Result{}, false
	}
}

// Complete publishes the result to every waiter, makes the entry
// evictable, and evicts the least-recently-used completed entries
// beyond the cache bound.
func (c *Cache) Complete(e *Entry, res Result) {
	c.mu.Lock()
	e.res = res
	e.elem = c.lru.PushFront(e)
	close(e.done)
	for c.max > 0 && c.lru.Len() > c.max {
		old := c.lru.Back()
		c.lru.Remove(old)
		victim := old.Value.(*Entry)
		delete(c.entries, victim.Digest)
		c.stats.Evictions++
	}
	cb := c.onComplete
	c.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// Abort removes an in-flight entry without a result (a cancelled,
// timed-out, or shed job); waiters observe Done with ok=false, and the
// next identical request re-arms the single-flight slot and recomputes
// from scratch. This is the cache-side half of the cancellation
// contract: an interrupted computation's bytes can never be served.
func (c *Cache) Abort(e *Entry) {
	c.mu.Lock()
	e.aborted = true
	delete(c.entries, e.Digest)
	c.stats.Aborts++
	close(e.done)
	c.mu.Unlock()
}

// Fail removes an in-flight entry whose computation failed terminally
// (it panicked with a live context). Like Abort, nothing is cached and
// the next request recomputes — but waiters see Failed() and answer an
// error instead of looping on the re-arm path.
func (c *Cache) Fail(e *Entry) {
	c.mu.Lock()
	e.aborted = true
	e.failed = true
	delete(c.entries, e.Digest)
	c.stats.Aborts++
	close(e.done)
	c.mu.Unlock()
}

// Evict removes a completed entry by digest (test hook for the
// eviction-then-recompute identity battery). It reports whether the
// digest was present and completed.
func (c *Cache) Evict(digest string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[digest]
	if !ok || e.elem == nil {
		return false
	}
	c.lru.Remove(e.elem)
	delete(c.entries, digest)
	c.stats.Evictions++
	return true
}

// Stats returns a snapshot of the outcome counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	return s
}

// Snapshot returns every completed (digest, result) pair sorted by
// digest — the deterministic payload the server's checkpoint persists.
func (c *Cache) Snapshot() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*Entry)
		out = append(out, Entry{Digest: e.Digest, res: e.res})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

// Seed installs a completed result (checkpoint restore). Existing
// entries are left untouched.
func (c *Cache) Seed(digest string, res Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[digest]; ok {
		return
	}
	e := &Entry{Digest: digest, done: make(chan struct{}), res: res}
	e.elem = c.lru.PushBack(e)
	close(e.done)
	c.entries[digest] = e
}

// ResultOf exposes a snapshot entry's payload (Snapshot returns
// value copies whose res field is package-private).
func (e *Entry) ResultOf() Result { return e.res }
