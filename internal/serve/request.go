// Package serve is the simulation-as-a-service tier: a long-running
// HTTP server that accepts JSON experiment requests and runs them as
// concurrent isolated harness sessions, with a deterministic result
// cache in front of the simulator.
//
// The cache key is a canonical digest of the *normalized* request.
// Every simulation result is bit-deterministic — byte-identical at any
// worker count and with metrics recording on or off — so the digest
// deliberately excludes the workers and metrics fields: they change how
// fast an answer is produced, never which bytes it contains. What
// remains (experiment id, fidelity tier, canonical fault-plan string,
// quick flag) is exactly the set of inputs that can change a report
// byte, which is what makes cached responses byte-identical to fresh
// runs and results infinitely cacheable.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"anton/internal/fault"
	"anton/internal/harness"
)

// Request is the JSON experiment request body. Unknown fields are
// rejected so a typo ("fidelty") cannot silently select the defaults.
type Request struct {
	// Experiment is the registry id (fig5, table3, fastpath, ...).
	Experiment string `json:"experiment"`
	// Fidelity is the simulation tier: "des" (default when empty) or
	// "analytic" for the closed-form fast path.
	Fidelity string `json:"fidelity,omitempty"`
	// Faults is a fault plan in the -faults flag syntax; empty means the
	// fault-free models.
	Faults string `json:"faults,omitempty"`
	// Quick reduces sampling density of the expensive experiments.
	Quick bool `json:"quick,omitempty"`
	// Workers is the sweep/PDES goroutine budget for this run (0 = the
	// server default). It never changes a response byte and is excluded
	// from the cache digest.
	Workers int `json:"workers,omitempty"`
	// Metrics attaches passive lifecycle recorders to the run's
	// simulators. Recording never changes a response byte and is excluded
	// from the cache digest.
	Metrics bool `json:"metrics,omitempty"`
	// TimeoutMs bounds this request's end-to-end time in milliseconds
	// (0 = the server's default deadline, if configured). A request that
	// misses its deadline answers 504 and its computation aborts
	// cooperatively; timed-out runs never populate the cache. Like
	// workers/metrics it cannot change a response byte, so it is excluded
	// from the cache digest.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// BadRequestError describes a request rejected during normalization;
// the server answers it with HTTP 400.
type BadRequestError struct {
	Code string // machine-readable: unknown-experiment, bad-fidelity, bad-plan, bad-timeout, analytic-refused
	Msg  string
}

func (e *BadRequestError) Error() string { return e.Msg }

// NormRequest is a validated request in canonical form.
type NormRequest struct {
	Experiment harness.Experiment
	Fidelity   string // canonical tier name, never empty
	Faults     string // canonical plan string (Plan.String()), "" if fault-free
	Plan       *fault.Plan
	Quick      bool
	Workers    int
	Metrics    bool
	// Timeout is the request's deadline budget (0: use the server
	// default; never negative after Normalize).
	Timeout time.Duration
}

// Normalize validates the request against the experiment registry and
// rewrites it into canonical form: the fidelity resolved to its tier
// name, the fault plan parsed and re-rendered through the exact
// round-tripping Plan.String() so equivalent spellings share a digest,
// and the analytic-tier refusals (unknown tier, event-driven-only
// experiment, fault plan at analytic fidelity) turned into typed
// errors.
func Normalize(r Request) (*NormRequest, error) {
	e, ok := harness.Lookup(r.Experiment)
	if !ok {
		return nil, &BadRequestError{Code: "unknown-experiment",
			Msg: fmt.Sprintf("unknown experiment %q (GET /api/v1/experiments lists them)", r.Experiment)}
	}
	fid := r.Fidelity
	if fid == "" {
		fid = harness.FidelityDES
	}
	f, err := harness.ParseFidelity(fid)
	if err != nil {
		return nil, &BadRequestError{Code: "bad-fidelity", Msg: err.Error()}
	}
	if r.TimeoutMs < 0 {
		return nil, &BadRequestError{Code: "bad-timeout",
			Msg: fmt.Sprintf("timeout_ms must be >= 0, got %d", r.TimeoutMs)}
	}
	n := &NormRequest{Experiment: e, Fidelity: f, Quick: r.Quick, Workers: r.Workers, Metrics: r.Metrics,
		Timeout: time.Duration(r.TimeoutMs) * time.Millisecond}
	if f == harness.FidelityAnalytic {
		if !e.Analytic {
			return nil, &BadRequestError{Code: "analytic-refused",
				Msg: fmt.Sprintf("experiment %q is event-driven only and has no analytic tier; run it at fidelity %q", e.ID, harness.FidelityDES)}
		}
		if r.Faults != "" {
			return nil, &BadRequestError{Code: "analytic-refused",
				Msg: "the analytic tier models a fault-free machine and refuses fault plans; drop faults or use fidelity \"des\""}
		}
	}
	if r.Faults != "" {
		plan, err := fault.ParsePlan(r.Faults)
		if err != nil {
			return nil, &BadRequestError{Code: "bad-plan", Msg: fmt.Sprintf("faults: %v", err)}
		}
		// Every experiment machine is at most the 512-node flagship.
		if err := plan.ValidateTopo(512); err != nil {
			return nil, &BadRequestError{Code: "bad-plan", Msg: fmt.Sprintf("faults: %v", err)}
		}
		n.Plan = &plan
		n.Faults = plan.String()
	}
	return n, nil
}

// ParseRequest decodes a JSON request body strictly (unknown fields are
// errors) and normalizes it.
func ParseRequest(body []byte) (*NormRequest, error) {
	var r Request
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, &BadRequestError{Code: "bad-json", Msg: fmt.Sprintf("request body: %v", err)}
	}
	// A trailing second JSON value is as malformed as a bad field.
	if dec.More() {
		return nil, &BadRequestError{Code: "bad-json", Msg: "request body: trailing data after JSON object"}
	}
	return Normalize(r)
}

// Digest returns the canonical cache key: a SHA-256 over the digest
// schema tag and the result-determining fields, NUL-separated. Workers
// and metrics are excluded by design — see the package comment. Two
// requests share a digest if and only if their responses are
// byte-identical.
func (n *NormRequest) Digest() string {
	h := sha256.New()
	for _, part := range []string{"anton-serve/v1", n.Experiment.ID, n.Fidelity, n.Faults, fmt.Sprintf("%t", n.Quick)} {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TimeKey groups requests whose run times are comparable for the
// deadline-aware admission estimator: same experiment, fidelity, and
// sampling density. Fault plans are deliberately folded together — they
// perturb wall time far less than the experiment choice does, and an
// estimator keyed per plan would almost never have an observation.
func (n *NormRequest) TimeKey() string {
	density := "full"
	if n.Quick {
		density = "quick"
	}
	return n.Experiment.ID + "/" + n.Fidelity + "/" + density
}

// Session builds the isolated harness session this request runs in.
// The progress hook is the caller's (the job layer streams it).
func (n *NormRequest) Session(defaultWorkers int, progress func(int)) *harness.Session {
	w := n.Workers
	if w == 0 {
		w = defaultWorkers
	}
	return &harness.Session{
		Workers:  w,
		Fidelity: n.Fidelity,
		Faults:   n.Plan,
		Metrics:  n.Metrics,
		Progress: progress,
	}
}
