package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The load generator drives a deterministic request mix against a
// running server and reports client-observed latency and throughput.
// Determinism is the point: the i-th request of a run is a pure
// function of (seed, i), so two runs of the same config issue the
// same multiset of requests, and — because every simulation result is
// bit-deterministic — receive the same multiset of response bodies.
// The order-independent checksum over those bodies is therefore a
// machine-independent fingerprint of the whole serving path
// (normalization, digesting, scheduling, caching, rendering), which is
// what BENCH_serve.json pins exactly while the latency numbers are
// gated only within a tolerance.

// DefaultMix is the standard load mix: cheap experiments at both
// fidelities, a faulted variant, and spellings that differ only in
// workers/metrics — which share a digest by design, so a correct cache
// turns them into hits.
func DefaultMix() []Request {
	return []Request{
		{Experiment: "fastpath", Fidelity: "analytic", Quick: true},
		{Experiment: "fig5", Quick: true},
		{Experiment: "fig6", Quick: true},
		{Experiment: "table1", Quick: true},
		{Experiment: "table2", Quick: true},
		{Experiment: "fig6", Faults: "seed=7,corrupt=1e-4,retry=250ns", Quick: true},
		// Same digests as the fig5/fastpath entries above: workers and
		// metrics never change a response byte.
		{Experiment: "fig5", Quick: true, Workers: 4, Metrics: true},
		{Experiment: "fastpath", Fidelity: "analytic", Quick: true, Workers: 2},
	}
}

// LoadConfig shapes one load run.
type LoadConfig struct {
	Requests int
	Clients  int
	Seed     uint64
	Mix      []Request // nil: DefaultMix

	// Retries is the per-request retry budget for retryable failures:
	// transport errors and the shedding statuses 503/504. 0 disables
	// retries (the seed behaviour).
	Retries int
	// Backoff is the base retry delay: attempt k waits Backoff<<(k-1)
	// plus deterministic seeded jitter in [0, Backoff), raised to the
	// server's Retry-After hint when that is larger (default 50ms).
	Backoff time.Duration
	// MaxBackoff caps any single wait, Retry-After included (default 2s)
	// — a load generator that sleeps the full server hint would measure
	// the hint, not the recovery.
	MaxBackoff time.Duration
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Requests <= 0 {
		c.Requests = 200
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Mix == nil {
		c.Mix = DefaultMix()
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	return c
}

// LoadStats is one load run's outcome. The deterministic fields
// (Requests, Errors, DistinctDigests, Checksum) are gated exactly by
// benchgate; the wall-clock fields within a tolerance.
type LoadStats struct {
	Requests        int    `json:"requests"`
	Clients         int    `json:"clients"`
	Errors          int    `json:"errors"`
	DistinctDigests int    `json:"distinct_digests"`
	Checksum        string `json:"checksum"`
	CacheHits       int    `json:"cache_hits"`
	CacheMisses     int    `json:"cache_misses"`
	CacheJoins      int    `json:"cache_joins"`
	// Retried counts requests that needed at least one retry;
	// RetryAttempts counts the extra attempts issued in total. Both are
	// 0 on a healthy in-process run (the committed baseline pins that).
	Retried       int     `json:"retried"`
	RetryAttempts int     `json:"retry_attempts"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MeanMs        float64 `json:"mean_ms"`
	WallMs        float64 `json:"wall_ms"`
	RPS           float64 `json:"rps"`
}

// splitmix64 is the standard 64-bit mix; request i draws its mix entry
// from splitmix64(seed + i), so the sequence is reproducible and has no
// shared-generator ordering dependence between concurrent clients.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RunLoad issues cfg.Requests requests from cfg.Clients concurrent
// clients against baseURL (an /api/v1 server root, no trailing slash)
// and summarizes what the clients observed.
func RunLoad(baseURL string, client *http.Client, cfg LoadConfig) (LoadStats, error) {
	cfg = cfg.withDefaults()
	if client == nil {
		client = http.DefaultClient
	}
	bodies := make([][]byte, len(cfg.Mix))
	digests := map[string]bool{}
	for i, r := range cfg.Mix {
		b, err := json.Marshal(r)
		if err != nil {
			return LoadStats{}, err
		}
		bodies[i] = b
		n, err := Normalize(r)
		if err != nil {
			return LoadStats{}, fmt.Errorf("loadgen: mix entry %d: %w", i, err)
		}
		digests[n.Digest()] = true
	}

	latencies := make([]time.Duration, cfg.Requests)
	var checksum, errs atomic.Uint64
	var hits, misses, joins atomic.Int64
	var retried, retryAttempts atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Requests {
					return
				}
				pick := int(splitmix64(cfg.Seed+uint64(i)) % uint64(len(cfg.Mix)))
				t0 := time.Now()
				// Retry loop: transport errors and the shedding statuses
				// (503 queue-full/draining, 504 deadline) are retryable;
				// everything else is a terminal client error. Only the final
				// successful body feeds the checksum, so the order-independent
				// sum is untouched by how many attempts a request needed.
				attempts := 0
				for {
					resp, err := client.Post(baseURL+"/run", "application/json", bytes.NewReader(bodies[pick]))
					var body []byte
					status, retryAfter := 0, 0
					outcome := ""
					if err == nil {
						body, err = io.ReadAll(resp.Body)
						resp.Body.Close()
						status = resp.StatusCode
						retryAfter, _ = strconv.Atoi(resp.Header.Get("Retry-After"))
						outcome = resp.Header.Get(CacheHeader)
					}
					if err == nil && status == http.StatusOK {
						switch Outcome(outcome) {
						case Hit:
							hits.Add(1)
						case Miss:
							misses.Add(1)
						case Join:
							joins.Add(1)
						}
						h := fnv.New64a()
						h.Write(body)
						checksum.Add(h.Sum64())
						break
					}
					retryable := err != nil ||
						status == http.StatusServiceUnavailable || status == http.StatusGatewayTimeout
					if !retryable || attempts >= cfg.Retries {
						errs.Add(1)
						break
					}
					attempts++
					retryAttempts.Add(1)
					// Exponential backoff with deterministic seeded jitter:
					// the same (seed, request, attempt) always waits the same
					// extra amount, so a replayed run schedules identically.
					shift := attempts - 1
					if shift > 10 {
						shift = 10 // MaxBackoff caps the wait anyway
					}
					wait := cfg.Backoff << shift
					wait += time.Duration(splitmix64(cfg.Seed^uint64(i)<<16^uint64(attempts)) % uint64(cfg.Backoff))
					if ra := time.Duration(retryAfter) * time.Second; ra > wait {
						wait = ra
					}
					if wait > cfg.MaxBackoff {
						wait = cfg.MaxBackoff
					}
					time.Sleep(wait)
				}
				if attempts > 0 {
					retried.Add(1)
				}
				latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return float64(latencies[i]) / 1e6
	}
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	st := LoadStats{
		Requests:        cfg.Requests,
		Clients:         cfg.Clients,
		Errors:          int(errs.Load()),
		DistinctDigests: len(digests),
		Checksum:        fmt.Sprintf("%016x", checksum.Load()),
		CacheHits:       int(hits.Load()),
		CacheMisses:     int(misses.Load()),
		CacheJoins:      int(joins.Load()),
		Retried:         int(retried.Load()),
		RetryAttempts:   int(retryAttempts.Load()),
		P50Ms:           pct(0.50),
		P99Ms:           pct(0.99),
		MeanMs:          float64(sum) / float64(cfg.Requests) / 1e6,
		WallMs:          float64(wall) / 1e6,
	}
	if wall > 0 {
		st.RPS = float64(cfg.Requests) / wall.Seconds()
	}
	return st, nil
}

// MixWithExtraFaults is DefaultMix plus n faulted fig6 variants with
// distinct fault seeds — n guaranteed-uncached digests of real DES
// compute. The chaos battery uses it to keep jobs in flight at the
// moment it SIGKILLs the server.
func MixWithExtraFaults(n int) []Request {
	mix := DefaultMix()
	for i := 0; i < n; i++ {
		mix = append(mix, Request{
			Experiment: "fig6", Quick: true,
			Faults: fmt.Sprintf("seed=%d,corrupt=1e-4", 1000+i),
		})
	}
	return mix
}

// MixDigests returns a mix's distinct cache digests in first-appearance
// order. The chaos suite enumerates them to assert a restarted server
// still serves every previously completed result byte-identically.
func MixDigests(mix []Request) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	for i, r := range mix {
		n, err := Normalize(r)
		if err != nil {
			return nil, fmt.Errorf("mix entry %d: %w", i, err)
		}
		if d := n.Digest(); !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out, nil
}

// WaitReady polls GET {base}/readyz until the server answers 200 or the
// timeout expires — the cross-process analogue of waiting for Restore.
func WaitReady(baseURL string, client *http.Client, timeout time.Duration) error {
	if client == nil {
		client = http.DefaultClient
	}
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		resp, err := client.Get(baseURL + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Errorf("readyz: %s", resp.Status)
		} else {
			last = err
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server not ready after %s: %v", timeout, last)
}

// FetchResults downloads GET /results/{digest} for each digest into dir
// as <digest>.json, failing on any non-200 — the byte-identity probe
// the chaos suite runs before and after a crash/restart cycle.
func FetchResults(baseURL string, client *http.Client, digests []string, dir string) error {
	if client == nil {
		client = http.DefaultClient
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, d := range digests {
		resp, err := client.Get(baseURL + "/results/" + d)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("results/%s: %s: %s", d, resp.Status, bytes.TrimSpace(body))
		}
		if err := os.WriteFile(filepath.Join(dir, d+".json"), body, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// BenchSchema versions the BENCH_serve.json layout.
const BenchSchema = "anton-serve/v1"

// BenchFile is the BENCH_serve.json payload: one committed load run.
type BenchFile struct {
	Schema string    `json:"schema"`
	Seed   uint64    `json:"seed"`
	Result LoadStats `json:"result"`
}

// CompareBench gates a fresh load run against the committed baseline:
// the deterministic fields exactly (a checksum mismatch means some
// response byte changed — a model change or a serving bug), the
// latency/throughput fields within the relative tolerance. It prints
// the verdict table and reports whether the gate passes.
func CompareBench(base, fresh BenchFile, tolerance float64) bool {
	b, f := base.Result, fresh.Result
	ok := true
	fail := func(format string, args ...interface{}) {
		fmt.Printf("serve gate FAIL: "+format+"\n", args...)
		ok = false
	}
	if base.Seed != fresh.Seed {
		fail("seed %d, baseline pinned %d", fresh.Seed, base.Seed)
	}
	if f.Requests != b.Requests || f.Clients != b.Clients {
		fail("ran %d requests / %d clients, baseline pinned %d / %d", f.Requests, f.Clients, b.Requests, b.Clients)
	}
	if f.Errors != 0 {
		fail("%d request errors (baseline requires 0)", f.Errors)
	}
	if f.RetryAttempts != 0 {
		fail("%d retry attempts against an in-process server (baseline requires 0)", f.RetryAttempts)
	}
	if f.DistinctDigests != b.DistinctDigests {
		fail("mix spans %d distinct digests, baseline pinned %d", f.DistinctDigests, b.DistinctDigests)
	}
	if f.Checksum != b.Checksum {
		fail("response checksum %s, baseline pinned %s (a response byte changed; model change? re-baseline with -update)",
			f.Checksum, b.Checksum)
	}
	// The hit-vs-join split is a scheduling race, but single-flight
	// means each distinct digest computes exactly once: misses are
	// pinned to the digest count, everything else must have been served
	// from the cache or a join.
	if f.CacheMisses != f.DistinctDigests {
		fail("%d cache misses for %d distinct digests (single-flight dedup broken?)", f.CacheMisses, f.DistinctDigests)
	}
	// slack is an absolute floor under which a latency difference is
	// scheduler jitter, not a regression: a cache-hit p50 lives in the
	// sub-millisecond range where relative tolerances are meaningless.
	rel := func(name string, fresh, base, slack float64, higherIsBetter bool) {
		if base == 0 {
			return
		}
		delta := fresh/base - 1
		verdict := "ok"
		regressed := (higherIsBetter && delta < -tolerance) || (!higherIsBetter && delta > tolerance)
		if regressed && !higherIsBetter && fresh-base <= slack {
			verdict = fmt.Sprintf("ok (within %.1f ms absolute slack)", slack)
			regressed = false
		}
		if regressed {
			verdict = fmt.Sprintf("FAIL: beyond %.0f%% tolerance", 100*tolerance)
			ok = false
		}
		fmt.Printf("%-12s %12.2f baseline %12.2f  %+7.1f%%  %s\n", name, fresh, base, 100*delta, verdict)
	}
	fmt.Printf("serve gate: %d requests, %d clients, %d distinct digests, checksum %s, hits/misses/joins %d/%d/%d\n",
		f.Requests, f.Clients, f.DistinctDigests, f.Checksum, f.CacheHits, f.CacheMisses, f.CacheJoins)
	rel("p50_ms", f.P50Ms, b.P50Ms, 5, false)
	rel("p99_ms", f.P99Ms, b.P99Ms, 250, false)
	rel("rps", f.RPS, b.RPS, 0, true)
	return ok
}
