package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The load generator drives a deterministic request mix against a
// running server and reports client-observed latency and throughput.
// Determinism is the point: the i-th request of a run is a pure
// function of (seed, i), so two runs of the same config issue the
// same multiset of requests, and — because every simulation result is
// bit-deterministic — receive the same multiset of response bodies.
// The order-independent checksum over those bodies is therefore a
// machine-independent fingerprint of the whole serving path
// (normalization, digesting, scheduling, caching, rendering), which is
// what BENCH_serve.json pins exactly while the latency numbers are
// gated only within a tolerance.

// DefaultMix is the standard load mix: cheap experiments at both
// fidelities, a faulted variant, and spellings that differ only in
// workers/metrics — which share a digest by design, so a correct cache
// turns them into hits.
func DefaultMix() []Request {
	return []Request{
		{Experiment: "fastpath", Fidelity: "analytic", Quick: true},
		{Experiment: "fig5", Quick: true},
		{Experiment: "fig6", Quick: true},
		{Experiment: "table1", Quick: true},
		{Experiment: "table2", Quick: true},
		{Experiment: "fig6", Faults: "seed=7,corrupt=1e-4,retry=250ns", Quick: true},
		// Same digests as the fig5/fastpath entries above: workers and
		// metrics never change a response byte.
		{Experiment: "fig5", Quick: true, Workers: 4, Metrics: true},
		{Experiment: "fastpath", Fidelity: "analytic", Quick: true, Workers: 2},
	}
}

// LoadConfig shapes one load run.
type LoadConfig struct {
	Requests int
	Clients  int
	Seed     uint64
	Mix      []Request // nil: DefaultMix
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Requests <= 0 {
		c.Requests = 200
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Mix == nil {
		c.Mix = DefaultMix()
	}
	return c
}

// LoadStats is one load run's outcome. The deterministic fields
// (Requests, Errors, DistinctDigests, Checksum) are gated exactly by
// benchgate; the wall-clock fields within a tolerance.
type LoadStats struct {
	Requests        int     `json:"requests"`
	Clients         int     `json:"clients"`
	Errors          int     `json:"errors"`
	DistinctDigests int     `json:"distinct_digests"`
	Checksum        string  `json:"checksum"`
	CacheHits       int     `json:"cache_hits"`
	CacheMisses     int     `json:"cache_misses"`
	CacheJoins      int     `json:"cache_joins"`
	P50Ms           float64 `json:"p50_ms"`
	P99Ms           float64 `json:"p99_ms"`
	MeanMs          float64 `json:"mean_ms"`
	WallMs          float64 `json:"wall_ms"`
	RPS             float64 `json:"rps"`
}

// splitmix64 is the standard 64-bit mix; request i draws its mix entry
// from splitmix64(seed + i), so the sequence is reproducible and has no
// shared-generator ordering dependence between concurrent clients.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RunLoad issues cfg.Requests requests from cfg.Clients concurrent
// clients against baseURL (an /api/v1 server root, no trailing slash)
// and summarizes what the clients observed.
func RunLoad(baseURL string, client *http.Client, cfg LoadConfig) (LoadStats, error) {
	cfg = cfg.withDefaults()
	if client == nil {
		client = http.DefaultClient
	}
	bodies := make([][]byte, len(cfg.Mix))
	digests := map[string]bool{}
	for i, r := range cfg.Mix {
		b, err := json.Marshal(r)
		if err != nil {
			return LoadStats{}, err
		}
		bodies[i] = b
		n, err := Normalize(r)
		if err != nil {
			return LoadStats{}, fmt.Errorf("loadgen: mix entry %d: %w", i, err)
		}
		digests[n.Digest()] = true
	}

	latencies := make([]time.Duration, cfg.Requests)
	var checksum, errs atomic.Uint64
	var hits, misses, joins atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Requests {
					return
				}
				pick := int(splitmix64(cfg.Seed+uint64(i)) % uint64(len(cfg.Mix)))
				t0 := time.Now()
				resp, err := client.Post(baseURL+"/run", "application/json", bytes.NewReader(bodies[pick]))
				if err != nil {
					errs.Add(1)
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				latencies[i] = time.Since(t0)
				if err != nil || resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				switch Outcome(resp.Header.Get(CacheHeader)) {
				case Hit:
					hits.Add(1)
				case Miss:
					misses.Add(1)
				case Join:
					joins.Add(1)
				}
				h := fnv.New64a()
				h.Write(body)
				checksum.Add(h.Sum64())
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return float64(latencies[i]) / 1e6
	}
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	st := LoadStats{
		Requests:        cfg.Requests,
		Clients:         cfg.Clients,
		Errors:          int(errs.Load()),
		DistinctDigests: len(digests),
		Checksum:        fmt.Sprintf("%016x", checksum.Load()),
		CacheHits:       int(hits.Load()),
		CacheMisses:     int(misses.Load()),
		CacheJoins:      int(joins.Load()),
		P50Ms:           pct(0.50),
		P99Ms:           pct(0.99),
		MeanMs:          float64(sum) / float64(cfg.Requests) / 1e6,
		WallMs:          float64(wall) / 1e6,
	}
	if wall > 0 {
		st.RPS = float64(cfg.Requests) / wall.Seconds()
	}
	return st, nil
}

// BenchSchema versions the BENCH_serve.json layout.
const BenchSchema = "anton-serve/v1"

// BenchFile is the BENCH_serve.json payload: one committed load run.
type BenchFile struct {
	Schema string    `json:"schema"`
	Seed   uint64    `json:"seed"`
	Result LoadStats `json:"result"`
}

// CompareBench gates a fresh load run against the committed baseline:
// the deterministic fields exactly (a checksum mismatch means some
// response byte changed — a model change or a serving bug), the
// latency/throughput fields within the relative tolerance. It prints
// the verdict table and reports whether the gate passes.
func CompareBench(base, fresh BenchFile, tolerance float64) bool {
	b, f := base.Result, fresh.Result
	ok := true
	fail := func(format string, args ...interface{}) {
		fmt.Printf("serve gate FAIL: "+format+"\n", args...)
		ok = false
	}
	if base.Seed != fresh.Seed {
		fail("seed %d, baseline pinned %d", fresh.Seed, base.Seed)
	}
	if f.Requests != b.Requests || f.Clients != b.Clients {
		fail("ran %d requests / %d clients, baseline pinned %d / %d", f.Requests, f.Clients, b.Requests, b.Clients)
	}
	if f.Errors != 0 {
		fail("%d request errors (baseline requires 0)", f.Errors)
	}
	if f.DistinctDigests != b.DistinctDigests {
		fail("mix spans %d distinct digests, baseline pinned %d", f.DistinctDigests, b.DistinctDigests)
	}
	if f.Checksum != b.Checksum {
		fail("response checksum %s, baseline pinned %s (a response byte changed; model change? re-baseline with -update)",
			f.Checksum, b.Checksum)
	}
	// The hit-vs-join split is a scheduling race, but single-flight
	// means each distinct digest computes exactly once: misses are
	// pinned to the digest count, everything else must have been served
	// from the cache or a join.
	if f.CacheMisses != f.DistinctDigests {
		fail("%d cache misses for %d distinct digests (single-flight dedup broken?)", f.CacheMisses, f.DistinctDigests)
	}
	// slack is an absolute floor under which a latency difference is
	// scheduler jitter, not a regression: a cache-hit p50 lives in the
	// sub-millisecond range where relative tolerances are meaningless.
	rel := func(name string, fresh, base, slack float64, higherIsBetter bool) {
		if base == 0 {
			return
		}
		delta := fresh/base - 1
		verdict := "ok"
		regressed := (higherIsBetter && delta < -tolerance) || (!higherIsBetter && delta > tolerance)
		if regressed && !higherIsBetter && fresh-base <= slack {
			verdict = fmt.Sprintf("ok (within %.1f ms absolute slack)", slack)
			regressed = false
		}
		if regressed {
			verdict = fmt.Sprintf("FAIL: beyond %.0f%% tolerance", 100*tolerance)
			ok = false
		}
		fmt.Printf("%-12s %12.2f baseline %12.2f  %+7.1f%%  %s\n", name, fresh, base, 100*delta, verdict)
	}
	fmt.Printf("serve gate: %d requests, %d clients, %d distinct digests, checksum %s, hits/misses/joins %d/%d/%d\n",
		f.Requests, f.Clients, f.DistinctDigests, f.Checksum, f.CacheHits, f.CacheMisses, f.CacheJoins)
	rel("p50_ms", f.P50Ms, b.P50Ms, 5, false)
	rel("p99_ms", f.P99Ms, b.P99Ms, 250, false)
	rel("rps", f.RPS, b.RPS, 0, true)
	return ok
}
