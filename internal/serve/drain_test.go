package serve

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"anton/internal/checkpoint"
)

// The drain battery: startup gating, readiness flips, the drain budget
// aborting stragglers, and the persist-exactly-once checkpoint write.

// TestStartingNotReadyUntilRestore pins the boot shape: NewStarting
// serves liveness but refuses admission until Restore flips it ready.
func TestStartingNotReadyUntilRestore(t *testing.T) {
	srv := NewStarting(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, _, _ := httpDo(t, "GET", ts.URL+"/api/v1/healthz", ""); status != http.StatusOK {
		t.Fatalf("healthz while starting: %d, want 200 (liveness is not readiness)", status)
	}
	status, b, hdr := httpDo(t, "GET", ts.URL+"/api/v1/readyz", "")
	if status != http.StatusServiceUnavailable || !strings.Contains(string(b), "starting") {
		t.Fatalf("readyz while starting: %d %s", status, b)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("readyz 503 lacks Retry-After")
	}
	status, b, _ = httpDo(t, "POST", ts.URL+"/api/v1/run", `{"experiment":"fig6","quick":true}`)
	if status != http.StatusServiceUnavailable || !strings.Contains(string(b), "starting") {
		t.Fatalf("run admitted while starting: %d %s", status, b)
	}

	if err := srv.Restore(); err != nil {
		t.Fatal(err)
	}
	if status, _, _ := httpDo(t, "GET", ts.URL+"/api/v1/readyz", ""); status != http.StatusOK {
		t.Fatalf("readyz after Restore: %d, want 200", status)
	}
	if status, b, _ := httpDo(t, "POST", ts.URL+"/api/v1/run", `{"experiment":"fig6","quick":true}`); status != http.StatusOK {
		t.Fatalf("run after Restore: %d %s", status, b)
	}
}

// TestDrainPersistsExactlyOnce completes work, drains, and requires the
// drain to add exactly one checkpoint write (repeat Closes add none),
// with the written snapshot restoring every completed result.
func TestDrainPersistsExactlyOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	srv, err := New(Config{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const body = `{"experiment":"fig6","quick":true}`
	digest := mustNormalize(t, body).Digest()
	if status, b, _ := httpDo(t, "POST", ts.URL+"/api/v1/run", body); status != http.StatusOK {
		t.Fatalf("run: %d %s", status, b)
	}
	if p := srv.Persists(); p != 1 {
		t.Fatalf("persists after one completion = %d, want 1 (per-completion hook)", p)
	}

	p0 := srv.Persists()
	srv.Drain()
	if p := srv.Persists(); p != p0+1 {
		t.Fatalf("drain wrote %d checkpoints, want exactly 1", p-p0)
	}
	srv.Close()
	srv.Drain()
	if p := srv.Persists(); p != p0+1 {
		t.Fatalf("repeat Close/Drain re-persisted: %d writes total, want %d", p, p0+1)
	}

	// The drained checkpoint restores the completed result.
	srv2, err := New(Config{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if _, ok := srv2.cache.Peek(digest); !ok {
		t.Fatal("restarted server lost the drained checkpoint's result")
	}
}

// TestDrainBudgetAbortsInFlight starts a long run, drains with a small
// budget, and requires Drain to return promptly with the straggler
// aborted — never cached, never persisted — and the checkpoint written
// exactly once (empty: nothing completed).
func TestDrainBudgetAbortsInFlight(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	srv, err := New(Config{
		CheckpointPath: path,
		DrainBudget:    200 * time.Millisecond,
		Sched:          SchedConfig{DESWorkers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id := submitJob(t, ts.URL, longDES)
	waitUntil(t, 10*time.Second, "job to start running", func() bool {
		return jobStateOf(t, ts.URL, id) == string(StateRunning)
	})

	t0 := time.Now()
	srv.Drain()
	if el := time.Since(t0); el > abortBound {
		t.Fatalf("drain took %s: budget did not abort the in-flight run", el)
	}
	if st := jobStateOf(t, ts.URL, id); st != string(StateCancelled) {
		t.Fatalf("in-flight job after drain = %q, want cancelled", st)
	}
	if st := srv.cache.Stats(); st.Entries != 0 || st.Aborts == 0 {
		t.Fatalf("drained straggler left cache state %+v", st)
	}
	if p := srv.Persists(); p != 1 {
		t.Fatalf("drain persisted %d times, want exactly 1", p)
	}
	st, err := checkpoint.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != 0 {
		t.Fatalf("aborted run leaked %d rows into the drained checkpoint", st.Step)
	}

	// Post-drain admission refuses; the raced Submit path degrades to
	// ErrQueueFull instead of panicking on a closed scheduler.
	status, b, _ := httpDo(t, "POST", ts.URL+"/api/v1/run", `{"experiment":"fig6","quick":true}`)
	if status != http.StatusServiceUnavailable || !strings.Contains(string(b), "draining") {
		t.Fatalf("run after drain: %d %s", status, b)
	}
	req := mustNormalize(t, `{"experiment":"fig6","quick":true}`)
	entry, _ := srv.cache.Get(req.Digest())
	if err := srv.sched.Submit(srv.newJob(req, req.Digest(), entry, time.Time{})); err != ErrQueueFull {
		t.Fatalf("Submit on a closed scheduler: %v, want ErrQueueFull", err)
	}
}

// TestBeginDrainFlipsReadinessKeepsCached pins the lame-duck window:
// after BeginDrain (before Drain completes) readiness reports draining,
// new compute is refused, but cached bytes still serve.
func TestBeginDrainFlipsReadinessKeepsCached(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const body = `{"experiment":"fig6","quick":true}`
	if status, b, _ := httpDo(t, "POST", ts.URL+"/api/v1/run", body); status != http.StatusOK {
		t.Fatalf("run: %d %s", status, b)
	}

	srv.BeginDrain()
	if status, b, _ := httpDo(t, "GET", ts.URL+"/api/v1/readyz", ""); status != http.StatusServiceUnavailable || !strings.Contains(string(b), "draining") {
		t.Fatalf("readyz while draining: %d %s", status, b)
	}
	if status, _, _ := httpDo(t, "GET", ts.URL+"/api/v1/healthz", ""); status != http.StatusOK {
		t.Fatal("healthz flipped during drain; liveness must stay up")
	}
	status, _, hdr := httpDo(t, "POST", ts.URL+"/api/v1/run", body)
	if status != http.StatusOK || hdr.Get(CacheHeader) != string(Hit) {
		t.Fatalf("cached result refused during drain: %d cache=%s", status, hdr.Get(CacheHeader))
	}
	if status, _, _ := httpDo(t, "POST", ts.URL+"/api/v1/run", `{"experiment":"fig5","quick":true}`); status != http.StatusServiceUnavailable {
		t.Fatalf("uncached compute admitted during drain: %d", status)
	}
}
