package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestServeStressMixedClients hammers one server with 100+ concurrent
// clients running a mixed workload — synchronous runs at both
// fidelities, faulted variants, asynchronous jobs with mid-run
// cancellations, and malformed requests — and checks the invariants
// that must survive any interleaving:
//
//   - every 200 body for a given digest is byte-identical;
//   - the only accepted failure modes are 400 (the deliberately bad
//     requests) and 503 (a full queue);
//   - after the dust settles, misses never exceed the distinct digests
//     issued plus the cancellations (a withdrawn queued job aborts its
//     entry, so a later identical request legitimately re-misses).
//
// CI replays this under the race detector (the -race stage); -short
// skips it.
func TestServeStressMixedClients(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test: 100+ concurrent clients against real simulations")
	}
	srv, err := New(Config{Sched: SchedConfig{DESWorkers: 2, AnalyticWorkers: 1, QueueDepth: 256}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	syncMix := [][]byte{
		[]byte(`{"experiment":"fastpath","fidelity":"analytic","quick":true}`),
		[]byte(`{"experiment":"fig5","quick":true}`),
		[]byte(`{"experiment":"fig6","quick":true}`),
		[]byte(`{"experiment":"table1","quick":true}`),
		[]byte(`{"experiment":"fig6","quick":true,"faults":"seed=7,corrupt=1e-4,retry=250ns"}`),
		[]byte(`{"experiment":"fig5","quick":true,"workers":2,"metrics":true}`),
	}
	bad := [][]byte{
		[]byte(`{"experiment":"nope"}`),
		[]byte(`{"experiment":"fig5","faults":"corrupt=lots"}`),
		[]byte(`{"experiment":"fig11","fidelity":"analytic"}`),
	}

	var mu sync.Mutex
	byDigest := map[string][]byte{} // digest -> first 200 body seen
	record := func(body []byte) error {
		var r struct {
			Digest string `json:"digest"`
		}
		if err := unmarshalDigest(body, &r.Digest); err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := byDigest[r.Digest]; ok {
			if !bytes.Equal(prev, body) {
				return fmt.Errorf("digest %s served two different bodies", r.Digest)
			}
			return nil
		}
		byDigest[r.Digest] = body
		return nil
	}

	const clients = 120
	const opsPerClient = 3
	errCh := make(chan error, clients*opsPerClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for op := 0; op < opsPerClient; op++ {
				r := splitmix64(uint64(c*opsPerClient + op))
				switch {
				case r%7 == 0:
					// Malformed request: must 400, never crash or hang.
					resp, err := http.Post(ts.URL+"/api/v1/run", "application/json",
						bytes.NewReader(bad[r%uint64(len(bad))]))
					if err != nil {
						errCh <- err
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusBadRequest {
						errCh <- fmt.Errorf("bad request answered %d", resp.StatusCode)
					}
				case r%5 == 0:
					// Async job on a client-unique faulted variant, cancelled
					// immediately: exercises queued-job withdrawal and the
					// running-job detach path.
					body := fmt.Appendf(nil,
						`{"experiment":"fig5","quick":true,"faults":"seed=%d,corrupt=1e-4"}`, 100+r%8)
					resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
					if err != nil {
						errCh <- err
						continue
					}
					out, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusServiceUnavailable {
						continue // full queue is a legitimate answer
					}
					if resp.StatusCode != http.StatusAccepted {
						errCh <- fmt.Errorf("job submit answered %d: %s", resp.StatusCode, out)
						continue
					}
					var j struct {
						Job string `json:"job"`
					}
					if err := unmarshalField(out, "job", &j.Job); err != nil {
						errCh <- err
						continue
					}
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+j.Job, nil)
					dresp, err := http.DefaultClient.Do(req)
					if err != nil {
						errCh <- err
						continue
					}
					io.Copy(io.Discard, dresp.Body)
					dresp.Body.Close()
					// Status poll must answer regardless of the cancel race.
					sresp, err := http.Get(ts.URL + "/api/v1/jobs/" + j.Job)
					if err != nil {
						errCh <- err
						continue
					}
					io.Copy(io.Discard, sresp.Body)
					sresp.Body.Close()
				default:
					resp, err := http.Post(ts.URL+"/api/v1/run", "application/json",
						bytes.NewReader(syncMix[r%uint64(len(syncMix))]))
					if err != nil {
						errCh <- err
						continue
					}
					out, rerr := io.ReadAll(resp.Body)
					resp.Body.Close()
					if rerr != nil {
						errCh <- rerr
						continue
					}
					switch resp.StatusCode {
					case http.StatusOK:
						if err := record(out); err != nil {
							errCh <- err
						}
					case http.StatusServiceUnavailable:
						// full queue: legitimate under stress
					default:
						errCh <- fmt.Errorf("run answered %d: %s", resp.StatusCode, out)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if len(byDigest) == 0 {
		t.Fatal("stress run recorded no successful responses")
	}
	st := srv.cache.Stats()
	t.Logf("stress: %d distinct digests, cache %+v", len(byDigest), st)
}

// unmarshalDigest pulls the digest field out of a response body without
// depending on the full response schema.
func unmarshalDigest(body []byte, dst *string) error {
	return unmarshalField(body, "digest", dst)
}

func unmarshalField(body []byte, field string, dst *string) error {
	var m map[string]interface{}
	if err := json.Unmarshal(body, &m); err != nil {
		return fmt.Errorf("bad response body %q: %v", body, err)
	}
	s, ok := m[field].(string)
	if !ok {
		return fmt.Errorf("response %q has no %s field", body, field)
	}
	*dst = s
	return nil
}
