package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anton/internal/harness"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateCancelled JobState = "cancelled"
	// StateTimeout marks a job whose deadline expired before it finished;
	// its compute aborted cooperatively and nothing was cached.
	StateTimeout JobState = "timeout"
	// StateFailed marks a job whose experiment failed terminally (a
	// panic) with a live context; nothing was cached and waiters answer
	// an error rather than re-arming.
	StateFailed JobState = "failed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	switch s {
	case StateDone, StateCancelled, StateTimeout, StateFailed:
		return true
	}
	return false
}

// Job is one scheduled experiment run. Jobs are created by the server
// for both synchronous (/run) and asynchronous (/jobs) requests; the
// asynchronous path exposes them by id for status, progress streaming,
// and cancellation.
type Job struct {
	ID     string
	Digest string
	Req    *NormRequest

	state     atomic.Value // JobState
	completed atomic.Int64 // sweep units finished (the session progress hook)
	cancelled atomic.Bool
	entry     *Entry
	cache     *Cache
	sched     *Scheduler

	// ctx carries the job's deadline (derived from the server's base
	// context, so drain cancels every job at once); cancel releases it
	// and is what DELETE /jobs/{id} fires. The harness session polls
	// ctx.Done at sweep points and simulator batch/window boundaries.
	ctx    context.Context
	cancel context.CancelFunc
	// chargedNs is the run-time estimate this job added to its queue's
	// backlog at submit; refunded when the job leaves the queue.
	chargedNs int64
}

// State returns the job's current lifecycle phase.
func (j *Job) State() JobState { return j.state.Load().(JobState) }

// Completed returns the number of finished sweep units.
func (j *Job) Completed() int { return int(j.completed.Load()) }

// Done exposes the underlying cache entry's completion channel: closed
// when the result is available (or the entry aborted on cancellation).
func (j *Job) Done() <-chan struct{} { return j.entry.Done() }

// Result returns the cached payload once Done is closed.
func (j *Job) Result() (Result, bool) { return j.entry.Result() }

// ctxErr returns the job context's error (nil without a context).
func (j *Job) ctxErr() error {
	if j.ctx == nil {
		return nil
	}
	return j.ctx.Err()
}

// release frees the job's context resources (deadline timer).
func (j *Job) release() {
	if j.cancel != nil {
		j.cancel()
	}
}

// Cancel requests cooperative cancellation. A queued job is withdrawn
// before it starts: its in-flight cache entry aborts so joiners re-arm
// and a later identical request recomputes. A running job's context is
// cancelled; the session's abort hook observes that within one
// abort-check interval (a sweep point, an event batch, or a PDES
// window), the worker abandons the run and frees its slot, and the
// entry aborts — the interrupted computation's bytes can never be
// cached or served. Returns false if the job had already finished.
func (j *Job) Cancel() bool {
	if j.State().Terminal() {
		return false
	}
	if !j.cancelled.CompareAndSwap(false, true) {
		return false
	}
	if j.cancel != nil {
		j.cancel()
	}
	// Withdraw-before-start races with the worker claiming the job; the
	// claim CAS in runOne decides who wins.
	if j.state.CompareAndSwap(StateQueued, StateCancelled) {
		j.cache.Abort(j.entry)
		return true
	}
	// Running: the context cancellation above stops the compute; the
	// worker observes it post-run and aborts the entry. A cancel landing
	// after the worker already committed the result leaves a completed
	// cache entry behind — that run genuinely finished, and deterministic
	// results are valid whoever asked — while the job still reports
	// cancelled to its owner.
	j.state.CompareAndSwap(StateRunning, StateCancelled)
	return true
}

// SchedConfig sizes the batch scheduler.
type SchedConfig struct {
	// DESWorkers / AnalyticWorkers are the per-queue worker-pool sizes
	// (minimum 1 each). Analytic requests have their own pool so a
	// microsecond-scale closed-form query never waits behind a
	// multi-second DES job.
	DESWorkers      int
	AnalyticWorkers int
	// QueueDepth bounds each queue; a submit to a full queue fails (the
	// server answers 503) instead of buffering unboundedly.
	QueueDepth int
	// SessionWorkers is the default per-run sweep/PDES goroutine budget
	// when the request does not set one. Values above 1 run sweep units
	// on pool goroutines where a panic is unrecoverable; at the default
	// of 1 the scheduler's recover turns a panicking experiment into a
	// failed job instead of a dead server.
	SessionWorkers int
}

func (c SchedConfig) withDefaults() SchedConfig {
	if c.DESWorkers < 1 {
		c.DESWorkers = 1
	}
	if c.AnalyticWorkers < 1 {
		c.AnalyticWorkers = 1
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.SessionWorkers == 0 {
		c.SessionWorkers = 1
	}
	return c
}

// ErrQueueFull is returned by Submit when the target fidelity queue is
// at capacity (or the scheduler has begun draining).
var ErrQueueFull = fmt.Errorf("serve: queue full")

// Scheduler runs jobs on bounded per-fidelity worker pools.
type Scheduler struct {
	cfg      SchedConfig
	des      chan *Job
	analytic chan *Job
	quit     chan struct{}
	wg       sync.WaitGroup
	closed   atomic.Bool

	// queued tracks per-queue depth for the stats endpoint (channel len
	// alone misses jobs claimed but not yet finished).
	queuedDES      atomic.Int64
	queuedAnalytic atomic.Int64
	// backlog estimates each queue's outstanding work in nanoseconds —
	// the sum of run-time estimates charged at submit — feeding
	// deadline-aware admission and Retry-After hints.
	backlogDES      atomic.Int64
	backlogAnalytic atomic.Int64

	// times is the observed per-experiment run-time estimator (shared
	// with the server's admission gate).
	times *runTimes
}

// NewScheduler starts the worker pools.
func NewScheduler(cfg SchedConfig) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:      cfg,
		des:      make(chan *Job, cfg.QueueDepth),
		analytic: make(chan *Job, cfg.QueueDepth),
		quit:     make(chan struct{}),
		times:    newRunTimes(),
	}
	for i := 0; i < cfg.DESWorkers; i++ {
		s.wg.Add(1)
		go s.work(s.des)
	}
	for i := 0; i < cfg.AnalyticWorkers; i++ {
		s.wg.Add(1)
		go s.work(s.analytic)
	}
	return s
}

// Close stops admission and drains the queues: already-queued jobs still
// run (or abort immediately when their contexts are cancelled — the
// server's drain budget does exactly that), and a job stranded by a
// racing Submit is executed inline so no waiter ever hangs on a closed
// scheduler. Submit after Close fails with ErrQueueFull instead of
// panicking, which is what lets the synchronous re-arm path race a
// drain safely.
func (s *Scheduler) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.quit)
	s.wg.Wait()
	// Sweep stragglers that won the Submit race against the closed flag
	// after the workers quit.
	drain := func(q chan *Job) {
		for {
			select {
			case j := <-q:
				s.runOne(j)
			default:
				return
			}
		}
	}
	drain(s.des)
	drain(s.analytic)
}

// QueueDepths reports the current (des, analytic) queue occupancy.
func (s *Scheduler) QueueDepths() (int, int) {
	return int(s.queuedDES.Load()), int(s.queuedAnalytic.Load())
}

// EstimatedWait reports the estimated queueing delay in front of a new
// job at the given fidelity: the charged backlog divided by the pool
// size. It is an estimate in both directions (unobserved experiments
// charge nothing), which is fine for its two consumers — admission
// shedding and Retry-After hints.
func (s *Scheduler) EstimatedWait(fidelity string) time.Duration {
	if fidelity == harness.FidelityAnalytic {
		return time.Duration(s.backlogAnalytic.Load() / int64(s.cfg.AnalyticWorkers))
	}
	return time.Duration(s.backlogDES.Load() / int64(s.cfg.DESWorkers))
}

// Estimate exposes the observed run-time estimate for a request (0:
// never observed).
func (s *Scheduler) Estimate(req *NormRequest) time.Duration {
	return s.times.estimate(req.TimeKey())
}

// Submit enqueues a job owning in-flight cache entry e. The job is
// routed by request fidelity. On a full (or draining) queue the entry
// is aborted and ErrQueueFull returned.
func (s *Scheduler) Submit(j *Job) error {
	if s.closed.Load() {
		j.state.Store(StateCancelled)
		j.cache.Abort(j.entry)
		j.release()
		return ErrQueueFull
	}
	q, depth, backlog := s.des, &s.queuedDES, &s.backlogDES
	if j.Req.Fidelity == harness.FidelityAnalytic {
		q, depth, backlog = s.analytic, &s.queuedAnalytic, &s.backlogAnalytic
	}
	j.state.Store(StateQueued)
	depth.Add(1)
	if est := s.times.estimate(j.Req.TimeKey()); est > 0 {
		j.chargedNs = int64(est)
		backlog.Add(j.chargedNs)
	}
	select {
	case q <- j:
		return nil
	default:
		depth.Add(-1)
		backlog.Add(-j.chargedNs)
		j.chargedNs = 0
		j.state.Store(StateCancelled)
		j.cache.Abort(j.entry)
		j.release()
		return ErrQueueFull
	}
}

func (s *Scheduler) work(q chan *Job) {
	defer s.wg.Done()
	for {
		select {
		case j := <-q:
			s.runOne(j)
		case <-s.quit:
			// Drain whatever is already queued, then exit. Jobs whose
			// contexts the drain budget has cancelled abort at the pre-run
			// check below.
			for {
				select {
				case j := <-q:
					s.runOne(j)
				default:
					return
				}
			}
		}
	}
}

func (s *Scheduler) runOne(j *Job) {
	depth, backlog := &s.queuedDES, &s.backlogDES
	if j.Req.Fidelity == harness.FidelityAnalytic {
		depth, backlog = &s.queuedAnalytic, &s.backlogAnalytic
	}
	defer func() {
		depth.Add(-1)
		backlog.Add(-j.chargedNs)
		j.release()
	}()
	// Claim: a cancelled queued job lost the CAS race and was withdrawn
	// (its entry already aborted) — skip it.
	if !j.state.CompareAndSwap(StateQueued, StateRunning) {
		return
	}
	// Queue shedding at the worker: a job whose deadline expired (or
	// whose server began draining past its budget) while it waited never
	// starts computing — the waiter is already gone.
	if j.ctxErr() != nil {
		j.finishAborted()
		return
	}
	start := time.Now()
	res, err := s.runGuarded(j)
	if j.ctxErr() != nil || j.cancelled.Load() {
		// Cancelled or timed out mid-run. The simulators stopped at a
		// batch/window boundary and the sweeps skipped their remaining
		// units, so res (if the experiment even returned) is a truncated
		// artifact: abort the entry so those bytes can never be served,
		// and let the next identical request recompute from scratch.
		j.finishAborted()
		return
	}
	if err != nil {
		j.cache.Fail(j.entry)
		j.state.Store(StateFailed)
		return
	}
	s.times.observe(j.Req.TimeKey(), time.Since(start))
	j.cache.Complete(j.entry, res)
	// A mid-run cancel set the state to cancelled; keep that visible to
	// the job's owner while the result still lands in the cache.
	j.state.CompareAndSwap(StateRunning, StateDone)
}

// finishAborted withdraws an interrupted job's entry and records why it
// stopped.
func (j *Job) finishAborted() {
	j.cache.Abort(j.entry)
	switch {
	case j.cancelled.Load():
		j.state.Store(StateCancelled)
	case j.ctxErr() == context.DeadlineExceeded:
		j.state.Store(StateTimeout)
	default:
		j.state.Store(StateCancelled) // server drain
	}
}

// runGuarded executes the experiment with a recover: a cancelled
// session legitimately leaves zero values in skipped sweep slots, and
// an experiment tripping over them (or any other panic) must cost one
// failed job, not the serving process. The recover only works because
// sweeps run inline at the default SessionWorkers=1; see SchedConfig.
func (s *Scheduler) runGuarded(j *Job) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiment %s panicked: %v", j.Req.Experiment.ID, r)
		}
	}()
	sess := j.Req.Session(s.cfg.SessionWorkers, func(done int) {
		j.completed.Store(int64(done))
	})
	sess.Ctx = j.ctx
	return runExperiment(j.Req, sess), nil
}

// runExperiment executes the experiment in sess and renders the cached
// payload. The response JSON is built exactly once, here: every
// requester with the same digest — fresh run, single-flight joiner, or
// later cache hit — receives these exact bytes, which is the
// byte-identity contract the equivalence battery pins.
func runExperiment(req *NormRequest, sess *harness.Session) Result {
	var res Result
	var report string
	if req.Experiment.HasArtifacts() {
		a := req.Experiment.ArtifactsWith(sess, req.Quick)
		report = a.Report
		res.Bench = a.BenchJSON
		res.Trace = a.Trace
	} else {
		report = req.Experiment.RunWith(sess, req.Quick)
	}
	res.Response = renderResponse(req, sess.Completed(), report, len(res.Bench) > 0 || len(res.Trace) > 0)
	return res
}
