package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"anton/internal/harness"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateCancelled JobState = "cancelled"
)

// Job is one scheduled experiment run. Jobs are created by the server
// for both synchronous (/run) and asynchronous (/jobs) requests; the
// asynchronous path exposes them by id for status, progress streaming,
// and cancellation.
type Job struct {
	ID     string
	Digest string
	Req    *NormRequest

	state     atomic.Value // JobState
	completed atomic.Int64 // sweep units finished (the session progress hook)
	cancelled atomic.Bool
	entry     *Entry
	cache     *Cache
	sched     *Scheduler
}

// State returns the job's current lifecycle phase.
func (j *Job) State() JobState { return j.state.Load().(JobState) }

// Completed returns the number of finished sweep units.
func (j *Job) Completed() int { return int(j.completed.Load()) }

// Done exposes the underlying cache entry's completion channel: closed
// when the result is available (or the entry aborted on cancellation).
func (j *Job) Done() <-chan struct{} { return j.entry.Done() }

// Result returns the cached payload once Done is closed.
func (j *Job) Result() (Result, bool) { return j.entry.Result() }

// Cancel requests cancellation. A queued job is withdrawn before it
// starts: its in-flight cache entry aborts so joiners fail fast and a
// later identical request recomputes. A running job is detached
// instead — the simulation is deterministic and its result cacheable,
// so abandoning compute that is already half done would only hurt the
// next requester; the run continues to completion and caches normally
// while this job reports cancelled. Returns false if the job had
// already finished.
func (j *Job) Cancel() bool {
	if j.State() == StateDone {
		return false
	}
	first := j.cancelled.CompareAndSwap(false, true)
	if !first {
		return false
	}
	// Withdraw-before-start races with the worker claiming the job; the
	// claim CAS in runOne decides who wins.
	if j.state.CompareAndSwap(StateQueued, StateCancelled) {
		j.cache.Abort(j.entry)
		return true
	}
	// Running: mark only. The worker finishes and caches; the job itself
	// reports cancelled.
	j.state.CompareAndSwap(StateRunning, StateCancelled)
	return true
}

// SchedConfig sizes the batch scheduler.
type SchedConfig struct {
	// DESWorkers / AnalyticWorkers are the per-queue worker-pool sizes
	// (minimum 1 each). Analytic requests have their own pool so a
	// microsecond-scale closed-form query never waits behind a
	// multi-second DES job.
	DESWorkers      int
	AnalyticWorkers int
	// QueueDepth bounds each queue; a submit to a full queue fails (the
	// server answers 503) instead of buffering unboundedly.
	QueueDepth int
	// SessionWorkers is the default per-run sweep/PDES goroutine budget
	// when the request does not set one.
	SessionWorkers int
}

func (c SchedConfig) withDefaults() SchedConfig {
	if c.DESWorkers < 1 {
		c.DESWorkers = 1
	}
	if c.AnalyticWorkers < 1 {
		c.AnalyticWorkers = 1
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.SessionWorkers == 0 {
		c.SessionWorkers = 1
	}
	return c
}

// ErrQueueFull is returned by Submit when the target fidelity queue is
// at capacity.
var ErrQueueFull = fmt.Errorf("serve: queue full")

// Scheduler runs jobs on bounded per-fidelity worker pools.
type Scheduler struct {
	cfg      SchedConfig
	des      chan *Job
	analytic chan *Job
	wg       sync.WaitGroup
	closed   atomic.Bool

	// queued tracks per-queue depth for the stats endpoint (channel len
	// alone misses jobs claimed but not yet finished).
	queuedDES      atomic.Int64
	queuedAnalytic atomic.Int64
}

// NewScheduler starts the worker pools.
func NewScheduler(cfg SchedConfig) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:      cfg,
		des:      make(chan *Job, cfg.QueueDepth),
		analytic: make(chan *Job, cfg.QueueDepth),
	}
	for i := 0; i < cfg.DESWorkers; i++ {
		s.wg.Add(1)
		go s.work(s.des)
	}
	for i := 0; i < cfg.AnalyticWorkers; i++ {
		s.wg.Add(1)
		go s.work(s.analytic)
	}
	return s
}

// Close drains the queues and stops the workers. Queued jobs still run;
// Submit after Close panics (the server closes only at shutdown, after
// the listener is down).
func (s *Scheduler) Close() {
	if s.closed.CompareAndSwap(false, true) {
		close(s.des)
		close(s.analytic)
		s.wg.Wait()
	}
}

// QueueDepths reports the current (des, analytic) queue occupancy.
func (s *Scheduler) QueueDepths() (int, int) {
	return int(s.queuedDES.Load()), int(s.queuedAnalytic.Load())
}

// Submit enqueues a job owning in-flight cache entry e. The job is
// routed by request fidelity. On a full queue the entry is aborted and
// ErrQueueFull returned.
func (s *Scheduler) Submit(j *Job) error {
	q, depth := s.des, &s.queuedDES
	if j.Req.Fidelity == harness.FidelityAnalytic {
		q, depth = s.analytic, &s.queuedAnalytic
	}
	j.state.Store(StateQueued)
	depth.Add(1)
	select {
	case q <- j:
		return nil
	default:
		depth.Add(-1)
		j.state.Store(StateCancelled)
		j.cache.Abort(j.entry)
		return ErrQueueFull
	}
}

func (s *Scheduler) work(q chan *Job) {
	defer s.wg.Done()
	for j := range q {
		s.runOne(j)
	}
}

func (s *Scheduler) runOne(j *Job) {
	depth := &s.queuedDES
	if j.Req.Fidelity == harness.FidelityAnalytic {
		depth = &s.queuedAnalytic
	}
	defer depth.Add(-1)
	// Claim: a cancelled queued job lost the CAS race and was withdrawn
	// (its entry already aborted) — skip it.
	if !j.state.CompareAndSwap(StateQueued, StateRunning) {
		return
	}
	sess := j.Req.Session(s.cfg.SessionWorkers, func(done int) {
		j.completed.Store(int64(done))
	})
	res := runExperiment(j.Req, sess)
	j.cache.Complete(j.entry, res)
	// A mid-run cancel set the state to cancelled; keep that visible to
	// the job's owner while the result still lands in the cache.
	j.state.CompareAndSwap(StateRunning, StateDone)
}

// runExperiment executes the experiment in sess and renders the cached
// payload. The response JSON is built exactly once, here: every
// requester with the same digest — fresh run, single-flight joiner, or
// later cache hit — receives these exact bytes, which is the
// byte-identity contract the equivalence battery pins.
func runExperiment(req *NormRequest, sess *harness.Session) Result {
	var res Result
	var report string
	if req.Experiment.HasArtifacts() {
		a := req.Experiment.ArtifactsWith(sess, req.Quick)
		report = a.Report
		res.Bench = a.BenchJSON
		res.Trace = a.Trace
	} else {
		report = req.Experiment.RunWith(sess, req.Quick)
	}
	res.Response = renderResponse(req, sess.Completed(), report, len(res.Bench) > 0 || len(res.Trace) > 0)
	return res
}
