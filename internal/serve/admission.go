package serve

import (
	"sync"
	"time"
)

// Deadline-aware admission support: the server sheds requests whose
// deadline the observed per-experiment run times say cannot be met,
// answering 503 with a Retry-After computed from the queue backlog
// instead of holding a doomed request in the queue until its 504.

// runTimes is the observed run-time estimator, keyed by
// NormRequest.TimeKey (experiment/fidelity/density). It is deliberately
// tiny: the key space is bounded by the experiment registry (a few
// dozen entries at most), so an unbounded map is fine.
type runTimes struct {
	mu sync.Mutex
	m  map[string]time.Duration
}

func newRunTimes() *runTimes { return &runTimes{m: map[string]time.Duration{}} }

// observe folds one completed run's wall time into the key's estimate.
// EWMA with alpha 1/2: recent behaviour dominates quickly (cache
// warming and load shifts change run times), while a single outlier
// cannot stick.
func (r *runTimes) observe(key string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.m[key]; ok {
		r.m[key] = (prev + d) / 2
	} else {
		r.m[key] = d
	}
}

// estimate returns the current estimate for key, or 0 when the key has
// never been observed — admission is optimistic about unknown work, so
// a cold server never sheds.
func (r *runTimes) estimate(key string) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[key]
}
