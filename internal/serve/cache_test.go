package serve

import (
	"fmt"
	"testing"
)

func res(s string) Result { return Result{Response: []byte(s)} }

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(0)
	e1, o1 := c.Get("d1")
	if o1 != Miss {
		t.Fatalf("first lookup: %v, want miss", o1)
	}
	e2, o2 := c.Get("d1")
	if o2 != Join {
		t.Fatalf("concurrent lookup: %v, want join", o2)
	}
	if e2 != e1 {
		t.Fatal("joiner got a different entry")
	}
	done := make(chan Result)
	go func() {
		<-e2.Done()
		r, ok := e2.Result()
		if !ok {
			t.Error("joined entry reported aborted")
		}
		done <- r
	}()
	c.Complete(e1, res("payload"))
	if got := <-done; string(got.Response) != "payload" {
		t.Fatalf("joiner saw %q", got.Response)
	}
	if _, o := c.Get("d1"); o != Hit {
		t.Fatalf("post-completion lookup: %v, want hit", o)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Joins != 1 {
		t.Fatalf("stats %+v, want 1/1/1", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	for i := 1; i <= 2; i++ {
		e, _ := c.Get(fmt.Sprintf("d%d", i))
		c.Complete(e, res(fmt.Sprintf("r%d", i)))
	}
	// Touch d1 so d2 is the LRU victim.
	if _, o := c.Get("d1"); o != Hit {
		t.Fatal("d1 should be cached")
	}
	e3, _ := c.Get("d3")
	c.Complete(e3, res("r3"))
	if _, o := c.Get("d2"); o != Miss {
		t.Fatal("d2 should have been evicted (LRU)")
	}
	if _, o := c.Get("d1"); o != Hit {
		t.Fatal("recently-used d1 should have survived")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
}

// In-flight entries are never evicted, even when completed entries
// overflow the bound around them.
func TestCacheInFlightNotEvicted(t *testing.T) {
	c := NewCache(1)
	inflight, _ := c.Get("slow")
	for i := 0; i < 3; i++ {
		e, _ := c.Get(fmt.Sprintf("d%d", i))
		c.Complete(e, res("x"))
	}
	if _, o := c.Get("slow"); o != Join {
		t.Fatal("in-flight entry was evicted")
	}
	c.Complete(inflight, res("slow-result"))
	if _, o := c.Get("slow"); o != Hit {
		t.Fatal("completed former in-flight entry should hit")
	}
}

func TestCacheAbort(t *testing.T) {
	c := NewCache(0)
	e, _ := c.Get("d")
	joined, _ := c.Get("d")
	c.Abort(e)
	<-joined.Done()
	if _, ok := joined.Result(); ok {
		t.Fatal("aborted entry reported a result")
	}
	// The digest is free again: the next lookup owns a fresh computation.
	e2, o := c.Get("d")
	if o != Miss {
		t.Fatalf("post-abort lookup: %v, want miss", o)
	}
	c.Complete(e2, res("recomputed"))
	if r, ok := c.Peek("d"); !ok || string(r.Response) != "recomputed" {
		t.Fatalf("recompute after abort: %q, %v", r.Response, ok)
	}
}

func TestCacheSeedAndSnapshot(t *testing.T) {
	c := NewCache(0)
	c.Seed("b", Result{Response: []byte("rb"), Bench: []byte("bench")})
	c.Seed("a", res("ra"))
	c.Seed("a", res("ignored")) // existing entries win
	snap := c.Snapshot()
	if len(snap) != 2 || snap[0].Digest != "a" || snap[1].Digest != "b" {
		t.Fatalf("snapshot order: %+v", snap)
	}
	if string(snap[0].ResultOf().Response) != "ra" {
		t.Fatalf("seed overwrote an existing entry: %q", snap[0].ResultOf().Response)
	}
	if string(snap[1].ResultOf().Bench) != "bench" {
		t.Fatal("snapshot dropped the bench artifact")
	}
	if _, o := c.Get("a"); o != Hit {
		t.Fatal("seeded entry should hit")
	}
}
