package serve

import (
	"net/http/httptest"
	"testing"
)

// testMix is a trimmed, cheap mix for the loadgen's own tests.
func testMix() []Request {
	return []Request{
		{Experiment: "fastpath", Fidelity: "analytic", Quick: true},
		{Experiment: "fig5", Quick: true},
		{Experiment: "fig5", Quick: true, Workers: 4}, // same digest as above
	}
}

func runLoadOnce(t *testing.T, cfg LoadConfig) LoadStats {
	t.Helper()
	srv, err := New(Config{Sched: SchedConfig{DESWorkers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	st, err := RunLoad(ts.URL+"/api/v1", nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestLoadChecksumDeterministic: the same (seed, requests) config
// produces the same order-independent response checksum against two
// independent servers at different client counts — the property that
// lets BENCH_serve.json pin the checksum exactly.
func TestLoadChecksumDeterministic(t *testing.T) {
	a := runLoadOnce(t, LoadConfig{Requests: 24, Clients: 4, Seed: 7, Mix: testMix()})
	b := runLoadOnce(t, LoadConfig{Requests: 24, Clients: 2, Seed: 7, Mix: testMix()})
	if a.Errors != 0 || b.Errors != 0 {
		t.Fatalf("errors: %d and %d, want 0", a.Errors, b.Errors)
	}
	if a.Checksum != b.Checksum {
		t.Fatalf("checksum not deterministic: %s vs %s", a.Checksum, b.Checksum)
	}
	if a.DistinctDigests != 2 || b.DistinctDigests != 2 {
		t.Fatalf("distinct digests %d/%d, want 2 (workers must not split a digest)", a.DistinctDigests, b.DistinctDigests)
	}
	if a.CacheMisses != a.DistinctDigests {
		t.Fatalf("%d misses for %d digests: single-flight dedup broken", a.CacheMisses, a.DistinctDigests)
	}
	// A different seed reorders the picks but (with this small mix and
	// enough requests) covers the same entries, so the multiset of
	// responses — and the checksum — can differ only via pick counts.
	c := runLoadOnce(t, LoadConfig{Requests: 24, Clients: 4, Seed: 8, Mix: testMix()})
	if c.Errors != 0 {
		t.Fatalf("seed-8 run errored %d times", c.Errors)
	}
}

// TestDefaultMixNormalizes: every entry of the committed default mix
// must stay valid against the experiment registry.
func TestDefaultMixNormalizes(t *testing.T) {
	digests := map[string]bool{}
	for i, r := range DefaultMix() {
		n, err := Normalize(r)
		if err != nil {
			t.Fatalf("default mix entry %d (%+v): %v", i, r, err)
		}
		digests[n.Digest()] = true
	}
	if len(digests) != 6 {
		t.Fatalf("default mix spans %d digests, want 6 (two entries are deliberate digest aliases)", len(digests))
	}
}
