package serve

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current API output")

// TestAPIGolden pins a full transcript of the HTTP API — the happy
// paths on a cheap deterministic experiment and every error path — as
// a golden file. The server is bit-deterministic end to end (responses,
// digests, sequential job ids, and, for a sequential script, the cache
// counters), so any diff means the wire contract changed. After an
// intentional change, regenerate with:
//
//	go test ./internal/serve -run APIGolden -update
func TestAPIGolden(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var b strings.Builder
	call := func(name, method, path, body string) {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "== %s\n%s %s\n", name, method, path)
		if body != "" {
			fmt.Fprintf(&b, "%s\n", body)
		}
		fmt.Fprintf(&b, "-- %d", resp.StatusCode)
		if c := resp.Header.Get(CacheHeader); c != "" {
			fmt.Fprintf(&b, " cache=%s", c)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			fmt.Fprintf(&b, " retry-after=%s", ra)
		}
		fmt.Fprintf(&b, "\n%s", respBody)
		if len(respBody) > 0 && respBody[len(respBody)-1] != '\n' {
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}

	const fastpath = `{"experiment":"fastpath","fidelity":"analytic","quick":true}`
	digest := mustNormalize(t, fastpath).Digest()

	call("health", "GET", "/api/v1/healthz", "")
	call("ready", "GET", "/api/v1/readyz", "")
	call("experiments", "GET", "/api/v1/experiments", "")
	call("unknown experiment", "POST", "/api/v1/run", `{"experiment":"fig99"}`)
	call("bad fidelity", "POST", "/api/v1/run", `{"experiment":"fig5","fidelity":"cartoon"}`)
	call("analytic refused", "POST", "/api/v1/run", `{"experiment":"fig11","fidelity":"analytic"}`)
	call("analytic with faults refused", "POST", "/api/v1/run",
		`{"experiment":"fastpath","fidelity":"analytic","faults":"seed=1,corrupt=1e-4"}`)
	call("bad plan", "POST", "/api/v1/run", `{"experiment":"fig5","faults":"corrupt=lots"}`)
	call("bad timeout", "POST", "/api/v1/run", `{"experiment":"fig5","timeout_ms":-3}`)
	call("unknown field", "POST", "/api/v1/run", `{"experiment":"fig5","fidelty":"des"}`)
	call("wrong method", "GET", "/api/v1/run", "")
	call("run fastpath analytic (miss)", "POST", "/api/v1/run", fastpath)
	call("run again, different workers/metrics (hit, same bytes)", "POST", "/api/v1/run",
		`{"workers":5,"metrics":true,"experiment":"fastpath","fidelity":"analytic","quick":true}`)
	call("run again with a generous timeout (hit, same bytes: timeout never changes the digest)", "POST", "/api/v1/run",
		`{"experiment":"fastpath","fidelity":"analytic","quick":true,"timeout_ms":60000}`)
	call("result by digest", "GET", "/api/v1/results/"+digest, "")
	call("unknown result", "GET", "/api/v1/results/deadbeef", "")
	call("artifacts of an artifact-free experiment", "GET", "/api/v1/artifacts/"+digest+"/bench", "")
	call("unknown artifact kind", "GET", "/api/v1/artifacts/"+digest+"/nope", "")
	call("submit cached job", "POST", "/api/v1/jobs", fastpath)
	call("job status", "GET", "/api/v1/jobs/j1", "")
	call("job stream (already done)", "GET", "/api/v1/jobs/j1/stream", "")
	call("cancel a done job", "DELETE", "/api/v1/jobs/j1", "")
	call("unknown job", "GET", "/api/v1/jobs/zzz", "")
	call("stats", "GET", "/api/v1/stats", "")

	// Drain: readiness flips, admission refuses compute, but cached
	// results still serve (a draining server finishes what it can).
	srv.BeginDrain()
	call("ready while draining", "GET", "/api/v1/readyz", "")
	call("health while draining (liveness stays up)", "GET", "/api/v1/healthz", "")
	call("run while draining (cached: still served)", "POST", "/api/v1/run", fastpath)
	call("run uncached while draining (refused)", "POST", "/api/v1/run", `{"experiment":"fig5","quick":true}`)
	call("submit while draining (refused)", "POST", "/api/v1/jobs", fastpath)
	call("stats while draining", "GET", "/api/v1/stats", "")

	golden := filepath.Join("testdata", "api_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got := b.String(); got != string(want) {
		t.Fatalf("API transcript drifted from %s (regenerate with -update after an intentional change)\ngot:\n%s", golden, diffHint(got, string(want)))
	}
}

// diffHint returns the first differing line pair — enough to locate a
// drift without dumping two multi-kilobyte transcripts.
func diffHint(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n got: %s\nwant: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("length changed: got %d lines, want %d", len(g), len(w))
}
