package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"anton/internal/checkpoint"
)

// TestCheckpointRestore: a server with a checkpoint path persists every
// completed result; a restarted server answers the same requests from
// the restored cache — byte-identically, without recomputing — and
// serves the restored machine-readable artifacts. The metrics
// experiment is used because it is the one with artifacts, so the test
// covers all three persisted payloads (response, bench, trace).
func TestCheckpointRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the metrics experiment twice across a restart")
	}
	ckpt := filepath.Join(t.TempDir(), "serve.ckpt")
	req := Request{Experiment: "metrics", Quick: true}

	srv1, err := New(Config{CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	o, fresh := postRun(t, ts1.URL, req)
	if o != Miss {
		t.Fatalf("first run: outcome %v, want miss", o)
	}
	n, err := Normalize(req)
	if err != nil {
		t.Fatal(err)
	}
	bench1 := getArtifact(t, ts1.URL, n.Digest(), "bench")
	trace1 := getArtifact(t, ts1.URL, n.Digest(), "trace")
	ts1.Close()
	srv1.Close()

	srv2, err := New(Config{CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if st := srv2.cache.Stats(); st.Entries != 1 {
		t.Fatalf("restored cache holds %d entries, want 1", st.Entries)
	}
	o2, restored := postRun(t, ts2.URL, req)
	if o2 != Hit {
		t.Fatalf("post-restart request: outcome %v, want hit (restored caches must not recompute)", o2)
	}
	if !bytes.Equal(fresh, restored) {
		t.Fatalf("restored response differs from the original:\nbefore: %s\nafter:  %s", fresh, restored)
	}
	if got := getArtifact(t, ts2.URL, n.Digest(), "bench"); !bytes.Equal(bench1, got) {
		t.Fatal("restored bench artifact differs")
	}
	if got := getArtifact(t, ts2.URL, n.Digest(), "trace"); !bytes.Equal(trace1, got) {
		t.Fatal("restored trace artifact differs")
	}
}

// TestCheckpointKindMismatch: a checkpoint written by another subsystem
// is refused, not silently misread.
func TestCheckpointKindMismatch(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "other.ckpt")
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.cfg.CheckpointPath = ckpt
	srv.persist()
	st, err := New(Config{CheckpointPath: ckpt})
	if err != nil {
		t.Fatalf("valid empty checkpoint refused: %v", err)
	}
	st.Close()

	// Overwrite it with a checkpoint another subsystem wrote.
	if err := (&checkpoint.State{Kind: "mdsim", Step: 1}).WriteFile(ckpt); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{CheckpointPath: ckpt}); err == nil {
		t.Fatal("foreign checkpoint accepted")
	}
}

func getArtifact(t *testing.T, url, digest, kind string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/api/v1/artifacts/" + digest + "/" + kind)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET artifact %s: %d %s", kind, resp.StatusCode, body)
	}
	return body
}
