package serve

import (
	"encoding/json"
	"testing"

	"anton/internal/harness"
)

func TestNormalizeErrors(t *testing.T) {
	cases := []struct {
		name string
		body string
		code string
	}{
		{"unknown experiment", `{"experiment":"fig99"}`, "unknown-experiment"},
		{"bad fidelity", `{"experiment":"fig5","fidelity":"cartoon"}`, "bad-fidelity"},
		{"analytic-only refusal", `{"experiment":"fig11","fidelity":"analytic"}`, "analytic-refused"},
		{"analytic with faults", `{"experiment":"fastpath","fidelity":"analytic","faults":"seed=1,corrupt=1e-4"}`, "analytic-refused"},
		{"bad plan", `{"experiment":"fig5","faults":"corrupt=lots"}`, "bad-plan"},
		{"plan outside topology", `{"experiment":"fig5","faults":"killnode=9999@1us"}`, "bad-plan"},
		{"unknown field", `{"experiment":"fig5","fidelty":"des"}`, "bad-json"},
		{"trailing data", `{"experiment":"fig5"}{"experiment":"fig6"}`, "bad-json"},
		{"not json", `hello`, "bad-json"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseRequest([]byte(c.body))
			if err == nil {
				t.Fatalf("ParseRequest(%s) succeeded, want code %q", c.body, c.code)
			}
			be, ok := err.(*BadRequestError)
			if !ok {
				t.Fatalf("ParseRequest(%s) returned %T (%v), want *BadRequestError", c.body, err, err)
			}
			if be.Code != c.code {
				t.Fatalf("ParseRequest(%s) code %q, want %q", c.body, be.Code, c.code)
			}
		})
	}
}

func TestDigestExcludesWorkersAndMetrics(t *testing.T) {
	base := mustNormalize(t, `{"experiment":"fig5","quick":true}`)
	for _, body := range []string{
		`{"experiment":"fig5","quick":true,"workers":8}`,
		`{"experiment":"fig5","quick":true,"metrics":true}`,
		`{"experiment":"fig5","quick":true,"workers":3,"metrics":true}`,
		`{"experiment":"fig5","quick":true,"fidelity":"des"}`, // explicit default
	} {
		if d := mustNormalize(t, body).Digest(); d != base.Digest() {
			t.Errorf("digest(%s) = %s, want the workers/metrics-independent %s", body, d, base.Digest())
		}
	}
	for _, body := range []string{
		`{"experiment":"fig5"}`,
		`{"experiment":"fig6","quick":true}`,
		`{"experiment":"fig5","quick":true,"faults":"seed=1,corrupt=1e-4"}`,
	} {
		if d := mustNormalize(t, body).Digest(); d == base.Digest() {
			t.Errorf("digest(%s) collides with the base request; these responses differ", body)
		}
	}
}

// TestDigestFaultPlanCanonical: equivalent fault-plan spellings share a
// digest because the plan is round-tripped through Plan.String().
func TestDigestFaultPlanCanonical(t *testing.T) {
	a := mustNormalize(t, `{"experiment":"fig6","faults":"seed=7,corrupt=1e-4,retry=250ns"}`)
	b := mustNormalize(t, `{"experiment":"fig6","faults":" retry=250ns , seed=7, corrupt=0.0001 "}`)
	if a.Digest() != b.Digest() {
		t.Fatalf("equivalent plan spellings digest differently:\n %s (%q)\n %s (%q)",
			a.Digest(), a.Faults, b.Digest(), b.Faults)
	}
}

// TestDigestDistinctAcrossRegistry: every experiment at every fidelity
// it supports, quick and full, gets its own digest — the seeded-corpus
// collision check.
func TestDigestDistinctAcrossRegistry(t *testing.T) {
	seen := map[string]string{}
	add := func(r Request) {
		n, err := Normalize(r)
		if err != nil {
			t.Fatalf("Normalize(%+v): %v", r, err)
		}
		d := n.Digest()
		key := n.Experiment.ID + "/" + n.Fidelity + "/" + n.Faults + "/" + map[bool]string{true: "quick", false: "full"}[n.Quick]
		if prev, dup := seen[d]; dup {
			t.Fatalf("digest collision: %s and %s both digest to %s", prev, key, d)
		}
		seen[d] = key
	}
	for _, e := range harness.Experiments() {
		add(Request{Experiment: e.ID})
		add(Request{Experiment: e.ID, Quick: true})
		add(Request{Experiment: e.ID, Faults: "seed=3,corrupt=1e-4"})
		if e.Analytic {
			add(Request{Experiment: e.ID, Fidelity: harness.FidelityAnalytic})
			add(Request{Experiment: e.ID, Fidelity: harness.FidelityAnalytic, Quick: true})
		}
	}
	if len(seen) < 2*len(harness.Experiments()) {
		t.Fatalf("corpus spans only %d digests", len(seen))
	}
}

func mustNormalize(t *testing.T, body string) *NormRequest {
	t.Helper()
	n, err := ParseRequest([]byte(body))
	if err != nil {
		t.Fatalf("ParseRequest(%s): %v", body, err)
	}
	return n
}

// FuzzRequestDigest: for any accepted request body, the digest must be
// invariant under JSON re-encoding — key reorder (Go re-marshals maps
// in sorted key order), whitespace (indentation), and changes to the
// workers/metrics fields — and two bodies that normalize differently
// must digest differently.
func FuzzRequestDigest(f *testing.F) {
	f.Add(`{"experiment":"fig5"}`)
	f.Add(`{"experiment":"fig5","quick":true,"workers":4}`)
	f.Add(`{"quick":true,"experiment":"fig6","fidelity":"des"}`)
	f.Add(`{"experiment":"fastpath","fidelity":"analytic","quick":true}`)
	f.Add(`{"experiment":"fig6","faults":"seed=7,corrupt=1e-4,retry=250ns"}`)
	f.Add(`{"experiment":"table3","faults":" corrupt=0.0001 ,seed=7"}`)
	f.Add(`{"experiment":"metrics","metrics":true}`)
	f.Add(`{"experiment":"killsweep","faults":"seed=9,killlink=0:X+@2us,wdog=15us"}`)
	f.Add(`{"experiment":"fig12","quick":true,"workers":8,"metrics":true}`)
	f.Add(`  {  "experiment" : "table1" , "quick" : false }  `)
	f.Add(`{"experiment":"fig5","quick":true,"timeout_ms":2500}`)
	f.Fuzz(func(t *testing.T, body string) {
		n, err := ParseRequest([]byte(body))
		if err != nil {
			return // rejected bodies have no digest to pin
		}
		d := n.Digest()

		// Round-trip through a map: sorted keys, different field order.
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Fatalf("accepted body %q does not unmarshal generically: %v", body, err)
		}
		reordered, err := json.MarshalIndent(m, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		n2, err := ParseRequest(reordered)
		if err != nil {
			t.Fatalf("re-encoded body rejected: %v\noriginal: %q\nreencoded: %s", err, body, reordered)
		}
		if n2.Digest() != d {
			t.Fatalf("digest changed under JSON re-encoding:\noriginal %q -> %s\nreencoded %s -> %s",
				body, d, reordered, n2.Digest())
		}

		// Workers, metrics, and timeout_ms must never move the digest:
		// the same experiment under a different execution budget is the
		// same result, or the cache (and the chaos battery's byte-identity
		// checks) would fracture by deadline.
		m["workers"] = float64(7)
		m["metrics"] = true
		m["timeout_ms"] = float64(12345)
		mutated, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		n3, err := ParseRequest(mutated)
		if err != nil {
			t.Fatalf("workers/metrics/timeout mutation rejected: %v (%s)", err, mutated)
		}
		if n3.Digest() != d {
			t.Fatalf("digest depends on workers/metrics/timeout_ms: %s -> %s", mutated, n3.Digest())
		}

		// Flipping quick must move it (quick changes sampling density,
		// hence response bytes).
		m["quick"] = !n.Quick
		delete(m, "workers")
		flipped, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if n4, err := ParseRequest(flipped); err == nil && n4.Digest() == d {
			t.Fatalf("digest ignores quick: %s and %q share %s", flipped, body, d)
		}
	})
}
