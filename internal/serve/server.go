package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"anton/internal/checkpoint"
	"anton/internal/harness"
)

// Config sizes one server instance.
type Config struct {
	// CacheEntries bounds the result cache (<= 0: unbounded).
	CacheEntries int
	// Sched sizes the batch scheduler.
	Sched SchedConfig
	// CheckpointPath, when non-empty, persists the completed result cache
	// after every finished job and restores it at startup: a restarted
	// server resumes with every previously completed experiment already
	// answered, the same at-most-one-job-lost granularity as the
	// antonbench CLI's per-experiment snapshots.
	CheckpointPath string
	// MaxJobs bounds the async job registry; the oldest finished jobs are
	// forgotten beyond it (default 1024).
	MaxJobs int
}

// Server is the simulation-as-a-service HTTP tier.
type Server struct {
	cfg   Config
	cache *Cache
	sched *Scheduler
	mux   *http.ServeMux

	jobMu    sync.Mutex
	jobs     map[string]*Job
	jobOrder []string
	jobSeq   int

	persistMu sync.Mutex
}

// New builds a server, restoring the result cache from the checkpoint
// (if configured and present).
func New(cfg Config) (*Server, error) {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	s := &Server{
		cfg:   cfg,
		cache: NewCache(cfg.CacheEntries),
		sched: NewScheduler(cfg.Sched),
		jobs:  map[string]*Job{},
	}
	if cfg.CheckpointPath != "" {
		if err := s.restore(); err != nil {
			return nil, err
		}
		s.cache.onComplete = s.persist
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Close stops the scheduler (queued jobs finish first) and writes a
// final checkpoint.
func (s *Server) Close() {
	s.sched.Close()
	if s.cfg.CheckpointPath != "" {
		s.persist()
	}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /api/v1/healthz", s.handleHealth)
	s.mux.HandleFunc("GET /api/v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /api/v1/run", s.handleRun)
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.handleJobStream)
	s.mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /api/v1/results/{digest}", s.handleResult)
	s.mux.HandleFunc("GET /api/v1/artifacts/{digest}/{kind}", s.handleArtifact)
	s.mux.HandleFunc("GET /api/v1/stats", s.handleStats)
}

// CacheHeader is the response header conveying the cache outcome
// (hit, miss, join). It lives in a header, never in the body: the body
// must be byte-identical between a fresh run and a cache hit.
const CacheHeader = "X-Anton-Cache"

// response is the JSON body of a completed run. Field order is fixed by
// this struct, so the rendered bytes are canonical.
type response struct {
	Experiment string `json:"experiment"`
	Title      string `json:"title"`
	Fidelity   string `json:"fidelity"`
	Faults     string `json:"faults,omitempty"`
	Quick      bool   `json:"quick"`
	Digest     string `json:"digest"`
	SweepUnits int    `json:"sweep_units"`
	Artifacts  bool   `json:"artifacts"`
	Report     string `json:"report"`
}

// renderResponse builds the canonical response bytes for a completed
// run. sweepUnits is the session's completed progress count — itself
// deterministic (the number of sweep jobs an experiment runs is fixed
// by id and quick, not by scheduling).
func renderResponse(req *NormRequest, sweepUnits int, report string, artifacts bool) []byte {
	b, err := json.Marshal(response{
		Experiment: req.Experiment.ID,
		Title:      req.Experiment.Title,
		Fidelity:   req.Fidelity,
		Faults:     req.Faults,
		Quick:      req.Quick,
		Digest:     req.Digest(),
		SweepUnits: sweepUnits,
		Artifacts:  artifacts,
		Report:     report,
	})
	if err != nil {
		panic(err) // string/bool/int fields cannot fail to marshal
	}
	return append(b, '\n')
}

type errBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	b, _ := json.Marshal(struct {
		Error errBody `json:"error"`
	}{errBody{Code: code, Message: msg}})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	b, err := json.Marshal(v)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "encode", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expInfo struct {
		ID        string `json:"id"`
		Title     string `json:"title"`
		Analytic  bool   `json:"analytic"`
		Artifacts bool   `json:"artifacts"`
	}
	var out []expInfo
	for _, e := range harness.Experiments() {
		out = append(out, expInfo{ID: e.ID, Title: e.Title, Analytic: e.Analytic, Artifacts: e.HasArtifacts()})
	}
	writeJSON(w, map[string]interface{}{"experiments": out})
}

// parseBody reads and normalizes the request, writing the 400 itself on
// failure.
func (s *Server) parseBody(w http.ResponseWriter, r *http.Request) *NormRequest {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad-body", err.Error())
		return nil
	}
	req, err := ParseRequest(body)
	if err != nil {
		var code = "bad-request"
		if be, ok := err.(*BadRequestError); ok {
			code = be.Code
		}
		writeErr(w, http.StatusBadRequest, code, err.Error())
		return nil
	}
	return req
}

// handleRun is the synchronous path: answer from the cache, join an
// identical in-flight run, or schedule and wait.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	req := s.parseBody(w, r)
	if req == nil {
		return
	}
	digest := req.Digest()
	// A joined entry can abort under us (its owner was a cancelled queued
	// job); retry the lookup — the next round becomes the owner.
	for {
		entry, outcome := s.cache.Get(digest)
		if outcome == Miss {
			j := &Job{Digest: digest, Req: req, entry: entry, cache: s.cache, sched: s.sched}
			if err := s.sched.Submit(j); err != nil {
				writeErr(w, http.StatusServiceUnavailable, "queue-full",
					fmt.Sprintf("the %s queue is at capacity; retry later", req.Fidelity))
				return
			}
		}
		select {
		case <-entry.Done():
		case <-r.Context().Done():
			// The client went away. The computation (if any) continues and
			// caches; nothing to write.
			return
		}
		res, ok := entry.Result()
		if !ok {
			continue // aborted: recompute
		}
		w.Header().Set(CacheHeader, string(outcome))
		w.Header().Set("Content-Type", "application/json")
		w.Write(res.Response)
		return
	}
}

// jobStatus is the JSON shape of an async job.
type jobStatus struct {
	Job       string   `json:"job"`
	Digest    string   `json:"digest"`
	State     JobState `json:"state"`
	Completed int      `json:"completed"`
	Cache     string   `json:"cache,omitempty"`
}

func (s *Server) registerJob(j *Job) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.jobSeq++
	j.ID = fmt.Sprintf("j%d", s.jobSeq)
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
	for len(s.jobOrder) > s.cfg.MaxJobs {
		// Forget the oldest finished job; a still-active head stalls
		// eviction rather than losing a live handle.
		old := s.jobs[s.jobOrder[0]]
		if st := old.State(); st != StateDone && st != StateCancelled {
			break
		}
		delete(s.jobs, s.jobOrder[0])
		s.jobOrder = s.jobOrder[1:]
	}
}

func (s *Server) job(id string) *Job {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	return s.jobs[id]
}

// handleSubmit is the asynchronous path: enqueue (or attach to the
// cache) and return a job id immediately.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req := s.parseBody(w, r)
	if req == nil {
		return
	}
	digest := req.Digest()
	entry, outcome := s.cache.Get(digest)
	j := &Job{Digest: digest, Req: req, entry: entry, cache: s.cache, sched: s.sched}
	switch outcome {
	case Miss:
		if err := s.sched.Submit(j); err != nil {
			writeErr(w, http.StatusServiceUnavailable, "queue-full",
				fmt.Sprintf("the %s queue is at capacity; retry later", req.Fidelity))
			return
		}
	case Hit:
		j.state.Store(StateDone)
	case Join:
		// Ride the in-flight computation; the job is done when it is.
		j.state.Store(StateRunning)
		go func() {
			<-entry.Done()
			j.state.CompareAndSwap(StateRunning, StateDone)
		}()
	}
	s.registerJob(j)
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, jobStatus{Job: j.ID, Digest: digest, State: j.State(), Completed: j.Completed(), Cache: string(outcome)})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown-job", fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, jobStatus{Job: j.ID, Digest: j.Digest, State: j.State(), Completed: j.Completed()})
}

// handleJobStream streams progress as newline-delimited JSON: one line
// per observed change of (state, completed), ending with the terminal
// state. A job that is already done emits exactly one line.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown-job", fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var last jobStatus
	emit := func(st jobStatus) {
		b, _ := json.Marshal(st)
		w.Write(append(b, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
		last = st
	}
	for {
		st := jobStatus{Job: j.ID, Digest: j.Digest, State: j.State(), Completed: j.Completed()}
		if st != last {
			emit(st)
		}
		if st.State == StateDone || st.State == StateCancelled {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			// Emit the terminal line on the next loop turn.
		case <-time.After(25 * time.Millisecond):
		}
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown-job", fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	j.Cancel()
	writeJSON(w, jobStatus{Job: j.ID, Digest: j.Digest, State: j.State(), Completed: j.Completed()})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, ok := s.cache.Peek(r.PathValue("digest"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown-result", "no completed result with that digest")
		return
	}
	w.Header().Set(CacheHeader, string(Hit))
	w.Header().Set("Content-Type", "application/json")
	w.Write(res.Response)
}

// handleArtifact serves a completed run's machine-readable artifacts:
// kind "bench" is the BENCH_metrics.json payload, kind "trace" the
// chrome://tracing export.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	res, ok := s.cache.Peek(r.PathValue("digest"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown-result", "no completed result with that digest")
		return
	}
	var body []byte
	switch r.PathValue("kind") {
	case "bench":
		body = res.Bench
	case "trace":
		body = res.Trace
	default:
		writeErr(w, http.StatusNotFound, "unknown-artifact",
			fmt.Sprintf("unknown artifact kind %q (valid: bench, trace)", r.PathValue("kind")))
		return
	}
	if len(body) == 0 {
		writeErr(w, http.StatusNotFound, "no-artifacts", "this experiment has no machine-readable artifacts")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	des, analytic := s.sched.QueueDepths()
	writeJSON(w, map[string]interface{}{
		"cache": s.cache.Stats(),
		"queues": map[string]int{
			"des":      des,
			"analytic": analytic,
		},
	})
}

// checkpointKind names this server's snapshots.
const checkpointKind = "antonserve"

// rowSep separates the fields of one persisted cache row. Every
// persisted payload is JSON text, which cannot contain a NUL byte, so
// the separator is unambiguous.
const rowSep = "\x00"

// persist writes the completed result cache to the checkpoint path.
// Serialized under persistMu so concurrent completions cannot interleave
// tmp-file writes; the snapshot itself is atomic (tmp + rename).
func (s *Server) persist() {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	entries := s.cache.Snapshot()
	rows := make([]string, 0, len(entries))
	for _, e := range entries {
		res := e.ResultOf()
		rows = append(rows, strings.Join([]string{
			e.Digest, string(res.Response), string(res.Bench), string(res.Trace),
		}, rowSep))
	}
	st := &checkpoint.State{
		Kind:   checkpointKind,
		Step:   int64(len(rows)),
		Fields: map[string]string{"schema": "anton-serve/v1"},
		Rows:   rows,
	}
	if err := st.WriteFile(s.cfg.CheckpointPath); err != nil {
		// Persistence is best-effort durability, not correctness: the
		// server keeps serving from memory.
		fmt.Printf("antonserve: checkpoint: %v\n", err)
	}
}

// restore seeds the cache from the checkpoint, ignoring a missing file
// (first boot).
func (s *Server) restore() error {
	st, err := checkpoint.ReadFile(s.cfg.CheckpointPath)
	if err != nil {
		if isNotExist(err) {
			return nil
		}
		return err
	}
	if st.Kind != checkpointKind {
		return fmt.Errorf("serve: checkpoint %s was written by %q, not %s", s.cfg.CheckpointPath, st.Kind, checkpointKind)
	}
	for _, r := range st.Rows {
		parts := strings.SplitN(r, rowSep, 4)
		if len(parts) != 4 {
			return fmt.Errorf("serve: malformed checkpoint row")
		}
		res := Result{Response: []byte(parts[1])}
		if parts[2] != "" {
			res.Bench = []byte(parts[2])
		}
		if parts[3] != "" {
			res.Trace = []byte(parts[3])
		}
		s.cache.Seed(parts[0], res)
	}
	return nil
}

func isNotExist(err error) bool {
	return err != nil && strings.Contains(err.Error(), "no such file")
}
