package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"anton/internal/checkpoint"
	"anton/internal/harness"
)

// Config sizes one server instance.
type Config struct {
	// CacheEntries bounds the result cache (<= 0: unbounded).
	CacheEntries int
	// Sched sizes the batch scheduler.
	Sched SchedConfig
	// CheckpointPath, when non-empty, persists the completed result cache
	// after every finished job and restores it at startup: a restarted
	// server resumes with every previously completed experiment already
	// answered, the same at-most-one-job-lost granularity as the
	// antonbench CLI's per-experiment snapshots.
	CheckpointPath string
	// MaxJobs bounds the async job registry; the oldest finished jobs are
	// forgotten beyond it (default 1024).
	MaxJobs int
	// DefaultTimeout bounds every request that does not set timeout_ms
	// (0: requests without timeout_ms have no deadline).
	DefaultTimeout time.Duration
	// DrainBudget bounds graceful drain: in-flight and queued jobs get
	// this long to finish; past it their contexts are cancelled and the
	// cooperative abort hook stops the remaining compute within one
	// abort-check interval (default 15s).
	DrainBudget time.Duration
}

// Server lifecycle states. A server is starting until its checkpoint
// restore finishes, ready while admitting work, and draining from the
// first BeginDrain/Drain/Close until process exit. /readyz reports the
// state; admission refuses everything outside ready.
const (
	stateStarting int32 = iota
	stateReady
	stateDraining
)

// Server is the simulation-as-a-service HTTP tier.
type Server struct {
	cfg   Config
	cache *Cache
	sched *Scheduler
	mux   *http.ServeMux

	jobMu    sync.Mutex
	jobs     map[string]*Job
	jobOrder []string
	jobSeq   int

	// state is the lifecycle phase (stateStarting/Ready/Draining).
	state atomic.Int32
	// baseCtx parents every job context, so one baseCancel — fired when
	// the drain budget expires — aborts all remaining compute at once.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	drainOnce  sync.Once
	// draining suppresses the per-completion persist: drain writes the
	// checkpoint exactly once, after the last job has settled.
	draining atomic.Bool

	persistMu sync.Mutex
	// persists counts checkpoint write attempts (the persist-exactly-once
	// drain test and ops observability).
	persists atomic.Int64
}

// NewStarting builds a server in the starting state: the handler is
// live (healthz answers, readyz reports starting) but admission refuses
// work until Restore is called. This is the production boot shape — bind
// the listener first, restore a possibly large checkpoint in the
// background, and let the load balancer hold traffic until /readyz
// flips — and it also closes a durability race: a job completing before
// the restore finished could persist a half-restored cache over the
// checkpoint.
func NewStarting(cfg Config) *Server {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.DrainBudget <= 0 {
		cfg.DrainBudget = 15 * time.Second
	}
	s := &Server{
		cfg:   cfg,
		cache: NewCache(cfg.CacheEntries),
		sched: NewScheduler(cfg.Sched),
		jobs:  map[string]*Job{},
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// New builds a server and restores the result cache from the checkpoint
// (if configured and present) before returning, so the returned server
// is immediately ready — the shape tests and in-process embedders want.
func New(cfg Config) (*Server, error) {
	s := NewStarting(cfg)
	if err := s.Restore(); err != nil {
		s.sched.Close()
		s.baseCancel()
		return nil, err
	}
	return s, nil
}

// Restore loads the checkpoint (when configured), arms per-completion
// persistence, and flips the server ready. Idempotent; a failure leaves
// the server in starting (not ready) with admission refusing work.
func (s *Server) Restore() error {
	if s.cfg.CheckpointPath != "" {
		if err := s.restore(); err != nil {
			return err
		}
		s.cache.onComplete = s.persistOnComplete
	}
	s.state.CompareAndSwap(stateStarting, stateReady)
	return nil
}

// Ready reports whether the server is admitting work.
func (s *Server) Ready() bool { return s.state.Load() == stateReady }

// stateName renders the lifecycle phase for /readyz and /stats.
func (s *Server) stateName() string {
	switch s.state.Load() {
	case stateReady:
		return "ready"
	case stateDraining:
		return "draining"
	}
	return "starting"
}

// BeginDrain flips the server out of ready without blocking: /readyz
// starts answering 503 and admission refuses new work immediately, while
// in-flight jobs keep running. Drain (or Close) completes the shutdown.
func (s *Server) BeginDrain() {
	s.state.CompareAndSwap(stateStarting, stateDraining)
	s.state.CompareAndSwap(stateReady, stateDraining)
	s.draining.Store(true)
}

// Drain gracefully shuts the serving tier down: admission stops, queued
// and in-flight jobs get the drain budget to finish — past it the base
// context is cancelled and the cooperative abort hook stops remaining
// compute within one abort-check interval, aborting (never caching)
// those runs — and the cache checkpoint is persisted exactly once.
// Safe to call from any goroutine and idempotent; concurrent callers
// block until the first drain completes.
func (s *Server) Drain() {
	s.BeginDrain()
	s.drainOnce.Do(func() {
		budget := time.AfterFunc(s.cfg.DrainBudget, s.baseCancel)
		s.sched.Close()
		budget.Stop()
		s.baseCancel()
		if s.cfg.CheckpointPath != "" {
			s.persist()
		}
	})
}

// Close drains the server; it exists as the conventional name for defer
// sites and tests.
func (s *Server) Close() { s.Drain() }

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /api/v1/healthz", s.handleHealth)
	s.mux.HandleFunc("GET /api/v1/readyz", s.handleReady)
	s.mux.HandleFunc("GET /api/v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /api/v1/run", s.handleRun)
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.handleJobStream)
	s.mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /api/v1/results/{digest}", s.handleResult)
	s.mux.HandleFunc("GET /api/v1/artifacts/{digest}/{kind}", s.handleArtifact)
	s.mux.HandleFunc("GET /api/v1/stats", s.handleStats)
}

// CacheHeader is the response header conveying the cache outcome
// (hit, miss, join). It lives in a header, never in the body: the body
// must be byte-identical between a fresh run and a cache hit.
const CacheHeader = "X-Anton-Cache"

// response is the JSON body of a completed run. Field order is fixed by
// this struct, so the rendered bytes are canonical.
type response struct {
	Experiment string `json:"experiment"`
	Title      string `json:"title"`
	Fidelity   string `json:"fidelity"`
	Faults     string `json:"faults,omitempty"`
	Quick      bool   `json:"quick"`
	Digest     string `json:"digest"`
	SweepUnits int    `json:"sweep_units"`
	Artifacts  bool   `json:"artifacts"`
	Report     string `json:"report"`
}

// renderResponse builds the canonical response bytes for a completed
// run. sweepUnits is the session's completed progress count — itself
// deterministic (the number of sweep jobs an experiment runs is fixed
// by id and quick, not by scheduling).
func renderResponse(req *NormRequest, sweepUnits int, report string, artifacts bool) []byte {
	b, err := json.Marshal(response{
		Experiment: req.Experiment.ID,
		Title:      req.Experiment.Title,
		Fidelity:   req.Fidelity,
		Faults:     req.Faults,
		Quick:      req.Quick,
		Digest:     req.Digest(),
		SweepUnits: sweepUnits,
		Artifacts:  artifacts,
		Report:     report,
	})
	if err != nil {
		panic(err) // string/bool/int fields cannot fail to marshal
	}
	return append(b, '\n')
}

type errBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	b, _ := json.Marshal(struct {
		Error errBody `json:"error"`
	}{errBody{Code: code, Message: msg}})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// writeErrRetry is writeErr plus a Retry-After hint (seconds, minimum
// 1) — every shedding 503 carries one so well-behaved clients (loadgen
// included) back off by the server's estimate instead of guessing.
func writeErrRetry(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	secs := int((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeErr(w, status, code, msg)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	b, err := json.Marshal(v)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "encode", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

// handleHealth is liveness: the process is up and the handler runs.
// It deliberately stays 200 during startup and drain — restarting a
// server because it is draining would be a self-inflicted outage.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleReady is readiness: 200 only while admitting work. During
// startup restore and drain it answers 503 so load balancers route
// around this instance while liveness keeps it alive.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	name := s.stateName()
	if name != "ready" {
		w.Header().Set("Retry-After", "1")
		b, _ := json.Marshal(map[string]string{"status": name})
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write(append(b, '\n'))
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expInfo struct {
		ID        string `json:"id"`
		Title     string `json:"title"`
		Analytic  bool   `json:"analytic"`
		Artifacts bool   `json:"artifacts"`
	}
	var out []expInfo
	for _, e := range harness.Experiments() {
		out = append(out, expInfo{ID: e.ID, Title: e.Title, Analytic: e.Analytic, Artifacts: e.HasArtifacts()})
	}
	writeJSON(w, map[string]interface{}{"experiments": out})
}

// parseBody reads and normalizes the request, writing the 400 itself on
// failure.
func (s *Server) parseBody(w http.ResponseWriter, r *http.Request) *NormRequest {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad-body", err.Error())
		return nil
	}
	req, err := ParseRequest(body)
	if err != nil {
		var code = "bad-request"
		if be, ok := err.(*BadRequestError); ok {
			code = be.Code
		}
		writeErr(w, http.StatusBadRequest, code, err.Error())
		return nil
	}
	return req
}

// admit gates one request at the door. Outside the ready state every
// request is refused with 503. With a deadline, the observed run times
// decide whether the deadline is even meetable: estimated queueing
// delay plus the estimated run must fit the budget, else the request is
// shed now — 503 with a Retry-After computed from the backlog — instead
// of burning queue space until its inevitable 504. Returns the absolute
// deadline (zero: none) and whether the request was admitted.
func (s *Server) admit(w http.ResponseWriter, req *NormRequest) (time.Time, bool) {
	if name := s.stateName(); name != "ready" {
		writeErrRetry(w, http.StatusServiceUnavailable, name,
			fmt.Sprintf("server is %s and not admitting work; retry shortly", name), time.Second)
		return time.Time{}, false
	}
	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout <= 0 {
		return time.Time{}, true
	}
	wait := s.sched.EstimatedWait(req.Fidelity)
	est := s.sched.Estimate(req)
	if need := wait + est; need > timeout {
		// A cache hit would still have answered instantly — this gate runs
		// only in front of real compute (see the handlers).
		writeErrRetry(w, http.StatusServiceUnavailable, "deadline-unmeetable",
			fmt.Sprintf("estimated queue wait %s plus run time %s exceeds the %s deadline; retry when the backlog clears",
				wait.Round(time.Millisecond), est.Round(time.Millisecond), timeout), need-timeout+est)
		return time.Time{}, false
	}
	return time.Now().Add(timeout), true
}

// newJob builds a job owning an in-flight cache entry, with a compute
// context derived from the server's base context (so drain aborts every
// job at once) carrying the request deadline.
func (s *Server) newJob(req *NormRequest, digest string, entry *Entry, deadline time.Time) *Job {
	j := &Job{Digest: digest, Req: req, entry: entry, cache: s.cache, sched: s.sched}
	if deadline.IsZero() {
		j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	} else {
		j.ctx, j.cancel = context.WithDeadline(s.baseCtx, deadline)
	}
	return j
}

// retryQueueFull answers a full-queue rejection with a backlog-derived
// Retry-After.
func (s *Server) retryQueueFull(w http.ResponseWriter, req *NormRequest) {
	writeErrRetry(w, http.StatusServiceUnavailable, "queue-full",
		fmt.Sprintf("the %s queue is at capacity; retry later", req.Fidelity),
		s.sched.EstimatedWait(req.Fidelity))
}

// handleRun is the synchronous path: answer from the cache, join an
// identical in-flight run, or schedule and wait — bounded by the
// request deadline when one applies.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	req := s.parseBody(w, r)
	if req == nil {
		return
	}
	digest := req.Digest()
	// A cached result short-circuits admission: serving bytes already in
	// memory is always within any deadline.
	if res, ok := s.cache.GetCompleted(digest); ok {
		w.Header().Set(CacheHeader, string(Hit))
		w.Header().Set("Content-Type", "application/json")
		w.Write(res.Response)
		return
	}
	deadline, admitted := s.admit(w, req)
	if !admitted {
		return
	}
	var timeoutCh <-chan time.Time
	if !deadline.IsZero() {
		timer := time.NewTimer(time.Until(deadline))
		defer timer.Stop()
		timeoutCh = timer.C
	}
	// A joined entry can abort under us (its owner was cancelled or timed
	// out); retry the lookup — the next round becomes the owner and
	// recomputes from scratch.
	for {
		entry, outcome := s.cache.Get(digest)
		if outcome == Miss {
			j := s.newJob(req, digest, entry, deadline)
			if err := s.sched.Submit(j); err != nil {
				s.retryQueueFull(w, req)
				return
			}
		}
		select {
		case <-entry.Done():
		case <-timeoutCh:
			// Deadline exceeded while queued, computing, or joined. The
			// compute context carries the same deadline, so a leader's run
			// is aborting on its own within one abort-check interval and
			// will never populate the cache.
			budget := req.Timeout
			if budget == 0 {
				budget = s.cfg.DefaultTimeout
			}
			writeErr(w, http.StatusGatewayTimeout, "deadline-exceeded",
				fmt.Sprintf("deadline exceeded before the result was ready (budget %s)", budget))
			return
		case <-r.Context().Done():
			// The client went away. The computation (if any) continues and
			// caches; nothing to write.
			return
		}
		res, ok := entry.Result()
		if !ok {
			if entry.Failed() {
				writeErr(w, http.StatusInternalServerError, "experiment-failed",
					"the experiment failed; nothing was cached — see the server log")
				return
			}
			continue // aborted: re-arm and recompute
		}
		w.Header().Set(CacheHeader, string(outcome))
		w.Header().Set("Content-Type", "application/json")
		w.Write(res.Response)
		return
	}
}

// jobStatus is the JSON shape of an async job.
type jobStatus struct {
	Job       string   `json:"job"`
	Digest    string   `json:"digest"`
	State     JobState `json:"state"`
	Completed int      `json:"completed"`
	Cache     string   `json:"cache,omitempty"`
}

func (s *Server) registerJob(j *Job) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.jobSeq++
	j.ID = fmt.Sprintf("j%d", s.jobSeq)
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
	for len(s.jobOrder) > s.cfg.MaxJobs {
		// Forget the oldest finished job; a still-active head stalls
		// eviction rather than losing a live handle.
		old := s.jobs[s.jobOrder[0]]
		if !old.State().Terminal() {
			break
		}
		delete(s.jobs, s.jobOrder[0])
		s.jobOrder = s.jobOrder[1:]
	}
}

func (s *Server) job(id string) *Job {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	return s.jobs[id]
}

// handleSubmit is the asynchronous path: enqueue (or attach to the
// cache) and return a job id immediately.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req := s.parseBody(w, r)
	if req == nil {
		return
	}
	digest := req.Digest()
	deadline, admitted := s.admit(w, req)
	if !admitted {
		return
	}
	entry, outcome := s.cache.Get(digest)
	j := s.newJob(req, digest, entry, deadline)
	switch outcome {
	case Miss:
		if err := s.sched.Submit(j); err != nil {
			s.retryQueueFull(w, req)
			return
		}
	case Hit:
		j.state.Store(StateDone)
		j.release()
	case Join:
		// Ride the in-flight computation; the job is done when it is. A
		// leader that aborts (cancelled/timed out) leaves this job
		// cancelled — the owner resubmits; async joiners deliberately do
		// not re-arm on their own, since nobody is waiting on the HTTP
		// response.
		j.state.Store(StateRunning)
		go func() {
			defer j.release()
			<-entry.Done()
			switch _, ok := entry.Result(); {
			case ok:
				j.state.CompareAndSwap(StateRunning, StateDone)
			case entry.Failed():
				j.state.CompareAndSwap(StateRunning, StateFailed)
			default:
				j.state.CompareAndSwap(StateRunning, StateCancelled)
			}
		}()
	}
	s.registerJob(j)
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, jobStatus{Job: j.ID, Digest: digest, State: j.State(), Completed: j.Completed(), Cache: string(outcome)})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown-job", fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, jobStatus{Job: j.ID, Digest: j.Digest, State: j.State(), Completed: j.Completed()})
}

// handleJobStream streams progress as newline-delimited JSON: one line
// per observed change of (state, completed), ending with the terminal
// state. A job that is already done emits exactly one line.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown-job", fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var last jobStatus
	emit := func(st jobStatus) {
		b, _ := json.Marshal(st)
		w.Write(append(b, '\n'))
		if flusher != nil {
			flusher.Flush()
		}
		last = st
	}
	for {
		st := jobStatus{Job: j.ID, Digest: j.Digest, State: j.State(), Completed: j.Completed()}
		if st != last {
			emit(st)
		}
		if st.State.Terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			// Emit the terminal line on the next loop turn.
		case <-time.After(25 * time.Millisecond):
		}
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, "unknown-job", fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	j.Cancel()
	writeJSON(w, jobStatus{Job: j.ID, Digest: j.Digest, State: j.State(), Completed: j.Completed()})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, ok := s.cache.Peek(r.PathValue("digest"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown-result", "no completed result with that digest")
		return
	}
	w.Header().Set(CacheHeader, string(Hit))
	w.Header().Set("Content-Type", "application/json")
	w.Write(res.Response)
}

// handleArtifact serves a completed run's machine-readable artifacts:
// kind "bench" is the BENCH_metrics.json payload, kind "trace" the
// chrome://tracing export.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	res, ok := s.cache.Peek(r.PathValue("digest"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown-result", "no completed result with that digest")
		return
	}
	var body []byte
	switch r.PathValue("kind") {
	case "bench":
		body = res.Bench
	case "trace":
		body = res.Trace
	default:
		writeErr(w, http.StatusNotFound, "unknown-artifact",
			fmt.Sprintf("unknown artifact kind %q (valid: bench, trace)", r.PathValue("kind")))
		return
	}
	if len(body) == 0 {
		writeErr(w, http.StatusNotFound, "no-artifacts", "this experiment has no machine-readable artifacts")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	des, analytic := s.sched.QueueDepths()
	writeJSON(w, map[string]interface{}{
		"cache": s.cache.Stats(),
		"queues": map[string]int{
			"des":      des,
			"analytic": analytic,
		},
		"state": s.stateName(),
	})
}

// checkpointKind names this server's snapshots.
const checkpointKind = "antonserve"

// rowSep separates the fields of one persisted cache row. Every
// persisted payload is JSON text, which cannot contain a NUL byte, so
// the separator is unambiguous.
const rowSep = "\x00"

// persistOnComplete is the cache's per-completion hook. During drain it
// is suppressed: drain persists exactly once, after the last job has
// settled, so a SIGTERM under load costs one checkpoint write rather
// than one per straggling completion.
func (s *Server) persistOnComplete() {
	if s.draining.Load() {
		return
	}
	s.persist()
}

// Persists reports the number of checkpoint write attempts so far.
func (s *Server) Persists() int { return int(s.persists.Load()) }

// persist writes the completed result cache to the checkpoint path.
// Serialized under persistMu so concurrent completions cannot interleave
// writes; the snapshot itself is crash-atomic (unique tmp + fsync +
// rename — see checkpoint.WriteFile), so a SIGKILL mid-persist leaves
// either the old checkpoint or the new one, never a torn file.
func (s *Server) persist() {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	s.persists.Add(1)
	entries := s.cache.Snapshot()
	rows := make([]string, 0, len(entries))
	for _, e := range entries {
		res := e.ResultOf()
		rows = append(rows, strings.Join([]string{
			e.Digest, string(res.Response), string(res.Bench), string(res.Trace),
		}, rowSep))
	}
	st := &checkpoint.State{
		Kind:   checkpointKind,
		Step:   int64(len(rows)),
		Fields: map[string]string{"schema": "anton-serve/v1"},
		Rows:   rows,
	}
	if err := st.WriteFile(s.cfg.CheckpointPath); err != nil {
		// Persistence is best-effort durability, not correctness: the
		// server keeps serving from memory.
		fmt.Printf("antonserve: checkpoint: %v\n", err)
	}
}

// restore seeds the cache from the checkpoint, ignoring a missing file
// (first boot).
func (s *Server) restore() error {
	st, err := checkpoint.ReadFile(s.cfg.CheckpointPath)
	if err != nil {
		if isNotExist(err) {
			return nil
		}
		return err
	}
	if st.Kind != checkpointKind {
		return fmt.Errorf("serve: checkpoint %s was written by %q, not %s", s.cfg.CheckpointPath, st.Kind, checkpointKind)
	}
	for _, r := range st.Rows {
		parts := strings.SplitN(r, rowSep, 4)
		if len(parts) != 4 {
			return fmt.Errorf("serve: malformed checkpoint row")
		}
		res := Result{Response: []byte(parts[1])}
		if parts[2] != "" {
			res.Bench = []byte(parts[2])
		}
		if parts[3] != "" {
			res.Trace = []byte(parts[3])
		}
		s.cache.Seed(parts[0], res)
	}
	return nil
}

func isNotExist(err error) bool {
	return err != nil && strings.Contains(err.Error(), "no such file")
}
