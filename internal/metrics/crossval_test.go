package metrics_test

import (
	"fmt"
	"testing"

	"anton/internal/machine"
	"anton/internal/metrics"
	"anton/internal/noc"
	"anton/internal/packet"
	"anton/internal/sim"
	"anton/internal/topo"
)

// measure runs one counted remote write from the origin to dst on a fresh
// instrumented 512-node machine and returns the single reconstructed
// lifecycle.
func measure(t *testing.T, dst topo.Coord, bytes int) *metrics.Lifecycle {
	t.Helper()
	s := sim.New()
	rec := metrics.Attach(s)
	m := machine.Default512(s)
	a := packet.Client{Node: m.Torus.ID(topo.C(0, 0, 0)), Kind: packet.Slice0}
	b := packet.Client{Node: m.Torus.ID(dst), Kind: packet.Slice0}
	m.Client(b).Wait(9, 1, func() {})
	m.Client(a).Write(b, 9, 0, bytes)
	s.Run()
	lcs := rec.Lifecycles()
	if len(lcs) != 1 {
		t.Fatalf("got %d lifecycles, want 1", len(lcs))
	}
	return lcs[0]
}

// TestOneHopFigure6Exact pins the headline number: the measured stage
// attribution of the one-hop X+ 0-byte write reproduces the paper's
// Figure 6 components to the nanosecond — 42 + 19 + 40 + 25 + 36 =
// 162 ns.
func TestOneHopFigure6Exact(t *testing.T) {
	lc := measure(t, topo.C(1, 0, 0), 0)
	want := []struct {
		label string
		ns    float64
	}{
		{"send initiation", 42},
		{"source ring traversal", 19},
		{"link adapters + wire (X hop 1)", 40},
		{"payload serialization + destination ring traversal", 25},
		{"memory write + counter increment + successful poll", 36},
	}
	stages := lc.Stages()
	if len(stages) != len(want) {
		t.Fatalf("got %d stages, want %d: %v", len(stages), len(want), stages)
	}
	for i, w := range want {
		if stages[i].Label != w.label || stages[i].Dur != sim.Dur(w.ns*1000) {
			t.Errorf("stage %d = %q %.1f ns, want %q %.0f ns",
				i, stages[i].Label, stages[i].Dur.Ns(), w.label, w.ns)
		}
	}
	if lc.E2E() != 162*sim.Ns {
		t.Fatalf("one-hop E2E = %v, want 162ns (the paper's headline number)", lc.E2E())
	}
}

// TestMeasuredMatchesCalibrated cross-validates the observability layer
// against the calibrated closed-form model: for multi-hop dimension-
// ordered routes with and without payload, the measured stage
// attribution must equal noc.Model.Stages label for label and duration
// for duration, and the stages must sum exactly to the end-to-end
// latency.
func TestMeasuredMatchesCalibrated(t *testing.T) {
	model := noc.DefaultModel()
	tor := topo.NewTorus(8, 8, 8)
	cases := []struct {
		dst   topo.Coord
		bytes int
	}{
		{topo.C(1, 0, 0), 0},   // 1 hop X
		{topo.C(1, 0, 0), 256}, // 1 hop X, full payload
		{topo.C(2, 0, 0), 0},   // 2 hops X
		{topo.C(1, 1, 0), 0},   // X then Y
		{topo.C(1, 1, 0), 256},
		{topo.C(0, 0, 3), 0}, // 3 hops Z
		{topo.C(1, 1, 1), 0}, // one hop per dimension
		{topo.C(1, 1, 1), 256},
		{topo.C(4, 4, 4), 256}, // 12 hops: the 8x8x8 diameter
		{topo.C(0, 0, 0), 0},   // node-local: ring only, no torus hops
		{topo.C(0, 0, 0), 256},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%v/%dB", tc.dst, tc.bytes)
		t.Run(name, func(t *testing.T) {
			lc := measure(t, tc.dst, tc.bytes)
			meas := lc.Stages()
			hops := tor.HopsByDim(topo.C(0, 0, 0), tc.dst)
			wire := packet.HeaderBytes + tc.bytes
			cal := model.Stages(hops, packet.Slice0, packet.Slice0, wire)
			if len(meas) != len(cal) {
				t.Fatalf("measured %d stages, calibrated %d:\n%v\nvs\n%v",
					len(meas), len(cal), meas, cal)
			}
			var sum sim.Dur
			for i := range meas {
				if meas[i].Label != cal[i].Label {
					t.Errorf("stage %d label: measured %q, calibrated %q", i, meas[i].Label, cal[i].Label)
				}
				if meas[i].Dur != cal[i].Dur {
					t.Errorf("stage %d (%s): measured %v, calibrated %v",
						i, meas[i].Label, meas[i].Dur, cal[i].Dur)
				}
				sum += meas[i].Dur
			}
			if sum != lc.E2E() {
				t.Errorf("stage sum %v != E2E %v", sum, lc.E2E())
			}
			if want := model.PathLatency(hops, packet.Slice0, packet.Slice0, wire); lc.E2E() != want {
				t.Errorf("E2E %v != PathLatency %v", lc.E2E(), want)
			}
		})
	}
}
