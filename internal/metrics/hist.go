package metrics

import (
	"fmt"
	"math/bits"
	"strings"

	"anton/internal/sim"
)

// NumBuckets is the fixed bucket count of every histogram. The bucket
// geometry is log-linear (HDR-style): values below 16 ps get exact
// buckets; above that, each power-of-two octave is split into 8 linear
// sub-buckets, bounding the relative quantization error at 12.5% across
// the full picosecond-to-millisecond range. The geometry is a pure
// function of the value, so histograms built on different shards merge
// exactly (bucket-wise integer addition) regardless of merge order.
const NumBuckets = 512

const histSubBits = 3 // 8 sub-buckets per octave

// bucketOf maps a duration to its bucket index. Negative durations (which
// the models never produce) clamp to bucket 0. The mapping is monotone
// non-decreasing, which the property tests pin.
func bucketOf(d sim.Dur) int {
	if d <= 0 {
		return 0
	}
	v := uint64(d)
	exp := bits.Len64(v) - 1
	shift := exp - histSubBits
	if shift <= 0 {
		return int(v)
	}
	return shift*(1<<histSubBits) + int(v>>uint(shift))
}

// BucketLow returns the smallest duration mapping to bucket i.
func BucketLow(i int) sim.Dur {
	m := i % (1 << histSubBits)
	shift := i/(1<<histSubBits) - 1
	if shift <= 0 {
		return sim.Dur(i)
	}
	return sim.Dur(uint64(m+1<<histSubBits) << uint(shift))
}

// BucketHigh returns the largest duration mapping to bucket i.
func BucketHigh(i int) sim.Dur {
	if i/(1<<histSubBits)-1 <= 0 {
		return sim.Dur(i)
	}
	return BucketLow(i+1) - 1
}

// Hist is a fixed-bucket latency histogram. The zero value is an empty
// histogram ready for use; Hist is a value type and copies are
// independent.
type Hist struct {
	buckets [NumBuckets]uint64
	count   uint64
	sum     int64
	min     sim.Dur
	max     sim.Dur
}

// Add records one duration.
func (h *Hist) Add(d sim.Dur) {
	h.buckets[bucketOf(d)]++
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if h.count == 0 || d > h.max {
		h.max = d
	}
	h.count++
	h.sum += int64(d)
}

// AddAll records every duration in ds.
func (h *Hist) AddAll(ds []sim.Dur) {
	for _, d := range ds {
		h.Add(d)
	}
}

// Merge folds o into h. Merging is exact: bucket-wise integer addition
// plus min/max/count/sum combination, so it is associative and
// commutative — shard histograms merged in any order yield the same
// result, which the property tests verify.
func (h *Hist) Merge(o Hist) {
	if o.count == 0 {
		return
	}
	if h.count == 0 {
		*h = o
		return
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of recorded durations.
func (h *Hist) Count() uint64 { return h.count }

// Min returns the smallest recorded duration (exact, not bucketized).
func (h *Hist) Min() sim.Dur { return h.min }

// Max returns the largest recorded duration (exact, not bucketized).
func (h *Hist) Max() sim.Dur { return h.max }

// Mean returns the integer mean of the recorded durations (exact sum over
// count; zero for an empty histogram).
func (h *Hist) Mean() sim.Dur {
	if h.count == 0 {
		return 0
	}
	return sim.Dur(h.sum / int64(h.count))
}

// Bucket returns the count in bucket i.
func (h *Hist) Bucket(i int) uint64 { return h.buckets[i] }

// Quantile returns the upper edge of the bucket containing the q-th
// percentile (integer q in [0,100]): the smallest bucket whose cumulative
// count reaches ceil(q*count/100). Integer-only, so byte-deterministic.
func (h *Hist) Quantile(q int) sim.Dur {
	if h.count == 0 {
		return 0
	}
	target := (h.count*uint64(q) + 99) / 100
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i]
		if cum >= target {
			hi := BucketHigh(i)
			if hi > h.max {
				hi = h.max // never report beyond the observed max
			}
			return hi
		}
	}
	return h.max
}

// Summary renders the one-line count/p50/p99/max/mean summary.
func (h *Hist) Summary() string {
	return fmt.Sprintf("count=%d p50=%.1fns p99=%.1fns max=%.1fns mean=%.1fns",
		h.count, h.Quantile(50).Ns(), h.Quantile(99).Ns(), h.max.Ns(), h.Mean().Ns())
}

// String renders the non-empty buckets, one per line, with a proportional
// bar. Deterministic: fixed formatting, buckets in index order.
func (h *Hist) String() string {
	var b strings.Builder
	var peak uint64
	for _, c := range h.buckets {
		if c > peak {
			peak = c
		}
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		bar := int(c * 40 / peak)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "  [%10.1f, %10.1f] ns %8d %s\n",
			BucketLow(i).Ns(), BucketHigh(i).Ns(), c, strings.Repeat("#", bar))
	}
	return b.String()
}
