package metrics

import (
	"math/rand"
	"sync"
	"testing"

	"anton/internal/sim"
)

// randDurs returns n durations spanning the simulator's realistic range:
// sub-nanosecond up to tens of milliseconds, in picoseconds.
func randDurs(rng *rand.Rand, n int) []sim.Dur {
	out := make([]sim.Dur, n)
	for i := range out {
		// Exponentially distributed magnitudes so every octave of the
		// bucket geometry gets exercised.
		mag := uint(rng.Intn(35))
		out[i] = sim.Dur(rng.Int63n(1 << mag))
	}
	return out
}

func TestBucketMonotonic(t *testing.T) {
	prev := 0
	for d := sim.Dur(0); d < 1<<20; d++ {
		b := bucketOf(d)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < bucketOf(%d) = %d", d, b, d-1, prev)
		}
		prev = b
	}
	// Spot-check monotonicity across the full range at octave boundaries.
	for mag := uint(1); mag < 45; mag++ {
		for _, v := range []sim.Dur{1<<mag - 1, 1 << mag, 1<<mag + 1} {
			if bucketOf(v-1) > bucketOf(v) {
				t.Fatalf("bucketOf(%d) = %d > bucketOf(%d) = %d",
					v-1, bucketOf(v-1), v, bucketOf(v))
			}
		}
	}
}

func TestBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range randDurs(rng, 20000) {
		b := bucketOf(d)
		if b < 0 || b >= NumBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", d, b)
		}
		if lo, hi := BucketLow(b), BucketHigh(b); d < lo || d > hi {
			t.Fatalf("d=%d not in bucket %d bounds [%d, %d]", d, b, lo, hi)
		}
	}
	// Bucket edges are contiguous: every bucket's high is the next one's
	// low minus one (over the octaves the models can produce).
	for i := 16; i < 400; i++ {
		if BucketHigh(i)+1 != BucketLow(i+1) {
			t.Fatalf("gap between bucket %d (high %d) and %d (low %d)",
				i, BucketHigh(i), i+1, BucketLow(i+1))
		}
	}
}

func TestCountConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := randDurs(rng, 5000)
	var h Hist
	h.AddAll(ds)
	if h.Count() != uint64(len(ds)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(ds))
	}
	var sum uint64
	for i := 0; i < NumBuckets; i++ {
		sum += h.Bucket(i)
	}
	if sum != uint64(len(ds)) {
		t.Fatalf("bucket sum = %d, want %d: a sample fell outside every bucket", sum, len(ds))
	}
}

func TestMergeCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		var a, b, c Hist
		a.AddAll(randDurs(rng, rng.Intn(200)))
		b.AddAll(randDurs(rng, rng.Intn(200)))
		c.AddAll(randDurs(rng, rng.Intn(200)))

		ab := a
		ab.Merge(b)
		ba := b
		ba.Merge(a)
		if ab != ba {
			t.Fatalf("trial %d: merge not commutative", trial)
		}

		abc := ab // (a+b)+c
		abc.Merge(c)
		bc := b
		bc.Merge(c)
		aBC := a // a+(b+c)
		aBC.Merge(bc)
		if abc != aBC {
			t.Fatalf("trial %d: merge not associative", trial)
		}

		if abc.Count() != a.Count()+b.Count()+c.Count() {
			t.Fatalf("trial %d: merge lost samples: %d vs %d",
				trial, abc.Count(), a.Count()+b.Count()+c.Count())
		}
	}
}

// TestMergeMatchesSequential checks that sharded accumulation + merge is
// indistinguishable from adding every sample to one histogram.
func TestMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := randDurs(rng, 4096)
	var whole Hist
	whole.AddAll(ds)
	shards := make([]Hist, 7)
	for i, d := range ds {
		shards[i%len(shards)].Add(d)
	}
	var merged Hist
	for _, s := range shards {
		merged.Merge(s)
	}
	if whole != merged {
		t.Fatalf("sharded merge differs from sequential accumulation:\n%v\nvs\n%v",
			whole.Summary(), merged.Summary())
	}
}

// TestParallelShardMerge fills shards from concurrent goroutines — the
// worker-pool pattern the harness uses — and is meaningful under
// -race: each shard must be confined to its goroutine until merge.
func TestParallelShardMerge(t *testing.T) {
	const shards = 8
	inputs := make([][]sim.Dur, shards)
	for i := range inputs {
		inputs[i] = randDurs(rand.New(rand.NewSource(int64(i))), 1000)
	}
	hists := make([]Hist, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hists[i].AddAll(inputs[i])
		}(i)
	}
	wg.Wait()
	var merged Hist
	for i := range hists {
		merged.Merge(hists[i])
	}
	var want Hist
	for _, in := range inputs {
		want.AddAll(in)
	}
	if merged != want {
		t.Fatalf("parallel shard merge differs from sequential: %v vs %v",
			merged.Summary(), want.Summary())
	}
}

func TestQuantileOrderingAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		var h Hist
		h.AddAll(randDurs(rng, 1+rng.Intn(500)))
		last := sim.Dur(-1)
		for _, q := range []int{0, 25, 50, 90, 99, 100} {
			v := h.Quantile(q)
			if v < last {
				t.Fatalf("trial %d: quantiles not monotone: p%d=%v < %v", trial, q, v, last)
			}
			if v > h.Max() {
				t.Fatalf("trial %d: p%d=%v beyond max %v", trial, q, v, h.Max())
			}
			last = v
		}
	}
	// A single sample: every quantile reports a value bounding it.
	var h Hist
	h.Add(162_000) // 162 ns in ps
	if h.Quantile(50) < 162_000 || h.Quantile(50) > h.Max() {
		t.Fatalf("single-sample p50 = %v", h.Quantile(50))
	}
	if h.Max() != 162_000 || h.Min() != 162_000 || h.Mean() != 162_000 {
		t.Fatalf("single-sample min/max/mean = %v/%v/%v", h.Min(), h.Max(), h.Mean())
	}
}

func TestEmptyAndZeroMerge(t *testing.T) {
	var empty, h Hist
	h.Add(100)
	before := h
	h.Merge(empty)
	if h != before {
		t.Fatal("merging an empty histogram changed the receiver")
	}
	empty.Merge(h)
	if empty != h {
		t.Fatal("merging into an empty histogram did not copy")
	}
	var e2 Hist
	if e2.Quantile(99) != 0 || e2.Mean() != 0 || e2.Count() != 0 {
		t.Fatal("empty histogram statistics not zero")
	}
}
